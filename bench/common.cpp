#include "common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/obs/export.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/rss.hpp"

namespace fist::bench {

sim::WorldConfig default_config() {
  sim::WorldConfig cfg;
  cfg.seed = 42;
  cfg.days = 240;
  cfg.users = 400;
  cfg.blocks_per_day = 12;
  // CI runs the suite on a reduced scenario: FISTFUL_BENCH_SCALE=small
  // shrinks the world, "large" grows it to roughly the paper's
  // transaction count (~2M txs; push further with the env knobs), and
  // FISTFUL_BENCH_DAYS / FISTFUL_BENCH_USERS tune either preset (both
  // win over the scale preset).
  if (const char* scale = std::getenv("FISTFUL_BENCH_SCALE");
      scale != nullptr) {
    if (std::string(scale) == "small") {
      cfg.days = 30;
      cfg.users = 60;
    } else if (std::string(scale) == "large") {
      // Transaction count is bought with days and a busier population,
      // not a bigger one (more users dilute per-user funds below the
      // spend threshold). The halving interval scales with the run so
      // the subsidy halves once mid-run, as in the paper's window —
      // at the default 2000 blocks a multi-year run would halve eight
      // times and starve the economy. Targets ~2M transactions.
      cfg.days = 1320;
      cfg.users = 2000;
      cfg.user_daily_activity = 1.0;
      cfg.halving_interval = cfg.days * cfg.blocks_per_day / 2;
    }
  }
  if (const char* days = std::getenv("FISTFUL_BENCH_DAYS"))
    cfg.days = std::atoi(days);
  if (const char* users = std::getenv("FISTFUL_BENCH_USERS"))
    cfg.users = std::atoi(users);
  return cfg;
}

unsigned bench_threads() {
  if (const char* env = std::getenv("FISTFUL_THREADS"))
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return 0;
}

std::string stage_table(const ForensicPipeline& pipeline) {
  TextTable t({"Stage", "ms"}, {Align::Left, Align::Right});
  for (const StageTiming& s : pipeline.timings()) {
    char ms[32];
    std::snprintf(ms, sizeof ms, "%.1f", s.millis);
    t.row({s.stage, ms});
  }
  return t.render();
}

void print_speedup_table(const ForensicPipeline& seq,
                         const ForensicPipeline& par) {
  double seq_total = 0, par_total = 0;
  TextTable t(
      {"Stage", "threads=1 (ms)",
       "threads=" + std::to_string(par.executor().worker_count()) + " (ms)",
       "speedup"},
      {Align::Left, Align::Right, Align::Right, Align::Right});
  for (std::size_t i = 0; i < seq.timings().size(); ++i) {
    const StageTiming& s = seq.timings()[i];
    const StageTiming& p = par.timings()[i];
    seq_total += s.millis;
    par_total += p.millis;
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  p.millis > 0 ? s.millis / p.millis : 1.0);
    t.row({s.stage, std::to_string(static_cast<long>(s.millis)),
           std::to_string(static_cast<long>(p.millis)), speedup});
  }
  char total_speedup[32];
  std::snprintf(total_speedup, sizeof total_speedup, "%.2fx",
                par_total > 0 ? seq_total / par_total : 1.0);
  t.row({"total", std::to_string(static_cast<long>(seq_total)),
         std::to_string(static_cast<long>(par_total)), total_speedup});
  std::printf("%s\n", t.render().c_str());
}

void write_bench_report(
    const std::string& name, const ForensicPipeline* pipeline,
    std::uint64_t txs,
    const std::vector<std::pair<std::string, double>>& extras) {
  const char* dir = std::getenv("FISTFUL_BENCH_DIR");
  std::string path = (dir != nullptr && *dir != '\0')
                         ? std::string(dir) + "/BENCH_" + name + ".json"
                         : "BENCH_" + name + ".json";

  std::string json = "{\n  \"bench\": \"" + obs::json_escape(name) + "\"";

  // Reproduction metadata: enough to re-run the exact configuration
  // behind a number. A non-numeric block — scripts/check_bench_trend.py
  // ignores it when gating.
  const char* scale_env = std::getenv("FISTFUL_BENCH_SCALE");
  const char* window_env = std::getenv("FISTFUL_BENCH_WINDOW");
  json += ",\n  \"run\": {";
  json += "\"threads\": " +
          std::to_string(pipeline != nullptr
                             ? pipeline->executor().worker_count()
                             : bench_threads());
  json += ", \"scale\": \"" +
          obs::json_escape(scale_env != nullptr ? scale_env : "default") +
          "\"";
  json += ", \"window_blocks\": " +
          std::to_string(window_env != nullptr
                             ? std::strtoul(window_env, nullptr, 10)
                             : 0ul);
  json += ", \"build_type\": \"" + obs::json_escape(
#if defined(FISTFUL_BUILD_TYPE)
                                       FISTFUL_BUILD_TYPE
#elif defined(NDEBUG)
                                       "release"
#else
                                       "debug"
#endif
                                       ) +
          "\"";
  json += "}";

  if (pipeline != nullptr) {
    json += ",\n  \"threads\": " +
            std::to_string(pipeline->executor().worker_count());
    double total = 0;
    json += ",\n  \"stages_ms\": {";
    bool first = true;
    for (const StageTiming& t : pipeline->timings()) {
      if (!first) json += ", ";
      first = false;
      json += '"';
      json += obs::json_escape(t.stage);
      json += "\": ";
      json += obs::json_number(t.millis);
      total += t.millis;
    }
    json += "}";
    json += ",\n  \"total_ms\": " + obs::json_number(total);
    if (txs > 0) {
      json += ",\n  \"txs\": " + std::to_string(txs);
      if (total > 0)
        json += ",\n  \"txs_per_second\": " +
                obs::json_number(static_cast<double>(txs) / (total / 1000.0));
    }
    if (!pipeline->trace().empty())
      json += ",\n  \"spans\": " +
              obs::render_spans_json_array(pipeline->trace());
  }
  // Bench-specific gated scalars (check_bench_trend.py --extra-field).
  for (const auto& [field, value] : extras)
    json += ",\n  \"" + obs::json_escape(field) +
            "\": " + obs::json_number(value);
  // Peak RSS goes into every report — including the no-pipeline form a
  // bench uses on an early quarantine exit — so the trend gate always
  // has the field to compare.
  json += ",\n  \"peak_rss_bytes\": " + std::to_string(obs::sample_peak_rss());
  json += ",\n  \"metrics\": " + obs::render_metrics_json_object(
                                     obs::MetricsRegistry::global().snapshot());
  json += "\n}\n";

  // Write-then-rename, so a reader (or a bench killed mid-write) never
  // sees a partial report at the final path.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[bench] cannot write %s\n", tmp.c_str());
      return;
    }
    out << json;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "[bench] write failed: %s\n", tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "[bench] cannot rename %s -> %s\n", tmp.c_str(),
                 path.c_str());
    return;
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

Experiment run_experiment(sim::WorldConfig config) {
  return run_experiment(config, bench_threads());
}

Experiment run_experiment(sim::WorldConfig config, unsigned threads) {
  Experiment exp;
  auto t0 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "[bench] simulating %d days, %d users...\n",
               config.days, config.users);
  exp.world = std::make_unique<sim::World>(config);
  exp.world->run();
  auto t1 = std::chrono::steady_clock::now();
  std::fprintf(
      stderr, "[bench] simulated %llu txs in %lld ms; running pipeline...\n",
      static_cast<unsigned long long>(exp.world->tx_count()),
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
              .count()));
  PipelineOptions options;
  options.threads = threads;
  exp.pipeline = std::make_unique<ForensicPipeline>(
      exp.world->store(), exp.world->tag_feed(), options);
  exp.pipeline->run();
  auto t2 = std::chrono::steady_clock::now();
  std::fprintf(
      stderr, "[bench] pipeline done in %lld ms on %u thread(s)\n",
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(t2 - t1)
              .count()),
      exp.pipeline->executor().worker_count());
  std::fprintf(stderr, "%s", stage_table(*exp.pipeline).c_str());
  return exp;
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=====================================================\n");
}

std::string compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  return what + ": paper=" + paper + "  measured=" + measured;
}

}  // namespace fist::bench
