#include "common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace fist::bench {

sim::WorldConfig default_config() {
  sim::WorldConfig cfg;
  cfg.seed = 42;
  cfg.days = 240;
  cfg.users = 400;
  cfg.blocks_per_day = 12;
  return cfg;
}

unsigned bench_threads() {
  if (const char* env = std::getenv("FISTFUL_THREADS"))
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  return 0;
}

void report_stage_timings(const ForensicPipeline& pipeline) {
  std::fprintf(stderr, "[bench] per-stage wall-clock:\n");
  for (const StageTiming& t : pipeline.timings())
    std::fprintf(stderr, "[bench]   %-10s %9.1f ms\n", t.stage, t.millis);
}

Experiment run_experiment(sim::WorldConfig config) {
  return run_experiment(config, bench_threads());
}

Experiment run_experiment(sim::WorldConfig config, unsigned threads) {
  Experiment exp;
  auto t0 = std::chrono::steady_clock::now();
  std::fprintf(stderr, "[bench] simulating %d days, %d users...\n",
               config.days, config.users);
  exp.world = std::make_unique<sim::World>(config);
  exp.world->run();
  auto t1 = std::chrono::steady_clock::now();
  std::fprintf(
      stderr, "[bench] simulated %llu txs in %lld ms; running pipeline...\n",
      static_cast<unsigned long long>(exp.world->tx_count()),
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
              .count()));
  PipelineOptions options;
  options.threads = threads;
  exp.pipeline = std::make_unique<ForensicPipeline>(
      exp.world->store(), exp.world->tag_feed(), options);
  exp.pipeline->run();
  auto t2 = std::chrono::steady_clock::now();
  std::fprintf(
      stderr, "[bench] pipeline done in %lld ms on %u thread(s)\n",
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(t2 - t1)
              .count()),
      exp.pipeline->executor().worker_count());
  report_stage_timings(*exp.pipeline);
  return exp;
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("=====================================================\n");
}

std::string compare(const std::string& what, const std::string& paper,
                    const std::string& measured) {
  return what + ": paper=" + paper + "  measured=" + measured;
}

}  // namespace fist::bench
