// figure1_propagation — reproduces Figure 1: how a payment reaches a
// merchant. A user broadcasts a transaction; it floods peer-to-peer to
// miners; a miner seals it into a block; the block floods back and the
// merchant accepts the payment. We measure each stage's latency over
// the inv/getdata gossip protocol on networks of increasing size.
#include <cstdio>

#include "common.hpp"
#include "net/network.hpp"
#include "script/standard.hpp"

using namespace fist;
using namespace fist::net;
using namespace fist::bench;

namespace {

Transaction payment_tx(int i) {
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes("funding" + std::to_string(i)));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{
      btc_fraction(0.7),  // the figure's 0.7 BTC payment
      make_p2pkh(hash160(to_bytes("merchant" + std::to_string(i))))});
  return tx;
}

}  // namespace

int main() {
  banner("Figure 1 — transaction/block dissemination",
         "tx floods to miners; mined block floods to the merchant");

  TextTable t({"Nodes", "tx 50%", "tx 90%", "tx 100%", "block 50%",
               "block 100%", "messages"},
              {Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right, Align::Right});

  for (std::uint32_t n : {100u, 400u, 1000u}) {
    NetConfig cfg;
    cfg.nodes = n;
    cfg.out_peers = 8;
    cfg.miners = std::max(4u, n / 50);
    cfg.block_interval_s = 600;
    cfg.seed = 11;
    P2PNetwork net(cfg);

    // (1)-(4): the user broadcasts the payment.
    Transaction tx = payment_tx(static_cast<int>(n));
    Hash256 txid = tx.txid();
    net.submit_tx(0, tx);
    net.run_until(120);

    // (5)-(6): miners work; the winning block floods.
    net.start_mining();
    // Run until at least one block exists everywhere.
    net.run_until(4000);

    const Propagation* txp = net.propagation(txid);
    // Node 0's tip is a block that flooded the whole network — the
    // figure's step (6) object.
    Hash256 first_block =
        net.node(0).chain_length() > 0 ? net.node(0).tip() : Hash256{};
    const Propagation* bp = net.propagation(first_block);

    auto fmt = [](std::optional<SimTime> v) {
      char buf[32];
      if (!v) return std::string("-");
      std::snprintf(buf, sizeof(buf), "%.2fs", *v);
      return std::string(buf);
    };

    t.row({std::to_string(n), fmt(txp ? txp->time_to_fraction(0.5)
                                      : std::nullopt),
           fmt(txp ? txp->time_to_fraction(0.9) : std::nullopt),
           fmt(txp ? txp->time_to_fraction(1.0) : std::nullopt),
           fmt(bp ? bp->time_to_fraction(0.5) : std::nullopt),
           fmt(bp ? bp->time_to_fraction(1.0) : std::nullopt),
           std::to_string(net.messages_delivered())});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Shape checks (no figure-1 numbers are given in the paper; the\n"
      "qualitative claims are):\n"
      "  * the tx reaches every node — the merchant cannot be kept\n"
      "    ignorant of its own payment;\n"
      "  * propagation grows sub-linearly with network size (gossip);\n"
      "  * the mined block reaches the merchant, completing step (6).\n");
  write_bench_report("figure1_propagation");  // net.* counters only
  return 0;
}
