// table_heuristic2 — reproduces the §4.2 numbers: the naive change
// heuristic's false-positive rate and the refinement ladder
// (13% → 1% → 0.28% → 0.17%), the label counts (>4M naive, 3.54M
// refined), the cluster collapse (H1 5.5M → refined 3.38M), the
// super-cluster failure mode when guards are off, the tag
// amplification (~1,600×), and — beyond what the paper could do —
// exact precision/recall against simulator ground truth.
#include <cstdio>

#include "cluster/metrics.hpp"
#include "common.hpp"

using namespace fist;
using namespace fist::bench;

namespace {

struct LadderRow {
  const char* name;
  const char* paper_rate;
  H2Options options;
};

}  // namespace

int main() {
  banner("Heuristic-2 refinement ladder (§4.2)",
         "FP rates 13% / 1% / 0.28% / 0.17%; 3.38M clusters; 1,600x tags");
  Experiment exp = run_experiment();
  const ForensicPipeline& pipe = *exp.pipeline;
  const ChainView& view = pipe.view();
  const auto& dice = pipe.dice_addresses();

  // ---- the ladder ------------------------------------------------------
  H2Options naive;
  H2Options with_dice = naive;
  with_dice.exempt_dice_rebounds = true;
  H2Options day = with_dice;
  day.wait_window = kDay;
  H2Options week = with_dice;
  week.wait_window = kWeek;
  H2Options refined = refined_h2_options();

  LadderRow rows[] = {
      {"naive (4 conditions)", "13%", naive},
      {"+ dice-rebound exemption", "1%", with_dice},
      {"+ wait one day", "0.28%", day},
      {"+ wait one week", "0.17%", week},
      {"refined (all guards)", "n/a (3.54M labels kept)", refined},
  };

  TextTable t({"Heuristic-2 variant", "Labels", "False pos.", "Rate",
               "Paper rate"},
              {Align::Left, Align::Right, Align::Right, Align::Right,
               Align::Right});
  for (const LadderRow& row : rows) {
    H2Result r = apply_heuristic2(view, row.options, dice);
    H2FalsePositives fp =
        estimate_h2_false_positives(view, r, row.options, dice);
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.2f%%", 100.0 * fp.rate());
    t.row({row.name, std::to_string(r.label_count()),
           std::to_string(fp.false_positives), rate, row.paper_rate});
  }
  std::printf("%s\n", t.render().c_str());

  // ---- cluster collapse and amplification ------------------------------
  std::printf("%s\n",
              compare("H1 clusters", "5.5M",
                      std::to_string(pipe.h1_clustering().cluster_count()))
                  .c_str());
  std::printf("%s\n",
              compare("H1+H2(refined) clusters", "3,383,904",
                      std::to_string(pipe.clustering().cluster_count()))
                  .c_str());
  std::printf("%s\n",
              compare("named clusters", "2,197",
                      std::to_string(pipe.naming().names().size()))
                  .c_str());
  std::size_t hand_tags = pipe.tags().count_by_source(TagSource::Observed);
  char amp[32];
  std::snprintf(amp, sizeof(amp), "%.0fx",
                pipe.naming().amplification(hand_tags));
  std::printf("%s\n",
              compare("tag amplification (named addrs / hand tags)",
                      "~1,600x (12M-address chain)", amp)
                  .c_str());
  std::printf("  (hand-collected tags: paper=1,070  measured=%zu; the\n"
              "   amplification factor scales with cluster sizes, i.e.\n"
              "   with the economy's size)\n",
              hand_tags);

  // ---- super-cluster ablation ------------------------------------------
  auto cluster_with = [&](const H2Options& o) {
    UnionFind uf(view.address_count());
    apply_heuristic1(view, uf);
    H2Result r = apply_heuristic2(view, o, dice);
    unite_h2_labels(view, r, uf);
    return Clustering::from_union_find(uf);
  };

  std::printf("\nSuper-cluster check (the Mt.Gox/Instawallet/BitPay/Silk "
              "Road collapse, §4.2):\n");
  TextTable sc({"Variant", "Largest cluster", "% of addrs",
                "Clusters w/ conflicting service tags"},
               {Align::Left, Align::Right, Align::Right, Align::Right});
  struct Var {
    const char* name;
    H2Options o;
  } variants[] = {{"naive H2 (no guards)", naive},
                  {"refined H2 (all guards)", refined}};
  for (const Var& v : variants) {
    Clustering c = cluster_with(v.o);
    ClusterNaming naming(c.assignment(), c.sizes(), pipe.tags());
    auto [id, size] = c.largest();
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.2f%%",
                  100.0 * size / static_cast<double>(view.address_count()));
    sc.row({v.name, std::to_string(size), pct,
            std::to_string(naming.contested().size())});
  }
  std::printf("%s\n", sc.render().c_str());

  // ---- exact scoring against ground truth (beyond the paper) ----------
  std::vector<std::uint32_t> owners(view.address_count(), kUnknownOwner);
  for (AddrId a = 0; a < view.address_count(); ++a) {
    sim::ActorId owner =
        exp.world->truth().owner(view.addresses().lookup(a));
    if (owner != sim::kNoActor) owners[a] = owner;
  }
  TextTable q({"Clustering", "Precision", "Recall", "F1"},
              {Align::Left, Align::Right, Align::Right, Align::Right});
  auto score_row = [&](const char* name, std::span<const ClusterId> assign) {
    PairwiseScores s = pairwise_scores(assign, owners);
    char p[16], r[16], f[16];
    std::snprintf(p, sizeof(p), "%.3f", s.precision);
    std::snprintf(r, sizeof(r), "%.3f", s.recall);
    std::snprintf(f, sizeof(f), "%.3f", s.f1());
    q.row({name, p, r, f});
  };
  score_row("Heuristic 1 only", pipe.h1_clustering().assignment());
  Clustering naive_c = cluster_with(naive);
  score_row("H1 + naive H2", naive_c.assignment());
  score_row("H1 + refined H2", pipe.clustering().assignment());
  std::printf("\nGround-truth scoring (not possible in the paper):\n%s\n",
              q.render().c_str());
  std::printf("Shape: refined H2 trades a little recall for precision vs\n"
              "naive H2, and beats H1 alone on recall — the paper's\n"
              "\"safest heuristic possible\" design goal.\n");
  write_bench_report("table_heuristic2", exp.pipeline.get(),
                     exp.world->tx_count());
  return 0;
}
