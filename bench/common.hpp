// common.hpp — shared scaffolding for the reproduction benches.
//
// Every bench simulates the same default world (fixed seed) and runs
// the forensic pipeline over its serialized chain, then prints a
// "paper vs measured" comparison for its table or figure.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "sim/world.hpp"
#include "util/table.hpp"

namespace fist::bench {

/// The standard experiment world (override pieces per bench as needed).
sim::WorldConfig default_config();

/// Concurrency for bench pipelines: the FISTFUL_THREADS environment
/// variable when set, else 0 (hardware concurrency).
unsigned bench_threads();

/// Holds the simulated world + completed pipeline.
struct Experiment {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<ForensicPipeline> pipeline;
};

/// Builds and runs the default experiment (prints progress to stderr,
/// including per-stage pipeline wall-clock). `threads` as in
/// PipelineOptions; defaults to bench_threads().
Experiment run_experiment(sim::WorldConfig config = default_config());
Experiment run_experiment(sim::WorldConfig config, unsigned threads);

/// Rendered per-stage wall-clock table (the one shared formatting of
/// StageTiming — benches must not hand-roll their own).
std::string stage_table(const ForensicPipeline& pipeline);

/// Prints the sequential-vs-parallel per-stage speedup table to stdout.
void print_speedup_table(const ForensicPipeline& seq,
                         const ForensicPipeline& par);

/// Writes the machine-readable bench report `BENCH_<name>.json` into
/// $FISTFUL_BENCH_DIR (or the working directory): thread count,
/// per-stage wall-clock, throughput, the global metrics registry, and
/// the pipeline's span tree. `pipeline` may be null for benches that
/// do not run the forensic pipeline (metrics only).
/// `extras` are additional top-level numeric fields (e.g. a latency
/// quantile) — scripts/check_bench_trend.py gates any of them via
/// --extra-field NAME.
void write_bench_report(
    const std::string& name, const ForensicPipeline* pipeline = nullptr,
    std::uint64_t txs = 0,
    const std::vector<std::pair<std::string, double>>& extras = {});

/// Prints the standard bench banner.
void banner(const std::string& title, const std::string& paper_ref);

/// "name: paper=<x> measured=<y>" formatted row helper.
std::string compare(const std::string& what, const std::string& paper,
                    const std::string& measured);

}  // namespace fist::bench
