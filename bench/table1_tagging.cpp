// table1_tagging — reproduces Table 1 (§3): the re-identification
// attack. The probe actor transacts with every service category; we
// report how many services per category were engaged, how many
// transactions that took, and how many addresses the tag feed labels —
// the paper's "344 transactions", "1,070 hand-tagged addresses" and
// ">5,000 public tags".
#include <cstdio>
#include <map>
#include <set>

#include "common.hpp"
#include "sim/probe.hpp"

using namespace fist;
using namespace fist::bench;

int main() {
  banner("Table 1 — services tagged via direct interaction (§3)",
         "Meiklejohn et al. 2013, Table 1 + §3.1/§3.2 counts");
  Experiment exp = run_experiment();
  const sim::World& world = *exp.world;

  // Per-category engagement, from the observed (probe) side of the
  // tag feed.
  std::map<Category, std::set<std::string>> observed_services;
  std::map<Category, std::size_t> observed_addrs;
  std::size_t observed_total = 0, scraped_total = 0, self_total = 0;
  for (const TagEntry& e : world.tag_feed()) {
    switch (e.tag.source) {
      case TagSource::Observed:
        observed_services[e.tag.category].insert(e.tag.service);
        observed_addrs[e.tag.category]++;
        ++observed_total;
        break;
      case TagSource::Scraped: ++scraped_total; break;
      case TagSource::SelfAdvertised: ++self_total; break;
    }
  }

  TextTable t({"Category", "Services engaged", "Addresses tagged"},
              {Align::Left, Align::Right, Align::Right});
  static constexpr Category kOrder[] = {
      Category::Mining,        Category::Wallet, Category::BankExchange,
      Category::FixedExchange, Category::Vendor, Category::Gambling,
      Category::Investment,    Category::Mix};
  std::size_t services_total = 0;
  for (Category c : kOrder) {
    t.row({std::string(category_name(c)),
           std::to_string(observed_services[c].size()),
           std::to_string(observed_addrs[c])});
    services_total += observed_services[c].size();
  }
  std::printf("%s\n", t.render().c_str());

  // The probe itself, for the transaction count.
  int interactions = 0;
  std::size_t probe_tagged = 0;
  for (std::size_t a = 0; a < world.actor_count(); ++a) {
    if (const auto* probe = dynamic_cast<const sim::ProbeActor*>(
            &world.actor(static_cast<sim::ActorId>(a)))) {
      interactions = probe->interactions();
      probe_tagged = probe->tagged_addresses();
    }
  }

  std::printf("%s\n",
              compare("services engaged", "~70 (Table 1)",
                      std::to_string(services_total))
                  .c_str());
  std::printf("%s\n", compare("probe transactions", "344",
                              std::to_string(interactions))
                          .c_str());
  std::printf("%s\n", compare("hand-tagged addresses", "1,070",
                              std::to_string(probe_tagged))
                          .c_str());
  std::printf("%s\n",
              compare("public-feed tags (scraped + self-advertised)",
                      ">5,000",
                      std::to_string(scraped_total + self_total))
                  .c_str());
  std::printf("\nShape check: every category engaged, observed tags are a\n"
              "small seed vs the public feed, exactly as in §3.\n");
  write_bench_report("table1_tagging", exp.pipeline.get(),
                     exp.world->tx_count());
  return 0;
}
