// table2_peeling — reproduces Table 2 (§5): tracking the dissolution of
// the 1DkyBEKt hoard. The simulated marketplace accumulates a hoard,
// empties it, and the final chunk splits into three peeling chains; we
// follow 100+ hops along each chain with Heuristic 2 and report, per
// service, the number of peels and total BTC received — then score the
// reconstruction against the simulator's journal.
#include <cstdio>
#include <map>

#include "analysis/peeling.hpp"
#include "common.hpp"

using namespace fist;
using namespace fist::bench;

int main() {
  banner("Table 2 — tracking bitcoins from the hoard (1DkyBEKt analogue)",
         "3 peeling chains x 100 hops; 54/300 peels reached exchanges");
  Experiment exp = run_experiment();
  const ForensicPipeline& pipe = *exp.pipeline;
  const sim::HoardRecord* hoard = exp.world->hoard();
  if (hoard == nullptr) {
    std::printf("hoard disabled in config\n");
    return 1;
  }

  std::printf("hoard address: %s\n", hoard->hoard_address.encode().c_str());
  std::printf("%s\n", compare("peak balance", "613,326 BTC (5% of supply)",
                              format_btc_whole(hoard->peak_balance) +
                                  " BTC (simulated economy)")
                          .c_str());
  std::printf("aggregate deposits into hoard: %zu   dissolution sends: %zu\n\n",
              hoard->deposit_txids.size(), hoard->withdrawal_txids.size());

  PeelFollower follower(pipe.view(), pipe.h2(), pipe.clustering(),
                        pipe.naming());

  // Rows: service; columns: (peels, BTC) per chain — Table 2's layout.
  struct Cell {
    int peels = 0;
    Amount total = 0;
  };
  std::map<std::string, std::array<Cell, 3>> table;
  std::map<std::string, Category> category_of;
  int hops[3] = {0, 0, 0};
  int named_peels = 0, total_peels = 0;
  Amount exchange_btc = 0;
  int exchange_peels = 0;

  for (int c = 0; c < 3; ++c) {
    TxIndex start = pipe.view().find_tx(hoard->chain_starts[c].txid);
    if (start == kNoTx) continue;
    PeelChainResult res = follower.follow(
        start, hoard->chain_starts[c].index, FollowOptions{115});
    hops[c] = res.hops;
    for (const Peel& p : res.peels) {
      ++total_peels;
      if (p.service.empty()) continue;
      ++named_peels;
      Cell& cell = table[p.service][static_cast<std::size_t>(c)];
      cell.peels += 1;
      cell.total += p.value;
      category_of[p.service] = p.category;
      if (is_exchange(p.category)) {
        ++exchange_peels;
        exchange_btc += p.value;
      }
    }
  }

  TextTable t({"Service", "Peels#1", "BTC#1", "Peels#2", "BTC#2", "Peels#3",
               "BTC#3"},
              {Align::Left, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right, Align::Right});
  // Category grouping, as the paper orders Table 2.
  static constexpr Category kGroups[] = {Category::BankExchange,
                                         Category::FixedExchange,
                                         Category::Wallet,
                                         Category::Gambling,
                                         Category::Vendor};
  for (Category g : kGroups) {
    bool any = false;
    for (const auto& [service, cells] : table) {
      if (category_of[service] != g) continue;
      any = true;
      std::vector<std::string> row{service};
      for (int c = 0; c < 3; ++c) {
        const Cell& cell = cells[static_cast<std::size_t>(c)];
        row.push_back(cell.peels ? std::to_string(cell.peels) : "");
        row.push_back(cell.peels ? format_btc_whole(cell.total) : "");
      }
      t.row(std::move(row));
    }
    if (any) t.separator();
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("%s\n", compare("hops followed per chain", "100/100/100",
                              std::to_string(hops[0]) + "/" +
                                  std::to_string(hops[1]) + "/" +
                                  std::to_string(hops[2]))
                          .c_str());
  std::printf("%s\n",
              compare("peels to exchanges", "54 of 300",
                      std::to_string(exchange_peels) + " of " +
                          std::to_string(total_peels))
                  .c_str());

  // Reconstruction quality vs the simulator's journal.
  int truth_named = 0;
  for (const sim::PeelTruth& p : hoard->peels)
    if (!p.service.empty()) ++truth_named;
  std::printf(
      "\nground truth: %zu peels executed, %d to named services;\n"
      "reconstructed %d peels, %d attributed to services (recall %.0f%%).\n",
      hoard->peels.size(), truth_named, total_peels, named_peels,
      truth_named ? 100.0 * named_peels / truth_named : 0.0);
  std::printf("\nThe paper's subpoena argument: every exchange row above is\n"
              "an account an agency could compel records for.\n");
  write_bench_report("table2_peeling", exp.pipeline.get(),
                     exp.world->tx_count());
  return 0;
}
