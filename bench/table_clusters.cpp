// table_clusters — reproduces the §4.1 clustering numbers: Heuristic 1
// partitions the address space into clusters; adding sink addresses
// bounds the user count; tags collapse same-service clusters (the
// paper found 20 distinct Mt. Gox clusters).
#include <cstdio>

#include "analysis/graph.hpp"
#include "cluster/metrics.hpp"
#include "common.hpp"

using namespace fist;
using namespace fist::bench;

int main() {
  banner("Heuristic-1 clustering (§4.1)",
         "5.5M clusters; <=6,595,564 users; 20 Mt. Gox clusters");
  Experiment exp = run_experiment();
  const ForensicPipeline& pipe = *exp.pipeline;
  const ChainView& view = pipe.view();

  // Parallel-vs-sequential differential: re-run the pipeline over the
  // same chain at threads=1 (the reference semantics) and compare the
  // per-stage wall-clock against the parallel run above.
  std::fprintf(stderr, "[bench] re-running pipeline at threads=1...\n");
  PipelineOptions seq_options;
  seq_options.threads = 1;
  ForensicPipeline seq(exp.world->store(), exp.world->tag_feed(),
                       std::move(seq_options));
  seq.run();
  print_speedup_table(seq, pipe);

  std::uint64_t bound = user_upper_bound(view, pipe.h1_clustering());

  // The paper's "5.5M clusters" counts users that ever spent; sink
  // addresses (never sent) are added separately for the upper bound.
  std::vector<std::uint8_t> spends(view.address_count(), 0);
  for (const TxView& tx : view.txs())
    for (const InputView& in : tx.inputs)
      if (in.addr != kNoAddr) spends[in.addr] = 1;
  std::vector<std::uint8_t> cluster_spends(
      pipe.h1_clustering().cluster_count(), 0);
  for (AddrId a = 0; a < view.address_count(); ++a)
    if (spends[a]) cluster_spends[pipe.h1_clustering().cluster_of(a)] = 1;
  std::uint64_t spending_clusters = 0;
  for (std::uint8_t f : cluster_spends) spending_clusters += f;

  TextTable t({"Quantity", "Paper (real chain)", "Measured (sim chain)"},
              {Align::Left, Align::Right, Align::Right});
  t.row({"addresses", "~12M", std::to_string(view.address_count())});
  t.row({"transactions", "~16M", std::to_string(view.tx_count())});
  t.row({"H1 clusters (spending users)", "5,500,000",
         std::to_string(spending_clusters)});
  t.row({"user upper bound (+ sink addresses)", "6,595,564",
         std::to_string(bound)});
  std::printf("%s\n", t.render().c_str());

  // Multi-cluster services under H1 (the "20 Mt. Gox clusters" effect:
  // big services spread funds over wallets that never co-spend).
  TextTable spread({"Service", "H1 clusters carrying its tags"},
                   {Align::Left, Align::Right});
  for (const char* name :
       {"Mt. Gox", "Bitstamp", "Instawallet", "Satoshi Dice", "Silk Road"}) {
    spread.row({name, std::to_string(
                          pipe.h1_naming().clusters_for_service(name))});
  }
  std::printf("%s\n", spread.render().c_str());
  std::printf(
      "%s\n",
      compare("Mt. Gox clusters under H1", "20",
              std::to_string(pipe.h1_naming().clusters_for_service("Mt. Gox")))
          .c_str());

  // §5's opening claim, quantified: exchanges are chokepoints — the
  // largest named sink of inter-entity value.
  UserGraph graph = UserGraph::build(view, pipe.clustering());
  std::printf("\nchokepoints: share of all inter-entity flow received, by "
              "category (§5):\n");
  for (const CategoryFlowShare& s : category_flow_shares(graph, pipe.naming())) {
    std::printf("  %-10s %5.1f%%  (%s BTC)\n",
                std::string(category_name(s.category)).c_str(),
                100 * s.share, format_btc_whole(s.received).c_str());
  }

  // Ratios, which is where shape comparison is meaningful.
  double cluster_ratio =
      static_cast<double>(pipe.h1_clustering().cluster_count()) /
      static_cast<double>(view.address_count());
  std::printf("\nclusters/addresses ratio: paper=0.46 measured=%.2f\n",
              cluster_ratio);
  std::printf("(H1 leaves roughly half of all addresses unmerged in both\n"
              "the real chain and the simulated one.)\n");
  write_bench_report("table_clusters", &pipe, exp.world->tx_count());
  return 0;
}
