// table3_thefts — reproduces Table 3 (§5): tracking thefts. Each
// scripted theft is followed from its (publicly identifiable) theft
// transactions; the tracker classifies the movement pattern
// (A=aggregation, P=peeling chain, S=split, F=folding) and reports
// whether tainted coins reached known exchanges — the paper's key
// "thieves must cash out through chokepoints" result.
#include <cstdio>
#include <set>

#include "analysis/theft.hpp"
#include "common.hpp"

using namespace fist;
using namespace fist::bench;

namespace {

// Table 3 of the paper, for the side-by-side print.
struct PaperRow {
  const char* label;
  const char* btc;
  const char* date;
  const char* movement;
  const char* exchanges;
};
constexpr PaperRow kPaper[] = {
    {"MyBitcoin", "4,019", "Jun 2011", "A/P/S", "Yes"},
    {"Linode", "46,648", "Mar 2012", "A/P/F", "Yes"},
    {"Betcoin", "3,171", "Mar 2012", "F/A/P", "Yes"},
    {"Bitcoinica (May)", "18,547", "May 2012", "P/A", "Yes"},
    {"Bitcoinica (Jul)", "40,000", "Jul 2012", "P/A/S", "Yes"},
    {"Bitfloor", "24,078", "Sep 2012", "P/A/P", "Yes"},
    {"Trojan", "3,257", "Oct 2012", "F/A", "No"},
};

}  // namespace

int main() {
  banner("Table 3 — tracking thefts (§5)",
         "movement grammar A/P/S/F; exchange reach per theft");
  Experiment exp = run_experiment();
  const ForensicPipeline& pipe = *exp.pipeline;

  TextTable t({"Theft", "BTC(paper)", "BTC(sim)", "Movement(paper)",
               "Movement(tracked)", "Exch?(paper)", "Exch?(tracked)",
               "BTC to exch", "Dormant"},
              {Align::Left, Align::Right, Align::Right, Align::Left,
               Align::Left, Align::Left, Align::Left, Align::Right,
               Align::Right});

  int matches = 0;
  int exchange_matches = 0;
  for (const sim::TheftRecord& rec : exp.world->thefts()) {
    std::vector<TxIndex> txs;
    for (const Hash256& h : rec.theft_txids) {
      TxIndex idx = pipe.view().find_tx(h);
      if (idx != kNoTx) txs.push_back(idx);
    }
    std::vector<AddrId> thief;
    for (const Address& a : rec.thief_addresses)
      if (auto id = pipe.view().addresses().find(a)) thief.push_back(*id);

    TheftTrace trace = track_theft(pipe.view(), pipe.h2(),
                                   pipe.clustering(), pipe.naming(), txs,
                                   thief);

    const PaperRow* paper = nullptr;
    for (const PaperRow& row : kPaper)
      if (rec.scenario.label == row.label) paper = &row;

    bool reached = !trace.exchange_deposits.empty();
    t.row({rec.scenario.label, paper ? paper->btc : "?",
           format_btc_whole(rec.stolen), paper ? paper->movement : "?",
           trace.movement.empty() ? "(unmoved)" : trace.movement,
           paper ? paper->exchanges : "?", reached ? "Yes" : "No",
           format_btc_whole(trace.to_exchanges),
           format_btc_whole(trace.dormant)});

    if (paper != nullptr) {
      if (trace.movement == paper->movement) ++matches;
      bool paper_reached = std::string(paper->exchanges) == "Yes";
      if (paper_reached == reached) ++exchange_matches;
    }
  }
  std::printf("%s\n", t.render().c_str());

  std::printf("%s\n", compare("movement patterns matched", "7 of 7",
                              std::to_string(matches) + " of 7")
                          .c_str());
  std::printf("%s\n",
              compare("exchange-reach verdicts matched", "7 of 7",
                      std::to_string(exchange_matches) + " of 7")
                  .c_str());

  // Which exchanges received loot — the paper names Mt. Gox, BTC-e,
  // Bitstamp, Bitcoin-24 across its case studies.
  std::set<std::string> receiving;
  for (const sim::TheftRecord& rec : exp.world->thefts()) {
    std::vector<TxIndex> txs;
    for (const Hash256& h : rec.theft_txids) {
      TxIndex idx = pipe.view().find_tx(h);
      if (idx != kNoTx) txs.push_back(idx);
    }
    std::vector<AddrId> thief;
    for (const Address& a : rec.thief_addresses)
      if (auto id = pipe.view().addresses().find(a)) thief.push_back(*id);
    TheftTrace trace = track_theft(pipe.view(), pipe.h2(),
                                   pipe.clustering(), pipe.naming(), txs,
                                   thief);
    for (const ExchangeDeposit& d : trace.exchange_deposits)
      receiving.insert(d.service);
  }
  std::printf("\nexchanges that received stolen coins:");
  for (const std::string& s : receiving) std::printf(" [%s]", s.c_str());
  std::printf("\n\nThe Betcoin thief sat on the loot for ~a year before the\n"
              "aggregation + peeling run — visible above as a late, highly\n"
              "trackable chain, exactly the paper's story.\n");
  write_bench_report("table3_thefts", exp.pipeline.get(),
                     exp.world->tx_count());
  return 0;
}
