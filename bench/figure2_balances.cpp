// figure2_balances — reproduces Figure 2: per-category balances over
// time as a percentage of active bitcoins (coins not parked in sink
// addresses). Prints the weekly series as an ASCII chart plus the
// final-snapshot ranking.
#include <algorithm>
#include <cstdio>

#include "analysis/balances.hpp"
#include "common.hpp"

using namespace fist;
using namespace fist::bench;

int main() {
  banner("Figure 2 — category balances (% of active coins)",
         "exchanges/mining/wallets/gambling/vendors/fixed/investment");
  Experiment exp = run_experiment();
  const ForensicPipeline& pipe = *exp.pipeline;

  BalanceSeries series = category_balances(
      pipe.view(), pipe.clustering(), pipe.naming(), kWeek);
  if (series.times.empty()) {
    std::printf("no data\n");
    return 1;
  }

  // Trim the final weeks: "active" excludes addresses that never spend
  // within the observation window, so the series tail under-counts the
  // active supply (coins received near the end look parked). The same
  // boundary artifact exists in any fixed-window study.
  std::size_t usable = series.times.size() > 4 ? series.times.size() - 4
                                               : series.times.size();
  series.times.resize(usable);
  series.active_supply.resize(usable);
  series.total_supply.resize(usable);
  for (CategoryTrack& track : series.tracks) {
    track.balance.resize(usable);
    track.pct_active.resize(usable);
  }

  // Print a sampled numeric series (every ~4th week).
  TextTable t({"Week of", "exch", "mining", "wallets", "gambl", "vendor",
               "fixed", "invest", "active BTC"},
              {Align::Left, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right, Align::Right, Align::Right,
               Align::Right});
  auto track_of = [&](Category c) -> const CategoryTrack* {
    for (const CategoryTrack& track : series.tracks)
      if (track.category == c) return &track;
    return nullptr;
  };
  static constexpr Category kCols[] = {
      Category::BankExchange, Category::Mining,   Category::Wallet,
      Category::Gambling,     Category::Vendor,   Category::FixedExchange,
      Category::Investment};

  for (std::size_t i = 0; i < series.times.size();
       i += std::max<std::size_t>(1, series.times.size() / 16)) {
    std::vector<std::string> row{format_date(series.times[i])};
    for (Category c : kCols) {
      const CategoryTrack* track = track_of(c);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.1f%%",
                    track ? track->pct_active[i] : 0.0);
      row.push_back(buf);
    }
    row.push_back(format_btc_whole(series.active_supply[i]));
    t.row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());

  // ASCII sparkline per category (normalized to the figure's 0-14%).
  std::printf("Trend (one char per week, '.'<1%% ':'<3%% '*'<7%% '#'>=7%% "
              "of active coins):\n");
  for (Category c : kCols) {
    const CategoryTrack* track = track_of(c);
    if (track == nullptr) continue;
    std::string line;
    for (double pct : track->pct_active) {
      line += pct < 1 ? '.' : pct < 3 ? ':' : pct < 7 ? '*' : '#';
    }
    std::printf("  %-10s %s\n", std::string(category_name(c)).c_str(),
                line.c_str());
  }

  // Final ranking: the paper's figure shows exchanges dominating the
  // named categories late in the study, with gambling/wallets next.
  std::vector<std::pair<double, Category>> final_ranking;
  for (Category c : kCols) {
    const CategoryTrack* track = track_of(c);
    if (track) final_ranking.emplace_back(track->pct_active.back(), c);
  }
  std::sort(final_ranking.rbegin(), final_ranking.rend());
  std::printf("\nFinal-snapshot ranking (paper: exchanges lead the named "
              "categories):\n");
  for (auto& [pct, c] : final_ranking)
    std::printf("  %-10s %5.1f%%\n", std::string(category_name(c)).c_str(),
                pct);

  bool exchanges_lead = final_ranking[0].second == Category::BankExchange ||
                        final_ranking[1].second == Category::BankExchange;
  std::printf("\nshape check: exchanges among top-2 categories: %s\n",
              exchanges_lead ? "yes (matches paper)" : "NO");
  write_bench_report("figure2_balances", exp.pipeline.get(),
                     exp.world->tx_count());
  return 0;
}
