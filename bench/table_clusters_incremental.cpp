// table_clusters_incremental — incremental clustering cost vs the full
// rebuild. The paper's pipeline is batch (§4: cluster the whole chain,
// then analyze); a live investigation instead folds each new block
// into the standing index. This bench measures what that buys and what
// it costs: full-rebuild wall-clock (the batch pipeline over the same
// chain), end-to-end incremental build time, and the per-block
// `delta.apply` latency distribution (p50/p99 from the
// delta.apply_micros histogram) that an operator tailing the chain tip
// would actually feel.
//
// The committed baseline gates delta_apply_p99_us via
// scripts/check_bench_trend.py --extra-field (CI bench job).
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "cluster/incremental.hpp"
#include "common.hpp"
#include "core/live_index.hpp"
#include "core/obs/quantile.hpp"
#include "util/table.hpp"

using namespace fist;
using namespace fist::bench;

int main() {
  banner("Incremental block-delta clustering (§4.1, live index)",
         "batch pipeline rebuilt per analysis; here: per-block deltas");
  Experiment exp = run_experiment();
  const ForensicPipeline& pipe = *exp.pipeline;
  double batch_ms = 0;
  for (const StageTiming& t : pipe.timings()) batch_ms += t.millis;

  // Incremental side: a fresh LiveIndex fed the same blocks one at a
  // time, snapshotting periodically like a live deployment would. Same
  // refined H2 options as the pipeline; the dice exemption uses the
  // feed's gambling addresses directly (the live-path approximation
  // documented at fistctl's `live` command — irrelevant to timing).
  LiveIndex::Options options;
  options.h2 = refined_h2_options();
  for (const TagEntry& entry : exp.world->tag_feed())
    if (entry.tag.category == Category::Gambling)
      options.dice_addresses.push_back(entry.address);
  options.snapshot_every = 256;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fistful_bench_live_index";
  std::filesystem::remove_all(dir);
  auto t0 = std::chrono::steady_clock::now();
  LiveIndex index(dir, options);
  const BlockStore& store = exp.world->store();
  for (std::size_t i = 0; i < store.count(); ++i) index.append(store.read(i));
  index.snapshot();
  auto t1 = std::chrono::steady_clock::now();
  double live_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::filesystem::remove_all(dir);

  // Per-block apply latency straight from the instrumented histogram
  // (every append() observed one delta.apply_micros sample).
  obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
  const obs::HistogramValue* h = snap.histogram("delta.apply_micros");
  double p50 = h != nullptr ? obs::histogram_quantile(*h, 0.50) : 0.0;
  double p99 = h != nullptr ? obs::histogram_quantile(*h, 0.99) : 0.0;

  char buf[64];
  TextTable t({"Quantity", "Value"}, {Align::Left, Align::Right});
  t.row({"blocks", std::to_string(store.count())});
  t.row({"transactions", std::to_string(exp.world->tx_count())});
  std::snprintf(buf, sizeof buf, "%.1f", batch_ms);
  t.row({"full rebuild (batch pipeline, ms)", buf});
  std::snprintf(buf, sizeof buf, "%.1f", live_ms);
  t.row({"incremental build (per-block deltas, ms)", buf});
  std::snprintf(buf, sizeof buf, "%.1f", p50);
  t.row({"delta.apply p50 (us)", buf});
  std::snprintf(buf, sizeof buf, "%.1f", p99);
  t.row({"delta.apply p99 (us)", buf});
  std::printf("%s\n", t.render().c_str());

  // Differential sanity: the incremental H1 partition must match the
  // batch pipeline's (the test suite enforces bit-identity; the bench
  // just refuses to publish numbers for a broken build).
  if (index.clusterer().h1_clustering().cluster_count() !=
      pipe.h1_clustering().cluster_count()) {
    std::fprintf(stderr,
                 "[bench] FATAL: incremental H1 cluster count diverged "
                 "from batch\n");
    return 1;
  }

  write_bench_report("table_clusters_incremental", &pipe,
                     exp.world->tx_count(),
                     {{"incremental_build_ms", live_ms},
                      {"delta_apply_p50_us", p50},
                      {"delta_apply_p99_us", p99}});
  return 0;
}
