// table_clusters_large — the §4.1 clustering numbers at paper scale,
// built out-of-core: the economy streams block by block into an
// on-disk store (history never materializes in memory), and the
// pipeline's view stage rebuilds it through a bounded decode window.
// The default profile targets ~2M transactions (CI's nightly gate);
// FISTFUL_BENCH_DAYS / FISTFUL_BENCH_USERS push it to the paper's 16M
// locally. The report's peak_rss_bytes is the number the trend gate
// watches: it must stay flat as transaction count grows past RAM.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include <unistd.h>

#include "chain/blockstore.hpp"
#include "common.hpp"
#include "sim/stream.hpp"

using namespace fist;
using namespace fist::bench;

int main() {
  banner("Heuristic-1/2 clustering at paper scale (§4.1-4.2, out-of-core)",
         "~12M addresses, ~16M transactions on a memory-bounded build");

  sim::WorldConfig config = default_config();
  // This bench is the large profile: without an explicit scale or size
  // override it runs the ~2M-tx world even where the suite default is
  // smaller.
  if (std::getenv("FISTFUL_BENCH_SCALE") == nullptr &&
      std::getenv("FISTFUL_BENCH_DAYS") == nullptr &&
      std::getenv("FISTFUL_BENCH_USERS") == nullptr) {
    config.days = 1320;
    config.users = 2000;
    config.user_daily_activity = 1.0;
    // The default halving interval (2000 blocks) is tuned to put one
    // subsidy halving inside the 240-day default run. Left alone over
    // 1320 days it would halve eight times and starve the economy of
    // coin inflow (the paper's 2009-2013 window saw exactly one
    // halving); keep the same one-halving-mid-run shape at scale.
    config.halving_interval = config.days * 12 / 2;
  }
  std::uint32_t window = 64;
  if (const char* env = std::getenv("FISTFUL_BENCH_WINDOW"))
    window = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));

  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() /
                 ("fistful_bench_large." + std::to_string(::getpid()));
  fs::create_directories(dir);
  fs::path chain_path = dir / "chain.blk";

  // Phase 1: stream the economy straight to disk. The buffer high-water
  // mark proves generation itself ran memory-bounded.
  Executor gen_exec(bench_threads());
  auto t0 = std::chrono::steady_clock::now();
  std::fprintf(stderr,
               "[bench] streaming %d days, %d users to %s (window %u)...\n",
               config.days, config.users, chain_path.c_str(), window);
  sim::BlockStreamer streamer(config, &gen_exec);
  std::uint64_t blocks = 0;
  {
    FileBlockStore store(chain_path);
    streamer.run([&](const Block& block) {
      store.append(block);
      ++blocks;
    });
  }
  auto t1 = std::chrono::steady_clock::now();
  std::uint64_t txs = streamer.world().tx_count();
  std::fprintf(
      stderr,
      "[bench] streamed %llu blocks / %llu txs (%llu MiB on disk, "
      "buffer high-water %zu blocks) in %lld ms\n",
      static_cast<unsigned long long>(blocks),
      static_cast<unsigned long long>(txs),
      static_cast<unsigned long long>(fs::file_size(chain_path) >> 20),
      streamer.max_buffered(),
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
              .count()));

  // Phase 2: the full forensic pipeline (view + H1 + H2 + naming) over
  // the on-disk chain through the bounded decode window.
  int status = 0;
  {
    FileBlockStore store(chain_path);
    PipelineOptions options;
    options.threads = bench_threads();
    options.window_blocks = window;
    options.recovery = RecoveryPolicy::Lenient;
    ForensicPipeline pipeline(store, streamer.world().tag_feed(), options);
    pipeline.run();
    std::fprintf(stderr, "%s", stage_table(pipeline).c_str());

    TextTable t({"Quantity", "Paper (real chain)", "Measured (sim chain)"},
                {Align::Left, Align::Right, Align::Right});
    t.row({"addresses", "~12M",
           std::to_string(pipeline.view().address_count())});
    t.row({"transactions", "~16M", std::to_string(pipeline.view().tx_count())});
    t.row({"H1 clusters", "5,500,000",
           std::to_string(pipeline.h1_clustering().cluster_count())});
    t.row({"H1+H2 clusters", "3,384,179",
           std::to_string(pipeline.clustering().cluster_count())});
    std::printf("%s\n", t.render().c_str());

    write_bench_report("table_clusters_large", &pipeline, txs);
    if (pipeline.ingest_report().quarantined()) {
      std::fprintf(stderr, "[bench] quarantined %zu block(s), %zu tx(s)\n",
                   pipeline.ingest_report().blocks.size(),
                   pipeline.ingest_report().txs.size());
      status = 3;  // "completed with casualties", as fistctl reports it
    }
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
  return status;
}
