// ablation_heuristics — one-factor-at-a-time ablation of every §4.2
// refinement, over one chain. For each variant: label counts, the
// time-stepped FP rate, cluster count, and exact precision against
// simulator ground truth. This is the engineering companion to
// table_heuristic2 (which shows the paper's cumulative ladder).
#include <cstdio>

#include "cluster/metrics.hpp"
#include "common.hpp"

using namespace fist;
using namespace fist::bench;

int main() {
  banner("Ablation — Heuristic-2 refinements, one factor at a time",
         "design-choice accounting for §4.2 (DESIGN.md ablation index)");
  Experiment exp = run_experiment();
  const ForensicPipeline& pipe = *exp.pipeline;
  const ChainView& view = pipe.view();
  const auto& dice = pipe.dice_addresses();

  std::vector<std::uint32_t> owners(view.address_count(), kUnknownOwner);
  for (AddrId a = 0; a < view.address_count(); ++a) {
    sim::ActorId owner =
        exp.world->truth().owner(view.addresses().lookup(a));
    if (owner != sim::kNoActor) owners[a] = owner;
  }

  struct Variant {
    const char* name;
    H2Options options;
  };
  H2Options base;  // the naive heuristic
  H2Options refined = refined_h2_options();

  auto with = [&](auto mutate) {
    H2Options o = base;
    mutate(o);
    return o;
  };
  auto without = [&](auto mutate) {
    H2Options o = refined;
    mutate(o);
    return o;
  };

  std::vector<Variant> variants = {
      {"naive (baseline)", base},
      {"only dice exemption",
       with([](H2Options& o) { o.exempt_dice_rebounds = true; })},
      {"only 1-week wait", with([](H2Options& o) { o.wait_window = kWeek; })},
      {"only reused-change guard",
       with([](H2Options& o) { o.guard_reused_change = true; })},
      {"only self-change-history guard",
       with([](H2Options& o) { o.guard_self_change_history = true; })},
      {"only future-reuse resolver",
       with([](H2Options& o) { o.resolve_ambiguous_via_future = true; })},
      {"only min-outputs=2", with([](H2Options& o) { o.min_outputs = 2; })},
      {"refined (all)", refined},
      {"refined minus dice exemption",
       without([](H2Options& o) { o.exempt_dice_rebounds = false; })},
      {"refined minus wait",
       without([](H2Options& o) { o.wait_window = 0; })},
      {"refined minus guards", without([](H2Options& o) {
         o.guard_reused_change = false;
         o.guard_self_change_history = false;
       })},
      {"refined minus resolver", without([](H2Options& o) {
         o.resolve_ambiguous_via_future = false;
       })},
  };

  TextTable t({"Variant", "Labels", "FP rate", "Clusters", "Precision",
               "Recall"},
              {Align::Left, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Right});
  for (const Variant& v : variants) {
    H2Result r = apply_heuristic2(view, v.options, dice);
    H2FalsePositives fp =
        estimate_h2_false_positives(view, r, v.options, dice);
    UnionFind uf(view.address_count());
    apply_heuristic1(view, uf);
    unite_h2_labels(view, r, uf);
    Clustering c = Clustering::from_union_find(uf);
    PairwiseScores s = pairwise_scores(c.assignment(), owners);
    char rate[16], prec[16], rec[16];
    std::snprintf(rate, sizeof(rate), "%.2f%%", 100 * fp.rate());
    std::snprintf(prec, sizeof(prec), "%.3f", s.precision);
    std::snprintf(rec, sizeof(rec), "%.3f", s.recall);
    t.row({v.name, std::to_string(r.label_count()), rate,
           std::to_string(c.cluster_count()), prec, rec});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading guide:\n"
      "  * the dice exemption cuts the FP rate ~7x at zero label cost;\n"
      "  * the reused-change guard alone already prevents nearly every\n"
      "    wrong merge (precision ~0.99) — it is the super-cluster fix;\n"
      "  * the future-reuse resolver adds recall but is only safe in\n"
      "    combination with the dice exemption: without it, rebounds make\n"
      "    true change addresses look reused and the resolver mislabels\n"
      "    at scale (precision collapses — the super-cluster failure);\n"
      "  * min-outputs=2 shows the paper's definition is already safe\n"
      "    for 1-output sweeps.\n");
  write_bench_report("ablation_heuristics", exp.pipeline.get(),
                     exp.world->tx_count());
  return 0;
}
