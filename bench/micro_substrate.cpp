// micro_substrate — engineering microbenchmarks for every substrate the
// reproduction is built on: hashing, encoding, (de)serialization,
// secp256k1 key generation, union-find, and full heuristic passes over
// a simulated chain. Not a paper table; these quantify the design
// choices DESIGN.md calls out (fast fixed-base EC multiply, dense
// address interning, single-pass Heuristic 2).
#include <benchmark/benchmark.h>

#include "chain/view.hpp"
#include "cluster/heuristic1.hpp"
#include "cluster/heuristic2.hpp"
#include "common.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/span.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/merkle.hpp"
#include "crypto/ripemd160.hpp"
#include "crypto/sha256.hpp"
#include "encoding/base58.hpp"
#include "script/standard.hpp"
#include "sim/keyfactory.hpp"

namespace {

using namespace fist;

void BM_Sha256_1KiB(benchmark::State& state) {
  Bytes data(1024, 0xab);
  for (auto _ : state) benchmark::DoNotOptimize(sha256(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Hash256_TxidSized(benchmark::State& state) {
  Bytes data(250, 0x42);  // typical tx size
  for (auto _ : state) benchmark::DoNotOptimize(hash256(data));
}
BENCHMARK(BM_Hash256_TxidSized);

void BM_Ripemd160(benchmark::State& state) {
  Bytes data(33, 0x02);  // pubkey-sized
  for (auto _ : state) benchmark::DoNotOptimize(ripemd160(data));
}
BENCHMARK(BM_Ripemd160);

void BM_Base58Check_Address(benchmark::State& state) {
  Bytes payload(21, 0x00);
  for (auto _ : state)
    benchmark::DoNotOptimize(base58check_encode(payload));
}
BENCHMARK(BM_Base58Check_Address);

void BM_Keygen_Fast(benchmark::State& state) {
  sim::KeyFactory factory(sim::KeyMode::Fast, Rng(1));
  for (auto _ : state) benchmark::DoNotOptimize(factory.mint());
}
BENCHMARK(BM_Keygen_Fast);

void BM_Keygen_RealSecp256k1(benchmark::State& state) {
  sim::KeyFactory factory(sim::KeyMode::Real, Rng(1));
  for (auto _ : state) benchmark::DoNotOptimize(factory.mint());
}
BENCHMARK(BM_Keygen_RealSecp256k1);

void BM_EcdsaSign(benchmark::State& state) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("k")));
  Hash256 digest = hash256(to_bytes(std::string("m")));
  for (auto _ : state) benchmark::DoNotOptimize(ecdsa_sign(key, digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("k")));
  PublicKey pub = key.pubkey();
  Hash256 digest = hash256(to_bytes(std::string("m")));
  Signature sig = ecdsa_sign(key, digest);
  for (auto _ : state)
    benchmark::DoNotOptimize(ecdsa_verify(pub, digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

Transaction bench_tx() {
  Transaction tx;
  for (int i = 0; i < 2; ++i) {
    TxIn in;
    in.prevout.txid = hash256(to_bytes("p" + std::to_string(i)));
    in.script_sig = make_p2pkh_scriptsig(Bytes(71, 0x30), Bytes(33, 0x02));
    tx.inputs.push_back(in);
  }
  for (int i = 0; i < 2; ++i)
    tx.outputs.push_back(
        TxOut{btc(1), make_p2pkh(hash160(to_bytes(std::to_string(i))))});
  return tx;
}

void BM_TxSerialize(benchmark::State& state) {
  Transaction tx = bench_tx();
  for (auto _ : state) benchmark::DoNotOptimize(tx.serialize());
}
BENCHMARK(BM_TxSerialize);

void BM_TxDeserialize(benchmark::State& state) {
  Bytes raw = bench_tx().serialize();
  for (auto _ : state)
    benchmark::DoNotOptimize(Transaction::from_bytes(raw));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(raw.size()));
}
BENCHMARK(BM_TxDeserialize);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    Bytes b{static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8)};
    leaves.push_back(hash256(b));
  }
  for (auto _ : state) benchmark::DoNotOptimize(merkle_root(leaves));
}
BENCHMARK(BM_MerkleRoot)->Arg(64)->Arg(1024);

void BM_UnionFind_UniteFind(benchmark::State& state) {
  const std::size_t n = 1'000'000;
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    UnionFind uf(n);
    state.ResumeTiming();
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t a = static_cast<std::uint32_t>(rng.below(n));
      std::uint32_t b = static_cast<std::uint32_t>(rng.below(n));
      uf.unite(a, b);
    }
    benchmark::DoNotOptimize(uf.set_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_UnionFind_UniteFind)->Unit(benchmark::kMillisecond);

// Whole-pipeline passes over a mid-size simulated chain: built once,
// shared across benchmark registrations.
const ChainView& shared_view() {
  static const ChainView* view = [] {
    sim::WorldConfig cfg;
    cfg.days = 120;
    cfg.users = 200;
    cfg.seed = 5;
    sim::World world(cfg);
    world.run();
    return new ChainView(ChainView::build(world.store()));
  }();
  return *view;
}

void BM_ChainViewBuild(benchmark::State& state) {
  sim::WorldConfig cfg;
  cfg.days = 60;
  cfg.users = 120;
  cfg.seed = 6;
  sim::World world(cfg);
  world.run();
  for (auto _ : state)
    benchmark::DoNotOptimize(ChainView::build(world.store()));
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(world.tx_count()));
}
BENCHMARK(BM_ChainViewBuild)->Unit(benchmark::kMillisecond);

void BM_Heuristic1_FullPass(benchmark::State& state) {
  const ChainView& view = shared_view();
  for (auto _ : state) {
    UnionFind uf(view.address_count());
    apply_heuristic1(view, uf);
    benchmark::DoNotOptimize(uf.set_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(view.tx_count()));
}
BENCHMARK(BM_Heuristic1_FullPass)->Unit(benchmark::kMillisecond);

void BM_Heuristic2_Naive(benchmark::State& state) {
  const ChainView& view = shared_view();
  for (auto _ : state)
    benchmark::DoNotOptimize(apply_heuristic2(view, H2Options{}));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(view.tx_count()));
}
BENCHMARK(BM_Heuristic2_Naive)->Unit(benchmark::kMillisecond);

void BM_Heuristic2_Refined(benchmark::State& state) {
  const ChainView& view = shared_view();
  H2Options opt = refined_h2_options();
  for (auto _ : state)
    benchmark::DoNotOptimize(apply_heuristic2(view, opt));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(view.tx_count()));
}
BENCHMARK(BM_Heuristic2_Refined)->Unit(benchmark::kMillisecond);

// ---- observability overhead ------------------------------------------
//
// The FISTFUL_NO_OBS acceptance test: BM_Obs_HotLoop_Bare vs
// BM_Obs_HotLoop_Counted run the same arithmetic loop without / with a
// counter increment per iteration. In a -DFISTFUL_NO_OBS=ON build the
// counter compiles to nothing and the two must be within noise (<1%);
// in a normal build the delta is the true per-event cost.

void BM_Obs_CounterAdd(benchmark::State& state) {
  obs::Counter c = obs::MetricsRegistry::global().counter("bm.counter");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_CounterAdd);

void BM_Obs_HistogramObserve(benchmark::State& state) {
  obs::Histogram h = obs::MetricsRegistry::global().histogram(
      "bm.histogram", {1, 2, 4, 8, 16, 32});
  double v = 0;
  for (auto _ : state) {
    h.observe(v);
    v = v < 40 ? v + 1 : 0;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_HistogramObserve);

void BM_Obs_Span(benchmark::State& state) {
  obs::Trace trace;
  obs::TraceScope scope(trace);
  for (auto _ : state) {
    obs::Span span("bm.span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Obs_Span);

void BM_Obs_HotLoop_Bare(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 4096; ++i) acc += i * i;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Obs_HotLoop_Bare);

void BM_Obs_HotLoop_Counted(benchmark::State& state) {
  obs::Counter c = obs::MetricsRegistry::global().counter("bm.hot_loop");
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 4096; ++i) {
      acc += i * i;
      c.inc();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Obs_HotLoop_Counted);

}  // namespace

BENCHMARK_MAIN();
