// ablation_evasion — the paper's open problem, §6:
//
//   "We posit that to completely thwart our heuristics would require a
//    significant effort on the part of the user ... we leave a
//    quantitative analysis of this hypothesis as an interesting open
//    problem."
//
// This bench runs that analysis over the simulator: each row re-runs
// the economy with users adopting one privacy discipline, then measures
// how much of the analyst's power survives — Heuristic-2 label
// coverage, clustering recall against ground truth, and whether theft
// flows still reach exchanges visibly.
#include <cstdio>

#include "analysis/theft.hpp"
#include "cluster/metrics.hpp"
#include "common.hpp"

using namespace fist;
using namespace fist::bench;

namespace {

struct Row {
  const char* name;
  const char* cost;  ///< the usability price of the discipline
  sim::WorldConfig config;
};

struct Measured {
  double label_rate = 0;   ///< H2 labels per non-coinbase tx
  double recall = 0;
  double precision = 0;
  int exchange_hits = 0;   ///< thefts whose loot visibly reached exchanges
  int thefts = 0;
};

Measured measure(const sim::WorldConfig& config) {
  sim::World world(config);
  world.run();
  ForensicPipeline pipe(world.store(), world.tag_feed());
  pipe.run();
  const ChainView& view = pipe.view();

  Measured m;
  std::uint64_t spends = 0;
  for (const TxView& tx : view.txs())
    if (!tx.coinbase) ++spends;
  m.label_rate = spends ? static_cast<double>(pipe.h2().label_count()) /
                              static_cast<double>(spends)
                        : 0;

  std::vector<std::uint32_t> owners(view.address_count(), kUnknownOwner);
  for (AddrId a = 0; a < view.address_count(); ++a) {
    sim::ActorId owner = world.truth().owner(view.addresses().lookup(a));
    if (owner != sim::kNoActor) owners[a] = owner;
  }
  PairwiseScores s =
      pairwise_scores(pipe.clustering().assignment(), owners);
  m.recall = s.recall;
  m.precision = s.precision;

  for (const sim::TheftRecord& rec : world.thefts()) {
    if (!rec.scenario.to_exchange) continue;
    ++m.thefts;
    std::vector<TxIndex> txs;
    for (const Hash256& h : rec.theft_txids) {
      TxIndex t = view.find_tx(h);
      if (t != kNoTx) txs.push_back(t);
    }
    std::vector<AddrId> thief;
    for (const Address& a : rec.thief_addresses)
      if (auto id = view.addresses().find(a)) thief.push_back(*id);
    TheftTrace trace = track_theft(view, pipe.h2(), pipe.clustering(),
                                   pipe.naming(), txs, thief);
    if (!trace.exchange_deposits.empty()) ++m.exchange_hits;
  }
  return m;
}

}  // namespace

int main() {
  banner("Evasion ablation — §6's open problem, quantified",
         "how much user effort does it take to thwart the heuristics?");

  sim::WorldConfig base = default_config();
  base.days = 160;  // one economy per row: keep each run modest
  base.users = 250;

  std::vector<Row> rows;
  rows.push_back({"2013 status quo (baseline)", "-", base});

  sim::WorldConfig fresh = base;
  fresh.p_reuse_receive = 0.0;
  rows.push_back({"never reuse receive addresses",
                  "new address for every payment", fresh});

  sim::WorldConfig self = base;
  self.p_self_change = 0.95;
  rows.push_back({"everyone uses self-change",
                  "change addresses are public", self});

  sim::WorldConfig mixed = base;
  mixed.p_mix = 0.25;
  mixed.p_gamble = 0.15;
  rows.push_back({"heavy mixer use (25% of actions)",
                  "fees + counterparty risk (BitMix stole!)", mixed});

  sim::WorldConfig all = base;
  all.p_reuse_receive = 0.0;
  all.p_mix = 0.25;
  all.p_gamble = 0.15;
  rows.push_back({"fresh addresses + heavy mixing",
                  "all of the above", all});

  TextTable t({"User discipline", "H2 labels/tx", "Recall", "Precision",
               "Thefts reaching exchanges", "Usability cost"},
              {Align::Left, Align::Right, Align::Right, Align::Right,
               Align::Right, Align::Left});
  for (const Row& row : rows) {
    std::fprintf(stderr, "[evasion] %s...\n", row.name);
    Measured m = measure(row.config);
    char lr[16], rec[16], prec[16], ex[24];
    std::snprintf(lr, sizeof(lr), "%.2f", m.label_rate);
    std::snprintf(rec, sizeof(rec), "%.3f", m.recall);
    std::snprintf(prec, sizeof(prec), "%.3f", m.precision);
    std::snprintf(ex, sizeof(ex), "%d of %d", m.exchange_hits, m.thefts);
    t.row({row.name, lr, rec, prec, ex, row.cost});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "The paper's hypothesis holds: single disciplines dent the\n"
      "heuristics but do not blind them — and the one that does the most\n"
      "(routing through mixers) was exactly the service class the paper\n"
      "found too small to launder at scale, and partly larcenous.\n");
  // The per-row pipelines are local to measure(); the report carries
  // the accumulated registry across all rows.
  write_bench_report("ablation_evasion");
  return 0;
}
