// Unit tests for the reusable money-movement helpers (sim/flows.hpp).
#include <gtest/gtest.h>

#include "chain/view.hpp"
#include "sim/flows.hpp"
#include "sim/services.hpp"

namespace fist::sim {
namespace {

class FlowsTest : public ::testing::Test {
 protected:
  FlowsTest() : world_(config()) {
    for (int d = 0; d < 25; ++d) world_.run_day();
  }

  static WorldConfig config() {
    WorldConfig cfg;
    cfg.days = 60;
    cfg.users = 50;
    cfg.blocks_per_day = 8;
    cfg.coinbase_maturity = 12;
    cfg.seed = 21;
    cfg.enable_probe = false;
    cfg.enable_thefts = false;
    return cfg;
  }

  Actor& rich_user() {
    // Find a user with a healthy balance to drive flows from.
    Actor* best = nullptr;
    for (ActorId id : world_.of_category(Category::BankExchange)) {
      Actor& a = world_.actor(id);
      if (best == nullptr ||
          a.wallet().total_balance() > best->wallet().total_balance())
        best = &a;
    }
    EXPECT_NE(best, nullptr);
    return *best;
  }

  World world_;
};

TEST_F(FlowsTest, LargestCoinFindsTheBiggest) {
  Actor& actor = rich_user();
  auto coin = largest_coin(actor.wallet(), world_.height(),
                           world_.maturity());
  ASSERT_TRUE(coin.has_value());
  for (const WalletCoin& c : actor.wallet().coins()) {
    if (c.coinbase && world_.height() - c.height < world_.maturity())
      continue;
    EXPECT_LE(c.value, coin->value);
  }
}

TEST_F(FlowsTest, PeelHopSpendsExactlyTheCoin) {
  Actor& actor = rich_user();
  auto coin =
      largest_coin(actor.wallet(), world_.height(), world_.maturity());
  ASSERT_TRUE(coin.has_value());
  Amount peel = coin->value / 10;
  Address to = world_.actor(world_.random_user(world_.rng()))
                   .wallet()
                   .receive_address();
  auto hop = peel_hop(world_, actor, coin->outpoint, to, peel);
  ASSERT_TRUE(hop.has_value());
  ASSERT_EQ(hop->tx.inputs.size(), 1u);
  EXPECT_EQ(hop->tx.inputs[0].prevout, coin->outpoint);
  ASSERT_EQ(hop->tx.outputs.size(), 2u);
  EXPECT_EQ(hop->tx.outputs[0].value, peel);
  ASSERT_TRUE(hop->change_address.has_value());
  EXPECT_EQ(hop->change_value,
            coin->value - peel - actor.wallet().policy().fee);
}

TEST_F(FlowsTest, PeelNextContinuesFromChange) {
  Actor& actor = rich_user();
  auto coin =
      largest_coin(actor.wallet(), world_.height(), world_.maturity());
  ASSERT_TRUE(coin.has_value());
  Address to = world_.actor(world_.random_user(world_.rng()))
                   .wallet()
                   .receive_address();
  auto first = peel_hop(world_, actor, coin->outpoint, to, coin->value / 10);
  ASSERT_TRUE(first.has_value());
  auto second = peel_next(world_, actor, *first, to, coin->value / 10);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tx.inputs[0].prevout.txid, first->txid);
}

TEST_F(FlowsTest, PeelHopFailsWhenCoinTooSmall) {
  Actor& actor = rich_user();
  auto coin =
      largest_coin(actor.wallet(), world_.height(), world_.maturity());
  ASSERT_TRUE(coin.has_value());
  Address to = actor.wallet().fresh_address();
  EXPECT_FALSE(
      peel_hop(world_, actor, coin->outpoint, to, coin->value * 2));
}

TEST_F(FlowsTest, AggregateSweepsIntoOneFreshAddress) {
  Actor& actor = rich_user();
  std::size_t coins_before = actor.wallet().coin_count();
  if (coins_before < 2) GTEST_SKIP() << "actor has too few coins";
  auto built = aggregate(world_, actor, 2, 4096);
  ASSERT_TRUE(built.has_value());
  EXPECT_EQ(built->tx.outputs.size(), 1u);
  EXPECT_GE(built->tx.inputs.size(), 2u);
  // The swept value was credited back (world routes self-owned outputs).
  EXPECT_TRUE(actor.wallet().coin_count() >= 1);
}

TEST_F(FlowsTest, SplitProducesComparableFreshOutputs) {
  Actor& actor = rich_user();
  auto built = split(world_, actor, 3);
  ASSERT_TRUE(built.has_value());
  EXPECT_EQ(built->tx.outputs.size(), 3u);  // 2 explicit + remainder
  // All outputs are comparable (within the dominance threshold).
  Amount max_v = 0, min_v = kMaxMoney;
  for (const TxOut& out : built->tx.outputs) {
    max_v = std::max(max_v, out.value);
    min_v = std::min(min_v, out.value);
  }
  EXPECT_LT(max_v, 2 * min_v + actor.wallet().policy().fee * 4);
}

TEST_F(FlowsTest, SplitRejectsDegenerateWays) {
  Actor& actor = rich_user();
  EXPECT_FALSE(split(world_, actor, 1).has_value());
}

}  // namespace
}  // namespace fist::sim
