#include "util/timeutil.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fist {
namespace {

TEST(TimeUtil, Epoch) { EXPECT_EQ(from_date(1970, 1, 1), 0); }

TEST(TimeUtil, KnownDates) {
  EXPECT_EQ(from_date(2009, 1, 3), 1230940800);
  EXPECT_EQ(format_date(kGenesisTime), "2009-01-03");
}

TEST(TimeUtil, RoundTripThroughFormat) {
  Timestamp t = from_date(2012, 10, 18);
  EXPECT_EQ(format_date(t), "2012-10-18");
}

TEST(TimeUtil, LeapYearHandling) {
  EXPECT_EQ(format_date(from_date(2012, 2, 29)), "2012-02-29");
  EXPECT_THROW(from_date(2011, 2, 29), UsageError);
  EXPECT_THROW(from_date(1900, 2, 29), UsageError);  // century non-leap
}

TEST(TimeUtil, RejectsBadDates) {
  EXPECT_THROW(from_date(2012, 13, 1), UsageError);
  EXPECT_THROW(from_date(2012, 0, 1), UsageError);
  EXPECT_THROW(from_date(2012, 4, 31), UsageError);
  EXPECT_THROW(from_date(1969, 1, 1), UsageError);
}

TEST(TimeUtil, FormatDatetime) {
  EXPECT_EQ(format_datetime(kGenesisTime), "2009-01-03 18:15:05");
  EXPECT_EQ(format_datetime(0), "1970-01-01 00:00:00");
}

TEST(TimeUtil, DayArithmetic) {
  Timestamp t = from_date(2011, 12, 31);
  EXPECT_EQ(format_date(t + kDay), "2012-01-01");
  EXPECT_EQ(format_date(t + kWeek), "2012-01-07");
}

class DateRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DateRoundTrip, FormatsBack) {
  auto [y, m, d] = GetParam();
  char expect[16];
  std::snprintf(expect, sizeof(expect), "%04d-%02d-%02d", y, m, d);
  EXPECT_EQ(format_date(from_date(y, m, d)), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, DateRoundTrip,
    ::testing::Values(std::tuple{1970, 1, 1}, std::tuple{2000, 2, 29},
                      std::tuple{2009, 1, 3}, std::tuple{2010, 12, 29},
                      std::tuple{2012, 3, 12}, std::tuple{2013, 4, 30},
                      std::tuple{2038, 1, 19}, std::tuple{2100, 12, 31}));

}  // namespace
}  // namespace fist
