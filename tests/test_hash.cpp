#include "crypto/hash.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {
namespace {

TEST(Hash256, NullByDefault) {
  Hash256 h;
  EXPECT_TRUE(h.is_null());
  EXPECT_EQ(h.hex(), std::string(64, '0'));
}

TEST(Hash256, FromBytesRequiresExactLength) {
  Bytes short_data(31, 0xab);
  EXPECT_THROW(Hash256::from_bytes(short_data), ParseError);
  Bytes ok(32, 0xab);
  EXPECT_FALSE(Hash256::from_bytes(ok).is_null());
}

TEST(Hash256, HexRoundTrip) {
  std::string hex =
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";
  EXPECT_EQ(Hash256::from_hex(hex).hex(), hex);
}

TEST(Hash256, ReversedHexConvention) {
  Bytes raw(32, 0);
  raw[0] = 0xaa;
  Hash256 h = Hash256::from_bytes(raw);
  EXPECT_EQ(h.hex().substr(0, 2), "aa");
  EXPECT_EQ(h.hex_reversed().substr(62, 2), "aa");
  EXPECT_EQ(Hash256::from_hex_reversed(h.hex_reversed()), h);
}

TEST(Hash256, Ordering) {
  Hash256 a, b;
  b.data()[31] = 1;
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(Hash256, UsableAsUnorderedKey) {
  std::unordered_set<Hash256> set;
  for (std::uint8_t i = 0; i < 100; ++i) {
    Bytes raw(32, i);
    set.insert(Hash256::from_bytes(raw));
  }
  EXPECT_EQ(set.size(), 100u);
}

TEST(Hash160, SizeAndHex) {
  Hash160 h;
  EXPECT_EQ(Hash160::size(), 20u);
  EXPECT_EQ(h.hex().size(), 40u);
}

TEST(HashFunctions, Hash256IsDoubleSha) {
  Bytes data = to_bytes(std::string("fistful"));
  Hash256 h = hash256(data);
  EXPECT_FALSE(h.is_null());
  // Stability check (regression pin).
  EXPECT_EQ(hash256(data), h);
}

TEST(HashFunctions, Hash160KnownVector) {
  // HASH160 of the uncompressed generator pubkey — the payload of the
  // well-known address 1EHNa6Q4Jz2uvNExL497mE43ikXhwF6kZm.
  Bytes pubkey = from_hex(
      "0479be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
      "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");
  EXPECT_EQ(hash160(pubkey).hex(),
            "91b24bf9f5288532960ac687abb035127b1d28a5");
}

TEST(HashFunctions, Low64Differs) {
  Bytes a = to_bytes(std::string("a")), b = to_bytes(std::string("b"));
  EXPECT_NE(hash256(a).low64(), hash256(b).low64());
}

}  // namespace
}  // namespace fist
