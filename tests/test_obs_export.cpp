// test_obs_export.cpp — golden-file tests for the metric exporters.
// The renderers promise deterministic output (name-sorted snapshots,
// fixed number formatting), so whole documents are compared verbatim.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/obs/export.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/span.hpp"

namespace fist {
namespace {

TEST(ObsExport, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_escape(std::string("\x01")), "\\u0001");
}

TEST(ObsExport, JsonNumber) {
  EXPECT_EQ(obs::json_number(0), "0");
  EXPECT_EQ(obs::json_number(42), "42");
  EXPECT_EQ(obs::json_number(-7), "-7");
  EXPECT_EQ(obs::json_number(2.5), "2.5");
}

#ifndef FISTFUL_NO_OBS

obs::MetricsRegistry& golden_registry() {
  static obs::MetricsRegistry* registry = [] {
    auto* r = new obs::MetricsRegistry();
    r->counter("alpha").add(3);
    r->counter("beta.x").add(42);
    r->gauge("depth").set(-7);
    obs::Histogram h = r->histogram("lat", {1, 2.5});
    h.observe(0.5);
    h.observe(2);
    h.observe(99);
    return r;
  }();
  return *registry;
}

TEST(ObsExport, MetricsJsonObjectGolden) {
  EXPECT_EQ(
      obs::render_metrics_json_object(golden_registry().snapshot()),
      R"({"counters":{"alpha":3,"beta.x":42},"gauges":{"depth":-7},)"
      R"("histograms":{"lat":{"bounds":[1,2.5],"buckets":[1,1,1],)"
      R"("count":3,"sum":101.5,"p50":1.75,"p90":2.5,"p99":2.5}}})");
}

TEST(ObsExport, JsonDocumentWrapsMetricsAndSpans) {
  obs::Trace trace;
  {
    obs::TraceScope scope(trace);
    obs::Span root("root");
    obs::Span child("child");
  }
  std::string doc = obs::render_json(golden_registry().snapshot(), &trace);
  EXPECT_EQ(doc.rfind("{\"metrics\":{\"counters\":{\"alpha\":3", 0), 0u);
  EXPECT_NE(doc.find("\"spans\":[{\"name\":\"root\",\"ms\":"),
            std::string::npos);
  EXPECT_NE(doc.find("\"children\":[{\"name\":\"child\",\"ms\":"),
            std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

TEST(ObsExport, PrometheusGolden) {
  EXPECT_EQ(obs::render_prometheus(golden_registry().snapshot()),
            "# TYPE fist_alpha counter\n"
            "fist_alpha 3\n"
            "# TYPE fist_beta_x counter\n"
            "fist_beta_x 42\n"
            "# TYPE fist_depth gauge\n"
            "fist_depth -7\n"
            "# TYPE fist_lat histogram\n"
            "fist_lat_bucket{le=\"1\"} 1\n"
            "fist_lat_bucket{le=\"2.5\"} 2\n"
            "fist_lat_bucket{le=\"+Inf\"} 3\n"
            "fist_lat_sum 101.5\n"
            "fist_lat_count 3\n"
            "# TYPE fist_lat_p50 gauge\n"
            "fist_lat_p50 1.75\n"
            "# TYPE fist_lat_p90 gauge\n"
            "fist_lat_p90 2.5\n"
            "# TYPE fist_lat_p99 gauge\n"
            "fist_lat_p99 2.5\n");
}

TEST(ObsExport, PromNumberSpellsNonFinite) {
  EXPECT_EQ(obs::prom_number(std::nan("")), "NaN");
  EXPECT_EQ(obs::prom_number(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(obs::prom_number(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(obs::prom_number(2.5), "2.5");
  EXPECT_EQ(obs::prom_number(0), "0");
}

TEST(ObsExport, PromEscapeLabel) {
  EXPECT_EQ(obs::prom_escape_label("plain"), "plain");
  EXPECT_EQ(obs::prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prom_escape_label("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::prom_escape_label("line\nbreak"), "line\\nbreak");
}

// An observation-free histogram has no defined quantiles: Prometheus
// renders the spec's "NaN", JSON simply omits the keys (JSON has no
// NaN literal).
TEST(ObsExport, EmptyHistogramQuantiles) {
  obs::MetricsRegistry registry;
  registry.histogram("idle", {1, 2});
  std::string prom = obs::render_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("fist_idle_p50 NaN\n"), std::string::npos);
  EXPECT_NE(prom.find("fist_idle_p99 NaN\n"), std::string::npos);
  std::string json = obs::render_metrics_json_object(registry.snapshot());
  EXPECT_EQ(json.find("p50"), std::string::npos);
  EXPECT_NE(json.find("\"idle\""), std::string::npos);
}

TEST(ObsExport, TableRendersEverySection) {
  std::string table = obs::render_table(golden_registry().snapshot());
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("depth"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
  EXPECT_NE(table.find("+inf:1"), std::string::npos);
  // Histogram rows carry the quantile columns.
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("1.75"), std::string::npos);
}

#else  // FISTFUL_NO_OBS: exporters must still produce valid documents.

TEST(ObsExport, EmptySnapshotRendersEmptyDocuments) {
  obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(obs::render_metrics_json_object(snap),
            R"({"counters":{},"gauges":{},"histograms":{}})");
  EXPECT_EQ(obs::render_prometheus(snap), "");
}

#endif  // FISTFUL_NO_OBS

}  // namespace
}  // namespace fist
