#include "script/script.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {
namespace {

TEST(Script, EmptyScript) {
  Script s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.ops().empty());
}

TEST(Script, BareOpcode) {
  Script s;
  s.op(Opcode::OP_DUP);
  auto ops = s.ops();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].op, Opcode::OP_DUP);
  EXPECT_FALSE(ops[0].is_push());
}

TEST(Script, DirectPush) {
  Script s;
  Bytes data{1, 2, 3};
  s.push(data);
  EXPECT_EQ(s.raw()[0], 3);  // length byte
  auto ops = s.ops();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_TRUE(ops[0].is_push());
  EXPECT_EQ(ops[0].push, data);
}

TEST(Script, EmptyPushBecomesOp0) {
  Script s;
  s.push(ByteView{});
  EXPECT_EQ(s.raw().size(), 1u);
  EXPECT_EQ(s.ops()[0].op, Opcode::OP_0);
}

TEST(Script, Pushdata1Boundary) {
  Script s;
  Bytes data(0x4c, 0xaa);  // 76 bytes needs PUSHDATA1
  s.push(data);
  EXPECT_EQ(s.raw()[0], static_cast<std::uint8_t>(Opcode::OP_PUSHDATA1));
  EXPECT_EQ(s.raw()[1], 0x4c);
  EXPECT_EQ(s.ops()[0].push, data);
}

TEST(Script, Pushdata2Boundary) {
  Script s;
  Bytes data(300, 0xbb);
  s.push(data);
  EXPECT_EQ(s.raw()[0], static_cast<std::uint8_t>(Opcode::OP_PUSHDATA2));
  EXPECT_EQ(s.ops()[0].push, data);
}

TEST(Script, Pushdata4) {
  Script s;
  Bytes data(70'000, 0xcc);
  s.push(data);
  EXPECT_EQ(s.raw()[0], static_cast<std::uint8_t>(Opcode::OP_PUSHDATA4));
  EXPECT_EQ(s.ops()[0].push.size(), 70'000u);
}

TEST(Script, PushIntEncodings) {
  Script s;
  s.push_int(0).push_int(1).push_int(16);
  auto ops = s.ops();
  EXPECT_EQ(ops[0].op, Opcode::OP_0);
  EXPECT_EQ(ops[1].op, Opcode::OP_1);
  EXPECT_EQ(ops[2].op, Opcode::OP_16);
  EXPECT_THROW(s.push_int(17), UsageError);
  EXPECT_THROW(s.push_int(-1), UsageError);
}

TEST(Script, SmallIntHelpers) {
  EXPECT_EQ(small_int_value(Opcode::OP_0), 0);
  EXPECT_EQ(small_int_value(Opcode::OP_1), 1);
  EXPECT_EQ(small_int_value(Opcode::OP_16), 16);
  EXPECT_EQ(small_int_value(Opcode::OP_DUP), -1);
  EXPECT_EQ(small_int_opcode(3), Opcode::OP_3);
}

TEST(Script, TruncatedPushThrows) {
  Bytes raw{5, 1, 2};  // push of 5 with only 2 bytes
  Script s(raw);
  EXPECT_THROW(s.ops(), ParseError);
  EXPECT_FALSE(s.ops_checked().has_value());
}

TEST(Script, TruncatedPushdataLengthThrows) {
  Bytes raw{static_cast<std::uint8_t>(Opcode::OP_PUSHDATA2), 0x10};
  EXPECT_FALSE(Script(raw).ops_checked().has_value());
}

TEST(Script, MixedProgramRoundTrip) {
  Script s;
  s.op(Opcode::OP_DUP).op(Opcode::OP_HASH160);
  Bytes h(20, 0x42);
  s.push(h);
  s.op(Opcode::OP_EQUALVERIFY).op(Opcode::OP_CHECKSIG);
  auto ops = s.ops();
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[2].push, h);
}

TEST(Script, ToAsmReadable) {
  Script s;
  s.op(Opcode::OP_DUP).op(Opcode::OP_HASH160);
  s.push(Bytes(20, 0xab));
  s.op(Opcode::OP_EQUALVERIFY).op(Opcode::OP_CHECKSIG);
  std::string text = s.to_asm();
  EXPECT_NE(text.find("OP_DUP"), std::string::npos);
  EXPECT_NE(text.find("OP_HASH160"), std::string::npos);
  EXPECT_NE(text.find("abab"), std::string::npos);  // the pushed payload
}

TEST(Script, ToAsmOnMalformed) {
  Bytes raw{10, 1};
  EXPECT_NE(Script(raw).to_asm().find("malformed"), std::string::npos);
}

TEST(Script, OpcodeNames) {
  EXPECT_EQ(opcode_name(Opcode::OP_CHECKMULTISIG), "OP_CHECKMULTISIG");
  EXPECT_EQ(opcode_name(Opcode::OP_7), "OP_7");
  EXPECT_NE(opcode_name(static_cast<Opcode>(0xee)).find("UNKNOWN"),
            std::string::npos);
}

}  // namespace
}  // namespace fist
