#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fist {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Service", "Peels"});
  t.row({"Mt. Gox", "11"});
  std::string out = t.render();
  EXPECT_NE(out.find("Service"), std::string::npos);
  EXPECT_NE(out.find("Mt. Gox"), std::string::npos);
  EXPECT_NE(out.find("11"), std::string::npos);
}

TEST(TextTable, PadsColumnsToWidest) {
  TextTable t({"A", "B"});
  t.row({"wide-cell-content", "x"});
  std::string out = t.render();
  // Header row must be as wide as the data row (same line lengths).
  std::size_t first_nl = out.find('\n');
  std::size_t second_nl = out.find('\n', first_nl + 1);
  std::size_t third_nl = out.find('\n', second_nl + 1);
  EXPECT_EQ(first_nl, third_nl - second_nl - 1);
}

TEST(TextTable, RightAlignment) {
  TextTable t({"N"}, {Align::Right});
  t.row({"7"});
  t.row({"1000"});
  std::string out = t.render();
  EXPECT_NE(out.find("    7"), std::string::npos);
}

TEST(TextTable, RejectsWrongRowWidth) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.row({"only-one"}), UsageError);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), UsageError);
}

TEST(TextTable, RejectsMismatchedAligns) {
  EXPECT_THROW(TextTable({"A", "B"}, {Align::Left}), UsageError);
}

TEST(TextTable, SeparatorAddsRule) {
  TextTable t({"A"});
  t.row({"1"});
  t.separator();
  t.row({"2"});
  std::string out = t.render();
  // Header rule + separator rule.
  int dashes_lines = 0;
  std::size_t pos = 0;
  while ((pos = out.find("---", pos)) != std::string::npos) {
    ++dashes_lines;
    pos = out.find('\n', pos);
  }
  EXPECT_EQ(dashes_lines, 2);
}

}  // namespace
}  // namespace fist
