// Golden tests for the fistlint rule set over tests/lint_fixtures/:
// every rule has a violating and a clean snippet whose findings are
// asserted against a committed .expected file, plus targeted checks
// for the suppression grammar, the docs-drift registry, the baseline
// ratchet, and the lexer's corner cases.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baseline.hpp"
#include "cache.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace fistlint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(FISTLINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs the per-file rules + suppressions the way the driver does for a
// single file, and flattens the findings to "rule:line" lines.
std::string findings_for(const std::string& name, const std::string& rel) {
  SourceFile file = lex(read_fixture(name), rel);
  FileFacts facts;
  collect_facts(file, facts);
  ScanContext ctx;
  ctx.merge(facts);
  ctx.resolve();
  std::vector<Finding> findings =
      apply_allows(run_file_rules(file, ctx), file);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  std::string out;
  for (const Finding& f : findings)
    out += f.rule + ":" + std::to_string(f.line) + "\n";
  return out;
}

struct GoldenCase {
  const char* fixture;
  const char* expected;
};

class FistlintGolden : public testing::TestWithParam<GoldenCase> {};

TEST_P(FistlintGolden, MatchesExpectedFindings) {
  const GoldenCase& c = GetParam();
  EXPECT_EQ(findings_for(c.fixture, c.fixture), read_fixture(c.expected))
      << "fixture " << c.fixture;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, FistlintGolden,
    testing::Values(
        GoldenCase{"unordered_iter_bad.cpp", "unordered_iter_bad.expected"},
        GoldenCase{"unordered_iter_clean.cpp",
                   "unordered_iter_clean.expected"},
        GoldenCase{"unordered_iter_sorted_copy_bad.cpp",
                   "unordered_iter_sorted_copy_bad.expected"},
        GoldenCase{"unordered_iter_sorted_copy_clean.cpp",
                   "unordered_iter_sorted_copy_clean.expected"},
        GoldenCase{"naked_mutex_bad.cpp", "naked_mutex_bad.expected"},
        GoldenCase{"naked_mutex_clean.cpp", "naked_mutex_clean.expected"},
        GoldenCase{"lock_order_bad.cpp", "lock_order_bad.expected"},
        GoldenCase{"lock_order_clean.cpp", "lock_order_clean.expected"},
        GoldenCase{"detached_thread_bad.cpp", "detached_thread_bad.expected"},
        GoldenCase{"detached_thread_clean.cpp",
                   "detached_thread_clean.expected"},
        GoldenCase{"pointer_order_bad.cpp", "pointer_order_bad.expected"},
        GoldenCase{"pointer_order_clean.cpp", "pointer_order_clean.expected"},
        GoldenCase{"banned_random_bad.cpp", "banned_random_bad.expected"},
        GoldenCase{"banned_random_clean.cpp", "banned_random_clean.expected"},
        GoldenCase{"uninit_pod_bad.cpp", "uninit_pod_bad.expected"},
        GoldenCase{"uninit_pod_clean.cpp", "uninit_pod_clean.expected"},
        GoldenCase{"float_amount_bad.cpp", "float_amount_bad.expected"},
        GoldenCase{"float_amount_clean.cpp", "float_amount_clean.expected"},
        GoldenCase{"suppressions.cpp", "suppressions.expected"},
        GoldenCase{"allow_file.cpp", "allow_file.expected"}),
    [](const testing::TestParamInfo<GoldenCase>& param_info) {
      std::string n = param_info.param.fixture;
      n.resize(n.find('.'));
      return n;
    });

TEST(FistlintRules, BannedRandomIsExemptInSeededPaths) {
  // The same violating content is clean when it lives under a seeded
  // registry path (src/sim/, src/core/fault, src/util/rng).
  EXPECT_EQ(findings_for("banned_random_bad.cpp", "src/sim/entropy.cpp"), "");
  EXPECT_EQ(findings_for("banned_random_bad.cpp", "src/util/rng.cpp"), "");
  EXPECT_NE(findings_for("banned_random_bad.cpp", "src/net/entropy.cpp"), "");
}

// ---------------------------------------------------------------------------
// docs-drift
// ---------------------------------------------------------------------------

std::vector<NameUse> fixture_names() {
  SourceFile file = lex(read_fixture("names_code.cpp"), "names_code.cpp");
  FileFacts facts;
  collect_facts(file, facts);
  for (NameUse& use : facts.names) use.file = "names_code.cpp";
  return facts.names;
}

TEST(FistlintDocsDrift, BothDirectionsAndWildcard) {
  std::vector<Finding> findings = docs_drift(
      fixture_names(), read_fixture("docs_registry.md"), "docs_registry.md");
  ASSERT_EQ(findings.size(), 2u);

  // Code side: a name used in code but absent from the registry,
  // reported at the use site.
  const Finding* code_side = nullptr;
  const Finding* doc_side = nullptr;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, kRuleDocsDrift);
    (f.file == "names_code.cpp" ? code_side : doc_side) = &f;
  }
  ASSERT_NE(code_side, nullptr);
  ASSERT_NE(doc_side, nullptr);
  EXPECT_EQ(code_side->line, 18);
  EXPECT_NE(code_side->message.find("app.undocumented"), std::string::npos);
  EXPECT_EQ(doc_side->file, "docs_registry.md");
  EXPECT_EQ(doc_side->line, 13);
  EXPECT_NE(doc_side->message.find("app.stale_name"), std::string::npos);
}

TEST(FistlintDocsDrift, MissingRegistryIsOneFinding) {
  std::vector<Finding> findings = docs_drift(
      fixture_names(), read_fixture("docs_missing.md"), "docs_missing.md");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].snippet, "<registry-missing>");
  EXPECT_EQ(findings[0].file, "docs_missing.md");
}

TEST(FistlintDocsDrift, DynamicPrefixRequiresWildcardEntry) {
  // `counter("fault.injected." + site)` matches only the wildcard
  // entry; a literal entry with the same spelling would not cover it.
  std::string doc =
      "<!-- fistlint:names:begin -->\n"
      "`app.requests` `app.latency` `app.phase` `app.undocumented` "
      "`app.event`\n"
      "`fault.injected.executor` (a literal, not a wildcard)\n"
      "<!-- fistlint:names:end -->\n";
  std::vector<Finding> findings = docs_drift(fixture_names(), doc, "doc.md");
  bool prefix_flagged = false;
  for (const Finding& f : findings)
    if (f.message.find("fault.injected.") != std::string::npos)
      prefix_flagged = true;
  EXPECT_TRUE(prefix_flagged);
}

// ---------------------------------------------------------------------------
// baseline
// ---------------------------------------------------------------------------

Finding fake_finding(const std::string& rule, const std::string& file,
                     int line, const std::string& source_line) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.message = "msg";
  f.snippet = normalize_snippet(source_line);
  return f;
}

TEST(FistlintBaseline, RoundTripConsumeAndStale) {
  std::vector<Finding> findings = {
      fake_finding("unordered-iter", "a.cpp", 3, "for (auto& x :  m)  f();"),
      fake_finding("unordered-iter", "a.cpp", 9, "for (auto& x :  m)  f();"),
      fake_finding("float-amount", "b.cpp", 1, "double fee = 0;"),
  };
  std::string text = Baseline::render(findings);
  Baseline base = Baseline::parse(text);

  // Identical snippets carry multiplicity: two consumes succeed, the
  // third fails (a third occurrence would be a NEW finding).
  std::string dup_key = baseline_key(findings[0]);
  EXPECT_EQ(dup_key, baseline_key(findings[1]));
  EXPECT_TRUE(base.consume(dup_key));
  EXPECT_TRUE(base.consume(dup_key));
  EXPECT_FALSE(base.consume(dup_key));

  // The unconsumed float-amount entry is stale.
  std::vector<std::string> stale = base.stale();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], baseline_key(findings[2]));
}

TEST(FistlintBaseline, ParseIgnoresCommentsAndBlanks) {
  Baseline base = Baseline::parse("# header\n\nrule|f.cpp|x = 1;\n# tail\n");
  EXPECT_TRUE(base.consume("rule|f.cpp|x = 1;"));
  EXPECT_FALSE(base.consume("rule|f.cpp|x = 1;"));
  EXPECT_FALSE(base.consume("# header"));
}

TEST(FistlintBaseline, SnippetNormalizationSurvivesReindentation) {
  // Runs of whitespace collapse and edges trim, so indentation changes
  // (the common mechanical reformat) don't invalidate entries; actual
  // token changes do.
  EXPECT_EQ(normalize_snippet("    for (auto& x : m)   "),
            normalize_snippet("for (auto&\tx : m)"));
  EXPECT_NE(normalize_snippet("for (auto& x : m)"),
            normalize_snippet("for (auto& y : m)"));
}

// ---------------------------------------------------------------------------
// incremental cache
// ---------------------------------------------------------------------------

TEST(FistlintCache, RenderParseRoundTrip) {
  Cache c;
  c.ctx_hash = 0xdeadbeefcafef00dull;
  CacheEntry& e = c.entries["src/a.cpp"];
  e.file_hash = fnv1a64("int x;");
  e.facts.unordered_symbols = {"by_id", "seen"};
  e.facts.ordered_symbols = {"sorted"};
  e.facts.mutex_ranks["mu"] = "kLow";
  e.facts.rank_values["kLow"] = 10;
  NameUse use;
  use.name = "fault.injected.";
  use.prefix = true;
  use.line = 7;
  e.facts.names.push_back(use);
  Finding f;
  f.rule = "unordered-iter";
  f.line = 3;
  f.message = "msg with\ttab, \nnewline and \\ backslash";
  f.snippet = "for (auto& x : m) f();";
  e.findings.push_back(f);

  Cache back = Cache::parse(c.render());
  EXPECT_EQ(back.ctx_hash, c.ctx_hash);
  ASSERT_EQ(back.entries.count("src/a.cpp"), 1u);
  const CacheEntry& b = back.entries["src/a.cpp"];
  EXPECT_EQ(b.file_hash, e.file_hash);
  EXPECT_EQ(b.facts.unordered_symbols, e.facts.unordered_symbols);
  EXPECT_EQ(b.facts.ordered_symbols, e.facts.ordered_symbols);
  EXPECT_EQ(b.facts.mutex_ranks, e.facts.mutex_ranks);
  EXPECT_EQ(b.facts.rank_values, e.facts.rank_values);
  ASSERT_EQ(b.facts.names.size(), 1u);
  EXPECT_EQ(b.facts.names[0].name, use.name);
  EXPECT_TRUE(b.facts.names[0].prefix);
  EXPECT_EQ(b.facts.names[0].line, 7);
  ASSERT_EQ(b.findings.size(), 1u);
  EXPECT_EQ(b.findings[0].rule, f.rule);
  EXPECT_EQ(b.findings[0].line, f.line);
  EXPECT_EQ(b.findings[0].message, f.message);
  EXPECT_EQ(b.findings[0].snippet, f.snippet);
}

TEST(FistlintCache, VersionMismatchDegradesToEmpty) {
  Cache c = Cache::parse("fistlint-cache v0\nctx\t0\nfile\ta\t0\n");
  EXPECT_EQ(c.entries.size(), 0u);
  EXPECT_TRUE(Cache::parse("").entries.empty());
}

TEST(FistlintCache, ContextHashSeesCrossFileState) {
  FileFacts a;
  a.unordered_symbols.insert("seen");
  FileFacts b;
  b.mutex_ranks["mu"] = "kLow";
  b.rank_values["kLow"] = 10;

  ScanContext fwd;
  fwd.merge(a);
  fwd.merge(b);
  fwd.resolve();
  ScanContext rev;
  rev.merge(b);
  rev.merge(a);
  rev.resolve();
  EXPECT_EQ(context_hash(fwd), context_hash(rev))
      << "hash must not depend on merge order";

  FileFacts extra;
  extra.unordered_symbols.insert("by_id");
  ScanContext grown;
  grown.merge(a);
  grown.merge(b);
  grown.merge(extra);
  grown.resolve();
  EXPECT_NE(context_hash(fwd), context_hash(grown))
      << "a new declaration anywhere must invalidate cached findings";
}

// ---------------------------------------------------------------------------
// lexer
// ---------------------------------------------------------------------------

TEST(FistlintLexer, StringsAndCommentsHideBannedIdents) {
  // rand/time inside raw strings, ordinary strings, and comments must
  // not produce identifier tokens.
  SourceFile file = lex(
      "const char* a = R\"x(rand() time(nullptr))x\";\n"
      "const char* b = \"srand(1)\";  // rand() here too\n"
      "/* std::random_device */ int c = 0;\n",
      "s.cpp");
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::Ident) {
      EXPECT_TRUE(t.text != "rand" && t.text != "srand" &&
                  t.text != "random_device" && t.text != "time")
          << t.text;
    }
  }
  ScanContext ctx;
  EXPECT_TRUE(run_file_rules(file, ctx).empty());
}

TEST(FistlintLexer, DigitSeparatorsAndTwoCharPuncts) {
  SourceFile file = lex("long n = 21'000'000; m >>= 2;", "s.cpp");
  bool saw_number = false;
  int gt = 0;
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::Number && t.text == "21'000'000") saw_number = true;
    if (t.punct('>')) ++gt;
  }
  EXPECT_TRUE(saw_number);
  EXPECT_EQ(gt, 2) << "every punctuator is a single character";
}

TEST(FistlintLexer, AllowParsing) {
  SourceFile file = lex(
      "int x;  // fistlint:allow(unordered-iter,float-amount) both fine\n"
      "// fistlint:allow-file(pointer-order) ids are interned\n",
      "s.cpp");
  ASSERT_EQ(file.allows.size(), 2u);
  EXPECT_EQ(file.allows[0].line, 1);
  EXPECT_FALSE(file.allows[0].own_line);
  EXPECT_FALSE(file.allows[0].file_scope);
  ASSERT_EQ(file.allows[0].rules.size(), 2u);
  EXPECT_EQ(file.allows[0].rules[0], "unordered-iter");
  EXPECT_EQ(file.allows[0].rules[1], "float-amount");
  EXPECT_EQ(file.allows[0].reason, "both fine");
  EXPECT_TRUE(file.allows[1].own_line);
  EXPECT_TRUE(file.allows[1].file_scope);
}

}  // namespace
}  // namespace fistlint
