// Golden tests for the fistlint rule set over tests/lint_fixtures/:
// every rule has a violating and a clean snippet whose findings are
// asserted against a committed .expected file, plus targeted checks
// for the suppression grammar, the docs-drift registry, the baseline
// ratchet, and the lexer's corner cases.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baseline.hpp"
#include "cache.hpp"
#include "driver.hpp"
#include "lexer.hpp"
#include "rules.hpp"
#include "sarif.hpp"

namespace fistlint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(FISTLINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs the per-file rules + suppressions the way the driver does for a
// single file, and flattens the findings to "rule:line" lines.
std::string findings_for(const std::string& name, const std::string& rel) {
  SourceFile file = lex(read_fixture(name), rel);
  FileFacts facts;
  collect_facts(file, facts);
  ScanContext ctx;
  ctx.merge(facts);
  ctx.resolve();
  std::vector<Finding> findings =
      apply_allows(run_file_rules(file, ctx), file);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  std::string out;
  for (const Finding& f : findings)
    out += f.rule + ":" + std::to_string(f.line) + "\n";
  return out;
}

struct GoldenCase {
  const char* fixture;
  const char* expected;
};

class FistlintGolden : public testing::TestWithParam<GoldenCase> {};

TEST_P(FistlintGolden, MatchesExpectedFindings) {
  const GoldenCase& c = GetParam();
  EXPECT_EQ(findings_for(c.fixture, c.fixture), read_fixture(c.expected))
      << "fixture " << c.fixture;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, FistlintGolden,
    testing::Values(
        GoldenCase{"unordered_iter_bad.cpp", "unordered_iter_bad.expected"},
        GoldenCase{"unordered_iter_clean.cpp",
                   "unordered_iter_clean.expected"},
        GoldenCase{"unordered_iter_sorted_copy_bad.cpp",
                   "unordered_iter_sorted_copy_bad.expected"},
        GoldenCase{"unordered_iter_sorted_copy_clean.cpp",
                   "unordered_iter_sorted_copy_clean.expected"},
        GoldenCase{"naked_mutex_bad.cpp", "naked_mutex_bad.expected"},
        GoldenCase{"naked_mutex_clean.cpp", "naked_mutex_clean.expected"},
        GoldenCase{"lock_order_bad.cpp", "lock_order_bad.expected"},
        GoldenCase{"lock_order_clean.cpp", "lock_order_clean.expected"},
        GoldenCase{"detached_thread_bad.cpp", "detached_thread_bad.expected"},
        GoldenCase{"detached_thread_clean.cpp",
                   "detached_thread_clean.expected"},
        GoldenCase{"pointer_order_bad.cpp", "pointer_order_bad.expected"},
        GoldenCase{"pointer_order_clean.cpp", "pointer_order_clean.expected"},
        GoldenCase{"banned_random_bad.cpp", "banned_random_bad.expected"},
        GoldenCase{"banned_random_clean.cpp", "banned_random_clean.expected"},
        GoldenCase{"uninit_pod_bad.cpp", "uninit_pod_bad.expected"},
        GoldenCase{"uninit_pod_clean.cpp", "uninit_pod_clean.expected"},
        GoldenCase{"float_amount_bad.cpp", "float_amount_bad.expected"},
        GoldenCase{"float_amount_clean.cpp", "float_amount_clean.expected"},
        GoldenCase{"suppressions.cpp", "suppressions.expected"},
        GoldenCase{"allow_file.cpp", "allow_file.expected"},
        GoldenCase{"blocking_under_lock_bad.cpp",
                   "blocking_under_lock_bad.expected"},
        GoldenCase{"blocking_under_lock_clean.cpp",
                   "blocking_under_lock_clean.expected"},
        GoldenCase{"alloc_under_lock_bad.cpp",
                   "alloc_under_lock_bad.expected"},
        GoldenCase{"alloc_under_lock_clean.cpp",
                   "alloc_under_lock_clean.expected"},
        GoldenCase{"callback_under_lock_bad.cpp",
                   "callback_under_lock_bad.expected"},
        GoldenCase{"callback_under_lock_clean.cpp",
                   "callback_under_lock_clean.expected"},
        GoldenCase{"unbounded_growth_bad.cpp",
                   "unbounded_growth_bad.expected"},
        GoldenCase{"unbounded_growth_clean.cpp",
                   "unbounded_growth_clean.expected"},
        GoldenCase{"transitive_lock_order_bad.cpp",
                   "transitive_lock_order_bad.expected"},
        GoldenCase{"transitive_lock_order_clean.cpp",
                   "transitive_lock_order_clean.expected"},
        GoldenCase{"unguarded_field_bad.cpp",
                   "unguarded_field_bad.expected"},
        GoldenCase{"unguarded_field_clean.cpp",
                   "unguarded_field_clean.expected"}),
    [](const testing::TestParamInfo<GoldenCase>& param_info) {
      std::string n = param_info.param.fixture;
      n.resize(n.find('.'));
      return n;
    });

TEST(FistlintRules, BannedRandomIsExemptInSeededPaths) {
  // The same violating content is clean when it lives under a seeded
  // registry path (src/sim/, src/core/fault, src/util/rng).
  EXPECT_EQ(findings_for("banned_random_bad.cpp", "src/sim/entropy.cpp"), "");
  EXPECT_EQ(findings_for("banned_random_bad.cpp", "src/util/rng.cpp"), "");
  EXPECT_NE(findings_for("banned_random_bad.cpp", "src/net/entropy.cpp"), "");
}

// ---------------------------------------------------------------------------
// docs-drift
// ---------------------------------------------------------------------------

std::vector<NameUse> fixture_names() {
  SourceFile file = lex(read_fixture("names_code.cpp"), "names_code.cpp");
  FileFacts facts;
  collect_facts(file, facts);
  for (NameUse& use : facts.names) use.file = "names_code.cpp";
  return facts.names;
}

TEST(FistlintDocsDrift, BothDirectionsAndWildcard) {
  std::vector<Finding> findings = docs_drift(
      fixture_names(), read_fixture("docs_registry.md"), "docs_registry.md");
  ASSERT_EQ(findings.size(), 2u);

  // Code side: a name used in code but absent from the registry,
  // reported at the use site.
  const Finding* code_side = nullptr;
  const Finding* doc_side = nullptr;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, kRuleDocsDrift);
    (f.file == "names_code.cpp" ? code_side : doc_side) = &f;
  }
  ASSERT_NE(code_side, nullptr);
  ASSERT_NE(doc_side, nullptr);
  EXPECT_EQ(code_side->line, 18);
  EXPECT_NE(code_side->message.find("app.undocumented"), std::string::npos);
  EXPECT_EQ(doc_side->file, "docs_registry.md");
  EXPECT_EQ(doc_side->line, 13);
  EXPECT_NE(doc_side->message.find("app.stale_name"), std::string::npos);
}

TEST(FistlintDocsDrift, MissingRegistryIsOneFinding) {
  std::vector<Finding> findings = docs_drift(
      fixture_names(), read_fixture("docs_missing.md"), "docs_missing.md");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].snippet, "<registry-missing>");
  EXPECT_EQ(findings[0].file, "docs_missing.md");
}

TEST(FistlintDocsDrift, DynamicPrefixRequiresWildcardEntry) {
  // `counter("fault.injected." + site)` matches only the wildcard
  // entry; a literal entry with the same spelling would not cover it.
  std::string doc =
      "<!-- fistlint:names:begin -->\n"
      "`app.requests` `app.latency` `app.phase` `app.undocumented` "
      "`app.event`\n"
      "`fault.injected.executor` (a literal, not a wildcard)\n"
      "<!-- fistlint:names:end -->\n";
  std::vector<Finding> findings = docs_drift(fixture_names(), doc, "doc.md");
  bool prefix_flagged = false;
  for (const Finding& f : findings)
    if (f.message.find("fault.injected.") != std::string::npos)
      prefix_flagged = true;
  EXPECT_TRUE(prefix_flagged);
}

// ---------------------------------------------------------------------------
// baseline
// ---------------------------------------------------------------------------

Finding fake_finding(const std::string& rule, const std::string& file,
                     int line, const std::string& source_line) {
  Finding f;
  f.rule = rule;
  f.file = file;
  f.line = line;
  f.message = "msg";
  f.snippet = normalize_snippet(source_line);
  return f;
}

TEST(FistlintBaseline, RoundTripConsumeAndStale) {
  std::vector<Finding> findings = {
      fake_finding("unordered-iter", "a.cpp", 3, "for (auto& x :  m)  f();"),
      fake_finding("unordered-iter", "a.cpp", 9, "for (auto& x :  m)  f();"),
      fake_finding("float-amount", "b.cpp", 1, "double fee = 0;"),
  };
  std::string text = Baseline::render(findings);
  Baseline base = Baseline::parse(text);

  // Identical snippets carry multiplicity: two consumes succeed, the
  // third fails (a third occurrence would be a NEW finding).
  std::string dup_key = baseline_key(findings[0]);
  EXPECT_EQ(dup_key, baseline_key(findings[1]));
  EXPECT_TRUE(base.consume(dup_key));
  EXPECT_TRUE(base.consume(dup_key));
  EXPECT_FALSE(base.consume(dup_key));

  // The unconsumed float-amount entry is stale.
  std::vector<std::string> stale = base.stale();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], baseline_key(findings[2]));
}

TEST(FistlintBaseline, ParseIgnoresCommentsAndBlanks) {
  Baseline base = Baseline::parse("# header\n\nrule|f.cpp|x = 1;\n# tail\n");
  EXPECT_TRUE(base.consume("rule|f.cpp|x = 1;"));
  EXPECT_FALSE(base.consume("rule|f.cpp|x = 1;"));
  EXPECT_FALSE(base.consume("# header"));
}

TEST(FistlintBaseline, SnippetNormalizationSurvivesReindentation) {
  // Runs of whitespace collapse and edges trim, so indentation changes
  // (the common mechanical reformat) don't invalidate entries; actual
  // token changes do.
  EXPECT_EQ(normalize_snippet("    for (auto& x : m)   "),
            normalize_snippet("for (auto&\tx : m)"));
  EXPECT_NE(normalize_snippet("for (auto& x : m)"),
            normalize_snippet("for (auto& y : m)"));
}

// ---------------------------------------------------------------------------
// incremental cache
// ---------------------------------------------------------------------------

TEST(FistlintCache, RenderParseRoundTrip) {
  Cache c;
  c.ctx_hash = 0xdeadbeefcafef00dull;
  CacheEntry& e = c.entries["src/a.cpp"];
  e.file_hash = fnv1a64("int x;");
  e.facts.unordered_symbols = {"by_id", "seen"};
  e.facts.ordered_symbols = {"sorted"};
  e.facts.mutex_ranks["mu"] = "kLow";
  e.facts.rank_values["kLow"] = 10;
  NameUse use;
  use.name = "fault.injected.";
  use.prefix = true;
  use.line = 7;
  e.facts.names.push_back(use);
  Finding f;
  f.rule = "unordered-iter";
  f.line = 3;
  f.message = "msg with\ttab, \nnewline and \\ backslash";
  f.snippet = "for (auto& x : m) f();";
  e.findings.push_back(f);

  Cache back = Cache::parse(c.render());
  EXPECT_EQ(back.ctx_hash, c.ctx_hash);
  ASSERT_EQ(back.entries.count("src/a.cpp"), 1u);
  const CacheEntry& b = back.entries["src/a.cpp"];
  EXPECT_EQ(b.file_hash, e.file_hash);
  EXPECT_EQ(b.facts.unordered_symbols, e.facts.unordered_symbols);
  EXPECT_EQ(b.facts.ordered_symbols, e.facts.ordered_symbols);
  EXPECT_EQ(b.facts.mutex_ranks, e.facts.mutex_ranks);
  EXPECT_EQ(b.facts.rank_values, e.facts.rank_values);
  ASSERT_EQ(b.facts.names.size(), 1u);
  EXPECT_EQ(b.facts.names[0].name, use.name);
  EXPECT_TRUE(b.facts.names[0].prefix);
  EXPECT_EQ(b.facts.names[0].line, 7);
  ASSERT_EQ(b.findings.size(), 1u);
  EXPECT_EQ(b.findings[0].rule, f.rule);
  EXPECT_EQ(b.findings[0].line, f.line);
  EXPECT_EQ(b.findings[0].message, f.message);
  EXPECT_EQ(b.findings[0].snippet, f.snippet);
}

TEST(FistlintCache, VersionMismatchDegradesToEmpty) {
  Cache c = Cache::parse("fistlint-cache v0\nctx\t0\nfile\ta\t0\n");
  EXPECT_EQ(c.entries.size(), 0u);
  EXPECT_TRUE(Cache::parse("").entries.empty());
}

TEST(FistlintCache, ContextHashSeesCrossFileState) {
  FileFacts a;
  a.unordered_symbols.insert("seen");
  FileFacts b;
  b.mutex_ranks["mu"] = "kLow";
  b.rank_values["kLow"] = 10;

  ScanContext fwd;
  fwd.merge(a);
  fwd.merge(b);
  fwd.resolve();
  ScanContext rev;
  rev.merge(b);
  rev.merge(a);
  rev.resolve();
  EXPECT_EQ(context_hash(fwd), context_hash(rev))
      << "hash must not depend on merge order";

  FileFacts extra;
  extra.unordered_symbols.insert("by_id");
  ScanContext grown;
  grown.merge(a);
  grown.merge(b);
  grown.merge(extra);
  grown.resolve();
  EXPECT_NE(context_hash(fwd), context_hash(grown))
      << "a new declaration anywhere must invalidate cached findings";
}

// ---------------------------------------------------------------------------
// lexer
// ---------------------------------------------------------------------------

TEST(FistlintLexer, StringsAndCommentsHideBannedIdents) {
  // rand/time inside raw strings, ordinary strings, and comments must
  // not produce identifier tokens.
  SourceFile file = lex(
      "const char* a = R\"x(rand() time(nullptr))x\";\n"
      "const char* b = \"srand(1)\";  // rand() here too\n"
      "/* std::random_device */ int c = 0;\n",
      "s.cpp");
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::Ident) {
      EXPECT_TRUE(t.text != "rand" && t.text != "srand" &&
                  t.text != "random_device" && t.text != "time")
          << t.text;
    }
  }
  ScanContext ctx;
  EXPECT_TRUE(run_file_rules(file, ctx).empty());
}

TEST(FistlintLexer, DigitSeparatorsAndTwoCharPuncts) {
  // Separators are stripped from the token text so numeric rules can
  // parse it without tripping on 21'000'000-style literals.
  SourceFile file = lex("long n = 21'000'000; m >>= 2;", "s.cpp");
  bool saw_number = false;
  int gt = 0;
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::Number && t.text == "21000000") saw_number = true;
    if (t.punct('>')) ++gt;
  }
  EXPECT_TRUE(saw_number);
  EXPECT_EQ(gt, 2) << "every punctuator is a single character";
}

TEST(FistlintLexer, AllowParsing) {
  SourceFile file = lex(
      "int x;  // fistlint:allow(unordered-iter,float-amount) both fine\n"
      "// fistlint:allow-file(pointer-order) ids are interned\n",
      "s.cpp");
  ASSERT_EQ(file.allows.size(), 2u);
  EXPECT_EQ(file.allows[0].line, 1);
  EXPECT_FALSE(file.allows[0].own_line);
  EXPECT_FALSE(file.allows[0].file_scope);
  ASSERT_EQ(file.allows[0].rules.size(), 2u);
  EXPECT_EQ(file.allows[0].rules[0], "unordered-iter");
  EXPECT_EQ(file.allows[0].rules[1], "float-amount");
  EXPECT_EQ(file.allows[0].reason, "both fine");
  EXPECT_TRUE(file.allows[1].own_line);
  EXPECT_TRUE(file.allows[1].file_scope);
}

TEST(FistlintLexer, RawStringsKeepLineNumbersAndAllowAnchors) {
  // A raw string spanning several lines must not desynchronize the
  // line counter: the token after it carries the real line, and an
  // own-line allow following it anchors to the right code line.
  SourceFile file = lex(
      "const char* q = R\"(one\ntwo\nthree)\";\n"
      "// fistlint:allow(unordered-iter) reason here\n"
      "int after = 0;\n",
      "s.cpp");
  bool saw_raw = false;
  bool saw_after = false;
  for (const Token& t : file.tokens) {
    if (t.kind == TokKind::Str && t.line == 1) saw_raw = true;
    if (t.kind == TokKind::Ident && t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 5);
    }
  }
  EXPECT_TRUE(saw_raw);
  EXPECT_TRUE(saw_after);
  ASSERT_EQ(file.allows.size(), 1u);
  EXPECT_EQ(file.allows[0].line, 4);
  EXPECT_TRUE(file.allows[0].own_line);
}

TEST(FistlintLexer, EffectNoteParsing) {
  SourceFile file = lex(
      "void f() {\n"
      "  // fistlint:effect(blocking) vendored wrapper hides the fsync\n"
      "}\n"
      "// fistlint:effect(alloc)\n"
      "void g();\n",
      "s.cpp");
  ASSERT_EQ(file.effects.size(), 2u);
  EXPECT_EQ(file.effects[0].line, 2);
  EXPECT_TRUE(file.effects[0].blocking);
  EXPECT_FALSE(file.effects[0].alloc);
  EXPECT_EQ(file.effects[1].line, 4);
  EXPECT_FALSE(file.effects[1].blocking);
  EXPECT_TRUE(file.effects[1].alloc);
}

// ---------------------------------------------------------------------------
// cross-TU call-graph engine
// ---------------------------------------------------------------------------

// Lexes several (relpath, source) pairs into one ScanContext the way
// the driver's pass 1 does, and returns `rule:line` findings for the
// file named `target`.
std::string findings_for_sources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::string& target, ScanContext* ctx_out = nullptr) {
  ScanContext ctx;
  std::vector<SourceFile> files;
  for (const auto& [rel, text] : sources) {
    files.push_back(lex(text, rel));
    FileFacts facts;
    collect_facts(files.back(), facts);
    ctx.merge(facts);
  }
  ctx.resolve();
  std::string out;
  for (const SourceFile& f : files) {
    if (f.rel != target) continue;
    std::vector<Finding> findings = apply_allows(run_file_rules(f, ctx), f);
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    for (const Finding& fd : findings)
      out += fd.rule + ":" + std::to_string(fd.line) + "\n";
  }
  if (ctx_out != nullptr) *ctx_out = std::move(ctx);
  return out;
}

TEST(FistlintCrossTU, BlockingPropagatesAcrossFiles) {
  const std::string a = read_fixture("xtu_lock_a.cpp");
  const std::string b = read_fixture("xtu_sink_b.cpp");
  // The lock is in A; the fsync is two calls deep in B.
  EXPECT_EQ(findings_for_sources({{"a.cpp", a}, {"b.cpp", b}}, "a.cpp"),
            "blocking-under-lock:25\n");
  // Without half B the callee has no summary, so nothing propagates.
  EXPECT_EQ(findings_for_sources({{"a.cpp", a}}, "a.cpp"), "");
}

TEST(FistlintCrossTU, WitnessChainNamesTheRemoteFile) {
  ScanContext ctx;
  findings_for_sources({{"a.cpp", read_fixture("xtu_lock_a.cpp")},
                        {"b.cpp", read_fixture("xtu_sink_b.cpp")}},
                       "a.cpp", &ctx);
  bool found = false;
  for (const CallGraph::Node& n : ctx.graph.nodes()) {
    if (n.qname != "Journal::commit") continue;
    found = true;
    EXPECT_TRUE(n.blocking);
    EXPECT_NE(n.why_blocking.find("b.cpp"), std::string::npos)
        << n.why_blocking;
    EXPECT_NE(n.why_blocking.find("journal_flush_all"), std::string::npos)
        << n.why_blocking;
  }
  EXPECT_TRUE(found);
}

TEST(FistlintCrossTU, DeclaredEffectNotePropagates) {
  // A fistlint:effect(blocking) note stands in for effects the token
  // heuristics cannot see (vendored wrappers, inline asm, ifdefs).
  const std::string sink =
      "void vendor_flush() {\n"
      "  // fistlint:effect(blocking) platform wrapper hides the fsync\n"
      "}\n";
  const std::string caller =
      "enum class Rank : int { kS = 60 };\n"
      "struct Mutex { explicit Mutex(Rank r); void lock(); void unlock(); };\n"
      "struct LockGuard { explicit LockGuard(Mutex& m); };\n"
      "void vendor_flush();\n"
      "struct S {\n"
      "  Mutex s_mutex{Rank::kS};\n"
      "  void go() {\n"
      "    LockGuard lock(s_mutex);\n"
      "    vendor_flush();\n"
      "  }\n"
      "};\n";
  EXPECT_EQ(
      findings_for_sources({{"a.cpp", caller}, {"b.cpp", sink}}, "a.cpp"),
      "blocking-under-lock:9\n");
}

TEST(FistlintCrossTU, MemberCallsLinkOnlyWhenUnique) {
  // Two classes define persist(); a member call through an unknown
  // receiver must not union their effects onto the caller.
  const std::string two_persists =
      "struct Log { void persist(); };\n"
      "int fsync(int fd);\n"
      "void Log::persist() { fsync(3); }\n"
      "struct Buf { void persist(); };\n"
      "void Buf::persist() {}\n";
  const std::string caller =
      "enum class Rank : int { kS = 60 };\n"
      "struct Mutex { explicit Mutex(Rank r); void lock(); void unlock(); };\n"
      "struct LockGuard { explicit LockGuard(Mutex& m); };\n"
      "struct Holder {\n"
      "  Mutex h_mutex{Rank::kS};\n"
      "  void* sink;\n"
      "  void go() {\n"
      "    LockGuard lock(h_mutex);\n"
      "    sink->persist();\n"
      "  }\n"
      "};\n";
  EXPECT_EQ(
      findings_for_sources({{"a.cpp", caller}, {"b.cpp", two_persists}},
                           "a.cpp"),
      "");
  // A qualified call is unambiguous and still propagates.
  std::string qualified = caller;
  const std::string from = "sink->persist();";
  qualified.replace(qualified.find(from), from.size(),
                    "Log::persist();  ");
  EXPECT_EQ(
      findings_for_sources({{"a.cpp", qualified}, {"b.cpp", two_persists}},
                           "a.cpp"),
      "blocking-under-lock:9\n");
}

TEST(FistlintCallGraph, DotOutputForCrossTUPair) {
  ScanContext ctx;
  findings_for_sources({{"a.cpp", read_fixture("xtu_lock_a.cpp")},
                        {"b.cpp", read_fixture("xtu_sink_b.cpp")}},
                       "a.cpp", &ctx);
  const std::string dot = callgraph_dot(ctx.graph, ctx.functions, "a.cpp");
  EXPECT_NE(dot.find("digraph fistlint_callgraph"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Journal::commit\" -> \"journal_flush_all\""),
            std::string::npos)
      << dot;
  EXPECT_NE(dot.find("[B]"), std::string::npos)
      << "blocking flag missing from a node label:\n"
      << dot;
  EXPECT_EQ(dot.find("journal_write_back"), std::string::npos)
      << "the dump is scoped to `rel` plus direct callees only:\n"
      << dot;
}

TEST(FistlintCache, ContextHashSeesConcurrencyFacts) {
  auto hash_for = [](const std::string& src) {
    SourceFile f = lex(src, "x.cpp");
    FileFacts facts;
    collect_facts(f, facts);
    ScanContext ctx;
    ctx.merge(facts);
    ctx.resolve();
    return context_hash(ctx);
  };
  const std::string base =
      "enum class Rank : int { kA = 10 };\n"
      "struct Mutex { explicit Mutex(Rank r); void lock(); void unlock(); "
      "};\n"
      "struct S { Mutex mu{Rank::kA}; };\n";
  std::string renumbered = base;
  renumbered.replace(renumbered.find("kA = 10"), 7, "kA = 70");
  EXPECT_NE(hash_for(base), hash_for(renumbered))
      << "renumbering a rank must invalidate every cached file";
  EXPECT_NE(hash_for(base),
            hash_for(base + "struct T { Mutex mu2{Rank::kA}; };\n"))
      << "a new mutex declaration must invalidate every cached file";
}

TEST(FistlintCache, ContextHashSeesCalleeBodies) {
  // Editing only a callee's body must change the context hash, so
  // files holding locks around that call get re-scanned (the cross-TU
  // invalidation the CI coherence step exercises).
  auto hash_for = [](const std::string& callee_body) {
    SourceFile f = lex("void leaf() { " + callee_body + " }\n", "b.cpp");
    FileFacts facts;
    collect_facts(f, facts);
    ScanContext ctx;
    ctx.merge(facts);
    ctx.resolve();
    return context_hash(ctx);
  };
  EXPECT_NE(hash_for("int x = 0;"), hash_for("fsync(3);"));
}

TEST(FistlintCache, SummariesRoundTrip) {
  Cache c;
  c.ctx_hash = 1;
  CacheEntry& e = c.entries["src/a.cpp"];
  e.file_hash = 2;
  FunctionSummary fn;
  fn.qname = "fist::LiveIndex::append";
  fn.line = 40;
  fn.lock_regions.push_back(LockRegion{"index_mutex_", "lock", 41, {}, false});
  fn.lock_regions.push_back(LockRegion{"side_mutex_", "", 42, {0}, true});
  fn.fields.push_back(FieldAccess{"deltas_", 43, {0, 1}});
  CallSite member_call;
  member_call.name = "append";
  member_call.line = 44;
  member_call.member = true;
  member_call.regions = {0};
  fn.calls.push_back(member_call);
  CallSite free_call;
  free_call.name = "obs::flight_event";
  free_call.line = 45;
  fn.calls.push_back(free_call);
  fn.atoms.push_back(EffectAtom{EffectAtom::kBlocking, 46, "fsync", {0}});
  e.facts.summaries.push_back(fn);
  e.facts.callable_symbols.insert("on_flush");
  e.facts.container_members["LiveIndex"] = {"deltas_"};
  e.facts.mutexed_classes.insert("LiveIndex");
  e.facts.member_ops.push_back(
      MemberOp{"deltas_", "push_back", "src/a.cpp", 44, true});
  e.facts.class_mutexes["LiveIndex"] = {"index_mutex_"};
  e.facts.class_fields["LiveIndex"] = {"deltas_"};
  e.facts.class_guarded["LiveIndex"] = {"deltas_"};

  Cache back = Cache::parse(c.render());
  ASSERT_EQ(back.entries.count("src/a.cpp"), 1u);
  const FileFacts& f = back.entries["src/a.cpp"].facts;
  ASSERT_EQ(f.summaries.size(), 1u);
  const FunctionSummary& bfn = f.summaries[0];
  EXPECT_EQ(bfn.qname, fn.qname);
  EXPECT_EQ(bfn.line, fn.line);
  ASSERT_EQ(bfn.lock_regions.size(), 2u);
  EXPECT_EQ(bfn.lock_regions[0].mutex, "index_mutex_");
  EXPECT_FALSE(bfn.lock_regions[0].try_lock);
  EXPECT_EQ(bfn.lock_regions[1].mutex, "side_mutex_");
  EXPECT_TRUE(bfn.lock_regions[1].try_lock);
  EXPECT_EQ(bfn.lock_regions[1].regions, std::vector<int>{0});
  ASSERT_EQ(bfn.fields.size(), 1u);
  EXPECT_EQ(bfn.fields[0].name, "deltas_");
  EXPECT_EQ(bfn.fields[0].line, 43);
  EXPECT_EQ(bfn.fields[0].regions, (std::vector<int>{0, 1}));
  ASSERT_EQ(bfn.calls.size(), 2u);
  EXPECT_EQ(bfn.calls[0].name, "append");
  EXPECT_TRUE(bfn.calls[0].member);
  EXPECT_EQ(bfn.calls[0].regions, std::vector<int>{0});
  EXPECT_EQ(bfn.calls[1].name, "obs::flight_event");
  EXPECT_FALSE(bfn.calls[1].member);
  ASSERT_EQ(bfn.atoms.size(), 1u);
  EXPECT_EQ(bfn.atoms[0].kind, EffectAtom::kBlocking);
  EXPECT_EQ(bfn.atoms[0].what, "fsync");
  EXPECT_EQ(f.callable_symbols, e.facts.callable_symbols);
  EXPECT_EQ(f.container_members, e.facts.container_members);
  EXPECT_EQ(f.mutexed_classes, e.facts.mutexed_classes);
  ASSERT_EQ(f.member_ops.size(), 1u);
  EXPECT_EQ(f.member_ops[0].member, "deltas_");
  EXPECT_TRUE(f.member_ops[0].grow);
  EXPECT_EQ(f.class_mutexes, e.facts.class_mutexes);
  EXPECT_EQ(f.class_fields, e.facts.class_fields);
  EXPECT_EQ(f.class_guarded, e.facts.class_guarded);
}

TEST(FistlintCache, ContextHashSeesFieldAccesses) {
  // A field access gained or lost inside a member function must
  // invalidate every cached file: unguarded-field verdicts elsewhere
  // depend on which functions touch which fields.
  auto hash_for = [](const std::string& body) {
    const std::string src =
        "enum class Rank : int { kA = 10 };\n"
        "struct Mutex { explicit Mutex(Rank r); void lock(); void unlock(); "
        "};\n"
        "struct S {\n"
        "  Mutex mu{Rank::kA};\n"
        "  long hits_ = 0;\n"
        "  void f();\n"
        "};\n"
        "void S::f() { " + body + " }\n";
    SourceFile f = lex(src, "x.cpp");
    FileFacts facts;
    collect_facts(f, facts);
    ScanContext ctx;
    ctx.merge(facts);
    ctx.resolve();
    return context_hash(ctx);
  };
  EXPECT_NE(hash_for("hits_ += 1;"), hash_for("long local = 1;"));
}

TEST(FistlintLockGraph, CrossTUDeadlockWitnessNamesEveryHop) {
  // The acceptance bar for the cycle rule: the witness chain must name
  // both lock sites and every call hop between them, across TUs.
  ScanContext ctx;
  const std::string a_findings = findings_for_sources(
      {{"a.cpp", read_fixture("xtu_deadlock_a.cpp")},
       {"b.cpp", read_fixture("xtu_deadlock_b.cpp")}},
      "a.cpp", &ctx);
  EXPECT_EQ(a_findings,
            "static-deadlock-cycle:25\n"
            "transitive-lock-order:26\n");
  EXPECT_EQ(findings_for_sources(
                {{"a.cpp", read_fixture("xtu_deadlock_a.cpp")},
                 {"b.cpp", read_fixture("xtu_deadlock_b.cpp")}},
                "b.cpp"),
            "transitive-lock-order:25\n");

  ASSERT_EQ(ctx.lockgraph.cycles().size(), 1u);
  const LockGraph::Cycle& cy = ctx.lockgraph.cycles()[0];
  EXPECT_EQ(cy.mutexes,
            (std::vector<std::string>{"pool_mutex", "queue_mutex"}));
  // The anchor is the lexicographically smallest edge site, so exactly
  // one file owns the finding no matter how the scan is sliced.
  EXPECT_EQ(cy.anchor_file, "a.cpp");
  EXPECT_EQ(cy.anchor_line, 25);
  std::string joined;
  for (const LockGraph::Edge& e : cy.path) joined += e.chain + "; ";
  for (const char* hop : {
           "holding `pool_mutex` (rank 30) (a.cpp:25)",
           "calls `queue_push` (a.cpp:26)",
           "acquires `queue_mutex` (rank 30) (b.cpp:24)",
           "holding `queue_mutex` (rank 30) (b.cpp:24)",
           "calls `pool_recycle` (b.cpp:25)",
           "acquires `pool_mutex` (rank 30) (a.cpp:30)",
       }) {
    EXPECT_NE(joined.find(hop), std::string::npos)
        << "missing hop: " << hop << "\nwitness: " << joined;
  }
}

TEST(FistlintLockGraph, ScopedLockMultiMutexAcquiresAtomically) {
  // std::scoped_lock(m1, m2) deadlock-orders internally: the guarded
  // mutexes must not generate acquired-while-held edges against each
  // other, in either argument order.
  const std::string src =
      "enum class Rank : int { kLow = 10, kHigh = 20 };\n"
      "struct Mutex { explicit Mutex(Rank r); void lock(); void unlock(); "
      "};\n"
      "struct scoped_lock { scoped_lock(Mutex& a, Mutex& b); };\n"
      "struct State {\n"
      "  Mutex low_mutex{Rank::kLow};\n"
      "  Mutex high_mutex{Rank::kHigh};\n"
      "  void both() {\n"
      "    scoped_lock lock(high_mutex, low_mutex);\n"
      "  }\n"
      "};\n";
  EXPECT_EQ(findings_for_sources({{"a.cpp", src}}, "a.cpp"), "");
  // A later acquisition while both are held still sees both regions.
  ScanContext ctx;
  findings_for_sources({{"a.cpp", src}}, "a.cpp", &ctx);
  ASSERT_EQ(ctx.functions.size(), 1u);
  ASSERT_EQ(ctx.functions[0].lock_regions.size(), 2u);
  EXPECT_TRUE(ctx.functions[0].lock_regions[0].regions.empty());
  EXPECT_TRUE(ctx.functions[0].lock_regions[1].regions.empty());
}

TEST(FistlintCallGraph, DotEscapingHoldsForTemplatesAndQuotes) {
  // DOT identifiers are double-quoted: quotes and backslashes must be
  // escaped, newlines folded, and template angle brackets (legal inside
  // a quoted string) passed through untouched.
  EXPECT_EQ(dot_escape("ChainView<Block>::at"), "ChainView<Block>::at");
  EXPECT_EQ(dot_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(dot_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(dot_escape("two\nlines"), "two\\nlines");
}

TEST(FistlintLockGraph, DotDumpShowsRankedNodesAndEdgeSites) {
  ScanContext ctx;
  findings_for_sources({{"a.cpp", read_fixture("xtu_deadlock_a.cpp")},
                        {"b.cpp", read_fixture("xtu_deadlock_b.cpp")}},
                       "a.cpp", &ctx);
  const std::string dot = lockgraph_dot(ctx.lockgraph, ctx.mutex_ranks);
  EXPECT_NE(dot.find("digraph fistlint_lockgraph"), std::string::npos) << dot;
  EXPECT_NE(dot.find("pool_mutex"), std::string::npos) << dot;
  EXPECT_NE(dot.find("rank 30"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"pool_mutex\" -> \"queue_mutex\""), std::string::npos)
      << dot;
  EXPECT_NE(dot.find("[label=\"a.cpp:25\"]"), std::string::npos)
      << "edge labels carry the held-region open site:\n"
      << dot;
}

TEST(FistlintSarif, ReportEscapesAndLocatesFindings) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"transitive-lock-order", "src/a.cpp", 12,
                             "message with \"quotes\"\nand a newline", ""});
  const std::string sarif = sarif_report(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"transitive-lock-order\""),
            std::string::npos);
  EXPECT_NE(sarif.find("message with \\\"quotes\\\"\\nand a newline"),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
  // Every registered rule appears in the tool metadata, findings or not.
  EXPECT_NE(sarif.find("\"id\": \"static-deadlock-cycle\""),
            std::string::npos);
  EXPECT_NE(sarif_report({}).find("\"results\": [\n      ]"),
            std::string::npos)
      << "an empty scan still writes a well-formed (empty) results array";
}

TEST(FistlintDriver, ColdWarmAndNoCacheRunsAreByteIdentical) {
  // The determinism contract for the new whole-program rules: a cold
  // cache build, a fully warm rerun, and an uncached run must print the
  // same bytes (cycle anchoring and witness chains cannot depend on
  // scan slicing).
  Options opts;
  opts.root = FISTLINT_FIXTURE_DIR;
  opts.scan_prefixes = {""};
  opts.check_docs = false;
  opts.cache = testing::TempDir() + "/fistlint_determinism.cache";
  std::remove(opts.cache.c_str());
  auto run_once = [&](bool use_cache) {
    opts.use_cache = use_cache;
    std::ostringstream out;
    std::ostringstream err;
    run(opts, out, err);
    return out.str();
  };
  const std::string cold = run_once(true);
  const std::string warm = run_once(true);
  const std::string uncached = run_once(false);
  EXPECT_FALSE(cold.empty()) << "fixture corpus should produce findings";
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, uncached);
  std::remove(opts.cache.c_str());
}

}  // namespace
}  // namespace fistlint
