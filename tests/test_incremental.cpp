// test_incremental.cpp — the incremental-vs-batch differential gate.
//
// The contract (docs/ROBUSTNESS.md): for ANY prefix+delta split of any
// seeded economy, at any batch thread count, IncrementalClusterer's
// state after consuming the deltas is bit-identical to the batch
// algorithms over the whole chain — H1 stats and partition, the full
// H2Result (labels, change table, skip buckets), and the final
// clustering. Split points are deterministic lists, never random
// (fistlint: banned-random).
#include "cluster/incremental.hpp"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "cluster/clustering.hpp"
#include "cluster/heuristic1.hpp"
#include "cluster/heuristic2.hpp"
#include "core/executor.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"
#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

AddrId id_of(const ChainView& view, std::uint32_t i) {
  auto found = view.addresses().find(test::addr(i));
  return found ? *found : kNoAddr;
}

/// Batch reference over a complete view.
struct BatchRef {
  UnionFind h1_uf;
  H1Stats h1_stats;
  H2Result h2;
  Clustering h1_clusters;
  Clustering final_clusters;
};

BatchRef batch_reference(const ChainView& view, const H2Options& options,
                         const std::unordered_set<AddrId>& dice,
                         unsigned threads) {
  BatchRef ref;
  ref.h1_uf = UnionFind(view.address_count());
  if (threads == 1) {
    ref.h1_stats = apply_heuristic1(view, ref.h1_uf);
  } else {
    Executor exec(threads);
    ref.h1_stats = apply_heuristic1(view, ref.h1_uf, exec);
  }
  ref.h2 = apply_heuristic2(view, options, dice);
  {
    UnionFind copy = ref.h1_uf;
    ref.h1_clusters = Clustering::from_union_find(copy);
  }
  {
    UnionFind merged = ref.h1_uf;
    unite_h2_labels(view, ref.h2, merged);
    ref.final_clusters = Clustering::from_union_find(merged);
  }
  return ref;
}

void expect_same_skips(const H2SkipStats& a, const H2SkipStats& b) {
  EXPECT_EQ(a.coinbase, b.coinbase);
  EXPECT_EQ(a.self_change, b.self_change);
  EXPECT_EQ(a.no_candidate, b.no_candidate);
  EXPECT_EQ(a.ambiguous, b.ambiguous);
  EXPECT_EQ(a.reused_guard, b.reused_guard);
  EXPECT_EQ(a.self_change_history_guard, b.self_change_history_guard);
  EXPECT_EQ(a.window_veto, b.window_veto);
  EXPECT_EQ(a.too_few_outputs, b.too_few_outputs);
}

void expect_same_h2(const H2Result& batch, const H2Result& inc) {
  ASSERT_EQ(batch.labels.size(), inc.labels.size());
  for (std::size_t i = 0; i < batch.labels.size(); ++i) {
    EXPECT_EQ(batch.labels[i].tx, inc.labels[i].tx) << "label " << i;
    EXPECT_EQ(batch.labels[i].change, inc.labels[i].change) << "label " << i;
  }
  EXPECT_EQ(batch.change_of_tx, inc.change_of_tx);
  expect_same_skips(batch.skipped, inc.skipped);
}

void expect_matches_batch(const BatchRef& ref,
                          const IncrementalClusterer& inc) {
  EXPECT_EQ(ref.h1_stats.multi_input_txs, inc.h1_stats().multi_input_txs);
  EXPECT_EQ(ref.h1_stats.links, inc.h1_stats().links);
  EXPECT_EQ(ref.h1_clusters.assignment(),
            inc.h1_clustering().assignment());
  expect_same_h2(ref.h2, inc.h2_result());
  EXPECT_EQ(ref.final_clusters.assignment(),
            inc.clustering().assignment());
}

/// Runs the clusterer over `blocks` split at `split` (prefix applied
/// in one delta, the rest block by block — the live-index shape).
IncrementalClusterer run_split(const std::vector<Block>& blocks,
                               std::size_t split, const H2Options& options,
                               std::vector<Address> dice) {
  IncrementalClusterer inc(options, std::move(dice));
  ChainView view;
  std::vector<Block> prefix(blocks.begin(),
                            blocks.begin() + static_cast<std::ptrdiff_t>(split));
  view.apply_delta(prefix);
  inc.apply(view);
  for (std::size_t b = split; b < blocks.size(); ++b) {
    std::vector<Block> delta{blocks[b]};
    view.apply_delta(delta);
    inc.apply(view);
  }
  return inc;
}

/// One simulated economy per seed, shared across the differential
/// cases (world generation dominates the suite's runtime).
struct Economy {
  std::vector<Block> blocks;
  ChainView view;
  std::vector<Address> dice_addresses;
  std::unordered_set<AddrId> dice_ids;

  explicit Economy(std::uint64_t seed) {
    sim::WorldConfig cfg;
    cfg.days = 12;
    cfg.users = 25;
    cfg.seed = seed;
    sim::World world(cfg);
    world.run();
    for (std::size_t i = 0; i < world.store().count(); ++i)
      blocks.push_back(world.store().read(i));
    view.apply_delta(blocks);
    for (const TagEntry& entry : world.tag_feed())
      if (entry.tag.category == Category::Gambling)
        dice_addresses.push_back(entry.address);
    for (const Address& a : dice_addresses)
      if (auto id = view.addresses().find(a)) dice_ids.insert(*id);
  }
};

class IncrementalDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IncrementalDifferential, MatchesBatchAtEverySplitAndThreadCount) {
  Economy eco(GetParam());
  const std::size_t n = eco.blocks.size();
  ASSERT_GT(n, 4u);
  // Deterministic split list: edges, thirds, and a block-by-block tail.
  const std::size_t splits[] = {0, 1, n / 3, n / 2, n - 2, n};
  const unsigned thread_counts[] = {1, 2, 8};

  for (const H2Options& options :
       {H2Options{}, refined_h2_options()}) {
    for (unsigned threads : thread_counts) {
      BatchRef ref =
          batch_reference(eco.view, options, eco.dice_ids, threads);
      for (std::size_t split : splits) {
        IncrementalClusterer inc =
            run_split(eco.blocks, split, options, eco.dice_addresses);
        expect_matches_batch(ref, inc);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferential,
                         ::testing::Values(7u, 11u, 42u));

TEST(Incremental, SerializeRoundTripMidStreamContinues) {
  Economy eco(7);
  const std::size_t split = eco.blocks.size() / 2;
  H2Options options = refined_h2_options();

  // Uninterrupted reference run.
  IncrementalClusterer straight =
      run_split(eco.blocks, split, options, eco.dice_addresses);

  // Run to the split, round-trip through bytes, continue.
  ChainView view;
  std::vector<Block> prefix(
      eco.blocks.begin(),
      eco.blocks.begin() + static_cast<std::ptrdiff_t>(split));
  view.apply_delta(prefix);
  IncrementalClusterer first(options, eco.dice_addresses);
  first.apply(view);
  Bytes image = first.serialize();
  IncrementalClusterer resumed = IncrementalClusterer::deserialize(
      image, view, options, eco.dice_addresses);
  for (std::size_t b = split; b < eco.blocks.size(); ++b) {
    std::vector<Block> delta{eco.blocks[b]};
    view.apply_delta(delta);
    resumed.apply(view);
  }

  EXPECT_EQ(straight.h1_stats().links, resumed.h1_stats().links);
  expect_same_h2(straight.h2_result(), resumed.h2_result());
  EXPECT_EQ(straight.clustering().assignment(),
            resumed.clustering().assignment());
}

TEST(Incremental, DeserializeRejectsViewMismatch) {
  Economy eco(7);
  ChainView half;
  std::vector<Block> prefix(eco.blocks.begin(), eco.blocks.begin() + 2);
  half.apply_delta(prefix);
  IncrementalClusterer inc;
  inc.apply(half);
  Bytes image = inc.serialize();
  // The full view has more transactions than the image's next_tx.
  EXPECT_THROW(IncrementalClusterer::deserialize(image, eco.view, {}, {}),
               ParseError);
}

// --- handcrafted retraction cases -----------------------------------

/// A delta receipt inside the wait window must retract an already-made
/// label on an OLD transaction (the window veto re-fires), rebuilding
/// the final forest.
TEST(Incremental, WindowVetoRetractsEarlierLabel) {
  H2Options options;
  options.wait_window = kWeek;

  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.coinbase(2, btc(1));  // addr 2 pre-seen
  chain.next_block();
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});  // 3 = fresh change
  chain.next_block();
  auto c2 = chain.coinbase(4, btc(50));
  chain.spend({c2}, {{3, btc(5)}});  // re-receipt 1h later: in-window
  const std::vector<Block>& all = chain.blocks();
  ASSERT_EQ(all.size(), 3u);

  // Batch truth over the whole chain: the label is vetoed.
  ChainView full;
  full.apply_delta(all);
  H2Result batch = apply_heuristic2(full, options);
  EXPECT_EQ(batch.labels.size(), 0u);
  EXPECT_EQ(batch.skipped.window_veto, 1u);

  // Prefix state (first two blocks): the label exists.
  ChainView view;
  std::vector<Block> prefix(all.begin(), all.begin() + 2);
  view.apply_delta(prefix);
  IncrementalClusterer inc(options);
  IncrementalClusterer::DeltaStats s1 = inc.apply(view);
  EXPECT_EQ(s1.label_flips, 0u);
  ASSERT_EQ(inc.h2_result().labels.size(), 1u);
  const TxIndex labeled_tx = inc.h2_result().labels[0].tx;

  std::vector<Block> delta(all.begin() + 2, all.end());
  view.apply_delta(delta);
  IncrementalClusterer::DeltaStats s2 = inc.apply(view);
  EXPECT_EQ(s2.label_flips, 1u);
  EXPECT_EQ(s2.final_rebuilds, 1u);
  EXPECT_GE(s2.reevaluated, 1u);
  expect_same_h2(batch, inc.h2_result());
  EXPECT_EQ(inc.h2_result().change_of_tx[labeled_tx], kNoAddr);

  UnionFind uf(full.address_count());
  apply_heuristic1(full, uf);
  unite_h2_labels(full, batch, uf);
  EXPECT_EQ(Clustering::from_union_find(uf).assignment(),
            inc.clustering().assignment());
}

/// The future-resolution refinement can flip an OLD ambiguous
/// transaction *to* labeled when a delta pays one of its fresh
/// outputs (the other fresh output becomes the unique never-paid
/// survivor).
TEST(Incremental, AmbiguousResolvesToLabelOnDeltaReceipt) {
  H2Options options;
  options.resolve_ambiguous_via_future = true;

  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.next_block();
  // Two fresh outputs: 2 (small) and 3 (large). Both never paid yet →
  // two survivors → ambiguous.
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});
  chain.next_block();
  // Delta pays addr 2 → addr 3 is the unique survivor and 4x larger.
  auto c2 = chain.coinbase(4, btc(50));
  chain.spend({c2}, {{2, btc(1)}});
  const std::vector<Block>& all = chain.blocks();
  ASSERT_EQ(all.size(), 3u);

  ChainView view;
  std::vector<Block> prefix(all.begin(), all.begin() + 2);
  view.apply_delta(prefix);
  IncrementalClusterer inc(options);
  inc.apply(view);
  EXPECT_EQ(inc.h2_result().labels.size(), 0u);
  EXPECT_EQ(inc.h2_result().skipped.ambiguous, 1u);

  std::vector<Block> delta(all.begin() + 2, all.end());

  ChainView full;
  full.apply_delta(all);
  H2Result batch = apply_heuristic2(full, options);
  ASSERT_EQ(batch.labels.size(), 1u);
  EXPECT_EQ(batch.labels[0].change, id_of(full, 3));

  view.apply_delta(delta);
  IncrementalClusterer::DeltaStats s = inc.apply(view);
  EXPECT_EQ(s.label_flips, 1u);
  // Gaining a label needs no rebuild — the forest only accumulates.
  EXPECT_EQ(s.final_rebuilds, 0u);
  expect_same_h2(batch, inc.h2_result());
}

/// Paying the surviving candidate itself retracts the label back to
/// ambiguous (both fresh outputs now have receipts).
TEST(Incremental, LabelRetractsToAmbiguousWhenSurvivorIsPaid) {
  H2Options options;
  options.resolve_ambiguous_via_future = true;

  TestChain rebuilt;
  auto r1 = rebuilt.coinbase(1, btc(50));
  rebuilt.next_block();
  rebuilt.spend({r1}, {{2, btc(10)}, {3, btc(40)}});
  rebuilt.next_block();
  auto r2 = rebuilt.coinbase(4, btc(50));
  auto r3 = rebuilt.spend({r2}, {{2, btc(1)}});
  rebuilt.next_block();
  auto r4 = rebuilt.coinbase(5, btc(50));
  rebuilt.spend({r4}, {{3, btc(1)}});  // pays the survivor too
  const std::vector<Block>& all = rebuilt.blocks();
  (void)r3;

  ChainView full;
  full.apply_delta(all);
  H2Result batch = apply_heuristic2(full, options);
  EXPECT_EQ(batch.labels.size(), 0u);

  // Incremental: stop after block 2 (label present), then deliver the
  // survivor-paying block.
  ChainView view;
  std::vector<Block> prefix(all.begin(), all.begin() + 3);
  view.apply_delta(prefix);
  IncrementalClusterer inc(options);
  inc.apply(view);
  ASSERT_EQ(inc.h2_result().labels.size(), 1u);

  std::vector<Block> delta(all.begin() + 3, all.end());
  view.apply_delta(delta);
  IncrementalClusterer::DeltaStats s = inc.apply(view);
  EXPECT_EQ(s.label_flips, 1u);
  EXPECT_EQ(s.final_rebuilds, 1u);
  expect_same_h2(batch, inc.h2_result());

  UnionFind uf(full.address_count());
  apply_heuristic1(full, uf);
  unite_h2_labels(full, batch, uf);
  EXPECT_EQ(Clustering::from_union_find(uf).assignment(),
            inc.clustering().assignment());
}

TEST(Incremental, ApplyOnShrunkViewThrows) {
  Economy eco(7);
  IncrementalClusterer inc;
  inc.apply(eco.view);
  ChainView smaller;
  std::vector<Block> prefix(eco.blocks.begin(), eco.blocks.begin() + 1);
  smaller.apply_delta(prefix);
  EXPECT_THROW(inc.apply(smaller), UsageError);
}

TEST(Incremental, ApplyIsIdempotentOnUnchangedView) {
  Economy eco(7);
  IncrementalClusterer inc;
  inc.apply(eco.view);
  Clustering before = inc.clustering();
  IncrementalClusterer::DeltaStats s = inc.apply(eco.view);
  EXPECT_EQ(s.txs, 0u);
  EXPECT_EQ(s.label_flips, 0u);
  EXPECT_EQ(before.assignment(), inc.clustering().assignment());
}

}  // namespace
}  // namespace fist
