#include "crypto/ecdsa.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {
namespace {

Hash256 digest_of(const std::string& msg) {
  return hash256(to_bytes(msg));
}

TEST(PrivateKey, RejectsZeroAndOrder) {
  EXPECT_THROW(PrivateKey(U256(0)), UsageError);
  EXPECT_THROW(PrivateKey(secp::order_n()), UsageError);
  EXPECT_NO_THROW(PrivateKey(U256(1)));
}

TEST(PrivateKey, FromSeedDeterministic) {
  Bytes seed = to_bytes(std::string("seed"));
  PrivateKey a = PrivateKey::from_seed(seed);
  PrivateKey b = PrivateKey::from_seed(seed);
  EXPECT_EQ(a.scalar(), b.scalar());
  PrivateKey c = PrivateKey::from_seed(to_bytes(std::string("other")));
  EXPECT_NE(a.scalar(), c.scalar());
}

TEST(PublicKey, KnownGeneratorSerializations) {
  PrivateKey k1(U256(1));
  PublicKey pub = k1.pubkey();
  EXPECT_EQ(to_hex(pub.serialize_uncompressed()),
            "0479be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f817"
            "98483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4"
            "b8");
  EXPECT_EQ(to_hex(pub.serialize_compressed()),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f817"
            "98");
}

TEST(PublicKey, ParseCompressedRoundTrip) {
  PrivateKey k = PrivateKey::from_seed(to_bytes(std::string("x")));
  PublicKey pub = k.pubkey();
  EXPECT_EQ(PublicKey::parse(pub.serialize_compressed()), pub);
  EXPECT_EQ(PublicKey::parse(pub.serialize_uncompressed()), pub);
}

TEST(PublicKey, ParseRejectsGarbage) {
  Bytes bad(33, 0x02);
  bad[1] = 0x05;  // x=5ish, not on curve... construct definitively bad x
  // x = p-1 region unlikely on curve; easier: malformed prefix/length.
  Bytes wrong_prefix(33, 0x07);
  EXPECT_THROW(PublicKey::parse(wrong_prefix), ParseError);
  Bytes too_short(32, 0x02);
  EXPECT_THROW(PublicKey::parse(too_short), ParseError);
}

TEST(PublicKey, Hash160Pipelines) {
  PrivateKey k1(U256(1));
  PublicKey pub = k1.pubkey();
  EXPECT_EQ(pub.hash160_uncompressed().hex(),
            "91b24bf9f5288532960ac687abb035127b1d28a5");
  EXPECT_EQ(pub.hash160_compressed().hex(),
            "751e76e8199196d454941c45d1b3a323f1433bd6");
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("signer")));
  Hash256 digest = digest_of("pay 0.7 BTC to the merchant");
  Signature sig = ecdsa_sign(key, digest);
  EXPECT_TRUE(ecdsa_verify(key.pubkey(), digest, sig));
}

TEST(Ecdsa, DeterministicSignatures) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("signer")));
  Hash256 digest = digest_of("message");
  EXPECT_EQ(ecdsa_sign(key, digest), ecdsa_sign(key, digest));
}

TEST(Ecdsa, WrongMessageFails) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("signer")));
  Signature sig = ecdsa_sign(key, digest_of("message"));
  EXPECT_FALSE(ecdsa_verify(key.pubkey(), digest_of("other"), sig));
}

TEST(Ecdsa, WrongKeyFails) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("signer")));
  PrivateKey other = PrivateKey::from_seed(to_bytes(std::string("other")));
  Hash256 digest = digest_of("message");
  Signature sig = ecdsa_sign(key, digest);
  EXPECT_FALSE(ecdsa_verify(other.pubkey(), digest, sig));
}

TEST(Ecdsa, TamperedSignatureFails) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("signer")));
  Hash256 digest = digest_of("message");
  Signature sig = ecdsa_sign(key, digest);
  Signature bad = sig;
  bad.r = secp::fn().add(bad.r, U256(1));
  EXPECT_FALSE(ecdsa_verify(key.pubkey(), digest, bad));
}

TEST(Ecdsa, RejectsOutOfRangeSignature) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("signer")));
  Hash256 digest = digest_of("message");
  Signature sig;
  sig.r = U256(0);
  sig.s = U256(1);
  EXPECT_FALSE(ecdsa_verify(key.pubkey(), digest, sig));
  sig.r = secp::order_n();
  EXPECT_FALSE(ecdsa_verify(key.pubkey(), digest, sig));
}

TEST(Ecdsa, LowSNormalization) {
  // All signatures must carry the canonical low-s form.
  U256 half = shr(secp::order_n(), 1);
  for (int i = 0; i < 5; ++i) {
    PrivateKey key = PrivateKey::from_seed(
        to_bytes(std::string("key") + std::to_string(i)));
    Signature sig = ecdsa_sign(key, digest_of("m" + std::to_string(i)));
    EXPECT_LE(cmp(sig.s, half), 0);
  }
}

TEST(Der, RoundTrip) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("der")));
  Signature sig = ecdsa_sign(key, digest_of("encode me"));
  Bytes der = sig.der();
  EXPECT_EQ(der[0], 0x30);
  EXPECT_EQ(Signature::from_der(der), sig);
}

TEST(Der, RejectsTruncated) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("der")));
  Bytes der = ecdsa_sign(key, digest_of("x")).der();
  der.pop_back();
  EXPECT_THROW(Signature::from_der(der), ParseError);
}

TEST(Der, RejectsBadTag) {
  Bytes junk = from_hex("310602010102010a");
  EXPECT_THROW(Signature::from_der(junk), ParseError);
}

class EcdsaManyKeys : public ::testing::TestWithParam<int> {};

TEST_P(EcdsaManyKeys, IndependentRoundTrips) {
  std::string seed = "param-key-" + std::to_string(GetParam());
  PrivateKey key = PrivateKey::from_seed(to_bytes(seed));
  Hash256 digest = digest_of("msg-" + std::to_string(GetParam()));
  Signature sig = ecdsa_sign(key, digest);
  EXPECT_TRUE(ecdsa_verify(key.pubkey(), digest, sig));
}

INSTANTIATE_TEST_SUITE_P(Keys, EcdsaManyKeys, ::testing::Range(0, 8));

}  // namespace
}  // namespace fist
