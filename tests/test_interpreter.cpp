#include "chain/interpreter.hpp"

#include <gtest/gtest.h>

#include "chain/sighash.hpp"
#include "crypto/sha256.hpp"
#include "script/standard.hpp"
#include "sim/world.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

// A transaction spending one P2PKH output owned by `key`.
struct Spend {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("spender")));
  Script spent;
  Transaction tx;

  Spend() {
    spent = make_p2pkh(hash160(key.pubkey().serialize_compressed()));
    TxIn in;
    in.prevout.txid = hash256(to_bytes(std::string("funding")));
    tx.inputs.push_back(in);
    tx.outputs.push_back(TxOut{btc(1), Script()});
  }

  void sign() {
    tx.inputs[0].script_sig = sign_p2pkh_input(tx, 0, spent, key);
  }
};

TEST(Interpreter, P2pkhEndToEnd) {
  Spend s;
  s.sign();
  TransactionSignatureChecker checker(s.tx, 0);
  EXPECT_EQ(verify_script(s.tx.inputs[0].script_sig, s.spent, checker),
            ScriptError::Ok);
}

TEST(Interpreter, P2pkhWrongKeyFails) {
  Spend s;
  PrivateKey wrong = PrivateKey::from_seed(to_bytes(std::string("wrong")));
  s.tx.inputs[0].script_sig = sign_p2pkh_input(s.tx, 0, s.spent, wrong);
  TransactionSignatureChecker checker(s.tx, 0);
  // The pubkey hash mismatch trips OP_EQUALVERIFY.
  EXPECT_EQ(verify_script(s.tx.inputs[0].script_sig, s.spent, checker),
            ScriptError::EqualVerifyFailed);
}

TEST(Interpreter, P2pkhTamperedOutputFails) {
  Spend s;
  s.sign();
  s.tx.outputs[0].value += 1;
  TransactionSignatureChecker checker(s.tx, 0);
  EXPECT_EQ(verify_script(s.tx.inputs[0].script_sig, s.spent, checker),
            ScriptError::EvalFalse);
}

TEST(Interpreter, P2pkEndToEnd) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("p2pk")));
  Script spent = make_p2pk(key.pubkey().serialize_compressed());
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});
  // P2PK scriptSig is just the signature push.
  Hash256 digest = signature_hash(tx, 0, spent, SigHashType::All);
  Bytes sig = ecdsa_sign(key, digest).der();
  sig.push_back(0x01);
  Script script_sig;
  script_sig.push(sig);
  tx.inputs[0].script_sig = script_sig;

  TransactionSignatureChecker checker(tx, 0);
  EXPECT_EQ(verify_script(script_sig, spent, checker), ScriptError::Ok);
}

TEST(Interpreter, BareMultisig2of3) {
  std::vector<PrivateKey> keys;
  std::vector<Bytes> pubkeys;
  for (int i = 0; i < 3; ++i) {
    keys.push_back(
        PrivateKey::from_seed(to_bytes("ms" + std::to_string(i))));
    pubkeys.push_back(keys.back().pubkey().serialize_compressed());
  }
  Script spent = make_multisig(2, pubkeys);

  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});

  Hash256 digest = signature_hash(tx, 0, spent, SigHashType::All);
  auto der_sig = [&](const PrivateKey& k) {
    Bytes s = ecdsa_sign(k, digest).der();
    s.push_back(0x01);
    return s;
  };

  // Signatures in key order (0 then 2): valid.
  Script good;
  good.push(ByteView{});  // the CHECKMULTISIG dummy
  good.push(der_sig(keys[0]));
  good.push(der_sig(keys[2]));
  tx.inputs[0].script_sig = good;
  TransactionSignatureChecker checker(tx, 0);
  EXPECT_EQ(verify_script(good, spent, checker), ScriptError::Ok);

  // Out of order (2 then 0): rejected, matching Bitcoin's rule.
  Script bad_order;
  bad_order.push(ByteView{});
  bad_order.push(der_sig(keys[2]));
  bad_order.push(der_sig(keys[0]));
  EXPECT_EQ(verify_script(bad_order, spent, checker), ScriptError::EvalFalse);

  // Only one signature: rejected.
  Script too_few;
  too_few.push(ByteView{});
  too_few.push(der_sig(keys[1]));
  EXPECT_EQ(verify_script(too_few, spent, checker),
            ScriptError::StackUnderflow);
}

TEST(Interpreter, P2shWrappedChecksig) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("p2sh")));
  // Redeem script: <pubkey> OP_CHECKSIG.
  Script redeem = make_p2pk(key.pubkey().serialize_compressed());
  Script spent = make_p2sh(hash160(redeem.view()));

  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});

  Hash256 digest = signature_hash(tx, 0, redeem, SigHashType::All);
  Bytes sig = ecdsa_sign(key, digest).der();
  sig.push_back(0x01);
  Script script_sig;
  script_sig.push(sig).push(redeem.view());
  tx.inputs[0].script_sig = script_sig;

  TransactionSignatureChecker checker(tx, 0);
  EXPECT_EQ(verify_script(script_sig, spent, checker), ScriptError::Ok);

  // Wrong redeem script (hash mismatch) fails at OP_EQUAL.
  Script other_redeem = make_p2pk(Bytes(33, 0x02));
  Script bad_sig;
  bad_sig.push(sig).push(other_redeem.view());
  EXPECT_EQ(verify_script(bad_sig, spent, checker), ScriptError::EvalFalse);
}

TEST(Interpreter, ScriptSigMustBePushOnly) {
  Spend s;
  Script evil;
  evil.op(Opcode::OP_DUP);
  NullSignatureChecker nothing;
  EXPECT_EQ(verify_script(evil, s.spent, nothing),
            ScriptError::SigPushOnly);
}

TEST(Interpreter, OpReturnUnspendable) {
  Script nulldata = make_nulldata(to_bytes(std::string("data")));
  Script empty_sig;
  NullSignatureChecker nothing;
  EXPECT_EQ(verify_script(empty_sig, nulldata, nothing),
            ScriptError::OpReturn);
}

TEST(Interpreter, HashOpcodes) {
  // <preimage> OP_SHA256 <digest> OP_EQUAL evaluates true.
  Bytes preimage = to_bytes(std::string("hashlock"));
  auto digest = sha256(preimage);
  Script pubkey;
  pubkey.op(Opcode::OP_SHA256).push(ByteView(digest)).op(Opcode::OP_EQUAL);
  Script sig;
  sig.push(preimage);
  NullSignatureChecker nothing;
  EXPECT_EQ(verify_script(sig, pubkey, nothing), ScriptError::Ok);

  // Wrong preimage evaluates false.
  Script wrong;
  wrong.push(to_bytes(std::string("nope")));
  EXPECT_EQ(verify_script(wrong, pubkey, nothing), ScriptError::EvalFalse);
}

TEST(Interpreter, StackUnderflowDetected) {
  Script pubkey;
  pubkey.op(Opcode::OP_DUP);
  Script empty_sig;
  NullSignatureChecker nothing;
  EXPECT_EQ(verify_script(empty_sig, pubkey, nothing),
            ScriptError::StackUnderflow);
}

TEST(Interpreter, UnknownOpcodeRejected) {
  Script pubkey(Bytes{0xb1});  // OP_NOP2/CLTV — outside the repertoire
  Script sig;
  sig.push(Bytes{1});
  NullSignatureChecker nothing;
  EXPECT_EQ(verify_script(sig, pubkey, nothing), ScriptError::BadOpcode);
}

TEST(Interpreter, MalformedScriptRejected) {
  Script truncated(Bytes{10, 1, 2});
  NullSignatureChecker nothing;
  std::vector<Bytes> stack;
  EXPECT_EQ(eval_script(stack, truncated, nothing),
            ScriptError::MalformedScript);
}

TEST(Interpreter, ErrorNames) {
  EXPECT_STREQ(script_error_name(ScriptError::Ok), "ok");
  EXPECT_STREQ(script_error_name(ScriptError::EvalFalse), "eval-false");
}

TEST(Interpreter, FullyVerifiedRealKeyWorld) {
  // The capstone: a world minted with genuine secp256k1 keys connects
  // every block under full script verification.
  sim::WorldConfig cfg;
  cfg.days = 8;
  cfg.users = 16;
  cfg.blocks_per_day = 4;
  cfg.coinbase_maturity = 4;
  cfg.key_mode = sim::KeyMode::Real;
  cfg.verify_scripts = true;
  cfg.enable_probe = false;
  cfg.seed = 77;
  sim::World world(cfg);
  EXPECT_NO_THROW(world.run());
  EXPECT_GT(world.tx_count(), 10u);
}

TEST(Interpreter, FastKeysFailFullVerification) {
  // Placeholder signatures must be rejected by the interpreter — this
  // is what makes KeyMode::Real meaningful.
  sim::WorldConfig cfg;
  cfg.days = 8;
  cfg.users = 16;
  cfg.blocks_per_day = 4;
  cfg.coinbase_maturity = 4;
  cfg.key_mode = sim::KeyMode::Fast;
  cfg.verify_scripts = true;
  cfg.enable_probe = false;
  cfg.seed = 77;
  sim::World world(cfg);
  EXPECT_THROW(world.run(), ValidationError);
}

}  // namespace
}  // namespace fist
