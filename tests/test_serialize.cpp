#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {
namespace {

TEST(Writer, LittleEndianIntegers) {
  Writer w;
  w.u8(0x01);
  w.u16le(0x0203);
  w.u32le(0x04050607);
  w.u64le(0x08090a0b0c0d0e0fULL);
  EXPECT_EQ(to_hex(w.view()), "010302070605040f0e0d0c0b0a0908");
}

TEST(Writer, SignedIntegers) {
  Writer w;
  w.i32le(-1);
  w.i64le(-2);
  EXPECT_EQ(to_hex(w.view()), "fffffffffeffffffffffffff");
}

TEST(Writer, VarIntBoundaries) {
  auto enc = [](std::uint64_t v) {
    Writer w;
    w.varint(v);
    return to_hex(w.view());
  };
  EXPECT_EQ(enc(0), "00");
  EXPECT_EQ(enc(0xfc), "fc");
  EXPECT_EQ(enc(0xfd), "fdfd00");
  EXPECT_EQ(enc(0xffff), "fdffff");
  EXPECT_EQ(enc(0x10000), "fe00000100");
  EXPECT_EQ(enc(0xffffffffULL), "feffffffff");
  EXPECT_EQ(enc(0x100000000ULL), "ff0000000001000000");
}

TEST(Reader, ReadsBackIntegers) {
  Writer w;
  w.u8(7);
  w.u16le(300);
  w.u32le(70000);
  w.u64le(1ULL << 40);
  w.i64le(-99);
  Reader r(w.view());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16le(), 300);
  EXPECT_EQ(r.u32le(), 70000u);
  EXPECT_EQ(r.u64le(), 1ULL << 40);
  EXPECT_EQ(r.i64le(), -99);
  EXPECT_TRUE(r.empty());
}

TEST(Reader, ThrowsOnTruncation) {
  Bytes two{0x01, 0x02};
  Reader r(two);
  EXPECT_THROW(r.u32le(), ParseError);
}

TEST(Reader, RejectsNonCanonicalVarint) {
  // 0xfd with a value < 0xfd should have been a single byte.
  Bytes bad = from_hex("fd0100");
  Reader r(bad);
  EXPECT_THROW(r.varint(), ParseError);

  Bytes bad2 = from_hex("fe00010000");  // fits in fd form
  Reader r2(bad2);
  EXPECT_THROW(r2.varint(), ParseError);

  Bytes bad3 = from_hex("ff00000001" "00000000");  // fits in fe form
  Reader r3(bad3);
  EXPECT_THROW(r3.varint(), ParseError);
}

TEST(Reader, VarBytesRoundTrip) {
  Writer w;
  Bytes payload{1, 2, 3, 4, 5};
  w.var_bytes(payload);
  Reader r(w.view());
  EXPECT_EQ(r.var_bytes(), payload);
  r.expect_eof();
}

TEST(Reader, VarBytesRespectsLimit) {
  Writer w;
  w.varint(1000);
  Bytes frame = w.take();
  frame.resize(frame.size() + 1000, 0xaa);
  Reader r(frame);
  EXPECT_THROW(r.var_bytes(/*max=*/999), ParseError);
}

TEST(Reader, VarStringRoundTrip) {
  Writer w;
  w.var_string("men with no names");
  Reader r(w.view());
  EXPECT_EQ(r.var_string(), "men with no names");
}

TEST(Reader, ExpectEofThrowsOnTrailing) {
  Bytes b{1, 2};
  Reader r(b);
  r.u8();
  EXPECT_THROW(r.expect_eof(), ParseError);
}

class VarIntRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarIntRoundTrip, Identity) {
  Writer w;
  w.varint(GetParam());
  Reader r(w.view());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarIntRoundTrip,
    ::testing::Values(0ULL, 1ULL, 0xfcULL, 0xfdULL, 0xfeULL, 0xffULL,
                      0x100ULL, 0xfffeULL, 0xffffULL, 0x10000ULL,
                      0xffffffffULL, 0x100000000ULL, 0x123456789abcdefULL,
                      0xffffffffffffffffULL));

}  // namespace
}  // namespace fist
