#include "analysis/graph.hpp"

#include <gtest/gtest.h>

#include "cluster/heuristic1.hpp"
#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

struct GraphFixture {
  ChainView view;
  std::unique_ptr<Clustering> clustering;
  UserGraph graph;

  GraphFixture() {
    TestChain chain;
    auto a = chain.coinbase(1, btc(100));
    auto b = chain.coinbase(2, btc(50));
    chain.next_block();
    // User {1,2} (merged by H1) pays 30 to addr 5, change 60 to addr 1
    // (self-flow, excluded from the condensed graph).
    chain.spend({a, b}, {{5, btc(30)}, {1, btc(119)}});
    chain.next_block();
    // And pays addr 6 twice.
    auto c = chain.coinbase(1, btc(10));
    chain.next_block();
    chain.spend({c}, {{6, btc(4)}, {1, btc(5)}});
    auto d = chain.coinbase(1, btc(10));
    chain.next_block();
    chain.spend({d}, {{6, btc(9)}});
    view = chain.view();

    UnionFind uf = heuristic1(view);
    clustering =
        std::make_unique<Clustering>(Clustering::from_union_find(uf));
    graph = UserGraph::build(view, *clustering);
  }

  ClusterId cluster(std::uint32_t i) {
    return clustering->cluster_of(*view.addresses().find(test::addr(i)));
  }
};

TEST(UserGraph, AggregatesParallelPayments) {
  GraphFixture f;
  ClusterId from = f.cluster(1);
  ClusterId to6 = f.cluster(6);
  auto edges = f.graph.out_edges(from);
  const ClusterEdge* e6 = nullptr;
  for (const auto& e : edges)
    if (e.to == to6) e6 = &e;
  ASSERT_NE(e6, nullptr);
  EXPECT_EQ(e6->value, btc(13));
  EXPECT_EQ(e6->tx_count, 2u);
}

TEST(UserGraph, ExcludesSelfFlows) {
  GraphFixture f;
  ClusterId from = f.cluster(1);
  for (const auto& e : f.graph.out_edges(from)) EXPECT_NE(e.to, from);
}

TEST(UserGraph, TotalsSentReceived) {
  GraphFixture f;
  ClusterId user = f.cluster(1);
  EXPECT_EQ(f.graph.total_sent(user), btc(30) + btc(13));
  EXPECT_EQ(f.graph.total_received(f.cluster(5)), btc(30));
  EXPECT_EQ(f.graph.total_received(f.cluster(6)), btc(13));
  EXPECT_EQ(f.graph.total_sent(f.cluster(5)), 0);
}

TEST(UserGraph, TopFlowsSorted) {
  GraphFixture f;
  auto top = f.graph.top_flows(10);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].value, top[i].value);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].value, btc(30));
  auto top1 = f.graph.top_flows(1);
  EXPECT_EQ(top1.size(), 1u);
}

TEST(UserGraph, CoinbasesCreateNoEdges) {
  TestChain chain;
  chain.coinbase(1, btc(50));
  chain.coinbase(2, btc(50));
  ChainView view = chain.view();
  UnionFind uf = heuristic1(view);
  Clustering clustering = Clustering::from_union_find(uf);
  UserGraph graph = UserGraph::build(view, clustering);
  EXPECT_EQ(graph.edge_count(), 0u);
}


TEST(CategoryFlowShares, RanksNamedSinks) {
  GraphFixture f;
  TagStore tags;
  tags.add(*f.view.addresses().find(test::addr(5)),
           Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed});
  tags.add(*f.view.addresses().find(test::addr(6)),
           Tag{"Satoshi Dice", Category::Gambling, TagSource::Observed});
  ClusterNaming naming(f.clustering->assignment(), f.clustering->sizes(),
                       tags);
  auto shares = category_flow_shares(f.graph, naming);
  ASSERT_EQ(shares.size(), 2u);
  // Exchange inflow (30) > gambling inflow (13); shares are of the
  // total inter-cluster flow (43).
  EXPECT_EQ(shares[0].category, Category::BankExchange);
  EXPECT_EQ(shares[0].received, btc(30));
  EXPECT_EQ(shares[1].received, btc(13));
  EXPECT_NEAR(shares[0].share, 30.0 / 43.0, 1e-9);
  EXPECT_NEAR(shares[0].share + shares[1].share, 1.0, 1e-9);
}

TEST(CategoryFlowShares, EmptyWithoutTags) {
  GraphFixture f;
  TagStore tags;
  ClusterNaming naming(f.clustering->assignment(), f.clustering->sizes(),
                       tags);
  EXPECT_TRUE(category_flow_shares(f.graph, naming).empty());
}

}  // namespace
}  // namespace fist
