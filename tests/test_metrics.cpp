#include "cluster/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace fist {
namespace {

TEST(Metrics, PerfectClustering) {
  std::vector<std::uint32_t> pred{0, 0, 1, 1, 2};
  std::vector<std::uint32_t> truth{7, 7, 8, 8, 9};
  PairwiseScores s = pairwise_scores(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
  EXPECT_EQ(s.predicted_pairs, 2u);
  EXPECT_EQ(s.true_pairs, 2u);
}

TEST(Metrics, OverMergedLowersPrecision) {
  // Everything in one predicted cluster; truth has two owners of 2.
  std::vector<std::uint32_t> pred{0, 0, 0, 0};
  std::vector<std::uint32_t> truth{1, 1, 2, 2};
  PairwiseScores s = pairwise_scores(pred, truth);
  EXPECT_EQ(s.predicted_pairs, 6u);
  EXPECT_EQ(s.agreeing_pairs, 2u);
  EXPECT_DOUBLE_EQ(s.precision, 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
}

TEST(Metrics, UnderMergedLowersRecall) {
  std::vector<std::uint32_t> pred{0, 1, 2, 3};
  std::vector<std::uint32_t> truth{1, 1, 2, 2};
  PairwiseScores s = pairwise_scores(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);  // vacuous: no predicted pairs
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
}

TEST(Metrics, MixedCase) {
  // pred: {0,1,2} together, {3} alone; truth: {0,1} and {2,3}.
  std::vector<std::uint32_t> pred{0, 0, 0, 1};
  std::vector<std::uint32_t> truth{5, 5, 6, 6};
  PairwiseScores s = pairwise_scores(pred, truth);
  EXPECT_EQ(s.predicted_pairs, 3u);
  EXPECT_EQ(s.true_pairs, 2u);
  EXPECT_EQ(s.agreeing_pairs, 1u);
  EXPECT_DOUBLE_EQ(s.precision, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_NEAR(s.f1(), 2 * (1.0 / 3) * 0.5 / (1.0 / 3 + 0.5), 1e-12);
}

TEST(Metrics, UnknownOwnersExcluded) {
  std::vector<std::uint32_t> pred{0, 0, 0};
  std::vector<std::uint32_t> truth{1, 1, kUnknownOwner};
  PairwiseScores s = pairwise_scores(pred, truth);
  EXPECT_EQ(s.predicted_pairs, 1u);  // only the two known-owner items
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
}

TEST(Metrics, SizeMismatchThrows) {
  std::vector<std::uint32_t> pred{0};
  std::vector<std::uint32_t> truth{1, 2};
  EXPECT_THROW(pairwise_scores(pred, truth), UsageError);
}

TEST(Metrics, EmptyInput) {
  std::vector<std::uint32_t> empty;
  PairwiseScores s = pairwise_scores(empty, empty);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
}

}  // namespace
}  // namespace fist
