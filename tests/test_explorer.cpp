#include "analysis/explorer.hpp"

#include <gtest/gtest.h>

#include "cluster/heuristic1.hpp"
#include "testutil.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

using test::TestChain;

// A small economy: user {1,2} mines and pays service 5 ("Mt. Gox")
// twice; the service pays 7 once.
struct ExplorerFixture {
  ChainView view;
  std::unique_ptr<Clustering> clustering;
  std::unique_ptr<ClusterNaming> naming;
  std::unique_ptr<Explorer> explorer;

  ExplorerFixture() {
    TestChain chain{kGenesisTime, kDay};
    auto a = chain.coinbase(1, btc(60));
    auto b = chain.coinbase(2, btc(40));
    chain.next_block();
    // {1,2} merge via co-spend, pay 30 to 5, change 69 to addr 1.
    auto pay1 = chain.spend_all({a, b}, {{5, btc(30)}, {1, btc(69)}});
    chain.next_block();
    // Second payment to the service.
    chain.spend_all({pay1[1]}, {{5, btc(10)}, {1, btc(58)}});
    chain.next_block();
    // The service spends 20 to address 7.
    chain.spend_all({pay1[0]}, {{7, btc(20)}, {5, btc(9)}});
    chain.next_block();
    view = chain.view();

    UnionFind uf = heuristic1(view);
    clustering =
        std::make_unique<Clustering>(Clustering::from_union_find(uf));
    TagStore tags;
    tags.add(*view.addresses().find(test::addr(5)),
             Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed});
    naming = std::make_unique<ClusterNaming>(clustering->assignment(),
                                             clustering->sizes(), tags);
    explorer = std::make_unique<Explorer>(view, *clustering, *naming);
  }

  ClusterId cluster(std::uint32_t i) {
    return clustering->cluster_of(*view.addresses().find(test::addr(i)));
  }
};

TEST(Explorer, FindServiceByName) {
  ExplorerFixture f;
  auto gox = f.explorer->find_service("Mt. Gox");
  ASSERT_TRUE(gox.has_value());
  EXPECT_EQ(*gox, f.cluster(5));
  EXPECT_FALSE(f.explorer->find_service("Nobody").has_value());
}

TEST(Explorer, Labels) {
  ExplorerFixture f;
  EXPECT_EQ(f.explorer->label(f.cluster(5)), "Mt. Gox");
  EXPECT_EQ(f.explorer->label(f.cluster(7)),
            "user#" + std::to_string(f.cluster(7)));
}

TEST(Explorer, ServiceProfileAccounting) {
  ExplorerFixture f;
  EntityProfile p = f.explorer->profile(f.cluster(5));
  EXPECT_TRUE(p.named);
  EXPECT_EQ(p.service, "Mt. Gox");
  EXPECT_EQ(p.category, Category::BankExchange);
  // Received: 30 + 10 external inflow.
  EXPECT_EQ(p.received, btc(40));
  // Sent: 20 external (the 9 self-change is internal).
  EXPECT_EQ(p.sent, btc(20));
  // Balance: 40 in − 20 out − 1 fee = 19.
  EXPECT_EQ(p.balance, btc(19));
  EXPECT_EQ(p.tx_count, 3u);
  EXPECT_GT(p.last_seen, p.first_seen);
}

TEST(Explorer, ProfileCounterparties) {
  ExplorerFixture f;
  EntityProfile p = f.explorer->profile(f.cluster(5));
  ASSERT_EQ(p.top_sources.size(), 1u);
  EXPECT_EQ(p.top_sources[0].first, f.cluster(1));
  EXPECT_EQ(p.top_sources[0].second, btc(40));
  ASSERT_EQ(p.top_destinations.size(), 1u);
  EXPECT_EQ(p.top_destinations[0].first, f.cluster(7));
  EXPECT_EQ(p.top_destinations[0].second, btc(20));
}

TEST(Explorer, UserProfileIncludesMiningIncome) {
  ExplorerFixture f;
  EntityProfile p = f.explorer->profile(f.cluster(1));
  // Coinbase income counts as received.
  EXPECT_EQ(p.received, btc(100));
  EXPECT_EQ(p.sent, btc(40));  // 30 + 10 external payments
  EXPECT_FALSE(p.named);
}

TEST(Explorer, ProfileRejectsUnknownCluster) {
  ExplorerFixture f;
  EXPECT_THROW(f.explorer->profile(999'999), UsageError);
}

TEST(Explorer, AddressHistoryAndBalance) {
  ExplorerFixture f;
  AddrId a1 = *f.view.addresses().find(test::addr(1));
  std::vector<AddressEvent> history = f.explorer->address_history(a1);
  // Events: +60 coinbase, −60+69 spend (net +9), −69+58 (net −11).
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].delta, btc(60));
  EXPECT_EQ(history[1].delta, btc(9));
  EXPECT_EQ(history[2].delta, -btc(11));
  EXPECT_EQ(f.explorer->address_balance(a1), btc(58));
  // Times ascend.
  EXPECT_LT(history[0].time, history[2].time);

  EXPECT_TRUE(f.explorer->address_history(kNoAddr).empty());
  EXPECT_EQ(f.explorer->address_balance(kNoAddr), 0);
}

TEST(Explorer, MismatchedClusteringRejected) {
  ExplorerFixture f;
  UnionFind tiny(1);
  Clustering wrong = Clustering::from_union_find(tiny);
  TagStore tags;
  ClusterNaming naming(wrong.assignment(), wrong.sizes(), tags);
  EXPECT_THROW(Explorer(f.view, wrong, naming), UsageError);
}

}  // namespace
}  // namespace fist
