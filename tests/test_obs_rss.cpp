// test_obs_rss.cpp — VmHWM parsing against malformed status documents.
// The live /proc/self/status read is covered indirectly by the bench
// report tests; here the parser faces the hostile inputs a weird
// kernel, container, or truncated read could produce.
#include <gtest/gtest.h>

#include <string>

#include "core/obs/rss.hpp"

namespace fist {
namespace {

TEST(ObsRss, ParsesWellFormedStatus) {
  EXPECT_EQ(obs::parse_vm_hwm_bytes("Name:\tfistctl\n"
                                    "VmPeak:\t  999999 kB\n"
                                    "VmHWM:\t   12345 kB\n"
                                    "VmRSS:\t    1111 kB\n"),
            12345ull * 1024);
}

TEST(ObsRss, RowAtDocumentStart) {
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:\t8 kB\n"), 8ull * 1024);
}

TEST(ObsRss, MissingRowIsZero) {
  EXPECT_EQ(obs::parse_vm_hwm_bytes(""), 0u);
  EXPECT_EQ(obs::parse_vm_hwm_bytes("Name:\tfistctl\nVmRSS:\t5 kB\n"), 0u);
}

TEST(ObsRss, RowMustStartALine) {
  // "XVmHWM:" mid-line must not match; neither may the token embedded
  // in another field's value.
  EXPECT_EQ(obs::parse_vm_hwm_bytes("XVmHWM:\t5 kB\n"), 0u);
  EXPECT_EQ(obs::parse_vm_hwm_bytes("Note: VmHWM: 5 kB\n"), 0u);
  EXPECT_EQ(obs::parse_vm_hwm_bytes("Junk\nVmHWM:\t5 kB\n"), 5ull * 1024);
}

TEST(ObsRss, NonNumericValueIsZero) {
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:\tlots kB\n"), 0u);
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:\t-5 kB\n"), 0u);
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:\t\n"), 0u);
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:"), 0u);
}

TEST(ObsRss, TruncatedLineStillParses) {
  // A read cut off right after the digits (no " kB", no newline) is
  // still a number.
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:\t77"), 77ull * 1024);
}

TEST(ObsRss, OverflowIsZero) {
  // 2^64 kB overflows the byte conversion; a nonsense huge value must
  // read as unknown, not wrap around to a small number.
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:\t18446744073709551616 kB\n"), 0u);
  EXPECT_EQ(obs::parse_vm_hwm_bytes("VmHWM:\t99999999999999999999999 kB\n"),
            0u);
}

TEST(ObsRss, PeakRssNeverThrows) {
  // Whatever the host, the sampler returns a value (possibly 0) rather
  // than raising.
  (void)obs::peak_rss_bytes();
  (void)obs::sample_peak_rss();
}

}  // namespace
}  // namespace fist
