#include "sim/keyfactory.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "crypto/hash.hpp"

namespace fist::sim {
namespace {

TEST(KeyFactory, FastModeMintsValidAddresses) {
  KeyFactory factory(KeyMode::Fast, Rng(1));
  MintedKey k = factory.mint();
  EXPECT_EQ(k.pubkey.size(), 33u);
  EXPECT_TRUE(k.pubkey[0] == 0x02 || k.pubkey[0] == 0x03);
  EXPECT_FALSE(k.privkey.has_value());
  // The address is the genuine HASH160 of the pubkey bytes.
  EXPECT_EQ(k.address.payload(), hash160(k.pubkey));
  EXPECT_EQ(k.address.encode()[0], '1');
}

TEST(KeyFactory, RealModeMintsSignableKeys) {
  KeyFactory factory(KeyMode::Real, Rng(2));
  MintedKey k = factory.mint();
  ASSERT_TRUE(k.privkey.has_value());
  EXPECT_EQ(k.pubkey, k.privkey->pubkey().serialize_compressed());
  EXPECT_EQ(k.address.payload(), hash160(k.pubkey));
}

TEST(KeyFactory, DeterministicPerSeed) {
  KeyFactory a(KeyMode::Fast, Rng(7)), b(KeyMode::Fast, Rng(7));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(a.mint().address, b.mint().address);
}

TEST(KeyFactory, AddressesAreDistinct) {
  KeyFactory factory(KeyMode::Fast, Rng(3));
  std::unordered_set<Address> seen;
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(seen.insert(factory.mint().address).second);
  EXPECT_EQ(factory.minted(), 1000u);
}

TEST(KeyFactory, RealAndFastDiffer) {
  KeyFactory fast(KeyMode::Fast, Rng(5));
  KeyFactory real(KeyMode::Real, Rng(5));
  EXPECT_NE(fast.mint().address, real.mint().address);
}

}  // namespace
}  // namespace fist::sim
