#include "tag/feedio.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "crypto/hash.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

Address addr(int i) {
  return Address(AddrType::P2PKH, hash160(to_bytes(std::to_string(i))));
}

std::vector<TagEntry> sample_feed() {
  return {
      {addr(1), Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed}},
      {addr(2), Tag{"Sealed, \"The\" Club", Category::Gambling,
                    TagSource::Scraped}},
      {addr(3),
       Tag{"Wikileaks", Category::Misc, TagSource::SelfAdvertised}},
  };
}

TEST(FeedIo, RoundTrip) {
  std::stringstream ss;
  write_tag_feed(ss, sample_feed());
  std::vector<TagEntry> back = read_tag_feed(ss);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].address, addr(1));
  EXPECT_EQ(back[0].tag.service, "Mt. Gox");
  EXPECT_EQ(back[0].tag.category, Category::BankExchange);
  EXPECT_EQ(back[0].tag.source, TagSource::Observed);
  // Quoted field with comma and escaped quotes survives.
  EXPECT_EQ(back[1].tag.service, "Sealed, \"The\" Club");
  EXPECT_EQ(back[2].tag.source, TagSource::SelfAdvertised);
}

TEST(FeedIo, HeaderIsOptionalOnRead) {
  std::stringstream ss;
  ss << addr(1).encode() << ",SomeService,mining,observed\n";
  std::vector<TagEntry> feed = read_tag_feed(ss);
  ASSERT_EQ(feed.size(), 1u);
  EXPECT_EQ(feed[0].tag.category, Category::Mining);
}

TEST(FeedIo, SkipsBlankLinesAndCrLf) {
  std::stringstream ss;
  ss << "address,service,category,source\r\n\n"
     << addr(1).encode() << ",X,vendors,scraped\r\n";
  std::vector<TagEntry> feed = read_tag_feed(ss);
  ASSERT_EQ(feed.size(), 1u);
  EXPECT_EQ(feed[0].tag.service, "X");
}

TEST(FeedIo, RejectsBadAddress) {
  std::stringstream ss;
  ss << "not-an-address,X,mining,observed\n";
  EXPECT_THROW(read_tag_feed(ss), ParseError);
}

TEST(FeedIo, RejectsUnknownCategory) {
  std::stringstream ss;
  ss << addr(1).encode() << ",X,nonsense,observed\n";
  EXPECT_THROW(read_tag_feed(ss), ParseError);
}

TEST(FeedIo, RejectsUnknownSource) {
  std::stringstream ss;
  ss << addr(1).encode() << ",X,mining,hearsay\n";
  EXPECT_THROW(read_tag_feed(ss), ParseError);
}

TEST(FeedIo, RejectsWrongFieldCount) {
  std::stringstream ss;
  ss << addr(1).encode() << ",X,mining\n";
  EXPECT_THROW(read_tag_feed(ss), ParseError);
}

TEST(FeedIo, RejectsUnterminatedQuote) {
  std::stringstream ss;
  ss << addr(1).encode() << ",\"broken,mining,observed\n";
  EXPECT_THROW(read_tag_feed(ss), ParseError);
}

TEST(FeedIo, ErrorsCarryLineNumbers) {
  std::stringstream ss;
  ss << "address,service,category,source\n"
     << addr(1).encode() << ",Ok,mining,observed\n"
     << "bogus,Y,mining,observed\n";
  try {
    read_tag_feed(ss);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace fist
