#include "testutil.hpp"

#include "crypto/hash.hpp"
#include "util/serialize.hpp"

namespace fist::test {

Address addr(std::uint32_t i) {
  Writer w;
  w.var_string("test-address");
  w.u32le(i);
  return Address(AddrType::P2PKH, hash160(w.view()));
}

void TestChain::open_block() {
  current_ = Block();
  current_.header.version = 1;
  current_.header.prev_hash =
      blocks_.empty() ? Hash256{} : blocks_.back().header.hash();
  current_.header.time = static_cast<std::uint32_t>(time_);
  current_.header.bits = 0x207fffff;
  open_ = true;
}

void TestChain::close_block() {
  if (!open_) return;
  // Every block needs at least one tx for a merkle root; add a dummy
  // coinbase if empty.
  if (current_.transactions.empty()) coinbase(0xfffffffe, 1);
  current_.fix_merkle_root();
  blocks_.push_back(current_);
  open_ = false;
}

CoinRef TestChain::coinbase(std::uint32_t to, Amount value) {
  Transaction tx;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  Script sig;
  Writer w;
  w.u64le(coinbase_seq_++);
  sig.push(w.view());
  in.script_sig = sig;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{value, make_script_for(addr(to))});
  Hash256 txid = tx.txid();
  current_.transactions.push_back(std::move(tx));
  return CoinRef{txid, 0};
}

std::vector<CoinRef> TestChain::spend_all(
    const std::vector<CoinRef>& inputs,
    const std::vector<std::pair<std::uint32_t, Amount>>& outputs) {
  Transaction tx;
  for (const CoinRef& c : inputs) {
    TxIn in;
    in.prevout = OutPoint{c.txid, c.index};
    tx.inputs.push_back(in);
  }
  for (const auto& [a, v] : outputs)
    tx.outputs.push_back(TxOut{v, make_script_for(addr(a))});
  Hash256 txid = tx.txid();
  current_.transactions.push_back(std::move(tx));
  std::vector<CoinRef> refs;
  for (std::uint32_t i = 0; i < outputs.size(); ++i)
    refs.push_back(CoinRef{txid, i});
  return refs;
}

CoinRef TestChain::spend(
    const std::vector<CoinRef>& inputs,
    const std::vector<std::pair<std::uint32_t, Amount>>& outputs) {
  return spend_all(inputs, outputs)[0];
}

void TestChain::next_block() {
  close_block();
  time_ += interval_;
  open_block();
}

const std::vector<Block>& TestChain::blocks() {
  close_block();
  return blocks_;
}

ChainView TestChain::view() { return ChainView::build(blocks()); }

}  // namespace fist::test
