// Direct unit tests of the service actors' on-chain behavior, driven
// against a small live world.
#include <gtest/gtest.h>

#include "chain/view.hpp"
#include "sim/hoard.hpp"
#include "sim/services.hpp"

namespace fist::sim {
namespace {

// A world paused early so tests can drive individual actors.
class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : world_(config()) {
    // Run the bootstrap era so services hold float and users have coins.
    for (int d = 0; d < 30; ++d) world_.run_day();
  }

  static WorldConfig config() {
    WorldConfig cfg;
    cfg.days = 60;
    cfg.users = 60;
    cfg.blocks_per_day = 8;
    cfg.coinbase_maturity = 16;
    cfg.seed = 11;
    cfg.enable_probe = false;
    return cfg;
  }

  template <typename T>
  T& service(const std::string& name) {
    Actor* actor = world_.find_actor(name);
    EXPECT_NE(actor, nullptr) << name;
    T* typed = dynamic_cast<T*>(actor);
    EXPECT_NE(typed, nullptr) << name;
    return *typed;
  }

  UserActor& some_user() {
    ActorId id = world_.random_user(world_.rng());
    return dynamic_cast<UserActor&>(world_.actor(id));
  }

  // Pays `value` from a user wallet to `to` and runs the submission.
  // Returns the payment's txid (null hash on failure).
  Hash256 user_pays(UserActor& user, const Address& to, Amount value) {
    PaymentSpec spec;
    spec.outputs.emplace_back(to, value);
    auto built =
        user.wallet().pay(spec, world_.height(), world_.maturity());
    if (!built) return Hash256{};
    world_.submit(user.id(), *built, user.wallet().policy().fee);
    return built->txid;
  }

  World world_;
};

TEST_F(ServiceTest, CustodialDepositCreditsAccount) {
  auto& gox = service<CustodialService>("Mt. Gox");
  UserActor& user = some_user();
  Address dep = gox.request_deposit_address(world_, user.id());
  Amount before = gox.account_balance(user.id());
  ASSERT_FALSE(user_pays(user, dep, btc(3)).is_null());
  EXPECT_EQ(gox.account_balance(user.id()), before + btc(3));
}

TEST_F(ServiceTest, CustodialStableDepositAddressPerCustomer) {
  auto& gox = service<CustodialService>("Mt. Gox");
  UserActor& user = some_user();
  Address a = gox.request_deposit_address(world_, user.id());
  Address b = gox.request_deposit_address(world_, user.id());
  EXPECT_EQ(a, b);  // Mt.Gox-style account address
  UserActor& other = some_user();
  if (other.id() != user.id()) {
    EXPECT_NE(gox.request_deposit_address(world_, other.id()), a);
  }
}

TEST_F(ServiceTest, WalletServiceFreshDepositPerRequest) {
  auto& wallet_svc = service<CustodialService>("Instawallet");
  UserActor& user = some_user();
  Address a = wallet_svc.request_deposit_address(world_, user.id());
  Address b = wallet_svc.request_deposit_address(world_, user.id());
  EXPECT_NE(a, b);  // Instawallet-style one-time deposit address
}

TEST_F(ServiceTest, WithdrawalRequiresBalance) {
  auto& gox = service<CustodialService>("Mt. Gox");
  UserActor& user = some_user();
  Address payout = user.wallet().fresh_address();
  EXPECT_FALSE(
      gox.request_withdrawal(world_, user.id(), btc(1'000'000), payout));

  Address dep = gox.request_deposit_address(world_, user.id());
  Amount account_before = gox.account_balance(user.id());
  ASSERT_FALSE(user_pays(user, dep, btc(4)).is_null());
  EXPECT_TRUE(gox.request_withdrawal(world_, user.id(), btc(2), payout));
  EXPECT_EQ(gox.account_balance(user.id()), account_before + btc(2));

  // The payout lands with the exchange's next processing runs (other
  // users' queued withdrawals may pay out too — ours must be included).
  Amount before = user.wallet().total_balance();
  gox.on_day(world_);
  gox.on_day(world_);
  EXPECT_GE(user.wallet().total_balance(), before + btc(2));
}

TEST_F(ServiceTest, SellCoinsKeepsReserve) {
  auto& gox = service<CustodialService>("Mt. Gox");
  UserActor& user = some_user();
  // An absurd purchase is refused: the float keeps its reserve.
  EXPECT_FALSE(gox.sell_coins(world_, user.wallet().fresh_address(),
                              btc(20'000'000)));
}

TEST_F(ServiceTest, DicePayoutReboundsToBettingAddress) {
  auto& dice = service<DiceGame>("Satoshi Dice");
  UserActor& user = some_user();
  Address bet_addr = dice.bet_address(world_);

  // The payout is produced synchronously inside submit (on_deposit);
  // mine the day's blocks, then check it on the chain.
  Hash256 bet_txid = user_pays(user, bet_addr, btc(1));
  ASSERT_FALSE(bet_txid.is_null());
  world_.run_day();
  ChainView view = ChainView::build(world_.store());
  TxIndex bet_tx = view.find_tx(bet_txid);
  ASSERT_NE(bet_tx, kNoTx);
  // The bettor's input address receives a later payment whose inputs
  // are dice-owned (the rebound).
  AddrId bettor = view.tx(bet_tx).inputs[0].addr;
  ASSERT_NE(bettor, kNoAddr);
  bool rebound = false;
  for (TxIndex t = bet_tx + 1; t < view.tx_count(); ++t)
    for (const OutputView& out : view.tx(t).outputs)
      if (out.addr == bettor) rebound = true;
  EXPECT_TRUE(rebound);
}

TEST_F(ServiceTest, EchoMixerReturnsTheExactCoins) {
  auto& laundry = service<MixerService>("Bitcoin Laundry");
  ASSERT_EQ(laundry.kind(), MixerKind::Echo);
  UserActor& user = some_user();
  Address back_to = user.wallet().fresh_address();
  Address dep = laundry.request_mix(world_, back_to);
  ASSERT_FALSE(user_pays(user, dep, btc(2)).is_null());

  // Let the mixer's delay elapse.
  for (int d = 0; d < 5; ++d) world_.run_day();

  // Find the deposit tx and check its output was spent into a tx
  // paying back_to — "twice sent us our own coins back".
  ChainView view = ChainView::build(world_.store());
  auto dep_id = view.addresses().find(dep);
  auto back_id = view.addresses().find(back_to);
  ASSERT_TRUE(dep_id && back_id);
  bool echoed = false;
  for (TxIndex t = 0; t < view.tx_count(); ++t) {
    const TxView& tx = view.tx(t);
    for (const OutputView& out : tx.outputs) {
      if (out.addr != *dep_id || out.spent_by == kNoTx) continue;
      const TxView& spender = view.tx(out.spent_by);
      for (const OutputView& sout : spender.outputs)
        if (sout.addr == *back_id) echoed = true;
    }
  }
  EXPECT_TRUE(echoed);
}

TEST_F(ServiceTest, ThievingMixerKeepsTheMoney) {
  auto& bitmix = service<MixerService>("BitMix");
  ASSERT_EQ(bitmix.kind(), MixerKind::Thieving);
  UserActor& user = some_user();
  Address back_to = user.wallet().fresh_address();
  Address dep = bitmix.request_mix(world_, back_to);
  ASSERT_FALSE(user_pays(user, dep, btc(2)).is_null());
  for (int d = 0; d < 6; ++d) world_.run_day();

  ChainView view = ChainView::build(world_.store());
  auto back_id = view.addresses().find(back_to);
  // The return address never receives anything.
  if (back_id) {
    for (TxIndex t = 0; t < view.tx_count(); ++t)
      for (const OutputView& out : view.tx(t).outputs)
        EXPECT_NE(out.addr, *back_id);
  }
}

TEST_F(ServiceTest, GatewaySettlesMerchants) {
  auto& bitpay = service<PaymentGateway>("BitPay");
  // Find a merchant using the gateway.
  VendorService* merchant = nullptr;
  for (ActorId v : world_.of_category(Category::Vendor)) {
    auto* vendor = dynamic_cast<VendorService*>(&world_.actor(v));
    if (vendor != nullptr && vendor->uses_gateway()) {
      merchant = vendor;
      break;
    }
  }
  ASSERT_NE(merchant, nullptr);

  UserActor& user = some_user();
  auto [invoice, owner] = merchant->request_invoice(world_, user.id());
  EXPECT_EQ(owner, bitpay.id());  // the invoice belongs to the gateway
  EXPECT_TRUE(bitpay.wallet().owns(invoice));

  Amount before = merchant->wallet().total_balance();
  ASSERT_FALSE(user_pays(user, invoice, btc(2)).is_null());
  bitpay.on_day(world_);  // settlement run
  EXPECT_GT(merchant->wallet().total_balance(), before);
}

TEST_F(ServiceTest, InvestmentSchemeAbscondsOnSchedule) {
  auto& bst = service<InvestmentScheme>("Bitcoin Savings & Trust");
  EXPECT_FALSE(bst.absconded());
  // Run past the abscond day (70% of the configured horizon).
  while (world_.day() < config().days * 7 / 10 + 2) world_.run_day();
  EXPECT_TRUE(bst.absconded());
  // After absconding, deposits no longer earn anything — the actor
  // ignores further days without crashing.
  bst.on_day(world_);
}

TEST_F(ServiceTest, MarketEscrowFeedsTheHoard) {
  auto& market = service<SilkRoadMarket>("Silk Road");
  UserActor& user = some_user();
  Address escrow = market.escrow_address(world_);
  EXPECT_TRUE(market.wallet().owns(escrow));
  ASSERT_FALSE(user_pays(user, escrow, btc(3)).is_null());
  // Weekly accumulation moves escrow coins toward the hoard wallet;
  // just assert the world keeps validating through several weeks.
  for (int d = 0; d < 15; ++d) world_.run_day();
  ASSERT_NE(world_.hoard(), nullptr);
}

}  // namespace
}  // namespace fist::sim
