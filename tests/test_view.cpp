#include "chain/view.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

using test::TestChain;

TEST(ChainView, EmptyStore) {
  MemoryBlockStore store;
  ChainView view = ChainView::build(store);
  EXPECT_EQ(view.tx_count(), 0u);
  EXPECT_EQ(view.address_count(), 0u);
}

TEST(ChainView, ResolvesInputAddressesAndValues) {
  TestChain chain;
  auto cb = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({cb}, {{2, btc(30)}, {3, btc(20)}});
  ChainView view = chain.view();

  ASSERT_EQ(view.tx_count(), 2u);  // coinbase + spend
  const TxView& spend_tx = view.tx(1);
  ASSERT_EQ(spend_tx.inputs.size(), 1u);
  EXPECT_EQ(spend_tx.inputs[0].value, btc(50));
  EXPECT_EQ(view.addresses().lookup(spend_tx.inputs[0].addr), test::addr(1));
  EXPECT_EQ(spend_tx.outputs.size(), 2u);
  EXPECT_EQ(spend_tx.outputs[0].value, btc(30));
}

TEST(ChainView, SpendLinksAreSet) {
  TestChain chain;
  auto cb = chain.coinbase(1, btc(50));
  chain.next_block();
  auto mid = chain.spend({cb}, {{2, btc(49)}});
  chain.next_block();
  chain.spend({mid}, {{3, btc(48)}});
  ChainView view = chain.view();

  TxIndex cb_index = view.find_tx(cb.txid);
  ASSERT_NE(cb_index, kNoTx);
  const TxView& cb_tx = view.tx(cb_index);
  TxIndex spender1 = cb_tx.outputs[0].spent_by;
  ASSERT_NE(spender1, kNoTx);
  const TxView& mid_tx = view.tx(spender1);
  EXPECT_EQ(mid_tx.txid, mid.txid);
  TxIndex spender2 = mid_tx.outputs[0].spent_by;
  ASSERT_NE(spender2, kNoTx);
  EXPECT_EQ(view.tx(spender2).outputs[0].spent_by, kNoTx);  // unspent end
}

TEST(ChainView, CoinbaseFlagAndTimes) {
  TestChain chain(kGenesisTime, kHour);
  chain.coinbase(1, btc(50));
  chain.next_block();
  chain.coinbase(2, btc(50));
  ChainView view = chain.view();
  EXPECT_TRUE(view.tx(0).coinbase);
  EXPECT_EQ(view.tx(0).height, 0);
  EXPECT_EQ(view.tx(1).height, 1);
  EXPECT_EQ(view.tx(1).time - view.tx(0).time, kHour);
}

TEST(ChainView, FirstSeenTracksEarliestAppearance) {
  TestChain chain;
  auto cb = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({cb}, {{2, btc(25)}, {1, btc(25)}});  // addr 1 reappears
  ChainView view = chain.view();

  AddrId a1 = *view.addresses().find(test::addr(1));
  AddrId a2 = *view.addresses().find(test::addr(2));
  EXPECT_EQ(view.first_seen(a1), view.find_tx(cb.txid));
  EXPECT_EQ(view.first_seen(a2), 1u);
  EXPECT_EQ(view.first_seen(kNoAddr), kNoTx);
}

TEST(ChainView, FeeComputation) {
  TestChain chain;
  auto cb = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({cb}, {{2, btc(49)}});
  ChainView view = chain.view();
  const TxView& spend_tx = view.tx(1);
  EXPECT_EQ(spend_tx.value_in(), btc(50));
  EXPECT_EQ(spend_tx.value_out(), btc(49));
  EXPECT_EQ(spend_tx.fee(), btc(1));
  EXPECT_EQ(view.tx(0).fee(), 0);  // coinbase
}

TEST(ChainView, ThrowsOnDoubleSpendInStore) {
  TestChain chain;
  auto cb = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({cb}, {{2, btc(50)}});
  chain.spend({cb}, {{3, btc(50)}});  // invalid second spend
  EXPECT_THROW(chain.view(), ValidationError);
}

TEST(ChainView, ThrowsOnUnknownPrevout) {
  TestChain chain;
  chain.spend({test::CoinRef{hash256(to_bytes(std::string("ghost"))), 0}},
              {{1, btc(1)}});
  EXPECT_THROW(chain.view(), ValidationError);
}

TEST(ChainView, MultiInputResolution) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(10));
  auto c2 = chain.coinbase(2, btc(20));
  chain.next_block();
  chain.spend({c1, c2}, {{3, btc(29)}});
  ChainView view = chain.view();
  TxIndex spender = view.tx(view.find_tx(c1.txid)).outputs[0].spent_by;
  const TxView& agg = view.tx(spender);
  ASSERT_EQ(agg.inputs.size(), 2u);
  EXPECT_EQ(agg.value_in(), btc(30));
}

TEST(ChainView, TxAccessorBounds) {
  TestChain chain;
  chain.coinbase(1, btc(50));
  ChainView view = chain.view();
  EXPECT_THROW(view.tx(99), UsageError);
  EXPECT_EQ(view.find_tx(hash256(to_bytes(std::string("none")))), kNoTx);
}

}  // namespace
}  // namespace fist
