#include "analysis/theft.hpp"

#include <gtest/gtest.h>

#include "cluster/heuristic1.hpp"
#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

// Forensic fixture: clusters + naming with addr 900 tagged "Mt. Gox".
struct Forensics {
  ChainView view;
  H2Result h2;
  std::unique_ptr<Clustering> clustering;
  std::unique_ptr<ClusterNaming> naming;

  explicit Forensics(TestChain& chain) : view(chain.view()) {
    UnionFind uf = heuristic1(view);
    h2 = apply_heuristic2(view, H2Options{});
    unite_h2_labels(view, h2, uf);
    clustering =
        std::make_unique<Clustering>(Clustering::from_union_find(uf));
    TagStore tags;
    if (auto gox = view.addresses().find(test::addr(900)))
      tags.add(*gox,
               Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed});
    naming = std::make_unique<ClusterNaming>(clustering->assignment(),
                                             clustering->sizes(), tags);
  }

  TheftTrace track(const std::vector<Hash256>& theft_txids,
                   const std::vector<Address>& thief_addrs,
                   TheftTrackOptions options = {}) {
    std::vector<TxIndex> txs;
    for (const Hash256& h : theft_txids) txs.push_back(view.find_tx(h));
    std::vector<AddrId> addrs;
    for (const Address& a : thief_addrs)
      if (auto id = view.addresses().find(a)) addrs.push_back(*id);
    return track_theft(view, h2, *clustering, *naming, txs, addrs, options);
  }
};

TEST(TheftTracker, RecoversAggregationThenSplit) {
  TestChain chain;
  auto v = chain.coinbase(1, btc(100));
  chain.next_block();
  // Theft: victim pays thief addrs 10, 11, 12.
  auto loot = chain.spend_all(
      {v}, {{10, btc(30)}, {11, btc(30)}, {12, btc(30)}});
  chain.next_block();
  // A: aggregate all three into 13.
  auto agg = chain.spend({loot[0], loot[1], loot[2]}, {{13, btc(89)}});
  chain.next_block();
  // S: split into 14/15 (comparable halves, no change label).
  chain.spend_all({agg}, {{14, btc(45)}, {15, btc(44)}});
  Forensics f(chain);

  Hash256 theft_txid = f.view.tx(1).txid;
  TheftTrace trace = f.track({theft_txid},
                             {test::addr(10), test::addr(11), test::addr(12)});
  EXPECT_EQ(trace.movement, "A/S");
  EXPECT_EQ(trace.to_exchanges, 0);
  EXPECT_EQ(trace.dormant, btc(89) - 0);  // 45 + 44 still unspent
}

TEST(TheftTracker, DistinguishesFoldingFromAggregation) {
  TestChain chain;
  auto v = chain.coinbase(1, btc(100));
  auto clean = chain.coinbase(20, btc(7));  // unrelated coin
  chain.next_block();
  auto loot = chain.spend_all({v}, {{10, btc(40)}, {11, btc(40)}});
  chain.next_block();
  // F: loot + clean coin together.
  chain.spend({loot[0], loot[1], clean}, {{13, btc(86)}});
  Forensics f(chain);

  TheftTrace trace = f.track({f.view.tx(2).txid},
                             {test::addr(10), test::addr(11)});
  EXPECT_EQ(trace.movement, "F");
}

TEST(TheftTracker, RecoversPeelingChainAndExchangeDeposits) {
  TestChain chain;
  chain.coinbase(900, btc(1));  // Mt. Gox seed address (tagged)
  auto v = chain.coinbase(1, btc(500));
  for (int i = 0; i < 5; ++i)
    chain.coinbase(static_cast<std::uint32_t>(700 + i), btc(1));  // seen
  chain.next_block();
  auto loot = chain.spend({v}, {{10, btc(400)}});
  chain.next_block();

  // Peeling chain off the loot: 5 hops; hop 2's peel goes to Mt. Gox.
  test::CoinRef cursor = loot;
  Amount remaining = btc(400);
  for (int i = 0; i < 5; ++i) {
    std::uint32_t peel_to =
        i == 2 ? 900u : static_cast<std::uint32_t>(700 + i);
    Amount peel = btc(10);
    remaining -= peel;
    auto refs = chain.spend_all(
        {cursor},
        {{peel_to, peel}, {static_cast<std::uint32_t>(30 + i), remaining}});
    cursor = refs[1];
    chain.next_block();
  }
  Forensics f(chain);

  TheftTrace trace = f.track({f.view.tx(f.view.find_tx(loot.txid)).txid},
                             {test::addr(10)});
  EXPECT_EQ(trace.movement, "P");
  EXPECT_EQ(trace.to_exchanges, btc(10));
  ASSERT_EQ(trace.exchange_deposits.size(), 1u);
  EXPECT_EQ(trace.exchange_deposits[0].service, "Mt. Gox");
}

TEST(TheftTracker, DormantLootStaysDormant) {
  TestChain chain;
  auto v = chain.coinbase(1, btc(100));
  chain.next_block();
  chain.spend_all({v}, {{10, btc(20)}, {11, btc(75)}});
  Forensics f(chain);
  // Addr 11's 75 BTC never moves.
  TheftTrace trace =
      f.track({f.view.tx(1).txid}, {test::addr(10), test::addr(11)});
  EXPECT_EQ(trace.movement, "");
  EXPECT_EQ(trace.dormant, btc(95));
  EXPECT_EQ(trace.txs_followed, 0);
}

TEST(TheftTracker, WeakTaintUpgradesSockPuppetPeels) {
  TestChain chain;
  for (int i = 0; i < 3; ++i)
    chain.coinbase(static_cast<std::uint32_t>(700 + i), btc(1));
  auto v = chain.coinbase(1, btc(300));
  chain.next_block();
  auto loot = chain.spend({v}, {{10, btc(250)}});
  chain.next_block();

  // 3 peel hops parking 40 BTC each on sock puppets 50/51/52 (fresh,
  // thief-owned).
  test::CoinRef cursor = loot;
  Amount remaining = btc(250);
  std::vector<test::CoinRef> socks;
  for (int i = 0; i < 3; ++i) {
    remaining -= btc(40);
    // Peel to a *seen* companion output so H2 can label... actually the
    // sock puppet must be fresh; make the tx peel-shaped instead.
    auto refs = chain.spend_all(
        {cursor}, {{static_cast<std::uint32_t>(50 + i), btc(40)},
                   {static_cast<std::uint32_t>(40 + i), remaining}});
    socks.push_back(refs[0]);
    cursor = refs[1];
    chain.next_block();
  }
  // Aggregate the socks plus the chain tip — all thief coins.
  chain.spend({socks[0], socks[1], socks[2], cursor}, {{60, btc(200)}});
  Forensics f(chain);

  TheftTrace trace =
      f.track({f.view.tx(f.view.find_tx(loot.txid)).txid},
              {test::addr(10)});
  // Peel hops then an aggregation of coins all associated with the
  // theft (socks upgraded by co-spend) → "P/A", not "P/F".
  EXPECT_EQ(trace.movement, "P/A");
}

TEST(TheftTracker, EmptyInputs) {
  TestChain chain;
  chain.coinbase(1, btc(10));
  Forensics f(chain);
  TheftTrace trace = f.track({}, {});
  EXPECT_EQ(trace.movement, "");
  EXPECT_EQ(trace.txs_followed, 0);
}

TEST(TheftTracker, MinBranchValueStopsDustTrails) {
  TestChain chain;
  auto v = chain.coinbase(1, btc(10));
  chain.next_block();
  auto loot = chain.spend({v}, {{10, 50'000}});  // 0.0005 BTC only
  chain.next_block();
  chain.spend({loot}, {{11, 40'000}});
  Forensics f(chain);
  TheftTrackOptions opt;
  opt.min_branch_value = 100'000;
  TheftTrace trace =
      f.track({f.view.tx(f.view.find_tx(loot.txid)).txid},
              {test::addr(10)}, opt);
  EXPECT_EQ(trace.txs_followed, 0);
}

}  // namespace
}  // namespace fist
