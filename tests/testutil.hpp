// testutil.hpp — helpers for building synthetic chains in tests.
//
// TestChain lets heuristic tests construct precise transaction graphs
// (who pays whom, which outputs are fresh) without the full economy
// simulator, while still going through the real block/serialization
// machinery that ChainView consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/block.hpp"
#include "chain/view.hpp"
#include "encoding/address.hpp"
#include "script/standard.hpp"
#include "util/timeutil.hpp"

namespace fist::test {

/// Deterministic P2PKH address number `i` (distinct for distinct i).
Address addr(std::uint32_t i);

/// Reference to a created output.
struct CoinRef {
  Hash256 txid;
  std::uint32_t index = 0;
};

/// Incrementally builds a valid-enough chain for ChainView::build.
class TestChain {
 public:
  explicit TestChain(Timestamp start = kGenesisTime,
                     Timestamp block_interval = kHour)
      : time_(start), interval_(block_interval) {
    open_block();
  }

  /// Creates a coinbase paying `value` to address number `to`.
  CoinRef coinbase(std::uint32_t to, Amount value);

  /// Spends `inputs` into outputs (addr number, value) pairs.
  /// Value conservation is NOT enforced (ChainView doesn't check), so
  /// tests can focus purely on graph structure.
  CoinRef spend(const std::vector<CoinRef>& inputs,
                const std::vector<std::pair<std::uint32_t, Amount>>& outputs);

  /// As spend(), but returns refs for every output.
  std::vector<CoinRef> spend_all(
      const std::vector<CoinRef>& inputs,
      const std::vector<std::pair<std::uint32_t, Amount>>& outputs);

  /// Closes the current block and starts a new one `interval` later.
  void next_block();

  /// Finalizes and builds the analysis view.
  ChainView view();

  /// Blocks built so far (finalizes the open block).
  const std::vector<Block>& blocks();

  Timestamp now() const noexcept { return time_; }

 private:
  void open_block();
  void close_block();

  std::vector<Block> blocks_;
  Block current_;
  Timestamp time_;
  Timestamp interval_;
  std::uint64_t coinbase_seq_ = 0;
  bool open_ = false;
};

}  // namespace fist::test
