// Deterministic fault injection: registry semantics, and the fault
// matrix over {site x rate x threads} asserting that lenient ingest
// quarantines exactly the injected faults and that the surviving
// output is bit-identical to a build over only the intact records.
#include "core/fault.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <unistd.h>

#include "chain/blockstore.hpp"
#include "chain/view.hpp"
#include "core/executor.hpp"
#include "crypto/hash.hpp"
#include "net/network.hpp"
#include "testutil.hpp"
#include "util/amount.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

/// Every test leaves the global registry disarmed (the suite shares
/// one process when run directly).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::global().disarm_all(); }
  void TearDown() override { fault::Registry::global().disarm_all(); }
};

TEST_F(FaultTest, DisarmedSiteNeverFires) {
  for (std::uint64_t k = 0; k < 100; ++k)
    EXPECT_FALSE(fault::fire("no.such.site", k));
}

TEST_F(FaultTest, RateZeroAndOneAreExact) {
  fault::Registry& reg = fault::Registry::global();
  reg.arm("t.zero", 0.0, 1);
  reg.arm("t.one", 1.0, 1);
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(reg.fire("t.zero", k));
    EXPECT_TRUE(reg.fire("t.one", k));
  }
  EXPECT_EQ(reg.checked("t.zero"), 200u);
  EXPECT_EQ(reg.fired("t.zero"), 0u);
  EXPECT_EQ(reg.fired("t.one"), 200u);
}

TEST_F(FaultTest, DecisionsArePureFunctionsOfSeedSiteKey) {
  fault::Registry& reg = fault::Registry::global();
  reg.arm("t.p", 0.3, 42);
  std::vector<bool> first;
  for (std::uint64_t k = 0; k < 500; ++k) first.push_back(reg.fire("t.p", k));
  // peek matches fire, re-arming with the same seed reproduces the
  // set, and probing in any order gives the same per-key answer.
  reg.arm("t.p", 0.3, 42);
  for (std::uint64_t k = 500; k-- > 0;) {
    EXPECT_EQ(reg.peek("t.p", k), first[k]) << k;
    EXPECT_EQ(reg.fire("t.p", k), first[k]) << k;
  }
  std::size_t fired = reg.fired("t.p");
  EXPECT_GT(fired, 100u);  // ~150 expected
  EXPECT_LT(fired, 200u);
  // A different seed gives a different set.
  reg.arm("t.p", 0.3, 43);
  std::size_t differs = 0;
  for (std::uint64_t k = 0; k < 500; ++k)
    differs += reg.peek("t.p", k) != first[k];
  EXPECT_GT(differs, 0u);
}

TEST_F(FaultTest, SitesAreIndependent) {
  fault::Registry& reg = fault::Registry::global();
  reg.arm("t.a", 0.5, 7);
  reg.arm("t.b", 0.5, 7);
  std::size_t differs = 0;
  for (std::uint64_t k = 0; k < 500; ++k)
    differs += reg.peek("t.a", k) != reg.peek("t.b", k);
  EXPECT_GT(differs, 100u);  // same seed, different site hash
}

TEST_F(FaultTest, NthTriggerFiresExactlyOnce) {
  fault::Registry& reg = fault::Registry::global();
  reg.arm_nth("t.nth", 17);
  for (std::uint64_t k = 0; k < 40; ++k)
    EXPECT_EQ(reg.fire("t.nth", k), k == 17) << k;
  EXPECT_EQ(reg.fired("t.nth"), 1u);
}

TEST_F(FaultTest, SpecParsing) {
  fault::Registry& reg = fault::Registry::global();
  reg.arm_from_spec("t.x=1.0,t.y=nth:3", 5);
  EXPECT_TRUE(reg.peek("t.x", 0));
  EXPECT_TRUE(reg.peek("t.y", 3));
  EXPECT_FALSE(reg.peek("t.y", 4));
  EXPECT_TRUE(reg.any_armed());
  EXPECT_THROW(reg.arm_from_spec("nonsense", 0), UsageError);
  EXPECT_THROW(reg.arm_from_spec("a=", 0), UsageError);
  EXPECT_THROW(reg.arm_from_spec("=0.5", 0), UsageError);
  reg.disarm_all();
  EXPECT_FALSE(reg.any_armed());
}

// ---- the fault matrix ----------------------------------------------------

/// A 24-block chain with cross-block spends, written through the real
/// file store so "blockstore.read" faults have somewhere to strike.
class FaultMatrixTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    path_ = std::filesystem::temp_directory_path() /
            ("fist_fault_test_" + std::to_string(::getpid()) + ".dat");
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".sums");

    test::TestChain chain;
    std::vector<test::CoinRef> coins;
    for (std::uint32_t b = 0; b < 12; ++b) {
      coins.push_back(chain.coinbase(b, btc(50)));
      chain.next_block();
    }
    for (std::uint32_t b = 0; b < 12; ++b) {
      chain.spend({coins[b]}, {{100 + b, btc(20)}, {200 + b, btc(30)}});
      chain.next_block();
    }
    blocks_ = chain.blocks();
    store_ = std::make_unique<FileBlockStore>(path_);
    for (const Block& b : blocks_) store_->append(b);
  }

  void TearDown() override {
    store_.reset();
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".sums");
    FaultTest::TearDown();
  }

  std::filesystem::path path_;
  std::vector<Block> blocks_;
  std::unique_ptr<FileBlockStore> store_;
};

TEST_F(FaultMatrixTest, ZeroFaultLenientIsBitIdenticalToStrict) {
  Executor ref_exec(1);
  Bytes strict = ChainView::build(*store_, ref_exec).serialize();
  for (unsigned threads : {1u, 2u, 8u}) {
    Executor exec(threads);
    IngestReport report;
    ChainView lenient =
        ChainView::build(*store_, exec, RecoveryPolicy::Lenient, &report);
    EXPECT_FALSE(report.quarantined());
    EXPECT_EQ(lenient.serialize(), strict) << "threads=" << threads;
  }
}

TEST_F(FaultMatrixTest, QuarantineExactlyMatchesInjectedFaults) {
  fault::Registry& reg = fault::Registry::global();
  struct SiteCase {
    const char* site;
    Quarantined::Stage stage;
  };
  const SiteCase sites[] = {
      {"blockstore.read", Quarantined::Stage::Read},
      {"decode.block", Quarantined::Stage::Decode},
  };
  for (const SiteCase& sc : sites) {
    for (double rate : {0.0, 0.2, 0.6}) {
      // The fault set is a pure function of (seed, site, key), so the
      // expected quarantine is computable before any build runs.
      reg.arm(sc.site, rate, 7);
      std::set<std::uint64_t> expected;
      for (std::uint64_t i = 0; i < blocks_.size(); ++i)
        if (reg.peek(sc.site, i)) expected.insert(i);

      // Reference: a lenient build over only the intact records, with
      // nothing armed. Any transaction left dangling by a dropped
      // block quarantines identically in both runs.
      reg.disarm_all();
      MemoryBlockStore intact;
      for (std::uint64_t i = 0; i < blocks_.size(); ++i)
        if (!expected.contains(i))
          intact.append(blocks_[static_cast<std::size_t>(i)]);
      Executor ref_exec(1);
      IngestReport ref_report;
      Bytes reference =
          ChainView::build(intact, ref_exec, RecoveryPolicy::Lenient,
                           &ref_report)
              .serialize();

      for (unsigned threads : {1u, 2u, 8u}) {
        reg.arm(sc.site, rate, 7);
        Executor exec(threads);
        IngestReport report;
        ChainView view =
            ChainView::build(*store_, exec, RecoveryPolicy::Lenient, &report);
        reg.disarm_all();

        SCOPED_TRACE(std::string(sc.site) + " rate=" + std::to_string(rate) +
                     " threads=" + std::to_string(threads));
        std::set<std::uint64_t> quarantined;
        for (const Quarantined& q : report.blocks) {
          EXPECT_EQ(q.stage, sc.stage);
          quarantined.insert(q.record);
        }
        EXPECT_EQ(quarantined, expected);
        EXPECT_EQ(report.txs.size(), ref_report.txs.size());
        EXPECT_EQ(view.serialize(), reference);
      }
    }
  }
}

TEST_F(FaultMatrixTest, StrictAbortsOnLowestFaultedRecord) {
  fault::Registry& reg = fault::Registry::global();
  reg.arm_nth("decode.block", 3);
  for (unsigned threads : {1u, 2u, 8u}) {
    Executor exec(threads);
    try {
      (void)ChainView::build(*store_, exec, RecoveryPolicy::Strict, nullptr);
      FAIL() << "strict build survived an injected fault";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("record 3"), std::string::npos)
          << e.what();
    }
  }
}

TEST_F(FaultMatrixTest, ResolveCascadeQuarantinesDanglingSpenders) {
  // Dropping block 0 (a coinbase) leaves the block-12 transaction that
  // spends it dangling: it must quarantine at Resolve, not crash.
  fault::Registry& reg = fault::Registry::global();
  for (unsigned threads : {1u, 2u, 8u}) {
    reg.arm_nth("decode.block", 0);
    Executor exec(threads);
    IngestReport report;
    ChainView view =
        ChainView::build(*store_, exec, RecoveryPolicy::Lenient, &report);
    reg.disarm_all();
    ASSERT_EQ(report.blocks.size(), 1u);
    EXPECT_EQ(report.blocks[0].record, 0u);
    ASSERT_EQ(report.txs.size(), 1u);
    EXPECT_EQ(report.txs[0].stage, Quarantined::Stage::Resolve);
    EXPECT_EQ(report.txs[0].record, 12u);
    EXPECT_EQ(report.txs[0].reason, "view: input references unknown txid");
    // 25 blocks stored (incl. the trailing dummy), 1 dropped; of the 25
    // txs, the dropped coinbase and the dangling spender are gone.
    EXPECT_EQ(view.block_count(), blocks_.size() - 1);
    EXPECT_EQ(view.tx_count(), blocks_.size() - 2);
  }
}

// ---- executor hardening --------------------------------------------------

TEST_F(FaultTest, ExecutorTaskFaultPropagatesAndPoolStaysUsable) {
  fault::Registry& reg = fault::Registry::global();
  for (unsigned threads : {1u, 2u, 8u}) {
    Executor exec(threads);
    reg.arm("executor.task", 1.0, 0);
    std::atomic<std::size_t> ran{0};
    EXPECT_THROW(exec.parallel_for_each(0, 64, [&](std::size_t) { ++ran; }),
                 Error);
    reg.disarm_all();
    // The pool must come back clean after a task exception.
    std::atomic<std::size_t> sum{0};
    exec.parallel_for_each(0, 64, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

TEST_F(FaultTest, ExecutorCancellation) {
  for (unsigned threads : {1u, 2u, 8u}) {
    Executor exec(threads);
    exec.request_cancel();
    EXPECT_TRUE(exec.cancel_requested());
    EXPECT_THROW(exec.parallel_for_each(0, 8, [](std::size_t) {}),
                 CancelledError);
    exec.reset_cancel();
    std::atomic<std::size_t> ran{0};
    exec.parallel_for_each(0, 8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8u);

    // Cancellation requested from inside a task stops the loop and
    // surfaces as CancelledError — no deadlock, pool reusable.
    EXPECT_THROW(exec.parallel_for(0, 1024, 1,
                                   [&](std::size_t, std::size_t) {
                                     exec.request_cancel();
                                   }),
                 CancelledError);
    exec.reset_cancel();
    exec.parallel_for_each(0, 8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 16u);
  }
}

TEST_F(FaultTest, BodyExceptionWinsOverCancellation) {
  // When a body throws and teardown then cancels, the body's error —
  // the root cause — is what propagates, not CancelledError.
  Executor exec(4);
  try {
    exec.parallel_for(0, 1024, 1, [&](std::size_t lo, std::size_t) {
      if (lo == 0) {
        exec.request_cancel();
        throw ValidationError("root cause");
      }
    });
    FAIL() << "expected an exception";
  } catch (const ValidationError&) {
  } catch (const CancelledError&) {
    // Acceptable only if the cancel raced ahead of chunk 0; reject —
    // chunk 0 always runs (claim order starts there) on some lane, so
    // its error must have been recorded.
    FAIL() << "cancellation shadowed the body error";
  }
  exec.reset_cancel();
}

// ---- net.deliver ---------------------------------------------------------

TEST_F(FaultTest, NetDeliverDropsAreDeterministic) {
  fault::Registry& reg = fault::Registry::global();
  auto run = [&] {
    reg.arm("net.deliver", 0.3, 11);
    net::NetConfig cfg;
    cfg.nodes = 30;
    cfg.out_peers = 6;
    cfg.seed = 5;
    net::P2PNetwork net(cfg);
    Transaction tx;
    TxIn in;
    in.prevout.txid = hash256(to_bytes(std::string("f")));
    tx.inputs.push_back(in);
    tx.outputs.push_back(TxOut{btc(1), Script()});
    net.submit_tx(0, tx);
    net.run_until(60);
    std::uint64_t fired = reg.fired("net.deliver");
    reg.disarm_all();
    return std::pair<std::uint64_t, std::uint64_t>(net.messages_dropped(),
                                                   fired);
  };
  auto [dropped_a, fired_a] = run();
  auto [dropped_b, fired_b] = run();
  EXPECT_GT(dropped_a, 0u);
  EXPECT_EQ(dropped_a, dropped_b);
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(dropped_a, fired_a);  // every drop came from the injector
}

}  // namespace
}  // namespace fist
