// Determinism-differential test: the parallel pipeline's correctness
// contract is that thread count is unobservable in its outputs. The
// same simulated world is run at threads = 1 (the sequential reference
// semantics), 2, and 8, and every forensic product — chain view,
// H1/final clusterings, cluster names, H2 change labels, balances,
// ground-truth scores — must be bit-identical across the three.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/balances.hpp"
#include "cluster/metrics.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

namespace fist {
namespace {

sim::WorldConfig differential_config() {
  sim::WorldConfig cfg;
  cfg.days = 60;
  cfg.users = 100;
  cfg.blocks_per_day = 8;
  cfg.seed = 7777;
  return cfg;
}

constexpr unsigned kThreadCounts[] = {1, 2, 8};

class PipelineParallelTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World* w = [] {
      auto* world = new sim::World(differential_config());
      world->run();
      return world;
    }();
    return *w;
  }

  /// Pipelines at threads = 1, 2, 8 over the same world (same index as
  /// kThreadCounts).
  static ForensicPipeline& pipeline(std::size_t i) {
    static std::unique_ptr<ForensicPipeline> pipes[std::size(kThreadCounts)];
    if (!pipes[i]) {
      PipelineOptions options;
      options.threads = kThreadCounts[i];
      pipes[i] = std::make_unique<ForensicPipeline>(
          world().store(), world().tag_feed(), options);
      pipes[i]->run();
    }
    return *pipes[i];
  }

  static ForensicPipeline& reference() { return pipeline(0); }
};

TEST_F(PipelineParallelTest, ExecutorsHonorRequestedThreadCounts) {
  for (std::size_t i = 0; i < std::size(kThreadCounts); ++i)
    EXPECT_EQ(pipeline(i).executor().worker_count(), kThreadCounts[i]);
  EXPECT_TRUE(reference().executor().inline_mode());
}

TEST_F(PipelineParallelTest, ChainViewIsBitIdentical) {
  const ChainView& ref = reference().view();
  ASSERT_GT(ref.tx_count(), 1000u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    const ChainView& got = pipeline(i).view();
    ASSERT_EQ(got.tx_count(), ref.tx_count());
    ASSERT_EQ(got.address_count(), ref.address_count());
    ASSERT_EQ(got.block_count(), ref.block_count());

    // Dense ids must agree address-by-address (intern order), and every
    // transaction must resolve identically.
    for (AddrId a = 0; a < ref.address_count(); ++a) {
      ASSERT_EQ(got.addresses().lookup(a), ref.addresses().lookup(a))
          << "AddrId " << a << " interned differently at threads="
          << kThreadCounts[i];
      ASSERT_EQ(got.first_seen(a), ref.first_seen(a)) << "AddrId " << a;
    }
    for (TxIndex t = 0; t < ref.tx_count(); ++t) {
      const TxView& rt = ref.tx(t);
      const TxView& gt = got.tx(t);
      ASSERT_EQ(gt.txid, rt.txid) << "tx " << t;
      ASSERT_EQ(gt.height, rt.height);
      ASSERT_EQ(gt.time, rt.time);
      ASSERT_EQ(gt.coinbase, rt.coinbase);
      ASSERT_EQ(gt.inputs.size(), rt.inputs.size());
      for (std::size_t k = 0; k < rt.inputs.size(); ++k) {
        ASSERT_EQ(gt.inputs[k].addr, rt.inputs[k].addr);
        ASSERT_EQ(gt.inputs[k].value, rt.inputs[k].value);
        ASSERT_EQ(gt.inputs[k].prev_tx, rt.inputs[k].prev_tx);
        ASSERT_EQ(gt.inputs[k].prev_index, rt.inputs[k].prev_index);
      }
      ASSERT_EQ(gt.outputs.size(), rt.outputs.size());
      for (std::size_t k = 0; k < rt.outputs.size(); ++k) {
        ASSERT_EQ(gt.outputs[k].addr, rt.outputs[k].addr);
        ASSERT_EQ(gt.outputs[k].value, rt.outputs[k].value);
        ASSERT_EQ(gt.outputs[k].spent_by, rt.outputs[k].spent_by);
      }
    }
  }
}

TEST_F(PipelineParallelTest, ClusteringsAreBitIdentical) {
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    EXPECT_EQ(pipeline(i).h1_clustering().assignment(),
              reference().h1_clustering().assignment())
        << "H1 clustering diverged at threads=" << kThreadCounts[i];
    EXPECT_EQ(pipeline(i).h1_clustering().sizes(),
              reference().h1_clustering().sizes());
    EXPECT_EQ(pipeline(i).clustering().assignment(),
              reference().clustering().assignment())
        << "final clustering diverged at threads=" << kThreadCounts[i];
    EXPECT_EQ(pipeline(i).clustering().sizes(),
              reference().clustering().sizes());
  }
}

TEST_F(PipelineParallelTest, H1StatsExactlyMatchSequential) {
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    EXPECT_EQ(pipeline(i).h1_stats().links, reference().h1_stats().links);
    EXPECT_EQ(pipeline(i).h1_stats().multi_input_txs,
              reference().h1_stats().multi_input_txs);
  }
}

TEST_F(PipelineParallelTest, NamingIsIdentical) {
  const auto& ref_names = reference().naming().names();
  ASSERT_GT(ref_names.size(), 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    const auto& got_names = pipeline(i).naming().names();
    ASSERT_EQ(got_names.size(), ref_names.size());
    for (const auto& [cluster, name] : ref_names) {
      auto it = got_names.find(cluster);
      ASSERT_NE(it, got_names.end()) << "cluster " << cluster << " unnamed";
      EXPECT_EQ(it->second.service, name.service);
      EXPECT_EQ(it->second.category, name.category);
      EXPECT_EQ(it->second.tag_votes, name.tag_votes);
      EXPECT_EQ(it->second.distinct_services, name.distinct_services);
    }
    EXPECT_EQ(pipeline(i).naming().named_addresses(),
              reference().naming().named_addresses());
    EXPECT_EQ(pipeline(i).tagged_address_count(),
              reference().tagged_address_count());
  }
}

TEST_F(PipelineParallelTest, ChangeLabelsAndDiceSetAreIdentical) {
  ASSERT_GT(reference().h2().label_count(), 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    EXPECT_EQ(pipeline(i).h2().change_of_tx, reference().h2().change_of_tx)
        << "H2 change labels diverged at threads=" << kThreadCounts[i];
    ASSERT_EQ(pipeline(i).h2().labels.size(), reference().h2().labels.size());
    for (std::size_t k = 0; k < reference().h2().labels.size(); ++k) {
      EXPECT_EQ(pipeline(i).h2().labels[k].tx, reference().h2().labels[k].tx);
      EXPECT_EQ(pipeline(i).h2().labels[k].change,
                reference().h2().labels[k].change);
    }
    EXPECT_EQ(pipeline(i).dice_addresses(), reference().dice_addresses());
  }
}

TEST_F(PipelineParallelTest, BalanceSeriesIsBitIdentical) {
  const BalanceSeries ref =
      category_balances(reference().view(), reference().clustering(),
                        reference().naming(), kWeek, reference().executor());
  ASSERT_GT(ref.times.size(), 4u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    const BalanceSeries got =
        category_balances(pipeline(i).view(), pipeline(i).clustering(),
                          pipeline(i).naming(), kWeek,
                          pipeline(i).executor());
    ASSERT_EQ(got.times, ref.times);
    EXPECT_EQ(got.active_supply, ref.active_supply);
    EXPECT_EQ(got.total_supply, ref.total_supply);
    ASSERT_EQ(got.tracks.size(), ref.tracks.size());
    for (std::size_t k = 0; k < ref.tracks.size(); ++k) {
      EXPECT_EQ(got.tracks[k].category, ref.tracks[k].category);
      EXPECT_EQ(got.tracks[k].balance, ref.tracks[k].balance);
      // Doubles compared bit-for-bit on purpose: both sides must have
      // computed them from identical integer snapshots.
      EXPECT_EQ(got.tracks[k].pct_active, ref.tracks[k].pct_active);
    }
  }
}

TEST_F(PipelineParallelTest, GroundTruthScoresAreIdentical) {
  // True owner ids per AddrId from the simulator journal.
  const ChainView& view = reference().view();
  std::vector<std::uint32_t> owners(view.address_count(), kUnknownOwner);
  for (AddrId a = 0; a < view.address_count(); ++a) {
    sim::ActorId owner = world().truth().owner(view.addresses().lookup(a));
    if (owner != sim::kNoActor) owners[a] = owner;
  }

  const PairwiseScores ref = pairwise_scores(
      reference().clustering().assignment(), owners);
  ASSERT_GT(ref.true_pairs, 0u);
  for (std::size_t i = 1; i < std::size(kThreadCounts); ++i) {
    const PairwiseScores got =
        pairwise_scores(pipeline(i).clustering().assignment(), owners,
                        pipeline(i).executor());
    EXPECT_EQ(got.predicted_pairs, ref.predicted_pairs);
    EXPECT_EQ(got.true_pairs, ref.true_pairs);
    EXPECT_EQ(got.agreeing_pairs, ref.agreeing_pairs);
    EXPECT_EQ(got.precision, ref.precision);
    EXPECT_EQ(got.recall, ref.recall);
  }
}

TEST_F(PipelineParallelTest, StageTimingsAreReported) {
  for (std::size_t i = 0; i < std::size(kThreadCounts); ++i) {
    const std::vector<StageTiming>& timings = pipeline(i).timings();
    ASSERT_EQ(timings.size(), 7u) << "threads=" << kThreadCounts[i];
    EXPECT_STREQ(timings.front().stage, "view");
    EXPECT_STREQ(timings.back().stage, "finalize");
    for (const StageTiming& t : timings) EXPECT_GE(t.millis, 0.0);
  }
}

}  // namespace
}  // namespace fist
