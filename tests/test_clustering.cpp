#include "cluster/clustering.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

using test::TestChain;

TEST(Clustering, FromUnionFindDenseIds) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  Clustering c = Clustering::from_union_find(uf);
  EXPECT_EQ(c.cluster_count(), 4u);
  EXPECT_EQ(c.address_count(), 6u);
  EXPECT_EQ(c.cluster_of(0), c.cluster_of(1));
  EXPECT_EQ(c.cluster_of(2), c.cluster_of(3));
  EXPECT_NE(c.cluster_of(0), c.cluster_of(2));
  EXPECT_NE(c.cluster_of(4), c.cluster_of(5));
}

TEST(Clustering, SizesAreMemberCounts) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  Clustering c = Clustering::from_union_find(uf);
  EXPECT_EQ(c.size_of(c.cluster_of(0)), 3u);
  EXPECT_EQ(c.size_of(c.cluster_of(3)), 1u);
  std::uint64_t total = 0;
  for (std::uint32_t s : c.sizes()) total += s;
  EXPECT_EQ(total, 5u);
}

TEST(Clustering, ClusterIdsAreFirstMemberOrdered) {
  UnionFind uf(4);
  uf.unite(2, 3);
  Clustering c = Clustering::from_union_find(uf);
  // Address 0 gets cluster 0, address 1 cluster 1, addresses 2/3 share
  // cluster 2 — deterministic across runs.
  EXPECT_EQ(c.cluster_of(0), 0u);
  EXPECT_EQ(c.cluster_of(1), 1u);
  EXPECT_EQ(c.cluster_of(2), 2u);
  EXPECT_EQ(c.cluster_of(3), 2u);
}

TEST(Clustering, LargestFindsBiggest) {
  UnionFind uf(10);
  for (int i = 0; i < 4; ++i)
    uf.unite(0, static_cast<std::uint32_t>(i + 1));
  uf.unite(6, 7);
  Clustering c = Clustering::from_union_find(uf);
  auto [id, size] = c.largest();
  EXPECT_EQ(size, 5u);
  EXPECT_EQ(id, c.cluster_of(0));
}

TEST(Clustering, LargestThrowsOnEmpty) {
  UnionFind uf(0);
  Clustering c = Clustering::from_union_find(uf);
  EXPECT_THROW(c.largest(), UsageError);
}

TEST(Clustering, DistinctAfterNamingCollapsesSameService) {
  UnionFind uf(6);
  uf.unite(0, 1);  // cluster A
  uf.unite(2, 3);  // cluster B
  Clustering c = Clustering::from_union_find(uf);

  TagStore tags;
  tags.add(0, Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed});
  tags.add(2, Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed});
  ClusterNaming naming(c.assignment(), c.sizes(), tags);

  // 4 clusters total; two carry the same name → 3 distinct entities.
  EXPECT_EQ(c.cluster_count(), 4u);
  EXPECT_EQ(c.distinct_after_naming(naming), 3u);
}

TEST(UserUpperBound, CountsSpendersAndSinks) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(10));
  auto c2 = chain.coinbase(2, btc(20));
  chain.coinbase(3, btc(5));  // addr 3 never spends: a sink
  chain.next_block();
  chain.spend({c1, c2}, {{4, btc(29)}});  // 4 also never spends
  ChainView view = chain.view();

  UnionFind uf(view.address_count());
  // H1-style merge of 1 and 2.
  auto a1 = *view.addresses().find(test::addr(1));
  auto a2 = *view.addresses().find(test::addr(2));
  uf.unite(a1, a2);
  Clustering c = Clustering::from_union_find(uf);

  // Spending cluster {1,2} plus sinks {3},{4} and the dummy coinbase
  // address of the second block.
  std::uint64_t bound = user_upper_bound(view, c);
  // addresses: 1,2,3,4 + dummy (block 2 has the spend... no dummy).
  EXPECT_EQ(view.address_count(), 4u);
  EXPECT_EQ(bound, 3u);  // {1,2} + sink 3 + sink 4 → 1 + 2
}

}  // namespace
}  // namespace fist
