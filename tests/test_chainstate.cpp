#include "chain/chainstate.hpp"

#include <gtest/gtest.h>

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

// A hand-driven block factory that builds valid chains and lets each
// test break exactly one rule.
class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture() : state_(params()) {}

  static ChainParams params() {
    ChainParams p;
    p.coinbase_maturity = 2;
    p.halving_interval = 1000;
    p.expected_bits = kEasyBits;
    return p;
  }

  Script script_for(int who) {
    return make_p2pkh(hash160(to_bytes("user" + std::to_string(who))));
  }

  Transaction coinbase_tx(Amount value) {
    Transaction cb;
    TxIn in;
    in.prevout = OutPoint::coinbase();
    Script sig;
    Writer w;
    w.u64le(seq_++);
    sig.push(w.view());
    in.script_sig = sig;
    cb.inputs.push_back(in);
    cb.outputs.push_back(TxOut{value, script_for(0)});
    return cb;
  }

  Block next_block(std::vector<Transaction> txs = {},
                   Amount coinbase_value = 50 * kCoin) {
    Block b;
    b.header.prev_hash = state_.height() < 0
                             ? Hash256{}
                             : state_.block_hash(state_.height());
    b.header.time = static_cast<std::uint32_t>(
        1231006505 + (state_.height() + 1) * 600);
    b.header.bits = kEasyBits;
    b.transactions.push_back(coinbase_tx(coinbase_value));
    for (Transaction& tx : txs) b.transactions.push_back(std::move(tx));
    b.fix_merkle_root();
    while (!check_proof_of_work(b.header.hash(), b.header.bits))
      ++b.header.nonce;
    return b;
  }

  // Mines `n` empty blocks (to mature coinbases).
  void mine(int n) {
    for (int i = 0; i < n; ++i) state_.connect(next_block());
  }

  Transaction spend(const Hash256& txid, std::uint32_t index, Amount in_value,
                    Amount out_value, int out_who = 1) {
    Transaction tx;
    TxIn in;
    in.prevout = OutPoint{txid, index};
    tx.inputs.push_back(in);
    (void)in_value;
    tx.outputs.push_back(TxOut{out_value, script_for(out_who)});
    return tx;
  }

  ChainState state_;
  std::uint64_t seq_ = 0;
};

TEST_F(ChainFixture, ConnectsGenesisAndGrows) {
  EXPECT_EQ(state_.height(), -1);
  mine(3);
  EXPECT_EQ(state_.height(), 2);
  EXPECT_EQ(state_.stats().coinbase_transactions, 3u);
  EXPECT_EQ(state_.stats().minted, 150 * kCoin);
  EXPECT_EQ(state_.utxos().size(), 3u);
}

TEST_F(ChainFixture, RejectsWrongPrevHash) {
  mine(1);
  Block orphan = next_block();
  orphan.header.prev_hash = hash256(to_bytes(std::string("elsewhere")));
  orphan.fix_merkle_root();
  while (!check_proof_of_work(orphan.header.hash(), orphan.header.bits))
    ++orphan.header.nonce;
  EXPECT_THROW(state_.connect(orphan), ValidationError);
}

TEST_F(ChainFixture, RejectsBadMerkleRoot) {
  Block b = next_block();
  b.header.merkle_root = Hash256{};
  while (!check_proof_of_work(b.header.hash(), b.header.bits))
    ++b.header.nonce;
  EXPECT_THROW(state_.connect(b), ValidationError);
}

TEST_F(ChainFixture, RejectsWrongDifficultyBits) {
  Block b = next_block();
  b.header.bits = 0x207dffff;
  b.fix_merkle_root();
  EXPECT_THROW(state_.connect(b), ValidationError);
}

TEST_F(ChainFixture, RejectsMissingCoinbase) {
  Block b = next_block();
  b.transactions.clear();
  b.fix_merkle_root();
  while (!check_proof_of_work(b.header.hash(), b.header.bits))
    ++b.header.nonce;
  EXPECT_THROW(state_.connect(b), ValidationError);
}

TEST_F(ChainFixture, RejectsOverpayingCoinbase) {
  Block b = next_block({}, 50 * kCoin + 1);
  EXPECT_THROW(state_.connect(b), ValidationError);
}

TEST_F(ChainFixture, CoinbaseMayCollectFees) {
  Block funding = next_block();
  Hash256 cb_txid = funding.transactions[0].txid();
  state_.connect(funding);
  mine(2);  // mature it

  // Spend 50, return 49 → 1 BTC fee, claimable by the coinbase.
  Transaction tx = spend(cb_txid, 0, 50 * kCoin, 49 * kCoin);
  Block b = next_block({tx}, 50 * kCoin + 1 * kCoin);
  EXPECT_NO_THROW(state_.connect(b));
  EXPECT_EQ(state_.stats().total_fees, 1 * kCoin);
}

TEST_F(ChainFixture, RejectsSpendOfUnknownOutput) {
  mine(1);
  Transaction tx =
      spend(hash256(to_bytes(std::string("ghost"))), 0, btc(1), btc(1));
  EXPECT_THROW(state_.connect(next_block({tx})), ValidationError);
}

TEST_F(ChainFixture, RejectsDoubleSpendAcrossBlocks) {
  Block funding = next_block();
  Hash256 cb_txid = funding.transactions[0].txid();
  state_.connect(funding);
  mine(2);

  Transaction tx1 = spend(cb_txid, 0, 50 * kCoin, 49 * kCoin, 1);
  state_.connect(next_block({tx1}));

  Transaction tx2 = spend(cb_txid, 0, 50 * kCoin, 48 * kCoin, 2);
  EXPECT_THROW(state_.connect(next_block({tx2})), ValidationError);
}

TEST_F(ChainFixture, RejectsDoubleSpendWithinBlock) {
  Block funding = next_block();
  Hash256 cb_txid = funding.transactions[0].txid();
  state_.connect(funding);
  mine(2);

  Transaction tx1 = spend(cb_txid, 0, 50 * kCoin, 49 * kCoin, 1);
  Transaction tx2 = spend(cb_txid, 0, 50 * kCoin, 48 * kCoin, 2);
  EXPECT_THROW(state_.connect(next_block({tx1, tx2})), ValidationError);
}

TEST_F(ChainFixture, RejectsValueCreation) {
  Block funding = next_block();
  Hash256 cb_txid = funding.transactions[0].txid();
  state_.connect(funding);
  mine(2);
  Transaction tx = spend(cb_txid, 0, 50 * kCoin, 51 * kCoin);
  EXPECT_THROW(state_.connect(next_block({tx})), ValidationError);
}

TEST_F(ChainFixture, EnforcesCoinbaseMaturity) {
  Block funding = next_block();
  Hash256 cb_txid = funding.transactions[0].txid();
  state_.connect(funding);
  // Height is now 0; spending at height 1 violates maturity=2.
  Transaction premature = spend(cb_txid, 0, 50 * kCoin, 49 * kCoin);
  EXPECT_THROW(state_.connect(next_block({premature})), ValidationError);
  // After one more block it matures (2 blocks deep).
  mine(1);
  Transaction ok = spend(cb_txid, 0, 50 * kCoin, 49 * kCoin);
  EXPECT_NO_THROW(state_.connect(next_block({ok})));
}

TEST_F(ChainFixture, AllowsIntraBlockChains) {
  Block funding = next_block();
  Hash256 cb_txid = funding.transactions[0].txid();
  state_.connect(funding);
  mine(2);

  Transaction tx1 = spend(cb_txid, 0, 50 * kCoin, 49 * kCoin, 1);
  Transaction tx2 = spend(tx1.txid(), 0, 49 * kCoin, 48 * kCoin, 2);
  EXPECT_NO_THROW(state_.connect(next_block({tx1, tx2})));
}

TEST_F(ChainFixture, RejectsExtraCoinbase) {
  Block b = next_block();
  b.transactions.push_back(coinbase_tx(50 * kCoin));
  b.fix_merkle_root();
  while (!check_proof_of_work(b.header.hash(), b.header.bits))
    ++b.header.nonce;
  EXPECT_THROW(state_.connect(b), ValidationError);
}

TEST_F(ChainFixture, FailedBlockLeavesStateUntouched) {
  Block funding = next_block();
  Hash256 cb_txid = funding.transactions[0].txid();
  state_.connect(funding);
  mine(2);
  std::size_t utxos_before = state_.utxos().size();

  Transaction good = spend(cb_txid, 0, 50 * kCoin, 49 * kCoin, 1);
  Transaction bad =
      spend(hash256(to_bytes(std::string("ghost"))), 0, btc(1), btc(1));
  EXPECT_THROW(state_.connect(next_block({good, bad})), ValidationError);
  // The good tx's effects must not have been applied.
  EXPECT_EQ(state_.utxos().size(), utxos_before);
  ASSERT_NE(state_.utxos().find(OutPoint{cb_txid, 0}), nullptr);
}

TEST_F(ChainFixture, BlockHashLookups) {
  mine(2);
  Hash256 h0 = state_.block_hash(0);
  EXPECT_EQ(state_.find_height(h0), 0);
  EXPECT_EQ(state_.find_height(hash256(to_bytes(std::string("no")))), -1);
  EXPECT_THROW(state_.block_hash(7), UsageError);
}

TEST_F(ChainFixture, SubsidyHalvesAtInterval) {
  // halving_interval = 1000 in the fixture; height 1000 pays 25.
  ChainParams p = params();
  p.halving_interval = 3;
  ChainState s(p);
  std::uint64_t seq = 900;
  for (int h = 0; h <= 3; ++h) {
    Block b;
    b.header.prev_hash = h == 0 ? Hash256{} : s.block_hash(h - 1);
    b.header.time = static_cast<std::uint32_t>(1231006505 + h * 600);
    b.header.bits = kEasyBits;
    Transaction cb;
    TxIn in;
    in.prevout = OutPoint::coinbase();
    Script sig;
    Writer w;
    w.u64le(seq++);
    sig.push(w.view());
    in.script_sig = sig;
    cb.inputs.push_back(in);
    cb.outputs.push_back(
        TxOut{block_subsidy(h, 3), script_for(0)});
    b.transactions.push_back(cb);
    b.fix_merkle_root();
    while (!check_proof_of_work(b.header.hash(), b.header.bits))
      ++b.header.nonce;
    s.connect(b);
  }
  EXPECT_EQ(s.stats().minted, 50 * kCoin * 3 + 25 * kCoin);
}

}  // namespace
}  // namespace fist
