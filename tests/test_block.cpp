#include "chain/block.hpp"

#include <gtest/gtest.h>

#include "crypto/merkle.hpp"
#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

Block sample_block() {
  Block b;
  b.header.version = 1;
  b.header.prev_hash = hash256(to_bytes(std::string("parent")));
  b.header.time = 1231006505;
  b.header.bits = 0x207fffff;
  Transaction cb;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  Script sig;
  sig.push(to_bytes(std::string("genesis-ish")));
  in.script_sig = sig;
  cb.inputs.push_back(in);
  cb.outputs.push_back(
      TxOut{btc(50), make_p2pkh(hash160(to_bytes(std::string("miner"))))});
  b.transactions.push_back(cb);
  b.fix_merkle_root();
  return b;
}

TEST(BlockHeader, SerializesTo80Bytes) {
  Writer w;
  sample_block().header.serialize(w);
  EXPECT_EQ(w.size(), 80u);
}

TEST(BlockHeader, RoundTrip) {
  BlockHeader h = sample_block().header;
  Writer w;
  h.serialize(w);
  Reader r(w.view());
  EXPECT_EQ(BlockHeader::deserialize(r), h);
}

TEST(BlockHeader, HashChangesWithNonce) {
  BlockHeader h = sample_block().header;
  Hash256 h1 = h.hash();
  h.nonce += 1;
  EXPECT_NE(h.hash(), h1);
}

TEST(Block, RoundTrip) {
  Block b = sample_block();
  EXPECT_EQ(Block::from_bytes(b.serialize()), b);
}

TEST(Block, MerkleRootMatchesTxids) {
  Block b = sample_block();
  std::vector<Hash256> txids{b.transactions[0].txid()};
  EXPECT_EQ(b.header.merkle_root, merkle_root(txids));
}

TEST(Block, FixMerkleAfterAddingTx) {
  Block b = sample_block();
  Hash256 old_root = b.header.merkle_root;
  Transaction tx;
  TxIn in;
  in.prevout.txid = b.transactions[0].txid();
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});
  b.transactions.push_back(tx);
  b.fix_merkle_root();
  EXPECT_NE(b.header.merkle_root, old_root);
  EXPECT_EQ(b.compute_merkle_root(), b.header.merkle_root);
}

TEST(Block, DeserializeRejectsTruncation) {
  Bytes raw = sample_block().serialize();
  raw.resize(60);
  EXPECT_THROW(Block::from_bytes(raw), ParseError);
}

TEST(Subsidy, HalvingSchedule) {
  EXPECT_EQ(block_subsidy(0), 50 * kCoin);
  EXPECT_EQ(block_subsidy(209'999), 50 * kCoin);
  EXPECT_EQ(block_subsidy(210'000), 25 * kCoin);
  EXPECT_EQ(block_subsidy(420'000), 1'250'000'000);
  EXPECT_EQ(block_subsidy(-1), 0);
}

TEST(Subsidy, EventuallyZero) {
  EXPECT_EQ(block_subsidy(64 * 210'000), 0);
  EXPECT_EQ(block_subsidy(100'000'000), 0);
}

TEST(Subsidy, CustomInterval) {
  EXPECT_EQ(block_subsidy(1'999, 2'000), 50 * kCoin);
  EXPECT_EQ(block_subsidy(2'000, 2'000), 25 * kCoin);
  EXPECT_EQ(block_subsidy(4'000, 2'000), 1'250'000'000);
}

TEST(Subsidy, TotalSupplyApproaches21M) {
  // Sum of all subsidies stays below the 21M cap.
  Amount total = 0;
  for (int halving = 0; halving < 64; ++halving) {
    Amount per_block = block_subsidy(halving * 210'000);
    total += per_block * 210'000;
  }
  EXPECT_LE(total, kMaxMoney);
  EXPECT_GT(total, kMaxMoney - btc(100));  // within 100 BTC of the cap
}

}  // namespace
}  // namespace fist
