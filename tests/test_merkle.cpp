#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

Hash256 leaf(std::uint8_t i) {
  Bytes b{i};
  return hash256(b);
}

std::vector<Hash256> leaves(std::size_t n) {
  std::vector<Hash256> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(leaf(static_cast<std::uint8_t>(i)));
  return out;
}

TEST(Merkle, EmptyIsNull) {
  EXPECT_TRUE(merkle_root({}).is_null());
}

TEST(Merkle, SingleLeafIsItsOwnRoot) {
  auto l = leaves(1);
  EXPECT_EQ(merkle_root(l), l[0]);
}

TEST(Merkle, PairIsHashOfConcatenation) {
  auto l = leaves(2);
  Sha256 h;
  h.write(l[0].view());
  h.write(l[1].view());
  auto once = h.finish();
  auto twice = sha256(ByteView(once));
  EXPECT_EQ(merkle_root(l).view()[0], twice[0]);
  EXPECT_TRUE(std::equal(twice.begin(), twice.end(),
                         merkle_root(l).view().begin()));
}

TEST(Merkle, OddCountDuplicatesLast) {
  // With 3 leaves, bitcoin pairs the last with itself:
  // root = H(H(l0,l1), H(l2,l2)).
  auto l = leaves(3);
  auto four = l;
  four.push_back(l[2]);
  EXPECT_EQ(merkle_root(l), merkle_root(four));
}

TEST(Merkle, RootDependsOnOrder) {
  auto l = leaves(4);
  auto swapped = l;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(merkle_root(l), merkle_root(swapped));
}

TEST(Merkle, ProofRejectsBadIndex) {
  auto l = leaves(4);
  EXPECT_THROW(merkle_proof(l, 4), UsageError);
}

TEST(Merkle, ProofVerifiesAndRejectsWrongLeaf) {
  auto l = leaves(7);
  Hash256 root = merkle_root(l);
  MerkleProof proof = merkle_proof(l, 3);
  EXPECT_TRUE(merkle_verify(l[3], proof, root));
  EXPECT_FALSE(merkle_verify(l[2], proof, root));
}

TEST(Merkle, TamperedProofFails) {
  auto l = leaves(8);
  Hash256 root = merkle_root(l);
  MerkleProof proof = merkle_proof(l, 5);
  proof.steps[1].sibling_on_right = !proof.steps[1].sibling_on_right;
  EXPECT_FALSE(merkle_verify(l[5], proof, root));
}

class MerkleAllLeaves : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleAllLeaves, EveryLeafProvable) {
  std::size_t n = GetParam();
  auto l = leaves(n);
  Hash256 root = merkle_root(l);
  for (std::uint32_t i = 0; i < n; ++i) {
    MerkleProof proof = merkle_proof(l, i);
    EXPECT_TRUE(merkle_verify(l[i], proof, root)) << "leaf " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleAllLeaves,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 33, 64));

}  // namespace
}  // namespace fist
