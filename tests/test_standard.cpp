#include "script/standard.hpp"

#include <gtest/gtest.h>

#include "crypto/ecdsa.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

Bytes fake_compressed_pubkey(std::uint8_t fill) {
  Bytes pk(33, fill);
  pk[0] = 0x02;
  return pk;
}

TEST(Standard, ClassifyP2pkh) {
  Hash160 h = hash160(to_bytes(std::string("key")));
  Script s = make_p2pkh(h);
  Classified c = classify(s);
  EXPECT_EQ(c.type, ScriptType::P2PKH);
  EXPECT_EQ(c.hash, h);
}

TEST(Standard, ClassifyP2pkCompressedAndUncompressed) {
  Bytes compressed = fake_compressed_pubkey(0x11);
  Classified c = classify(make_p2pk(compressed));
  EXPECT_EQ(c.type, ScriptType::P2PK);
  ASSERT_EQ(c.pubkeys.size(), 1u);
  EXPECT_EQ(c.pubkeys[0], compressed);

  Bytes uncompressed(65, 0x22);
  uncompressed[0] = 0x04;
  EXPECT_EQ(classify(make_p2pk(uncompressed)).type, ScriptType::P2PK);
}

TEST(Standard, ClassifyP2sh) {
  Hash160 h = hash160(to_bytes(std::string("redeem")));
  Classified c = classify(make_p2sh(h));
  EXPECT_EQ(c.type, ScriptType::P2SH);
  EXPECT_EQ(c.hash, h);
}

TEST(Standard, ClassifyMultisig) {
  std::vector<Bytes> keys{fake_compressed_pubkey(1),
                          fake_compressed_pubkey(2),
                          fake_compressed_pubkey(3)};
  Classified c = classify(make_multisig(2, keys));
  EXPECT_EQ(c.type, ScriptType::Multisig);
  EXPECT_EQ(c.required, 2);
  EXPECT_EQ(c.pubkeys.size(), 3u);
}

TEST(Standard, ClassifyNullData) {
  Classified c = classify(make_nulldata(to_bytes(std::string("proof"))));
  EXPECT_EQ(c.type, ScriptType::NullData);
  EXPECT_EQ(classify(make_nulldata(ByteView{})).type, ScriptType::NullData);
}

TEST(Standard, NonStandardCases) {
  Script empty;
  EXPECT_EQ(classify(empty).type, ScriptType::NonStandard);

  Script weird;
  weird.op(Opcode::OP_DUP).op(Opcode::OP_DUP);
  EXPECT_EQ(classify(weird).type, ScriptType::NonStandard);

  // P2PKH with a 19-byte hash is not standard.
  Script bad;
  bad.op(Opcode::OP_DUP).op(Opcode::OP_HASH160);
  bad.push(Bytes(19, 0xaa));
  bad.op(Opcode::OP_EQUALVERIFY).op(Opcode::OP_CHECKSIG);
  EXPECT_EQ(classify(bad).type, ScriptType::NonStandard);

  // "Pubkey" of the wrong size.
  Script badpk;
  badpk.push(Bytes(30, 0x02)).op(Opcode::OP_CHECKSIG);
  EXPECT_EQ(classify(badpk).type, ScriptType::NonStandard);

  // Malformed (truncated push) classifies as nonstandard, not a crash.
  Script trunc(Bytes{25, 0x01});
  EXPECT_EQ(classify(trunc).type, ScriptType::NonStandard);
}

TEST(Standard, MultisigCountMismatchNonStandard) {
  // Declares 3 keys, provides 2.
  Script s;
  s.push_int(1);
  s.push(fake_compressed_pubkey(1));
  s.push(fake_compressed_pubkey(2));
  s.push_int(3);
  s.op(Opcode::OP_CHECKMULTISIG);
  EXPECT_EQ(classify(s).type, ScriptType::NonStandard);
}

TEST(Standard, MakeMultisigValidation) {
  std::vector<Bytes> keys{fake_compressed_pubkey(1)};
  EXPECT_THROW(make_multisig(0, keys), UsageError);
  EXPECT_THROW(make_multisig(2, keys), UsageError);
  EXPECT_THROW(make_multisig(1, {}), UsageError);
}

TEST(Standard, ExtractAddressP2pkh) {
  Hash160 h = hash160(to_bytes(std::string("k")));
  auto addr = extract_address(make_p2pkh(h));
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->type(), AddrType::P2PKH);
  EXPECT_EQ(addr->payload(), h);
}

TEST(Standard, ExtractAddressP2pkUsesPubkeyHash) {
  PrivateKey key(U256(7));
  Bytes pk = key.pubkey().serialize_compressed();
  auto addr = extract_address(make_p2pk(pk));
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->payload(), hash160(pk));
}

TEST(Standard, ExtractAddressP2sh) {
  Hash160 h = hash160(to_bytes(std::string("script")));
  auto addr = extract_address(make_p2sh(h));
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->type(), AddrType::P2SH);
}

TEST(Standard, NoAddressForMultisigAndNulldata) {
  std::vector<Bytes> keys{fake_compressed_pubkey(1),
                          fake_compressed_pubkey(2)};
  EXPECT_FALSE(extract_address(make_multisig(1, keys)).has_value());
  EXPECT_FALSE(extract_address(make_nulldata(ByteView{})).has_value());
  EXPECT_FALSE(extract_address(Script()).has_value());
}

TEST(Standard, MakeScriptForRoundTrips) {
  Hash160 h = hash160(to_bytes(std::string("addr")));
  for (AddrType t : {AddrType::P2PKH, AddrType::P2SH}) {
    Address a(t, h);
    auto back = extract_address(make_script_for(a));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
}

TEST(Standard, ScriptSigShape) {
  Bytes sig(71, 0x30);
  Bytes pk = fake_compressed_pubkey(9);
  Script s = make_p2pkh_scriptsig(sig, pk);
  auto ops = s.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].push, sig);
  EXPECT_EQ(ops[1].push, pk);
}

TEST(Standard, TypeNames) {
  EXPECT_STREQ(script_type_name(ScriptType::P2PKH), "p2pkh");
  EXPECT_STREQ(script_type_name(ScriptType::NullData), "nulldata");
}

}  // namespace
}  // namespace fist
