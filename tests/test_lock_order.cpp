// Runtime lock-hierarchy checker (src/core/lock_order.hpp). These
// tests install a recording violation handler instead of the default
// aborting one, so both the detection logic and the thread-local
// bookkeeping are testable in-process. Enforcement is forced on
// regardless of build type; teardown restores whatever was configured.
#include "core/lock_order.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace fist {
namespace {

using lockorder::Rank;

std::vector<std::pair<Rank, Rank>>& violations() {
  static std::vector<std::pair<Rank, Rank>> v;
  return v;
}

void record_violation(Rank held, Rank acquiring) {
  violations().emplace_back(held, acquiring);
}

class LockOrderTest : public testing::Test {
 protected:
  void SetUp() override {
    violations().clear();
    was_enforcing_ = lockorder::enforcing();
    lockorder::set_enforcing(true);
    previous_handler_ = lockorder::set_violation_handler(&record_violation);
  }
  void TearDown() override {
    lockorder::set_violation_handler(previous_handler_);
    lockorder::set_enforcing(was_enforcing_);
  }

 private:
  bool was_enforcing_ = false;
  lockorder::ViolationHandler previous_handler_ = nullptr;
};

TEST_F(LockOrderTest, IncreasingRanksAreClean) {
  Mutex low(Rank::kExecutorWorkerDeque);
  Mutex mid(Rank::kFaultRegistry);
  Mutex high(Rank::kObsMetricsRegistry);
  {
    LockGuard a(low);
    LockGuard b(mid);
    LockGuard c(high);
  }
  EXPECT_TRUE(violations().empty());
  EXPECT_EQ(lockorder::held_count(), 0u);
}

TEST_F(LockOrderTest, DecreasingRankIsAViolation) {
  Mutex low(Rank::kExecutorWorkerDeque);
  Mutex high(Rank::kObsTrace);
  {
    LockGuard a(high);
    LockGuard b(low);
  }
  ASSERT_EQ(violations().size(), 1u);
  EXPECT_EQ(violations()[0].first, Rank::kObsTrace);
  EXPECT_EQ(violations()[0].second, Rank::kExecutorWorkerDeque);
}

TEST_F(LockOrderTest, EqualRankIsAViolation) {
  // fist::Mutex is non-recursive and rank comparison is strict:
  // holding any lock of rank R forbids acquiring another at R.
  Mutex a(Rank::kAddrBookShard);
  Mutex b(Rank::kAddrBookShard);
  {
    LockGuard ga(a);
    LockGuard gb(b);
  }
  ASSERT_EQ(violations().size(), 1u);
  EXPECT_EQ(violations()[0].first, Rank::kAddrBookShard);
  EXPECT_EQ(violations()[0].second, Rank::kAddrBookShard);
}

TEST_F(LockOrderTest, ReleaseUnwindsSoSequentialAcquisitionsAreClean) {
  Mutex low(Rank::kExecutorInjection);
  Mutex high(Rank::kObsMetricsRegistry);
  {
    LockGuard g(high);
  }
  {
    LockGuard g(low);  // nothing held any more: clean
  }
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, UniqueLockTracksManualLockUnlock) {
  Mutex low(Rank::kExecutorSleep);
  Mutex high(Rank::kObsTrace);
  UniqueLock hold(high);
  EXPECT_EQ(lockorder::held_count(), 1u);
  hold.unlock();
  EXPECT_EQ(lockorder::held_count(), 0u);
  {
    LockGuard g(low);  // high was released: clean
  }
  hold.lock();
  EXPECT_EQ(lockorder::held_count(), 1u);
  hold.unlock();
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, HeldStackIsPerThread) {
  // A lock held on this thread must not constrain another thread.
  Mutex low(Rank::kExecutorWorkerDeque);
  Mutex high(Rank::kObsMetricsRegistry);
  UniqueLock hold(high);
  std::thread other([&] {
    EXPECT_EQ(lockorder::held_count(), 0u);
    LockGuard g(low);
    EXPECT_EQ(lockorder::held_count(), 1u);
  });
  other.join();
  hold.unlock();
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, DisabledEnforcementIsSilent) {
  lockorder::set_enforcing(false);
  Mutex low(Rank::kExecutorWorkerDeque);
  Mutex high(Rank::kObsTrace);
  {
    LockGuard a(high);
    LockGuard b(low);  // would be a violation; enforcement is off
  }
  EXPECT_TRUE(violations().empty());
}

TEST_F(LockOrderTest, RankNamesAreStable) {
  EXPECT_STREQ(lockorder::rank_name(Rank::kExecutorWorkerDeque),
               "kExecutorWorkerDeque");
  EXPECT_STREQ(lockorder::rank_name(Rank::kObsMetricsRegistry),
               "kObsMetricsRegistry");
}

}  // namespace
}  // namespace fist
