// Randomized robustness ("no crash, only ParseError") and metamorphic
// invariants. Real chains contain adversarial bytes; every parser in
// the forensic path must reject garbage with an exception, never
// corrupt state or crash. The Heuristic-2 metamorphic check verifies
// each produced label against an independent re-derivation of the
// paper's four conditions.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <unistd.h>

#include "chain/blockstore.hpp"
#include "chain/transaction.hpp"
#include "cluster/heuristic2.hpp"
#include "core/executor.hpp"
#include "encoding/base58.hpp"
#include "net/network.hpp"
#include "net/wire.hpp"
#include "script/standard.hpp"
#include "sim/world.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace fist {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, WireDecodeNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk = random_bytes(rng, rng.below(200));
    try {
      (void)net::decode_message(junk);
    } catch (const ParseError&) {
      // expected for nearly all inputs
    }
  }
}

TEST_P(FuzzSeeds, MutatedFramesRejectedOrEqual) {
  // Start from a valid frame and flip random bytes: decoding must
  // either throw ParseError or (if the mutation missed everything
  // covered by the checksum — impossible except the magic/command
  // fields, which are validated separately) produce a message.
  Rng rng(GetParam() + 1000);
  net::InvMsg m;
  m.items.push_back({net::InvKind::Tx, hash256(to_bytes(std::string("t")))});
  Bytes frame = net::encode_message(m);
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = frame;
    std::size_t pos = rng.below(mutated.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.below(8));
    mutated[pos] ^= bit;
    try {
      net::Message decoded = net::decode_message(mutated);
      // Only a mutation that cancels itself could decode; with a single
      // bit flip that cannot happen.
      FAIL() << "single-bit mutation at " << pos << " decoded";
    } catch (const ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, TransactionParserNeverCrashes) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 500; ++i) {
    Bytes junk = random_bytes(rng, rng.below(300));
    try {
      (void)Transaction::from_bytes(junk);
    } catch (const ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, TruncatedValidTransactionAlwaysThrows) {
  Rng rng(GetParam() + 3000);
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("x")));
  in.script_sig = make_p2pkh_scriptsig(Bytes(71, 1), Bytes(33, 2));
  tx.inputs.push_back(in);
  tx.outputs.push_back(
      TxOut{btc(1), make_p2pkh(hash160(to_bytes(std::string("y"))))});
  Bytes raw = tx.serialize();
  for (int i = 0; i < 50; ++i) {
    std::size_t cut = rng.below(raw.size() - 1) + 1;
    Bytes truncated(raw.begin(), raw.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)Transaction::from_bytes(truncated), ParseError);
  }
}

TEST_P(FuzzSeeds, ScriptTokenizerTotal) {
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 1000; ++i) {
    Script s(random_bytes(rng, rng.below(100)));
    // ops_checked is the no-throw interface; classify must be total.
    (void)s.ops_checked();
    (void)classify(s);
    (void)s.to_asm();
  }
}

TEST_P(FuzzSeeds, Base58DecodeTotal) {
  Rng rng(GetParam() + 5000);
  const std::string chars =
      "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz+/ ";
  for (int i = 0; i < 1000; ++i) {
    std::string s;
    std::size_t n = rng.below(40);
    for (std::size_t j = 0; j < n; ++j)
      s += chars[static_cast<std::size_t>(rng.below(chars.size()))];
    (void)base58check_decode(s);  // noexcept interface: must not throw
    (void)Address::decode(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 7, 42));

// ---- metamorphic invariant ----------------------------------------------

TEST(Metamorphic, EveryH2LabelSatisfiesThePaperConditions) {
  // Run the heuristic over a real simulated chain, then re-derive the
  // paper's four conditions independently for every label.
  sim::WorldConfig cfg;
  cfg.days = 60;
  cfg.users = 100;
  cfg.seed = 31337;
  sim::World world(cfg);
  world.run();
  ChainView view = ChainView::build(world.store());
  H2Options naive;  // the pure four-condition heuristic
  H2Result result = apply_heuristic2(view, naive);
  ASSERT_GT(result.label_count(), 100u);

  // Independent per-address first-appearance map.
  std::vector<TxIndex> first(view.address_count(), kNoTx);
  for (TxIndex t = 0; t < view.tx_count(); ++t) {
    const TxView& tx = view.tx(t);
    auto mark = [&](AddrId a) {
      if (a != kNoAddr && first[a] == kNoTx) first[a] = t;
    };
    for (const InputView& in : tx.inputs) mark(in.addr);
    for (const OutputView& out : tx.outputs) mark(out.addr);
  }

  for (const H2Label& label : result.labels) {
    const TxView& tx = view.tx(label.tx);
    // (2) not a coin generation.
    EXPECT_FALSE(tx.coinbase);
    // (1) the change address first appears in this transaction.
    EXPECT_EQ(first[label.change], label.tx);
    // (3) no self-change: no output address among the inputs.
    for (const OutputView& out : tx.outputs)
      for (const InputView& in : tx.inputs)
        EXPECT_FALSE(in.addr != kNoAddr && in.addr == out.addr);
    // (4) every other output has appeared before.
    for (const OutputView& out : tx.outputs) {
      if (out.addr == kNoAddr || out.addr == label.change) continue;
      EXPECT_LT(first[out.addr], label.tx);
    }
  }
}

TEST(FaultInjection, GossipSurvivesMessageLoss) {
  net::NetConfig cfg;
  cfg.nodes = 60;
  cfg.out_peers = 8;
  cfg.drop_rate = 0.2;  // drop a fifth of all messages
  cfg.seed = 5;
  net::P2PNetwork net(cfg);

  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});
  net.submit_tx(0, tx);
  net.run_until(120);

  EXPECT_GT(net.messages_dropped(), 0u);
  const net::Propagation* p = net.propagation(tx.txid());
  ASSERT_NE(p, nullptr);
  // Redundant gossip paths mask 20% loss almost entirely.
  EXPECT_GT(p->coverage(), 0.95);
}

// ---- blockstore corruption corpus ---------------------------------------
//
// A blk file scraped off disk arrives bit-flipped, truncated, or with
// mangled framing. Strict reads must refuse with an error naming the
// record; lenient ingest must quarantine exactly the damaged records
// and keep the rest.

/// (offset, payload length) of each record frame, by walking the file.
std::vector<std::pair<std::uint64_t, std::uint32_t>> record_frames(
    const std::filesystem::path& path) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> frames;
  std::ifstream in(path, std::ios::binary);
  std::uint64_t pos = 0;
  for (;;) {
    std::uint8_t head[8];
    in.read(reinterpret_cast<char*>(head), 8);
    if (in.gcount() < 8) break;
    std::uint32_t len = static_cast<std::uint32_t>(head[4]) |
                        (static_cast<std::uint32_t>(head[5]) << 8) |
                        (static_cast<std::uint32_t>(head[6]) << 16) |
                        (static_cast<std::uint32_t>(head[7]) << 24);
    frames.emplace_back(pos, len);
    in.seekg(len, std::ios::cur);
    pos += 8 + len;
  }
  return frames;
}

class BlockstoreFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("fist_fuzz_blk_" + std::to_string(::getpid()) + "_" +
             std::to_string(GetParam()) + ".dat");
    cleanup();
    // Coinbase-only blocks: no cross-block spends, so block damage
    // never cascades into Resolve quarantines and the expected report
    // is exactly the damaged record set.
    test::TestChain chain;
    for (std::uint32_t b = 0; b < 10; ++b) {
      chain.coinbase(b, btc(50));
      chain.next_block();
    }
    {
      FileBlockStore store(path_);
      for (const Block& b : chain.blocks()) store.append(b);
    }
    frames_ = record_frames(path_);
    ASSERT_EQ(frames_.size(), 11u);  // 10 + the trailing dummy block
  }
  void TearDown() override { cleanup(); }
  void cleanup() {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".sums");
  }
  void flip_bit(std::uint64_t offset, std::uint8_t mask) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char c;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    c = static_cast<char>(c ^ mask);
    f.write(&c, 1);
  }
  std::filesystem::path path_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> frames_;
};

TEST_P(BlockstoreFuzz, PayloadBitFlipsAreCaughtAndQuarantined) {
  Rng rng(GetParam() + 6000);
  std::set<std::size_t> damaged;
  while (damaged.size() < 3)
    damaged.insert(rng.below(frames_.size()));
  for (std::size_t r : damaged) {
    auto [off, len] = frames_[r];
    flip_bit(off + 8 + rng.below(len),
             static_cast<std::uint8_t>(1u << rng.below(8)));
  }

  FileBlockStore store(path_);
  ASSERT_TRUE(store.checksummed());
  for (std::size_t r = 0; r < frames_.size(); ++r) {
    if (!damaged.contains(r)) {
      EXPECT_NO_THROW((void)store.read(r)) << r;
      continue;
    }
    try {
      (void)store.read(r);
      FAIL() << "flipped payload of record " << r << " read back clean";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what())
                    .find("checksum mismatch at record " + std::to_string(r)),
                std::string::npos)
          << e.what();
    }
  }

  Executor exec(1);
  IngestReport report;
  ChainView view =
      ChainView::build(store, exec, RecoveryPolicy::Lenient, &report);
  std::set<std::size_t> quarantined;
  for (const Quarantined& q : report.blocks) {
    EXPECT_EQ(q.stage, Quarantined::Stage::Decode);
    quarantined.insert(q.record);
  }
  EXPECT_EQ(quarantined, damaged);
  EXPECT_TRUE(report.txs.empty());
  EXPECT_EQ(view.block_count(), frames_.size() - damaged.size());
}

TEST_P(BlockstoreFuzz, TruncatedTailKeepsTheIntactPrefix) {
  Rng rng(GetParam() + 7000);
  // Cut strictly inside a random record: everything before it survives,
  // the tail is detected as torn and dropped.
  std::size_t victim = 1 + rng.below(frames_.size() - 1);
  auto [off, len] = frames_[victim];
  std::filesystem::resize_file(path_, off + 1 + rng.below(8 + len - 1));
  std::filesystem::remove(path_.string() + ".sums");  // stale sidecar

  FileBlockStore store(path_);
  EXPECT_EQ(store.count(), victim);
  EXPECT_GT(store.scan_report().torn_tail_bytes, 0u);
  for (std::size_t r = 0; r < victim; ++r)
    EXPECT_NO_THROW((void)store.read(r)) << r;

  Executor exec(1);
  IngestReport report;
  ChainView view =
      ChainView::build(store, exec, RecoveryPolicy::Lenient, &report);
  EXPECT_FALSE(report.quarantined());
  EXPECT_EQ(view.block_count(), victim);
}

TEST_P(BlockstoreFuzz, BadMagicMidFileIsResyncedInRecoverMode) {
  Rng rng(GetParam() + 8000);
  std::size_t victim = 1 + rng.below(frames_.size() - 2);
  flip_bit(frames_[victim].first, 0xff);

  EXPECT_THROW(FileBlockStore strict(path_), ParseError);

  FileBlockStore::OpenOptions open;
  open.recover = true;
  FileBlockStore store(path_, kMainnetMagic, open);
  EXPECT_EQ(store.count(), frames_.size() - 1);
  ASSERT_FALSE(store.scan_report().skipped_ranges.empty());
  EXPECT_GT(store.scan_report().skipped_bytes(), 0u);

  Executor exec(1);
  IngestReport report;
  ChainView view =
      ChainView::build(store, exec, RecoveryPolicy::Lenient, &report);
  EXPECT_FALSE(report.quarantined());
  EXPECT_EQ(view.block_count(), store.count());
}

TEST_P(BlockstoreFuzz, RecordsPastThe2GiBBoundaryReadBack) {
  // 64-bit offset arithmetic: 33 records claiming the 64 MiB size cap
  // push the next frame past 2^31 bytes, where a 32-bit offset (or an
  // lseek taking a long) would wrap negative. The claimed payloads are
  // sparse — never written — and the opening scan only reads 8-byte
  // headers and seeks, so the test does no 2 GiB of I/O; the missing
  // sidecar on a nonempty store disables checksum verification (the
  // legacy-store path) instead of hashing 2 GiB of holes.
  cleanup();
  constexpr std::uint32_t kRecordCap = 64u << 20;  // kMaxRecordBytes
  constexpr std::size_t kSparse = 33;  // 33 * (8 + 64 MiB) > 2 GiB
  test::TestChain chain;
  chain.coinbase(0, btc(50));
  Bytes raw = chain.blocks().front().serialize();
  auto header = [](std::uint32_t len) {
    return Bytes{0xf9, 0xbe, 0xb4, 0xd9,  // kMainnetMagic, LE
                 static_cast<std::uint8_t>(len),
                 static_cast<std::uint8_t>(len >> 8),
                 static_cast<std::uint8_t>(len >> 16),
                 static_cast<std::uint8_t>(len >> 24)};
  };
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    std::uint64_t pos = 0;
    for (std::size_t i = 0; i < kSparse; ++i) {
      f.seekp(static_cast<std::streamoff>(pos));
      Bytes head = header(kRecordCap);
      f.write(reinterpret_cast<const char*>(head.data()),
              static_cast<std::streamsize>(head.size()));
      pos += 8 + kRecordCap;
    }
    ASSERT_GT(pos, 0x80000000ull);
    f.seekp(static_cast<std::streamoff>(pos));
    Bytes head = header(static_cast<std::uint32_t>(raw.size()));
    f.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
    f.write(reinterpret_cast<const char*>(raw.data()),
            static_cast<std::streamsize>(raw.size()));
    ASSERT_TRUE(f.good());
  }

  FileBlockStore store(path_);
  EXPECT_FALSE(store.checksummed());
  ASSERT_EQ(store.count(), kSparse + 1);
  EXPECT_EQ(store.scan_report().torn_tail_bytes, 0u);
  Block back = store.read(kSparse);
  EXPECT_EQ(back.serialize(), raw);
}

TEST_P(BlockstoreFuzz, TornTailMatchesInMemoryBuildAtEveryWindow) {
  // Truncate mid-record so the store's surviving prefix ends inside a
  // decode window: the windowed build over the torn store must equal
  // the in-memory build bit for bit, with nothing quarantined.
  Rng rng(GetParam() + 9000);
  std::size_t victim = 5 + rng.below(frames_.size() - 5);
  auto [off, len] = frames_[victim];
  std::filesystem::resize_file(path_, off + 1 + rng.below(8 + len - 1));
  std::filesystem::remove(path_.string() + ".sums");  // stale sidecar

  FileBlockStore store(path_);
  ASSERT_EQ(store.count(), victim);
  Executor exec(2);
  IngestReport ref_report;
  Bytes ref =
      ChainView::build(store, exec, RecoveryPolicy::Lenient, &ref_report)
          .serialize();
  for (std::uint32_t window : {1u, 4u, 64u}) {
    ChainView::BuildOptions options;
    options.window_blocks = window;
    options.recovery = RecoveryPolicy::Lenient;
    IngestReport report;
    options.report = &report;
    ChainView view = ChainView::build_windowed(store, exec, options);
    EXPECT_EQ(view.serialize(), ref) << "window " << window;
    EXPECT_FALSE(report.quarantined()) << "window " << window;
    EXPECT_EQ(view.block_count(), victim) << "window " << window;
  }
}

TEST_P(BlockstoreFuzz, ChecksumMismatchInALaterWindowQuarantines) {
  // Payload corruption in a record that only the second-or-later
  // decode window touches: the windowed lenient build must quarantine
  // exactly that record (sidecar verification fires inside the
  // window's parallel read phase) and otherwise equal the in-memory
  // lenient build.
  Rng rng(GetParam() + 10000);
  std::size_t victim = 6 + rng.below(frames_.size() - 6);  // >= window 2 at W=4
  auto [off, len] = frames_[victim];
  flip_bit(off + 8 + rng.below(len),
           static_cast<std::uint8_t>(1u << rng.below(8)));

  FileBlockStore store(path_);
  ASSERT_TRUE(store.checksummed());
  Executor exec(2);
  IngestReport ref_report;
  Bytes ref =
      ChainView::build(store, exec, RecoveryPolicy::Lenient, &ref_report)
          .serialize();
  ChainView::BuildOptions options;
  options.window_blocks = 4;
  options.recovery = RecoveryPolicy::Lenient;
  IngestReport report;
  options.report = &report;
  ChainView view = ChainView::build_windowed(store, exec, options);
  ASSERT_EQ(report.blocks.size(), 1u);
  EXPECT_EQ(report.blocks[0].record, victim);
  EXPECT_EQ(report.blocks[0].stage, Quarantined::Stage::Decode);
  EXPECT_TRUE(report.txs.empty());
  EXPECT_EQ(view.block_count(), frames_.size() - 1);
  EXPECT_EQ(view.serialize(), ref);
}

TEST_P(BlockstoreFuzz, RecoverModeResyncFeedsWindowedReads) {
  // Corrupt record framing mid-file, open in recovery mode (the store
  // resyncs to the next magic and renumbers the survivors), then build
  // through decode windows: every window size must see the resynced
  // record numbering and match the in-memory build.
  Rng rng(GetParam() + 11000);
  std::size_t victim = 1 + rng.below(frames_.size() - 2);
  flip_bit(frames_[victim].first, 0xff);

  FileBlockStore::OpenOptions open;
  open.recover = true;
  FileBlockStore store(path_, kMainnetMagic, open);
  ASSERT_EQ(store.count(), frames_.size() - 1);
  Executor exec(2);
  IngestReport ref_report;
  Bytes ref =
      ChainView::build(store, exec, RecoveryPolicy::Lenient, &ref_report)
          .serialize();
  for (std::uint32_t window : {1u, 4u, 64u}) {
    ChainView::BuildOptions options;
    options.window_blocks = window;
    options.recovery = RecoveryPolicy::Lenient;
    IngestReport report;
    options.report = &report;
    ChainView view = ChainView::build_windowed(store, exec, options);
    EXPECT_EQ(view.serialize(), ref) << "window " << window;
    EXPECT_FALSE(report.quarantined()) << "window " << window;
    EXPECT_EQ(view.block_count(), store.count()) << "window " << window;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockstoreFuzz, ::testing::Values(1, 7, 42));

TEST(FaultInjection, TotalLossStopsPropagation) {
  net::NetConfig cfg;
  cfg.nodes = 30;
  cfg.drop_rate = 1.0;
  cfg.seed = 5;
  net::P2PNetwork net(cfg);
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});
  net.submit_tx(0, tx);
  net.run_until(60);
  const net::Propagation* p = net.propagation(tx.txid());
  ASSERT_NE(p, nullptr);
  // Only the originator ever sees it.
  EXPECT_LT(p->coverage(), 0.05);
}

}  // namespace
}  // namespace fist
