// Randomized robustness ("no crash, only ParseError") and metamorphic
// invariants. Real chains contain adversarial bytes; every parser in
// the forensic path must reject garbage with an exception, never
// corrupt state or crash. The Heuristic-2 metamorphic check verifies
// each produced label against an independent re-derivation of the
// paper's four conditions.
#include <gtest/gtest.h>

#include "chain/transaction.hpp"
#include "cluster/heuristic2.hpp"
#include "encoding/base58.hpp"
#include "net/network.hpp"
#include "net/wire.hpp"
#include "script/standard.hpp"
#include "sim/world.hpp"
#include "util/rng.hpp"

namespace fist {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, WireDecodeNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    Bytes junk = random_bytes(rng, rng.below(200));
    try {
      (void)net::decode_message(junk);
    } catch (const ParseError&) {
      // expected for nearly all inputs
    }
  }
}

TEST_P(FuzzSeeds, MutatedFramesRejectedOrEqual) {
  // Start from a valid frame and flip random bytes: decoding must
  // either throw ParseError or (if the mutation missed everything
  // covered by the checksum — impossible except the magic/command
  // fields, which are validated separately) produce a message.
  Rng rng(GetParam() + 1000);
  net::InvMsg m;
  m.items.push_back({net::InvKind::Tx, hash256(to_bytes(std::string("t")))});
  Bytes frame = net::encode_message(m);
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = frame;
    std::size_t pos = rng.below(mutated.size());
    std::uint8_t bit = static_cast<std::uint8_t>(1u << rng.below(8));
    mutated[pos] ^= bit;
    try {
      net::Message decoded = net::decode_message(mutated);
      // Only a mutation that cancels itself could decode; with a single
      // bit flip that cannot happen.
      FAIL() << "single-bit mutation at " << pos << " decoded";
    } catch (const ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, TransactionParserNeverCrashes) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 500; ++i) {
    Bytes junk = random_bytes(rng, rng.below(300));
    try {
      (void)Transaction::from_bytes(junk);
    } catch (const ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, TruncatedValidTransactionAlwaysThrows) {
  Rng rng(GetParam() + 3000);
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("x")));
  in.script_sig = make_p2pkh_scriptsig(Bytes(71, 1), Bytes(33, 2));
  tx.inputs.push_back(in);
  tx.outputs.push_back(
      TxOut{btc(1), make_p2pkh(hash160(to_bytes(std::string("y"))))});
  Bytes raw = tx.serialize();
  for (int i = 0; i < 50; ++i) {
    std::size_t cut = rng.below(raw.size() - 1) + 1;
    Bytes truncated(raw.begin(), raw.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)Transaction::from_bytes(truncated), ParseError);
  }
}

TEST_P(FuzzSeeds, ScriptTokenizerTotal) {
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 1000; ++i) {
    Script s(random_bytes(rng, rng.below(100)));
    // ops_checked is the no-throw interface; classify must be total.
    (void)s.ops_checked();
    (void)classify(s);
    (void)s.to_asm();
  }
}

TEST_P(FuzzSeeds, Base58DecodeTotal) {
  Rng rng(GetParam() + 5000);
  const std::string chars =
      "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz+/ ";
  for (int i = 0; i < 1000; ++i) {
    std::string s;
    std::size_t n = rng.below(40);
    for (std::size_t j = 0; j < n; ++j)
      s += chars[static_cast<std::size_t>(rng.below(chars.size()))];
    (void)base58check_decode(s);  // noexcept interface: must not throw
    (void)Address::decode(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 7, 42));

// ---- metamorphic invariant ----------------------------------------------

TEST(Metamorphic, EveryH2LabelSatisfiesThePaperConditions) {
  // Run the heuristic over a real simulated chain, then re-derive the
  // paper's four conditions independently for every label.
  sim::WorldConfig cfg;
  cfg.days = 60;
  cfg.users = 100;
  cfg.seed = 31337;
  sim::World world(cfg);
  world.run();
  ChainView view = ChainView::build(world.store());
  H2Options naive;  // the pure four-condition heuristic
  H2Result result = apply_heuristic2(view, naive);
  ASSERT_GT(result.label_count(), 100u);

  // Independent per-address first-appearance map.
  std::vector<TxIndex> first(view.address_count(), kNoTx);
  for (TxIndex t = 0; t < view.tx_count(); ++t) {
    const TxView& tx = view.tx(t);
    auto mark = [&](AddrId a) {
      if (a != kNoAddr && first[a] == kNoTx) first[a] = t;
    };
    for (const InputView& in : tx.inputs) mark(in.addr);
    for (const OutputView& out : tx.outputs) mark(out.addr);
  }

  for (const H2Label& label : result.labels) {
    const TxView& tx = view.tx(label.tx);
    // (2) not a coin generation.
    EXPECT_FALSE(tx.coinbase);
    // (1) the change address first appears in this transaction.
    EXPECT_EQ(first[label.change], label.tx);
    // (3) no self-change: no output address among the inputs.
    for (const OutputView& out : tx.outputs)
      for (const InputView& in : tx.inputs)
        EXPECT_FALSE(in.addr != kNoAddr && in.addr == out.addr);
    // (4) every other output has appeared before.
    for (const OutputView& out : tx.outputs) {
      if (out.addr == kNoAddr || out.addr == label.change) continue;
      EXPECT_LT(first[out.addr], label.tx);
    }
  }
}

TEST(FaultInjection, GossipSurvivesMessageLoss) {
  net::NetConfig cfg;
  cfg.nodes = 60;
  cfg.out_peers = 8;
  cfg.drop_rate = 0.2;  // drop a fifth of all messages
  cfg.seed = 5;
  net::P2PNetwork net(cfg);

  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});
  net.submit_tx(0, tx);
  net.run_until(120);

  EXPECT_GT(net.messages_dropped(), 0u);
  const net::Propagation* p = net.propagation(tx.txid());
  ASSERT_NE(p, nullptr);
  // Redundant gossip paths mask 20% loss almost entirely.
  EXPECT_GT(p->coverage(), 0.95);
}

TEST(FaultInjection, TotalLossStopsPropagation) {
  net::NetConfig cfg;
  cfg.nodes = 30;
  cfg.drop_rate = 1.0;
  cfg.seed = 5;
  net::P2PNetwork net(cfg);
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(1), Script()});
  net.submit_tx(0, tx);
  net.run_until(60);
  const net::Propagation* p = net.propagation(tx.txid());
  ASSERT_NE(p, nullptr);
  // Only the originator ever sees it.
  EXPECT_LT(p->coverage(), 0.05);
}

}  // namespace
}  // namespace fist
