#include "crypto/ripemd160.hpp"

#include <gtest/gtest.h>

#include "util/hex.hpp"

namespace fist {
namespace {

std::string rip(const std::string& s) {
  return to_hex(ByteView(ripemd160(to_bytes(s))));
}

// Vectors from the RIPEMD-160 reference publication (Dobbertin et al.).
TEST(Ripemd160, ReferenceVectors) {
  EXPECT_EQ(rip(""), "9c1185a5c5e9fc54612808977ee8f548b2258d31");
  EXPECT_EQ(rip("a"), "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe");
  EXPECT_EQ(rip("abc"), "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
  EXPECT_EQ(rip("message digest"),
            "5d0689ef49d2fae572b881b123a85ffa21595f36");
  EXPECT_EQ(rip("abcdefghijklmnopqrstuvwxyz"),
            "f71c27109c692c1b56bbdceb5b9d2865b3708dbc");
  EXPECT_EQ(rip("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "12a053384a9c0c88e405a06c27dcf49ada62eb2b");
  EXPECT_EQ(
      rip("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "b0e20b6e3116640286ed3a87a5713079b21f5189");
}

TEST(Ripemd160, MillionAs) {
  Bytes m(1'000'000, 'a');
  EXPECT_EQ(to_hex(ByteView(ripemd160(m))),
            "52783243c1697bdbe16d37f97f68f08325dc1528");
}

TEST(Ripemd160, EightDigitsTimes8) {
  std::string s;
  for (int i = 0; i < 8; ++i) s += "1234567890";
  EXPECT_EQ(rip(s), "9b752e45573d4b39f4dbd3323cab82bf63326bfb");
}

TEST(Ripemd160, StreamingMatchesOneShot) {
  Bytes data(300);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  Ripemd160 h;
  h.write(ByteView(data.data(), 100));
  h.write(ByteView(data.data() + 100, 200));
  EXPECT_EQ(h.finish(), ripemd160(data));
}

TEST(Ripemd160, ResetAllowsReuse) {
  Ripemd160 h;
  h.write(to_bytes(std::string("junk")));
  (void)h.finish();
  h.reset();
  h.write(to_bytes(std::string("abc")));
  EXPECT_EQ(to_hex(ByteView(h.finish())),
            "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc");
}

}  // namespace
}  // namespace fist
