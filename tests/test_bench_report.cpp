// The bench report writer is what the CI trend gate consumes: every
// BENCH_<name>.json must carry peak_rss_bytes (even the pipeline-less
// form a bench writes on an early quarantine exit) and must appear
// atomically — a reader, or a re-run over a previously torn file, must
// never see a truncated document at the final path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common.hpp"
#include "core/obs/rss.hpp"

namespace fist::bench {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class BenchReport : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fist_bench_report_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    ::setenv("FISTFUL_BENCH_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("FISTFUL_BENCH_DIR");
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

TEST_F(BenchReport, PipelinelessReportStillCarriesPeakRss) {
  // The form a bench falls back to when it bails out before the
  // pipeline (early quarantine exit): no stages, no throughput — but
  // the memory gauge and the metrics registry must still be there.
  write_bench_report("rss_unit");
  std::filesystem::path path = dir_ / "BENCH_rss_unit.json";
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  std::string json = slurp(path);

  std::size_t field = json.find("\"peak_rss_bytes\": ");
  ASSERT_NE(field, std::string::npos);
  std::uint64_t reported =
      std::strtoull(json.c_str() + field + 18, nullptr, 10);
  EXPECT_GT(reported, 0u);  // VmHWM is always available on Linux
  EXPECT_LE(reported, obs::peak_rss_bytes());

  EXPECT_NE(json.find("\"metrics\": "), std::string::npos);
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");  // complete document
}

TEST_F(BenchReport, CarriesRunMetadataBlock) {
  // The `run` block records the configuration behind the numbers. It
  // is non-numeric on purpose: scripts/check_bench_trend.py must skip
  // it rather than gate on it.
  ::setenv("FISTFUL_BENCH_SCALE", "small", 1);
  ::setenv("FISTFUL_BENCH_WINDOW", "64", 1);
  write_bench_report("runmeta");
  ::unsetenv("FISTFUL_BENCH_SCALE");
  ::unsetenv("FISTFUL_BENCH_WINDOW");
  std::string json = slurp(dir_ / "BENCH_runmeta.json");
  EXPECT_NE(json.find("\"run\": {\"threads\": "), std::string::npos);
  EXPECT_NE(json.find("\"scale\": \"small\""), std::string::npos);
  EXPECT_NE(json.find("\"window_blocks\": 64"), std::string::npos);
  // CMake stamps the configured build type into the test binary too.
  EXPECT_NE(json.find("\"build_type\": \""), std::string::npos);
}

TEST_F(BenchReport, TruncatedPreexistingReportIsReplacedWhole) {
  // A previously torn write (or a killed bench) left a partial JSON at
  // the final path; the next write must replace it with a complete
  // document, never append to or extend the fragment.
  std::filesystem::path path = dir_ / "BENCH_trunc.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\n  \"bench\": \"trunc\",\n  \"total_ms\": 12";  // torn
  }
  write_bench_report("trunc");
  std::string json = slurp(path);
  EXPECT_EQ(json.rfind("{\n  \"bench\": \"trunc\""), 0u);
  EXPECT_NE(json.find("\"peak_rss_bytes\": "), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  EXPECT_EQ(json.find("\"total_ms\": 12,"), std::string::npos);
}

TEST_F(BenchReport, UnwritableDirectoryLeavesNoPartialFile) {
  std::filesystem::path missing = dir_ / "does_not_exist";
  ::setenv("FISTFUL_BENCH_DIR", missing.c_str(), 1);
  write_bench_report("ghost");  // must not throw
  EXPECT_FALSE(std::filesystem::exists(missing / "BENCH_ghost.json"));
  EXPECT_FALSE(std::filesystem::exists(missing / "BENCH_ghost.json.tmp"));
}

}  // namespace
}  // namespace fist::bench
