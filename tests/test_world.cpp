#include "sim/world.hpp"

#include <gtest/gtest.h>

#include "chain/view.hpp"
#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist::sim {
namespace {

WorldConfig tiny() {
  WorldConfig cfg;
  cfg.days = 40;
  cfg.users = 60;
  cfg.blocks_per_day = 8;
  cfg.seed = 123;
  return cfg;
}

TEST(World, RunsAndValidatesEveryBlock) {
  // ChainState::connect throws on any consensus violation, so a clean
  // run is itself a strong invariant: no double spends, value
  // conserved, coinbases within subsidy+fees, PoW valid.
  World world(tiny());
  EXPECT_NO_THROW(world.run());
  EXPECT_EQ(world.store().count(),
            static_cast<std::size_t>(tiny().days * tiny().blocks_per_day));
  EXPECT_GT(world.tx_count(), 500u);
}

TEST(World, MoneySupplyConservation) {
  World world(tiny());
  world.run();
  const ChainStats& stats = world.chainstate().stats();
  Amount utxo = world.chainstate().utxos().total_value();
  // Coinbases mint subsidy + claimed fees; dust folded into fees that
  // miners did not claim is burnt. So the supply sits between
  // minted - total_fees (everything burnt) and minted (nothing burnt).
  EXPECT_LE(utxo, stats.minted);
  EXPECT_GE(utxo, stats.minted - stats.total_fees);
  EXPECT_GT(stats.total_fees, 0);
}

TEST(World, DeterministicForSeed) {
  World a(tiny()), b(tiny());
  a.run();
  b.run();
  ASSERT_EQ(a.store().count(), b.store().count());
  // Final block hashes must agree bit for bit.
  EXPECT_EQ(a.store().read(a.store().count() - 1).header.hash(),
            b.store().read(b.store().count() - 1).header.hash());
  EXPECT_EQ(a.tx_count(), b.tx_count());
}

TEST(World, DifferentSeedsDiverge) {
  WorldConfig other = tiny();
  other.seed = 321;
  World a(tiny()), b(other);
  a.run();
  b.run();
  EXPECT_NE(a.store().read(a.store().count() - 1).header.hash(),
            b.store().read(b.store().count() - 1).header.hash());
}

TEST(World, GroundTruthCoversAllObservedAddresses) {
  World world(tiny());
  world.run();
  ChainView view = ChainView::build(world.store());
  std::size_t unknown = 0;
  for (AddrId a = 0; a < view.address_count(); ++a) {
    if (world.truth().owner(view.addresses().lookup(a)) == kNoActor)
      ++unknown;
  }
  EXPECT_EQ(unknown, 0u);
}

TEST(World, ServiceDirectoryIsPopulated) {
  World world(tiny());
  EXPECT_FALSE(world.of_category(Category::Mining).empty());
  EXPECT_FALSE(world.of_category(Category::BankExchange).empty());
  EXPECT_FALSE(world.of_category(Category::Gambling).empty());
  EXPECT_NE(world.find_actor("Mt. Gox"), nullptr);
  EXPECT_NE(world.find_actor("Satoshi Dice"), nullptr);
  EXPECT_NE(world.find_actor("Silk Road"), nullptr);
  EXPECT_EQ(world.find_actor("Nonexistent"), nullptr);
}

TEST(World, SelfChangeShareNearConfig) {
  WorldConfig cfg = tiny();
  cfg.days = 60;
  World world(cfg);
  world.run();
  ChainView view = ChainView::build(world.store());
  std::uint64_t spends = 0, self_change = 0;
  for (const TxView& tx : view.txs()) {
    if (tx.coinbase) continue;
    ++spends;
    bool self = false;
    for (const OutputView& out : tx.outputs)
      for (const InputView& in : tx.inputs)
        if (in.addr != kNoAddr && in.addr == out.addr) self = true;
    if (self) ++self_change;
  }
  double share = static_cast<double>(self_change) /
                 static_cast<double>(spends);
  // Config targets ~21% of *user* spends; service traffic dilutes and
  // dice games concentrate, so accept a broad band around the paper's
  // 23% observation.
  EXPECT_GT(share, 0.08);
  EXPECT_LT(share, 0.45);
}

TEST(World, TagFeedHasAllSourceClasses) {
  World world(tiny());
  world.run();
  std::size_t observed = 0, scraped = 0;
  for (const TagEntry& e : world.tag_feed()) {
    if (e.tag.source == TagSource::Observed) ++observed;
    if (e.tag.source == TagSource::Scraped) ++scraped;
  }
  EXPECT_GT(observed, 10u);   // probe interactions
  EXPECT_GT(scraped, 100u);   // feed scrape
}

TEST(World, BlocksCarryMonotonicTimestamps) {
  World world(tiny());
  world.run();
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < world.store().count(); ++i) {
    Block b = world.store().read(i);
    EXPECT_GE(b.header.time, prev);
    prev = b.header.time;
  }
}

TEST(World, RunDayIsIncremental) {
  World world(tiny());
  world.run_day();
  EXPECT_EQ(world.day(), 1);
  EXPECT_EQ(world.store().count(),
            static_cast<std::size_t>(tiny().blocks_per_day));
}

TEST(World, ActorAccessorBounds) {
  World world(tiny());
  EXPECT_THROW(world.actor(999'999), UsageError);
}

TEST(SpenderAddress, ExtractsFromP2pkhScriptSig) {
  Bytes pubkey(33, 0x02);
  Script sig = make_p2pkh_scriptsig(Bytes(71, 0x30), pubkey);
  auto addr = spender_address(sig);
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->payload(), hash160(pubkey));

  // Garbage scriptSigs yield nothing.
  Script junk;
  junk.push(to_bytes(std::string("x")));
  EXPECT_FALSE(spender_address(junk).has_value());
  EXPECT_FALSE(spender_address(Script()).has_value());
}

}  // namespace
}  // namespace fist::sim
