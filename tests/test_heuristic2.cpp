#include "cluster/heuristic2.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

AddrId id_of(const ChainView& view, std::uint32_t i) {
  auto found = view.addresses().find(test::addr(i));
  return found ? *found : kNoAddr;
}

// Canonical setup: addr 2 is made "seen" in advance, then addr 1 spends
// a coin into {seen addr 2, fresh addr 3}; 3 is the one-time change.
struct ClassicPeel {
  TestChain chain;
  ChainView view;

  ClassicPeel() {
    auto c1 = chain.coinbase(1, btc(50));
    chain.coinbase(2, btc(1));  // addr 2 appears here
    chain.next_block();
    chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});
    view = chain.view();
  }
};

TEST(Heuristic2, LabelsClassicChange) {
  ClassicPeel f;
  H2Result r = apply_heuristic2(f.view, H2Options{});
  ASSERT_EQ(r.labels.size(), 1u);
  EXPECT_EQ(r.labels[0].change, id_of(f.view, 3));
  EXPECT_EQ(r.change_of_tx[r.labels[0].tx], id_of(f.view, 3));
}

TEST(Heuristic2, UniteLinksInputsWithChange) {
  ClassicPeel f;
  H2Result r = apply_heuristic2(f.view, H2Options{});
  UnionFind uf(f.view.address_count());
  std::uint64_t merges = unite_h2_labels(f.view, r, uf);
  EXPECT_EQ(merges, 1u);
  EXPECT_TRUE(uf.same(id_of(f.view, 1), id_of(f.view, 3)));
  EXPECT_FALSE(uf.same(id_of(f.view, 1), id_of(f.view, 2)));
}

TEST(Heuristic2, SkipsCoinbase) {
  TestChain chain;
  chain.coinbase(1, btc(50));
  ChainView view = chain.view();
  H2Result r = apply_heuristic2(view, H2Options{});
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.skipped.coinbase, 1u);
}

TEST(Heuristic2, SkipsSelfChange) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.coinbase(2, btc(1));
  chain.next_block();
  // Change back to the input address 1 itself; 2 already seen.
  chain.spend({c1}, {{2, btc(10)}, {1, btc(40)}});
  ChainView view = chain.view();
  H2Result r = apply_heuristic2(view, H2Options{});
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.skipped.self_change, 1u);
}

TEST(Heuristic2, AmbiguousWhenTwoOutputsFresh) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});  // both fresh
  ChainView view = chain.view();
  H2Result r = apply_heuristic2(view, H2Options{});
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.skipped.ambiguous, 1u);
}

TEST(Heuristic2, NoCandidateWhenAllOutputsSeen) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.coinbase(2, btc(1));
  chain.coinbase(3, btc(1));
  chain.next_block();
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});
  ChainView view = chain.view();
  H2Result r = apply_heuristic2(view, H2Options{});
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.skipped.no_candidate, 1u);
}

TEST(Heuristic2, SingleFreshOutputSweepIsLabeled) {
  // The paper's definition places no minimum on output count.
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({c1}, {{9, btc(49)}});
  ChainView view = chain.view();
  H2Result r = apply_heuristic2(view, H2Options{});
  ASSERT_EQ(r.labels.size(), 1u);
  EXPECT_EQ(r.labels[0].change, id_of(view, 9));
}

TEST(Heuristic2, MinOutputsOptionExcludesSweeps) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({c1}, {{9, btc(49)}});
  ChainView view = chain.view();
  H2Options opt;
  opt.min_outputs = 2;
  H2Result r = apply_heuristic2(view, opt);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.skipped.too_few_outputs, 1u);
}

TEST(Heuristic2, FalsePositiveWhenChangeReceivesAgain) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  auto c4 = chain.coinbase(4, btc(5));
  chain.coinbase(2, btc(1));
  chain.next_block();
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});  // 3 labeled change
  chain.next_block();
  chain.spend({c4}, {{3, btc(4)}});  // 3 receives again → FP
  ChainView view = chain.view();

  H2Options opt;
  H2Result r = apply_heuristic2(view, opt);
  // Both the peel and the later one-output sweep produce labels; find
  // the one for address 3's first receipt.
  H2FalsePositives fp = estimate_h2_false_positives(view, r, opt);
  EXPECT_GE(fp.labels, 1u);
  EXPECT_EQ(fp.false_positives, 1u);
  EXPECT_GT(fp.rate(), 0.0);
}

TEST(Heuristic2, DiceExemptionSuppressesRebounds) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  auto dice_coin = chain.coinbase(77, btc(5));  // the dice bankroll
  chain.coinbase(2, btc(1));
  chain.next_block();
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});  // label 3
  chain.next_block();
  // Dice payout: a tx whose only input address is the dice address 77,
  // paying address 3 (the rebound).
  chain.spend({dice_coin}, {{3, btc(4)}});
  ChainView view = chain.view();

  std::unordered_set<AddrId> dice{id_of(view, 77)};

  H2Options naive;
  H2FalsePositives fp_naive = estimate_h2_false_positives(
      view, apply_heuristic2(view, naive, dice), naive, dice);
  EXPECT_EQ(fp_naive.false_positives, 1u);

  H2Options exempt;
  exempt.exempt_dice_rebounds = true;
  H2FalsePositives fp_exempt = estimate_h2_false_positives(
      view, apply_heuristic2(view, exempt, dice), exempt, dice);
  EXPECT_EQ(fp_exempt.false_positives, 0u);
}

TEST(Heuristic2, WaitWindowVetoesQuickReuse) {
  TestChain chain(kGenesisTime, kHour);  // 1h blocks: reuse within a day
  auto c1 = chain.coinbase(1, btc(50));
  auto c4 = chain.coinbase(4, btc(5));
  chain.coinbase(2, btc(1));
  chain.next_block();
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});
  chain.next_block();                 // +1h
  chain.spend({c4}, {{3, btc(4)}});   // re-receipt 1h later
  ChainView view = chain.view();

  H2Options wait;
  wait.wait_window = kDay;
  H2Result r = apply_heuristic2(view, wait);
  // The label for address 3 must have been vetoed by the window.
  for (const H2Label& label : r.labels)
    EXPECT_NE(label.change, id_of(view, 3));
  EXPECT_GE(r.skipped.window_veto, 1u);

  // With slow reuse (1-day blocks), the label survives but counts as a
  // false positive afterwards.
  TestChain slow(kGenesisTime, 2 * kDay);
  auto s1 = slow.coinbase(1, btc(50));
  auto s4 = slow.coinbase(4, btc(5));
  slow.coinbase(2, btc(1));
  slow.next_block();
  slow.spend({s1}, {{2, btc(10)}, {3, btc(40)}});
  slow.next_block();  // +2 days
  slow.spend({s4}, {{3, btc(4)}});
  ChainView slow_view = slow.view();
  H2Result r2 = apply_heuristic2(slow_view, wait);
  bool labeled3 = false;
  for (const H2Label& label : r2.labels)
    labeled3 |= label.change == id_of(slow_view, 3);
  EXPECT_TRUE(labeled3);
  H2FalsePositives fp = estimate_h2_false_positives(slow_view, r2, wait);
  EXPECT_EQ(fp.false_positives, 1u);
}

TEST(Heuristic2, ReusedChangeGuardSkips) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  auto c5 = chain.coinbase(5, btc(9));
  chain.next_block();
  // addr 6 receives exactly once...
  chain.spend({c5}, {{6, btc(8)}});
  chain.next_block();
  // ...then appears as an output beside fresh addr 7: exactly-one-prior-
  // receipt pattern → the guard must refuse to label 7.
  chain.spend({c1}, {{6, btc(10)}, {7, btc(40)}});
  ChainView view = chain.view();

  H2Options guarded;
  guarded.guard_reused_change = true;
  H2Result r = apply_heuristic2(view, guarded);
  for (const H2Label& label : r.labels)
    EXPECT_NE(label.change, id_of(view, 7));
  EXPECT_EQ(r.skipped.reused_guard, 1u);

  // Without the guard the label is produced.
  H2Result naive = apply_heuristic2(view, H2Options{});
  bool labeled7 = false;
  for (const H2Label& label : naive.labels)
    labeled7 |= label.change == id_of(view, 7);
  EXPECT_TRUE(labeled7);
}

TEST(Heuristic2, SelfChangeHistoryGuardSkips) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(20));
  auto c9 = chain.coinbase(9, btc(30));
  chain.coinbase(2, btc(1));
  chain.next_block();
  // addr 9 self-changes (appears as input and output).
  auto c9b = chain.spend({c9}, {{2, btc(5)}, {9, btc(24)}});
  (void)c9b;
  chain.next_block();
  // Later, 9 appears as an output beside fresh 8.
  chain.spend({c1}, {{9, btc(3)}, {8, btc(16)}});
  ChainView view = chain.view();

  H2Options guarded;
  guarded.guard_self_change_history = true;
  H2Result r = apply_heuristic2(view, guarded);
  for (const H2Label& label : r.labels)
    EXPECT_NE(label.change, id_of(view, 8));
  EXPECT_EQ(r.skipped.self_change_history_guard, 1u);
}

TEST(Heuristic2, FutureReuseDisambiguation) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  auto c4 = chain.coinbase(4, btc(9));
  chain.next_block();
  // Two fresh outputs: 2 (a deposit address, reused later) and 3 (true
  // one-time change).
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});
  chain.next_block();
  chain.spend({c4}, {{2, btc(8)}});  // 2 receives again
  ChainView view = chain.view();

  H2Options plain;
  H2Result ambiguous = apply_heuristic2(view, plain);
  EXPECT_GE(ambiguous.skipped.ambiguous, 1u);

  H2Options resolving;
  resolving.resolve_ambiguous_via_future = true;
  H2Result r = apply_heuristic2(view, resolving);
  bool labeled3 = false;
  for (const H2Label& label : r.labels)
    labeled3 |= label.change == id_of(view, 3);
  EXPECT_TRUE(labeled3);
}

TEST(Heuristic2, FutureReuseKeepsAmbiguityWhenBothClean) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(50));
  chain.next_block();
  chain.spend({c1}, {{2, btc(10)}, {3, btc(40)}});  // both never reused
  ChainView view = chain.view();
  H2Options resolving;
  resolving.resolve_ambiguous_via_future = true;
  H2Result r = apply_heuristic2(view, resolving);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(r.skipped.ambiguous, 1u);
}

TEST(Heuristic2, ChangeOfTxSizeMatchesViewAndDefaultsToNoAddr) {
  ClassicPeel f;
  H2Result r = apply_heuristic2(f.view, H2Options{});
  EXPECT_EQ(r.change_of_tx.size(), f.view.tx_count());
  std::size_t labeled = 0;
  for (AddrId a : r.change_of_tx)
    if (a != kNoAddr) ++labeled;
  EXPECT_EQ(labeled, r.labels.size());
}

}  // namespace
}  // namespace fist
