#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace fist::sim {
namespace {

// A mid-size world exercising the hoard and every theft scenario; shared
// across tests (building it once keeps the suite fast).
class ScenarioWorld : public ::testing::Test {
 protected:
  static World& world() {
    static World* w = [] {
      WorldConfig cfg;
      cfg.days = 160;
      cfg.users = 220;
      cfg.blocks_per_day = 10;
      cfg.seed = 99;
      auto* world = new World(cfg);
      world->run();
      return world;
    }();
    return *w;
  }
};

TEST_F(ScenarioWorld, DefaultTheftBookMatchesTable3) {
  std::vector<TheftScenario> book = default_thefts();
  ASSERT_EQ(book.size(), 7u);
  EXPECT_EQ(book[0].label, "MyBitcoin");
  EXPECT_DOUBLE_EQ(book[0].btc, 4019);
  EXPECT_EQ(book[0].movement, "A/P/S");
  EXPECT_EQ(book[2].label, "Betcoin");
  EXPECT_EQ(book[2].movement, "F/A/P");
  EXPECT_EQ(book[6].label, "Trojan");
  EXPECT_FALSE(book[6].to_exchange);
  EXPECT_GT(book[6].dormant_fraction, 0.8);
}

TEST_F(ScenarioWorld, AllTheftsExecuted) {
  ASSERT_EQ(world().thefts().size(), 7u);
  for (const TheftRecord& rec : world().thefts()) {
    EXPECT_GT(rec.stolen, 0) << rec.scenario.label;
    EXPECT_FALSE(rec.theft_txids.empty()) << rec.scenario.label;
    EXPECT_FALSE(rec.thief_addresses.empty()) << rec.scenario.label;
  }
}

TEST_F(ScenarioWorld, MovementsExecutedAsScripted) {
  for (const TheftRecord& rec : world().thefts()) {
    // The executed phases equal the scenario string (modulo formatting).
    std::string expected = rec.scenario.movement;
    EXPECT_EQ(rec.executed_movement, expected) << rec.scenario.label;
  }
}

TEST_F(ScenarioWorld, ExchangeBoundThievesReachExchanges) {
  for (const TheftRecord& rec : world().thefts()) {
    if (rec.scenario.to_exchange)
      EXPECT_FALSE(rec.exchange_peels.empty()) << rec.scenario.label;
    else
      EXPECT_TRUE(rec.exchange_peels.empty()) << rec.scenario.label;
  }
}

TEST_F(ScenarioWorld, TrojanLootMostlyDormant) {
  const TheftRecord* trojan = nullptr;
  for (const TheftRecord& rec : world().thefts())
    if (rec.scenario.label == "Trojan") trojan = &rec;
  ASSERT_NE(trojan, nullptr);
  EXPECT_GT(trojan->dormant, trojan->stolen / 2);
}

TEST_F(ScenarioWorld, HoardAccumulatesAndDissolves) {
  const HoardRecord* hoard = world().hoard();
  ASSERT_NE(hoard, nullptr);
  EXPECT_GT(hoard->peak_balance, btc(100));
  EXPECT_GT(hoard->deposit_txids.size(), 3u);
  // The dissolution happened: withdrawals plus the final split.
  EXPECT_GE(hoard->withdrawal_txids.size(), 6u);
  EXPECT_FALSE(hoard->final_split_txid.is_null());
}

TEST_F(ScenarioWorld, HoardRunsThreePeelingChains) {
  const HoardRecord* hoard = world().hoard();
  ASSERT_NE(hoard, nullptr);
  int per_chain[3] = {0, 0, 0};
  for (const PeelTruth& p : hoard->peels) {
    ASSERT_GE(p.chain, 0);
    ASSERT_LT(p.chain, 3);
    ++per_chain[p.chain];
  }
  for (int c = 0; c < 3; ++c)
    EXPECT_GT(per_chain[c], 50) << "chain " << c;
}

TEST_F(ScenarioWorld, HoardPeelsIncludePaperServices) {
  const HoardRecord* hoard = world().hoard();
  ASSERT_NE(hoard, nullptr);
  std::size_t gox = 0, named = 0;
  for (const PeelTruth& p : hoard->peels) {
    if (!p.service.empty()) ++named;
    if (p.service == "Mt. Gox") ++gox;
  }
  EXPECT_GT(named, 30u);
  EXPECT_GT(gox, 5u);  // Mt. Gox dominates, as in Table 2
}

TEST_F(ScenarioWorld, DisablingScenariosRemovesThem) {
  WorldConfig cfg;
  cfg.days = 10;
  cfg.users = 20;
  cfg.enable_hoard = false;
  cfg.enable_thefts = false;
  cfg.enable_probe = false;
  World world(cfg);
  world.run();
  EXPECT_EQ(world.hoard(), nullptr);
  EXPECT_TRUE(world.thefts().empty());
}

}  // namespace
}  // namespace fist::sim
