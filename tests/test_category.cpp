#include "tag/category.hpp"

#include <gtest/gtest.h>

namespace fist {
namespace {

TEST(Category, NamesMatchFigure2Legend) {
  EXPECT_EQ(category_name(Category::BankExchange), "exchanges");
  EXPECT_EQ(category_name(Category::Mining), "mining");
  EXPECT_EQ(category_name(Category::Wallet), "wallets");
  EXPECT_EQ(category_name(Category::Gambling), "gambling");
  EXPECT_EQ(category_name(Category::Vendor), "vendors");
  EXPECT_EQ(category_name(Category::FixedExchange), "fixed");
  EXPECT_EQ(category_name(Category::Investment), "investment");
}

TEST(Category, RoundTripThroughName) {
  for (std::size_t i = 0; i < kCategoryCount; ++i) {
    Category c = category_at(i);
    auto back = category_from_name(category_name(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
}

TEST(Category, FromNameRejectsUnknown) {
  EXPECT_FALSE(category_from_name("nonsense").has_value());
  EXPECT_FALSE(category_from_name("").has_value());
}

TEST(Category, ExchangePredicate) {
  EXPECT_TRUE(is_exchange(Category::BankExchange));
  EXPECT_TRUE(is_exchange(Category::FixedExchange));
  EXPECT_FALSE(is_exchange(Category::Wallet));
  EXPECT_FALSE(is_exchange(Category::Gambling));
  EXPECT_FALSE(is_exchange(Category::User));
}

}  // namespace
}  // namespace fist
