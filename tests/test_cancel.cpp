// Concurrent-cancellation hammering. The pipeline's strict-mode
// teardown calls Executor::request_cancel from whichever thread hit
// the fault while other threads may be scraping metrics for progress
// reporting — so cancellation must be safe to request from many
// threads at once, must never be lost (the in-flight parallel_for
// MUST throw CancelledError), and must leave the pool reusable after
// reset_cancel(). The suite name starts with Executor so the TSan CI
// job picks these tests up and vets the whole dance for data races.
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/obs/metrics.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

TEST(ExecutorCancelConcurrent, HammeredCancelAlwaysLandsAndPoolSurvives) {
  constexpr int kRounds = 10;
  constexpr int kHammers = 4;
  constexpr int kScrapers = 2;
  Executor exec(4);

  for (int round = 0; round < kRounds; ++round) {
    std::atomic<bool> started{false};
    std::atomic<bool> stop_scraping{false};

    // Hammers race to deliver the same cancellation; every one of them
    // must be harmless and at least one must land.
    std::vector<std::thread> threads;
    for (int h = 0; h < kHammers; ++h) {
      threads.emplace_back([&] {
        while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
        exec.request_cancel();
      });
    }
    // Scrapers snapshot the global registry mid-flight, the way a
    // progress reporter would during a pipeline run.
    for (int s = 0; s < kScrapers; ++s) {
      threads.emplace_back([&] {
        while (!stop_scraping.load(std::memory_order_acquire))
          (void)obs::MetricsRegistry::global().snapshot();
      });
    }

    // Plenty of small chunks, each spinning until the cancel flag
    // lands, so the pool is genuinely mid-flight when it does. The
    // spin guard keeps a lost cancellation a test failure, not a hang.
    auto spin_until_cancelled = [&](std::size_t, std::size_t) {
      started.store(true, std::memory_order_release);
      for (long guard = 0; guard < 4'000'000'000L; ++guard) {
        if (exec.cancel_requested()) break;
        std::this_thread::yield();
      }
    };
    EXPECT_THROW(exec.parallel_for(0, 10'000, 1, spin_until_cancelled),
                 CancelledError)
        << "round " << round << ": cancellation was lost";

    for (int h = 0; h < kHammers; ++h) threads[static_cast<std::size_t>(h)].join();
    stop_scraping.store(true, std::memory_order_release);
    for (std::size_t t = kHammers; t < threads.size(); ++t) threads[t].join();

    // Sticky until reset: the next parallel_for must also refuse.
    EXPECT_TRUE(exec.cancel_requested());
    EXPECT_THROW(exec.parallel_for(0, 1, 1, [](std::size_t, std::size_t) {}),
                 CancelledError);

    // Clean shutdown: after reset the same pool runs a full pass.
    exec.reset_cancel();
    std::atomic<std::size_t> covered{0};
    exec.parallel_for(0, 1'000, 16, [&](std::size_t lo, std::size_t hi) {
      covered.fetch_add(hi - lo, std::memory_order_relaxed);
    });
    EXPECT_EQ(covered.load(), 1'000u) << "pool unusable after round " << round;
  }
}

TEST(ExecutorCancelConcurrent, PreArmedCancelRefusesDeterministically) {
  Executor exec(2);
  exec.request_cancel();
  std::atomic<int> ran{0};
  EXPECT_THROW(
      exec.parallel_for(0, 100, 1, [&](std::size_t, std::size_t) { ++ran; }),
      CancelledError);
  // A pre-armed cancel may stop the claim loop before any chunk runs;
  // whatever ran, the pool must come back clean.
  exec.reset_cancel();
  exec.parallel_for(0, 100, 1, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_GE(ran.load(), 100);
}

}  // namespace
}  // namespace fist
