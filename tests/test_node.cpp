#include "net/node.hpp"

#include <gtest/gtest.h>

#include "script/standard.hpp"

namespace fist::net {
namespace {

// Scripted environment: records every send for inspection and can
// deliver messages manually.
class ScriptedEnv : public NodeEnv {
 public:
  struct Sent {
    NodeId from, to;
    Message msg;
  };

  void send(NodeId from, NodeId to, Message msg) override {
    sent.push_back({from, to, std::move(msg)});
  }
  void on_object_seen(NodeId node, const InvItem& what) override {
    seen.emplace_back(node, what);
  }

  std::vector<Sent> sent;
  std::vector<std::pair<NodeId, InvItem>> seen;
};

Transaction tx_paying(const std::string& tag) {
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(tag));
  tx.inputs.push_back(in);
  tx.outputs.push_back(
      TxOut{btc(1), make_p2pkh(hash160(to_bytes(tag + "-payee")))});
  return tx;
}

Block block_on(const Hash256& prev, const std::vector<Transaction>& txs) {
  Block b;
  b.header.prev_hash = prev;
  b.header.time = 1231006505;
  b.header.bits = 0x207fffff;
  Transaction cb;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{btc(50), Script()});
  b.transactions.push_back(cb);
  for (const Transaction& t : txs) b.transactions.push_back(t);
  b.fix_merkle_root();
  return b;
}

TEST(Node, OriginatedTxAnnouncedToAllPeers) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  node.add_peer(2);
  Transaction tx = tx_paying("t");
  node.originate_tx(tx);
  EXPECT_TRUE(node.knows_tx(tx.txid()));
  ASSERT_EQ(env.sent.size(), 2u);
  for (const auto& sent : env.sent)
    EXPECT_TRUE(std::holds_alternative<InvMsg>(sent.msg));
}

TEST(Node, RelayedTxSkipsTheSender) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  node.add_peer(2);
  node.handle(1, TxMsg{tx_paying("t")});
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].to, 2u);
}

TEST(Node, DuplicateTxNotReannounced) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  Transaction tx = tx_paying("t");
  node.handle(1, TxMsg{tx});
  std::size_t after_first = env.sent.size();
  node.handle(1, TxMsg{tx});
  EXPECT_EQ(env.sent.size(), after_first);
}

TEST(Node, InvTriggersGetDataForUnknownOnly) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  Transaction known = tx_paying("known");
  node.originate_tx(known);
  env.sent.clear();

  InvMsg inv;
  inv.items.push_back({InvKind::Tx, known.txid()});
  inv.items.push_back({InvKind::Tx, hash256(to_bytes(std::string("new")))});
  node.handle(1, inv);
  ASSERT_EQ(env.sent.size(), 1u);
  const auto& req = std::get<GetDataMsg>(env.sent[0].msg);
  ASSERT_EQ(req.items.size(), 1u);
  EXPECT_EQ(req.items[0].hash, hash256(to_bytes(std::string("new"))));
}

TEST(Node, FullyKnownInvIgnored) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  Transaction known = tx_paying("known");
  node.originate_tx(known);
  env.sent.clear();
  InvMsg inv;
  inv.items.push_back({InvKind::Tx, known.txid()});
  node.handle(1, inv);
  EXPECT_TRUE(env.sent.empty());
}

TEST(Node, GetDataServedFromMempool) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  Transaction tx = tx_paying("t");
  node.originate_tx(tx);
  env.sent.clear();

  GetDataMsg req;
  req.items.push_back({InvKind::Tx, tx.txid()});
  node.handle(1, req);
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(std::get<TxMsg>(env.sent[0].msg).tx, tx);
}

TEST(Node, GetDataForUnknownIsSilent) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  GetDataMsg req;
  req.items.push_back({InvKind::Tx, hash256(to_bytes(std::string("?")))});
  node.handle(1, req);
  EXPECT_TRUE(env.sent.empty());
}

TEST(Node, BlockExtendsTipAndClearsMempool) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  Transaction tx = tx_paying("t");
  node.handle(1, TxMsg{tx});
  EXPECT_EQ(node.mempool().size(), 1u);

  Block b = block_on(Hash256{}, {tx});
  node.handle(1, BlockMsg{b});
  EXPECT_EQ(node.chain_length(), 1);
  EXPECT_EQ(node.tip(), b.header.hash());
  EXPECT_TRUE(node.mempool().empty());
  EXPECT_TRUE(node.knows_block(b.header.hash()));
}

TEST(Node, ForkBlockCountedNotAdopted) {
  ScriptedEnv env;
  Node node(0, env);
  Block main1 = block_on(Hash256{}, {});
  node.handle(1, BlockMsg{main1});
  // A block on an unknown parent does not extend the tip.
  Block stray = block_on(hash256(to_bytes(std::string("elsewhere"))), {});
  node.handle(1, BlockMsg{stray});
  EXPECT_EQ(node.chain_length(), 1);
  EXPECT_EQ(node.forks_seen(), 1);
  EXPECT_EQ(node.tip(), main1.header.hash());
}

TEST(Node, ObjectSeenReportedOncePerObject) {
  ScriptedEnv env;
  Node node(0, env);
  Transaction tx = tx_paying("t");
  node.handle(1, TxMsg{tx});
  node.handle(2, TxMsg{tx});
  EXPECT_EQ(env.seen.size(), 1u);
  EXPECT_EQ(env.seen[0].second.hash, tx.txid());
}

TEST(Node, MinedTxServedViaBlockNotMempool) {
  ScriptedEnv env;
  Node node(0, env);
  node.add_peer(1);
  Transaction tx = tx_paying("t");
  Block b = block_on(Hash256{}, {tx});
  node.handle(1, BlockMsg{b});
  env.sent.clear();
  // tx is known but no longer in the mempool; getdata for it is silent.
  GetDataMsg req;
  req.items.push_back({InvKind::Tx, tx.txid()});
  node.handle(1, req);
  EXPECT_TRUE(env.sent.empty());
  // The block itself is served.
  GetDataMsg breq;
  breq.items.push_back({InvKind::Block, b.header.hash()});
  node.handle(1, breq);
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<BlockMsg>(env.sent[0].msg));
}

}  // namespace
}  // namespace fist::net
