#include "encoding/address.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "crypto/hash.hpp"
#include "encoding/base58.hpp"

namespace fist {
namespace {

Hash160 h160(const std::string& s) { return hash160(to_bytes(s)); }

TEST(Address, P2pkhStartsWithOne) {
  Address a(AddrType::P2PKH, h160("alpha"));
  EXPECT_EQ(a.encode()[0], '1');
}

TEST(Address, P2shStartsWithThree) {
  Address a(AddrType::P2SH, h160("alpha"));
  EXPECT_EQ(a.encode()[0], '3');
}

TEST(Address, EncodeDecodeRoundTrip) {
  for (AddrType t : {AddrType::P2PKH, AddrType::P2SH}) {
    Address a(t, h160("round-trip"));
    auto decoded = Address::decode(a.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, a);
  }
}

TEST(Address, KnownSatoshiEraAddress) {
  // HASH160 of the uncompressed generator pubkey.
  auto decoded = Address::decode("1EHNa6Q4Jz2uvNExL497mE43ikXhwF6kZm");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type(), AddrType::P2PKH);
  EXPECT_EQ(decoded->payload().hex(),
            "91b24bf9f5288532960ac687abb035127b1d28a5");
}

TEST(Address, DecodeRejectsBadChecksum) {
  std::string s = Address(AddrType::P2PKH, h160("x")).encode();
  s.back() = s.back() == '2' ? '3' : '2';
  EXPECT_FALSE(Address::decode(s).has_value());
}

TEST(Address, DecodeRejectsUnknownVersion) {
  // Version byte 0x30 (Litecoin) must be rejected.
  Bytes payload{0x30};
  Hash160 h = h160("foreign");
  append(payload, h.view());
  std::string foreign = base58check_encode(payload);
  EXPECT_FALSE(Address::decode(foreign).has_value());
}

TEST(Address, DecodeRejectsWrongLength) {
  Bytes payload{0x00, 0x01, 0x02};
  EXPECT_FALSE(Address::decode(base58check_encode(payload)).has_value());
}

TEST(Address, DistinctPayloadsDistinctStrings) {
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    Address a(AddrType::P2PKH, h160("addr" + std::to_string(i)));
    EXPECT_TRUE(seen.insert(a.encode()).second);
  }
}

TEST(Address, TypeDistinguishesEqualPayloads) {
  Hash160 h = h160("same");
  Address p2pkh(AddrType::P2PKH, h);
  Address p2sh(AddrType::P2SH, h);
  EXPECT_NE(p2pkh, p2sh);
  EXPECT_NE(std::hash<Address>()(p2pkh), std::hash<Address>()(p2sh));
}

TEST(Address, UsableAsUnorderedKey) {
  std::unordered_set<Address> set;
  for (int i = 0; i < 100; ++i)
    set.insert(Address(AddrType::P2PKH, h160(std::to_string(i))));
  EXPECT_EQ(set.size(), 100u);
}

}  // namespace
}  // namespace fist
