#include "util/hex.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace fist {
namespace {

TEST(Hex, EncodesEmpty) { EXPECT_EQ(to_hex(ByteView{}), ""); }

TEST(Hex, EncodesBytes) {
  Bytes b{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
}

TEST(Hex, EncodesReversed) {
  Bytes b{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex_reversed(b), "ffab0100");
}

TEST(Hex, DecodesLowerAndUpper) {
  EXPECT_EQ(from_hex("abCD12"), (Bytes{0xab, 0xcd, 0x12}));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), ParseError);
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), ParseError);
  EXPECT_THROW(from_hex("0g"), ParseError);
}

TEST(Hex, IsHexPredicate) {
  EXPECT_TRUE(is_hex(""));
  EXPECT_TRUE(is_hex("00ff"));
  EXPECT_FALSE(is_hex("0"));
  EXPECT_FALSE(is_hex("0x"));
}

class HexRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HexRoundTrip, EncodeDecodeIdentity) {
  std::size_t n = GetParam();
  Bytes data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>(i * 131 + 7);
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HexRoundTrip,
                         ::testing::Values(0, 1, 2, 3, 16, 31, 32, 33, 255,
                                           1024));

}  // namespace
}  // namespace fist
