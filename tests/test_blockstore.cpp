#include "chain/blockstore.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

Block make_block(int n, const Hash256& prev) {
  Block b;
  b.header.prev_hash = prev;
  b.header.time = static_cast<std::uint32_t>(1231006505 + n * 600);
  b.header.bits = 0x207fffff;
  Transaction cb;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  Script sig;
  Writer w;
  w.u32le(static_cast<std::uint32_t>(n));
  sig.push(w.view());
  in.script_sig = sig;
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{
      btc(50), make_p2pkh(hash160(to_bytes("m" + std::to_string(n))))});
  b.transactions.push_back(cb);
  b.fix_merkle_root();
  return b;
}

TEST(MemoryBlockStore, AppendAndRead) {
  MemoryBlockStore store;
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  EXPECT_EQ(store.append(b0), 0u);
  EXPECT_EQ(store.append(b1), 1u);
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.read(0), b0);
  EXPECT_EQ(store.read(1), b1);
}

TEST(MemoryBlockStore, ReadOutOfRangeThrows) {
  MemoryBlockStore store;
  EXPECT_THROW(store.read(0), UsageError);
}

TEST(MemoryBlockStore, RecordsAreFramed) {
  MemoryBlockStore store;
  Block b = make_block(0, Hash256{});
  store.append(b);
  // magic (4) + length (4) + block.
  EXPECT_EQ(store.byte_size(), 8 + b.serialize().size());
}

TEST(MemoryBlockStore, ForEachVisitsInOrder) {
  MemoryBlockStore store;
  Hash256 prev;
  for (int i = 0; i < 5; ++i) {
    Block b = make_block(i, prev);
    prev = b.header.hash();
    store.append(b);
  }
  std::vector<std::size_t> seen;
  store.for_each([&](std::size_t i, const Block&) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("fist_blk_test_" + std::to_string(::getpid()) + ".dat");
    cleanup();
  }
  void TearDown() override { cleanup(); }
  void cleanup() {
    for (const char* suffix : {"", ".sums", ".tmp", ".sums.tmp"})
      std::filesystem::remove(path_.string() + suffix);
  }
  /// Flips one bit inside the file at `offset`.
  void corrupt_byte(std::uint64_t offset, std::uint8_t mask = 0xff) {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char c;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    c = static_cast<char>(c ^ mask);
    f.write(&c, 1);
  }
  std::filesystem::path path_;
};

TEST_F(FileStoreTest, AppendReadRoundTrip) {
  FileBlockStore store(path_);
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  store.append(b0);
  store.append(b1);
  EXPECT_EQ(store.read(0), b0);
  EXPECT_EQ(store.read(1), b1);
}

TEST_F(FileStoreTest, ReopenScansExistingRecords) {
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  {
    FileBlockStore store(path_);
    store.append(b0);
    store.append(b1);
  }
  FileBlockStore reopened(path_);
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_EQ(reopened.read(0), b0);
  EXPECT_EQ(reopened.read(1), b1);
  // Appending continues after the scan.
  Block b2 = make_block(2, b1.header.hash());
  EXPECT_EQ(reopened.append(b2), 2u);
  EXPECT_EQ(reopened.read(2), b2);
}

TEST_F(FileStoreTest, OnDiskLayoutMatchesBitcoinCore) {
  FileBlockStore store(path_);
  store.append(make_block(0, Hash256{}));
  std::ifstream in(path_, std::ios::binary);
  std::uint8_t head[4];
  in.read(reinterpret_cast<char*>(head), 4);
  // f9 be b4 d9, the mainnet record magic, little-endian on disk.
  EXPECT_EQ(head[0], 0xf9);
  EXPECT_EQ(head[1], 0xbe);
  EXPECT_EQ(head[2], 0xb4);
  EXPECT_EQ(head[3], 0xd9);
}

TEST_F(FileStoreTest, RejectsCorruptedMagic) {
  {
    FileBlockStore store(path_);
    store.append(make_block(0, Hash256{}));
  }
  // Corrupt the magic in place.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(0);
  char zero = 0;
  f.write(&zero, 1);
  f.close();
  EXPECT_THROW(FileBlockStore reopened(path_), ParseError);
}

TEST_F(FileStoreTest, RecoverModeResyncsPastCorruptedMagic) {
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  Block b2 = make_block(2, b1.header.hash());
  std::uint64_t second_record = 0;
  {
    FileBlockStore store(path_);
    store.append(b0);
    second_record = std::filesystem::file_size(path_);
    store.append(b1);
    store.append(b2);
  }
  corrupt_byte(second_record);  // b1's record magic

  // Strict open refuses; recover-mode open resyncs to b2.
  EXPECT_THROW(FileBlockStore strict(path_), ParseError);
  FileBlockStore::OpenOptions open;
  open.recover = true;
  FileBlockStore store(path_, kMainnetMagic, open);
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.read(0), b0);
  ASSERT_FALSE(store.scan_report().skipped_ranges.empty());
  EXPECT_GT(store.scan_report().skipped_bytes(), 0u);
  // The sidecar no longer lines up with the surviving records, so
  // checksum verification is off rather than wrong.
  EXPECT_FALSE(store.checksummed());
  EXPECT_EQ(store.read(1), b2);
}

TEST_F(FileStoreTest, ChecksumSidecarCatchesSilentPayloadCorruption) {
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  {
    FileBlockStore store(path_);
    store.append(b0);
    store.append(b1);
  }
  ASSERT_TRUE(std::filesystem::exists(path_.string() + ".sums"));
  // Flip one payload bit of record 0 — framing stays intact, so only
  // the checksum can catch it.
  corrupt_byte(8 + 40, 0x01);
  FileBlockStore store(path_);
  ASSERT_TRUE(store.checksummed());
  try {
    (void)store.read(0);
    FAIL() << "corrupted payload read back without error";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch at record 0"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(store.read(1), b1);  // other records unaffected

  // Opting out of verification returns the corrupt bytes' decode
  // behaviour instead (here the block still parses — the flipped bit
  // sits in the header's hash fields — so no throw).
  FileBlockStore::OpenOptions open;
  open.verify_checksums = false;
  FileBlockStore unchecked(path_, kMainnetMagic, open);
  EXPECT_NO_THROW((void)unchecked.read(0));
}

TEST_F(FileStoreTest, TornTailIsDroppedAndTruncatedOnNextAppend) {
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  std::uint64_t clean_size = 0;
  {
    FileBlockStore store(path_);
    store.append(b0);
    clean_size = std::filesystem::file_size(path_);
    store.append(b1);
  }
  // Simulate a kill mid-append: keep b0 plus half of b1's record.
  std::filesystem::resize_file(
      path_, clean_size + (std::filesystem::file_size(path_) - clean_size) / 2);

  FileBlockStore store(path_);
  EXPECT_EQ(store.count(), 1u);
  EXPECT_GT(store.scan_report().torn_tail_bytes, 0u);
  EXPECT_EQ(store.read(0), b0);

  // The next append truncates the torn bytes away and lands cleanly.
  Block b2 = make_block(2, b0.header.hash());
  EXPECT_EQ(store.append(b2), 1u);
  EXPECT_EQ(store.read(1), b2);
  FileBlockStore reopened(path_);
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_TRUE(reopened.scan_report().clean());
  EXPECT_EQ(reopened.read(1), b2);
}

TEST_F(FileStoreTest, UnwritablePathIsIoErrorNotParseError) {
  // A missing file is a valid empty store (created on first append),
  // but an unwritable location must surface as I/O failure — the
  // classification lenient ingest keys quarantine stages off.
  FileBlockStore store("/nonexistent-dir/depths/blk.dat");
  EXPECT_EQ(store.count(), 0u);
  EXPECT_THROW(store.append(make_block(0, Hash256{})), IoError);
}

TEST_F(FileStoreTest, InterleavedAppendAndReadThroughCachedHandles) {
  FileBlockStore store(path_);
  Hash256 prev;
  for (int i = 0; i < 6; ++i) {
    Block b = make_block(i, prev);
    prev = b.header.hash();
    store.append(b);
    // Read everything written so far after each append: the cached
    // read handles must observe freshly appended bytes.
    for (int j = 0; j <= i; ++j)
      EXPECT_EQ(store.read(static_cast<std::size_t>(j)).header.time,
                static_cast<std::uint32_t>(1231006505 + j * 600));
  }
}

}  // namespace
}  // namespace fist
