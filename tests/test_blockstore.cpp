#include "chain/blockstore.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

Block make_block(int n, const Hash256& prev) {
  Block b;
  b.header.prev_hash = prev;
  b.header.time = static_cast<std::uint32_t>(1231006505 + n * 600);
  b.header.bits = 0x207fffff;
  Transaction cb;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  Script sig;
  Writer w;
  w.u32le(static_cast<std::uint32_t>(n));
  sig.push(w.view());
  in.script_sig = sig;
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{
      btc(50), make_p2pkh(hash160(to_bytes("m" + std::to_string(n))))});
  b.transactions.push_back(cb);
  b.fix_merkle_root();
  return b;
}

TEST(MemoryBlockStore, AppendAndRead) {
  MemoryBlockStore store;
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  EXPECT_EQ(store.append(b0), 0u);
  EXPECT_EQ(store.append(b1), 1u);
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.read(0), b0);
  EXPECT_EQ(store.read(1), b1);
}

TEST(MemoryBlockStore, ReadOutOfRangeThrows) {
  MemoryBlockStore store;
  EXPECT_THROW(store.read(0), UsageError);
}

TEST(MemoryBlockStore, RecordsAreFramed) {
  MemoryBlockStore store;
  Block b = make_block(0, Hash256{});
  store.append(b);
  // magic (4) + length (4) + block.
  EXPECT_EQ(store.byte_size(), 8 + b.serialize().size());
}

TEST(MemoryBlockStore, ForEachVisitsInOrder) {
  MemoryBlockStore store;
  Hash256 prev;
  for (int i = 0; i < 5; ++i) {
    Block b = make_block(i, prev);
    prev = b.header.hash();
    store.append(b);
  }
  std::vector<std::size_t> seen;
  store.for_each([&](std::size_t i, const Block&) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("fist_blk_test_" + std::to_string(::getpid()) + ".dat");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(FileStoreTest, AppendReadRoundTrip) {
  FileBlockStore store(path_);
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  store.append(b0);
  store.append(b1);
  EXPECT_EQ(store.read(0), b0);
  EXPECT_EQ(store.read(1), b1);
}

TEST_F(FileStoreTest, ReopenScansExistingRecords) {
  Block b0 = make_block(0, Hash256{});
  Block b1 = make_block(1, b0.header.hash());
  {
    FileBlockStore store(path_);
    store.append(b0);
    store.append(b1);
  }
  FileBlockStore reopened(path_);
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_EQ(reopened.read(0), b0);
  EXPECT_EQ(reopened.read(1), b1);
  // Appending continues after the scan.
  Block b2 = make_block(2, b1.header.hash());
  EXPECT_EQ(reopened.append(b2), 2u);
  EXPECT_EQ(reopened.read(2), b2);
}

TEST_F(FileStoreTest, OnDiskLayoutMatchesBitcoinCore) {
  FileBlockStore store(path_);
  store.append(make_block(0, Hash256{}));
  std::ifstream in(path_, std::ios::binary);
  std::uint8_t head[4];
  in.read(reinterpret_cast<char*>(head), 4);
  // f9 be b4 d9, the mainnet record magic, little-endian on disk.
  EXPECT_EQ(head[0], 0xf9);
  EXPECT_EQ(head[1], 0xbe);
  EXPECT_EQ(head[2], 0xb4);
  EXPECT_EQ(head[3], 0xd9);
}

TEST_F(FileStoreTest, RejectsCorruptedMagic) {
  {
    FileBlockStore store(path_);
    store.append(make_block(0, Hash256{}));
  }
  // Corrupt the magic in place.
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(0);
  char zero = 0;
  f.write(&zero, 1);
  f.close();
  EXPECT_THROW(FileBlockStore reopened(path_), ParseError);
}

}  // namespace
}  // namespace fist
