#include "chain/transaction.hpp"

#include <gtest/gtest.h>

#include "script/standard.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace fist {
namespace {

Transaction sample_tx() {
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("prev")));
  in.prevout.index = 1;
  in.script_sig = make_p2pkh_scriptsig(Bytes(71, 0x30), Bytes(33, 0x02));
  tx.inputs.push_back(in);
  tx.outputs.push_back(
      TxOut{btc(1), make_p2pkh(hash160(to_bytes(std::string("to"))))});
  tx.outputs.push_back(
      TxOut{btc(2), make_p2pkh(hash160(to_bytes(std::string("change"))))});
  return tx;
}

TEST(OutPoint, CoinbaseMarker) {
  OutPoint cb = OutPoint::coinbase();
  EXPECT_TRUE(cb.is_coinbase());
  OutPoint normal{hash256(to_bytes(std::string("x"))), 0};
  EXPECT_FALSE(normal.is_coinbase());
  OutPoint null_but_indexed{Hash256{}, 3};
  EXPECT_FALSE(null_but_indexed.is_coinbase());
}

TEST(OutPoint, HashAndOrder) {
  OutPoint a{hash256(to_bytes(std::string("a"))), 0};
  OutPoint b = a;
  b.index = 1;
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<OutPoint>()(a), std::hash<OutPoint>()(b));
}

TEST(Transaction, SerializeRoundTrip) {
  Transaction tx = sample_tx();
  Bytes raw = tx.serialize();
  Transaction back = Transaction::from_bytes(raw);
  EXPECT_EQ(back, tx);
  EXPECT_EQ(back.txid(), tx.txid());
}

TEST(Transaction, WireLayoutStartsWithVersion) {
  Transaction tx = sample_tx();
  Bytes raw = tx.serialize();
  // version 1 little-endian.
  EXPECT_EQ(to_hex(ByteView(raw.data(), 4)), "01000000");
  // input count (varint 1).
  EXPECT_EQ(raw[4], 1);
}

TEST(Transaction, TxidChangesWithContent) {
  Transaction tx = sample_tx();
  Hash256 id1 = tx.txid();
  tx.outputs[0].value += 1;
  EXPECT_NE(tx.txid(), id1);
}

TEST(Transaction, CoinbaseDetection) {
  Transaction cb;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{btc(50), Script()});
  EXPECT_TRUE(cb.is_coinbase());

  // Two inputs: not a coinbase even if one is the marker.
  cb.inputs.push_back(TxIn{});
  EXPECT_FALSE(cb.is_coinbase());
}

TEST(Transaction, ValueOutChecked) {
  Transaction tx = sample_tx();
  EXPECT_EQ(tx.value_out(), btc(3));
  tx.outputs[0].value = kMaxMoney;
  EXPECT_THROW(tx.value_out(), UsageError);
}

TEST(Transaction, DeserializeRejectsEmptyInputsOrOutputs) {
  Transaction tx = sample_tx();
  tx.outputs.clear();
  Writer w;
  tx.serialize(w);
  Bytes raw = w.take();
  EXPECT_THROW(Transaction::from_bytes(raw), ParseError);
}

TEST(Transaction, DeserializeRejectsTrailingBytes) {
  Bytes raw = sample_tx().serialize();
  raw.push_back(0x00);
  EXPECT_THROW(Transaction::from_bytes(raw), ParseError);
}

TEST(Transaction, DeserializeRejectsTruncation) {
  Bytes raw = sample_tx().serialize();
  raw.resize(raw.size() - 5);
  EXPECT_THROW(Transaction::from_bytes(raw), ParseError);
}

TEST(Transaction, DeserializeRejectsAbsurdCounts) {
  Writer w;
  w.i32le(1);
  w.varint(2'000'000);  // input count
  Bytes raw = w.take();
  EXPECT_THROW(Transaction::from_bytes(raw), ParseError);
}

TEST(Transaction, ManyInputsRoundTrip) {
  Transaction tx;
  for (int i = 0; i < 300; ++i) {
    TxIn in;
    in.prevout.txid = hash256(to_bytes("prev" + std::to_string(i)));
    in.prevout.index = static_cast<std::uint32_t>(i);
    tx.inputs.push_back(in);
  }
  tx.outputs.push_back(TxOut{btc(1), Script()});
  EXPECT_EQ(Transaction::from_bytes(tx.serialize()), tx);
}

TEST(Transaction, LocktimeAndSequencePreserved) {
  Transaction tx = sample_tx();
  tx.locktime = 500'000;
  tx.inputs[0].sequence = 0xfffffffe;
  Transaction back = Transaction::from_bytes(tx.serialize());
  EXPECT_EQ(back.locktime, 500'000u);
  EXPECT_EQ(back.inputs[0].sequence, 0xfffffffeu);
}

}  // namespace
}  // namespace fist
