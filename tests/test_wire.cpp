#include "net/wire.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "script/standard.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace fist::net {
namespace {

Transaction sample_tx() {
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("funding")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(
      TxOut{btc(1), make_p2pkh(hash160(to_bytes(std::string("payee"))))});
  return tx;
}

Block sample_block() {
  Block b;
  b.header.time = 1231006505;
  b.header.bits = 0x207fffff;
  Transaction cb;
  TxIn in;
  in.prevout = OutPoint::coinbase();
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{btc(50), Script()});
  b.transactions.push_back(cb);
  b.fix_merkle_root();
  return b;
}

TEST(Wire, CommandNames) {
  EXPECT_EQ(command_of(InvMsg{}), "inv");
  EXPECT_EQ(command_of(GetDataMsg{}), "getdata");
  EXPECT_EQ(command_of(TxMsg{sample_tx()}), "tx");
  EXPECT_EQ(command_of(BlockMsg{sample_block()}), "block");
}

TEST(Wire, InvRoundTrip) {
  InvMsg m;
  m.items.push_back({InvKind::Tx, hash256(to_bytes(std::string("t1")))});
  m.items.push_back({InvKind::Block, hash256(to_bytes(std::string("b1")))});
  Message decoded = decode_message(encode_message(m));
  ASSERT_TRUE(std::holds_alternative<InvMsg>(decoded));
  EXPECT_EQ(std::get<InvMsg>(decoded), m);
}

TEST(Wire, GetDataRoundTrip) {
  GetDataMsg m;
  m.items.push_back({InvKind::Tx, hash256(to_bytes(std::string("x")))});
  Message decoded = decode_message(encode_message(m));
  ASSERT_TRUE(std::holds_alternative<GetDataMsg>(decoded));
  EXPECT_EQ(std::get<GetDataMsg>(decoded), m);
}

TEST(Wire, TxRoundTrip) {
  TxMsg m{sample_tx()};
  Message decoded = decode_message(encode_message(m));
  ASSERT_TRUE(std::holds_alternative<TxMsg>(decoded));
  EXPECT_EQ(std::get<TxMsg>(decoded).tx, m.tx);
}

TEST(Wire, BlockRoundTrip) {
  BlockMsg m{sample_block()};
  Message decoded = decode_message(encode_message(m));
  ASSERT_TRUE(std::holds_alternative<BlockMsg>(decoded));
  EXPECT_EQ(std::get<BlockMsg>(decoded).block, m.block);
}

TEST(Wire, HeaderLayout) {
  Bytes frame = encode_message(InvMsg{});
  ASSERT_GE(frame.size(), 24u);
  // magic f9 be b4 d9
  EXPECT_EQ(frame[0], 0xf9);
  EXPECT_EQ(frame[3], 0xd9);
  // command "inv" zero-padded to 12 bytes
  EXPECT_EQ(frame[4], 'i');
  EXPECT_EQ(frame[5], 'n');
  EXPECT_EQ(frame[6], 'v');
  for (int i = 7; i < 16; ++i) EXPECT_EQ(frame[static_cast<size_t>(i)], 0);
}

TEST(Wire, ChecksumDetectsCorruption) {
  InvMsg m;
  m.items.push_back({InvKind::Tx, hash256(to_bytes(std::string("t")))});
  Bytes frame = encode_message(m);
  frame.back() ^= 0x01;
  EXPECT_THROW(decode_message(frame), ParseError);
}

TEST(Wire, RejectsBadMagic) {
  Bytes frame = encode_message(InvMsg{});
  frame[0] = 0x00;
  EXPECT_THROW(decode_message(frame), ParseError);
}

TEST(Wire, RejectsUnknownCommand) {
  Bytes frame = encode_message(InvMsg{});
  frame[4] = 'z';  // "znv" — checksum still valid (command not covered)
  EXPECT_THROW(decode_message(frame), ParseError);
}

TEST(Wire, RejectsMalformedCommandPadding) {
  Bytes frame = encode_message(InvMsg{});
  frame[8] = 'x';  // NUL then garbage inside the command field
  EXPECT_THROW(decode_message(frame), ParseError);
}

TEST(Wire, RejectsTruncatedFrame) {
  Bytes frame = encode_message(TxMsg{sample_tx()});
  frame.resize(frame.size() - 3);
  EXPECT_THROW(decode_message(frame), ParseError);
}

TEST(Wire, RejectsOversizedInvCount) {
  // Handcraft an inv with a huge count prefix.
  Writer payload;
  payload.varint(60'000);
  Writer w;
  w.u32le(0xd9b4bef9u);
  std::array<std::uint8_t, 12> cmd{'i', 'n', 'v'};
  w.bytes(ByteView(cmd));
  Bytes body = payload.take();
  w.u32le(static_cast<std::uint32_t>(body.size()));
  auto check = sha256d(body);
  w.bytes(ByteView(check.data(), 4));
  w.bytes(body);
  Bytes frame = w.take();
  EXPECT_THROW(decode_message(frame), ParseError);
}

TEST(Wire, WireSizeMatchesEncoding) {
  TxMsg m{sample_tx()};
  EXPECT_EQ(wire_size(m), encode_message(m).size());
  InvMsg inv;
  inv.items.push_back({InvKind::Tx, Hash256{}});
  EXPECT_EQ(wire_size(inv), encode_message(inv).size());
}

}  // namespace
}  // namespace fist::net
