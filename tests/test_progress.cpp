// test_progress.cpp — ProgressBoard stages and the /progress renderers.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/obs/progress.hpp"

namespace fist {
namespace {

#ifndef FISTFUL_NO_OBS

TEST(Progress, StageLifecycle) {
  obs::ProgressBoard board;
  obs::ProgressStage stage = board.begin_stage("unit.stage", 10);
  stage.advance();
  stage.advance(4);

  std::vector<obs::ProgressStageValue> snap = board.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "unit.stage");
  EXPECT_EQ(snap[0].done, 5u);
  EXPECT_EQ(snap[0].total, 10u);
  EXPECT_FALSE(snap[0].finished);

  stage.set_total(20);
  stage.finish();
  snap = board.snapshot();
  EXPECT_EQ(snap[0].total, 20u);
  EXPECT_TRUE(snap[0].finished);
}

TEST(Progress, DefaultHandleIsNoOp) {
  obs::ProgressStage stage;
  stage.advance();
  stage.set_total(5);
  stage.finish();  // must not crash
}

TEST(Progress, BeginStageRestartsExistingStage) {
  // A rerun (checkpoint resume, second pipeline in one process) reports
  // the rerun, not the sum of both runs.
  obs::ProgressBoard board;
  obs::ProgressStage first = board.begin_stage("unit.rerun", 4);
  first.advance(4);
  first.finish();

  obs::ProgressStage second = board.begin_stage("unit.rerun", 8);
  second.advance();
  std::vector<obs::ProgressStageValue> snap = board.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].done, 1u);
  EXPECT_EQ(snap[0].total, 8u);
  EXPECT_FALSE(snap[0].finished);

  // The stale handle still feeds the restarted stage.
  first.advance();
  EXPECT_EQ(board.snapshot()[0].done, 2u);
}

TEST(Progress, SnapshotPreservesBeginOrder) {
  obs::ProgressBoard board;
  board.begin_stage("z.last", 1);
  board.begin_stage("a.first", 1);
  std::vector<obs::ProgressStageValue> snap = board.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "z.last");
  EXPECT_EQ(snap[1].name, "a.first");
}

TEST(Progress, ConcurrentAdvanceIsLossless) {
  obs::ProgressBoard board;
  obs::ProgressStage stage = board.begin_stage("unit.mt", 4000);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&stage] {
      for (int i = 0; i < 1000; ++i) stage.advance();
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(board.snapshot()[0].done, 4000u);
}

#endif  // FISTFUL_NO_OBS

TEST(Progress, RenderJsonShape) {
  std::vector<obs::ProgressStageValue> stages;
  obs::ProgressStageValue s;
  s.name = "view.windows";
  s.done = 3;
  s.total = 10;
  s.finished = false;
  s.elapsed_ms = 1500;
  stages.push_back(s);

  std::string json = obs::render_progress_json(stages);
  EXPECT_NE(json.find("\"stages\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"view.windows\""), std::string::npos);
  EXPECT_NE(json.find("\"done\":3"), std::string::npos);
  EXPECT_NE(json.find("\"total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"finished\":false"), std::string::npos);
  // 3 done in 1.5 s -> 2/s -> 7 remaining at 2/s = 3.5 s.
  EXPECT_NE(json.find("\"rate_per_s\":2"), std::string::npos);
  EXPECT_NE(json.find("\"eta_s\":3.5"), std::string::npos);
}

TEST(Progress, RenderJsonOmitsEtaWithoutTotal) {
  obs::ProgressStageValue s;
  s.name = "sim.days";
  s.done = 5;
  s.total = 0;  // unknown
  s.elapsed_ms = 1000;
  std::string json = obs::render_progress_json({s});
  EXPECT_EQ(json.find("eta_s"), std::string::npos);
}

TEST(Progress, RenderLineShowsLiveStagesOnly) {
  obs::ProgressStageValue a;
  a.name = "h1.txs";
  a.done = 2;
  a.total = 4;
  obs::ProgressStageValue b;
  b.name = "h2.scan";
  b.done = 1;
  b.total = 1;
  b.finished = true;  // the ticker drops finished stages
  std::string line = obs::render_progress_line({a, b});
  EXPECT_NE(line.find("h1.txs"), std::string::npos);
  EXPECT_EQ(line.find("h2.scan"), std::string::npos);
  EXPECT_NE(line.find("2/4"), std::string::npos);
  EXPECT_NE(line.find("50%"), std::string::npos);
}

}  // namespace
}  // namespace fist
