#include "chain/addrbook.hpp"

#include <gtest/gtest.h>

#include "crypto/hash.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

Address mk(int i) {
  return Address(AddrType::P2PKH, hash160(to_bytes(std::to_string(i))));
}

TEST(AddressBook, InternAssignsDenseIds) {
  AddressBook book;
  EXPECT_EQ(book.intern(mk(0)), 0u);
  EXPECT_EQ(book.intern(mk(1)), 1u);
  EXPECT_EQ(book.intern(mk(2)), 2u);
  EXPECT_EQ(book.size(), 3u);
}

TEST(AddressBook, InternIsIdempotent) {
  AddressBook book;
  AddrId id = book.intern(mk(7));
  EXPECT_EQ(book.intern(mk(7)), id);
  EXPECT_EQ(book.size(), 1u);
}

TEST(AddressBook, FindWithoutInterning) {
  AddressBook book;
  book.intern(mk(1));
  EXPECT_TRUE(book.find(mk(1)).has_value());
  EXPECT_FALSE(book.find(mk(2)).has_value());
  EXPECT_EQ(book.size(), 1u);  // find never inserts
}

TEST(AddressBook, ReverseLookup) {
  AddressBook book;
  AddrId id = book.intern(mk(42));
  EXPECT_EQ(book.lookup(id), mk(42));
  EXPECT_THROW(book.lookup(id + 1), UsageError);
}

TEST(AddressBook, IdOrderIsFirstAppearanceOrder) {
  AddressBook book;
  book.intern(mk(5));
  book.intern(mk(3));
  book.intern(mk(5));
  book.intern(mk(9));
  EXPECT_EQ(book.lookup(0), mk(5));
  EXPECT_EQ(book.lookup(1), mk(3));
  EXPECT_EQ(book.lookup(2), mk(9));
}

TEST(AddressBook, ScalesToManyAddresses) {
  AddressBook book;
  book.reserve(10'000);
  for (int i = 0; i < 10'000; ++i)
    ASSERT_EQ(book.intern(mk(i)), static_cast<AddrId>(i));
  EXPECT_EQ(book.size(), 10'000u);
  EXPECT_EQ(book.lookup(9'999), mk(9'999));
}

}  // namespace
}  // namespace fist
