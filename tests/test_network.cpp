#include "net/network.hpp"

#include <gtest/gtest.h>

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist::net {
namespace {

NetConfig small_config() {
  NetConfig c;
  c.nodes = 40;
  c.out_peers = 4;
  c.miners = 4;
  c.block_interval_s = 120;
  c.seed = 7;
  return c;
}

Transaction user_tx(int i) {
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes("fund" + std::to_string(i)));
  tx.inputs.push_back(in);
  tx.outputs.push_back(
      TxOut{btc(1), make_p2pkh(hash160(to_bytes("p" + std::to_string(i))))});
  return tx;
}

TEST(Network, RejectsDegenerateSize) {
  NetConfig c;
  c.nodes = 1;
  EXPECT_THROW(P2PNetwork net(c), UsageError);
}

TEST(Network, TransactionFloodsToAllNodes) {
  P2PNetwork net(small_config());
  Transaction tx = user_tx(0);
  net.submit_tx(0, tx);
  net.run_until(60);
  const Propagation* p = net.propagation(tx.txid());
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->coverage(), 1.0);
}

TEST(Network, PropagationTimesAreOrdered) {
  P2PNetwork net(small_config());
  Transaction tx = user_tx(1);
  net.submit_tx(3, tx);
  net.run_until(60);
  const Propagation* p = net.propagation(tx.txid());
  ASSERT_NE(p, nullptr);
  auto t50 = p->time_to_fraction(0.5);
  auto t90 = p->time_to_fraction(0.9);
  auto t100 = p->time_to_fraction(1.0);
  ASSERT_TRUE(t50 && t90 && t100);
  EXPECT_LE(*t50, *t90);
  EXPECT_LE(*t90, *t100);
  EXPECT_GT(*t50, 0.0);
}

TEST(Network, DeterministicForSameSeed) {
  auto run = [] {
    P2PNetwork net(small_config());
    Transaction tx = user_tx(2);
    net.submit_tx(5, tx);
    net.run_until(60);
    return net.messages_delivered();
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, DifferentSeedsDifferentTopology) {
  NetConfig a = small_config(), b = small_config();
  b.seed = 99;
  P2PNetwork na(a), nb(b);
  Transaction tx = user_tx(3);
  na.submit_tx(0, tx);
  nb.submit_tx(0, tx);
  na.run_until(60);
  nb.run_until(60);
  EXPECT_NE(na.messages_delivered(), nb.messages_delivered());
}

TEST(Network, MiningProducesChain) {
  NetConfig c = small_config();
  c.block_interval_s = 30;
  P2PNetwork net(c);
  for (int i = 0; i < 5; ++i) net.submit_tx(static_cast<NodeId>(i), user_tx(10 + i));
  net.start_mining();
  net.run_until(600);
  EXPECT_GT(net.blocks_mined(), 5);
  // Every node should have converged on a chain of blocks.
  int len0 = net.node(0).chain_length();
  EXPECT_GT(len0, 0);
}

TEST(Network, MinedBlocksCarryRealPow) {
  NetConfig c = small_config();
  c.block_interval_s = 20;
  P2PNetwork net(c);
  net.start_mining();
  net.run_until(200);
  ASSERT_GT(net.blocks_mined(), 0);
  // The figure-1 merchant check: a block eventually reaches everyone.
  Node& n = net.node(0);
  EXPECT_GT(n.chain_length(), 0);
}

TEST(Network, BlockPropagationReachesMerchant) {
  // The Figure-1 story: user broadcasts a tx; a miner includes it in a
  // block; the merchant (another node) learns of the block.
  NetConfig c = small_config();
  c.block_interval_s = 30;
  P2PNetwork net(c);
  Transaction payment = user_tx(42);
  net.submit_tx(7, payment);
  net.run_until(30);  // let the tx flood first
  net.start_mining();
  net.run_until(400);

  NodeId merchant = net.size() - 1;
  EXPECT_TRUE(net.node(merchant).knows_tx(payment.txid()));
  EXPECT_GT(net.node(merchant).chain_length(), 0);
}

TEST(Network, ByteAccountingWhenEnabled) {
  NetConfig c = small_config();
  c.account_bytes = true;
  P2PNetwork net(c);
  net.submit_tx(0, user_tx(5));
  net.run_until(60);
  EXPECT_GT(net.wire_bytes(), 0u);
  EXPECT_GT(net.messages_delivered(), 0u);
}

TEST(Network, StartMiningRequiresMiners) {
  NetConfig c = small_config();
  c.miners = 0;
  P2PNetwork net(c);
  EXPECT_THROW(net.start_mining(), UsageError);
}

TEST(Network, NodeAccessorBounds) {
  P2PNetwork net(small_config());
  EXPECT_THROW(net.node(1000), UsageError);
  EXPECT_EQ(net.propagation(hash256(to_bytes(std::string("no")))), nullptr);
}


TEST(Network, RetargetingRaisesDifficultyWhenBlocksAreFast) {
  NetConfig c = small_config();
  c.block_interval_s = 20;        // mined 6x faster than...
  c.target_spacing_s = 120;       // ...the intended spacing
  c.retarget_interval = 4;
  P2PNetwork net(c);
  net.start_mining();
  net.run_until(400);             // ~20 blocks => several retargets
  ASSERT_GT(net.node(0).chain_length(), 9);

  // Fetch bits along node 0's chain: the target must shrink at each
  // retarget boundary (difficulty up).
  Node& n = net.node(0);
  const Block* early = n.find_block(n.chain_hash(0));
  const Block* later = n.find_block(n.chain_hash(9));
  ASSERT_NE(early, nullptr);
  ASSERT_NE(later, nullptr);
  auto early_target = expand_compact(early->header.bits);
  auto later_target = expand_compact(later->header.bits);
  ASSERT_TRUE(early_target && later_target);
  EXPECT_LT(cmp(*later_target, *early_target), 0);
}

TEST(Network, FixedDifficultyWithoutRetargeting) {
  NetConfig c = small_config();
  c.block_interval_s = 20;
  P2PNetwork net(c);
  net.start_mining();
  net.run_until(200);
  Node& n = net.node(0);
  ASSERT_GT(n.chain_length(), 2);
  for (int h = 0; h < n.chain_length(); ++h) {
    const Block* b = n.find_block(n.chain_hash(h));
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->header.bits, c.pow_bits);
  }
}

}  // namespace
}  // namespace fist::net
