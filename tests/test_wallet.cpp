#include "sim/wallet.hpp"

#include <gtest/gtest.h>

#include "chain/sighash.hpp"
#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist::sim {
namespace {

Wallet make_wallet(WalletPolicy policy = {}, std::uint64_t seed = 1,
                   KeyMode mode = KeyMode::Fast) {
  return Wallet(KeyFactory(mode, Rng(seed)), policy, Rng(seed + 1000));
}

// Credits a synthetic coin to a fresh address of the wallet.
OutPoint fund(Wallet& w, Amount value, int height = 0, bool coinbase = false,
              int salt = 0) {
  Address a = w.fresh_address();
  OutPoint op{hash256(to_bytes("funding" + std::to_string(salt) +
                               a.encode())),
              0};
  w.credit(op, value, a, height, coinbase);
  return op;
}

TEST(Wallet, CreditRequiresOwnedAddress) {
  Wallet w = make_wallet();
  Address foreign(AddrType::P2PKH, hash160(to_bytes(std::string("x"))));
  EXPECT_THROW(w.credit(OutPoint{}, btc(1), foreign, 0, false), UsageError);
}

TEST(Wallet, BalanceHonorsMaturity) {
  Wallet w = make_wallet();
  fund(w, btc(50), /*height=*/10, /*coinbase=*/true, 1);
  fund(w, btc(3), 10, false, 2);
  EXPECT_EQ(w.balance(/*height=*/10, /*maturity=*/100), btc(3));
  EXPECT_EQ(w.balance(120, 100), btc(53));
  EXPECT_EQ(w.total_balance(), btc(53));
}

TEST(Wallet, PayBuildsValidP2pkhTransaction) {
  Wallet w = make_wallet();
  fund(w, btc(10));
  Address dest(AddrType::P2PKH, hash160(to_bytes(std::string("dest"))));
  PaymentSpec spec;
  spec.outputs.emplace_back(dest, btc(4));
  auto built = w.pay(spec, 1, 100);
  ASSERT_TRUE(built.has_value());
  EXPECT_EQ(built->tx.inputs.size(), 1u);
  // Output 0 pays the destination; the last output is change.
  EXPECT_EQ(extract_address(built->tx.outputs[0].script_pubkey), dest);
  ASSERT_TRUE(built->change_address.has_value());
  EXPECT_TRUE(w.owns(*built->change_address));
  // value conservation: in = out + fee
  Amount out_total = built->tx.outputs[0].value + built->change_value;
  EXPECT_EQ(out_total + w.policy().fee, btc(10));
}

TEST(Wallet, PayFailsOnInsufficientFunds) {
  Wallet w = make_wallet();
  fund(w, btc(1));
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(5));
  EXPECT_FALSE(w.pay(spec, 1, 100).has_value());
}

TEST(Wallet, PayRejectsNonPositiveOutput) {
  Wallet w = make_wallet();
  fund(w, btc(1));
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), 0);
  EXPECT_THROW(w.pay(spec, 1, 100), UsageError);
}

TEST(Wallet, ChangeCreditedBackAndSpendable) {
  Wallet w = make_wallet();
  fund(w, btc(10));
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(4));
  auto built = w.pay(spec, 1, 100);
  ASSERT_TRUE(built);
  // Wallet can immediately chain-spend the change.
  PaymentSpec spec2;
  spec2.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("e")))), btc(3));
  auto built2 = w.pay(spec2, 1, 100);
  ASSERT_TRUE(built2);
  EXPECT_EQ(built2->tx.inputs[0].prevout.txid, built->txid);
}

TEST(Wallet, DustChangeFoldsIntoFee) {
  WalletPolicy policy;
  policy.fee = 50'000;
  policy.dust = 5'460;
  Wallet w = make_wallet(policy);
  fund(w, btc(1));
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))),
      btc(1) - policy.fee - 1'000);  // leaves 1000 sat: dust
  auto built = w.pay(spec, 1, 100);
  ASSERT_TRUE(built);
  EXPECT_FALSE(built->change_address.has_value());
  EXPECT_EQ(built->tx.outputs.size(), 1u);
}

TEST(Wallet, SelfChangePolicyReturnsToInputAddress) {
  WalletPolicy policy;
  policy.p_self_change = 1.0;
  Wallet w = make_wallet(policy);
  OutPoint coin = fund(w, btc(10));
  (void)coin;
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(4));
  auto built = w.pay(spec, 1, 100);
  ASSERT_TRUE(built);
  ASSERT_TRUE(built->change_address);
  // The change output address equals the spent input's address: find it
  // via classification of the scriptSig's pubkey push.
  auto ops = built->tx.inputs[0].script_sig.ops();
  Address input_addr(AddrType::P2PKH, hash160(ops[1].push));
  EXPECT_EQ(*built->change_address, input_addr);
}

TEST(Wallet, ForceFreshChangeOverridesPolicy) {
  WalletPolicy policy;
  policy.p_self_change = 1.0;
  Wallet w = make_wallet(policy);
  fund(w, btc(10));
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(4));
  spec.force_fresh_change = true;
  auto built = w.pay(spec, 1, 100);
  ASSERT_TRUE(built);
  auto ops = built->tx.inputs[0].script_sig.ops();
  Address input_addr(AddrType::P2PKH, hash160(ops[1].push));
  EXPECT_NE(*built->change_address, input_addr);
}

TEST(Wallet, SpendSpecificCoin) {
  Wallet w = make_wallet();
  OutPoint small = fund(w, btc(2), 0, false, 1);
  OutPoint large = fund(w, btc(50), 0, false, 2);
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(30));
  spec.spend_coin = large;
  auto built = w.pay(spec, 1, 100);
  ASSERT_TRUE(built);
  ASSERT_EQ(built->tx.inputs.size(), 1u);
  EXPECT_EQ(built->tx.inputs[0].prevout, large);

  // Spending a specific coin that can't cover fails.
  PaymentSpec spec2;
  spec2.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(30));
  spec2.spend_coin = small;
  EXPECT_FALSE(w.pay(spec2, 1, 100).has_value());
}

TEST(Wallet, SpendUnknownCoinFails) {
  Wallet w = make_wallet();
  fund(w, btc(5));
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(1));
  spec.spend_coin = OutPoint{hash256(to_bytes(std::string("?"))), 0};
  EXPECT_FALSE(w.pay(spec, 1, 100).has_value());
}

TEST(Wallet, SweepAggregatesCoins) {
  Wallet w = make_wallet();
  for (int i = 0; i < 10; ++i) fund(w, btc(1), 0, false, i);
  Address target = w.fresh_address();
  auto built = w.sweep(target, 5, 100, 1, 100);
  ASSERT_TRUE(built);
  EXPECT_EQ(built->tx.inputs.size(), 10u);
  EXPECT_EQ(built->tx.outputs.size(), 1u);
  EXPECT_EQ(built->tx.outputs[0].value, btc(10) - w.policy().fee);
  EXPECT_EQ(w.coin_count(), 0u);  // all spent (target not auto-credited)
}

TEST(Wallet, SweepRespectsMinAndSkip) {
  Wallet w = make_wallet();
  for (int i = 0; i < 4; ++i) fund(w, btc(1), 0, false, i);
  EXPECT_FALSE(w.sweep(w.fresh_address(), 5, 100, 1, 100).has_value());
  auto built = w.sweep(w.fresh_address(), 1, 100, 1, 100, /*skip_oldest=*/2);
  ASSERT_TRUE(built);
  EXPECT_EQ(built->tx.inputs.size(), 2u);
  EXPECT_EQ(w.coin_count(), 2u);
}

TEST(Wallet, MaxInputsCapsSelection) {
  Wallet w = make_wallet();
  for (int i = 0; i < 8; ++i) fund(w, btc(1), 0, false, i);
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(6));
  spec.max_inputs = 3;  // 3 coins = 3 BTC < 6 BTC + fee → must fail
  EXPECT_FALSE(w.pay(spec, 1, 100).has_value());
}

TEST(Wallet, RealModeSignaturesVerify) {
  Wallet w = make_wallet({}, 9, KeyMode::Real);
  Address own = w.fresh_address();
  OutPoint coin{hash256(to_bytes(std::string("real-funding"))), 0};
  w.credit(coin, btc(5), own, 0, false);
  PaymentSpec spec;
  spec.outputs.emplace_back(
      Address(AddrType::P2PKH, hash160(to_bytes(std::string("d")))), btc(1));
  auto built = w.pay(spec, 1, 100);
  ASSERT_TRUE(built);
  // The scriptSig must be a genuine ECDSA signature over the sighash of
  // the P2PKH script of the funded address.
  EXPECT_TRUE(
      verify_p2pkh_input(built->tx, 0, make_p2pkh(own.payload())));
}

TEST(Wallet, DonationAddressIsStable) {
  Wallet w = make_wallet();
  EXPECT_EQ(w.donation_address(), w.donation_address());
}

TEST(Wallet, ReceiveAddressReusePolicy) {
  WalletPolicy reuse;
  reuse.p_reuse_receive = 1.0;
  Wallet w = make_wallet(reuse);
  Address first = w.receive_address();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(w.receive_address(), first);

  WalletPolicy fresh;
  fresh.p_reuse_receive = 0.0;
  Wallet w2 = make_wallet(fresh, 2);
  EXPECT_NE(w2.receive_address(), w2.receive_address());
}

}  // namespace
}  // namespace fist::sim
