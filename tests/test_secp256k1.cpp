#include "crypto/secp256k1.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace fist::secp {
namespace {

U256 random_scalar(Rng& rng) {
  U256 v(rng.next(), rng.next(), rng.next(), rng.next());
  return fn().normalize(v);
}

TEST(Secp, GeneratorOnCurve) { EXPECT_TRUE(on_curve(generator())); }

TEST(Secp, KnownDoubleOfG) {
  // 2G, a published test value.
  Affine two_g = to_affine(dbl(to_jacobian(generator())));
  EXPECT_EQ(two_g.x.hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Secp, OrderTimesGIsInfinity) {
  Jacobian p = mul(order_n(), generator());
  EXPECT_TRUE(p.is_infinity());
}

TEST(Secp, NMinusOneGHasGeneratorX) {
  std::uint64_t borrow;
  U256 n_minus_1 = sub(order_n(), U256(1), borrow);
  Affine p = to_affine(mul(n_minus_1, generator()));
  // -G shares G's x coordinate and has the negated y.
  EXPECT_EQ(p.x, generator().x);
  EXPECT_EQ(p.y, fp().neg(generator().y));
}

TEST(Secp, MulGeneratorMatchesGenericMul) {
  Rng rng(101);
  for (int i = 0; i < 10; ++i) {
    U256 k = random_scalar(rng);
    Affine fast = to_affine(mul_generator(k));
    Affine slow = to_affine(mul(k, generator()));
    EXPECT_EQ(fast, slow);
  }
}

TEST(Secp, AdditionCommutative) {
  Rng rng(102);
  Jacobian p = mul_generator(random_scalar(rng));
  Jacobian q = mul_generator(random_scalar(rng));
  EXPECT_EQ(to_affine(add(p, q)), to_affine(add(q, p)));
}

TEST(Secp, AdditionAssociative) {
  Rng rng(103);
  Jacobian p = mul_generator(random_scalar(rng));
  Jacobian q = mul_generator(random_scalar(rng));
  Jacobian r = mul_generator(random_scalar(rng));
  EXPECT_EQ(to_affine(add(add(p, q), r)), to_affine(add(p, add(q, r))));
}

TEST(Secp, ScalarDistributivity) {
  // (a+b)G == aG + bG
  Rng rng(104);
  for (int i = 0; i < 5; ++i) {
    U256 a = random_scalar(rng), b = random_scalar(rng);
    U256 sum = fn().add(a, b);
    Affine lhs = to_affine(mul_generator(sum));
    Affine rhs = to_affine(add(mul_generator(a), mul_generator(b)));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Secp, DoubleViaAddMatchesDbl) {
  Rng rng(105);
  Jacobian p = mul_generator(random_scalar(rng));
  EXPECT_EQ(to_affine(add(p, p)), to_affine(dbl(p)));
}

TEST(Secp, AddInverseGivesInfinity) {
  Rng rng(106);
  U256 k = random_scalar(rng);
  Jacobian p = mul_generator(k);
  Affine pa = to_affine(p);
  Affine neg{pa.x, fp().neg(pa.y), false};
  EXPECT_TRUE(add(p, to_jacobian(neg)).is_infinity());
}

TEST(Secp, InfinityIsIdentity) {
  Jacobian inf{U256(), U256(), U256()};
  Jacobian g = to_jacobian(generator());
  EXPECT_EQ(to_affine(add(inf, g)), generator());
  EXPECT_EQ(to_affine(add(g, inf)), generator());
}

TEST(Secp, LiftXRecoversPoint) {
  Rng rng(107);
  for (int i = 0; i < 10; ++i) {
    Affine p = to_affine(mul_generator(random_scalar(rng)));
    auto lifted = lift_x(p.x, p.y.bit(0));
    ASSERT_TRUE(lifted.has_value());
    EXPECT_EQ(*lifted, p);
    // Opposite parity gives the mirrored point.
    auto mirrored = lift_x(p.x, !p.y.bit(0));
    ASSERT_TRUE(mirrored.has_value());
    EXPECT_EQ(mirrored->y, fp().neg(p.y));
  }
}

TEST(Secp, LiftXRejectsNonResidue) {
  // x = 5 is not on secp256k1 (5³+7 = 132 is a quadratic non-residue).
  EXPECT_FALSE(lift_x(U256(5), false).has_value());
}

TEST(ModArith, FieldInverse) {
  Rng rng(108);
  for (int i = 0; i < 20; ++i) {
    U256 a = fp().normalize(
        U256(rng.next(), rng.next(), rng.next(), rng.next()));
    if (a.is_zero()) continue;
    EXPECT_EQ(fp().mul(a, fp().inv(a)), U256(1));
  }
}

TEST(ModArith, ScalarInverse) {
  Rng rng(109);
  for (int i = 0; i < 20; ++i) {
    U256 a = random_scalar(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(fn().mul(a, fn().inv(a)), U256(1));
  }
}

TEST(ModArith, AddSubRoundTrip) {
  Rng rng(110);
  for (int i = 0; i < 50; ++i) {
    U256 a = fp().normalize(
        U256(rng.next(), rng.next(), rng.next(), rng.next()));
    U256 b = fp().normalize(
        U256(rng.next(), rng.next(), rng.next(), rng.next()));
    EXPECT_EQ(fp().sub(fp().add(a, b), b), a);
  }
}

TEST(ModArith, NegIsAdditiveInverse) {
  Rng rng(111);
  U256 a = fp().normalize(
      U256(rng.next(), rng.next(), rng.next(), rng.next()));
  EXPECT_TRUE(fp().add(a, fp().neg(a)).is_zero());
  EXPECT_TRUE(fp().neg(U256()).is_zero());
}

TEST(ModArith, PowMatchesRepeatedMul) {
  U256 a(3);
  U256 a5 = fp().pow(a, U256(5));
  EXPECT_EQ(a5, U256(243));
}

TEST(ModArith, ReduceLargeProduct) {
  // (p-1)² mod p == 1.
  std::uint64_t borrow;
  U256 p_minus_1 = sub(field_p(), U256(1), borrow);
  EXPECT_EQ(fp().mul(p_minus_1, p_minus_1), U256(1));
}

}  // namespace
}  // namespace fist::secp
