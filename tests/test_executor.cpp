#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fist {
namespace {

TEST(Executor, WorkerCountDefaultsAndClamps) {
  Executor def;
  EXPECT_GE(def.worker_count(), 1u);
  EXPECT_EQ(def.worker_count(), Executor::default_threads());

  Executor one(1);
  EXPECT_EQ(one.worker_count(), 1u);
  EXPECT_TRUE(one.inline_mode());

  Executor four(4);
  EXPECT_EQ(four.worker_count(), 4u);
  EXPECT_FALSE(four.inline_mode());
}

TEST(Executor, ParallelForRunsEveryIndexExactlyOnce) {
  Executor exec(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  exec.parallel_for(0, n, 7, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LT(lo, hi);
    ASSERT_LE(hi, n);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Executor, ParallelForEachCoversRangeWithOffset) {
  Executor exec(3);
  std::atomic<std::uint64_t> sum{0};
  exec.parallel_for_each(10, 110, [&](std::size_t i) { sum.fetch_add(i); });
  // sum of 10..109
  EXPECT_EQ(sum.load(), (10u + 109u) * 100u / 2u);
}

TEST(Executor, EmptyRangeIsNoOp) {
  Executor exec(4);
  bool touched = false;
  exec.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { touched = true; });
  exec.parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Executor, ExceptionPropagatesToCaller) {
  Executor exec(4);
  auto boom = [&] {
    exec.parallel_for(0, 1000, 1, [&](std::size_t lo, std::size_t) {
      if (lo == 500) throw std::runtime_error("chunk 500 failed");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);

  // The pool survives a throwing parallel_for and stays usable.
  std::atomic<int> count{0};
  exec.parallel_for_each(0, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(Executor, ExceptionPropagatesInInlineMode) {
  Executor exec(1);
  EXPECT_THROW(
      exec.parallel_for(0, 10, 1,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 3) throw std::out_of_range("inline");
                        }),
      std::out_of_range);
}

TEST(Executor, NestedParallelForDoesNotDeadlock) {
  Executor exec(4);
  const std::size_t outer = 16, inner = 500;
  std::vector<std::atomic<std::uint64_t>> sums(outer);
  exec.parallel_for_each(0, outer, [&](std::size_t o) {
    exec.parallel_for(0, inner, 13, [&](std::size_t lo, std::size_t hi) {
      std::uint64_t part = 0;
      for (std::size_t i = lo; i < hi; ++i) part += i;
      sums[o].fetch_add(part);
    });
  });
  for (std::size_t o = 0; o < outer; ++o)
    EXPECT_EQ(sums[o].load(), inner * (inner - 1) / 2);
}

TEST(Executor, InlineModeRunsOnCallerInIndexOrder) {
  Executor exec(1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  exec.parallel_for(0, 100, 9, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = lo; i < hi; ++i) order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, ManySmallParallelForsInSequence) {
  Executor exec(4);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round)
    exec.parallel_for_each(0, 16, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 200u * 16u);
}

TEST(Executor, ConcurrentCallersShareThePool) {
  Executor exec(4);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c)
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round)
        exec.parallel_for_each(0, 100, [&](std::size_t) { total.fetch_add(1); });
    });
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 3u * 20u * 100u);
}

}  // namespace
}  // namespace fist
