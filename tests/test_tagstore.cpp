#include "tag/tagstore.hpp"

#include <gtest/gtest.h>

namespace fist {
namespace {

Tag observed(const std::string& name) {
  return Tag{name, Category::BankExchange, TagSource::Observed};
}
Tag scraped(const std::string& name) {
  return Tag{name, Category::BankExchange, TagSource::Scraped};
}

TEST(TagStore, AddAndFind) {
  TagStore store;
  store.add(1, observed("Mt. Gox"));
  ASSERT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(1)->service, "Mt. Gox");
  EXPECT_EQ(store.find(2), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(TagStore, MoreReliableSourceWins) {
  TagStore store;
  store.add(1, scraped("Wrong Name"));
  store.add(1, observed("Mt. Gox"));
  EXPECT_EQ(store.find(1)->service, "Mt. Gox");
  EXPECT_EQ(store.find(1)->source, TagSource::Observed);
}

TEST(TagStore, LessReliableDoesNotOverwrite) {
  TagStore store;
  store.add(1, observed("Mt. Gox"));
  store.add(1, scraped("Impostor"));
  EXPECT_EQ(store.find(1)->service, "Mt. Gox");
  EXPECT_TRUE(store.conflicts().empty());
}

TEST(TagStore, EqualReliabilityConflictRecorded) {
  TagStore store;
  store.add(1, observed("Mt. Gox"));
  store.add(1, observed("Bitstamp"));
  EXPECT_EQ(store.find(1)->service, "Mt. Gox");  // first kept
  ASSERT_EQ(store.conflicts().size(), 1u);
  EXPECT_EQ(store.conflicts()[0].second.service, "Bitstamp");
}

TEST(TagStore, EqualDuplicateIsNotConflict) {
  TagStore store;
  store.add(1, observed("Mt. Gox"));
  store.add(1, observed("Mt. Gox"));
  EXPECT_TRUE(store.conflicts().empty());
}

TEST(TagStore, CountBySource) {
  TagStore store;
  store.add(1, observed("A"));
  store.add(2, observed("B"));
  store.add(3, scraped("C"));
  EXPECT_EQ(store.count_by_source(TagSource::Observed), 2u);
  EXPECT_EQ(store.count_by_source(TagSource::Scraped), 1u);
  EXPECT_EQ(store.count_by_source(TagSource::SelfAdvertised), 0u);
}

TEST(TagStore, SourceNames) {
  EXPECT_EQ(tag_source_name(TagSource::Observed), "observed");
  EXPECT_EQ(tag_source_name(TagSource::SelfAdvertised), "self-advertised");
  EXPECT_EQ(tag_source_name(TagSource::Scraped), "scraped");
}

}  // namespace
}  // namespace fist
