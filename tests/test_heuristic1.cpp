#include "cluster/heuristic1.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

AddrId id_of(const ChainView& view, std::uint32_t i) {
  auto found = view.addresses().find(test::addr(i));
  EXPECT_TRUE(found.has_value()) << "address " << i << " not in view";
  return found.value_or(kNoAddr);
}

TEST(Heuristic1, MergesCoSpentInputs) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(10));
  auto c2 = chain.coinbase(2, btc(20));
  chain.next_block();
  chain.spend({c1, c2}, {{3, btc(29)}});
  ChainView view = chain.view();

  H1Stats stats;
  UnionFind uf = heuristic1(view, &stats);
  EXPECT_TRUE(uf.same(id_of(view, 1), id_of(view, 2)));
  EXPECT_FALSE(uf.same(id_of(view, 1), id_of(view, 3)));
  EXPECT_EQ(stats.multi_input_txs, 1u);
  EXPECT_EQ(stats.links, 1u);
}

TEST(Heuristic1, SingleInputTxMergesNothing) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(10));
  chain.next_block();
  chain.spend({c1}, {{2, btc(9)}});
  ChainView view = chain.view();

  H1Stats stats;
  UnionFind uf = heuristic1(view, &stats);
  EXPECT_FALSE(uf.same(id_of(view, 1), id_of(view, 2)));
  EXPECT_EQ(stats.links, 0u);
}

TEST(Heuristic1, TransitiveAcrossTransactions) {
  TestChain chain;
  auto a = chain.coinbase(1, btc(10));
  auto b = chain.coinbase(2, btc(10));
  auto c = chain.coinbase(3, btc(10));
  auto d = chain.coinbase(4, btc(10));
  chain.next_block();
  // {1,2} then {2's owner spends with 3} via a new coin to addr 2.
  chain.spend({a, b}, {{5, btc(19)}});
  auto b2 = chain.coinbase(2, btc(7));
  chain.next_block();
  chain.spend({b2, c}, {{6, btc(16)}});
  chain.next_block();
  ChainView view = chain.view();
  (void)d;

  UnionFind uf = heuristic1(view);
  EXPECT_TRUE(uf.same(id_of(view, 1), id_of(view, 3)));  // via addr 2
  EXPECT_FALSE(uf.same(id_of(view, 1), id_of(view, 4)));
}

TEST(Heuristic1, SameAddressTwiceAsInput) {
  TestChain chain;
  auto a1 = chain.coinbase(1, btc(5));
  auto a2 = chain.coinbase(1, btc(6));
  chain.next_block();
  chain.spend({a1, a2}, {{2, btc(10)}});
  ChainView view = chain.view();

  H1Stats stats;
  UnionFind uf = heuristic1(view, &stats);
  // Both inputs are the same user; no link is recorded.
  EXPECT_EQ(stats.links, 0u);
  EXPECT_EQ(uf.size_of(id_of(view, 1)), 1u);
}

TEST(Heuristic1, CoinbasesNeverMerge) {
  TestChain chain;
  chain.coinbase(1, btc(50));
  chain.coinbase(2, btc(50));
  ChainView view = chain.view();
  H1Stats stats;
  UnionFind uf = heuristic1(view, &stats);
  EXPECT_EQ(stats.links, 0u);
  EXPECT_FALSE(uf.same(id_of(view, 1), id_of(view, 2)));
}

TEST(Heuristic1, ManyInputsOneTx) {
  TestChain chain;
  std::vector<test::CoinRef> coins;
  for (std::uint32_t i = 0; i < 20; ++i)
    coins.push_back(chain.coinbase(i, btc(1)));
  chain.next_block();
  chain.spend(coins, {{100, btc(19)}});
  ChainView view = chain.view();

  H1Stats stats;
  UnionFind uf = heuristic1(view, &stats);
  EXPECT_EQ(stats.links, 19u);
  for (std::uint32_t i = 1; i < 20; ++i)
    EXPECT_TRUE(uf.same(id_of(view, 0), id_of(view, i)));
  EXPECT_EQ(uf.size_of(id_of(view, 0)), 20u);
}

TEST(Heuristic1, ApplyIntoExistingUnionFind) {
  TestChain chain;
  auto c1 = chain.coinbase(1, btc(10));
  auto c2 = chain.coinbase(2, btc(20));
  chain.next_block();
  chain.spend({c1, c2}, {{3, btc(29)}});
  ChainView view = chain.view();

  UnionFind uf;  // empty; apply grows it
  apply_heuristic1(view, uf);
  EXPECT_EQ(uf.size(), view.address_count());
  EXPECT_TRUE(uf.same(id_of(view, 1), id_of(view, 2)));
}

}  // namespace
}  // namespace fist
