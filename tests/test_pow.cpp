#include "chain/pow.hpp"

#include <gtest/gtest.h>

namespace fist {
namespace {

TEST(Pow, ExpandGenesisBits) {
  auto target = expand_compact(kGenesisBits);
  ASSERT_TRUE(target.has_value());
  // 0x1d00ffff => 0xffff << (8*(0x1d-3)) — the classic "difficulty 1".
  EXPECT_EQ(target->hex(),
            "00000000ffff0000000000000000000000000000000000000000000000000000");
}

TEST(Pow, ExpandSmallExponent) {
  // exponent <= 3 shifts the mantissa down.
  auto t = expand_compact(0x03123456);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, U256(0x123456));
  auto t2 = expand_compact(0x01120000);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(*t2, U256(0x12));
}

TEST(Pow, ExpandRejectsNegative) {
  EXPECT_FALSE(expand_compact(0x03800000).has_value());
}

TEST(Pow, ExpandRejectsOverflow) {
  EXPECT_FALSE(expand_compact(0xff123456).has_value());
}

TEST(Pow, ZeroMantissaIsZeroTarget) {
  auto t = expand_compact(0x1d000000);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->is_zero());
}

TEST(Pow, CompactRoundTrip) {
  for (std::uint32_t bits : {kGenesisBits, 0x207fffffu, 0x1b0404cbu,
                             0x181bc330u, kEasyBits}) {
    auto target = expand_compact(bits);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(to_compact(*target), bits) << std::hex << bits;
  }
}

TEST(Pow, CheckAcceptsEasyTarget) {
  // With kEasyBits nearly every hash passes; an all-zero hash always
  // does.
  Hash256 zero;
  EXPECT_TRUE(check_proof_of_work(zero, kEasyBits));
}

TEST(Pow, CheckRejectsAboveTarget) {
  // All-0xff hash is above any sane target.
  Bytes high(32, 0xff);
  Hash256 h = Hash256::from_bytes(high);
  EXPECT_FALSE(check_proof_of_work(h, kGenesisBits));
  EXPECT_FALSE(check_proof_of_work(h, kEasyBits));
}

TEST(Pow, CheckZeroTargetRejectsEverything) {
  Hash256 zero;
  EXPECT_FALSE(check_proof_of_work(zero, 0x1d000000));
}

TEST(Pow, BoundaryExactlyAtTarget) {
  // Hash exactly equal to the expanded target passes (<=).
  auto target = expand_compact(kGenesisBits);
  auto be = target->to_be_bytes();
  // Hash256 stores bytes that compare little-endian; reverse.
  Bytes le(be.rbegin(), be.rend());
  Hash256 h = Hash256::from_bytes(le);
  EXPECT_TRUE(check_proof_of_work(h, kGenesisBits));
}

TEST(Pow, GenesisBlockHashPasses) {
  // The real Bitcoin genesis block hash, displayed (big-endian):
  // 000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f
  Hash256 genesis = Hash256::from_hex_reversed(
      "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f");
  EXPECT_TRUE(check_proof_of_work(genesis, kGenesisBits));
}


TEST(Retarget, OnScheduleKeepsDifficulty) {
  // Blocks arrived exactly on time: the target is unchanged (up to
  // compact-encoding precision).
  std::uint32_t bits = 0x1b0404cb;
  std::uint32_t next = next_work_required(bits, 1'209'600, 1'209'600,
                                          kGenesisBits);
  EXPECT_EQ(next, bits);
}

TEST(Retarget, FastBlocksRaiseDifficulty) {
  // Half the expected timespan → target halves (difficulty doubles).
  std::uint32_t bits = 0x1b0404cb;
  std::uint32_t next =
      next_work_required(bits, 604'800, 1'209'600, kGenesisBits);
  auto before = expand_compact(bits);
  auto after = expand_compact(next);
  ASSERT_TRUE(before && after);
  EXPECT_LT(cmp(*after, *before), 0);
  // Ratio ~1/2: after*2 within one mantissa step of before.
  U256 doubled = shl(*after, 1);
  std::uint64_t borrow;
  U256 diff = cmp(doubled, *before) >= 0 ? sub(doubled, *before, borrow)
                                         : sub(*before, doubled, borrow);
  EXPECT_LT(diff.bit_length() + 24, before->bit_length() + 8);
}

TEST(Retarget, SlowBlocksLowerDifficulty) {
  std::uint32_t bits = 0x1b0404cb;
  std::uint32_t next =
      next_work_required(bits, 2 * 1'209'600, 1'209'600, kGenesisBits);
  auto before = expand_compact(bits);
  auto after = expand_compact(next);
  EXPECT_GT(cmp(*after, *before), 0);
}

TEST(Retarget, AdjustmentClampedToFour) {
  std::uint32_t bits = 0x1b0404cb;
  // 100x too slow still only quadruples the target.
  std::uint32_t slow =
      next_work_required(bits, 100 * 1'209'600, 1'209'600, kGenesisBits);
  std::uint32_t four =
      next_work_required(bits, 4 * 1'209'600, 1'209'600, kGenesisBits);
  EXPECT_EQ(slow, four);
  // 100x too fast still only quarters it.
  std::uint32_t fast =
      next_work_required(bits, 1'209'600 / 100, 1'209'600, kGenesisBits);
  std::uint32_t quarter =
      next_work_required(bits, 1'209'600 / 4, 1'209'600, kGenesisBits);
  EXPECT_EQ(fast, quarter);
}

TEST(Retarget, ClipsToTheLimit) {
  // Already at minimum difficulty: slowing down cannot go past it.
  std::uint32_t next = next_work_required(kGenesisBits, 4 * 1'209'600,
                                          1'209'600, kGenesisBits);
  EXPECT_EQ(next, kGenesisBits);
}

TEST(Retarget, DegenerateTimespanIsIdentity) {
  EXPECT_EQ(next_work_required(0x1b0404cb, 100, 0, kGenesisBits),
            0x1b0404cbu);
}

}  // namespace
}  // namespace fist
