#include "analysis/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cluster/heuristic1.hpp"
#include "cluster/heuristic2.hpp"
#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

struct ExportFixture {
  ChainView view;
  std::unique_ptr<Clustering> clustering;
  std::unique_ptr<ClusterNaming> naming;
  H2Result h2;

  ExportFixture() {
    TestChain chain{kGenesisTime, kDay};
    auto a = chain.coinbase(1, btc(100));
    auto b = chain.coinbase(2, btc(50));
    chain.next_block();
    chain.spend({a, b}, {{5, btc(30)}, {6, btc(119)}});
    chain.next_block();
    view = chain.view();

    UnionFind uf = heuristic1(view);
    h2 = apply_heuristic2(view, H2Options{});
    clustering =
        std::make_unique<Clustering>(Clustering::from_union_find(uf));
    TagStore tags;
    tags.add(*view.addresses().find(test::addr(5)),
             Tag{"Mt. Gox, Inc.", Category::BankExchange,
                 TagSource::Observed});
    naming = std::make_unique<ClusterNaming>(clustering->assignment(),
                                             clustering->sizes(), tags);
  }
};

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with \"quote\""), "\"with \"\"quote\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Export, ClustersCsvShape) {
  ExportFixture f;
  std::ostringstream os;
  export_clusters_csv(os, f.view, *f.clustering, *f.naming);
  std::string out = os.str();
  // Header + one row per address.
  std::size_t lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(lines, 1 + f.view.address_count());
  EXPECT_EQ(out.substr(0, out.find('\n')),
            "address,cluster,service,category");
  // The tagged service appears quoted (it contains a comma).
  EXPECT_NE(out.find("\"Mt. Gox, Inc.\""), std::string::npos);
  EXPECT_NE(out.find("exchanges"), std::string::npos);
}

TEST(Export, BalancesCsvShape) {
  ExportFixture f;
  BalanceSeries series =
      category_balances(f.view, *f.clustering, *f.naming, kDay);
  std::ostringstream os;
  export_balances_csv(os, series);
  std::string out = os.str();
  std::size_t lines = std::count(out.begin(), out.end(), '\n');
  EXPECT_EQ(lines, 1 + series.times.size() * series.tracks.size());
  EXPECT_NE(out.find("exchanges"), std::string::npos);
  EXPECT_NE(out.find("2009-01-"), std::string::npos);
}

TEST(Export, FlowsCsvDeterministic) {
  ExportFixture f;
  UserGraph graph = UserGraph::build(f.view, *f.clustering);
  std::ostringstream a, b;
  export_flows_csv(a, graph, *f.naming);
  export_flows_csv(b, graph, *f.naming);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("from,to,value_btc,tx_count"), std::string::npos);
}

TEST(Export, FlowsDotIsWellFormed) {
  ExportFixture f;
  UserGraph graph = UserGraph::build(f.view, *f.clustering);
  std::ostringstream os;
  export_flows_dot(os, graph, *f.naming, 10);
  std::string out = os.str();
  EXPECT_EQ(out.substr(0, 14), "digraph flows ");
  EXPECT_NE(out.find("->"), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 2), "}\n");
  // Named node boxed.
  EXPECT_NE(out.find("shape=box"), std::string::npos);
}

TEST(Export, PeelsCsv) {
  // Reuse the export fixture's machinery on a small peel chain.
  TestChain chain;
  chain.coinbase(200, btc(1));
  auto start = chain.coinbase(100, btc(100));
  chain.next_block();
  chain.spend_all({start}, {{200, btc(5)}, {101, btc(94)}});
  ChainView view = chain.view();
  UnionFind uf = heuristic1(view);
  H2Result h2 = apply_heuristic2(view, H2Options{});
  Clustering clustering = Clustering::from_union_find(uf);
  TagStore tags;
  ClusterNaming naming(clustering.assignment(), clustering.sizes(), tags);
  PeelFollower follower(view, h2, clustering, naming);
  TxIndex t = view.find_tx(start.txid);
  PeelChainResult res = follower.follow(t, start.index, FollowOptions{10});

  std::ostringstream os;
  export_peels_csv(os, view, res);
  std::string out = os.str();
  EXPECT_NE(out.find("hop,txid,recipient"), std::string::npos);
  EXPECT_NE(out.find("5.0"), std::string::npos);  // the peel value
}

}  // namespace
}  // namespace fist
