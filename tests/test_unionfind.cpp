#include "cluster/unionfind.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

namespace fist {
namespace {

TEST(UnionFind, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.size_of(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.size_of(0), 2u);
}

TEST(UnionFind, UniteIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.set_count(), 2u);
}

TEST(UnionFind, Transitivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.size_of(3), 4u);
  EXPECT_FALSE(uf.same(0, 4));
}

TEST(UnionFind, GrowAddsSingletons) {
  UnionFind uf(2);
  uf.unite(0, 1);
  uf.grow(5);
  EXPECT_EQ(uf.set_count(), 4u);  // {0,1}, {2}, {3}, {4}
  EXPECT_FALSE(uf.same(0, 4));
  uf.grow(3);  // shrink request is a no-op
  EXPECT_EQ(uf.size(), 5u);
}

TEST(UnionFind, FindConstMatchesFind) {
  UnionFind uf(10);
  uf.unite(1, 2);
  uf.unite(2, 3);
  const UnionFind& cuf = uf;
  EXPECT_EQ(cuf.find_const(3), uf.find(3));
  EXPECT_EQ(cuf.find_const(1), cuf.find_const(2));
}

// Property test against a naive reference implementation.
class UnionFindRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionFindRandomOps, MatchesNaiveReference) {
  const std::size_t n = 200;
  UnionFind uf(n);
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
  auto naive_merge = [&](std::uint32_t a, std::uint32_t b) {
    std::uint32_t la = label[a], lb = label[b];
    if (la == lb) return;
    for (auto& l : label)
      if (l == lb) l = la;
  };

  Rng rng(GetParam());
  for (int op = 0; op < 500; ++op) {
    auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n));
    uf.unite(a, b);
    naive_merge(a, b);
  }

  // Same partition: pairs agree everywhere (spot-check all pairs of a
  // random sample plus full label-class consistency).
  std::map<std::uint32_t, std::uint32_t> rep_to_label;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t rep = uf.find(i);
    auto [it, inserted] = rep_to_label.emplace(rep, label[i]);
    EXPECT_EQ(it->second, label[i]) << "element " << i;
  }
  // Set sizes agree.
  std::map<std::uint32_t, std::uint32_t> label_counts;
  for (std::uint32_t i = 0; i < n; ++i) ++label_counts[label[i]];
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(uf.size_of(i), label_counts[label[i]]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindRandomOps,
                         ::testing::Values(1, 2, 3, 42, 1337));

TEST(UnionFind, LargeScaleChainMerge) {
  const std::size_t n = 1'000'000;
  UnionFind uf(n);
  for (std::uint32_t i = 1; i < n; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_EQ(uf.size_of(0), n);
  EXPECT_TRUE(uf.same(0, static_cast<std::uint32_t>(n - 1)));
}

}  // namespace
}  // namespace fist
