#include "cluster/unionfind.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace fist {
namespace {

TEST(UnionFind, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.size_of(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(0, 2));
  EXPECT_EQ(uf.size_of(0), 2u);
}

TEST(UnionFind, UniteIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.set_count(), 2u);
}

TEST(UnionFind, Transitivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_TRUE(uf.same(0, 3));
  EXPECT_EQ(uf.size_of(3), 4u);
  EXPECT_FALSE(uf.same(0, 4));
}

TEST(UnionFind, GrowAddsSingletons) {
  UnionFind uf(2);
  uf.unite(0, 1);
  uf.grow(5);
  EXPECT_EQ(uf.set_count(), 4u);  // {0,1}, {2}, {3}, {4}
  EXPECT_FALSE(uf.same(0, 4));
  uf.grow(3);  // shrink request is a no-op
  EXPECT_EQ(uf.size(), 5u);
}

TEST(UnionFind, FindConstMatchesFind) {
  UnionFind uf(10);
  uf.unite(1, 2);
  uf.unite(2, 3);
  const UnionFind& cuf = uf;
  EXPECT_EQ(cuf.find_const(3), uf.find(3));
  EXPECT_EQ(cuf.find_const(1), cuf.find_const(2));
}

// Property test against a naive reference implementation.
class UnionFindRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionFindRandomOps, MatchesNaiveReference) {
  const std::size_t n = 200;
  UnionFind uf(n);
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
  auto naive_merge = [&](std::uint32_t a, std::uint32_t b) {
    std::uint32_t la = label[a], lb = label[b];
    if (la == lb) return;
    for (auto& l : label)
      if (l == lb) l = la;
  };

  Rng rng(GetParam());
  for (int op = 0; op < 500; ++op) {
    auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n));
    uf.unite(a, b);
    naive_merge(a, b);
  }

  // Same partition: pairs agree everywhere (spot-check all pairs of a
  // random sample plus full label-class consistency).
  std::map<std::uint32_t, std::uint32_t> rep_to_label;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t rep = uf.find(i);
    auto [it, inserted] = rep_to_label.emplace(rep, label[i]);
    EXPECT_EQ(it->second, label[i]) << "element " << i;
  }
  // Set sizes agree.
  std::map<std::uint32_t, std::uint32_t> label_counts;
  for (std::uint32_t i = 0; i < n; ++i) ++label_counts[label[i]];
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(uf.size_of(i), label_counts[label[i]]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindRandomOps,
                         ::testing::Values(1, 2, 3, 42, 1337));

// Canonical partition signature: each element labeled by the
// first-encounter index of its set. Two forests with equal signatures
// induce the same partition regardless of which elements are roots.
std::vector<std::uint32_t> canonical_partition(const UnionFind& uf) {
  std::vector<std::uint32_t> label(uf.size());
  std::unordered_map<std::uint32_t, std::uint32_t> rep_to_id;
  for (std::uint32_t i = 0; i < uf.size(); ++i) {
    std::uint32_t rep = uf.find_const(i);
    auto [it, inserted] =
        rep_to_id.emplace(rep, static_cast<std::uint32_t>(rep_to_id.size()));
    label[i] = it->second;
  }
  return label;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> random_links(
    std::uint64_t seed, std::size_t n, std::size_t count) {
  Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  links.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    links.emplace_back(static_cast<std::uint32_t>(rng.below(n)),
                       static_cast<std::uint32_t>(rng.below(n)));
  return links;
}

TEST(UnionFindAbsorb, MergesConnectivityAndCounts) {
  UnionFind a(6), b(6);
  a.unite(0, 1);
  b.unite(1, 2);
  b.unite(4, 5);
  std::uint64_t merges = a.absorb(b);
  EXPECT_EQ(merges, 2u);
  EXPECT_TRUE(a.same(0, 2));
  EXPECT_TRUE(a.same(4, 5));
  EXPECT_FALSE(a.same(0, 4));
  EXPECT_EQ(a.set_count(), 3u);  // {0,1,2}, {3}, {4,5}
}

TEST(UnionFindAbsorb, GrowsToCoverLargerForest) {
  UnionFind small(2), big(8);
  big.unite(5, 7);
  small.absorb(big);
  EXPECT_EQ(small.size(), 8u);
  EXPECT_TRUE(small.same(5, 7));
}

TEST(UnionFindAbsorb, Idempotent) {
  const std::size_t n = 100;
  UnionFind base(n);
  for (auto [x, y] : random_links(7, n, 80)) base.unite(x, y);
  UnionFind target(n);
  target.absorb(base);
  std::vector<std::uint32_t> once = canonical_partition(target);
  EXPECT_EQ(target.absorb(base), 0u);  // second absorb merges nothing
  EXPECT_EQ(canonical_partition(target), once);
}

// Randomized: absorbing a family of forests yields the same partition
// in every absorb order (associativity/commutativity of the merge).
class AbsorbOrderInsensitive : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AbsorbOrderInsensitive, AnyAbsorbOrderSamePartition) {
  const std::size_t n = 300;
  const std::size_t parts = 5;
  std::vector<UnionFind> forests(parts, UnionFind(n));
  for (std::size_t p = 0; p < parts; ++p)
    for (auto [x, y] : random_links(GetParam() * 31 + p, n, 120))
      forests[p].unite(x, y);

  std::vector<std::size_t> order(parts);
  for (std::size_t p = 0; p < parts; ++p) order[p] = p;

  std::vector<std::uint32_t> reference;
  Rng shuffle_rng(GetParam() ^ 0x5eedu);
  for (int trial = 0; trial < 6; ++trial) {
    // Fisher–Yates with the deterministic test rng.
    for (std::size_t i = parts - 1; i > 0; --i)
      std::swap(order[i], order[shuffle_rng.below(i + 1)]);
    UnionFind merged(n);
    for (std::size_t p : order) merged.absorb(forests[p]);
    std::vector<std::uint32_t> sig = canonical_partition(merged);
    if (trial == 0)
      reference = sig;
    else
      EXPECT_EQ(sig, reference) << "absorb order changed the partition";
  }
}

// Randomized: sharding a link sequence, building per-shard forests and
// absorbing them equals applying the sequence to a single forest.
class ShardedAbsorb : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedAbsorb, ShardedThenMergedEqualsSequential) {
  const std::size_t n = 400;
  auto links = random_links(GetParam(), n, 600);

  UnionFind sequential(n);
  for (auto [x, y] : links) sequential.unite(x, y);

  for (std::size_t shards : {2u, 3u, 8u}) {
    std::vector<UnionFind> forest(shards, UnionFind(n));
    for (std::size_t i = 0; i < links.size(); ++i)
      forest[i * shards / links.size()].unite(links[i].first,
                                              links[i].second);
    UnionFind merged(n);
    for (const UnionFind& f : forest) merged.absorb(f);
    EXPECT_EQ(canonical_partition(merged), canonical_partition(sequential))
        << "shards=" << shards;
    EXPECT_EQ(merged.set_count(), sequential.set_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbsorbOrderInsensitive,
                         ::testing::Values(1, 2, 3, 42, 1337));
INSTANTIATE_TEST_SUITE_P(Seeds, ShardedAbsorb,
                         ::testing::Values(1, 2, 3, 42, 1337));

TEST(UnionFindAbsorb, CallbackReportsEveryMergeInAscendingOrder) {
  UnionFind base(6);
  base.unite(0, 1);  // already-known link: replaying it is a no-op
  UnionFind other(6);
  other.unite(0, 1);
  other.unite(2, 3);
  other.unite(3, 4);

  std::vector<UnionFind::MergeEvent> events;
  std::uint64_t merges = base.absorb(
      other, [&](const UnionFind::MergeEvent& e) { events.push_back(e); });
  EXPECT_EQ(merges, 2u);
  ASSERT_EQ(events.size(), merges);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LT(events[i - 1].element, events[i].element)
        << "merge events must replay in ascending element order";
  for (const UnionFind::MergeEvent& e : events) {
    EXPECT_TRUE(base.same(e.element, e.joined));
    EXPECT_EQ(base.find(e.element), base.find(e.root));
  }

  // Replaying the event stream into a fresh forest reproduces exactly
  // the connectivity the absorb added — the merge-journal property a
  // delta consumer relies on.
  UnionFind replay(6);
  replay.unite(0, 1);
  for (const UnionFind::MergeEvent& e : events)
    replay.unite(e.element, e.joined);
  for (std::uint32_t a = 0; a < 6; ++a)
    for (std::uint32_t b = 0; b < 6; ++b)
      EXPECT_EQ(replay.same(a, b), base.same(a, b))
          << "pair (" << a << "," << b << ")";
}

TEST(UnionFindAbsorb, CallbackAbsorbIsIdempotent) {
  UnionFind base(5);
  UnionFind other(5);
  other.unite(0, 1);
  other.unite(1, 2);

  std::uint64_t first = base.absorb(other, nullptr);  // null cb is legal
  EXPECT_EQ(first, 2u);
  std::vector<UnionFind::MergeEvent> events;
  std::uint64_t second = base.absorb(
      other, [&](const UnionFind::MergeEvent& e) { events.push_back(e); });
  EXPECT_EQ(second, 0u);
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(base.set_count(), 3u);
}

TEST(UnionFindAbsorb, CallbackOverloadMatchesPlainAbsorb) {
  const std::uint32_t n = 64;
  Rng rng(99);
  UnionFind other(n);
  for (int i = 0; i < 40; ++i)
    other.unite(static_cast<std::uint32_t>(rng.below(n)),
                static_cast<std::uint32_t>(rng.below(n)));

  UnionFind plain(n), with_cb(n);
  std::uint64_t a = plain.absorb(other);
  std::uint64_t b = with_cb.absorb(other, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(plain.set_count(), with_cb.set_count());
  for (std::uint32_t x = 0; x < n; ++x)
    for (std::uint32_t y = x + 1; y < n; ++y)
      EXPECT_EQ(plain.same(x, y), with_cb.same(x, y));
}

TEST(UnionFind, LargeScaleChainMerge) {
  const std::size_t n = 1'000'000;
  UnionFind uf(n);
  for (std::uint32_t i = 1; i < n; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_EQ(uf.size_of(0), n);
  EXPECT_TRUE(uf.same(0, static_cast<std::uint32_t>(n - 1)));
}

}  // namespace
}  // namespace fist
