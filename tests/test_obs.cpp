// test_obs.cpp — the observability substrate. Three layers of
// guarantees: (1) metric registries merge their per-thread shards
// exactly, including under executor concurrency (run under TSan in
// CI); (2) spans nest lexically and record a deterministic tree;
// (3) across the whole forensic pipeline, the span structure and
// every metric outside the `exec.` namespace are bit-identical at
// threads = 1, 2, 8 — the observability extension of the pipeline's
// determinism contract.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/executor.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/span.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

namespace fist {
namespace {

#ifndef FISTFUL_NO_OBS

TEST(Metrics, CounterAccumulates) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.counter("c");
  c.inc();
  c.add(41);
  obs::Snapshot snap = registry.snapshot();
  ASSERT_NE(snap.counter("c"), nullptr);
  EXPECT_EQ(snap.counter("c")->value, 42u);
  EXPECT_EQ(snap.counter("missing"), nullptr);
}

TEST(Metrics, SameNameSameCounter) {
  obs::MetricsRegistry registry;
  registry.counter("shared").inc();
  registry.counter("shared").inc();
  EXPECT_EQ(registry.snapshot().counter("shared")->value, 2u);
}

TEST(Metrics, GaugeSetAddMax) {
  obs::MetricsRegistry registry;
  obs::Gauge g = registry.gauge("g");
  g.set(-5);
  g.add(2);
  EXPECT_EQ(registry.snapshot().gauge("g")->value, -3);
  g.update_max(10);
  g.update_max(7);  // lower than current: no effect
  EXPECT_EQ(registry.snapshot().gauge("g")->value, 10);
}

TEST(Metrics, HistogramBucketsAndSum) {
  obs::MetricsRegistry registry;
  obs::Histogram h = registry.histogram("h", {1, 2.5});
  h.observe(0.5);  // <= 1
  h.observe(1);    // <= 1 (bounds are inclusive)
  h.observe(2);    // <= 2.5
  h.observe(99);   // overflow
  obs::Snapshot snap = registry.snapshot();
  const obs::HistogramValue* v = snap.histogram("h");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->bounds, (std::vector<double>{1, 2.5}));
  EXPECT_EQ(v->buckets, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(v->count, 4u);
  EXPECT_DOUBLE_EQ(v->sum, 102.5);
}

TEST(Metrics, SnapshotIsNameSorted) {
  obs::MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.counter("mid");
  obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
}

TEST(Metrics, ResetZeroesKeepsHandles) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.counter("c");
  c.add(7);
  registry.reset();
  EXPECT_EQ(registry.snapshot().counter("c")->value, 0u);
  c.inc();  // handle survives the reset
  EXPECT_EQ(registry.snapshot().counter("c")->value, 1u);
}

// The shard-merge exactness test CI runs under TSan: every worker of
// an 8-lane executor hammers the same counter/histogram, and the
// snapshot must equal the arithmetic total — no lost updates.
TEST(Metrics, ConcurrentUpdatesMergeExactly) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.counter("hammered");
  obs::Histogram h = registry.histogram("observed", {2, 4, 6});
  constexpr std::size_t kItems = 50'000;
  Executor exec(8);
  exec.parallel_for_each(0, kItems, [&](std::size_t i) {
    c.inc();
    h.observe(static_cast<double>(i % 8));
  });
  obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("hammered")->value, kItems);
  const obs::HistogramValue* v = snap.histogram("observed");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, kItems);
  double expected_sum = 0;
  for (std::size_t i = 0; i < kItems; ++i)
    expected_sum += static_cast<double>(i % 8);
  EXPECT_DOUBLE_EQ(v->sum, expected_sum);
}

TEST(Span, RecordsNestingIntoActiveTrace) {
  obs::Trace trace;
  {
    obs::TraceScope scope(trace);
    obs::Span root("root");
    {
      obs::Span child("child");
      obs::Span grandchild("grandchild");
    }
    obs::Span sibling("sibling");
  }
  std::vector<obs::SpanRecord> records = trace.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].name, "root");
  EXPECT_EQ(records[0].parent, obs::kNoParent);
  EXPECT_EQ(records[0].depth, 0u);
  EXPECT_EQ(records[1].name, "child");
  EXPECT_EQ(records[1].parent, 0u);
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_EQ(records[2].name, "grandchild");
  EXPECT_EQ(records[2].parent, 1u);
  EXPECT_EQ(records[2].depth, 2u);
  EXPECT_EQ(records[3].name, "sibling");
  EXPECT_EQ(records[3].parent, 0u);
  for (const obs::SpanRecord& r : records) EXPECT_GE(r.millis, 0.0);
}

TEST(Span, NoActiveTraceRecordsNothing) {
  ASSERT_EQ(obs::active_trace(), nullptr);
  obs::Span orphan("orphan");
  orphan.close();
  EXPECT_GE(orphan.millis(), 0.0);  // still measures
}

TEST(Span, TraceScopeIfNoneActiveKeepsAmbient) {
  obs::Trace outer, inner;
  {
    obs::TraceScope outer_scope(outer);
    obs::TraceScope inner_scope(inner, obs::TraceScope::Policy::IfNoneActive);
    EXPECT_FALSE(inner_scope.activated());
    obs::Span span("lands-in-outer");
  }
  EXPECT_TRUE(inner.empty());
  ASSERT_EQ(outer.records().size(), 1u);
  EXPECT_EQ(outer.records()[0].name, "lands-in-outer");

  {
    obs::TraceScope only(inner, obs::TraceScope::Policy::IfNoneActive);
    EXPECT_TRUE(only.activated());
    obs::Span span("lands-in-inner");
  }
  EXPECT_EQ(inner.records().size(), 1u);
}

#endif  // FISTFUL_NO_OBS

// ---- pipeline-wide determinism ---------------------------------------

sim::WorldConfig obs_world_config() {
  sim::WorldConfig cfg;
  cfg.days = 30;
  cfg.users = 60;
  cfg.blocks_per_day = 6;
  cfg.seed = 4242;
  return cfg;
}

sim::World& obs_world() {
  static sim::World* w = [] {
    auto* world = new sim::World(obs_world_config());
    world->run();
    return world;
  }();
  return *w;
}

/// Structure of one recorded span, durations excluded.
using SpanShape = std::tuple<std::string, std::uint32_t, std::uint32_t>;

struct PipelineObservation {
  std::vector<SpanShape> spans;
  std::map<std::string, std::uint64_t> counter_deltas;  // non-exec only
  std::map<std::string, std::int64_t> gauges;           // non-exec only
  std::map<std::string, std::pair<std::uint64_t, double>> histogram_deltas;
};

PipelineOptions threaded_options(unsigned threads) {
  PipelineOptions options;
  options.threads = threads;
  return options;
}

PipelineObservation observe_pipeline_run(unsigned threads) {
  sim::World& world = obs_world();  // built before the baseline snapshot
  obs::Snapshot before = obs::MetricsRegistry::global().snapshot();
  ForensicPipeline pipeline(world.store(), world.tag_feed(),
                            threaded_options(threads));
  pipeline.run();
  obs::Snapshot after = obs::MetricsRegistry::global().snapshot();

  PipelineObservation out;
  for (const obs::SpanRecord& r : pipeline.trace().records())
    out.spans.emplace_back(r.name, r.parent, r.depth);
  for (const obs::CounterValue& c : after.counters) {
    if (c.name.rfind("exec.", 0) == 0) continue;
    const obs::CounterValue* prev = before.counter(c.name);
    out.counter_deltas[c.name] = c.value - (prev != nullptr ? prev->value : 0);
  }
  for (const obs::GaugeValue& g : after.gauges) {
    if (g.name.rfind("exec.", 0) == 0) continue;
    out.gauges[g.name] = g.value;
  }
  for (const obs::HistogramValue& h : after.histograms) {
    if (h.name.rfind("exec.", 0) == 0) continue;
    const obs::HistogramValue* prev = before.histogram(h.name);
    out.histogram_deltas[h.name] = {
        h.count - (prev != nullptr ? prev->count : 0),
        h.sum - (prev != nullptr ? prev->sum : 0)};
  }
  return out;
}

// Metric values (not durations) and the span tree's (name, parent,
// depth) sequence must not depend on the thread count. `exec.*` is the
// one namespace allowed to vary (tasks, steals, queue depths describe
// scheduling itself).
TEST(ObsDeterminism, SpanStructureAndMetricsThreadCountInvariant) {
  PipelineObservation reference = observe_pipeline_run(1);
  for (unsigned threads : {2u, 8u}) {
    PipelineObservation run = observe_pipeline_run(threads);
    EXPECT_EQ(run.spans, reference.spans) << "threads=" << threads;
    EXPECT_EQ(run.counter_deltas, reference.counter_deltas)
        << "threads=" << threads;
    EXPECT_EQ(run.gauges, reference.gauges) << "threads=" << threads;
    EXPECT_EQ(run.histogram_deltas, reference.histogram_deltas)
        << "threads=" << threads;
  }

#ifndef FISTFUL_NO_OBS
  // Sanity on the reference itself: the stage spans are present, in
  // order, with the documented children.
  std::vector<std::string> roots;
  for (const SpanShape& s : reference.spans)
    if (std::get<1>(s) == obs::kNoParent) roots.push_back(std::get<0>(s));
  EXPECT_EQ(roots, (std::vector<std::string>{"view", "tags", "h1",
                                             "h1_naming", "dice", "h2",
                                             "finalize"}));
  EXPECT_GT(reference.counter_deltas.at("view.txs"), 0u);
  EXPECT_GT(reference.counter_deltas.at("h1.links"), 0u);
  EXPECT_GT(reference.counter_deltas.at("h2.labels"), 0u);
#endif
}

#ifndef FISTFUL_NO_OBS
// The StageTiming back-compat accessor mirrors the root spans 1:1.
TEST(ObsDeterminism, TimingsMirrorRootSpans) {
  ForensicPipeline pipeline(obs_world().store(), obs_world().tag_feed(),
                            threaded_options(1));
  pipeline.run();
  std::vector<std::string> roots;
  for (const obs::SpanRecord& r : pipeline.trace().records())
    if (r.parent == obs::kNoParent) roots.push_back(r.name);
  ASSERT_EQ(roots.size(), pipeline.timings().size());
  for (std::size_t i = 0; i < roots.size(); ++i)
    EXPECT_EQ(roots[i], pipeline.timings()[i].stage);
}
#endif

}  // namespace
}  // namespace fist
