#include "analysis/peeling.hpp"

#include <gtest/gtest.h>

#include "cluster/heuristic1.hpp"
#include "core/pipeline.hpp"
#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

// Builds a literal peeling chain: a large coin at addr 100 peels small
// amounts to recipients 200+i, remainder to fresh 101, 102, ...
struct PeelFixture {
  TestChain chain;
  ChainView view;
  std::unique_ptr<Clustering> clustering;
  std::unique_ptr<ClusterNaming> naming;
  H2Result h2;
  test::CoinRef start;
  int hops;

  explicit PeelFixture(int n_hops, bool tag_recipient0 = true)
      : hops(n_hops) {
    // Make the peel recipients "seen" first so Heuristic 2 can label the
    // change at every hop.
    std::vector<test::CoinRef> seeds;
    for (int i = 0; i < n_hops; ++i)
      seeds.push_back(
          chain.coinbase(static_cast<std::uint32_t>(200 + i), btc(1)));
    start = chain.coinbase(100, btc(1000));
    chain.next_block();

    test::CoinRef cursor = start;
    Amount remaining = btc(1000);
    for (int i = 0; i < n_hops; ++i) {
      Amount peel = btc(5);
      remaining -= peel;
      auto refs = chain.spend_all(
          {cursor}, {{static_cast<std::uint32_t>(200 + i), peel},
                     {static_cast<std::uint32_t>(101 + i), remaining}});
      cursor = refs[1];
      chain.next_block();
    }
    view = chain.view();

    UnionFind uf = heuristic1(view);
    H2Options opt;
    h2 = apply_heuristic2(view, opt);
    unite_h2_labels(view, h2, uf);
    clustering =
        std::make_unique<Clustering>(Clustering::from_union_find(uf));
    TagStore tags;
    if (tag_recipient0) {
      tags.add(*view.addresses().find(test::addr(200)),
               Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed});
      tags.add(*view.addresses().find(test::addr(201)),
               Tag{"Bitzino", Category::Gambling, TagSource::Observed});
    }
    naming = std::make_unique<ClusterNaming>(clustering->assignment(),
                                             clustering->sizes(), tags);
  }

  PeelFollower follower() const {
    return PeelFollower(view, h2, *clustering, *naming);
  }
};

TEST(Peeling, FollowsFullChain) {
  PeelFixture f(10);
  TxIndex start_tx = f.view.find_tx(f.start.txid);
  ASSERT_NE(start_tx, kNoTx);
  PeelChainResult result =
      f.follower().follow(start_tx, f.start.index, FollowOptions{100});
  EXPECT_EQ(result.hops, 10);
  EXPECT_EQ(result.peels.size(), 10u);
  EXPECT_EQ(result.end, ChainEnd::Unspent);
  EXPECT_EQ(result.shape_hops, 0);  // every hop had an H2 label
  EXPECT_EQ(result.final_amount, btc(1000) - 10 * btc(5));
}

TEST(Peeling, HopBudgetRespected) {
  PeelFixture f(10);
  TxIndex start_tx = f.view.find_tx(f.start.txid);
  PeelChainResult result =
      f.follower().follow(start_tx, f.start.index, FollowOptions{4});
  EXPECT_EQ(result.hops, 4);
  EXPECT_EQ(result.end, ChainEnd::MaxHops);
  EXPECT_EQ(result.peels.size(), 4u);
}

TEST(Peeling, PeelValuesAndRecipients) {
  PeelFixture f(6);
  TxIndex start_tx = f.view.find_tx(f.start.txid);
  PeelChainResult result =
      f.follower().follow(start_tx, f.start.index, FollowOptions{100});
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(result.peels[static_cast<std::size_t>(i)].hop, i);
    EXPECT_EQ(result.peels[static_cast<std::size_t>(i)].value, btc(5));
    EXPECT_EQ(result.peels[static_cast<std::size_t>(i)].recipient,
              *f.view.addresses().find(test::addr(200 + i)));
  }
}

TEST(Peeling, AttributesServicesViaNaming) {
  PeelFixture f(5);
  TxIndex start_tx = f.view.find_tx(f.start.txid);
  PeelChainResult result =
      f.follower().follow(start_tx, f.start.index, FollowOptions{100});
  EXPECT_EQ(result.peels[0].service, "Mt. Gox");
  EXPECT_EQ(result.peels[0].category, Category::BankExchange);
  EXPECT_EQ(result.peels[1].service, "Bitzino");
  EXPECT_TRUE(result.peels[2].service.empty());
}

TEST(Peeling, SummaryAggregatesByService) {
  PeelFixture f(5);
  TxIndex start_tx = f.view.find_tx(f.start.txid);
  PeelChainResult result =
      f.follower().follow(start_tx, f.start.index, FollowOptions{100});
  auto summary = summarize_peels(result);
  ASSERT_EQ(summary.size(), 2u);  // Bitzino, Mt. Gox (sorted)
  EXPECT_EQ(summary[0].service, "Bitzino");
  EXPECT_EQ(summary[0].peels, 1);
  EXPECT_EQ(summary[0].total, btc(5));
  EXPECT_EQ(summary[1].service, "Mt. Gox");
}

TEST(Peeling, StopsWithoutChangeLink) {
  // A chain whose second hop is ambiguous (both outputs fresh) and not
  // peel-shaped (equal values): the follower must stop there.
  TestChain chain;
  chain.coinbase(200, btc(1));
  auto start = chain.coinbase(100, btc(100));
  chain.next_block();
  auto refs =
      chain.spend_all({start}, {{200, btc(5)}, {101, btc(94)}});
  chain.next_block();
  // 50/44: no H2 label (both fresh), dominance < 2 → stop.
  chain.spend_all({refs[1]}, {{300, btc(50)}, {301, btc(44)}});
  ChainView view = chain.view();

  UnionFind uf = heuristic1(view);
  H2Result h2 = apply_heuristic2(view, H2Options{});
  Clustering clustering = Clustering::from_union_find(uf);
  TagStore tags;
  ClusterNaming naming(clustering.assignment(), clustering.sizes(), tags);
  PeelFollower follower(view, h2, clustering, naming);

  TxIndex start_tx = view.find_tx(start.txid);
  PeelChainResult result =
      follower.follow(start_tx, start.index, FollowOptions{100});
  EXPECT_EQ(result.hops, 1);
  EXPECT_EQ(result.end, ChainEnd::NoChangeLink);
}

TEST(Peeling, ShapeFallbackContinuesUnlabeledHops) {
  // Same as above, but the unlabeled hop IS peel-shaped (90 vs 4):
  // with follow_peel_shape the walk continues and counts a shape hop.
  TestChain chain;
  chain.coinbase(200, btc(1));
  auto start = chain.coinbase(100, btc(100));
  chain.next_block();
  auto refs = chain.spend_all({start}, {{200, btc(5)}, {101, btc(94)}});
  chain.next_block();
  chain.spend_all({refs[1]}, {{300, btc(4)}, {301, btc(89)}});
  ChainView view = chain.view();

  UnionFind uf = heuristic1(view);
  H2Result h2 = apply_heuristic2(view, H2Options{});
  Clustering clustering = Clustering::from_union_find(uf);
  TagStore tags;
  ClusterNaming naming(clustering.assignment(), clustering.sizes(), tags);
  PeelFollower follower(view, h2, clustering, naming);

  TxIndex start_tx = view.find_tx(start.txid);
  PeelChainResult with_shape =
      follower.follow(start_tx, start.index, FollowOptions{100});
  EXPECT_EQ(with_shape.hops, 2);
  EXPECT_EQ(with_shape.shape_hops, 1);

  FollowOptions strict;
  strict.follow_peel_shape = false;
  PeelChainResult without =
      follower.follow(start_tx, start.index, strict);
  EXPECT_EQ(without.hops, 1);
  EXPECT_EQ(without.end, ChainEnd::NoChangeLink);
}

TEST(Peeling, RejectsBadStart) {
  PeelFixture f(3);
  EXPECT_THROW(f.follower().follow(999'999, 0, FollowOptions{}),
               UsageError);
  TxIndex start_tx = f.view.find_tx(f.start.txid);
  EXPECT_THROW(f.follower().follow(start_tx, 99, FollowOptions{}),
               UsageError);
}

}  // namespace
}  // namespace fist
