// Checkpoint/resume: atomic file primitives, manifest and artifact
// codecs, and the end-to-end invariant that a resumed pipeline run is
// bit-identical to an uninterrupted one.
#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "chain/blockstore.hpp"
#include "core/obs/metrics.hpp"
#include "core/pipeline.hpp"
#include "testutil.hpp"
#include "util/amount.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

std::filesystem::path temp_file(const std::string& stem) {
  return std::filesystem::temp_directory_path() /
         (stem + "_" + std::to_string(::getpid()));
}

std::uint64_t counter_value(const char* name) {
  auto snap = obs::MetricsRegistry::global().snapshot();
  const auto* c = snap.counter(name);
  return c != nullptr ? c->value : 0;
}

TEST(CheckpointFiles, AtomicWriteReadRoundTrip) {
  std::filesystem::path path = temp_file("fist_ckpt_rt");
  Bytes payload = to_bytes(std::string("hello checkpoint"));
  atomic_write_file(path, payload);
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
  EXPECT_EQ(read_file(path), payload);
  // Overwrite replaces the content wholesale.
  Bytes other = to_bytes(std::string("v2"));
  atomic_write_file(path, other);
  EXPECT_EQ(read_file(path), other);
  EXPECT_EQ(file_digest_hex(path), digest_hex(other));
  std::filesystem::remove(path);
  EXPECT_THROW((void)read_file(path), IoError);
  EXPECT_THROW((void)file_digest_hex(path), IoError);
}

TEST(CheckpointFiles, DigestIsStableAndContentSensitive) {
  Bytes a = to_bytes(std::string("abc"));
  EXPECT_EQ(digest_hex(a), digest_hex(a));
  EXPECT_EQ(digest_hex(a).size(), 64u);
  Bytes b = to_bytes(std::string("abd"));
  EXPECT_NE(digest_hex(a), digest_hex(b));
}

TEST(CheckpointManifestTest, SaveLoadRoundTrip) {
  std::filesystem::path path = temp_file("fist_ckpt_manifest");
  CheckpointManifest m;
  m.recovery = RecoveryPolicy::Lenient;
  m.chain_digest = "aa11";
  m.tags_digest = "bb22";
  m.artifacts["view"] = CheckpointArtifact{"ck.view", "cc33"};
  m.artifacts["h1"] = CheckpointArtifact{"ck.h1", "dd44"};
  Quarantined qb;
  qb.stage = Quarantined::Stage::Decode;
  qb.record = 17;
  qb.reason = "parse: bad record magic at offset 99";
  m.ingest.policy = RecoveryPolicy::Lenient;
  m.ingest.blocks.push_back(qb);
  Quarantined qt;
  qt.stage = Quarantined::Stage::Resolve;
  qt.record = 20;
  qt.tx = 3;
  qt.txid = hash256(to_bytes(std::string("x")));
  qt.reason = "view: input references unknown txid";
  m.ingest.txs.push_back(qt);
  m.save(path);

  auto loaded = CheckpointManifest::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->recovery, RecoveryPolicy::Lenient);
  EXPECT_EQ(loaded->chain_digest, "aa11");
  EXPECT_EQ(loaded->tags_digest, "bb22");
  ASSERT_EQ(loaded->artifacts.size(), 2u);
  EXPECT_EQ(loaded->artifacts.at("view").file, "ck.view");
  EXPECT_EQ(loaded->artifacts.at("view").digest, "cc33");
  EXPECT_EQ(loaded->artifacts.at("h1").file, "ck.h1");
  ASSERT_EQ(loaded->ingest.blocks.size(), 1u);
  EXPECT_EQ(loaded->ingest.blocks[0].stage, Quarantined::Stage::Decode);
  EXPECT_EQ(loaded->ingest.blocks[0].record, 17u);
  EXPECT_EQ(loaded->ingest.blocks[0].reason,
            "parse: bad record magic at offset 99");
  ASSERT_EQ(loaded->ingest.txs.size(), 1u);
  EXPECT_EQ(loaded->ingest.txs[0].stage, Quarantined::Stage::Resolve);
  EXPECT_EQ(loaded->ingest.txs[0].record, 20u);
  EXPECT_EQ(loaded->ingest.txs[0].tx, 3u);
  EXPECT_EQ(loaded->ingest.txs[0].txid, qt.txid);
  EXPECT_EQ(loaded->ingest.txs[0].reason, qt.reason);
  std::filesystem::remove(path);
}

TEST(CheckpointManifestTest, MissingOrGarbageLoadsAsNoCheckpoint) {
  EXPECT_FALSE(CheckpointManifest::load(temp_file("fist_ckpt_absent")));
  std::filesystem::path path = temp_file("fist_ckpt_garbage");
  {
    std::ofstream out(path);
    out << "not a manifest\nat all\n";
  }
  EXPECT_FALSE(CheckpointManifest::load(path));
  std::filesystem::remove(path);
}

TEST(CheckpointManifestTest, ArtifactPathIsASiblingFile) {
  std::filesystem::path base = "/some/dir/run.manifest";
  std::filesystem::path art = CheckpointManifest::artifact_path(base, "h1");
  EXPECT_EQ(art.parent_path(), base.parent_path());
  EXPECT_NE(art.filename(), base.filename());
}

TEST(CheckpointArtifacts, H1RoundTripPreservesThePartition) {
  UnionFind uf(12);
  uf.unite(0, 5);
  uf.unite(5, 7);
  uf.unite(2, 3);
  uf.unite(9, 10);
  H1Stats stats;
  stats.multi_input_txs = 4;
  stats.links = 5;
  Bytes raw = encode_h1_artifact(uf, stats);

  UnionFind restored(1);
  H1Stats restored_stats;
  decode_h1_artifact(raw, restored, restored_stats);
  ASSERT_EQ(restored.size(), uf.size());
  for (std::uint32_t a = 0; a < 12; ++a)
    for (std::uint32_t b = 0; b < 12; ++b)
      EXPECT_EQ(restored.same(a, b), uf.same(a, b)) << a << "," << b;
  EXPECT_EQ(restored_stats.multi_input_txs, 4u);
  EXPECT_EQ(restored_stats.links, 5u);

  // Canonical encoding: re-encoding the restored forest is identical.
  EXPECT_EQ(encode_h1_artifact(restored, restored_stats), raw);

  Bytes truncated(raw.begin(), raw.end() - 3);
  UnionFind scratch(1);
  H1Stats scratch_stats;
  EXPECT_THROW(decode_h1_artifact(truncated, scratch, scratch_stats),
               ParseError);
}

TEST(CheckpointArtifacts, H2RoundTrip) {
  H2Result r;
  r.labels.push_back(H2Label{3, 1});
  r.labels.push_back(H2Label{8, 0});
  r.change_of_tx = {kNoAddr, 7, kNoAddr, 1, kNoAddr, kNoAddr, kNoAddr, kNoAddr,
                    9};
  r.skipped.coinbase = 1;
  r.skipped.self_change = 2;
  r.skipped.no_candidate = 3;
  r.skipped.ambiguous = 4;
  r.skipped.reused_guard = 5;
  r.skipped.self_change_history_guard = 6;
  r.skipped.window_veto = 7;
  r.skipped.too_few_outputs = 8;
  Bytes raw = encode_h2_artifact(r);
  H2Result d = decode_h2_artifact(raw);
  ASSERT_EQ(d.labels.size(), 2u);
  EXPECT_EQ(d.labels[0].tx, 3u);
  EXPECT_EQ(d.labels[0].change, 1u);
  EXPECT_EQ(d.labels[1].tx, 8u);
  EXPECT_EQ(d.change_of_tx, r.change_of_tx);
  EXPECT_EQ(d.skipped.coinbase, 1u);
  EXPECT_EQ(d.skipped.self_change, 2u);
  EXPECT_EQ(d.skipped.no_candidate, 3u);
  EXPECT_EQ(d.skipped.ambiguous, 4u);
  EXPECT_EQ(d.skipped.reused_guard, 5u);
  EXPECT_EQ(d.skipped.self_change_history_guard, 6u);
  EXPECT_EQ(d.skipped.window_veto, 7u);
  EXPECT_EQ(d.skipped.too_few_outputs, 8u);

  Bytes truncated(raw.begin(), raw.end() - 2);
  EXPECT_THROW((void)decode_h2_artifact(truncated), ParseError);
}

TEST(CheckpointArtifacts, ChainViewImageRoundTrip) {
  test::TestChain chain;
  std::vector<test::CoinRef> coins;
  for (std::uint32_t b = 0; b < 6; ++b) {
    coins.push_back(chain.coinbase(b, btc(50)));
    chain.next_block();
  }
  chain.spend({coins[0], coins[1]}, {{10, btc(60)}, {11, btc(40)}});
  ChainView view = chain.view();
  Bytes image = view.serialize();
  ChainView restored = ChainView::deserialize(image);
  EXPECT_EQ(restored.block_count(), view.block_count());
  EXPECT_EQ(restored.tx_count(), view.tx_count());
  EXPECT_EQ(restored.address_count(), view.address_count());
  EXPECT_EQ(restored.serialize(), image);

  Bytes bad = image;
  bad[0] ^= 0xff;  // version word
  EXPECT_THROW((void)ChainView::deserialize(bad), ParseError);
  Bytes trailing = image;
  trailing.push_back(0);
  EXPECT_THROW((void)ChainView::deserialize(trailing), ParseError);
}

// ---- end-to-end resume ---------------------------------------------------

/// A small economy exercising H1 (multi-input spends) and H2 (fresh
/// change outputs), shared by the resume tests.
class PipelineResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manifest_ = temp_file("fist_ckpt_pipe").string() + ".manifest";
    cleanup();
    test::TestChain chain;
    std::vector<test::CoinRef> coins;
    for (std::uint32_t b = 0; b < 8; ++b) {
      coins.push_back(chain.coinbase(b, btc(50)));
      chain.next_block();
    }
    for (std::uint32_t b = 0; b + 1 < 8; b += 2) {
      chain.spend({coins[b], coins[b + 1]},
                  {{50 + b, btc(70)}, {90 + b, btc(30)}});
      chain.next_block();
    }
    for (const Block& b : chain.blocks()) store_.append(b);
  }

  void TearDown() override { cleanup(); }

  void cleanup() {
    std::filesystem::remove(manifest_);
    for (const char* stage : {"view", "h1", "h2"})
      std::filesystem::remove(
          CheckpointManifest::artifact_path(manifest_, stage));
  }

  PipelineOptions options(unsigned threads) const {
    PipelineOptions o;
    o.threads = threads;
    o.checkpoint = manifest_;
    o.chain_digest = "feedbead";  // any consistent fingerprint works
    return o;
  }

  struct Result {
    std::vector<ClusterId> assignment;
    std::uint64_t h1_links = 0;
    std::size_t h2_labels = 0;
    std::vector<AddrId> change_of_tx;
  };

  Result run(const PipelineOptions& o) {
    ForensicPipeline pipeline(store_, {}, o);
    pipeline.run();
    Result r;
    r.assignment = pipeline.clustering().assignment();
    r.h1_links = pipeline.h1_stats().links;
    r.h2_labels = pipeline.h2().labels.size();
    r.change_of_tx = pipeline.h2().change_of_tx;
    return r;
  }

  std::string manifest_;
  MemoryBlockStore store_;
};

TEST_F(PipelineResumeTest, ResumedRunIsBitIdentical) {
  Result fresh = run(options(2));
  ASSERT_TRUE(std::filesystem::exists(manifest_));
  for (const char* stage : {"view", "h1", "h2"})
    EXPECT_TRUE(std::filesystem::exists(
        CheckpointManifest::artifact_path(manifest_, stage)))
        << stage;

  std::uint64_t loaded_before = counter_value("checkpoint.stages_loaded");
  Result resumed = run(options(2));
  EXPECT_EQ(resumed.assignment, fresh.assignment);
  EXPECT_EQ(resumed.h1_links, fresh.h1_links);
  EXPECT_EQ(resumed.h2_labels, fresh.h2_labels);
  EXPECT_EQ(resumed.change_of_tx, fresh.change_of_tx);
  EXPECT_GE(counter_value("checkpoint.stages_loaded"), loaded_before + 3);

  // A different thread count resuming the same checkpoint also agrees.
  Result resumed8 = run(options(8));
  EXPECT_EQ(resumed8.assignment, fresh.assignment);
}

TEST_F(PipelineResumeTest, MissingArtifactRecomputesJustThatStage) {
  Result fresh = run(options(1));
  std::filesystem::remove(CheckpointManifest::artifact_path(manifest_, "h1"));
  std::uint64_t saved_before = counter_value("checkpoint.stages_saved");
  Result resumed = run(options(1));
  EXPECT_EQ(resumed.assignment, fresh.assignment);
  EXPECT_EQ(resumed.h1_links, fresh.h1_links);
  // h1 was recomputed and re-persisted; view/h2 loaded from disk.
  EXPECT_GE(counter_value("checkpoint.stages_saved"), saved_before + 1);
}

TEST_F(PipelineResumeTest, InputDigestMismatchInvalidatesTheCheckpoint) {
  Result fresh = run(options(1));
  std::uint64_t loaded_before = counter_value("checkpoint.stages_loaded");
  PipelineOptions changed = options(1);
  changed.chain_digest = "deadbeef";
  Result recomputed = run(changed);
  EXPECT_EQ(recomputed.assignment, fresh.assignment);
  EXPECT_EQ(counter_value("checkpoint.stages_loaded"), loaded_before)
      << "stale checkpoint must not be resumed";
}

TEST_F(PipelineResumeTest, TagsDigestMismatchInvalidatesTheCheckpoint) {
  PipelineOptions first = options(1);
  first.tags_digest = "cc33";
  Result fresh = run(first);
  std::uint64_t loaded_before = counter_value("checkpoint.stages_loaded");
  // Same chain fingerprint, different tag-feed fingerprint: a resumed
  // h2/dice stage would silently use the wrong exemption set, so the
  // whole checkpoint must be ignored and rebuilt.
  PipelineOptions changed = options(1);
  changed.tags_digest = "dd44";
  Result recomputed = run(changed);
  EXPECT_EQ(recomputed.assignment, fresh.assignment);
  EXPECT_EQ(recomputed.change_of_tx, fresh.change_of_tx);
  EXPECT_EQ(counter_value("checkpoint.stages_loaded"), loaded_before)
      << "stale tags digest must not be resumed";
}

TEST_F(PipelineResumeTest, RecoveryPolicyMismatchInvalidatesTheCheckpoint) {
  Result fresh = run(options(1));
  std::uint64_t loaded_before = counter_value("checkpoint.stages_loaded");
  PipelineOptions changed = options(1);
  changed.recovery = RecoveryPolicy::Lenient;
  Result recomputed = run(changed);
  EXPECT_EQ(recomputed.assignment, fresh.assignment);
  EXPECT_EQ(counter_value("checkpoint.stages_loaded"), loaded_before)
      << "a strict-mode checkpoint must not seed a lenient run";
}

TEST_F(PipelineResumeTest, EmptyDigestOnEitherSideResumes) {
  // The fingerprint check is deliberately lenient when either side
  // left a digest empty (an operator resuming without re-hashing the
  // inputs): only a *conflicting* pair invalidates.
  PipelineOptions first = options(1);
  first.tags_digest = "";  // prior manifest has no tags fingerprint
  run(first);
  std::uint64_t loaded_before = counter_value("checkpoint.stages_loaded");
  PipelineOptions with_digest = options(1);
  with_digest.tags_digest = "cc33";
  run(with_digest);
  EXPECT_GE(counter_value("checkpoint.stages_loaded"), loaded_before + 3)
      << "empty prior digest must match any new digest";

  std::uint64_t loaded_mid = counter_value("checkpoint.stages_loaded");
  PipelineOptions without_digest = options(1);
  without_digest.chain_digest = "";
  run(without_digest);
  EXPECT_GE(counter_value("checkpoint.stages_loaded"), loaded_mid + 3)
      << "empty new digest must match any prior digest";
}

TEST_F(PipelineResumeTest, CorruptArtifactDegradesToRecompute) {
  Result fresh = run(options(1));
  std::filesystem::path h2_art =
      CheckpointManifest::artifact_path(manifest_, "h2");
  Bytes raw = read_file(h2_art);
  raw[raw.size() / 2] ^= 0x5a;
  {
    std::ofstream out(h2_art, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }
  // The digest no longer matches the manifest, so h2 recomputes.
  Result resumed = run(options(1));
  EXPECT_EQ(resumed.change_of_tx, fresh.change_of_tx);
  EXPECT_EQ(resumed.h2_labels, fresh.h2_labels);
}

}  // namespace
}  // namespace fist
