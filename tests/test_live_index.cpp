// test_live_index.cpp — crash-safety matrix of the durable live
// cluster index: kill -9 between any two log records, stale/corrupt
// snapshots, poisoned deltas, and fault-site behavior all resume to a
// state bit-identical to a batch build (docs/ROBUSTNESS.md).
#include "core/live_index.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/clustering.hpp"
#include "cluster/heuristic1.hpp"
#include "cluster/heuristic2.hpp"
#include "core/fault.hpp"
#include "testutil.hpp"

namespace fist {
namespace {

namespace fs = std::filesystem;
using test::CoinRef;
using test::TestChain;

constexpr std::size_t kFrameHeader = 16;

/// A small chain exercising H1 merges, fresh-change labels, and
/// revisited outputs — enough structure that a missed or duplicated
/// delta changes the partition.
std::vector<Block> make_blocks() {
  TestChain chain;
  std::vector<CoinRef> coins;
  for (std::uint32_t b = 0; b < 4; ++b) {
    coins.push_back(chain.coinbase(10 + b, btc(50)));
    chain.next_block();
  }
  CoinRef p1 = chain.spend({coins[0], coins[1]},
                           {{20, btc(30)}, {21, btc(70)}});
  chain.next_block();
  CoinRef p2 = chain.spend({coins[2]}, {{20, btc(10)}, {22, btc(40)}});
  chain.next_block();
  chain.spend({p2}, {{21, btc(5)}, {23, btc(30)}});
  chain.next_block();
  chain.spend({coins[3], p1}, {{24, btc(60)}});
  return chain.blocks();
}

/// Batch truth: full view, H1 + H2 + merge, one assignment vector.
/// Quarantine-parity cases drop whole blocks whose outputs later
/// blocks spend, so they build leniently on both sides.
std::vector<ClusterId> batch_assignment(
    const std::vector<Block>& blocks,
    RecoveryPolicy policy = RecoveryPolicy::Strict,
    const H2Options& options = {}) {
  ChainView view;
  view.apply_delta(blocks, policy);
  UnionFind uf(view.address_count());
  apply_heuristic1(view, uf);
  H2Result h2 = apply_heuristic2(view, options);
  unite_h2_labels(view, h2, uf);
  return Clustering::from_union_find(uf).assignment();
}

class LiveIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::global().disarm_all();
    dir_ = fs::temp_directory_path() /
           ("fist_live_index_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    blocks_ = make_blocks();
  }
  void TearDown() override {
    fault::Registry::global().disarm_all();
    fs::remove_all(dir_);
  }

  /// Byte offset of the end of log record `count` - 1.
  std::size_t log_offset_after(std::size_t count) const {
    std::size_t off = 0;
    for (std::size_t i = 0; i < count; ++i)
      off += kFrameHeader + blocks_[i].serialize().size();
    return off;
  }

  void corrupt_byte(const fs::path& file, std::size_t offset) const {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(c ^ 0xff));
  }

  std::vector<ClusterId> live_assignment(const LiveIndex& index) const {
    return index.clusterer().clustering().assignment();
  }

  fs::path dir_;
  std::vector<Block> blocks_;
};

TEST_F(LiveIndexTest, FreshBuildMatchesBatch) {
  LiveIndex index(dir_, {});
  for (const Block& b : blocks_) index.append(b);
  EXPECT_EQ(index.epoch(), blocks_.size());
  EXPECT_EQ(live_assignment(index), batch_assignment(blocks_));
  EXPECT_TRUE(index.quarantined_deltas().empty());
}

TEST_F(LiveIndexTest, ReopenWithoutSnapshotReplaysWholeLog) {
  {
    LiveIndex index(dir_, {});
    for (const Block& b : blocks_) index.append(b);
  }
  LiveIndex index(dir_, {});
  EXPECT_EQ(index.epoch(), blocks_.size());
  EXPECT_EQ(index.open_info().snapshot_epoch, 0u);
  EXPECT_EQ(index.open_info().replayed, blocks_.size());
  EXPECT_EQ(live_assignment(index), batch_assignment(blocks_));
}

TEST_F(LiveIndexTest, ReopenFromSnapshotReplaysOnlyTheTail) {
  {
    LiveIndex index(dir_, {});
    for (std::size_t i = 0; i < 5; ++i) index.append(blocks_[i]);
    index.snapshot();
    for (std::size_t i = 5; i < blocks_.size(); ++i)
      index.append(blocks_[i]);
  }
  LiveIndex index(dir_, {});
  EXPECT_EQ(index.open_info().snapshot_epoch, 5u);
  EXPECT_EQ(index.open_info().replayed, blocks_.size() - 5);
  EXPECT_FALSE(index.open_info().snapshot_stale);
  EXPECT_EQ(live_assignment(index), batch_assignment(blocks_));
}

/// The tentpole gate: simulate kill -9 between ANY two log records —
/// with a snapshot at epoch 4 that the crash may land before or after
/// — and verify the reopened index finishes to the batch result.
TEST_F(LiveIndexTest, KillBetweenAnyTwoLogRecordsResumes) {
  // Durable reference dir: all records logged, snapshot at epoch 4.
  const fs::path full = dir_ / "full";
  {
    LiveIndex index(full, {});
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      index.append(blocks_[i]);
      if (i + 1 == 4) index.snapshot();
    }
  }

  const std::vector<ClusterId> want = batch_assignment(blocks_);
  for (std::size_t k = 0; k <= blocks_.size(); ++k) {
    // Crash state: the first k records durable, the (k+1)-th torn.
    const fs::path crash = dir_ / ("crash" + std::to_string(k));
    fs::create_directories(crash);
    fs::copy_file(full / "delta.log", crash / "delta.log");
    fs::resize_file(crash / "delta.log", log_offset_after(k));
    if (k < blocks_.size()) {
      std::ofstream torn(crash / "delta.log",
                         std::ios::binary | std::ios::app);
      torn.write("\x44\x54\x4c\x46garbage", 11);  // half-written record
    }
    fs::copy_file(full / "live.snapshot", crash / "live.snapshot");
    fs::copy_file(full / "live.snapshot.sha256d",
                  crash / "live.snapshot.sha256d");
    fs::copy_file(full / "live.manifest", crash / "live.manifest");

    LiveIndex index(crash, {});
    EXPECT_EQ(index.epoch(), k) << "crash point " << k;
    if (k < blocks_.size())
      EXPECT_GT(index.open_info().torn_tail_bytes, 0u)
          << "crash point " << k;
    if (k >= 4) {
      // The snapshot (epoch 4) is usable: only the tail replays.
      EXPECT_EQ(index.open_info().snapshot_epoch, 4u);
      EXPECT_EQ(index.open_info().replayed, k - 4);
    } else {
      // Manifest points past the surviving log: full replay.
      EXPECT_TRUE(index.open_info().snapshot_stale);
      EXPECT_EQ(index.open_info().replayed, k);
    }
    for (std::size_t i = k; i < blocks_.size(); ++i)
      index.append(blocks_[i]);
    EXPECT_EQ(live_assignment(index), want) << "crash point " << k;
  }
}

TEST_F(LiveIndexTest, PoisonedRecordQuarantinedLenientMatchesBatch) {
  {
    LiveIndex index(dir_, {});
    for (const Block& b : blocks_) index.append(b);
  }
  // Corrupt record 5's payload on disk.
  corrupt_byte(dir_ / "delta.log", log_offset_after(5) + kFrameHeader + 3);

  LiveIndex::Options lenient;
  lenient.recovery = RecoveryPolicy::Lenient;
  LiveIndex index(dir_, lenient);
  EXPECT_EQ(index.epoch(), blocks_.size());
  ASSERT_EQ(index.quarantined_deltas().size(), 1u);
  EXPECT_EQ(index.quarantined_deltas()[0], 5u);

  // The surviving state equals a lenient batch build without block 5.
  std::vector<Block> surviving = blocks_;
  surviving.erase(surviving.begin() + 5);
  EXPECT_EQ(live_assignment(index),
            batch_assignment(surviving, RecoveryPolicy::Lenient));
}

TEST_F(LiveIndexTest, PoisonedRecordThrowsInStrictMode) {
  {
    LiveIndex index(dir_, {});
    for (const Block& b : blocks_) index.append(b);
  }
  corrupt_byte(dir_ / "delta.log", log_offset_after(5) + kFrameHeader + 3);
  EXPECT_THROW(LiveIndex index(dir_, {}), ParseError);
}

TEST_F(LiveIndexTest, DeltaApplyFaultStrictThrows) {
  fault::Registry::global().arm_nth("delta.apply", 3);
  LiveIndex index(dir_, {});
  for (std::size_t i = 0; i < 3; ++i) index.append(blocks_[i]);
  EXPECT_THROW(index.append(blocks_[3]), IoError);
  // The record WAS logged before the apply failed (WAL ordering), so a
  // clean reopen recovers it.
  fault::Registry::global().disarm_all();
  LiveIndex reopened(dir_, {});
  EXPECT_EQ(reopened.epoch(), 4u);
  for (std::size_t i = 4; i < blocks_.size(); ++i)
    reopened.append(blocks_[i]);
  EXPECT_EQ(live_assignment(reopened), batch_assignment(blocks_));
}

TEST_F(LiveIndexTest, DeltaApplyFaultLenientQuarantines) {
  fault::Registry::global().arm_nth("delta.apply", 3);
  LiveIndex::Options lenient;
  lenient.recovery = RecoveryPolicy::Lenient;
  LiveIndex index(dir_, lenient);
  for (const Block& b : blocks_) index.append(b);
  ASSERT_EQ(index.quarantined_deltas().size(), 1u);
  EXPECT_EQ(index.quarantined_deltas()[0], 3u);
  std::vector<Block> surviving = blocks_;
  surviving.erase(surviving.begin() + 3);
  EXPECT_EQ(live_assignment(index),
            batch_assignment(surviving, RecoveryPolicy::Lenient));
}

TEST_F(LiveIndexTest, SnapshotRetriesPastTransientFault) {
  LiveIndex index(dir_, {});
  for (const Block& b : blocks_) index.append(b);
  // Key = (epoch << 3) | attempt: fail only attempt 0 at this epoch.
  fault::Registry::global().arm_nth("index.snapshot",
                                    (blocks_.size() << 3) | 0u);
  index.snapshot();  // retried, then succeeded
  EXPECT_EQ(fault::Registry::global().fired("index.snapshot"), 1u);
  fault::Registry::global().disarm_all();
  LiveIndex reopened(dir_, {});
  EXPECT_EQ(reopened.open_info().snapshot_epoch, blocks_.size());
  EXPECT_EQ(reopened.open_info().replayed, 0u);
  EXPECT_EQ(live_assignment(reopened), batch_assignment(blocks_));
}

TEST_F(LiveIndexTest, SnapshotExhaustionStrictThrowsLenientContinues) {
  fault::Registry::global().arm("index.snapshot", 1.0);
  {
    LiveIndex index(dir_ / "strict", {});
    index.append(blocks_[0]);
    EXPECT_THROW(index.snapshot(), IoError);
  }
  {
    LiveIndex::Options lenient;
    lenient.recovery = RecoveryPolicy::Lenient;
    LiveIndex index(dir_ / "lenient", lenient);
    index.append(blocks_[0]);
    index.snapshot();  // swallowed: the log still holds everything
    EXPECT_EQ(index.epoch(), 1u);
  }
  fault::Registry::global().disarm_all();
  LiveIndex reopened(dir_ / "lenient", {});
  EXPECT_TRUE(reopened.open_info().snapshot_epoch == 0u);
  EXPECT_EQ(reopened.epoch(), 1u);
}

TEST_F(LiveIndexTest, CorruptSnapshotFallsBackToFullReplay) {
  {
    LiveIndex index(dir_, {});
    for (const Block& b : blocks_) index.append(b);
    index.snapshot();
  }
  corrupt_byte(dir_ / "live.snapshot", 40);
  LiveIndex index(dir_, {});
  EXPECT_TRUE(index.open_info().snapshot_stale);
  EXPECT_EQ(index.open_info().replayed, blocks_.size());
  EXPECT_EQ(live_assignment(index), batch_assignment(blocks_));
}

TEST_F(LiveIndexTest, AutoSnapshotEveryN) {
  LiveIndex::Options options;
  options.snapshot_every = 3;
  {
    LiveIndex index(dir_, options);
    for (const Block& b : blocks_) index.append(b);
  }
  LiveIndex index(dir_, {});
  EXPECT_EQ(index.open_info().snapshot_epoch, 6u);  // epochs 3 and 6
  EXPECT_EQ(index.open_info().replayed, blocks_.size() - 6);
  EXPECT_EQ(live_assignment(index), batch_assignment(blocks_));
}

TEST_F(LiveIndexTest, QuarantineSurvivesSnapshotAndResume) {
  {
    LiveIndex index(dir_, {});
    for (const Block& b : blocks_) index.append(b);
  }
  corrupt_byte(dir_ / "delta.log", log_offset_after(2) + kFrameHeader + 3);
  LiveIndex::Options lenient;
  lenient.recovery = RecoveryPolicy::Lenient;
  {
    LiveIndex index(dir_, lenient);
    ASSERT_EQ(index.quarantined_deltas().size(), 1u);
    index.snapshot();  // quarantine list rides in the manifest
  }
  LiveIndex index(dir_, lenient);
  EXPECT_EQ(index.open_info().replayed, 0u);  // restored, no replay
  ASSERT_EQ(index.quarantined_deltas().size(), 1u);
  EXPECT_EQ(index.quarantined_deltas()[0], 2u);
}

}  // namespace
}  // namespace fist
