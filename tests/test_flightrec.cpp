// test_flightrec.cpp — the flight recorder ring: publish/read, lapping,
// concurrent writers, JSONL export.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"

namespace fist {
namespace {

#ifndef FISTFUL_NO_OBS

TEST(FlightRecorder, RecordAndRead) {
  obs::FlightRecorder rec;
  rec.record("flight.test", "hello", 7, 9);
  rec.record("flight.test", "world", 1, 2);

  std::vector<obs::FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "flight.test");
  EXPECT_EQ(events[0].detail, "hello");
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 9u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].detail, "world");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_LE(events[0].t_us, events[1].t_us);
  EXPECT_EQ(rec.recorded(), 2u);
}

TEST(FlightRecorder, TruncatesLongStrings) {
  obs::FlightRecorder rec;
  std::string long_type(100, 't');
  std::string long_detail(200, 'd');
  rec.record(long_type, long_detail, 0, 0);
  std::vector<obs::FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(events[0].type.size(), obs::FlightRecorder::kTypeChars);
  EXPECT_LT(events[0].detail.size(), obs::FlightRecorder::kDetailChars);
  EXPECT_EQ(events[0].type, std::string(events[0].type.size(), 't'));
}

TEST(FlightRecorder, RingKeepsNewestWhenLapped) {
  obs::FlightRecorder rec;
  const std::size_t n = obs::FlightRecorder::kCapacity + 100;
  for (std::size_t i = 0; i < n; ++i)
    rec.record("flight.lap", "", i, 0);

  std::vector<obs::FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), obs::FlightRecorder::kCapacity);
  // Oldest surviving event is exactly `n - capacity`, newest is n - 1.
  EXPECT_EQ(events.front().a, n - obs::FlightRecorder::kCapacity);
  EXPECT_EQ(events.back().a, n - 1);
  EXPECT_EQ(rec.recorded(), n);
}

TEST(FlightRecorder, ResetForgetsEverything) {
  obs::FlightRecorder rec;
  rec.record("flight.x", "", 0, 0);
  rec.reset();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.events().empty());
}

TEST(FlightRecorder, ConcurrentWritersNeverTearReaders) {
  obs::FlightRecorder rec;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;  // laps the ring many times over
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&rec, w] {
      for (int i = 0; i < kPerWriter; ++i)
        rec.record("flight.storm", "concurrent writer test",
                   static_cast<std::uint64_t>(w),
                   static_cast<std::uint64_t>(i));
    });
  // A reader snapshots mid-storm; every surviving event must be whole.
  for (int r = 0; r < 50; ++r) {
    std::vector<obs::FlightEvent> mid = rec.events();
    for (const obs::FlightEvent& e : mid) {
      EXPECT_EQ(e.type, "flight.storm");
      EXPECT_LT(e.a, static_cast<std::uint64_t>(kWriters));
      EXPECT_LT(e.b, static_cast<std::uint64_t>(kPerWriter));
    }
  }
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(rec.recorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  std::vector<obs::FlightEvent> events = rec.events();
  EXPECT_EQ(events.size(), obs::FlightRecorder::kCapacity);
  for (const obs::FlightEvent& e : events)
    EXPECT_EQ(e.detail, "concurrent writer test");
}

TEST(FlightRecorder, GlobalFlightEventBumpsCounter) {
  auto counter_value = [] {
    for (const auto& c : obs::MetricsRegistry::global().snapshot().counters)
      if (c.name == "flight.events") return c.value;
    return std::uint64_t{0};
  };
  const std::uint64_t before = counter_value();
  const std::uint64_t recorded_before = obs::FlightRecorder::global().recorded();
  obs::flight_event("flight.test_global", "from test", 3, 4);
  EXPECT_EQ(counter_value(), before + 1);
  EXPECT_EQ(obs::FlightRecorder::global().recorded(), recorded_before + 1);
}

#endif  // FISTFUL_NO_OBS

TEST(FlightRecorder, RenderJsonl) {
  obs::FlightEvent e;
  e.seq = 5;
  e.t_us = 123;
  e.type = "flight.test";
  e.detail = "with \"quotes\"";
  e.a = 1;
  e.b = 2;
  EXPECT_EQ(obs::render_events_jsonl({e}),
            "{\"seq\":5,\"t_us\":123,\"type\":\"flight.test\","
            "\"detail\":\"with \\\"quotes\\\"\",\"a\":1,\"b\":2}\n");
  EXPECT_EQ(obs::render_events_jsonl({}), "");
}

TEST(FlightRecorder, DumpWritesJsonlFile) {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "fist_flightrec_dump.jsonl";
  obs::flight_event("flight.test_dump", "dump marker", 42, 0);
  ASSERT_TRUE(obs::dump_flight_events(path.string()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
#ifndef FISTFUL_NO_OBS
  EXPECT_NE(text.find("\"type\":\"flight.test_dump\""), std::string::npos);
  EXPECT_NE(text.find("\"a\":42"), std::string::npos);
  // Every line is one JSON object.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
#endif
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fist
