// test_telemetry.cpp — the localhost scrape plane. A real POSIX client
// exercises every route, and the acceptance test for the telemetry
// plane scrapes /metrics continuously WHILE a windowed ChainView build
// runs, then checks the post-run metric deltas are still bit-identical
// across thread counts outside the documented carve-outs (exec.*,
// telemetry.*, flight.*, mem.peak_rss) — live observation must never
// perturb the deterministic surface. CI runs the Telemetry suites
// under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "chain/view.hpp"
#include "core/executor.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/telemetry.hpp"
#include "sim/world.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FISTFUL_TEST_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define FISTFUL_TEST_SOCKETS 0
#endif

namespace fist {
namespace {

#if FISTFUL_TEST_SOCKETS

/// Minimal HTTP/1.0 GET: the whole response (head + body) as a string,
/// empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(Telemetry, ServesHealthzOnEphemeralPort) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start(0));
  EXPECT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  std::string response = http_get(server.port(), "/healthz");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(body_of(response), "ok\n");
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(Telemetry, ServesMetricsProgressAndEvents) {
  obs::MetricsRegistry::global().counter("telemetry.test_marker").add(7);
  obs::flight_event("flight.test_scrape", "from telemetry test", 1, 2);
  obs::ProgressBoard::global().begin_stage("telemetry.test_stage", 4)
      .advance();

  obs::TelemetryServer server;
  ASSERT_TRUE(server.start(0));

  std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE fist_telemetry_test_marker counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("fist_telemetry_test_marker 7"), std::string::npos);

  std::string progress = http_get(server.port(), "/progress");
  EXPECT_NE(progress.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(progress.find("\"name\":\"telemetry.test_stage\""),
            std::string::npos);
  EXPECT_NE(progress.find("\"done\":1"), std::string::npos);

  std::string events = http_get(server.port(), "/events");
  EXPECT_NE(events.find("Content-Type: application/x-ndjson"),
            std::string::npos);
  EXPECT_NE(events.find("\"type\":\"flight.test_scrape\""),
            std::string::npos);

  // Scrapes land in the carve-out counter.
  obs::Snapshot snap = obs::MetricsRegistry::global().snapshot();
  ASSERT_NE(snap.counter("telemetry.scrapes"), nullptr);
  EXPECT_GE(snap.counter("telemetry.scrapes")->value, 3u);
  server.stop();
}

TEST(Telemetry, UnknownPathIs404) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start(0));
  std::string response = http_get(server.port(), "/nope");
  EXPECT_EQ(response.rfind("HTTP/1.0 404 Not Found", 0), 0u);
  server.stop();
}

TEST(Telemetry, StopIsIdempotentAndRestartable) {
  obs::TelemetryServer server;
  server.stop();  // never started: no-op
  ASSERT_TRUE(server.start(0));
  EXPECT_FALSE(server.start(0));  // already running
  server.stop();
  server.stop();  // second stop: no-op
  EXPECT_FALSE(server.running());

  // A stopped server can serve again, on a fresh port.
  ASSERT_TRUE(server.start(0));
  EXPECT_NE(server.port(), 0);
  std::string response = http_get(server.port(), "/healthz");
  EXPECT_EQ(body_of(response), "ok\n");
  server.stop();
}

TEST(Telemetry, StopFromAnotherThread) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start(0));
  std::thread stopper([&server] { server.stop(); });
  stopper.join();
  EXPECT_FALSE(server.running());
}

// ---- live-scrape determinism (the acceptance test) -------------------

#ifndef FISTFUL_NO_OBS

sim::World& telemetry_world() {
  static sim::World* w = [] {
    sim::WorldConfig cfg;
    cfg.seed = 777;
    cfg.days = 12;
    cfg.users = 40;
    cfg.blocks_per_day = 6;
    auto* world = new sim::World(cfg);
    world->run();
    return world;
  }();
  return *w;
}

/// Is `name` inside one of the documented determinism carve-outs
/// (docs/OBSERVABILITY.md)? Scheduling, scrape traffic, the flight
/// trail and host memory may vary; everything else must not.
bool carved_out(const std::string& name) {
  return name.rfind("exec.", 0) == 0 || name.rfind("telemetry.", 0) == 0 ||
         name.rfind("flight.", 0) == 0 || name == "mem.peak_rss";
}

struct BuildDeltas {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, std::pair<std::uint64_t, double>> histograms;
};

/// One windowed build under continuous /metrics scraping; returns the
/// non-carved-out metric deltas the build produced.
BuildDeltas scrape_while_building(unsigned threads) {
  sim::World& world = telemetry_world();  // built before the baseline
  obs::TelemetryServer server;
  EXPECT_TRUE(server.start(0));
  const std::uint16_t port = server.port();

  std::atomic<bool> done{false};
  std::atomic<int> good_scrapes{0};
  std::thread scraper([port, &done, &good_scrapes] {
    while (!done.load(std::memory_order_acquire)) {
      std::string response = http_get(port, "/metrics");
      if (response.rfind("HTTP/1.0 200 OK", 0) == 0 &&
          response.find("# TYPE ") != std::string::npos)
        good_scrapes.fetch_add(1, std::memory_order_relaxed);
      (void)http_get(port, "/progress");
    }
  });

  // Don't start the build until the scraper has landed at least one
  // good scrape — on a tiny chain the build can otherwise finish
  // before the first connect, and "scraped while building" would be
  // vacuous.
  for (int spin = 0; spin < 5000 && good_scrapes.load() == 0; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GT(good_scrapes.load(), 0) << "scraper never reached the server";

  obs::Snapshot before = obs::MetricsRegistry::global().snapshot();
  Executor exec(threads);
  ChainView::BuildOptions options;
  options.window_blocks = 7;  // several windows over the 72-block chain
  ChainView view = ChainView::build_windowed(world.store(), exec, options);
  EXPECT_GT(view.tx_count(), 0u);
  obs::Snapshot after = obs::MetricsRegistry::global().snapshot();

  done.store(true, std::memory_order_release);
  scraper.join();
  server.stop();
  // The scraper must have actually observed the build, not just
  // connected after it finished.
  EXPECT_GT(good_scrapes.load(), 0);

  BuildDeltas out;
  for (const obs::CounterValue& c : after.counters) {
    if (carved_out(c.name)) continue;
    const obs::CounterValue* prev = before.counter(c.name);
    out.counters[c.name] = c.value - (prev != nullptr ? prev->value : 0);
  }
  for (const obs::GaugeValue& g : after.gauges) {
    if (carved_out(g.name)) continue;
    out.gauges[g.name] = g.value;
  }
  for (const obs::HistogramValue& h : after.histograms) {
    if (carved_out(h.name)) continue;
    const obs::HistogramValue* prev = before.histogram(h.name);
    out.histograms[h.name] = {
        h.count - (prev != nullptr ? prev->count : 0),
        h.sum - (prev != nullptr ? prev->sum : 0)};
  }
  return out;
}

TEST(TelemetryScrapeDeterminism, LiveScrapeDoesNotPerturbMetrics) {
  BuildDeltas reference = scrape_while_building(1);
  EXPECT_GT(reference.counters.at("view.txs"), 0u);
  for (unsigned threads : {2u, 8u}) {
    BuildDeltas run = scrape_while_building(threads);
    EXPECT_EQ(run.counters, reference.counters) << "threads=" << threads;
    EXPECT_EQ(run.gauges, reference.gauges) << "threads=" << threads;
    EXPECT_EQ(run.histograms, reference.histograms) << "threads=" << threads;
  }
}

#endif  // FISTFUL_NO_OBS

#else  // !FISTFUL_TEST_SOCKETS

TEST(Telemetry, StartFailsGracefullyWithoutSockets) {
  obs::TelemetryServer server;
  EXPECT_FALSE(server.start(0));
  server.stop();  // still safe
}

#endif  // FISTFUL_TEST_SOCKETS

}  // namespace
}  // namespace fist
