#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "util/hex.hpp"

namespace fist {
namespace {

std::string hex_of(const Sha256::Digest& d) { return to_hex(ByteView(d)); }

// FIPS 180-4 / NIST CAVP vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256(ByteView{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256(to_bytes(std::string("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256(to_bytes(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Bytes m(1'000'000, 'a');
  EXPECT_EQ(hex_of(sha256(m)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 55/56/64-byte messages exercise the padding edge cases.
  Bytes m55(55, 'x'), m56(56, 'x'), m64(64, 'x');
  EXPECT_EQ(sha256(m55), sha256(m55));
  EXPECT_NE(sha256(m55), sha256(m56));
  EXPECT_NE(sha256(m56), sha256(m64));
}

TEST(Sha256, StreamingMatchesOneShot) {
  Bytes data(1000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  Sha256 h;
  h.write(ByteView(data.data(), 1));
  h.write(ByteView(data.data() + 1, 62));
  h.write(ByteView(data.data() + 63, 1));
  h.write(ByteView(data.data() + 64, 936));
  EXPECT_EQ(h.finish(), sha256(data));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.write(to_bytes(std::string("first")));
  (void)h.finish();
  h.reset();
  h.write(to_bytes(std::string("abc")));
  EXPECT_EQ(to_hex(ByteView(h.finish())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DoubleSha256) {
  // sha256d("") = sha256(sha256(""))
  auto once = sha256(ByteView{});
  auto twice = sha256(ByteView(once));
  EXPECT_EQ(sha256d(ByteView{}), twice);
}

class Sha256ChunkSplit : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256ChunkSplit, AnySplitMatchesOneShot) {
  Bytes data(257);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 31);
  std::size_t split = GetParam();
  Sha256 h;
  h.write(ByteView(data.data(), split));
  h.write(ByteView(data.data() + split, data.size() - split));
  EXPECT_EQ(h.finish(), sha256(data));
}

INSTANTIATE_TEST_SUITE_P(Splits, Sha256ChunkSplit,
                         ::testing::Values(0, 1, 55, 56, 63, 64, 65, 127,
                                           128, 200, 256, 257));

}  // namespace
}  // namespace fist
