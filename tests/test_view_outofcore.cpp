// Differential tests for the out-of-core (windowed) ChainView build:
// at every window size and worker count the windowed build must be
// bit-identical to the in-memory build — transactions, interned ids,
// spend links, first-seen, and everything derived downstream (H1/H2
// clusters, balances) — including under lenient recovery with injected
// read faults. This is the ingest half of the out-of-core scale
// contract (docs/SCALING.md); tests/test_sim_stream.cpp covers the
// generation half.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "chain/blockstore.hpp"
#include "chain/view.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "core/obs/metrics.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

namespace fist {
namespace {

constexpr std::uint32_t kWindows[] = {1, 7, 64};

/// Per-address unspent balance — the Figure-2 primitive, derived
/// entirely from output values and spend links.
std::vector<Amount> balances_of(const ChainView& view) {
  std::vector<Amount> balance(view.address_count(), 0);
  for (const TxView& tx : view.txs())
    for (const OutputView& out : tx.outputs)
      if (out.addr != kNoAddr && out.spent_by == kNoTx)
        balance[out.addr] += out.value;
  return balance;
}

class ViewOutOfCore : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::global().disarm_all();
    path_ = std::filesystem::temp_directory_path() /
            ("fist_outofcore_" + std::to_string(::getpid()) + ".dat");
    cleanup();
    sim::WorldConfig cfg;
    cfg.seed = 42;
    cfg.days = 10;
    cfg.users = 40;
    world_ = std::make_unique<sim::World>(cfg);
    world_->run();
    FileBlockStore store(path_);
    for (std::size_t i = 0; i < world_->store().count(); ++i)
      store.append(world_->store().read(i));
  }
  void TearDown() override {
    fault::Registry::global().disarm_all();
    cleanup();
  }
  void cleanup() {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".sums");
  }

  std::filesystem::path path_;
  std::unique_ptr<sim::World> world_;
};

TEST_F(ViewOutOfCore, WindowedBuildIsBitIdenticalAtEveryWindowAndThreads) {
  FileBlockStore store(path_);
  Executor ref_exec(1);
  ChainView reference = ChainView::build(store, ref_exec);
  Bytes want = reference.serialize();

  for (unsigned threads : {1u, 4u}) {
    Executor exec(threads);
    for (std::uint32_t window : kWindows) {
      ChainView::BuildOptions options;
      options.window_blocks = window;
      ChainView view = ChainView::build_windowed(store, exec, options);
      EXPECT_EQ(view.serialize() == want, true)
          << "window " << window << " threads " << threads;
      // serialize() covers txs/ids/spend links; first-seen and
      // balances are derived — check them explicitly.
      ASSERT_EQ(view.address_count(), reference.address_count());
      for (AddrId a = 0; a < view.address_count(); ++a)
        ASSERT_EQ(view.first_seen(a), reference.first_seen(a))
            << "addr " << a << " window " << window;
      EXPECT_EQ(balances_of(view) == balances_of(reference), true)
          << "window " << window;
    }
  }
}

TEST_F(ViewOutOfCore, WindowedPipelineYieldsIdenticalClusters) {
  // End to end through H1 + H2: the windowed view stage must give the
  // exact clustering the in-memory stage gives.
  FileBlockStore store(path_);
  PipelineOptions ref_options;
  ref_options.threads = 1;
  ForensicPipeline reference(store, world_->tag_feed(), ref_options);
  reference.run();

  for (std::uint32_t window : kWindows) {
    PipelineOptions options;
    options.threads = 4;
    options.window_blocks = window;
    ForensicPipeline pipeline(store, world_->tag_feed(), options);
    pipeline.run();
    ASSERT_EQ(pipeline.view().address_count(),
              reference.view().address_count())
        << "window " << window;
    EXPECT_EQ(pipeline.h1_clustering().cluster_count(),
              reference.h1_clustering().cluster_count())
        << "window " << window;
    EXPECT_EQ(pipeline.clustering().cluster_count(),
              reference.clustering().cluster_count())
        << "window " << window;
    for (AddrId a = 0; a < reference.view().address_count(); ++a)
      ASSERT_EQ(pipeline.clustering().cluster_of(a),
                reference.clustering().cluster_of(a))
          << "addr " << a << " window " << window;
  }
}

TEST_F(ViewOutOfCore, LenientReadFaultsQuarantineIdentically) {
  // Injected blockstore.read faults fire by record index, so the
  // quarantine set is a pure function of the armed configuration: the
  // windowed lenient build must quarantine exactly the records the
  // in-memory lenient build does and match it bit for bit otherwise.
  fault::Registry::global().arm("blockstore.read", 0.2, 1234);
  FileBlockStore store(path_);
  Executor exec(4);
  IngestReport ref_report;
  ChainView reference =
      ChainView::build(store, exec, RecoveryPolicy::Lenient, &ref_report);
  ASSERT_TRUE(ref_report.quarantined());
  Bytes want = reference.serialize();

  for (std::uint32_t window : kWindows) {
    ChainView::BuildOptions options;
    options.window_blocks = window;
    options.recovery = RecoveryPolicy::Lenient;
    IngestReport report;
    options.report = &report;
    ChainView view = ChainView::build_windowed(store, exec, options);
    EXPECT_EQ(view.serialize() == want, true) << "window " << window;
    ASSERT_EQ(report.blocks.size(), ref_report.blocks.size())
        << "window " << window;
    for (std::size_t i = 0; i < report.blocks.size(); ++i) {
      EXPECT_EQ(report.blocks[i].record, ref_report.blocks[i].record);
      EXPECT_EQ(report.blocks[i].stage, Quarantined::Stage::Read);
    }
  }
}

TEST_F(ViewOutOfCore, StrictReadFaultThrowsAtTheLowestRecord) {
  fault::Registry::global().arm_nth("blockstore.read", 5);
  FileBlockStore store(path_);
  Executor exec(4);
  for (std::uint32_t window : kWindows) {
    ChainView::BuildOptions options;
    options.window_blocks = window;
    EXPECT_THROW((void)ChainView::build_windowed(store, exec, options),
                 IoError)
        << "window " << window;
  }
}

TEST_F(ViewOutOfCore, WindowMetricsCountTheScan) {
#ifndef FISTFUL_NO_OBS
  FileBlockStore store(path_);
  Executor exec(2);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  auto windows_counted = [&] {
    obs::Snapshot snap = registry.snapshot();
    const obs::CounterValue* c = snap.counter("view.window.count");
    return c == nullptr ? std::uint64_t{0} : c->value;
  };
  std::uint64_t before = windows_counted();
  ChainView::BuildOptions options;
  options.window_blocks = 7;
  (void)ChainView::build_windowed(store, exec, options);
  std::uint64_t expected = (store.count() + 6) / 7;
  EXPECT_EQ(windows_counted() - before, expected);
  obs::Snapshot snap = registry.snapshot();
  const obs::GaugeValue* g = snap.gauge("view.window.blocks");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 7);
#endif
}

}  // namespace
}  // namespace fist
