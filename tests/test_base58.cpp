#include "encoding/base58.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace fist {
namespace {

TEST(Base58, EmptyInput) {
  EXPECT_EQ(base58_encode(ByteView{}), "");
  EXPECT_TRUE(base58_decode("").empty());
}

TEST(Base58, KnownVectors) {
  // Vectors from Bitcoin Core's base58_encode_decode.json.
  EXPECT_EQ(base58_encode(from_hex("61")), "2g");
  EXPECT_EQ(base58_encode(from_hex("626262")), "a3gV");
  EXPECT_EQ(base58_encode(from_hex("636363")), "aPEr");
  EXPECT_EQ(base58_encode(from_hex("73696d706c792061206c6f6e6720737472696e67")),
            "2cFupjhnEsSn59qHXstmK2ffpLv2");
  EXPECT_EQ(base58_encode(from_hex("516b6fcd0f")), "ABnLTmg");
  EXPECT_EQ(base58_encode(from_hex("572e4794")), "3EFU7m");
  EXPECT_EQ(base58_encode(from_hex("10c8511e")), "Rt5zm");
}

TEST(Base58, LeadingZerosBecomeOnes) {
  EXPECT_EQ(base58_encode(from_hex("00000000000000000000")),
            "1111111111");
  EXPECT_EQ(base58_encode(from_hex("00010966776006953d5567439e5e39f86a0d"
                                   "273beed61967f6")),
            "16UwLL9Risc3QfPqBUvKofHmBQ7wMtjvM");
}

TEST(Base58, DecodeRejectsForbiddenChars) {
  EXPECT_THROW(base58_decode("0"), ParseError);   // zero digit excluded
  EXPECT_THROW(base58_decode("O"), ParseError);   // capital o excluded
  EXPECT_THROW(base58_decode("I"), ParseError);   // capital i excluded
  EXPECT_THROW(base58_decode("l"), ParseError);   // lowercase L excluded
  EXPECT_THROW(base58_decode("a b"), ParseError); // whitespace
}

TEST(Base58Check, AppendsVerifiableChecksum) {
  Bytes payload = from_hex("00010966776006953d5567439e5e39f86a0d273bee");
  std::string encoded = base58check_encode(payload);
  EXPECT_EQ(encoded, "16UwLL9Risc3QfPqBUvKofHmBQ7wMtjvM");
  auto decoded = base58check_decode(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

TEST(Base58Check, DetectsTypos) {
  std::string good = "16UwLL9Risc3QfPqBUvKofHmBQ7wMtjvM";
  // Flip one character to another alphabet character.
  std::string bad = good;
  bad[5] = bad[5] == 'L' ? 'M' : 'L';
  EXPECT_FALSE(base58check_decode(bad).has_value());
}

TEST(Base58Check, RejectsTooShort) {
  EXPECT_FALSE(base58check_decode("2g").has_value());
  EXPECT_FALSE(base58check_decode("").has_value());
}

TEST(Base58Check, RejectsNonAlphabet) {
  EXPECT_FALSE(base58check_decode("0OIl").has_value());
}

class Base58RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base58RoundTrip, Identity) {
  Rng rng(GetParam() + 77);
  Bytes data(GetParam());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  if (!data.empty() && GetParam() % 3 == 0) data[0] = 0;  // leading zero case
  EXPECT_EQ(base58_decode(base58_encode(data)), data);
  EXPECT_EQ(base58check_decode(base58check_encode(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base58RoundTrip,
                         ::testing::Values(0, 1, 2, 5, 20, 21, 32, 33, 64,
                                           100));

}  // namespace
}  // namespace fist
