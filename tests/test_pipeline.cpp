#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace fist {
namespace {

sim::WorldConfig tiny() {
  sim::WorldConfig cfg;
  cfg.days = 50;
  cfg.users = 80;
  cfg.blocks_per_day = 8;
  cfg.seed = 2024;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World* w = [] {
      auto* world = new sim::World(tiny());
      world->run();
      return world;
    }();
    return *w;
  }

  static ForensicPipeline& pipeline() {
    static ForensicPipeline* p = [] {
      auto* pipe = new ForensicPipeline(world().store(), world().tag_feed());
      pipe->run();
      return pipe;
    }();
    return *p;
  }
};

TEST_F(PipelineTest, RefinedOptionsMatchPaper) {
  H2Options o = refined_h2_options();
  EXPECT_TRUE(o.exempt_dice_rebounds);
  EXPECT_EQ(o.wait_window, kWeek);
  EXPECT_TRUE(o.guard_reused_change);
  EXPECT_TRUE(o.guard_self_change_history);
}

TEST_F(PipelineTest, BuildsViewFromBytesOnly) {
  EXPECT_GT(pipeline().view().tx_count(), 1000u);
  EXPECT_GT(pipeline().view().address_count(), 1000u);
}

TEST_F(PipelineTest, InternedTagsSubsetOfFeed) {
  EXPECT_GT(pipeline().tags().size(), 0u);
  EXPECT_LE(pipeline().tags().size(), world().tag_feed().size());
}

TEST_F(PipelineTest, H2RefinesH1Clustering) {
  // H2 merges change addresses into H1 clusters, so the final
  // clustering has at most as many clusters.
  EXPECT_LE(pipeline().clustering().cluster_count(),
            pipeline().h1_clustering().cluster_count());
  EXPECT_GT(pipeline().h2().label_count(), 0u);
}

TEST_F(PipelineTest, DiceSetDerivedFromTags) {
  // Dice addresses come from gambling-named H1 clusters — nonempty in a
  // world with Satoshi Dice.
  EXPECT_GT(pipeline().dice_addresses().size(), 0u);
}

TEST_F(PipelineTest, NamedClustersAmplifyHandTags) {
  const ClusterNaming& naming = pipeline().naming();
  EXPECT_GT(naming.names().size(), 5u);
  EXPECT_GT(naming.named_addresses(), pipeline().tags().size());
}

TEST_F(PipelineTest, ClusteringAssignmentCoversAllAddresses) {
  EXPECT_EQ(pipeline().clustering().address_count(),
            pipeline().view().address_count());
  EXPECT_EQ(pipeline().h2().change_of_tx.size(),
            pipeline().view().tx_count());
}

TEST_F(PipelineTest, RunIsIdempotent) {
  std::size_t clusters = pipeline().clustering().cluster_count();
  const_cast<ForensicPipeline&>(pipeline()).run();
  EXPECT_EQ(pipeline().clustering().cluster_count(), clusters);
}

}  // namespace
}  // namespace fist
