#include "net/eventloop.hpp"

#include <gtest/gtest.h>

namespace fist::net {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(3.0, [&] { order.push_back(3); });
  loop.schedule_at(1.0, [&] { order.push_back(1); });
  loop.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(loop.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, StableTieBreakAtEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    loop.schedule_at(5.0, [&order, i] { order.push_back(i); });
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, NowAdvancesWithEvents) {
  EventLoop loop;
  SimTime seen = -1;
  loop.schedule_at(7.5, [&] { seen = loop.now(); });
  loop.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_GE(loop.now(), 7.5);
}

TEST(EventLoop, HandlersMayScheduleMore) {
  EventLoop loop;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) loop.schedule_in(1.0, chain);
  };
  loop.schedule_in(1.0, chain);
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(loop.now(), 5.0);
}

TEST(EventLoop, RunUntilStopsEarly) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(1.0, [&] { ++fired; });
  loop.schedule_at(10.0, [&] { ++fired; });
  loop.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, PastSchedulesClampToNow) {
  EventLoop loop;
  loop.schedule_at(5.0, [] {});
  loop.run();
  SimTime fired_at = -1;
  loop.schedule_at(1.0, [&] { fired_at = loop.now(); });  // in the past
  loop.run();
  EXPECT_GE(fired_at, 5.0);
}

TEST(EventLoop, NegativeDelayClamps) {
  EventLoop loop;
  bool fired = false;
  loop.schedule_in(-3.0, [&] { fired = true; });
  loop.run();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace fist::net
