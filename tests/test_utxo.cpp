#include "chain/utxo.hpp"

#include <gtest/gtest.h>

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

OutPoint op(int i) {
  return OutPoint{hash256(to_bytes("tx" + std::to_string(i))), 0};
}

Coin coin(Amount v, int height = 0, bool coinbase = false) {
  return Coin{v, make_p2pkh(hash160(to_bytes(std::string("a")))), height,
              coinbase};
}

TEST(UtxoSet, AddFindSpend) {
  UtxoSet set;
  set.add(op(1), coin(btc(5)));
  ASSERT_NE(set.find(op(1)), nullptr);
  EXPECT_EQ(set.find(op(1))->value, btc(5));
  EXPECT_EQ(set.size(), 1u);

  auto spent = set.spend(op(1));
  ASSERT_TRUE(spent.has_value());
  EXPECT_EQ(spent->value, btc(5));
  EXPECT_EQ(set.find(op(1)), nullptr);
  EXPECT_EQ(set.size(), 0u);
}

TEST(UtxoSet, SpendMissingReturnsNullopt) {
  UtxoSet set;
  EXPECT_FALSE(set.spend(op(9)).has_value());
}

TEST(UtxoSet, DuplicateOutpointThrows) {
  UtxoSet set;
  set.add(op(1), coin(btc(1)));
  EXPECT_THROW(set.add(op(1), coin(btc(2))), ValidationError);
}

TEST(UtxoSet, SameTxidDifferentIndexAllowed) {
  UtxoSet set;
  OutPoint a = op(1);
  OutPoint b = a;
  b.index = 1;
  set.add(a, coin(btc(1)));
  set.add(b, coin(btc(2)));
  EXPECT_EQ(set.size(), 2u);
}

TEST(UtxoSet, TotalValue) {
  UtxoSet set;
  set.add(op(1), coin(btc(1)));
  set.add(op(2), coin(btc(2)));
  set.add(op(3), coin(btc(3)));
  EXPECT_EQ(set.total_value(), btc(6));
  set.spend(op(2));
  EXPECT_EQ(set.total_value(), btc(4));
}

TEST(UtxoSet, PreservesCoinMetadata) {
  UtxoSet set;
  set.add(op(1), coin(btc(50), 123, true));
  const Coin* c = set.find(op(1));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->height, 123);
  EXPECT_TRUE(c->coinbase);
}

}  // namespace
}  // namespace fist
