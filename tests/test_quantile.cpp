// test_quantile.cpp — bucket-interpolated quantile estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/obs/metrics.hpp"
#include "core/obs/quantile.hpp"

namespace fist {
namespace {

obs::HistogramValue make_hist(std::vector<double> bounds,
                              std::vector<std::uint64_t> buckets,
                              double sum = 0) {
  obs::HistogramValue h;
  h.name = "h";
  h.bounds = std::move(bounds);
  h.buckets = std::move(buckets);
  for (std::uint64_t c : h.buckets) h.count += c;
  h.sum = sum;
  return h;
}

TEST(Quantile, EmptyHistogramIsNaN) {
  obs::HistogramValue h = make_hist({1, 2}, {0, 0, 0});
  EXPECT_TRUE(std::isnan(obs::histogram_quantile(h, 0.5)));
  obs::HistogramValue no_buckets;
  EXPECT_TRUE(std::isnan(obs::histogram_quantile(no_buckets, 0.5)));
}

TEST(Quantile, InterpolatesWithinBucket) {
  // 10 observations spread evenly in (0, 10]: one bucket {0..10}.
  obs::HistogramValue h = make_hist({10}, {10, 0});
  // p50 -> rank 5 of 10 -> half-way through [0, 10].
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.0), 10.0);
}

TEST(Quantile, WalksCumulativeBuckets) {
  // bounds {1, 2.5}, buckets [1, 1, 1] — the exporter golden histogram.
  obs::HistogramValue h = make_hist({1, 2.5}, {1, 1, 1}, 101.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.50), 1.75);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.90), 2.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.99), 2.5);
}

TEST(Quantile, OverflowBucketReportsLastBound) {
  // Everything beyond the last bound: the histogram can only attest
  // "at least bounds.back()".
  obs::HistogramValue h = make_hist({1, 2}, {0, 0, 5});
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.99), 2.0);
}

TEST(Quantile, BoundlessHistogramFallsBackToMean) {
  // A single overflow bucket (bounds empty) has no shape at all;
  // the mean is the only defensible point estimate.
  obs::HistogramValue h = make_hist({}, {4}, 20.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 5.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  obs::HistogramValue h = make_hist({10}, {10, 0});
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, -1), obs::histogram_quantile(h, 0));
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 2), obs::histogram_quantile(h, 1));
}

TEST(Quantile, SkipsEmptyLeadingBuckets) {
  obs::HistogramValue h = make_hist({1, 2, 3}, {0, 0, 4, 0});
  // All mass in (2, 3]; p50 interpolates inside that bucket.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 2.5);
}

#ifndef FISTFUL_NO_OBS
TEST(Quantile, MatchesLiveHistogram) {
  // The estimator consumes snapshots from real histograms unchanged.
  obs::MetricsRegistry registry;
  obs::Histogram h = registry.histogram("q.live", {1, 2.5});
  h.observe(0.5);
  h.observe(2);
  h.observe(99);
  obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(snap.histograms[0], 0.5), 1.75);
}
#endif  // FISTFUL_NO_OBS

}  // namespace
}  // namespace fist
