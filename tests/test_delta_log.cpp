// test_delta_log.cpp — framing, crash-tail, corruption, and retry
// behavior of the write-ahead delta log (docs/ROBUSTNESS.md).
#include "core/delta_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

namespace fs = std::filesystem;

class DeltaLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::global().disarm_all();
    path_ = fs::temp_directory_path() /
            ("fist_delta_log_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()) +
             ".log");
    fs::remove(path_);
  }
  void TearDown() override {
    fault::Registry::global().disarm_all();
    fs::remove(path_);
  }

  Bytes payload(unsigned seed, std::size_t len = 64) const {
    Bytes p(len);
    for (std::size_t i = 0; i < len; ++i)
      p[i] = static_cast<std::uint8_t>((seed * 131 + i * 7) & 0xff);
    return p;
  }

  void append_garbage(std::size_t n, std::uint8_t byte = 0xab) const {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    for (std::size_t i = 0; i < n; ++i)
      out.put(static_cast<char>(byte));
  }

  /// Flips one byte at `offset` in place.
  void corrupt_byte(std::size_t offset) const {
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(c ^ 0xff));
  }

  fs::path path_;
};

constexpr std::size_t kHeader = 16;  // magic + len + truncated sha256d

TEST_F(DeltaLogTest, RoundTripAcrossReopen) {
  {
    DeltaLog log(path_);
    EXPECT_EQ(log.record_count(), 0u);
    EXPECT_EQ(log.append(payload(1)), 0u);
    EXPECT_EQ(log.append(payload(2, 300)), 1u);
    EXPECT_EQ(log.append(Bytes{}), 2u);  // empty payloads are legal
  }
  DeltaLog log(path_);
  ASSERT_EQ(log.record_count(), 3u);
  EXPECT_TRUE(log.open_report().clean());
  EXPECT_EQ(log.payload(0), payload(1));
  EXPECT_EQ(log.payload(1), payload(2, 300));
  EXPECT_TRUE(log.payload(2).empty());
  EXPECT_FALSE(log.poisoned(0));
}

TEST_F(DeltaLogTest, TornTailIsDetectedAndTruncated) {
  {
    DeltaLog log(path_);
    log.append(payload(1));
    log.append(payload(2));
  }
  const auto clean_size = fs::file_size(path_);
  append_garbage(kHeader - 3);  // not even a whole header
  {
    DeltaLog log(path_);  // strict mode: torn tails are still fine
    EXPECT_EQ(log.record_count(), 2u);
    EXPECT_EQ(log.open_report().torn_tail_bytes, kHeader - 3);
    EXPECT_EQ(fs::file_size(path_), clean_size);  // physically removed
    log.append(payload(3));  // appends continue on the clean boundary
  }
  DeltaLog log(path_);
  EXPECT_EQ(log.record_count(), 3u);
  EXPECT_TRUE(log.open_report().clean());
}

TEST_F(DeltaLogTest, TornPayloadIsDetectedAndTruncated) {
  std::size_t clean_size = 0;
  {
    DeltaLog log(path_);
    log.append(payload(1));
    clean_size = fs::file_size(path_);
    log.append(payload(2, 200));
  }
  // Chop the last record's payload short: header intact, body torn.
  fs::resize_file(path_, clean_size + kHeader + 50);
  DeltaLog log(path_);
  EXPECT_EQ(log.record_count(), 1u);
  EXPECT_EQ(log.open_report().torn_tail_bytes, kHeader + 50);
  EXPECT_EQ(fs::file_size(path_), clean_size);
}

TEST_F(DeltaLogTest, ChecksumMismatchThrowsInStrictMode) {
  std::size_t first_end = 0;
  {
    DeltaLog log(path_);
    log.append(payload(1));
    first_end = fs::file_size(path_);
    log.append(payload(2));
  }
  corrupt_byte(first_end + kHeader + 5);  // record 1's payload
  EXPECT_THROW(DeltaLog log(path_), ParseError);
}

TEST_F(DeltaLogTest, ChecksumMismatchPoisonsInRecoverMode) {
  std::size_t first_end = 0;
  {
    DeltaLog log(path_);
    log.append(payload(1));
    first_end = fs::file_size(path_);
    log.append(payload(2));
    log.append(payload(3));
  }
  corrupt_byte(first_end + kHeader + 5);
  DeltaLog::OpenOptions recover;
  recover.recover = true;
  DeltaLog log(path_, recover);
  // The poisoned record keeps its index slot so later records stay
  // addressable.
  ASSERT_EQ(log.record_count(), 3u);
  EXPECT_FALSE(log.poisoned(0));
  EXPECT_TRUE(log.poisoned(1));
  EXPECT_FALSE(log.poisoned(2));
  EXPECT_EQ(log.payload(2), payload(3));
  ASSERT_EQ(log.open_report().poisoned.size(), 1u);
  EXPECT_EQ(log.open_report().poisoned[0], 1u);
}

TEST_F(DeltaLogTest, MangledFramingResyncsInRecoverMode) {
  std::size_t first_end = 0;
  {
    DeltaLog log(path_);
    log.append(payload(1));
    first_end = fs::file_size(path_);
    log.append(payload(2));
    log.append(payload(3));
  }
  corrupt_byte(first_end);  // record 1's magic
  EXPECT_THROW(DeltaLog strict(path_), ParseError);
  DeltaLog::OpenOptions recover;
  recover.recover = true;
  DeltaLog log(path_, recover);
  // Record 1's frame is unrecoverable; the scan resyncs to record 2,
  // which therefore shifts down one slot.
  ASSERT_EQ(log.record_count(), 2u);
  EXPECT_EQ(log.payload(0), payload(1));
  EXPECT_EQ(log.payload(1), payload(3));
  EXPECT_GT(log.open_report().resynced_bytes, 0u);
}

TEST_F(DeltaLogTest, AppendRetriesPastTransientFault) {
  // Key = (index << 3) | attempt: fail only record 1's attempt 0.
  fault::Registry::global().arm_nth("delta.log.append", (1u << 3) | 0u);
  DeltaLog log(path_);
  log.append(payload(1));
  EXPECT_EQ(log.append(payload(2)), 1u);  // retried, then succeeded
  EXPECT_EQ(fault::Registry::global().fired("delta.log.append"), 1u);
  DeltaLog reopened(path_);
  ASSERT_EQ(reopened.record_count(), 2u);
  EXPECT_TRUE(reopened.open_report().clean());
  EXPECT_EQ(reopened.payload(1), payload(2));
}

TEST_F(DeltaLogTest, AppendThrowsWhenRetriesExhaust) {
  fault::Registry::global().arm("delta.log.append", 1.0);
  DeltaLog log(path_);
  EXPECT_THROW(log.append(payload(1)), IoError);
  fault::Registry::global().disarm_all();
  EXPECT_EQ(log.append(payload(2)), 0u);  // the log object stays usable
  DeltaLog reopened(path_);
  ASSERT_EQ(reopened.record_count(), 1u);
  EXPECT_EQ(reopened.payload(0), payload(2));
}

TEST_F(DeltaLogTest, OversizedPayloadIsRejected) {
  DeltaLog log(path_);
  Bytes big(32u * 1024 * 1024 + 1);
  EXPECT_THROW(log.append(big), UsageError);
}

}  // namespace
}  // namespace fist
