#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace fist {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(7);
  Rng child = parent.fork();
  // Parent stream continues after forking; the two produce different
  // sequences.
  std::uint64_t p = parent.next();
  std::uint64_t c = child.next();
  EXPECT_NE(p, c);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(5, 4), UsageError);
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), UsageError);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.3);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), UsageError);
}

TEST(Rng, LognormalMedian) {
  Rng rng(19);
  std::vector<double> xs(9999);
  for (double& x : xs) x = rng.lognormal(80.0, 0.6);
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 80.0, 8.0);
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfSingleCategory) {
  Rng rng(29);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1), 0u);
}

TEST(Rng, WeightedZeroWeightNeverPicked) {
  Rng rng(31);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.weighted(w), 1u);
}

TEST(Rng, WeightedProportions) {
  Rng rng(37);
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.weighted(w) == 1) ++ones;
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng rng(1);
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(rng.weighted(w), UsageError);
}

TEST(Rng, WeightedRejectsNegative) {
  Rng rng(1);
  std::vector<double> w{1.0, -0.5};
  EXPECT_THROW(rng.weighted(w), UsageError);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), UsageError);
}

}  // namespace
}  // namespace fist
