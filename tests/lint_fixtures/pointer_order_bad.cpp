// Violations: pointer-keyed ordered/hashed containers.
#include <map>
#include <set>
#include <unordered_set>

struct Node {
  int id = 0;
};

std::map<Node*, int> rank_by_node;
std::set<const Node*> visited;
std::unordered_set<Node*> open_nodes;
