// Violations: uninitialized scalar members in a serialized struct.
#include <cstdint>
#include <string>
#include <vector>

struct WireRecord {
  std::uint32_t height = 0;
  std::uint64_t value;
  bool spent;
  std::string payload;
  std::vector<unsigned char> serialize() const;
};
