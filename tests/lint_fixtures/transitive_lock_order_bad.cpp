// Violation: the rank inversion is invisible lexically — `refresh`
// holds the high-rank mutex and the low-rank acquisition happens one
// call away in `reload_low`. Only the whole-program acquisition graph
// sees it.
enum class Rank : int {
  kLow = 10,
  kHigh = 20,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct State {
  Mutex low_mutex{Rank::kLow};
  Mutex high_mutex{Rank::kHigh};

  void reload_low();
  void refresh();
};

void State::reload_low() {
  LockGuard lock(low_mutex);
}

void State::refresh() {
  LockGuard lock(high_mutex);
  reload_low();
}
