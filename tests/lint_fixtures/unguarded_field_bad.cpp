// Violation: `hits_` is mutated under stats_mutex in `record`, but
// `snapshot` reads it on a path where the mutex is provably never
// held (nothing in the tree calls snapshot with the lock taken).
enum class Rank : int {
  kStats = 40,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Stats {
  Mutex stats_mutex{Rank::kStats};
  long hits_ = 0;

  void record();
  long snapshot();
};

void Stats::record() {
  LockGuard lock(stats_mutex);
  hits_ += 1;
}

long Stats::snapshot() {
  return hits_;
}
