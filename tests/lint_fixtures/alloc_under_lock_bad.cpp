// Violation: heap allocation while holding a hot-path mutex (rank at
// or above the threshold, default 60). The cold-rank twin below shows
// the rule is rank-gated. Both queues drain, so unbounded-growth
// stays quiet and the alloc finding is isolated.
enum class Rank : int {
  kHot = 70,
  kCold = 10,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct HotQueue {
  Mutex hot_mutex{Rank::kHot};
  std::vector<int> pending;

  void enqueue(int v) {
    LockGuard lock(hot_mutex);
    pending.push_back(v);
  }

  void drain() {
    LockGuard lock(hot_mutex);
    pending.clear();
  }
};

struct ColdQueue {
  Mutex cold_mutex{Rank::kCold};
  std::vector<int> backlog;

  void enqueue(int v) {
    LockGuard lock(cold_mutex);
    backlog.push_back(v);
  }

  void drain() {
    LockGuard lock(cold_mutex);
    backlog.clear();
  }
};
