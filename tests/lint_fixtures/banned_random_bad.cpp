// Violations: ambient entropy outside the seeded registries.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned noisy_seed() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  return static_cast<unsigned>(std::rand()) + rd();
}
