// Cross-TU half A: the lock lives here; the blocking IO is two calls
// away in xtu_sink_b.cpp (commit → journal_flush_all →
// journal_write_back → fsync).
enum class Rank : int {
  kJournal = 60,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

void journal_flush_all();

struct Journal {
  Mutex journal_mutex{Rank::kJournal};

  void commit() {
    LockGuard lock(journal_mutex);
    journal_flush_all();
  }
};
