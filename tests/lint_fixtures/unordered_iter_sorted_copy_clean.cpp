// Clean: the sorted-copy idiom. Iterating an unordered container is
// fine when the loop body does nothing but build an ordered copy —
// inserting into a std::map/set (self-ordering) or pushing into a
// vector that is sorted before anything reads it.
#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

std::map<int, int> to_ordered_map(const std::unordered_map<int, int>& counts) {
  std::map<int, int> sorted;
  for (const auto& [k, v] : counts) sorted[k] = v;
  return sorted;
}

std::set<int> to_ordered_set(const std::unordered_map<int, int>& counts) {
  std::set<int> keys;
  for (const auto& [k, v] : counts) {
    keys.insert(k);
  }
  return keys;
}

std::vector<int> to_sorted_vector(
    const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  for (const auto& [k, v] : counts) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}
