// Clean: the same growing member, but a compaction path clears it —
// any shrink op anywhere in the tree counts as the eviction story.
enum class Rank : int {
  kLedger = 50,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Ledger {
  Mutex ledger_mutex{Rank::kLedger};
  std::vector<long> entries;

  void record(long v) {
    LockGuard lock(ledger_mutex);
    entries.push_back(v);
  }

  void compact() {
    LockGuard lock(ledger_mutex);
    entries.clear();
  }
};
