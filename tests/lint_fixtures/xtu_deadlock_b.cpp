// Cross-TU deadlock half B: the opposite acquisition order — holds
// queue_mutex, then calls back into pool_recycle (xtu_deadlock_a.cpp)
// which takes pool_mutex.
enum class Rank : int {
  kPool = 30,
  kQueue = 30,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

Mutex queue_mutex{Rank::kQueue};

void pool_recycle();

void queue_push() {
  LockGuard lock(queue_mutex);
  pool_recycle();
}
