// Clean: acquisitions that follow the hierarchy, including manual
// lock/unlock and guards released by scope exit.
enum class Rank : int {
  kLow = 10,
  kHigh = 20,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct State {
  Mutex low{Rank::kLow};
  Mutex high{Rank::kHigh};
};

void right_order(State& s) {
  LockGuard outer(s.low);
  LockGuard inner(s.high);
}

void sequential(State& s) {
  {
    LockGuard g(s.high);
  }
  LockGuard g(s.low);
}

void manual_handoff(State& s) {
  s.high.lock();
  s.high.unlock();
  s.low.lock();
  s.low.unlock();
}
