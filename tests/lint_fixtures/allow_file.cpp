// fistlint:allow-file(unordered-iter) every fold in this file is commutative
#include <unordered_map>

int total(const std::unordered_map<int, int>& m) {
  int sum = 0;
  for (const auto& [k, v] : m) sum += v;
  return sum;
}

int count(const std::unordered_map<int, int>& m) {
  int n = 0;
  for (const auto& [k, v] : m) n += (v > 0) ? 1 : 0;
  return n;
}
