// Clean: sorted copies and ordered containers.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

int sorted_copy(const std::unordered_map<int, int>& counts) {
  std::vector<std::pair<int, int>> rows(counts.begin(), counts.end());
  std::sort(rows.begin(), rows.end());
  int sum = 0;
  for (const auto& [k, v] : rows) sum += v;
  return sum;
}

int ordered_map(const std::map<int, int>& by_key) {
  int sum = 0;
  for (const auto& [k, v] : by_key) sum += v;
  return sum;
}
