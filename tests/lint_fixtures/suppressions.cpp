// Suppression grammar: trailing, own-line (multi-line reason), and a
// reasonless allow that must itself be reported.
#include <unordered_map>

int trailing(const std::unordered_map<int, int>& m) {
  int sum = 0;
  for (const auto& [k, v] : m) sum += v;  // fistlint:allow(unordered-iter) commutative sum
  return sum;
}

int own_line(const std::unordered_map<int, int>& m) {
  int sum = 0;
  // fistlint:allow(unordered-iter) commutative sum; the reason
  // continues on a second comment line
  for (const auto& [k, v] : m) sum += v;
  return sum;
}

int reasonless(const std::unordered_map<int, int>& m) {
  int sum = 0;
  // fistlint:allow(unordered-iter)
  for (const auto& [k, v] : m) sum += v;
  return sum;
}
