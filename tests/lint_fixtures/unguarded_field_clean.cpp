// Clean: every read of the FIST_GUARDED_BY field outside the
// constructor takes stats_mutex first. Constructors are exempt — the
// object is not shared until construction returns.
enum class Rank : int {
  kStats = 40,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Stats {
  Mutex stats_mutex{Rank::kStats};
  long hits_ FIST_GUARDED_BY(stats_mutex) = 0;

  Stats() { hits_ = 0; }
  void record();
  long snapshot();
};

void Stats::record() {
  LockGuard lock(stats_mutex);
  hits_ += 1;
}

long Stats::snapshot() {
  LockGuard lock(stats_mutex);
  return hits_;
}
