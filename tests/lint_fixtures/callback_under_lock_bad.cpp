// Violation: a stored std::function is invoked while a ranked mutex
// is held — the callee's body is arbitrary user code and can block or
// re-enter the lock.
enum class Rank : int {
  kNotifier = 80,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Notifier {
  Mutex notifier_mutex{Rank::kNotifier};
  std::function<void(int)> on_event;

  void fire(int v) {
    LockGuard lock(notifier_mutex);
    on_event(v);
  }
};
