// Violations: a raw std::thread outside the executor, then detached —
// its writes can land after every join point the tests control.
#include <thread>

void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}
