// Violations: raw standard mutexes. No hierarchy rank, no guarded
// members — invisible to every layer of the lock discipline.
#include <mutex>
#include <shared_mutex>

struct Registry {
  std::mutex mu;
  std::shared_mutex table_lock;
  int value = 0;
};
