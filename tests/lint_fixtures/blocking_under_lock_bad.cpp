// Violations: blocking IO reached while a ranked lock is held — once
// directly, once through a free function the call graph links.
enum class Rank : int {
  kStore = 60,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

int fsync(int fd);

void flush_journal_to_disk(int fd) { fsync(fd); }

struct Store {
  Mutex store_mutex{Rank::kStore};
  int fd = 0;

  void direct_io() {
    LockGuard lock(store_mutex);
    fsync(fd);
  }

  void propagated_io() {
    LockGuard lock(store_mutex);
    flush_journal_to_disk(fd);
  }
};
