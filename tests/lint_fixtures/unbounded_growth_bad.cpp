// Violation: a container member of a mutexed class grows on the
// locked path and nothing in the tree ever shrinks or caps it. The
// rank (50) sits below the hot-path threshold so alloc-under-lock
// stays quiet and the growth finding is isolated.
enum class Rank : int {
  kLedger = 50,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Ledger {
  Mutex ledger_mutex{Rank::kLedger};
  std::vector<long> entries;

  void record(long v) {
    LockGuard lock(ledger_mutex);
    entries.push_back(v);
  }
};
