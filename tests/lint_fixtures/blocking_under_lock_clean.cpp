// Clean: the dirty state is snapshotted inside the critical section
// and the IO happens after the guard's scope closes.
enum class Rank : int {
  kStore = 60,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

int fsync(int fd);

struct Store {
  Mutex store_mutex{Rank::kStore};
  int fd = 0;
  int dirty = 0;

  void flush() {
    int snapshot = 0;
    {
      LockGuard lock(store_mutex);
      snapshot = dirty;
      dirty = 0;
    }
    fsync(fd);
    (void)snapshot;
  }
};
