// Clean: the batch is built outside the critical section and
// published with an O(1) swap, so the hot lock never covers an
// allocation.
enum class Rank : int {
  kHot = 70,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct HotQueue {
  Mutex hot_mutex{Rank::kHot};
  std::vector<int> pending;

  void publish(std::vector<int>& staged) {
    LockGuard lock(hot_mutex);
    pending.swap(staged);
  }
};
