// Violations: FP arithmetic on satoshi amounts.
using Amount = long long;

Amount scale_fee(Amount fee, double factor) {
  return static_cast<Amount>(static_cast<double>(fee) * factor);
}

double to_btc(Amount satoshis) {
  return static_cast<double>(satoshis) / 100000000.0;
}
