// Clean: initializers, a user constructor, or no serialization at all.
#include <cstdint>
#include <vector>

struct GoodRecord {
  std::uint32_t height = 0;
  bool spent = false;
  std::vector<unsigned char> serialize() const;
};

struct CtorRecord {
  CtorRecord();
  std::uint32_t height;
  std::vector<unsigned char> serialize() const;
};

struct Plain {
  int x;
};
