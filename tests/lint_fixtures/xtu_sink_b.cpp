// Cross-TU half B: no lock in sight — the blocking effect propagates
// from here back to the lock region in xtu_lock_a.cpp.
int fsync(int fd);

void journal_write_back(int fd) { fsync(fd); }

void journal_flush_all() { journal_write_back(3); }
