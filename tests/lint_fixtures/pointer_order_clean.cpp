// Clean: pointers as mapped values, stable ids as keys.
#include <map>
#include <set>

struct Node {
  int id = 0;
};

std::map<int, Node*> node_by_id;
std::set<long> ids;
