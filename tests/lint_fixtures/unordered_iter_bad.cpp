// Violations: range-for and iterator loops over unordered containers.
#include <unordered_map>
#include <unordered_set>

struct Index {
  std::unordered_map<int, int> by_id;
};

int range_for_member(const Index& index) {
  int sum = 0;
  for (const auto& [k, v] : index.by_id) sum += v;
  return sum;
}

int iterator_loop(const std::unordered_set<int>& seen) {
  int n = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) ++n;
  return n;
}
