// Violations: copies that look like the sorted-copy idiom but do not
// restore a deterministic order.
#include <unordered_map>
#include <vector>

// push_back with no subsequent sort: the copy keeps bucket order.
std::vector<int> unsorted_copy(const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  for (const auto& [k, v] : counts) keys.push_back(k);
  return keys;
}

// The body does more than copy: the fold observes bucket order.
long copy_and_fold(const std::unordered_map<int, int>& counts) {
  std::vector<int> keys;
  long digest = 0;
  for (const auto& [k, v] : counts) {
    keys.push_back(k);
    digest = digest * 31 + v;
  }
  return digest;
}
