// Metric/span name uses for the docs-drift fixture.
#include <string>

struct Reg {
  void counter(const std::string& name);
  void histogram(const std::string& name);
};

struct Span {
  explicit Span(const std::string& name);
};

void wire(Reg& registry, const std::string& site) {
  registry.counter("app.requests");
  registry.histogram("app.latency");
  Span phase("app.phase");
  registry.counter("fault.injected." + site);
  registry.counter("app.undocumented");
}
