// Metric/span name uses for the docs-drift fixture.
#include <string>

struct Reg {
  void counter(const std::string& name);
  void histogram(const std::string& name);
};

struct Span {
  explicit Span(const std::string& name);
};

void wire(Reg& registry, const std::string& site) {
  registry.counter("app.requests");
  registry.histogram("app.latency");
  Span phase("app.phase");
  registry.counter("fault.injected." + site);
  registry.counter("app.undocumented");
}

// Flight-recorder events are collected like metric names, but the call
// is a free function rather than a registry member.
void flight_event(const std::string& type);

void emit() { flight_event("app.event"); }
