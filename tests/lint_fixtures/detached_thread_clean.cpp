// Clean: std::thread type access (no construction) is fine anywhere —
// slot hashing and parallelism probes need it.
#include <cstddef>
#include <functional>
#include <thread>

std::size_t slot_for_current_thread() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 8;
}

unsigned probe_parallelism() {
  return std::thread::hardware_concurrency();
}
