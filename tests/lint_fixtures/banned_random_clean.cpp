// Clean: members named like the banned globals, and string mentions.
struct Clock {
  long time(void* tz) const { return tz == nullptr ? 0 : 1; }
};

long member_calls(const Clock& clock, Clock* remote) {
  return clock.time(nullptr) + remote->time(nullptr);
}

const char* kNote = "never call rand() or time(nullptr) here";
