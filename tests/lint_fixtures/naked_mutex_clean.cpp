// Clean: a ranked fist::Mutex, and a raw mutex that anchors
// FIST_GUARDED_BY members (visible to the thread-safety analysis).
#include <mutex>

#define FIST_GUARDED_BY(x) __attribute__((guarded_by(x)))

enum class Rank : int { kRegistry = 10 };

struct Mutex {
  explicit Mutex(Rank r);
};

struct Registry {
  Mutex mu{Rank::kRegistry};
  std::mutex fallback;
  int value FIST_GUARDED_BY(fallback) = 0;
};
