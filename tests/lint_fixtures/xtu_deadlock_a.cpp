// Cross-TU deadlock half A: `pool_drain` holds pool_mutex and calls
// into `queue_push` (xtu_deadlock_b.cpp), which takes queue_mutex and
// calls back into `pool_recycle` here — closing a pool → queue → pool
// loop neither TU shows lexically.
enum class Rank : int {
  kPool = 30,
  kQueue = 30,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

Mutex pool_mutex{Rank::kPool};

void queue_push();

void pool_drain() {
  LockGuard lock(pool_mutex);
  queue_push();
}

void pool_recycle() {
  LockGuard lock(pool_mutex);
}
