// Violations: lexically nested acquisitions that contradict the
// declared hierarchy (ranks must strictly increase inward).
enum class Rank : int {
  kLow = 10,
  kHigh = 20,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct State {
  Mutex low{Rank::kLow};
  Mutex high{Rank::kHigh};
};

void wrong_order(State& s) {
  LockGuard outer(s.high);
  LockGuard inner(s.low);
}

void same_rank_reentry(State& s) {
  s.low.lock();
  LockGuard again(s.low);
  s.low.unlock();
}
