// Clean: the callable is copied out under the lock and invoked after
// the guard's scope closes.
enum class Rank : int {
  kNotifier = 80,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct Notifier {
  Mutex notifier_mutex{Rank::kNotifier};
  std::function<void(int)> on_event;

  void fire(int v) {
    std::function<void(int)> pending_cb;
    {
      LockGuard lock(notifier_mutex);
      pending_cb = on_event;
    }
    if (pending_cb) pending_cb(v);
  }
};
