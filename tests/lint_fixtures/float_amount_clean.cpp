// Clean: integral amount math; floats only for non-monetary data.
using Amount = long long;

Amount add_fee(Amount total, Amount fee) { return total + fee; }

double mean_ms(double total_ms, long samples) {
  return samples == 0 ? 0.0 : total_ms / static_cast<double>(samples);
}
