// Clean: ranks strictly increase along the call path (low held, high
// acquired one call away), and a failed try-lock backs off instead of
// blocking, so try acquisitions are never rank violations.
enum class Rank : int {
  kLow = 10,
  kHigh = 20,
};

struct Mutex {
  explicit Mutex(Rank r);
  void lock();
  bool try_lock();
  void unlock();
};

struct LockGuard {
  explicit LockGuard(Mutex& m);
};

struct State {
  Mutex low_mutex{Rank::kLow};
  Mutex high_mutex{Rank::kHigh};

  void reload_high();
  void refresh();
  void opportunistic();
};

void State::reload_high() {
  LockGuard lock(high_mutex);
}

void State::refresh() {
  LockGuard lock(low_mutex);
  reload_high();
}

void State::opportunistic() {
  LockGuard lock(high_mutex);
  if (low_mutex.try_lock()) {
    low_mutex.unlock();
  }
}
