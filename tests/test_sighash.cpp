#include "chain/sighash.hpp"

#include <gtest/gtest.h>

#include "script/standard.hpp"
#include "util/error.hpp"

namespace fist {
namespace {

struct Fixture {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("owner")));
  Script spent;
  Transaction tx;

  Fixture() {
    spent = make_p2pkh(hash160(key.pubkey().serialize_compressed()));
    TxIn in;
    in.prevout.txid = hash256(to_bytes(std::string("funding")));
    in.prevout.index = 0;
    tx.inputs.push_back(in);
    tx.outputs.push_back(
        TxOut{btc(1), make_p2pkh(hash160(to_bytes(std::string("dest"))))});
  }
};

TEST(Sighash, DeterministicAndInputSpecific) {
  Fixture f;
  Hash256 h0 = signature_hash(f.tx, 0, f.spent, SigHashType::All);
  EXPECT_EQ(h0, signature_hash(f.tx, 0, f.spent, SigHashType::All));

  // A second input yields a different sighash for index 1.
  Transaction two = f.tx;
  TxIn in2;
  in2.prevout.txid = hash256(to_bytes(std::string("funding2")));
  two.inputs.push_back(in2);
  EXPECT_NE(signature_hash(two, 0, f.spent, SigHashType::All),
            signature_hash(two, 1, f.spent, SigHashType::All));
}

TEST(Sighash, CommitsToOutputs) {
  Fixture f;
  Hash256 before = signature_hash(f.tx, 0, f.spent, SigHashType::All);
  Transaction changed = f.tx;
  changed.outputs[0].value += 1;
  EXPECT_NE(signature_hash(changed, 0, f.spent, SigHashType::All), before);
}

TEST(Sighash, IgnoresOtherScriptSigs) {
  // The legacy algorithm blanks other inputs' scriptSigs, so their
  // content must not affect the digest.
  Fixture f;
  Transaction two = f.tx;
  TxIn in2;
  in2.prevout.txid = hash256(to_bytes(std::string("funding2")));
  two.inputs.push_back(in2);
  Hash256 before = signature_hash(two, 0, f.spent, SigHashType::All);
  two.inputs[1].script_sig = make_p2pkh_scriptsig(Bytes(71, 1), Bytes(33, 2));
  EXPECT_EQ(signature_hash(two, 0, f.spent, SigHashType::All), before);
}

TEST(Sighash, RejectsBadIndex) {
  Fixture f;
  EXPECT_THROW(signature_hash(f.tx, 1, f.spent, SigHashType::All),
               UsageError);
}

TEST(Sighash, SignAndVerifyP2pkh) {
  Fixture f;
  f.tx.inputs[0].script_sig = sign_p2pkh_input(f.tx, 0, f.spent, f.key);
  EXPECT_TRUE(verify_p2pkh_input(f.tx, 0, f.spent));
}

TEST(Sighash, VerifyFailsOnTamperedOutput) {
  Fixture f;
  f.tx.inputs[0].script_sig = sign_p2pkh_input(f.tx, 0, f.spent, f.key);
  f.tx.outputs[0].value += 1;  // invalidates the commitment
  EXPECT_FALSE(verify_p2pkh_input(f.tx, 0, f.spent));
}

TEST(Sighash, VerifyFailsWithWrongKey) {
  Fixture f;
  PrivateKey wrong = PrivateKey::from_seed(to_bytes(std::string("wrong")));
  f.tx.inputs[0].script_sig = sign_p2pkh_input(f.tx, 0, f.spent, wrong);
  // The pubkey no longer hashes to the spent script's payload.
  EXPECT_FALSE(verify_p2pkh_input(f.tx, 0, f.spent));
}

TEST(Sighash, VerifyFailsOnNonP2pkhScript) {
  Fixture f;
  f.tx.inputs[0].script_sig = sign_p2pkh_input(f.tx, 0, f.spent, f.key);
  Script p2sh = make_p2sh(hash160(to_bytes(std::string("x"))));
  EXPECT_FALSE(verify_p2pkh_input(f.tx, 0, p2sh));
}

TEST(Sighash, VerifyFailsOnMalformedScriptSig) {
  Fixture f;
  Script junk;
  junk.push(to_bytes(std::string("noise")));
  f.tx.inputs[0].script_sig = junk;
  EXPECT_FALSE(verify_p2pkh_input(f.tx, 0, f.spent));
  EXPECT_FALSE(verify_p2pkh_input(f.tx, 5, f.spent));  // bad index: false
}

TEST(Sighash, UncompressedKeySpend) {
  PrivateKey key = PrivateKey::from_seed(to_bytes(std::string("legacy")));
  Script spent = make_p2pkh(hash160(key.pubkey().serialize_uncompressed()));
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("f")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc(2), Script()});
  tx.inputs[0].script_sig =
      sign_p2pkh_input(tx, 0, spent, key, /*compressed=*/false);
  EXPECT_TRUE(verify_p2pkh_input(tx, 0, spent));
}


TEST(Sighash, NoneIgnoresOutputs) {
  Fixture f;
  Hash256 before = signature_hash(f.tx, 0, f.spent, SigHashType::None);
  Transaction changed = f.tx;
  changed.outputs[0].value += 1;
  EXPECT_EQ(signature_hash(changed, 0, f.spent, SigHashType::None), before);
  // But it still commits to the inputs.
  changed = f.tx;
  changed.inputs[0].prevout.index += 1;
  EXPECT_NE(signature_hash(changed, 0, f.spent, SigHashType::None), before);
}

TEST(Sighash, SingleCommitsOnlyToPairedOutput) {
  Fixture f;
  Transaction two = f.tx;
  two.outputs.push_back(TxOut{btc(2), Script()});
  TxIn in2;
  in2.prevout.txid = hash256(to_bytes(std::string("funding2")));
  two.inputs.push_back(in2);

  Hash256 before = signature_hash(two, 1, f.spent, SigHashType::Single);
  // Changing the non-paired output (index 0) does not disturb it...
  Transaction changed = two;
  changed.outputs[0].value += 1;
  EXPECT_EQ(signature_hash(changed, 1, f.spent, SigHashType::Single),
            before);
  // ...changing the paired output (index 1) does.
  changed = two;
  changed.outputs[1].value += 1;
  EXPECT_NE(signature_hash(changed, 1, f.spent, SigHashType::Single),
            before);
}

TEST(Sighash, SingleWithoutMatchingOutputIsTheOneDigest) {
  // The famous consensus quirk: input index beyond the outputs signs
  // the digest 0x01 ‖ 0x00...  (little-endian "1").
  Fixture f;
  Transaction two = f.tx;
  TxIn in2;
  in2.prevout.txid = hash256(to_bytes(std::string("funding2")));
  two.inputs.push_back(in2);  // 2 inputs, 1 output
  Hash256 digest = signature_hash(two, 1, f.spent, SigHashType::Single);
  Hash256 one;
  one.data()[0] = 0x01;
  EXPECT_EQ(digest, one);
}

TEST(Sighash, AnyoneCanPayIgnoresOtherInputs) {
  Fixture f;
  Transaction two = f.tx;
  TxIn in2;
  in2.prevout.txid = hash256(to_bytes(std::string("funding2")));
  two.inputs.push_back(in2);

  std::uint32_t type = static_cast<std::uint32_t>(SigHashType::All) |
                       kSigHashAnyoneCanPay;
  Hash256 before = signature_hash_raw(two, 0, f.spent, type);
  // Dropping or altering the other input changes nothing.
  Transaction changed = two;
  changed.inputs[1].prevout.index = 77;
  EXPECT_EQ(signature_hash_raw(changed, 0, f.spent, type), before);
  changed.inputs.pop_back();
  EXPECT_EQ(signature_hash_raw(changed, 0, f.spent, type), before);
  // Without the modifier they differ.
  EXPECT_NE(signature_hash(two, 0, f.spent, SigHashType::All),
            signature_hash(changed, 0, f.spent, SigHashType::All));
}

TEST(Sighash, HashtypeHelpers) {
  EXPECT_EQ(sighash_base(0x81), SigHashType::All);
  EXPECT_EQ(sighash_base(0x03), SigHashType::Single);
  EXPECT_TRUE(sighash_anyone_can_pay(0x82));
  EXPECT_FALSE(sighash_anyone_can_pay(0x02));
}

}  // namespace
}  // namespace fist
