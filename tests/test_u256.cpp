#include "crypto/u256.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fist {
namespace {

U256 random_u256(Rng& rng) {
  return U256(rng.next(), rng.next(), rng.next(), rng.next());
}

TEST(U256, HexRoundTrip) {
  std::string hex =
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f";
  EXPECT_EQ(U256::from_hex(hex).hex(), hex);
}

TEST(U256, ShortHexLeftPads) {
  EXPECT_EQ(U256::from_hex("ff"), U256(255));
}

TEST(U256, FromHexRejectsBadInput) {
  EXPECT_THROW(U256::from_hex(""), ParseError);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), ParseError);
}

TEST(U256, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_be_bytes(ByteView(v.to_be_bytes())), v);
  }
}

TEST(U256, BitAccess) {
  U256 one(1);
  EXPECT_TRUE(one.bit(0));
  EXPECT_FALSE(one.bit(1));
  U256 high = shl(one, 255);
  EXPECT_TRUE(high.bit(255));
  EXPECT_EQ(high.bit_length(), 256u);
  EXPECT_EQ(one.bit_length(), 1u);
  EXPECT_EQ(U256().bit_length(), 0u);
}

TEST(U256, Comparison) {
  EXPECT_EQ(cmp(U256(5), U256(5)), 0);
  EXPECT_EQ(cmp(U256(4), U256(5)), -1);
  EXPECT_EQ(cmp(U256(6), U256(5)), 1);
  // High limb dominates.
  U256 big(0, 0, 0, 1);
  U256 small(~0ULL, ~0ULL, ~0ULL, 0);
  EXPECT_EQ(cmp(big, small), 1);
}

TEST(U256, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    std::uint64_t carry, borrow;
    U256 sum = add(a, b, carry);
    U256 back = sub(sum, b, borrow);
    // sum - b == a modulo 2^256; borrow mirrors the carry.
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256, AddCarryPropagation) {
  U256 max(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  std::uint64_t carry;
  U256 sum = add(max, U256(1), carry);
  EXPECT_TRUE(sum.is_zero());
  EXPECT_EQ(carry, 1u);
}

TEST(U256, SubBorrow) {
  std::uint64_t borrow;
  U256 r = sub(U256(0), U256(1), borrow);
  EXPECT_EQ(borrow, 1u);
  EXPECT_EQ(r, U256(~0ULL, ~0ULL, ~0ULL, ~0ULL));
}

TEST(U256, MulWideSmallValues) {
  U512 p = mul_wide(U256(7), U256(6));
  EXPECT_EQ(p.w[0], 42u);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(p.w[i], 0u);
}

TEST(U256, MulWideCrossLimb) {
  // (2^64)·(2^64) = 2^128 → limb 2.
  U256 a(0, 1, 0, 0), b(0, 1, 0, 0);
  U512 p = mul_wide(a, b);
  EXPECT_EQ(p.w[2], 1u);
}

TEST(U256, MulWideCommutative) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    U256 a = random_u256(rng), b = random_u256(rng);
    U512 ab = mul_wide(a, b), ba = mul_wide(b, a);
    EXPECT_EQ(ab.w, ba.w);
  }
}

TEST(U256, ShiftInverses) {
  // While the value still fits, (v << n) >> n is the identity.
  U256 small(12345);  // 14 significant bits
  for (unsigned n : {1u, 7u, 63u, 64u, 65u, 130u, 242u}) {
    EXPECT_EQ(shr(shl(small, n), n), small) << "shift " << n;
  }
  // Once bits fall off the top they are gone.
  EXPECT_NE(shr(shl(small, 250), 250), small);
  EXPECT_TRUE(shl(small, 256 - 1).bit(255));
}

TEST(U256, ShiftByZeroIsIdentity) {
  Rng rng(5);
  U256 v = random_u256(rng);
  EXPECT_EQ(shl(v, 0), v);
  EXPECT_EQ(shr(v, 0), v);
}

TEST(U256, DoublingEqualsShift) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    U256 v = random_u256(rng);
    std::uint64_t carry;
    EXPECT_EQ(add(v, v, carry), shl(v, 1));
  }
}

}  // namespace
}  // namespace fist
