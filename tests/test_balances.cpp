#include "analysis/balances.hpp"

#include <gtest/gtest.h>

#include "cluster/heuristic1.hpp"
#include "testutil.hpp"

namespace fist {
namespace {

using test::TestChain;

struct Fixture {
  TestChain chain{kGenesisTime, kDay};
  ChainView view;
  std::unique_ptr<Clustering> clustering;
  std::unique_ptr<ClusterNaming> naming;

  // addr 1 = "Mt. Gox" (exchange), addr 2 = user, addr 3 = user sink.
  Fixture() {
    auto c_user = chain.coinbase(2, btc(50));
    chain.next_block();
    // User pays 30 to the exchange, keeps 19 as change to a new addr 4;
    // pays 10 of something else to sink 3 later.
    auto refs = chain.spend_all({c_user}, {{1, btc(30)}, {4, btc(19)}});
    chain.next_block();
    chain.spend({refs[1]}, {{3, btc(10)}, {5, btc(8)}});
    chain.next_block();
    view = chain.view();

    UnionFind uf = heuristic1(view);
    clustering = std::make_unique<Clustering>(
        Clustering::from_union_find(uf));
    TagStore tags;
    tags.add(*view.addresses().find(test::addr(1)),
             Tag{"Mt. Gox", Category::BankExchange, TagSource::Observed});
    naming = std::make_unique<ClusterNaming>(clustering->assignment(),
                                             clustering->sizes(), tags);
  }
};

TEST(Balances, TracksNamedCategoryBalance) {
  Fixture f;
  BalanceSeries series =
      category_balances(f.view, *f.clustering, *f.naming, kDay);
  ASSERT_FALSE(series.times.empty());

  // Find the exchanges track; its final balance must equal the 30 BTC
  // the exchange received and never spent.
  const CategoryTrack* exchanges = nullptr;
  for (const CategoryTrack& t : series.tracks)
    if (t.category == Category::BankExchange) exchanges = &t;
  ASSERT_NE(exchanges, nullptr);
  EXPECT_EQ(exchanges->balance.back(), btc(30));
}

TEST(Balances, PercentageUsesActiveSupply) {
  Fixture f;
  BalanceSeries series =
      category_balances(f.view, *f.clustering, *f.naming, kDay);
  // Active supply excludes sinks (addresses that never spend).
  // Spenders: addr 2 (spent coinbase) and addr 4 (spent change).
  // Their remaining balances: addr 2: 0, addr 4: 0 — everything now
  // sits on sinks (1, 3, 5). Active supply at the end is therefore 0.
  EXPECT_EQ(series.active_supply.back(), 0);
  // Mid-series (after block 1), addr 4 holds 19 BTC and is a future
  // spender → active supply was positive then.
  bool had_active = false;
  for (Amount a : series.active_supply) had_active |= a > 0;
  EXPECT_TRUE(had_active);
}

TEST(Balances, TotalSupplyTracksMinting) {
  Fixture f;
  BalanceSeries series =
      category_balances(f.view, *f.clustering, *f.naming, kDay);
  // 50 BTC coinbase plus the 1-satoshi dummy coinbase of the final
  // (otherwise empty) block.
  EXPECT_EQ(series.total_supply.back(), btc(50) + 1);
}

TEST(Balances, SnapshotCadence) {
  Fixture f;
  BalanceSeries daily =
      category_balances(f.view, *f.clustering, *f.naming, kDay);
  BalanceSeries weekly =
      category_balances(f.view, *f.clustering, *f.naming, kWeek);
  EXPECT_GE(daily.times.size(), weekly.times.size());
  for (std::size_t i = 1; i < daily.times.size(); ++i)
    EXPECT_EQ(daily.times[i] - daily.times[i - 1], kDay);
}

TEST(Balances, EmptyViewYieldsEmptySeries) {
  MemoryBlockStore store;
  ChainView view = ChainView::build(store);
  UnionFind uf(0);
  Clustering clustering = Clustering::from_union_find(uf);
  TagStore tags;
  ClusterNaming naming(clustering.assignment(), clustering.sizes(), tags);
  BalanceSeries series = category_balances(view, clustering, naming, kDay);
  EXPECT_TRUE(series.times.empty());
}

}  // namespace
}  // namespace fist
