#include "tag/naming.hpp"

#include <gtest/gtest.h>

namespace fist {
namespace {

Tag tag(const std::string& name, Category c = Category::BankExchange) {
  return Tag{name, c, TagSource::Observed};
}

struct Fixture {
  // 6 addresses in 3 clusters: {0,1,2}=0, {3,4}=1, {5}=2.
  std::vector<ClusterId> cluster_of{0, 0, 0, 1, 1, 2};
  std::vector<std::uint32_t> sizes{3, 2, 1};
};

TEST(Naming, PropagatesTagToWholeCluster) {
  Fixture f;
  TagStore tags;
  tags.add(0, tag("Mt. Gox"));
  ClusterNaming naming(f.cluster_of, f.sizes, tags);

  const ClusterName* name = naming.name_of(0);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->service, "Mt. Gox");
  EXPECT_EQ(name->category, Category::BankExchange);
  EXPECT_EQ(naming.name_of(1), nullptr);
  EXPECT_EQ(naming.named_addresses(), 3u);  // whole cluster counted
}

TEST(Naming, AmplificationRatio) {
  Fixture f;
  TagStore tags;
  tags.add(0, tag("Mt. Gox"));
  ClusterNaming naming(f.cluster_of, f.sizes, tags);
  EXPECT_DOUBLE_EQ(naming.amplification(1), 3.0);
  EXPECT_DOUBLE_EQ(naming.amplification(0), 0.0);
}

TEST(Naming, MajorityVoteWins) {
  Fixture f;
  TagStore tags;
  tags.add(0, tag("Mt. Gox"));
  tags.add(1, tag("Mt. Gox"));
  tags.add(2, tag("Bitstamp"));
  ClusterNaming naming(f.cluster_of, f.sizes, tags);
  const ClusterName* name = naming.name_of(0);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->service, "Mt. Gox");
  EXPECT_EQ(name->tag_votes, 2u);
  EXPECT_EQ(name->distinct_services, 2u);
}

TEST(Naming, ContestedClustersReported) {
  Fixture f;
  TagStore tags;
  tags.add(0, tag("Mt. Gox"));
  tags.add(1, tag("Instawallet", Category::Wallet));
  tags.add(3, tag("Bitstamp"));
  ClusterNaming naming(f.cluster_of, f.sizes, tags);
  ASSERT_EQ(naming.contested().size(), 1u);
  EXPECT_EQ(naming.contested()[0], 0u);
}

TEST(Naming, ClustersForServiceCountsSpread) {
  // Mt. Gox tags landing on two clusters (the "20 clusters" effect).
  Fixture f;
  TagStore tags;
  tags.add(0, tag("Mt. Gox"));
  tags.add(3, tag("Mt. Gox"));
  tags.add(5, tag("Bitstamp"));
  ClusterNaming naming(f.cluster_of, f.sizes, tags);
  EXPECT_EQ(naming.clusters_for_service("Mt. Gox"), 2u);
  EXPECT_EQ(naming.clusters_for_service("Bitstamp"), 1u);
  EXPECT_EQ(naming.clusters_for_service("Nobody"), 0u);
}

TEST(Naming, TieBreaksDeterministically) {
  Fixture f;
  TagStore tags;
  tags.add(0, tag("Zeta"));
  tags.add(1, tag("Alpha"));
  ClusterNaming naming(f.cluster_of, f.sizes, tags);
  // Equal votes: lexicographically... std::map iteration gives Alpha
  // first; 1-vote each → first maximum wins → "Alpha".
  EXPECT_EQ(naming.name_of(0)->service, "Alpha");
}

TEST(Naming, IgnoresOutOfRangeAddressIds) {
  Fixture f;
  TagStore tags;
  tags.add(99, tag("Ghost"));
  ClusterNaming naming(f.cluster_of, f.sizes, tags);
  EXPECT_TRUE(naming.names().empty());
}

}  // namespace
}  // namespace fist
