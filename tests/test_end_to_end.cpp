// End-to-end integration: a full simulated economy pushed through the
// complete forensic pipeline, checking the paper's qualitative results
// hold — the FP-rate ladder shrinks monotonically, clustering quality
// beats H1 alone, peeling chains reconstruct, thefts track to
// exchanges — all scored against simulator ground truth.
#include <gtest/gtest.h>

#include "analysis/peeling.hpp"
#include "analysis/theft.hpp"
#include "cluster/metrics.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

namespace fist {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static sim::World& world() {
    static sim::World* w = [] {
      sim::WorldConfig cfg;
      cfg.days = 160;
      cfg.users = 250;
      cfg.blocks_per_day = 10;
      cfg.seed = 7;
      auto* world = new sim::World(cfg);
      world->run();
      return world;
    }();
    return *w;
  }

  static ForensicPipeline& pipeline() {
    static ForensicPipeline* p = [] {
      auto* pipe = new ForensicPipeline(world().store(), world().tag_feed());
      pipe->run();
      return pipe;
    }();
    return *p;
  }

  // True owner ids per AddrId (for pairwise scoring).
  static std::vector<std::uint32_t> truth_owners() {
    const ChainView& view = pipeline().view();
    std::vector<std::uint32_t> owners(view.address_count(), kUnknownOwner);
    for (AddrId a = 0; a < view.address_count(); ++a) {
      sim::ActorId owner =
          world().truth().owner(view.addresses().lookup(a));
      if (owner != sim::kNoActor) owners[a] = owner;
    }
    return owners;
  }
};

TEST_F(EndToEnd, FalsePositiveLadderShrinksMonotonically) {
  const ChainView& view = pipeline().view();
  const auto& dice = pipeline().dice_addresses();

  auto rate = [&](const H2Options& o) {
    H2Result r = apply_heuristic2(view, o, dice);
    return estimate_h2_false_positives(view, r, o, dice).rate();
  };

  H2Options naive;
  double r_naive = rate(naive);
  H2Options exempt = naive;
  exempt.exempt_dice_rebounds = true;
  double r_dice = rate(exempt);
  H2Options day = exempt;
  day.wait_window = kDay;
  double r_day = rate(day);
  H2Options week = exempt;
  week.wait_window = kWeek;
  double r_week = rate(week);

  // The paper's ladder: 13% → 1% → 0.28% → 0.17%. We require the same
  // ordering and magnitudes in the same ballpark.
  EXPECT_GT(r_naive, 0.05);
  EXPECT_LT(r_dice, r_naive / 3);
  EXPECT_LE(r_day, r_dice);
  EXPECT_LE(r_week, r_day);
  EXPECT_LT(r_week, 0.02);
}

TEST_F(EndToEnd, RefinedClusteringImprovesPrecisionOverNaive) {
  const ChainView& view = pipeline().view();
  const auto& dice = pipeline().dice_addresses();
  std::vector<std::uint32_t> owners = truth_owners();

  // Naive H2 (no guards) clustering.
  UnionFind uf_naive(view.address_count());
  apply_heuristic1(view, uf_naive);
  H2Options naive;
  H2Result r_naive = apply_heuristic2(view, naive, dice);
  unite_h2_labels(view, r_naive, uf_naive);
  Clustering c_naive = Clustering::from_union_find(uf_naive);
  PairwiseScores naive_scores =
      pairwise_scores(c_naive.assignment(), owners);

  PairwiseScores refined_scores =
      pairwise_scores(pipeline().clustering().assignment(), owners);

  EXPECT_GE(refined_scores.precision, naive_scores.precision);
  EXPECT_GT(refined_scores.precision, 0.9);  // refined H2 is "safe"
}

TEST_F(EndToEnd, H2RecallBeatsH1Alone) {
  std::vector<std::uint32_t> owners = truth_owners();
  PairwiseScores h1 =
      pairwise_scores(pipeline().h1_clustering().assignment(), owners);
  PairwiseScores h2 =
      pairwise_scores(pipeline().clustering().assignment(), owners);
  EXPECT_GT(h2.recall, h1.recall);  // the change heuristic adds links
}

TEST_F(EndToEnd, HoardChainsReconstruct) {
  const sim::HoardRecord* hoard = world().hoard();
  ASSERT_NE(hoard, nullptr);
  PeelFollower follower(pipeline().view(), pipeline().h2(),
                        pipeline().clustering(), pipeline().naming());

  int total_hops = 0, total_named = 0;
  for (int c = 0; c < 3; ++c) {
    TxIndex t = pipeline().view().find_tx(hoard->chain_starts[c].txid);
    ASSERT_NE(t, kNoTx);
    PeelChainResult res =
        follower.follow(t, hoard->chain_starts[c].index, FollowOptions{120});
    total_hops += res.hops;
    for (const Peel& p : res.peels)
      if (!p.service.empty()) ++total_named;
  }
  // The paper followed 100 hops per chain; require most of that.
  EXPECT_GT(total_hops, 240);
  EXPECT_GT(total_named, 60);
}

TEST_F(EndToEnd, TheftsTrackToExchangesWhenTheyCashOut) {
  for (const sim::TheftRecord& rec : world().thefts()) {
    std::vector<TxIndex> txs;
    for (const Hash256& h : rec.theft_txids) {
      TxIndex t = pipeline().view().find_tx(h);
      ASSERT_NE(t, kNoTx);
      txs.push_back(t);
    }
    std::vector<AddrId> thief;
    for (const Address& a : rec.thief_addresses)
      if (auto id = pipeline().view().addresses().find(a))
        thief.push_back(*id);

    TheftTrace trace =
        track_theft(pipeline().view(), pipeline().h2(),
                    pipeline().clustering(), pipeline().naming(), txs, thief);

    if (rec.scenario.to_exchange) {
      EXPECT_GT(trace.to_exchanges, 0) << rec.scenario.label;
      EXPECT_FALSE(trace.exchange_deposits.empty()) << rec.scenario.label;
    } else {
      EXPECT_EQ(trace.to_exchanges, 0) << rec.scenario.label;
    }
    // Movement letters must all come from the paper's grammar.
    for (char c : trace.movement)
      EXPECT_TRUE(c == 'A' || c == 'P' || c == 'S' || c == 'F' || c == '/');
  }
}

TEST_F(EndToEnd, TrojanDormancyVisible) {
  for (const sim::TheftRecord& rec : world().thefts()) {
    if (rec.scenario.label != "Trojan") continue;
    std::vector<TxIndex> txs;
    for (const Hash256& h : rec.theft_txids)
      txs.push_back(pipeline().view().find_tx(h));
    std::vector<AddrId> thief;
    for (const Address& a : rec.thief_addresses)
      if (auto id = pipeline().view().addresses().find(a))
        thief.push_back(*id);
    TheftTrace trace =
        track_theft(pipeline().view(), pipeline().h2(),
                    pipeline().clustering(), pipeline().naming(), txs, thief);
    // Most of the loot never moved (2857 of 3257 in the paper).
    EXPECT_GT(trace.dormant, rec.stolen / 2);
  }
}

TEST_F(EndToEnd, SuperClusterAppearsWithoutGuardsOnly) {
  const ChainView& view = pipeline().view();
  const auto& dice = pipeline().dice_addresses();

  // Addresses living in contested (multi-service) clusters. Cluster
  // *counts* are not monotone in collapse damage — the naive
  // heuristic's supercluster folds many services together yet counts
  // as a single contested cluster — so measure trapped addresses.
  auto contested_addresses = [&](const H2Options& o) {
    UnionFind uf(view.address_count());
    apply_heuristic1(view, uf);
    H2Result r = apply_heuristic2(view, o, dice);
    unite_h2_labels(view, r, uf);
    Clustering c = Clustering::from_union_find(uf);
    ClusterNaming naming(c.assignment(), c.sizes(), pipeline().tags());
    std::uint64_t trapped = 0;
    for (ClusterId id : naming.contested()) trapped += c.sizes()[id];
    return trapped;
  };

  H2Options naive;
  H2Options refined = refined_h2_options();
  // Refined guards must not create more cross-service collapses than
  // the naive heuristic.
  EXPECT_LE(contested_addresses(refined), contested_addresses(naive));
}

}  // namespace
}  // namespace fist
