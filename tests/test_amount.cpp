#include "util/amount.hpp"

#include <gtest/gtest.h>

namespace fist {
namespace {

TEST(Amount, Constants) {
  EXPECT_EQ(kCoin, 100'000'000);
  EXPECT_EQ(kMaxMoney, 2'100'000'000'000'000LL);
}

TEST(Amount, MoneyRange) {
  EXPECT_TRUE(money_range(0));
  EXPECT_TRUE(money_range(kMaxMoney));
  EXPECT_FALSE(money_range(-1));
  EXPECT_FALSE(money_range(kMaxMoney + 1));
}

TEST(Amount, BtcConversion) {
  EXPECT_EQ(btc(1), kCoin);
  EXPECT_EQ(btc(21'000'000), kMaxMoney);
  EXPECT_THROW(btc(21'000'001), UsageError);
  EXPECT_THROW(btc(-1), UsageError);
}

TEST(Amount, BtcFraction) {
  EXPECT_EQ(btc_fraction(0.5), 50'000'000);
  EXPECT_EQ(btc_fraction(0.00000001), 1);
  EXPECT_EQ(btc_fraction(0.0), 0);
  EXPECT_THROW(btc_fraction(-0.5), UsageError);
  EXPECT_THROW(btc_fraction(22'000'000.0), UsageError);
}

TEST(Amount, AddMoneyChecked) {
  EXPECT_EQ(add_money(btc(1), btc(2)), btc(3));
  EXPECT_THROW(add_money(kMaxMoney, 1), UsageError);
  EXPECT_THROW(add_money(-1, 0), UsageError);
}

TEST(Amount, FormatTrimsZeros) {
  EXPECT_EQ(format_btc(btc(5)), "5.0");
  EXPECT_EQ(format_btc(kCoin / 2), "0.5");
  EXPECT_EQ(format_btc(1), "0.00000001");
}

TEST(Amount, FormatFixedKeepsWidth) {
  EXPECT_EQ(format_btc(btc(5), /*fixed=*/true), "5.00000000");
}

TEST(Amount, FormatNegative) {
  EXPECT_EQ(format_btc(-kCoin / 4), "-0.25");
}

TEST(Amount, FormatWholeRounds) {
  EXPECT_EQ(format_btc_whole(btc(492)), "492");
  EXPECT_EQ(format_btc_whole(btc(492) + kCoin / 2), "493");  // rounds up
  EXPECT_EQ(format_btc_whole(btc(492) + kCoin / 3), "492");
}

}  // namespace
}  // namespace fist
