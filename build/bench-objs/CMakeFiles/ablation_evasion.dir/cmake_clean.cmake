file(REMOVE_RECURSE
  "../bench/ablation_evasion"
  "../bench/ablation_evasion.pdb"
  "CMakeFiles/ablation_evasion.dir/ablation_evasion.cpp.o"
  "CMakeFiles/ablation_evasion.dir/ablation_evasion.cpp.o.d"
  "CMakeFiles/ablation_evasion.dir/common.cpp.o"
  "CMakeFiles/ablation_evasion.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
