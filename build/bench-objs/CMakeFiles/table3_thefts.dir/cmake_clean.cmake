file(REMOVE_RECURSE
  "../bench/table3_thefts"
  "../bench/table3_thefts.pdb"
  "CMakeFiles/table3_thefts.dir/common.cpp.o"
  "CMakeFiles/table3_thefts.dir/common.cpp.o.d"
  "CMakeFiles/table3_thefts.dir/table3_thefts.cpp.o"
  "CMakeFiles/table3_thefts.dir/table3_thefts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_thefts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
