# Empty compiler generated dependencies file for table3_thefts.
# This may be replaced when dependencies are built.
