# Empty compiler generated dependencies file for table_clusters.
# This may be replaced when dependencies are built.
