file(REMOVE_RECURSE
  "../bench/table_clusters"
  "../bench/table_clusters.pdb"
  "CMakeFiles/table_clusters.dir/common.cpp.o"
  "CMakeFiles/table_clusters.dir/common.cpp.o.d"
  "CMakeFiles/table_clusters.dir/table_clusters.cpp.o"
  "CMakeFiles/table_clusters.dir/table_clusters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
