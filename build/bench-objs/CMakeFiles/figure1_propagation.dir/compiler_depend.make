# Empty compiler generated dependencies file for figure1_propagation.
# This may be replaced when dependencies are built.
