file(REMOVE_RECURSE
  "../bench/figure1_propagation"
  "../bench/figure1_propagation.pdb"
  "CMakeFiles/figure1_propagation.dir/common.cpp.o"
  "CMakeFiles/figure1_propagation.dir/common.cpp.o.d"
  "CMakeFiles/figure1_propagation.dir/figure1_propagation.cpp.o"
  "CMakeFiles/figure1_propagation.dir/figure1_propagation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
