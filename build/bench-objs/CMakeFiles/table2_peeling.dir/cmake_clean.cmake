file(REMOVE_RECURSE
  "../bench/table2_peeling"
  "../bench/table2_peeling.pdb"
  "CMakeFiles/table2_peeling.dir/common.cpp.o"
  "CMakeFiles/table2_peeling.dir/common.cpp.o.d"
  "CMakeFiles/table2_peeling.dir/table2_peeling.cpp.o"
  "CMakeFiles/table2_peeling.dir/table2_peeling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_peeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
