# Empty dependencies file for table2_peeling.
# This may be replaced when dependencies are built.
