file(REMOVE_RECURSE
  "../bench/figure2_balances"
  "../bench/figure2_balances.pdb"
  "CMakeFiles/figure2_balances.dir/common.cpp.o"
  "CMakeFiles/figure2_balances.dir/common.cpp.o.d"
  "CMakeFiles/figure2_balances.dir/figure2_balances.cpp.o"
  "CMakeFiles/figure2_balances.dir/figure2_balances.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_balances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
