# Empty dependencies file for figure2_balances.
# This may be replaced when dependencies are built.
