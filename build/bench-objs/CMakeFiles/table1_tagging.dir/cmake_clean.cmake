file(REMOVE_RECURSE
  "../bench/table1_tagging"
  "../bench/table1_tagging.pdb"
  "CMakeFiles/table1_tagging.dir/common.cpp.o"
  "CMakeFiles/table1_tagging.dir/common.cpp.o.d"
  "CMakeFiles/table1_tagging.dir/table1_tagging.cpp.o"
  "CMakeFiles/table1_tagging.dir/table1_tagging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
