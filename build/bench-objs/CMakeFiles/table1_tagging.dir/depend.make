# Empty dependencies file for table1_tagging.
# This may be replaced when dependencies are built.
