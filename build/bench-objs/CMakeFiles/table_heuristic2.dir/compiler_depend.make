# Empty compiler generated dependencies file for table_heuristic2.
# This may be replaced when dependencies are built.
