file(REMOVE_RECURSE
  "../bench/table_heuristic2"
  "../bench/table_heuristic2.pdb"
  "CMakeFiles/table_heuristic2.dir/common.cpp.o"
  "CMakeFiles/table_heuristic2.dir/common.cpp.o.d"
  "CMakeFiles/table_heuristic2.dir/table_heuristic2.cpp.o"
  "CMakeFiles/table_heuristic2.dir/table_heuristic2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_heuristic2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
