
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_addrbook.cpp" "tests/CMakeFiles/fist_tests.dir/test_addrbook.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_addrbook.cpp.o.d"
  "/root/repo/tests/test_address.cpp" "tests/CMakeFiles/fist_tests.dir/test_address.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_address.cpp.o.d"
  "/root/repo/tests/test_amount.cpp" "tests/CMakeFiles/fist_tests.dir/test_amount.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_amount.cpp.o.d"
  "/root/repo/tests/test_balances.cpp" "tests/CMakeFiles/fist_tests.dir/test_balances.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_balances.cpp.o.d"
  "/root/repo/tests/test_base58.cpp" "tests/CMakeFiles/fist_tests.dir/test_base58.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_base58.cpp.o.d"
  "/root/repo/tests/test_block.cpp" "tests/CMakeFiles/fist_tests.dir/test_block.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_block.cpp.o.d"
  "/root/repo/tests/test_blockstore.cpp" "tests/CMakeFiles/fist_tests.dir/test_blockstore.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_blockstore.cpp.o.d"
  "/root/repo/tests/test_category.cpp" "tests/CMakeFiles/fist_tests.dir/test_category.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_category.cpp.o.d"
  "/root/repo/tests/test_chainstate.cpp" "tests/CMakeFiles/fist_tests.dir/test_chainstate.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_chainstate.cpp.o.d"
  "/root/repo/tests/test_clustering.cpp" "tests/CMakeFiles/fist_tests.dir/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_clustering.cpp.o.d"
  "/root/repo/tests/test_ecdsa.cpp" "tests/CMakeFiles/fist_tests.dir/test_ecdsa.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_ecdsa.cpp.o.d"
  "/root/repo/tests/test_end_to_end.cpp" "tests/CMakeFiles/fist_tests.dir/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_end_to_end.cpp.o.d"
  "/root/repo/tests/test_eventloop.cpp" "tests/CMakeFiles/fist_tests.dir/test_eventloop.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_eventloop.cpp.o.d"
  "/root/repo/tests/test_explorer.cpp" "tests/CMakeFiles/fist_tests.dir/test_explorer.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_explorer.cpp.o.d"
  "/root/repo/tests/test_export.cpp" "tests/CMakeFiles/fist_tests.dir/test_export.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_export.cpp.o.d"
  "/root/repo/tests/test_feedio.cpp" "tests/CMakeFiles/fist_tests.dir/test_feedio.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_feedio.cpp.o.d"
  "/root/repo/tests/test_flows.cpp" "tests/CMakeFiles/fist_tests.dir/test_flows.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_flows.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/fist_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/fist_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_hash.cpp" "tests/CMakeFiles/fist_tests.dir/test_hash.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_hash.cpp.o.d"
  "/root/repo/tests/test_heuristic1.cpp" "tests/CMakeFiles/fist_tests.dir/test_heuristic1.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_heuristic1.cpp.o.d"
  "/root/repo/tests/test_heuristic2.cpp" "tests/CMakeFiles/fist_tests.dir/test_heuristic2.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_heuristic2.cpp.o.d"
  "/root/repo/tests/test_hex.cpp" "tests/CMakeFiles/fist_tests.dir/test_hex.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_hex.cpp.o.d"
  "/root/repo/tests/test_interpreter.cpp" "tests/CMakeFiles/fist_tests.dir/test_interpreter.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_interpreter.cpp.o.d"
  "/root/repo/tests/test_keyfactory.cpp" "tests/CMakeFiles/fist_tests.dir/test_keyfactory.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_keyfactory.cpp.o.d"
  "/root/repo/tests/test_merkle.cpp" "tests/CMakeFiles/fist_tests.dir/test_merkle.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_merkle.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/fist_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_naming.cpp" "tests/CMakeFiles/fist_tests.dir/test_naming.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_naming.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/fist_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/fist_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_peeling.cpp" "tests/CMakeFiles/fist_tests.dir/test_peeling.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_peeling.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/fist_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pow.cpp" "tests/CMakeFiles/fist_tests.dir/test_pow.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_pow.cpp.o.d"
  "/root/repo/tests/test_ripemd160.cpp" "tests/CMakeFiles/fist_tests.dir/test_ripemd160.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_ripemd160.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/fist_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scenarios.cpp" "tests/CMakeFiles/fist_tests.dir/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_scenarios.cpp.o.d"
  "/root/repo/tests/test_script.cpp" "tests/CMakeFiles/fist_tests.dir/test_script.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_script.cpp.o.d"
  "/root/repo/tests/test_secp256k1.cpp" "tests/CMakeFiles/fist_tests.dir/test_secp256k1.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_secp256k1.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/fist_tests.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_services.cpp" "tests/CMakeFiles/fist_tests.dir/test_services.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_services.cpp.o.d"
  "/root/repo/tests/test_sha256.cpp" "tests/CMakeFiles/fist_tests.dir/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_sha256.cpp.o.d"
  "/root/repo/tests/test_sighash.cpp" "tests/CMakeFiles/fist_tests.dir/test_sighash.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_sighash.cpp.o.d"
  "/root/repo/tests/test_standard.cpp" "tests/CMakeFiles/fist_tests.dir/test_standard.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_standard.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/fist_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tagstore.cpp" "tests/CMakeFiles/fist_tests.dir/test_tagstore.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_tagstore.cpp.o.d"
  "/root/repo/tests/test_theft.cpp" "tests/CMakeFiles/fist_tests.dir/test_theft.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_theft.cpp.o.d"
  "/root/repo/tests/test_timeutil.cpp" "tests/CMakeFiles/fist_tests.dir/test_timeutil.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_timeutil.cpp.o.d"
  "/root/repo/tests/test_transaction.cpp" "tests/CMakeFiles/fist_tests.dir/test_transaction.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_transaction.cpp.o.d"
  "/root/repo/tests/test_u256.cpp" "tests/CMakeFiles/fist_tests.dir/test_u256.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_u256.cpp.o.d"
  "/root/repo/tests/test_unionfind.cpp" "tests/CMakeFiles/fist_tests.dir/test_unionfind.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_unionfind.cpp.o.d"
  "/root/repo/tests/test_utxo.cpp" "tests/CMakeFiles/fist_tests.dir/test_utxo.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_utxo.cpp.o.d"
  "/root/repo/tests/test_view.cpp" "tests/CMakeFiles/fist_tests.dir/test_view.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_view.cpp.o.d"
  "/root/repo/tests/test_wallet.cpp" "tests/CMakeFiles/fist_tests.dir/test_wallet.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_wallet.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/fist_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_wire.cpp.o.d"
  "/root/repo/tests/test_world.cpp" "tests/CMakeFiles/fist_tests.dir/test_world.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/test_world.cpp.o.d"
  "/root/repo/tests/testutil.cpp" "tests/CMakeFiles/fist_tests.dir/testutil.cpp.o" "gcc" "tests/CMakeFiles/fist_tests.dir/testutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fist_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fist_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/fist_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/fist_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/fist_script.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/fist_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
