# Empty compiler generated dependencies file for fist_tests.
# This may be replaced when dependencies are built.
