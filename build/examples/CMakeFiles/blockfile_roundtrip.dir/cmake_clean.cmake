file(REMOVE_RECURSE
  "CMakeFiles/blockfile_roundtrip.dir/blockfile_roundtrip.cpp.o"
  "CMakeFiles/blockfile_roundtrip.dir/blockfile_roundtrip.cpp.o.d"
  "blockfile_roundtrip"
  "blockfile_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockfile_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
