# Empty compiler generated dependencies file for blockfile_roundtrip.
# This may be replaced when dependencies are built.
