file(REMOVE_RECURSE
  "CMakeFiles/investigate_theft.dir/investigate_theft.cpp.o"
  "CMakeFiles/investigate_theft.dir/investigate_theft.cpp.o.d"
  "investigate_theft"
  "investigate_theft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/investigate_theft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
