
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/investigate_theft.cpp" "examples/CMakeFiles/investigate_theft.dir/investigate_theft.cpp.o" "gcc" "examples/CMakeFiles/investigate_theft.dir/investigate_theft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fist_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fist_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fist_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/fist_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/fist_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/fist_script.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/fist_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
