# Empty dependencies file for investigate_theft.
# This may be replaced when dependencies are built.
