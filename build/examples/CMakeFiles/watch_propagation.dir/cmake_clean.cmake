file(REMOVE_RECURSE
  "CMakeFiles/watch_propagation.dir/watch_propagation.cpp.o"
  "CMakeFiles/watch_propagation.dir/watch_propagation.cpp.o.d"
  "watch_propagation"
  "watch_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watch_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
