# Empty compiler generated dependencies file for watch_propagation.
# This may be replaced when dependencies are built.
