file(REMOVE_RECURSE
  "CMakeFiles/trace_silkroad.dir/trace_silkroad.cpp.o"
  "CMakeFiles/trace_silkroad.dir/trace_silkroad.cpp.o.d"
  "trace_silkroad"
  "trace_silkroad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_silkroad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
