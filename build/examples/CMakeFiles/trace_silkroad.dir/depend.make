# Empty dependencies file for trace_silkroad.
# This may be replaced when dependencies are built.
