# Empty compiler generated dependencies file for fist_chain.
# This may be replaced when dependencies are built.
