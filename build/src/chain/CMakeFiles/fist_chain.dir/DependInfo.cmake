
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/addrbook.cpp" "src/chain/CMakeFiles/fist_chain.dir/addrbook.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/addrbook.cpp.o.d"
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/fist_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/blockstore.cpp" "src/chain/CMakeFiles/fist_chain.dir/blockstore.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/blockstore.cpp.o.d"
  "/root/repo/src/chain/chainstate.cpp" "src/chain/CMakeFiles/fist_chain.dir/chainstate.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/chainstate.cpp.o.d"
  "/root/repo/src/chain/interpreter.cpp" "src/chain/CMakeFiles/fist_chain.dir/interpreter.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/interpreter.cpp.o.d"
  "/root/repo/src/chain/pow.cpp" "src/chain/CMakeFiles/fist_chain.dir/pow.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/pow.cpp.o.d"
  "/root/repo/src/chain/sighash.cpp" "src/chain/CMakeFiles/fist_chain.dir/sighash.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/sighash.cpp.o.d"
  "/root/repo/src/chain/transaction.cpp" "src/chain/CMakeFiles/fist_chain.dir/transaction.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/transaction.cpp.o.d"
  "/root/repo/src/chain/utxo.cpp" "src/chain/CMakeFiles/fist_chain.dir/utxo.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/utxo.cpp.o.d"
  "/root/repo/src/chain/view.cpp" "src/chain/CMakeFiles/fist_chain.dir/view.cpp.o" "gcc" "src/chain/CMakeFiles/fist_chain.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/fist_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/fist_script.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
