file(REMOVE_RECURSE
  "CMakeFiles/fist_chain.dir/addrbook.cpp.o"
  "CMakeFiles/fist_chain.dir/addrbook.cpp.o.d"
  "CMakeFiles/fist_chain.dir/block.cpp.o"
  "CMakeFiles/fist_chain.dir/block.cpp.o.d"
  "CMakeFiles/fist_chain.dir/blockstore.cpp.o"
  "CMakeFiles/fist_chain.dir/blockstore.cpp.o.d"
  "CMakeFiles/fist_chain.dir/chainstate.cpp.o"
  "CMakeFiles/fist_chain.dir/chainstate.cpp.o.d"
  "CMakeFiles/fist_chain.dir/interpreter.cpp.o"
  "CMakeFiles/fist_chain.dir/interpreter.cpp.o.d"
  "CMakeFiles/fist_chain.dir/pow.cpp.o"
  "CMakeFiles/fist_chain.dir/pow.cpp.o.d"
  "CMakeFiles/fist_chain.dir/sighash.cpp.o"
  "CMakeFiles/fist_chain.dir/sighash.cpp.o.d"
  "CMakeFiles/fist_chain.dir/transaction.cpp.o"
  "CMakeFiles/fist_chain.dir/transaction.cpp.o.d"
  "CMakeFiles/fist_chain.dir/utxo.cpp.o"
  "CMakeFiles/fist_chain.dir/utxo.cpp.o.d"
  "CMakeFiles/fist_chain.dir/view.cpp.o"
  "CMakeFiles/fist_chain.dir/view.cpp.o.d"
  "libfist_chain.a"
  "libfist_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
