file(REMOVE_RECURSE
  "libfist_chain.a"
)
