# Empty compiler generated dependencies file for fist_tag.
# This may be replaced when dependencies are built.
