file(REMOVE_RECURSE
  "CMakeFiles/fist_tag.dir/category.cpp.o"
  "CMakeFiles/fist_tag.dir/category.cpp.o.d"
  "CMakeFiles/fist_tag.dir/feedio.cpp.o"
  "CMakeFiles/fist_tag.dir/feedio.cpp.o.d"
  "CMakeFiles/fist_tag.dir/naming.cpp.o"
  "CMakeFiles/fist_tag.dir/naming.cpp.o.d"
  "CMakeFiles/fist_tag.dir/tagstore.cpp.o"
  "CMakeFiles/fist_tag.dir/tagstore.cpp.o.d"
  "libfist_tag.a"
  "libfist_tag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
