file(REMOVE_RECURSE
  "libfist_tag.a"
)
