file(REMOVE_RECURSE
  "libfist_encoding.a"
)
