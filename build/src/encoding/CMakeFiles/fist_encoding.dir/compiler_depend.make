# Empty compiler generated dependencies file for fist_encoding.
# This may be replaced when dependencies are built.
