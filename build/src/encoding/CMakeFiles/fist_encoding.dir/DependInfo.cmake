
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/address.cpp" "src/encoding/CMakeFiles/fist_encoding.dir/address.cpp.o" "gcc" "src/encoding/CMakeFiles/fist_encoding.dir/address.cpp.o.d"
  "/root/repo/src/encoding/base58.cpp" "src/encoding/CMakeFiles/fist_encoding.dir/base58.cpp.o" "gcc" "src/encoding/CMakeFiles/fist_encoding.dir/base58.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
