file(REMOVE_RECURSE
  "CMakeFiles/fist_encoding.dir/address.cpp.o"
  "CMakeFiles/fist_encoding.dir/address.cpp.o.d"
  "CMakeFiles/fist_encoding.dir/base58.cpp.o"
  "CMakeFiles/fist_encoding.dir/base58.cpp.o.d"
  "libfist_encoding.a"
  "libfist_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
