# Empty dependencies file for fist_core.
# This may be replaced when dependencies are built.
