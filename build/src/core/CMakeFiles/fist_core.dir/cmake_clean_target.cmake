file(REMOVE_RECURSE
  "libfist_core.a"
)
