file(REMOVE_RECURSE
  "CMakeFiles/fist_core.dir/pipeline.cpp.o"
  "CMakeFiles/fist_core.dir/pipeline.cpp.o.d"
  "libfist_core.a"
  "libfist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
