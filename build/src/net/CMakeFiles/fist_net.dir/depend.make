# Empty dependencies file for fist_net.
# This may be replaced when dependencies are built.
