file(REMOVE_RECURSE
  "CMakeFiles/fist_net.dir/eventloop.cpp.o"
  "CMakeFiles/fist_net.dir/eventloop.cpp.o.d"
  "CMakeFiles/fist_net.dir/network.cpp.o"
  "CMakeFiles/fist_net.dir/network.cpp.o.d"
  "CMakeFiles/fist_net.dir/node.cpp.o"
  "CMakeFiles/fist_net.dir/node.cpp.o.d"
  "CMakeFiles/fist_net.dir/wire.cpp.o"
  "CMakeFiles/fist_net.dir/wire.cpp.o.d"
  "libfist_net.a"
  "libfist_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
