file(REMOVE_RECURSE
  "libfist_net.a"
)
