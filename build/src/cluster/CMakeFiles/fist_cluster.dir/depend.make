# Empty dependencies file for fist_cluster.
# This may be replaced when dependencies are built.
