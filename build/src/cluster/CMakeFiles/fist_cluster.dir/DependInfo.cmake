
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/clustering.cpp" "src/cluster/CMakeFiles/fist_cluster.dir/clustering.cpp.o" "gcc" "src/cluster/CMakeFiles/fist_cluster.dir/clustering.cpp.o.d"
  "/root/repo/src/cluster/heuristic1.cpp" "src/cluster/CMakeFiles/fist_cluster.dir/heuristic1.cpp.o" "gcc" "src/cluster/CMakeFiles/fist_cluster.dir/heuristic1.cpp.o.d"
  "/root/repo/src/cluster/heuristic2.cpp" "src/cluster/CMakeFiles/fist_cluster.dir/heuristic2.cpp.o" "gcc" "src/cluster/CMakeFiles/fist_cluster.dir/heuristic2.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/fist_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/fist_cluster.dir/metrics.cpp.o.d"
  "/root/repo/src/cluster/unionfind.cpp" "src/cluster/CMakeFiles/fist_cluster.dir/unionfind.cpp.o" "gcc" "src/cluster/CMakeFiles/fist_cluster.dir/unionfind.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/fist_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/fist_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/fist_script.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/fist_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
