file(REMOVE_RECURSE
  "libfist_cluster.a"
)
