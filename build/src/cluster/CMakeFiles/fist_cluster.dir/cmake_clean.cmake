file(REMOVE_RECURSE
  "CMakeFiles/fist_cluster.dir/clustering.cpp.o"
  "CMakeFiles/fist_cluster.dir/clustering.cpp.o.d"
  "CMakeFiles/fist_cluster.dir/heuristic1.cpp.o"
  "CMakeFiles/fist_cluster.dir/heuristic1.cpp.o.d"
  "CMakeFiles/fist_cluster.dir/heuristic2.cpp.o"
  "CMakeFiles/fist_cluster.dir/heuristic2.cpp.o.d"
  "CMakeFiles/fist_cluster.dir/metrics.cpp.o"
  "CMakeFiles/fist_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/fist_cluster.dir/unionfind.cpp.o"
  "CMakeFiles/fist_cluster.dir/unionfind.cpp.o.d"
  "libfist_cluster.a"
  "libfist_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
