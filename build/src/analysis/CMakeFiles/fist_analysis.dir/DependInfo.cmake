
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/balances.cpp" "src/analysis/CMakeFiles/fist_analysis.dir/balances.cpp.o" "gcc" "src/analysis/CMakeFiles/fist_analysis.dir/balances.cpp.o.d"
  "/root/repo/src/analysis/explorer.cpp" "src/analysis/CMakeFiles/fist_analysis.dir/explorer.cpp.o" "gcc" "src/analysis/CMakeFiles/fist_analysis.dir/explorer.cpp.o.d"
  "/root/repo/src/analysis/export.cpp" "src/analysis/CMakeFiles/fist_analysis.dir/export.cpp.o" "gcc" "src/analysis/CMakeFiles/fist_analysis.dir/export.cpp.o.d"
  "/root/repo/src/analysis/graph.cpp" "src/analysis/CMakeFiles/fist_analysis.dir/graph.cpp.o" "gcc" "src/analysis/CMakeFiles/fist_analysis.dir/graph.cpp.o.d"
  "/root/repo/src/analysis/peeling.cpp" "src/analysis/CMakeFiles/fist_analysis.dir/peeling.cpp.o" "gcc" "src/analysis/CMakeFiles/fist_analysis.dir/peeling.cpp.o.d"
  "/root/repo/src/analysis/theft.cpp" "src/analysis/CMakeFiles/fist_analysis.dir/theft.cpp.o" "gcc" "src/analysis/CMakeFiles/fist_analysis.dir/theft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/fist_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/fist_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/fist_tag.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/fist_script.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/fist_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
