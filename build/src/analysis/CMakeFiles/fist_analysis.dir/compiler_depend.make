# Empty compiler generated dependencies file for fist_analysis.
# This may be replaced when dependencies are built.
