file(REMOVE_RECURSE
  "CMakeFiles/fist_analysis.dir/balances.cpp.o"
  "CMakeFiles/fist_analysis.dir/balances.cpp.o.d"
  "CMakeFiles/fist_analysis.dir/explorer.cpp.o"
  "CMakeFiles/fist_analysis.dir/explorer.cpp.o.d"
  "CMakeFiles/fist_analysis.dir/export.cpp.o"
  "CMakeFiles/fist_analysis.dir/export.cpp.o.d"
  "CMakeFiles/fist_analysis.dir/graph.cpp.o"
  "CMakeFiles/fist_analysis.dir/graph.cpp.o.d"
  "CMakeFiles/fist_analysis.dir/peeling.cpp.o"
  "CMakeFiles/fist_analysis.dir/peeling.cpp.o.d"
  "CMakeFiles/fist_analysis.dir/theft.cpp.o"
  "CMakeFiles/fist_analysis.dir/theft.cpp.o.d"
  "libfist_analysis.a"
  "libfist_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
