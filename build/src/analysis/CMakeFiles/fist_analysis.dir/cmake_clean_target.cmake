file(REMOVE_RECURSE
  "libfist_analysis.a"
)
