file(REMOVE_RECURSE
  "CMakeFiles/fist_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/fist_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/fist_crypto.dir/hash.cpp.o"
  "CMakeFiles/fist_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/fist_crypto.dir/merkle.cpp.o"
  "CMakeFiles/fist_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/fist_crypto.dir/ripemd160.cpp.o"
  "CMakeFiles/fist_crypto.dir/ripemd160.cpp.o.d"
  "CMakeFiles/fist_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/fist_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/fist_crypto.dir/sha256.cpp.o"
  "CMakeFiles/fist_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/fist_crypto.dir/u256.cpp.o"
  "CMakeFiles/fist_crypto.dir/u256.cpp.o.d"
  "libfist_crypto.a"
  "libfist_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
