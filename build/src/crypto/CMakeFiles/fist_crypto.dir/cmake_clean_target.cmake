file(REMOVE_RECURSE
  "libfist_crypto.a"
)
