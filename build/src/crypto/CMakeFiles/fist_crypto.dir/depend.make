# Empty dependencies file for fist_crypto.
# This may be replaced when dependencies are built.
