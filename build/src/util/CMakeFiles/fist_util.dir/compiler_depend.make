# Empty compiler generated dependencies file for fist_util.
# This may be replaced when dependencies are built.
