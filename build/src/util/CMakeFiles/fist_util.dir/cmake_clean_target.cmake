file(REMOVE_RECURSE
  "libfist_util.a"
)
