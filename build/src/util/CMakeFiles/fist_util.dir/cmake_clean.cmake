file(REMOVE_RECURSE
  "CMakeFiles/fist_util.dir/amount.cpp.o"
  "CMakeFiles/fist_util.dir/amount.cpp.o.d"
  "CMakeFiles/fist_util.dir/hex.cpp.o"
  "CMakeFiles/fist_util.dir/hex.cpp.o.d"
  "CMakeFiles/fist_util.dir/rng.cpp.o"
  "CMakeFiles/fist_util.dir/rng.cpp.o.d"
  "CMakeFiles/fist_util.dir/serialize.cpp.o"
  "CMakeFiles/fist_util.dir/serialize.cpp.o.d"
  "CMakeFiles/fist_util.dir/table.cpp.o"
  "CMakeFiles/fist_util.dir/table.cpp.o.d"
  "CMakeFiles/fist_util.dir/timeutil.cpp.o"
  "CMakeFiles/fist_util.dir/timeutil.cpp.o.d"
  "libfist_util.a"
  "libfist_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
