file(REMOVE_RECURSE
  "libfist_sim.a"
)
