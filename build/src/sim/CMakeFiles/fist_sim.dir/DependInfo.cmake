
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/actor.cpp" "src/sim/CMakeFiles/fist_sim.dir/actor.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/actor.cpp.o.d"
  "/root/repo/src/sim/flows.cpp" "src/sim/CMakeFiles/fist_sim.dir/flows.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/flows.cpp.o.d"
  "/root/repo/src/sim/hoard.cpp" "src/sim/CMakeFiles/fist_sim.dir/hoard.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/hoard.cpp.o.d"
  "/root/repo/src/sim/keyfactory.cpp" "src/sim/CMakeFiles/fist_sim.dir/keyfactory.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/keyfactory.cpp.o.d"
  "/root/repo/src/sim/probe.cpp" "src/sim/CMakeFiles/fist_sim.dir/probe.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/probe.cpp.o.d"
  "/root/repo/src/sim/services.cpp" "src/sim/CMakeFiles/fist_sim.dir/services.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/services.cpp.o.d"
  "/root/repo/src/sim/thief.cpp" "src/sim/CMakeFiles/fist_sim.dir/thief.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/thief.cpp.o.d"
  "/root/repo/src/sim/wallet.cpp" "src/sim/CMakeFiles/fist_sim.dir/wallet.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/wallet.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/fist_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/fist_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/fist_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/fist_script.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/fist_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/tag/CMakeFiles/fist_tag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
