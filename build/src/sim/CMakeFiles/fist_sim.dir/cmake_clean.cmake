file(REMOVE_RECURSE
  "CMakeFiles/fist_sim.dir/actor.cpp.o"
  "CMakeFiles/fist_sim.dir/actor.cpp.o.d"
  "CMakeFiles/fist_sim.dir/flows.cpp.o"
  "CMakeFiles/fist_sim.dir/flows.cpp.o.d"
  "CMakeFiles/fist_sim.dir/hoard.cpp.o"
  "CMakeFiles/fist_sim.dir/hoard.cpp.o.d"
  "CMakeFiles/fist_sim.dir/keyfactory.cpp.o"
  "CMakeFiles/fist_sim.dir/keyfactory.cpp.o.d"
  "CMakeFiles/fist_sim.dir/probe.cpp.o"
  "CMakeFiles/fist_sim.dir/probe.cpp.o.d"
  "CMakeFiles/fist_sim.dir/services.cpp.o"
  "CMakeFiles/fist_sim.dir/services.cpp.o.d"
  "CMakeFiles/fist_sim.dir/thief.cpp.o"
  "CMakeFiles/fist_sim.dir/thief.cpp.o.d"
  "CMakeFiles/fist_sim.dir/wallet.cpp.o"
  "CMakeFiles/fist_sim.dir/wallet.cpp.o.d"
  "CMakeFiles/fist_sim.dir/world.cpp.o"
  "CMakeFiles/fist_sim.dir/world.cpp.o.d"
  "libfist_sim.a"
  "libfist_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
