# Empty dependencies file for fist_sim.
# This may be replaced when dependencies are built.
