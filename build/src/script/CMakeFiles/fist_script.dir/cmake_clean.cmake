file(REMOVE_RECURSE
  "CMakeFiles/fist_script.dir/script.cpp.o"
  "CMakeFiles/fist_script.dir/script.cpp.o.d"
  "CMakeFiles/fist_script.dir/standard.cpp.o"
  "CMakeFiles/fist_script.dir/standard.cpp.o.d"
  "libfist_script.a"
  "libfist_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fist_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
