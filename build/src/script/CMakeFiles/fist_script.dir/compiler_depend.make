# Empty compiler generated dependencies file for fist_script.
# This may be replaced when dependencies are built.
