file(REMOVE_RECURSE
  "libfist_script.a"
)
