
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/script.cpp" "src/script/CMakeFiles/fist_script.dir/script.cpp.o" "gcc" "src/script/CMakeFiles/fist_script.dir/script.cpp.o.d"
  "/root/repo/src/script/standard.cpp" "src/script/CMakeFiles/fist_script.dir/standard.cpp.o" "gcc" "src/script/CMakeFiles/fist_script.dir/standard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fist_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/fist_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
