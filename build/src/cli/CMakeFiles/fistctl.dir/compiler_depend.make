# Empty compiler generated dependencies file for fistctl.
# This may be replaced when dependencies are built.
