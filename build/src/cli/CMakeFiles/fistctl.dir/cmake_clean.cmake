file(REMOVE_RECURSE
  "../../fistctl"
  "../../fistctl.pdb"
  "CMakeFiles/fistctl.dir/fistctl.cpp.o"
  "CMakeFiles/fistctl.dir/fistctl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fistctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
