// blockfile_roundtrip — the substrate demo: fistful speaks Bitcoin
// Core's on-disk dialect.
//
// Simulates a small economy, writes its chain to a blk0000.dat-style
// file (magic + length framing, byte-exact), re-reads it with a fresh
// FileBlockStore, revalidates every block with ChainState, and runs the
// clustering over the reparsed chain — proving the forensic side needs
// nothing but the bytes.
#include <cstdio>
#include <filesystem>

#include "chain/chainstate.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

using namespace fist;

int main() {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "fistful_blk0000.dat";
  std::filesystem::remove(path);

  // 1. Simulate and persist.
  sim::WorldConfig config;
  config.days = 60;
  config.users = 100;
  config.seed = 3;
  std::printf("simulating %d days...\n", config.days);
  sim::World world(config);
  world.run();

  {
    FileBlockStore disk(path);
    for (std::size_t i = 0; i < world.store().count(); ++i)
      disk.append(world.store().read(i));
  }
  std::printf("wrote %zu blocks to %s (%ju bytes, Bitcoin Core blk "
              "framing)\n",
              world.store().count(), path.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)));

  // 2. Reopen cold and revalidate the whole chain.
  FileBlockStore reopened(path);
  std::printf("reopened: %zu records recovered by scanning the file\n",
              reopened.count());

  ChainParams params;
  params.coinbase_maturity = config.coinbase_maturity;
  params.halving_interval = config.halving_interval;
  ChainState state(params);
  for (std::size_t i = 0; i < reopened.count(); ++i)
    state.connect(reopened.read(i));  // throws on any consensus violation
  std::printf("revalidated %d blocks: %llu txs, %s BTC minted, %s BTC in "
              "fees, %zu UTXOs\n",
              state.height() + 1,
              static_cast<unsigned long long>(state.stats().transactions),
              format_btc_whole(state.stats().minted).c_str(),
              format_btc(state.stats().total_fees).c_str(),
              state.utxos().size());

  // 3. Forensics straight off the file.
  ForensicPipeline pipeline(reopened, world.tag_feed());
  pipeline.run();
  std::printf("clustered the reparsed chain: %zu addresses -> %zu users "
              "(%zu named)\n",
              pipeline.view().address_count(),
              pipeline.clustering().cluster_count(),
              pipeline.naming().names().size());

  std::filesystem::remove(path);
  std::printf("ok\n");
  return 0;
}
