// quickstart — the five-minute tour of fistful.
//
// 1. Simulate a small Bitcoin economy (or bring your own blocks).
// 2. Run the forensic pipeline: parse → cluster (H1 + refined H2) →
//    name clusters from the tag feed.
// 3. Ask questions: who are the big players? what does the condensed
//    user graph look like? which addresses belong to "Mt. Gox"?
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <cstdio>

#include "analysis/graph.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

using namespace fist;

int main() {
  // ---- 1. a synthetic economy ----------------------------------------
  sim::WorldConfig config;
  config.days = 90;
  config.users = 150;
  config.seed = 1;
  std::printf("simulating %d days of Bitcoin economy...\n", config.days);
  sim::World world(config);
  world.run();
  std::printf("  %llu transactions in %zu blocks, %zu tag-feed entries\n\n",
              static_cast<unsigned long long>(world.tx_count()),
              world.store().count(), world.tag_feed().size());

  // ---- 2. the forensic pipeline ---------------------------------------
  // Only serialized blocks + the tag feed cross this boundary — the
  // same information position the paper's authors had.
  ForensicPipeline pipeline(world.store(), world.tag_feed());
  pipeline.run();
  std::printf("pipeline results:\n");
  std::printf("  addresses:            %zu\n",
              pipeline.view().address_count());
  std::printf("  H1 clusters:          %zu\n",
              pipeline.h1_clustering().cluster_count());
  std::printf("  + refined H2:         %zu clusters\n",
              pipeline.clustering().cluster_count());
  std::printf("  change links found:   %zu\n", pipeline.h2().label_count());
  std::printf("  named clusters:       %zu\n\n",
              pipeline.naming().names().size());

  // ---- 3. ask questions ------------------------------------------------
  // Largest named entities by address count.
  std::vector<std::pair<std::uint32_t, const ClusterName*>> entities;
  for (const auto& [cluster, name] : pipeline.naming().names())
    entities.emplace_back(pipeline.clustering().size_of(cluster), &name);
  std::sort(entities.rbegin(), entities.rend());
  std::printf("biggest identified entities:\n");
  for (std::size_t i = 0; i < entities.size() && i < 8; ++i) {
    std::printf("  %-20s (%-9s) %6u addresses\n",
                entities[i].second->service.c_str(),
                std::string(category_name(entities[i].second->category))
                    .c_str(),
                entities[i].first);
  }

  // The condensed user graph: heaviest flows between entities.
  UserGraph graph = UserGraph::build(pipeline.view(), pipeline.clustering());
  std::printf("\nheaviest flows in the condensed user graph:\n");
  for (const ClusterEdge& e : graph.top_flows(5)) {
    auto label = [&](ClusterId c) {
      const ClusterName* n = pipeline.naming().name_of(c);
      return n ? n->service : "(unnamed user #" + std::to_string(c) + ")";
    };
    std::printf("  %-22s -> %-22s %12s BTC over %u txs\n",
                label(e.from).c_str(), label(e.to).c_str(),
                format_btc_whole(e.value).c_str(), e.tx_count);
  }
  std::printf("\ndone. Next: examples/trace_silkroad and "
              "examples/investigate_theft.\n");
  return 0;
}
