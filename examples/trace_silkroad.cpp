// trace_silkroad — the paper's §5 case study as a runnable program.
//
// A marketplace hoards its revenue on one address (the 1DkyBEKt
// analogue), then dissolves it; the final chunk splits into three
// peeling chains. This example locates the hoard *from chain data*,
// follows each chain hop by hop with Heuristic 2, and prints where the
// money went — annotating every peel that landed at a known service.
#include <cstdio>

#include "analysis/peeling.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

using namespace fist;

int main() {
  sim::WorldConfig config;
  config.days = 200;
  config.users = 300;
  config.seed = 9;
  std::printf("simulating the marketplace economy...\n");
  sim::World world(config);
  world.run();

  ForensicPipeline pipeline(world.store(), world.tag_feed());
  pipeline.run();
  const ChainView& view = pipeline.view();

  const sim::HoardRecord* hoard = world.hoard();
  if (hoard == nullptr) {
    std::printf("hoard disabled\n");
    return 1;
  }

  // An analyst notices the hoard because of its absurd balance ("at its
  // height it contained 5% of all generated bitcoins"); we verify it is
  // discoverable from public data: the address with the highest *peak
  // held balance* over the chain's history.
  std::vector<Amount> balance(view.address_count(), 0);
  std::vector<Amount> peak(view.address_count(), 0);
  for (const TxView& tx : view.txs()) {
    for (const InputView& in : tx.inputs)
      if (in.addr != kNoAddr) balance[in.addr] -= in.value;
    for (const OutputView& out : tx.outputs)
      if (out.addr != kNoAddr) {
        balance[out.addr] += out.value;
        peak[out.addr] = std::max(peak[out.addr], balance[out.addr]);
      }
  }
  AddrId richest = 0;
  for (AddrId a = 1; a < view.address_count(); ++a)
    if (peak[a] > peak[richest]) richest = a;

  Address hoard_addr = view.addresses().lookup(richest);
  std::printf("highest peak-balance address: %s (%s BTC at its height)\n",
              hoard_addr.encode().c_str(),
              format_btc_whole(peak[richest]).c_str());
  std::printf("simulator's hoard address:    %s  (%s)\n\n",
              hoard->hoard_address.encode().c_str(),
              hoard_addr == hoard->hoard_address
                  ? "match — found it from chain data alone"
                  : "differs");

  // Its cluster name, via the tag feed (the probe kept a Silk Road
  // wallet, as the authors did).
  ClusterId cluster = pipeline.clustering().cluster_of(richest);
  if (const ClusterName* name = pipeline.naming().name_of(cluster))
    std::printf("cluster identified as: %s (%s)\n\n", name->service.c_str(),
                std::string(category_name(name->category)).c_str());

  // Follow the three dissolution chains.
  PeelFollower follower(view, pipeline.h2(), pipeline.clustering(),
                        pipeline.naming());
  for (int c = 0; c < 3; ++c) {
    TxIndex start = view.find_tx(hoard->chain_starts[c].txid);
    if (start == kNoTx) continue;
    PeelChainResult res =
        follower.follow(start, hoard->chain_starts[c].index,
                        FollowOptions{115});
    std::printf("chain %d: followed %d hops (%d via shape heuristic), "
                "%zu peels, %s BTC left at the end\n",
                c + 1, res.hops, res.shape_hops, res.peels.size(),
                format_btc_whole(res.final_amount).c_str());
    int shown = 0;
    for (const Peel& peel : res.peels) {
      if (peel.service.empty()) continue;
      if (++shown > 6) continue;
      std::printf("    hop %3d: %8s BTC -> %s\n", peel.hop,
                  format_btc_whole(peel.value).c_str(),
                  peel.service.c_str());
    }
    auto summary = summarize_peels(res);
    std::printf("    ...%zu distinct services on this chain\n\n",
                summary.size());
  }

  std::printf("Each service above can be subpoenaed for the account that\n"
              "received the deposit — the paper's core argument about why\n"
              "Bitcoin is unattractive for laundering at scale.\n");
  return 0;
}
