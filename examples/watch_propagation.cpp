// watch_propagation — Figure 1, narrated.
//
// Drives the P2P simulator through the exact sequence of the paper's
// Figure 1: a merchant hands the user an address, the user broadcasts
// the payment, it floods to the miners, a miner seals a block, and the
// block floods back until the merchant sees its payment confirmed.
#include <cstdio>

#include "crypto/ecdsa.hpp"
#include "net/network.hpp"
#include "script/standard.hpp"

using namespace fist;
using namespace fist::net;

int main() {
  NetConfig config;
  config.nodes = 300;
  config.out_peers = 8;
  config.miners = 10;
  config.block_interval_s = 120;  // sped up for the demo
  config.seed = 2013;
  P2PNetwork net(config);

  NodeId user = 17;
  NodeId merchant = 230;

  // (1)+(2): the merchant generates an address and sends it to the user
  // (out of band).
  PrivateKey merchant_key =
      PrivateKey::from_seed(to_bytes(std::string("merchant-key")));
  Address mpk(AddrType::P2PKH,
              merchant_key.pubkey().hash160_compressed());
  std::printf("(1) merchant generates address mpk = %s\n",
              mpk.encode().c_str());
  std::printf("(2) merchant sends mpk to the user (off-chain)\n");

  // (3): the user forms tx paying 0.7 BTC to mpk.
  Transaction tx;
  TxIn in;
  in.prevout.txid = hash256(to_bytes(std::string("users-prior-coin")));
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{btc_fraction(0.7), make_script_for(mpk)});
  Hash256 txid = tx.txid();
  std::printf("(3) user forms tx %s paying 0.7 BTC\n",
              txid.hex_reversed().substr(0, 24).c_str());

  // (4): broadcast; the tx floods the network.
  net.submit_tx(user, tx);
  net.run_until(30);
  const Propagation* txp = net.propagation(txid);
  std::printf("(4) tx flooded: %.0f%% of %u nodes have it; "
              "half the network in %.2fs, all of it in %.2fs\n",
              100 * txp->coverage(), net.size(),
              txp->time_to_fraction(0.5).value_or(-1),
              txp->time_to_fraction(1.0).value_or(-1));
  std::printf("    merchant knows the (unconfirmed) tx: %s\n",
              net.node(merchant).knows_tx(txid) ? "yes" : "no");

  // (5): miners grind; eventually one seals a block containing the tx.
  net.start_mining();
  int blocks_before_inclusion = 0;
  for (;;) {
    net.run_until(net.loop().now() + 60);
    if (net.node(merchant).chain_length() > blocks_before_inclusion) {
      blocks_before_inclusion = net.node(merchant).chain_length();
      // Has some block carried our tx? The merchant no longer sees the
      // tx in anyone's mempool; simplest check: its node knows a block
      // and the tx — the payment is final once a block holds it.
      if (net.node(merchant).mempool().find(txid) ==
          net.node(merchant).mempool().end())
        break;
    }
    if (net.loop().now() > 4000) break;
  }
  std::printf("(5) a miner found a block (real proof-of-work at easy "
              "difficulty) after %d block(s)\n",
              net.blocks_mined());

  // (6): the block floods; the merchant accepts the payment.
  Hash256 tip = net.node(merchant).tip();
  const Propagation* bp = net.propagation(tip);
  std::printf("(6) block %s flooded the network in %.2fs; the merchant's "
              "chain height is %d\n",
              tip.hex_reversed().substr(0, 24).c_str(),
              bp ? bp->time_to_fraction(1.0).value_or(-1) : -1.0,
              net.node(merchant).chain_length());
  std::printf("\npayment settled: the merchant saw its 0.7 BTC confirm "
              "without ever learning who the user is —\n"
              "which is exactly the pseudonymity the clustering heuristics "
              "in this library erode.\n");
  std::printf("\nnetwork totals: %llu messages delivered, %d blocks mined\n",
              static_cast<unsigned long long>(net.messages_delivered()),
              net.blocks_mined());
  return 0;
}
