// investigate_theft — a forensic walk-through of one theft (Table 3).
//
// Given only the theft's publicly known transactions, the tracker
// taints the loot, classifies how it moved (aggregations, peeling
// chains, splits, folding), and lists every deposit into a named
// exchange — the "subpoena list".
#include <cstdio>

#include "analysis/theft.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"

using namespace fist;

int main(int argc, char** argv) {
  std::string target = argc > 1 ? argv[1] : "Bitfloor";

  sim::WorldConfig config;
  config.days = 200;
  config.users = 300;
  config.seed = 9;
  std::printf("simulating the economy (thefts included)...\n");
  sim::World world(config);
  world.run();

  ForensicPipeline pipeline(world.store(), world.tag_feed());
  pipeline.run();

  const sim::TheftRecord* record = nullptr;
  for (const sim::TheftRecord& rec : world.thefts())
    if (rec.scenario.label == target) record = &rec;
  if (record == nullptr) {
    std::printf("unknown theft '%s'; available:\n", target.c_str());
    for (const sim::TheftRecord& rec : world.thefts())
      std::printf("  %s\n", rec.scenario.label.c_str());
    return 1;
  }

  std::printf("\n=== investigating the %s theft ===\n",
              record->scenario.label.c_str());
  std::printf("victim: %s   loot: %s BTC   theft txs: %zu\n",
              record->scenario.victim.empty() ? "(individual users)"
                                              : record->scenario.victim.c_str(),
              format_btc_whole(record->stolen).c_str(),
              record->theft_txids.size());
  for (const Hash256& txid : record->theft_txids)
    std::printf("  theft tx %s\n", txid.hex_reversed().c_str());

  std::vector<TxIndex> txs;
  for (const Hash256& h : record->theft_txids) {
    TxIndex t = pipeline.view().find_tx(h);
    if (t != kNoTx) txs.push_back(t);
  }
  std::vector<AddrId> thief;
  for (const Address& a : record->thief_addresses)
    if (auto id = pipeline.view().addresses().find(a)) thief.push_back(*id);

  TheftTrace trace =
      track_theft(pipeline.view(), pipeline.h2(), pipeline.clustering(),
                  pipeline.naming(), txs, thief);

  std::printf("\nmovement pattern (A=aggregate P=peel-chain S=split "
              "F=folding):\n");
  std::printf("  scripted by thief : %s\n",
              record->scenario.movement.c_str());
  std::printf("  recovered on-chain: %s\n",
              trace.movement.empty() ? "(loot never moved)"
                                     : trace.movement.c_str());
  std::printf("transactions followed: %d\n", trace.txs_followed);
  std::printf("loot still dormant:    %s BTC\n",
              format_btc_whole(trace.dormant).c_str());

  if (trace.exchange_deposits.empty()) {
    std::printf("\nno tainted coins reached a known exchange — like the\n"
                "paper's Trojan thief, this loot is stuck.\n");
  } else {
    std::printf("\nsubpoena list — tainted deposits into known exchanges:\n");
    for (const ExchangeDeposit& d : trace.exchange_deposits) {
      std::printf("  %10s BTC into %-16s (tx %s)\n",
                  format_btc_whole(d.value).c_str(), d.service.c_str(),
                  pipeline.view().tx(d.tx).txid.hex_reversed()
                      .substr(0, 16)
                      .c_str());
    }
    std::printf("total: %s BTC reached exchanges — each deposit maps to an\n"
                "account whose owner the exchange can identify.\n",
                format_btc_whole(trace.to_exchanges).c_str());
  }
  std::printf("\n(try: %s MyBitcoin | Betcoin | Trojan | \"Bitcoinica "
              "(May)\" ...)\n",
              argv[0]);
  return 0;
}
