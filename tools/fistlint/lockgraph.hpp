// lockgraph.hpp — the whole-program lock-acquisition graph.
//
// Pass 2, stage two: after callgraph.hpp links the function summaries,
// this annotates every call-graph node with the set of ranked mutexes
// it can *acquire* — directly (a LockRegion in one of its bodies) or
// transitively (a resolved callee acquires one) — each with a
// deterministic witness chain naming every call hop. On top of that:
//
//   * acquired-while-held edges: a region holding mutex A contains a
//     direct acquisition of B, or a call whose target transitively
//     acquires B. One edge per (A, B) pair, first witness wins (nodes
//     are visited in sorted order, so "first" is deterministic).
//   * deadlock cycles: strongly connected components of the edge
//     multigraph (Tarjan, sorted adjacency). Any SCC with two or more
//     mutexes — or a self-loop — is two acquisition orders that can
//     interleave into deadlock, reported with every edge's witness.
//   * unheld reachability: whether a function can be *entered* while a
//     given mutex is NOT held — it has no resolved in-graph callers
//     (an entry point), or some caller reaches it through a call site
//     outside every region of that mutex and is itself
//     unheld-reachable. The unguarded-field rule keys on this.
//
// Try-acquisitions (m.try_lock(), std::try_to_lock guards) open real
// hold spans — the regions they create participate as *held* sides of
// edges — but are exempt as violation targets: a failed try backs off
// instead of blocking, so it cannot complete a deadlock.
//
// Like the effect fixpoint, everything here is set-at-most-once in
// sorted iteration order, so the output is bit-identical regardless of
// merge order or caching — which the determinism tests and the
// cached-vs-cold CI diff assert.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "summaries.hpp"

namespace fistlint {

/// One ranked mutex a call-graph node can acquire, with its witness.
struct Acquisition {
  long rank = 0;
  bool try_lock = false;  ///< acquired only via try-lock paths
  /// "acquires `mu` (rank 30) (src/a.cpp:12)" for a direct region;
  /// "calls `g` (src/a.cpp:14) → …" prepended per propagation hop.
  std::string chain;
  std::string file;  ///< site of the final (direct) acquisition
  int line = 0;
};

class LockGraph {
 public:
  /// `functions` and `graph` must outlive the LockGraph; `mutex_ranks`
  /// is the resolved name → rank map from ScanContext.
  void build(const CallGraph& graph,
             const std::vector<FunctionSummary>& functions,
             const std::map<std::string, long>& mutex_ranks);

  /// Ranked mutexes node `node` (CallGraph::nodes() index) can
  /// acquire, keyed by mutex name. Direct and transitive.
  const std::map<std::string, Acquisition>& acquires(int node) const;

  /// True when `node` can be entered while `mutex` is NOT held (see
  /// the header comment). Unknown nodes are conservatively unheld.
  bool reachable_unheld(int node, const std::string& mutex) const;

  /// One acquired-while-held edge between ranked mutexes.
  struct Edge {
    std::string held;
    long held_rank = 0;
    std::string acquired;
    long acquired_rank = 0;
    bool try_lock = false;  ///< the acquired side is a try-acquisition
    std::string file;       ///< where the held region opens
    int line = 0;
    std::string chain;  ///< witness from the held region to the acquisition
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// One deadlock cycle: an SCC of the edge graph (or a self-loop).
  struct Cycle {
    std::vector<std::string> mutexes;  ///< sorted participant names
    std::vector<Edge> path;            ///< every intra-SCC edge, sorted
    std::string anchor_file;  ///< lexicographically smallest edge site —
    int anchor_line = 0;      ///< the cycle is reported in this file only
  };
  const std::vector<Cycle>& cycles() const { return cycles_; }

 private:
  const CallGraph* graph_ = nullptr;
  const std::vector<FunctionSummary>* functions_ = nullptr;
  std::vector<std::map<std::string, Acquisition>> acquires_;
  /// mutex name → nodes provably entered with it unheld.
  std::map<std::string, std::set<int>> unheld_;
  std::vector<Edge> edges_;
  std::vector<Cycle> cycles_;
};

/// The `--dump-lockgraph` payload: a deterministic DOT digraph of the
/// ranked mutexes (node label = name + rank) with one
/// acquired-while-held edge per pair, labelled by its witness site.
std::string lockgraph_dot(const LockGraph& graph,
                          const std::map<std::string, long>& mutex_ranks);

}  // namespace fistlint
