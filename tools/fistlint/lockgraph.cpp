// lockgraph.cpp — the lock-acquisition graph (lockgraph.hpp) and the
// three rules that run on it:
//
//   transitive-lock-order   a region holding rank R reaches — through
//                           any number of call hops — an acquisition
//                           of rank ≤ R. Subsumes the old lexical
//                           lock-order rule: the nested-region case is
//                           the zero-hop instance.
//   static-deadlock-cycle   an SCC (or self-loop) in the
//                           acquired-while-held multigraph — two
//                           acquisition orders that can interleave
//                           into deadlock even though each path
//                           respects its own local discipline.
//   unguarded-field         a trailing-underscore field of a mutexed
//                           class, known to be lock-relevant
//                           (FIST_GUARDED_BY or accessed under a class
//                           mutex somewhere), touched in a member
//                           function that is reachable without any
//                           class mutex held.
//
// Everything is computed set-at-most-once in sorted iteration order —
// witness chains and cycle anchors are bit-identical across cold,
// warm, and uncached runs.
#include "lockgraph.hpp"

#include <algorithm>
#include <utility>

#include "rules.hpp"

namespace fistlint {

namespace {

bool path_has_prefix(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

std::string last_component(const std::string& name) {
  std::size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

/// Witness chains for lock cycles must name both lock sites and every
/// call hop (the acceptance bar for the cross-TU fixtures), so the
/// clip budget is wider than the effect chains'.
std::string clip(std::string s) {
  constexpr std::size_t kMax = 360;
  if (s.size() > kMax) {
    s.resize(kMax - 1);
    s += "…";
  }
  return s;
}

std::string site(const FunctionSummary& fn, int line) {
  return fn.file + ":" + std::to_string(line);
}

long rank_of(const std::map<std::string, long>& ranks, const std::string& m) {
  auto it = ranks.find(m);
  return it == ranks.end() ? -1 : it->second;
}

bool has_region(const std::vector<int>& regions, int r) {
  for (int x : regions)
    if (x == r) return true;
  return false;
}

std::string held_desc(const std::string& mutex, long rank) {
  return "`" + mutex + "` (rank " + std::to_string(rank) + ")";
}

}  // namespace

void LockGraph::build(const CallGraph& graph,
                      const std::vector<FunctionSummary>& functions,
                      const std::map<std::string, long>& mutex_ranks) {
  graph_ = &graph;
  functions_ = &functions;
  const auto& nodes = graph.nodes();
  acquires_.assign(nodes.size(), {});
  unheld_.clear();
  edges_.clear();
  cycles_.clear();

  // Lattice per (node, mutex): absent < try-only < blocking. A
  // blocking acquisition path replaces a try-only one (a try cannot
  // complete a deadlock, a blocking path can), and each state is
  // reached at most once — monotone, so the fixpoint terminates and,
  // with the fixed iteration order, the chains are deterministic.
  auto note_acquire = [&](std::size_t ni, const std::string& mtx,
                          const Acquisition& a) -> bool {
    auto& m = acquires_[ni];
    auto it = m.find(mtx);
    if (it == m.end()) {
      m.emplace(mtx, a);
      return true;
    }
    if (it->second.try_lock && !a.try_lock) {
      it->second = a;
      return true;
    }
    return false;
  };

  // Direct acquisitions: every ranked lock region in a node's bodies.
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    for (int b : nodes[ni].bodies) {
      const FunctionSummary& fn = functions[static_cast<std::size_t>(b)];
      for (const LockRegion& r : fn.lock_regions) {
        long rank = rank_of(mutex_ranks, r.mutex);
        if (rank < 0) continue;
        Acquisition a;
        a.rank = rank;
        a.try_lock = r.try_lock;
        a.chain = "acquires " + held_desc(r.mutex, rank) + " (" +
                  site(fn, r.line) + ")";
        a.file = fn.file;
        a.line = r.line;
        note_acquire(ni, r.mutex, a);
      }
    }
  }

  // Transitive closure through resolved calls.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      for (int b : nodes[ni].bodies) {
        const FunctionSummary& fn = functions[static_cast<std::size_t>(b)];
        for (const CallSite& c : fn.calls) {
          for (int ti : graph.resolve(nodes[ni].qname, c)) {
            if (static_cast<std::size_t>(ti) == ni) continue;  // self-call
            for (const auto& [mtx, a] :
                 acquires_[static_cast<std::size_t>(ti)]) {
              Acquisition prop = a;
              prop.chain = clip("calls `" + c.name + "` (" +
                                site(fn, c.line) + ") → " + a.chain);
              if (note_acquire(ni, mtx, prop)) changed = true;
            }
          }
        }
      }
    }
  }

  // Acquired-while-held edges, one per (held, acquired) pair. First
  // witness wins (deterministic order); a blocking witness replaces a
  // try-only one, mirroring the acquisition lattice.
  std::map<std::pair<std::string, std::string>, Edge> edge_map;
  auto add_edge = [&](Edge e) {
    auto key = std::make_pair(e.held, e.acquired);
    auto it = edge_map.find(key);
    if (it == edge_map.end()) {
      edge_map.emplace(std::move(key), std::move(e));
      return;
    }
    if (it->second.try_lock && !e.try_lock) it->second = std::move(e);
  };

  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    for (int b : nodes[ni].bodies) {
      const FunctionSummary& fn = functions[static_cast<std::size_t>(b)];
      for (std::size_t r = 0; r < fn.lock_regions.size(); ++r) {
        const LockRegion& held = fn.lock_regions[r];
        long hrank = rank_of(mutex_ranks, held.mutex);
        if (hrank < 0) continue;
        const int ri = static_cast<int>(r);
        const std::string holding =
            "holding " + held_desc(held.mutex, hrank) + " (" +
            site(fn, held.line) + "): ";

        // Zero-hop: a region opened while this one was active
        // (lexical nesting or a manual lock()/lock() sequence). Same
        // mutex again is a self-loop — a non-recursive re-lock.
        for (const LockRegion& inner : fn.lock_regions) {
          if (!has_region(inner.regions, ri)) continue;
          long irank = rank_of(mutex_ranks, inner.mutex);
          if (irank < 0) continue;
          Edge e;
          e.held = held.mutex;
          e.held_rank = hrank;
          e.acquired = inner.mutex;
          e.acquired_rank = irank;
          e.try_lock = inner.try_lock;
          e.file = fn.file;
          e.line = held.line;
          e.chain = clip(holding + "acquires " +
                         held_desc(inner.mutex, irank) + " (" +
                         site(fn, inner.line) + ")");
          add_edge(std::move(e));
        }

        // Call-mediated: a call inside this region whose target
        // transitively acquires a ranked mutex.
        for (const CallSite& c : fn.calls) {
          if (!has_region(c.regions, ri)) continue;
          for (int ti : graph.resolve(nodes[ni].qname, c)) {
            for (const auto& [mtx, a] :
                 acquires_[static_cast<std::size_t>(ti)]) {
              Edge e;
              e.held = held.mutex;
              e.held_rank = hrank;
              e.acquired = mtx;
              e.acquired_rank = a.rank;
              e.try_lock = a.try_lock;
              e.file = fn.file;
              e.line = held.line;
              e.chain = clip(holding + "calls `" + c.name + "` (" +
                             site(fn, c.line) + ") → " + a.chain);
              add_edge(std::move(e));
            }
          }
        }
      }
    }
  }
  edges_.reserve(edge_map.size());
  for (auto& [key, e] : edge_map) edges_.push_back(std::move(e));

  // Deadlock cycles: Tarjan SCC over the blocking (non-try) edges.
  // The mutex universe and adjacency come from the sorted edge list,
  // so component discovery order is deterministic.
  std::map<std::string, std::vector<std::string>> adj;
  std::set<std::string> mnodes;
  for (const Edge& e : edges_) {
    mnodes.insert(e.held);
    mnodes.insert(e.acquired);
    if (!e.try_lock) adj[e.held].push_back(e.acquired);
  }

  struct TarjanState {
    std::map<std::string, int> index, low;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    int next = 0;
    std::vector<std::vector<std::string>> sccs;
  } tj;
  // Small graphs (one node per ranked mutex): recursion is fine.
  auto strongconnect = [&](auto&& self, const std::string& v) -> void {
    tj.index[v] = tj.low[v] = tj.next++;
    tj.stack.push_back(v);
    tj.on_stack.insert(v);
    auto it = adj.find(v);
    if (it != adj.end()) {
      for (const std::string& w : it->second) {
        if (tj.index.find(w) == tj.index.end()) {
          self(self, w);
          tj.low[v] = std::min(tj.low[v], tj.low[w]);
        } else if (tj.on_stack.count(w) != 0) {
          tj.low[v] = std::min(tj.low[v], tj.index[w]);
        }
      }
    }
    if (tj.low[v] == tj.index[v]) {
      std::vector<std::string> scc;
      while (true) {
        std::string w = tj.stack.back();
        tj.stack.pop_back();
        tj.on_stack.erase(w);
        scc.push_back(w);
        if (w == v) break;
      }
      tj.sccs.push_back(std::move(scc));
    }
  };
  for (const std::string& v : mnodes)
    if (tj.index.find(v) == tj.index.end()) strongconnect(strongconnect, v);

  for (std::vector<std::string>& scc : tj.sccs) {
    std::sort(scc.begin(), scc.end());
    std::set<std::string> members(scc.begin(), scc.end());
    bool cyclic = scc.size() >= 2;
    if (!cyclic) {
      for (const Edge& e : edges_)
        if (!e.try_lock && e.held == scc.front() && e.acquired == scc.front())
          cyclic = true;
    }
    if (!cyclic) continue;
    Cycle cy;
    cy.mutexes = scc;
    for (const Edge& e : edges_) {
      if (e.try_lock) continue;
      if (members.count(e.held) == 0 || members.count(e.acquired) == 0)
        continue;
      if (cy.path.empty() || std::make_pair(e.file, e.line) <
                                 std::make_pair(cy.anchor_file,
                                                cy.anchor_line)) {
        cy.anchor_file = e.file;
        cy.anchor_line = e.line;
      }
      cy.path.push_back(e);
    }
    if (cy.path.empty()) continue;
    cycles_.push_back(std::move(cy));
  }
  std::sort(cycles_.begin(), cycles_.end(),
            [](const Cycle& a, const Cycle& b) { return a.mutexes < b.mutexes; });

  // Unheld reachability, per ranked mutex: a node is provably
  // enterable with the mutex unheld when it has no resolved in-graph
  // callers, or some unheld-reachable caller calls it from a site
  // outside every region of that mutex.
  struct CallEdge {
    int from, to;
    const FunctionSummary* fn;
    const CallSite* c;
  };
  std::vector<CallEdge> call_edges;
  std::vector<char> has_caller(nodes.size(), 0);
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    for (int b : nodes[ni].bodies) {
      const FunctionSummary& fn = functions[static_cast<std::size_t>(b)];
      for (const CallSite& c : fn.calls) {
        for (int ti : graph.resolve(nodes[ni].qname, c)) {
          call_edges.push_back(CallEdge{static_cast<int>(ni), ti, &fn, &c});
          has_caller[static_cast<std::size_t>(ti)] = 1;
        }
      }
    }
  }
  for (const auto& [mtx, rank] : mutex_ranks) {
    std::set<int>& unheld = unheld_[mtx];
    for (std::size_t ni = 0; ni < nodes.size(); ++ni)
      if (!has_caller[ni]) unheld.insert(static_cast<int>(ni));
    bool grew = true;
    while (grew) {
      grew = false;
      for (const CallEdge& e : call_edges) {
        if (unheld.count(e.from) == 0 || unheld.count(e.to) != 0) continue;
        bool held_at_site = false;
        for (int ri : e.c->regions)
          if (e.fn->lock_regions[static_cast<std::size_t>(ri)].mutex == mtx)
            held_at_site = true;
        if (!held_at_site) {
          unheld.insert(e.to);
          grew = true;
        }
      }
    }
  }
}

const std::map<std::string, Acquisition>& LockGraph::acquires(int node) const {
  static const std::map<std::string, Acquisition> kEmpty;
  if (node < 0 || static_cast<std::size_t>(node) >= acquires_.size())
    return kEmpty;
  return acquires_[static_cast<std::size_t>(node)];
}

bool LockGraph::reachable_unheld(int node, const std::string& mutex) const {
  auto it = unheld_.find(mutex);
  if (it == unheld_.end()) return true;  // unknown mutex: over-report
  if (node < 0) return true;             // not in the graph: entry point
  return it->second.count(node) != 0;
}

std::string lockgraph_dot(const LockGraph& graph,
                          const std::map<std::string, long>& mutex_ranks) {
  std::string out = "digraph fistlint_lockgraph {\n  rankdir=LR;\n";
  for (const auto& [name, rank] : mutex_ranks) {
    out += "  \"" + dot_escape(name) + "\" [label=\"" + dot_escape(name) +
           "\\nrank " + std::to_string(rank) + "\"];\n";
  }
  for (const LockGraph::Edge& e : graph.edges()) {
    out += "  \"" + dot_escape(e.held) + "\" -> \"" + dot_escape(e.acquired) +
           "\" [label=\"" + dot_escape(e.file + ":" +
                                       std::to_string(e.line)) +
           (e.try_lock ? " (try)" : "") + "\"];\n";
  }
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------------

void run_lockgraph_rules(const SourceFile& file, const ScanContext& ctx,
                         std::vector<Finding>& out) {
  // The hierarchy header defines the ranks; holding a lock there is
  // definitionally fine.
  if (path_has_prefix(file.rel, "src/core/lock_order")) return;

  std::set<std::pair<std::string, int>> seen;
  auto emit = [&](const char* rule, int line, std::string message) {
    if (!seen.emplace(rule, line).second) return;
    out.push_back(Finding{rule, file.rel, line, std::move(message),
                          normalize_snippet(file.line_text(line))});
  };

  const LockGraph& lg = ctx.lockgraph;

  for (const FunctionSummary& fn : ctx.functions) {
    if (fn.file != file.rel) continue;

    for (std::size_t r = 0; r < fn.lock_regions.size(); ++r) {
      const LockRegion& region = fn.lock_regions[r];
      long hrank = rank_of(ctx.mutex_ranks, region.mutex);
      if (hrank < 0) continue;
      const int ri = static_cast<int>(r);
      const std::string held = held_desc(region.mutex, hrank);

      // transitive-lock-order, zero-hop: a region opened while this
      // one is active with a rank that does not strictly increase.
      // (This is the old lexical lock-order rule, now one instance of
      // the graph rule.)
      for (const LockRegion& inner : fn.lock_regions) {
        if (!has_region(inner.regions, ri) || inner.try_lock) continue;
        long irank = rank_of(ctx.mutex_ranks, inner.mutex);
        if (irank < 0 || irank > hrank) continue;
        emit(kRuleTransitiveLockOrder, inner.line,
             "acquiring " + held_desc(inner.mutex, irank) +
                 " while " + held + " is held — the hierarchy in "
                 "src/core/lock_order.hpp requires strictly increasing "
                 "ranks");
      }

      // transitive-lock-order, call-mediated: a call under this region
      // whose target transitively acquires rank ≤ held rank.
      for (const CallSite& c : fn.calls) {
        if (!has_region(c.regions, ri)) continue;
        for (int ti : ctx.graph.resolve(fn.qname, c)) {
          for (const auto& [mtx, a] :
               lg.acquires(ti)) {
            if (a.try_lock || a.rank > hrank) continue;
            emit(kRuleTransitiveLockOrder, c.line,
                 "call to `" + c.name + "` acquires " +
                     held_desc(mtx, a.rank) + " while " + held +
                     " is held — rank must strictly increase along "
                     "every call path: " + a.chain);
          }
        }
      }
    }
  }

  // static-deadlock-cycle: reported once, at the cycle's anchor (the
  // lexicographically smallest edge site), so exactly one file owns
  // each finding no matter how the scan is sliced or cached.
  for (const LockGraph::Cycle& cy : lg.cycles()) {
    if (cy.anchor_file != file.rel) continue;
    std::string names;
    for (const std::string& m : cy.mutexes)
      names += (names.empty() ? "`" : ", `") + m + "`";
    std::string witness;
    for (const LockGraph::Edge& e : cy.path)
      witness += (witness.empty() ? "" : "; ") + e.chain;
    emit(kRuleDeadlockCycle, cy.anchor_line,
         "lock cycle between " + names +
             " — these acquisition orders can interleave into deadlock: " +
             witness);
  }

  // unguarded-field: accesses to lock-relevant fields of mutexed
  // classes, outside any class-mutex region, in member functions
  // reachable with every class mutex unheld. Constructors/destructors
  // run before/after sharing and are exempt.
  for (const FunctionSummary& fn : ctx.functions) {
    if (fn.file != file.rel || fn.fields.empty()) continue;
    std::size_t cut = fn.qname.rfind("::");
    if (cut == std::string::npos) continue;  // free function
    const std::string cls = fn.qname.substr(0, cut);
    auto cm = ctx.class_mutexes.find(cls);
    if (cm == ctx.class_mutexes.end()) continue;
    std::vector<std::string> ranked_mutexes;
    for (const std::string& m : cm->second)
      if (ctx.mutex_ranks.count(m) != 0) ranked_mutexes.push_back(m);
    if (ranked_mutexes.empty()) continue;  // ambiguous/unranked: silent
    if (last_component(fn.qname) == last_component(cls)) continue;  // ctor/dtor
    auto cf = ctx.class_fields.find(cls);
    if (cf == ctx.class_fields.end()) continue;

    const int node = ctx.graph.node_index(fn.qname);
    bool entered_unheld = true;
    for (const std::string& m : ranked_mutexes)
      if (!lg.reachable_unheld(node, m)) entered_unheld = false;
    if (!entered_unheld) continue;  // every path in holds a class mutex

    for (const FieldAccess& a : fn.fields) {
      if (cf->second.count(a.name) == 0) continue;
      if (ctx.locked_fields.count(cls + "::" + a.name) == 0) continue;
      bool held = false;
      for (int ri : a.regions)
        if (cm->second.count(
                fn.lock_regions[static_cast<std::size_t>(ri)].mutex) != 0)
          held = true;
      if (held) continue;
      emit(kRuleUnguardedField, a.line,
           "field `" + a.name + "` of mutexed class `" + cls +
               "` accessed without its mutex — `" + fn.qname +
               "` is reachable with " +
               (ranked_mutexes.size() == 1
                    ? "`" + ranked_mutexes.front() + "`"
                    : "every class mutex") +
               " unheld; lock it, or allow() with the synchronization "
               "story");
    }
  }
}

}  // namespace fistlint
