// callgraph.hpp — pass 2 of the cross-TU engine: link the
// per-function summaries (summaries.hpp) into a call graph and
// propagate effects transitively.
//
// Linking (resolve()):
//
//   * qualified site `DeltaLog::append(…)` — suffix match: every node
//     whose qname ends in `::DeltaLog::append` (or equals it).
//   * unqualified free call `push(…)` — the caller's enclosing scopes,
//     innermost first (`fist::InternTable::push`, `fist::push`,
//     `push`), first exact hit wins; falls back to the tree-unique
//     name if the scope walk finds nothing.
//   * member call `log_->append(…)` — the receiver's type is unknown,
//     so it links only when exactly one definition in the tree has
//     that name; generic names (append, push, insert) stay unlinked
//     rather than unioning unrelated classes' effects.
//
// Overloads and same-named functions share one node whose effects are
// the union over all bodies — a deliberate over-approximation
// (summaries.hpp header comment), with allow() as the reviewed escape
// hatch.
//
// Propagation is a cycle-tolerant fixpoint: nodes are iterated in
// sorted qname order and each effect bit is set at most once, with the
// witness chain ("calls `x` (file:line) → …") recorded at set time —
// so the output is deterministic regardless of recursion or merge
// order, which the cached-vs-cold CI diff relies on.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "summaries.hpp"

namespace fistlint {

class CallGraph {
 public:
  struct Node {
    std::string qname;
    std::vector<int> bodies;  ///< indices into the functions vector
    bool blocking = false;
    bool alloc = false;
    bool callback = false;
    /// Human-readable witness for each transitive effect, e.g.
    /// "`fsync` (src/core/delta_log.cpp:88)" or
    /// "calls `DeltaLog::append` (src/core/live_index.cpp:210) → …".
    std::string why_blocking;
    std::string why_alloc;
    std::string why_callback;
  };

  /// Builds nodes from every summary, seeds direct effects (atoms and
  /// calls to `callables` symbols), and runs the fixpoint. `functions`
  /// must outlive the graph; node `bodies` index into it.
  void build(const std::vector<FunctionSummary>& functions,
             const std::set<std::string>& callables);

  /// Node indices the call site `call`, written inside
  /// `caller_qname`'s body, can reach (see the linking rules above).
  /// Empty when nothing links.
  std::vector<int> resolve(const std::string& caller_qname,
                           const CallSite& call) const;

  const std::vector<Node>& nodes() const { return nodes_; }

  /// Index of the node with exactly this qname, or -1.
  int node_index(const std::string& qname) const {
    auto it = by_qname_.find(qname);
    return it == by_qname_.end() ? -1 : it->second;
  }

 private:
  std::vector<Node> nodes_;  ///< sorted by qname
  /// last name component → indices into nodes_.
  std::map<std::string, std::vector<int>> by_last_;
  std::map<std::string, int> by_qname_;
};

/// The `--dump-callgraph` payload: a deterministic DOT digraph of the
/// functions defined in `rel` plus their direct resolved callees.
/// Effect flags render as [B]locking / [A]lloc / [C]allback suffixes
/// on the node labels.
std::string callgraph_dot(const CallGraph& graph,
                          const std::vector<FunctionSummary>& functions,
                          const std::string& rel);

/// Escapes `s` for use inside a double-quoted DOT string: backslashes
/// and quotes are backslash-escaped, newlines become "\n". Template
/// angle brackets are legal inside quoted strings and pass through —
/// the quoting itself is what makes `absorb<F>`-style names parse.
std::string dot_escape(const std::string& s);

}  // namespace fistlint
