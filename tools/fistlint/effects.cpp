// effects.cpp — the lock-hold-time rules driven by the cross-TU call
// graph (callgraph.hpp):
//
//   blocking-under-lock   any path from a region holding a *ranked*
//                         mutex to a blocking effect atom — IO under a
//                         lock turns p50-µs queries into p99-seconds.
//   alloc-under-lock      heap allocation while holding a mutex ranked
//                         ≥ the hot-path threshold (--hot-rank-
//                         threshold, default 60: the blockstore read
//                         slots and everything above).
//   callback-under-lock   invoking a stored std::function/observer
//                         while holding a ranked mutex — the flight-
//                         recorder tap idiom done wrong; a slow or
//                         re-entrant observer stalls or deadlocks the
//                         hot path.
//   unbounded-growth      a container member of a mutex-owning class
//                         grows on an ingest/serve path with no
//                         cap/evict/clear anywhere in the tree.
//
// All four over-approximate (suffix linking, lambda opacity,
// global-by-name member aggregation) and rely on per-line
// `fistlint:allow(<rule>) reason` for the reviewed exceptions.
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.hpp"
#include "rules.hpp"

namespace fistlint {

namespace {

bool path_has_prefix(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

std::string last_component(const std::string& name) {
  std::size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

bool has_region(const std::vector<int>& regions, int r) {
  for (int x : regions)
    if (x == r) return true;
  return false;
}

}  // namespace

void run_effect_rules(const SourceFile& file, const ScanContext& ctx,
                      std::vector<Finding>& out) {
  // The hierarchy header defines the ranks; holding a lock there is
  // definitionally fine.
  if (path_has_prefix(file.rel, "src/core/lock_order")) return;

  std::set<std::pair<std::string, int>> seen;
  auto emit = [&](const char* rule, int line, std::string message) {
    if (!seen.emplace(rule, line).second) return;
    out.push_back(Finding{rule, file.rel, line, std::move(message),
                          normalize_snippet(file.line_text(line))});
  };

  const auto& nodes = ctx.graph.nodes();

  for (const FunctionSummary& fn : ctx.functions) {
    if (fn.file != file.rel) continue;

    for (std::size_t r = 0; r < fn.lock_regions.size(); ++r) {
      const LockRegion& region = fn.lock_regions[r];
      auto rank_it = ctx.mutex_ranks.find(region.mutex);
      if (rank_it == ctx.mutex_ranks.end()) continue;  // unranked
      const long rank = rank_it->second;
      const bool hot = rank >= ctx.hot_rank_threshold;
      const std::string held = "`" + region.mutex + "` (rank " +
                               std::to_string(rank) + ")";
      const int ri = static_cast<int>(r);

      // Direct effect atoms inside this region.
      for (const EffectAtom& a : fn.atoms) {
        if (!has_region(a.regions, ri)) continue;
        if (a.kind == EffectAtom::kBlocking) {
          emit(kRuleBlockingUnderLock, a.line,
               "blocking `" + a.what + "` while holding " + held +
                   " — move the IO/wait outside the critical section");
        } else if (a.kind == EffectAtom::kAlloc && hot) {
          emit(kRuleAllocUnderLock, a.line,
               "`" + a.what + "` allocates while holding hot-path " + held +
                   " — preallocate or move it outside the lock");
        }
      }

      // Calls inside this region: direct callable invocations plus
      // transitive effects of the resolved targets.
      for (const CallSite& c : fn.calls) {
        if (!has_region(c.regions, ri)) continue;
        if (ctx.callable_symbols.count(last_component(c.name)) != 0) {
          emit(kRuleCallbackUnderLock, c.line,
               "invoking stored callable `" + c.name + "` while holding " +
                   held + " — copy it out and invoke after unlock");
        }
        for (int ti : ctx.graph.resolve(fn.qname, c)) {
          const CallGraph::Node& t = nodes[static_cast<std::size_t>(ti)];
          if (t.blocking) {
            emit(kRuleBlockingUnderLock, c.line,
                 "call to `" + c.name + "` blocks while holding " + held +
                     ": " + t.why_blocking);
          }
          if (t.alloc && hot) {
            emit(kRuleAllocUnderLock, c.line,
                 "call to `" + c.name + "` allocates while holding "
                 "hot-path " + held + ": " + t.why_alloc);
          }
          if (t.callback) {
            emit(kRuleCallbackUnderLock, c.line,
                 "call to `" + c.name + "` invokes a stored callable "
                 "while holding " + held + ": " + t.why_callback);
          }
        }
      }
    }
  }

  // unbounded-growth: container members of mutex-owning classes with a
  // grow op and no shrink op anywhere in the tree. Aggregation is
  // global by member name (summaries.hpp) — any clear()/erase()/
  // pop_*() on the name, in any file, counts as the cap.
  std::set<std::string> guarded_members;
  for (const std::string& cls : ctx.mutexed_classes) {
    auto it = ctx.container_members.find(cls);
    if (it == ctx.container_members.end()) continue;
    guarded_members.insert(it->second.begin(), it->second.end());
  }
  std::set<std::string> shrunk;
  for (const MemberOp& op : ctx.member_ops)
    if (!op.grow) shrunk.insert(op.member);

  std::set<std::string> reported;
  for (const MemberOp& op : ctx.member_ops) {
    if (op.file != file.rel || !op.grow) continue;
    if (guarded_members.count(op.member) == 0) continue;
    if (shrunk.count(op.member) != 0) continue;
    if (!reported.insert(op.member).second) continue;
    emit(kRuleUnboundedGrowth, op.line,
         "container member `" + op.member + "` grows via `" + op.method +
             "` on a locked ingest/serve path with no cap/evict/clear "
             "anywhere in the tree — bound it or allow() with the "
             "eviction story");
  }
}

}  // namespace fistlint
