#include "lexer.hpp"

#include <cctype>

namespace fistlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Parses a `fistlint:allow(...)` / `fistlint:allow-file(...)` marker
/// out of a comment body, if present.
void parse_allow(std::string_view comment, int line, bool own_line,
                 std::vector<Allow>& out) {
  static constexpr std::string_view kTag = "fistlint:allow";
  std::size_t pos = comment.find(kTag);
  if (pos == std::string_view::npos) return;
  std::size_t cursor = pos + kTag.size();
  bool file_scope = false;
  static constexpr std::string_view kFile = "-file";
  if (comment.substr(cursor, kFile.size()) == kFile) {
    file_scope = true;
    cursor += kFile.size();
  }
  if (cursor >= comment.size() || comment[cursor] != '(') return;
  std::size_t close = comment.find(')', cursor);
  if (close == std::string_view::npos) return;

  Allow allow;
  allow.line = line;
  allow.own_line = own_line;
  allow.file_scope = file_scope;
  std::string_view list = comment.substr(cursor + 1, close - cursor - 1);
  while (!list.empty()) {
    std::size_t comma = list.find(',');
    std::string rule = trim(list.substr(0, comma));
    if (!rule.empty()) allow.rules.push_back(std::move(rule));
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  allow.reason = trim(comment.substr(close + 1));
  out.push_back(std::move(allow));
}

/// Parses a `fistlint:effect(blocking|alloc)` marker out of a comment
/// body, if present. Unknown effect kinds are ignored (forward
/// compatibility), and a note listing none is dropped.
void parse_effect(std::string_view comment, int line,
                  std::vector<EffectNote>& out) {
  static constexpr std::string_view kTag = "fistlint:effect";
  std::size_t pos = comment.find(kTag);
  if (pos == std::string_view::npos) return;
  std::size_t cursor = pos + kTag.size();
  if (cursor >= comment.size() || comment[cursor] != '(') return;
  std::size_t close = comment.find(')', cursor);
  if (close == std::string_view::npos) return;

  EffectNote note;
  note.line = line;
  std::string_view list = comment.substr(cursor + 1, close - cursor - 1);
  while (!list.empty()) {
    std::size_t comma = list.find(',');
    std::string kind = trim(list.substr(0, comma));
    if (kind == "blocking") note.blocking = true;
    if (kind == "alloc") note.alloc = true;
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  if (note.blocking || note.alloc) out.push_back(note);
}

}  // namespace

const std::string& SourceFile::line_text(int line) const {
  static const std::string empty;
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return empty;
  return lines[static_cast<std::size_t>(line) - 1];
}

SourceFile lex(std::string_view src, std::string rel) {
  SourceFile out;
  out.rel = std::move(rel);

  // Split raw lines first (snippets + allow anchoring need them).
  {
    std::size_t start = 0;
    while (start <= src.size()) {
      std::size_t nl = src.find('\n', start);
      if (nl == std::string_view::npos) {
        if (start < src.size()) out.lines.emplace_back(src.substr(start));
        break;
      }
      out.lines.emplace_back(src.substr(start, nl - start));
      start = nl + 1;
    }
  }

  int line = 1;
  int last_token_line = 0;  // last line that produced a token
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
    last_token_line = line;
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      parse_allow(src.substr(i + 2, end - i - 2), line,
                  /*own_line=*/last_token_line != line, out.allows);
      parse_effect(src.substr(i + 2, end - i - 2), line, out.effects);
      i = end;
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      int start_line = line;
      bool own_line = last_token_line != line;
      std::size_t stop = (end == std::string_view::npos) ? n : end;
      for (std::size_t j = i; j < stop; ++j)
        if (src[j] == '\n') ++line;
      parse_allow(src.substr(i + 2, stop - i - 2), start_line, own_line,
                  out.allows);
      parse_effect(src.substr(i + 2, stop - i - 2), start_line, out.effects);
      i = (end == std::string_view::npos) ? n : end + 2;
      continue;
    }

    // Identifier — possibly a raw-string / encoding prefix.
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      std::string_view word = src.substr(start, i - start);
      // Raw string: R"delim( ... )delim"
      if (i < n && src[i] == '"' &&
          (word == "R" || word == "u8R" || word == "uR" || word == "UR" ||
           word == "LR")) {
        std::size_t dstart = i + 1;
        std::size_t paren = src.find('(', dstart);
        if (paren != std::string_view::npos) {
          std::string close = ")";
          close.append(src.substr(dstart, paren - dstart));
          close.push_back('"');
          std::size_t end = src.find(close, paren + 1);
          std::size_t stop = (end == std::string_view::npos)
                                 ? n
                                 : end;
          // The token carries the start line; the line counter (and
          // last_token_line, so a comment trailing the close quote is
          // not misread as own-line) must advance past the body.
          int start_line = line;
          for (std::size_t j = i; j < stop; ++j)
            if (src[j] == '\n') ++line;
          out.tokens.push_back(
              Token{TokKind::Str,
                    std::string(src.substr(paren + 1, stop - paren - 1)),
                    start_line});
          last_token_line = line;
          i = (end == std::string_view::npos) ? n : end + close.size();
          continue;
        }
      }
      // Plain encoding prefix on a regular literal (u8"x", L'c', ...).
      if (i < n && (src[i] == '"' || src[i] == '\'') &&
          (word == "u8" || word == "u" || word == "U" || word == "L")) {
        // Fall through to the literal scanners below on the next pass.
        push(TokKind::Ident, std::string(word));
        continue;
      }
      push(TokKind::Ident, std::string(word));
      continue;
    }

    // Number (digits, hex, separators, exponents — coarse but lossless
    // for rule purposes). Digit separators are consumed but stripped
    // from the token text so numeric consumers (the Rank-value parser)
    // see `21000000`, not a `21'000'000` that std::stol cuts at the
    // first quote.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      std::string text(1, c);
      ++i;
      while (i < n) {
        char d = src[i];
        if (d == '\'' && i + 1 < n && ident_char(src[i + 1])) {
          ++i;  // digit separator — part of the literal, not the text
        } else if (ident_char(d) || d == '.') {
          text.push_back(d);
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          text.push_back(d);
          ++i;  // exponent sign
        } else {
          break;
        }
      }
      push(TokKind::Number, std::move(text));
      continue;
    }

    // String literal.
    if (c == '"') {
      std::size_t start = ++i;
      std::string text;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) {
          text.append(src.substr(i, 2));
          i += 2;
        } else {
          if (src[i] == '\n') ++line;  // unterminated; keep counting
          text.push_back(src[i]);
          ++i;
        }
      }
      (void)start;
      push(TokKind::Str, std::move(text));
      if (i < n) ++i;  // closing quote
      continue;
    }

    // Character literal.
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) {
          text.append(src.substr(i, 2));
          i += 2;
        } else {
          if (src[i] == '\n') ++line;
          text.push_back(src[i]);
          ++i;
        }
      }
      push(TokKind::CharLit, std::move(text));
      if (i < n) ++i;
      continue;
    }

    // Everything else: one punctuation character per token.
    push(TokKind::Punct, std::string(1, c));
    ++i;
  }

  return out;
}

}  // namespace fistlint
