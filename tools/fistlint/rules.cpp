#include "rules.hpp"

#include <algorithm>
#include <cctype>

namespace fistlint {

namespace {

// ---------------------------------------------------------------------------
// Small token-stream helpers
// ---------------------------------------------------------------------------

/// `i` indexes a '<'. Returns the index just past the matching '>', or
/// `i + 1` when the run clearly is not a template argument list
/// (statement punctuation before the close). `>>` arrives as two '>'
/// tokens, so a plain depth count is exact.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('<')) {
      ++depth;
    } else if (t[j].punct('>')) {
      if (--depth == 0) return j + 1;
    } else if (t[j].punct(';') || t[j].punct('{') || t[j].punct('}')) {
      break;  // ran off the declaration — treat as a comparison
    }
  }
  return i + 1;
}

/// `i` indexes a '('. Returns the index of the matching ')' (or the
/// end of the stream).
std::size_t find_close_paren(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('(')) ++depth;
    if (t[j].punct(')') && --depth == 0) return j;
  }
  return t.size();
}

bool is_unordered_container(const Token& tok) {
  return tok.ident("unordered_map") || tok.ident("unordered_set") ||
         tok.ident("unordered_multimap") || tok.ident("unordered_multiset");
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool path_has_prefix(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

Finding make_finding(const SourceFile& file, const char* rule, int line,
                     std::string message) {
  return Finding{rule, file.rel, line, std::move(message),
                 normalize_snippet(file.line_text(line))};
}

// ---------------------------------------------------------------------------
// Pass 1a — unordered symbol collection
// ---------------------------------------------------------------------------

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "const",    "constexpr", "static", "inline", "mutable", "volatile",
      "noexcept", "override",  "final",  "return", "auto",    "if",
      "for",      "while",     "else",   "new",    "delete",  "this",
  };
  return kw;
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules = {
      kRuleUnorderedIter,  kRulePointerOrder,     kRuleBannedRandom,
      kRuleUninitPod,      kRuleFloatAmount,      kRuleDocsDrift,
      kRuleBadSuppression, kRuleNakedMutex,       kRuleLockOrder,
      kRuleDetachedThread, kRuleBlockingUnderLock, kRuleAllocUnderLock,
      kRuleCallbackUnderLock, kRuleUnboundedGrowth,
      kRuleTransitiveLockOrder, kRuleDeadlockCycle, kRuleUnguardedField,
  };
  return rules;
}

std::string normalize_snippet(std::string_view line) {
  std::string out;
  bool in_space = true;  // also strips leading whitespace
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

namespace {

void collect_metric_names(const SourceFile& file, std::vector<NameUse>& out);

bool is_ordered_container(const Token& tok) {
  return tok.ident("map") || tok.ident("set") || tok.ident("multimap") ||
         tok.ident("multiset");
}

/// Shared shape of the two symbol collectors: `container<…> [&*const]
/// name` records `name`.
void collect_container_symbols(const SourceFile& file,
                               bool (*is_container)(const Token&),
                               std::set<std::string>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_container(t[i])) continue;
    std::size_t j = i + 1;
    if (j >= t.size() || !t[j].punct('<')) continue;
    j = skip_angles(t, j);
    // Reference/pointer/cv decoration between the type and the name.
    while (j < t.size() &&
           (t[j].punct('&') || t[j].punct('*') || t[j].ident("const")))
      ++j;
    if (j < t.size() && t[j].kind == TokKind::Ident &&
        cpp_keywords().count(t[j].text) == 0)
      out.insert(t[j].text);
  }
}

}  // namespace

void collect_facts(const SourceFile& file, FileFacts& out) {
  collect_container_symbols(file, [](const Token& tok) {
    return is_unordered_container(tok);
  }, out.unordered_symbols);
  collect_container_symbols(file, [](const Token& tok) {
    return is_ordered_container(tok);
  }, out.ordered_symbols);
  collect_metric_names(file, out.names);
  collect_concurrency_facts(file, out);
  collect_summaries(file, out);
}

void ScanContext::merge(const FileFacts& facts) {
  unordered_symbols.insert(facts.unordered_symbols.begin(),
                           facts.unordered_symbols.end());
  ordered_symbols.insert(facts.ordered_symbols.begin(),
                         facts.ordered_symbols.end());
  for (const auto& [name, enumerator] : facts.mutex_ranks) {
    auto [it, inserted] = mutex_enums_.emplace(name, enumerator);
    if (!inserted && it->second != enumerator) ambiguous_.insert(name);
  }
  for (const auto& [enumerator, value] : facts.rank_values)
    rank_values_[enumerator] = value;

  functions.insert(functions.end(), facts.summaries.begin(),
                   facts.summaries.end());
  callable_symbols.insert(facts.callable_symbols.begin(),
                          facts.callable_symbols.end());
  for (const auto& [cls, members] : facts.container_members)
    container_members[cls].insert(members.begin(), members.end());
  mutexed_classes.insert(facts.mutexed_classes.begin(),
                         facts.mutexed_classes.end());
  member_ops.insert(member_ops.end(), facts.member_ops.begin(),
                    facts.member_ops.end());
  for (const auto& [cls, members] : facts.class_mutexes)
    class_mutexes[cls].insert(members.begin(), members.end());
  for (const auto& [cls, members] : facts.class_fields)
    class_fields[cls].insert(members.begin(), members.end());
  for (const auto& [cls, members] : facts.class_guarded)
    class_guarded[cls].insert(members.begin(), members.end());
}

void ScanContext::resolve() {
  mutex_ranks.clear();
  for (const auto& [name, enumerator] : mutex_enums_) {
    if (ambiguous_.count(name) != 0) continue;
    auto it = rank_values_.find(enumerator);
    if (it != rank_values_.end()) mutex_ranks[name] = it->second;
  }
  graph.build(functions, callable_symbols);
  lockgraph.build(graph, functions, mutex_ranks);

  // Lock-relevant fields: annotated FIST_GUARDED_BY, or observed
  // accessed under one of the class's mutexes somewhere in the tree.
  locked_fields.clear();
  for (const auto& [cls, members] : class_guarded)
    for (const auto& m : members) locked_fields.insert(cls + "::" + m);
  for (const FunctionSummary& fn : functions) {
    std::size_t cut = fn.qname.rfind("::");
    if (cut == std::string::npos) continue;
    const std::string cls = fn.qname.substr(0, cut);
    auto cm = class_mutexes.find(cls);
    if (cm == class_mutexes.end()) continue;
    for (const FieldAccess& a : fn.fields) {
      for (int ri : a.regions) {
        if (ri < 0 ||
            static_cast<std::size_t>(ri) >= fn.lock_regions.size())
          continue;
        if (cm->second.count(fn.lock_regions[static_cast<std::size_t>(ri)]
                                 .mutex) != 0) {
          locked_fields.insert(cls + "::" + a.name);
          break;
        }
      }
    }
  }
}

std::string ScanContext::canonical_facts() const {
  std::string out;
  auto add = [&](std::string_view tag, const std::string& v) {
    out += tag;
    out += ':';
    out += v;
    out += '\n';
  };
  for (const auto& s : unordered_symbols) add("u", s);
  for (const auto& s : ordered_symbols) add("o", s);
  for (const auto& [name, enumerator] : mutex_enums_)
    add("me", name + "=" + enumerator);
  for (const auto& name : ambiguous_) add("amb", name);
  for (const auto& [enumerator, value] : rank_values_)
    add("rv", enumerator + "=" + std::to_string(value));
  for (const auto& [name, value] : mutex_ranks)
    add("mr", name + "=" + std::to_string(value));
  for (const auto& s : callable_symbols) add("cb", s);
  for (const auto& [cls, members] : container_members)
    for (const auto& m : members) add("cm", cls + "::" + m);
  for (const auto& cls : mutexed_classes) add("mx", cls);
  for (const auto& [cls, members] : class_mutexes)
    for (const auto& m : members) add("cmu", cls + "::" + m);
  for (const auto& [cls, members] : class_fields)
    for (const auto& m : members) add("fld", cls + "::" + m);
  for (const auto& [cls, members] : class_guarded)
    for (const auto& m : members) add("gf", cls + "::" + m);
  {
    // File/line-free: the owning file's content hash already covers
    // where the op sits; only the name/kind sets act cross-file.
    std::set<std::string> ops;
    for (const MemberOp& op : member_ops)
      ops.insert(op.member + "|" + op.method + "|" + (op.grow ? "g" : "s"));
    for (const auto& s : ops) add("mo", s);
  }
  {
    // Full summaries, file and lines included: witness chains quote
    // other files' positions, so a callee edit anywhere must change
    // the key.
    std::set<std::string> fns;
    for (const FunctionSummary& fn : functions) {
      std::string s = fn.qname;
      auto field = [&s](const std::string& v) {
        s += '|';
        s += v;
      };
      field(fn.file);
      field(std::to_string(fn.line));
      for (const LockRegion& r : fn.lock_regions) {
        s += ";lr";
        field(r.mutex);
        field(r.guard);
        field(std::to_string(r.line));
        field(r.try_lock ? "t" : "-");
        for (int x : r.regions) {
          s += ',';
          s += std::to_string(x);
        }
      }
      for (const CallSite& c : fn.calls) {
        s += ";cs";
        field(c.name);
        field(std::to_string(c.line));
        field(c.member ? "1" : "0");
        for (int x : c.regions) {
          s += ',';
          s += std::to_string(x);
        }
      }
      for (const EffectAtom& a : fn.atoms) {
        s += ";ea";
        field(std::to_string(a.kind));
        field(std::to_string(a.line));
        field(a.what);
        for (int x : a.regions) {
          s += ',';
          s += std::to_string(x);
        }
      }
      for (const FieldAccess& a : fn.fields) {
        s += ";fa";
        field(a.name);
        field(std::to_string(a.line));
        for (int x : a.regions) {
          s += ',';
          s += std::to_string(x);
        }
      }
      fns.insert(std::move(s));
    }
    for (const auto& s : fns) add("fn", s);
  }
  add("thr", std::to_string(hot_rank_threshold));
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1b — metric / span name collection
// ---------------------------------------------------------------------------

namespace {

void collect_metric_names(const SourceFile& file, std::vector<NameUse>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    bool metric_call =
        (t[i].ident("counter") || t[i].ident("gauge") ||
         t[i].ident("histogram")) &&
        i > 0 && t[i - 1].punct('.') && t[i + 1].punct('(') &&
        t[i + 2].kind == TokKind::Str;
    bool span_decl = t[i].ident("Span") &&
                     ((t[i + 1].punct('(') && t[i + 2].kind == TokKind::Str) ||
                      (i + 3 < t.size() && t[i + 1].kind == TokKind::Ident &&
                       t[i + 2].punct('(') && t[i + 3].kind == TokKind::Str));
    // flight_event("flight.x", ...) — flight recorder event types live
    // in the same docs/OBSERVABILITY.md registry as metric names.
    bool event_call = t[i].ident("flight_event") && t[i + 1].punct('(') &&
                      t[i + 2].kind == TokKind::Str;
    if (!metric_call && !span_decl && !event_call) continue;

    std::size_t lit = (metric_call || event_call) ? i + 2
                      : t[i + 1].punct('(')       ? i + 2
                                                  : i + 3;
    NameUse use;
    use.name = t[lit].text;
    use.file = file.rel;
    use.line = t[lit].line;
    // `counter("prefix." + expr)` — a dynamically completed name.
    use.prefix = lit + 1 < t.size() && t[lit + 1].punct('+');
    if (use.name.empty()) continue;
    out.push_back(std::move(use));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

namespace {

/// True when a `sort(…sym…)` / `stable_sort(…sym…)` call follows token
/// `from` before the enclosing block closes — the back half of the
/// sorted-copy idiom (fill a vector in bucket order, sort, emit).
bool sorted_later(const std::vector<Token>& t, std::size_t from,
                  const std::string& sym) {
  int depth = 0;
  for (std::size_t j = from; j < t.size(); ++j) {
    if (t[j].punct('{')) {
      ++depth;
    } else if (t[j].punct('}')) {
      if (--depth < 0) break;  // enclosing block closed — too late
    } else if ((t[j].ident("sort") || t[j].ident("stable_sort")) &&
               j + 1 < t.size() && t[j + 1].punct('(')) {
      std::size_t close = find_close_paren(t, j + 1);
      for (std::size_t k = j + 2; k < close; ++k)
        if (t[k].ident(sym)) return true;
    }
  }
  return false;
}

/// The sorted-copy idiom: every statement of the loop body only feeds
/// an order-restoring sink — an insert/emplace or subscript-assign
/// into a declared std::map/set, or a push_back into a vector that is
/// sorted before the enclosing block ends. Such a loop launders the
/// bucket order away, so iterating the unordered container is fine.
/// `body_begin`/`body_end` delimit the body tokens (braces excluded);
/// `after` is where the post-loop sort search starts.
bool sorted_copy_body(const std::vector<Token>& t, const ScanContext& ctx,
                      std::size_t body_begin, std::size_t body_end,
                      std::size_t after) {
  static const std::set<std::string> kMapInsert = {
      "insert", "emplace", "try_emplace", "emplace_hint",
      "insert_or_assign"};
  if (body_begin >= body_end) return false;  // empty body — not the idiom
  std::size_t stmt = body_begin;
  int depth = 0;
  for (std::size_t j = body_begin; j < body_end; ++j) {
    if (t[j].punct('(') || t[j].punct('[') || t[j].punct('{')) ++depth;
    if (t[j].punct(')') || t[j].punct(']') || t[j].punct('}')) --depth;
    if (!t[j].punct(';') || depth != 0) continue;
    // Statement [stmt, j): must start `sink . method (` or `sink [`.
    if (j < stmt + 2 || t[stmt].kind != TokKind::Ident) return false;
    const std::string& sym = t[stmt].text;
    bool ok = false;
    if (t[stmt + 1].punct('[')) {
      ok = ctx.ordered_symbols.count(sym) != 0;
    } else if (t[stmt + 1].punct('.') && stmt + 2 < j &&
               t[stmt + 2].kind == TokKind::Ident) {
      const std::string& method = t[stmt + 2].text;
      if (kMapInsert.count(method) != 0)
        ok = ctx.ordered_symbols.count(sym) != 0;
      else if (method == "push_back" || method == "emplace_back")
        ok = sorted_later(t, after, sym);
    }
    if (!ok) return false;
    stmt = j + 1;
  }
  return stmt > body_begin &&  // at least one full statement seen
         stmt >= body_end;     // no trailing non-statement tokens
}

void rule_unordered_iter(const SourceFile& file, const ScanContext& ctx,
                         std::vector<Finding>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident("for") || !t[i + 1].punct('(')) continue;
    std::size_t open = i + 1;
    std::size_t close = find_close_paren(t, open);

    // Range-for: the ':' at paren depth 1 that is not part of '::'.
    std::size_t colon = 0;
    std::size_t depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (t[j].punct('(') || t[j].punct('[') || t[j].punct('{')) ++depth;
      if (t[j].punct(')') || t[j].punct(']') || t[j].punct('}')) --depth;
      if (depth == 1 && t[j].punct(':') &&
          !(j > 0 && t[j - 1].punct(':')) &&
          !(j + 1 < t.size() && t[j + 1].punct(':'))) {
        colon = j;
        break;
      }
    }

    if (colon != 0) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        bool hit = is_unordered_container(t[j]) ||
                   (t[j].kind == TokKind::Ident &&
                    ctx.unordered_symbols.count(t[j].text) != 0);
        if (hit) {
          // Loop body bounds, for the sorted-copy idiom check.
          std::size_t body_begin = 0, body_end = 0, after = 0;
          if (close + 1 < t.size() && t[close + 1].punct('{')) {
            std::size_t d = 0, b = close + 1;
            for (; b < t.size(); ++b) {
              if (t[b].punct('{')) ++d;
              if (t[b].punct('}') && --d == 0) break;
            }
            body_begin = close + 2;
            body_end = b;
            after = b + 1;
          } else {
            std::size_t d = 0, s = close + 1;
            for (; s < t.size(); ++s) {
              if (t[s].punct('(') || t[s].punct('[') || t[s].punct('{')) ++d;
              if (t[s].punct(')') || t[s].punct(']') || t[s].punct('}')) --d;
              if (t[s].punct(';') && d == 0) break;
            }
            body_begin = close + 1;
            body_end = s + 1;  // include the ';'
            after = s + 1;
          }
          if (!sorted_copy_body(t, ctx, body_begin, body_end, after))
            out.push_back(make_finding(
                file, kRuleUnorderedIter, t[i].line,
                "range-for over unordered container `" + t[j].text +
                    "` — bucket order is not deterministic; iterate a "
                    "sorted copy or justify with an allow"));
          break;
        }
      }
      continue;
    }

    // Classic iterator loop: `for (auto it = m.begin(); ...)` with m
    // unordered.
    for (std::size_t j = open; j + 2 < close; ++j) {
      if (t[j].kind == TokKind::Ident &&
          ctx.unordered_symbols.count(t[j].text) != 0 &&
          t[j + 1].punct('.') &&
          (t[j + 2].ident("begin") || t[j + 2].ident("cbegin"))) {
        out.push_back(make_finding(
            file, kRuleUnorderedIter, t[i].line,
            "iterator loop over unordered container `" + t[j].text +
                "` — bucket order is not deterministic; iterate a sorted "
                "copy or justify with an allow"));
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pointer-order
// ---------------------------------------------------------------------------

void rule_pointer_order(const SourceFile& file, std::vector<Finding>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    bool ordered = t[i].ident("map") || t[i].ident("set") ||
                   t[i].ident("multimap") || t[i].ident("multiset") ||
                   t[i].ident("less") || t[i].ident("greater");
    bool hashed = is_unordered_container(t[i]) || t[i].ident("hash");
    if (!ordered && !hashed) continue;
    // Demand a std:: (or absl-style) qualification so a user type
    // named `map` cannot trip the rule.
    if (!(i >= 2 && t[i - 1].punct(':') && t[i - 2].punct(':'))) continue;
    if (!t[i + 1].punct('<')) continue;

    // First template argument: tokens until the first ',' at depth 1.
    std::size_t depth = 0;
    bool pointer_key = false;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].punct('<')) ++depth;
      if (t[j].punct('>') && --depth == 0) break;
      if (t[j].punct(';') || t[j].punct('{')) break;  // not a template
      if (depth == 1 && t[j].punct(',')) break;
      if (depth >= 1 && t[j].punct('*')) pointer_key = true;
    }
    if (!pointer_key) continue;
    out.push_back(make_finding(
        file, kRulePointerOrder, t[i].line,
        std::string("pointer-keyed `") + t[i].text +
            "` — allocator addresses vary run to run, so " +
            (ordered ? "the ordering" : "the hash placement") +
            " is nondeterministic; key by a stable id instead"));
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-random
// ---------------------------------------------------------------------------

bool random_allowed_path(const std::string& rel) {
  return path_has_prefix(rel, "src/sim/") ||
         path_has_prefix(rel, "src/core/fault") ||
         path_has_prefix(rel, "src/util/rng");
}

void rule_banned_random(const SourceFile& file, std::vector<Finding>& out) {
  if (random_allowed_path(file.rel)) return;
  const auto& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    bool member = i > 0 && (t[i - 1].punct('.') ||
                            (i > 1 && t[i - 1].punct('>') &&
                             t[i - 2].punct('-')));
    if (t[i].ident("random_device") && !member) {
      out.push_back(make_finding(
          file, kRuleBannedRandom, t[i].line,
          "std::random_device — entropy source outside the seeded "
          "registries; thread Rng (util/rng.hpp) through instead"));
      continue;
    }
    if ((t[i].ident("rand") || t[i].ident("srand")) && !member &&
        i + 1 < t.size() && t[i + 1].punct('(')) {
      out.push_back(make_finding(
          file, kRuleBannedRandom, t[i].line,
          "std::" + t[i].text +
              " — global, unseeded RNG; thread Rng (util/rng.hpp) "
              "through instead"));
      continue;
    }
    if (t[i].ident("time") && !member && i + 1 < t.size() &&
        t[i + 1].punct('(')) {
      std::size_t close = find_close_paren(t, i + 1);
      if (close == i + 3 &&
          (t[i + 2].ident("nullptr") || t[i + 2].ident("NULL") ||
           t[i + 2].is("0"))) {
        out.push_back(make_finding(
            file, kRuleBannedRandom, t[i].line,
            "time(" + t[i + 2].text +
                ") — wall-clock seed/input makes runs unreproducible"));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: uninit-serialized-pod
// ---------------------------------------------------------------------------

bool is_scalar_type_token(const Token& tok) {
  if (tok.kind != TokKind::Ident) return false;
  static const std::set<std::string> builtin = {
      "bool", "char", "short", "int", "long", "unsigned", "signed",
      "float", "double",
      // fixed-width + size types
      "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "size_t", "ptrdiff_t", "intptr_t",
      "uintptr_t",
      // repo-local integral aliases that end up on the wire
      "Amount", "AddrId", "ClusterId", "ActorId", "TxIndex", "SimTime",
  };
  return builtin.count(tok.text) != 0;
}

void rule_uninit_pod(const SourceFile& file, std::vector<Finding>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].ident("struct") || t[i].ident("class"))) continue;
    if (t[i + 1].kind != TokKind::Ident) continue;  // anonymous
    const std::string& name = t[i + 1].text;

    // Find the '{' opening the body (skipping base clauses); bail on
    // forward declarations.
    std::size_t open = i + 2;
    while (open < t.size() && !t[open].punct('{') && !t[open].punct(';'))
      ++open;
    if (open >= t.size() || t[open].punct(';')) continue;

    std::size_t depth = 0;
    std::size_t close = open;
    for (; close < t.size(); ++close) {
      if (t[close].punct('{')) ++depth;
      if (t[close].punct('}') && --depth == 0) break;
    }

    // Only structs that cross the serialization boundary, and only
    // when no user constructor takes responsibility for members.
    bool serialized = false;
    bool has_ctor = false;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].ident("serialize") || t[j].ident("deserialize"))
        serialized = true;
      // `Name(` inside the body — a constructor declaration (or a
      // call constructing one, which over-approximates toward
      // skipping: fine, a ctor'd struct owns its initialization).
      // `~Name(` is a destructor and initializes nothing.
      if (t[j].ident(name) && j + 1 < close && t[j + 1].punct('(') &&
          !(j > 0 && t[j - 1].punct('~')))
        has_ctor = true;
    }
    if (!serialized || has_ctor) continue;

    // Walk the direct members (depth 1 inside the body).
    depth = 0;
    std::size_t stmt_begin = open + 1;
    for (std::size_t j = open; j <= close && j < t.size(); ++j) {
      if (t[j].punct('{')) {
        ++depth;
        if (depth == 2) {
          // Inline function/initializer body — skip it wholesale.
          std::size_t d = 0;
          std::size_t k = j;
          for (; k < t.size(); ++k) {
            if (t[k].punct('{')) ++d;
            if (t[k].punct('}') && --d == 0) break;
          }
          j = k;
          --depth;
          stmt_begin = j + 1;
        }
        continue;
      }
      if (t[j].punct('}')) {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (t[j].punct(';') || (t[j].punct(':') && !(j > 0 && t[j - 1].punct(':')) &&
                              !(j + 1 < t.size() && t[j + 1].punct(':')))) {
        // End of a member statement (or an access-specifier label).
        if (t[j].punct(';') && j > stmt_begin) {
          // Candidate declaration: [type tokens] name ;
          std::size_t last = j - 1;
          bool simple = t[last].kind == TokKind::Ident &&
                        cpp_keywords().count(t[last].text) == 0 &&
                        !is_scalar_type_token(t[last]);
          bool scalar = false;
          for (std::size_t k = stmt_begin; simple && k < last; ++k) {
            const Token& tok = t[k];
            if (is_scalar_type_token(tok)) {
              scalar = true;
            } else if (tok.ident("std") || tok.ident("const") ||
                       tok.punct(':')) {
              // qualification — fine
            } else {
              simple = false;  // '=', '{', '(', other types, attributes…
            }
          }
          if (simple && scalar) {
            out.push_back(make_finding(
                file, kRuleUninitPod, t[last].line,
                "member `" + t[last].text + "` of serialized struct `" +
                    name +
                    "` has no initializer — uninitialized scalars make "
                    "serialized output nondeterministic"));
          }
        }
        stmt_begin = j + 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-amount
// ---------------------------------------------------------------------------

bool amountish(const std::string& ident) {
  if (ident == "Amount") return true;
  std::string low = lowercase(ident);
  return low.find("amount") != std::string::npos ||
         low.find("satoshi") != std::string::npos ||
         low.find("balance") != std::string::npos ||
         low.find("btc") != std::string::npos || low == "fee" ||
         low == "fees";
}

void rule_float_amount(const SourceFile& file, std::vector<Finding>& out) {
  const auto& t = file.tokens;
  int reported_line = 0;
  for (std::size_t i = 0; i < t.size();) {
    int line = t[i].line;
    bool has_float = false;
    bool has_amount = false;
    std::size_t j = i;
    for (; j < t.size() && t[j].line == line; ++j) {
      if (t[j].ident("float") || t[j].ident("double")) has_float = true;
      if (t[j].kind == TokKind::Ident && amountish(t[j].text))
        has_amount = true;
    }
    if (has_float && has_amount && line != reported_line) {
      out.push_back(make_finding(
          file, kRuleFloatAmount, line,
          "float/double arithmetic touching a satoshi amount — FP "
          "rounding is association-order-sensitive; keep Amount math "
          "integral (util/amount.hpp is the conversion boundary)"));
      reported_line = line;
    }
    i = j;
  }
}

}  // namespace

std::vector<Finding> run_file_rules(const SourceFile& file,
                                    const ScanContext& ctx) {
  std::vector<Finding> out;
  rule_unordered_iter(file, ctx, out);
  rule_pointer_order(file, out);
  rule_banned_random(file, out);
  rule_uninit_pod(file, out);
  rule_float_amount(file, out);
  run_concurrency_rules(file, ctx, out);
  run_effect_rules(file, ctx, out);
  run_lockgraph_rules(file, ctx, out);
  return out;
}

// ---------------------------------------------------------------------------
// docs-drift
// ---------------------------------------------------------------------------

namespace {

struct DocEntry {
  std::string name;    ///< as written, e.g. "fault.injected.<site>"
  std::string prefix;  ///< text before '<' when a wildcard, else empty
  int line = 0;
};

bool name_char(char c) {
  return std::islower(static_cast<unsigned char>(c)) ||
         std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '<' || c == '>';
}

/// Backticked names inside the fistlint:names markers.
std::vector<DocEntry> parse_doc_registry(std::string_view doc) {
  std::vector<DocEntry> out;
  std::size_t begin = doc.find("fistlint:names:begin");
  std::size_t end = doc.find("fistlint:names:end");
  if (begin == std::string_view::npos || end == std::string_view::npos ||
      end < begin)
    return out;

  int line = 1;
  for (std::size_t j = 0; j < begin; ++j)
    if (doc[j] == '\n') ++line;

  for (std::size_t i = begin; i < end; ++i) {
    if (doc[i] == '\n') {
      ++line;
      continue;
    }
    if (doc[i] != '`') continue;
    std::size_t close = i + 1;
    while (close < end && doc[close] != '`' && doc[close] != '\n') ++close;
    if (close >= end || doc[close] != '`') continue;
    std::string_view body = doc.substr(i + 1, close - i - 1);
    bool ok = !body.empty() && body.find('.') != std::string_view::npos;
    for (char c : body)
      if (!name_char(c)) ok = false;
    if (ok) {
      DocEntry e;
      e.name = std::string(body);
      e.line = line;
      std::size_t lt = e.name.find('<');
      if (lt != std::string::npos) e.prefix = e.name.substr(0, lt);
      out.push_back(std::move(e));
    }
    i = close;
  }
  return out;
}

}  // namespace

std::vector<Finding> docs_drift(const std::vector<NameUse>& code_names,
                                std::string_view doc_text,
                                const std::string& doc_rel) {
  std::vector<Finding> out;
  std::vector<DocEntry> doc = parse_doc_registry(doc_text);
  if (doc.empty()) {
    Finding f;
    f.rule = kRuleDocsDrift;
    f.file = doc_rel;
    f.line = 1;
    f.message =
        "no name registry found (expected backticked metric/span names "
        "between `fistlint:names:begin` and `fistlint:names:end` markers)";
    f.snippet = "<registry-missing>";
    out.push_back(std::move(f));
    return out;
  }

  auto doc_matches = [&](const NameUse& use) {
    for (const DocEntry& e : doc) {
      if (!e.prefix.empty()) {
        // Wildcard entry: matches a dynamic prefix exactly, or a
        // literal name extending the prefix.
        if (use.prefix ? use.name == e.prefix
                       : use.name.rfind(e.prefix, 0) == 0)
          return true;
      } else if (!use.prefix && use.name == e.name) {
        return true;
      }
    }
    return false;
  };

  // Code → docs.
  for (const NameUse& use : code_names) {
    if (doc_matches(use)) continue;
    Finding f;
    f.rule = kRuleDocsDrift;
    f.file = use.file;
    f.line = use.line;
    f.message = "metric/span name `" + use.name +
                (use.prefix ? "<…>`" : "`") +
                " is not in the docs/OBSERVABILITY.md name registry";
    f.snippet = "name:" + use.name;
    out.push_back(std::move(f));
  }

  // Docs → code.
  for (const DocEntry& e : doc) {
    bool used = false;
    for (const NameUse& use : code_names) {
      if (!e.prefix.empty()) {
        if (use.prefix ? use.name == e.prefix
                       : use.name.rfind(e.prefix, 0) == 0) {
          used = true;
          break;
        }
      } else if (!use.prefix && use.name == e.name) {
        used = true;
        break;
      }
    }
    if (used) continue;
    Finding f;
    f.rule = kRuleDocsDrift;
    f.file = doc_rel;
    f.line = e.line;
    f.message = "documented name `" + e.name +
                "` has no use in the scanned sources — stale registry row?";
    f.snippet = "doc:" + e.name;
    out.push_back(std::move(f));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

std::vector<Finding> apply_allows(std::vector<Finding> findings,
                                  const SourceFile& file) {
  std::vector<Finding> out;

  auto covers = [](const Allow& a, const Finding& f) {
    for (const std::string& r : a.rules)
      if (r == f.rule || r == "all") return true;
    return false;
  };

  // An own-line allow covers the next line that carries any tokens —
  // blank lines and further comment lines (a multi-line reason) sit
  // between the allow and the code it annotates without breaking it.
  auto next_code_line = [&file](int after) -> int {
    for (const Token& t : file.tokens)
      if (t.line > after) return t.line;
    return 0;
  };

  for (Finding& f : findings) {
    bool suppressed = false;
    for (const Allow& a : file.allows) {
      if (a.reason.empty()) continue;  // reported below, never honored
      bool in_scope = a.file_scope || a.line == f.line ||
                      (a.own_line && next_code_line(a.line) == f.line);
      if (in_scope && covers(a, f)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  for (const Allow& a : file.allows) {
    if (!a.reason.empty()) continue;
    out.push_back(make_finding(
        file, kRuleBadSuppression, a.line,
        "fistlint:allow without a reason — write why the site is safe"));
  }
  return out;
}

}  // namespace fistlint
