#include "rules.hpp"

#include <algorithm>
#include <cctype>

namespace fistlint {

namespace {

// ---------------------------------------------------------------------------
// Small token-stream helpers
// ---------------------------------------------------------------------------

/// `i` indexes a '<'. Returns the index just past the matching '>', or
/// `i + 1` when the run clearly is not a template argument list
/// (statement punctuation before the close). `>>` arrives as two '>'
/// tokens, so a plain depth count is exact.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('<')) {
      ++depth;
    } else if (t[j].punct('>')) {
      if (--depth == 0) return j + 1;
    } else if (t[j].punct(';') || t[j].punct('{') || t[j].punct('}')) {
      break;  // ran off the declaration — treat as a comparison
    }
  }
  return i + 1;
}

/// `i` indexes a '('. Returns the index of the matching ')' (or the
/// end of the stream).
std::size_t find_close_paren(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('(')) ++depth;
    if (t[j].punct(')') && --depth == 0) return j;
  }
  return t.size();
}

bool is_unordered_container(const Token& tok) {
  return tok.ident("unordered_map") || tok.ident("unordered_set") ||
         tok.ident("unordered_multimap") || tok.ident("unordered_multiset");
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool path_has_prefix(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

Finding make_finding(const SourceFile& file, const char* rule, int line,
                     std::string message) {
  return Finding{rule, file.rel, line, std::move(message),
                 normalize_snippet(file.line_text(line))};
}

// ---------------------------------------------------------------------------
// Pass 1a — unordered symbol collection
// ---------------------------------------------------------------------------

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "const",    "constexpr", "static", "inline", "mutable", "volatile",
      "noexcept", "override",  "final",  "return", "auto",    "if",
      "for",      "while",     "else",   "new",    "delete",  "this",
  };
  return kw;
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules = {
      kRuleUnorderedIter, kRulePointerOrder, kRuleBannedRandom,
      kRuleUninitPod,     kRuleFloatAmount,  kRuleDocsDrift,
      kRuleBadSuppression,
  };
  return rules;
}

std::string normalize_snippet(std::string_view line) {
  std::string out;
  bool in_space = true;  // also strips leading whitespace
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

void collect_unordered_symbols(const SourceFile& file,
                               std::set<std::string>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_unordered_container(t[i])) continue;
    std::size_t j = i + 1;
    if (j >= t.size() || !t[j].punct('<')) continue;
    j = skip_angles(t, j);
    // Reference/pointer/cv decoration between the type and the name.
    while (j < t.size() &&
           (t[j].punct('&') || t[j].punct('*') || t[j].ident("const")))
      ++j;
    if (j < t.size() && t[j].kind == TokKind::Ident &&
        cpp_keywords().count(t[j].text) == 0)
      out.insert(t[j].text);
  }
}

// ---------------------------------------------------------------------------
// Pass 1b — metric / span name collection
// ---------------------------------------------------------------------------

void collect_metric_names(const SourceFile& file, std::vector<NameUse>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    bool metric_call =
        (t[i].ident("counter") || t[i].ident("gauge") ||
         t[i].ident("histogram")) &&
        i > 0 && t[i - 1].punct('.') && t[i + 1].punct('(') &&
        t[i + 2].kind == TokKind::Str;
    bool span_decl = t[i].ident("Span") &&
                     ((t[i + 1].punct('(') && t[i + 2].kind == TokKind::Str) ||
                      (i + 3 < t.size() && t[i + 1].kind == TokKind::Ident &&
                       t[i + 2].punct('(') && t[i + 3].kind == TokKind::Str));
    if (!metric_call && !span_decl) continue;

    std::size_t lit = metric_call ? i + 2
                      : t[i + 1].punct('(') ? i + 2
                                            : i + 3;
    NameUse use;
    use.name = t[lit].text;
    use.file = file.rel;
    use.line = t[lit].line;
    // `counter("prefix." + expr)` — a dynamically completed name.
    use.prefix = lit + 1 < t.size() && t[lit + 1].punct('+');
    if (use.name.empty()) continue;
    out.push_back(std::move(use));
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-iter
// ---------------------------------------------------------------------------

namespace {

void rule_unordered_iter(const SourceFile& file, const ScanContext& ctx,
                         std::vector<Finding>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident("for") || !t[i + 1].punct('(')) continue;
    std::size_t open = i + 1;
    std::size_t close = find_close_paren(t, open);

    // Range-for: the ':' at paren depth 1 that is not part of '::'.
    std::size_t colon = 0;
    std::size_t depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (t[j].punct('(') || t[j].punct('[') || t[j].punct('{')) ++depth;
      if (t[j].punct(')') || t[j].punct(']') || t[j].punct('}')) --depth;
      if (depth == 1 && t[j].punct(':') &&
          !(j > 0 && t[j - 1].punct(':')) &&
          !(j + 1 < t.size() && t[j + 1].punct(':'))) {
        colon = j;
        break;
      }
    }

    if (colon != 0) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        bool hit = is_unordered_container(t[j]) ||
                   (t[j].kind == TokKind::Ident &&
                    ctx.unordered_symbols.count(t[j].text) != 0);
        if (hit) {
          out.push_back(make_finding(
              file, kRuleUnorderedIter, t[i].line,
              "range-for over unordered container `" + t[j].text +
                  "` — bucket order is not deterministic; iterate a "
                  "sorted copy or justify with an allow"));
          break;
        }
      }
      continue;
    }

    // Classic iterator loop: `for (auto it = m.begin(); ...)` with m
    // unordered.
    for (std::size_t j = open; j + 2 < close; ++j) {
      if (t[j].kind == TokKind::Ident &&
          ctx.unordered_symbols.count(t[j].text) != 0 &&
          t[j + 1].punct('.') &&
          (t[j + 2].ident("begin") || t[j + 2].ident("cbegin"))) {
        out.push_back(make_finding(
            file, kRuleUnorderedIter, t[i].line,
            "iterator loop over unordered container `" + t[j].text +
                "` — bucket order is not deterministic; iterate a sorted "
                "copy or justify with an allow"));
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pointer-order
// ---------------------------------------------------------------------------

void rule_pointer_order(const SourceFile& file, std::vector<Finding>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    bool ordered = t[i].ident("map") || t[i].ident("set") ||
                   t[i].ident("multimap") || t[i].ident("multiset") ||
                   t[i].ident("less") || t[i].ident("greater");
    bool hashed = is_unordered_container(t[i]) || t[i].ident("hash");
    if (!ordered && !hashed) continue;
    // Demand a std:: (or absl-style) qualification so a user type
    // named `map` cannot trip the rule.
    if (!(i >= 2 && t[i - 1].punct(':') && t[i - 2].punct(':'))) continue;
    if (!t[i + 1].punct('<')) continue;

    // First template argument: tokens until the first ',' at depth 1.
    std::size_t depth = 0;
    bool pointer_key = false;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].punct('<')) ++depth;
      if (t[j].punct('>') && --depth == 0) break;
      if (t[j].punct(';') || t[j].punct('{')) break;  // not a template
      if (depth == 1 && t[j].punct(',')) break;
      if (depth >= 1 && t[j].punct('*')) pointer_key = true;
    }
    if (!pointer_key) continue;
    out.push_back(make_finding(
        file, kRulePointerOrder, t[i].line,
        std::string("pointer-keyed `") + t[i].text +
            "` — allocator addresses vary run to run, so " +
            (ordered ? "the ordering" : "the hash placement") +
            " is nondeterministic; key by a stable id instead"));
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-random
// ---------------------------------------------------------------------------

bool random_allowed_path(const std::string& rel) {
  return path_has_prefix(rel, "src/sim/") ||
         path_has_prefix(rel, "src/core/fault") ||
         path_has_prefix(rel, "src/util/rng");
}

void rule_banned_random(const SourceFile& file, std::vector<Finding>& out) {
  if (random_allowed_path(file.rel)) return;
  const auto& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    bool member = i > 0 && (t[i - 1].punct('.') ||
                            (i > 1 && t[i - 1].punct('>') &&
                             t[i - 2].punct('-')));
    if (t[i].ident("random_device") && !member) {
      out.push_back(make_finding(
          file, kRuleBannedRandom, t[i].line,
          "std::random_device — entropy source outside the seeded "
          "registries; thread Rng (util/rng.hpp) through instead"));
      continue;
    }
    if ((t[i].ident("rand") || t[i].ident("srand")) && !member &&
        i + 1 < t.size() && t[i + 1].punct('(')) {
      out.push_back(make_finding(
          file, kRuleBannedRandom, t[i].line,
          "std::" + t[i].text +
              " — global, unseeded RNG; thread Rng (util/rng.hpp) "
              "through instead"));
      continue;
    }
    if (t[i].ident("time") && !member && i + 1 < t.size() &&
        t[i + 1].punct('(')) {
      std::size_t close = find_close_paren(t, i + 1);
      if (close == i + 3 &&
          (t[i + 2].ident("nullptr") || t[i + 2].ident("NULL") ||
           t[i + 2].is("0"))) {
        out.push_back(make_finding(
            file, kRuleBannedRandom, t[i].line,
            "time(" + t[i + 2].text +
                ") — wall-clock seed/input makes runs unreproducible"));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: uninit-serialized-pod
// ---------------------------------------------------------------------------

bool is_scalar_type_token(const Token& tok) {
  if (tok.kind != TokKind::Ident) return false;
  static const std::set<std::string> builtin = {
      "bool", "char", "short", "int", "long", "unsigned", "signed",
      "float", "double",
      // fixed-width + size types
      "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
      "uint32_t", "uint64_t", "size_t", "ptrdiff_t", "intptr_t",
      "uintptr_t",
      // repo-local integral aliases that end up on the wire
      "Amount", "AddrId", "ClusterId", "ActorId", "TxIndex", "SimTime",
  };
  return builtin.count(tok.text) != 0;
}

void rule_uninit_pod(const SourceFile& file, std::vector<Finding>& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].ident("struct") || t[i].ident("class"))) continue;
    if (t[i + 1].kind != TokKind::Ident) continue;  // anonymous
    const std::string& name = t[i + 1].text;

    // Find the '{' opening the body (skipping base clauses); bail on
    // forward declarations.
    std::size_t open = i + 2;
    while (open < t.size() && !t[open].punct('{') && !t[open].punct(';'))
      ++open;
    if (open >= t.size() || t[open].punct(';')) continue;

    std::size_t depth = 0;
    std::size_t close = open;
    for (; close < t.size(); ++close) {
      if (t[close].punct('{')) ++depth;
      if (t[close].punct('}') && --depth == 0) break;
    }

    // Only structs that cross the serialization boundary, and only
    // when no user constructor takes responsibility for members.
    bool serialized = false;
    bool has_ctor = false;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].ident("serialize") || t[j].ident("deserialize"))
        serialized = true;
      // `Name(` inside the body — a constructor declaration (or a
      // call constructing one, which over-approximates toward
      // skipping: fine, a ctor'd struct owns its initialization).
      // `~Name(` is a destructor and initializes nothing.
      if (t[j].ident(name) && j + 1 < close && t[j + 1].punct('(') &&
          !(j > 0 && t[j - 1].punct('~')))
        has_ctor = true;
    }
    if (!serialized || has_ctor) continue;

    // Walk the direct members (depth 1 inside the body).
    depth = 0;
    std::size_t stmt_begin = open + 1;
    for (std::size_t j = open; j <= close && j < t.size(); ++j) {
      if (t[j].punct('{')) {
        ++depth;
        if (depth == 2) {
          // Inline function/initializer body — skip it wholesale.
          std::size_t d = 0;
          std::size_t k = j;
          for (; k < t.size(); ++k) {
            if (t[k].punct('{')) ++d;
            if (t[k].punct('}') && --d == 0) break;
          }
          j = k;
          --depth;
          stmt_begin = j + 1;
        }
        continue;
      }
      if (t[j].punct('}')) {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (t[j].punct(';') || (t[j].punct(':') && !(j > 0 && t[j - 1].punct(':')) &&
                              !(j + 1 < t.size() && t[j + 1].punct(':')))) {
        // End of a member statement (or an access-specifier label).
        if (t[j].punct(';') && j > stmt_begin) {
          // Candidate declaration: [type tokens] name ;
          std::size_t last = j - 1;
          bool simple = t[last].kind == TokKind::Ident &&
                        cpp_keywords().count(t[last].text) == 0 &&
                        !is_scalar_type_token(t[last]);
          bool scalar = false;
          for (std::size_t k = stmt_begin; simple && k < last; ++k) {
            const Token& tok = t[k];
            if (is_scalar_type_token(tok)) {
              scalar = true;
            } else if (tok.ident("std") || tok.ident("const") ||
                       tok.punct(':')) {
              // qualification — fine
            } else {
              simple = false;  // '=', '{', '(', other types, attributes…
            }
          }
          if (simple && scalar) {
            out.push_back(make_finding(
                file, kRuleUninitPod, t[last].line,
                "member `" + t[last].text + "` of serialized struct `" +
                    name +
                    "` has no initializer — uninitialized scalars make "
                    "serialized output nondeterministic"));
          }
        }
        stmt_begin = j + 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: float-amount
// ---------------------------------------------------------------------------

bool amountish(const std::string& ident) {
  if (ident == "Amount") return true;
  std::string low = lowercase(ident);
  return low.find("amount") != std::string::npos ||
         low.find("satoshi") != std::string::npos ||
         low.find("balance") != std::string::npos ||
         low.find("btc") != std::string::npos || low == "fee" ||
         low == "fees";
}

void rule_float_amount(const SourceFile& file, std::vector<Finding>& out) {
  const auto& t = file.tokens;
  int reported_line = 0;
  for (std::size_t i = 0; i < t.size();) {
    int line = t[i].line;
    bool has_float = false;
    bool has_amount = false;
    std::size_t j = i;
    for (; j < t.size() && t[j].line == line; ++j) {
      if (t[j].ident("float") || t[j].ident("double")) has_float = true;
      if (t[j].kind == TokKind::Ident && amountish(t[j].text))
        has_amount = true;
    }
    if (has_float && has_amount && line != reported_line) {
      out.push_back(make_finding(
          file, kRuleFloatAmount, line,
          "float/double arithmetic touching a satoshi amount — FP "
          "rounding is association-order-sensitive; keep Amount math "
          "integral (util/amount.hpp is the conversion boundary)"));
      reported_line = line;
    }
    i = j;
  }
}

}  // namespace

std::vector<Finding> run_file_rules(const SourceFile& file,
                                    const ScanContext& ctx) {
  std::vector<Finding> out;
  rule_unordered_iter(file, ctx, out);
  rule_pointer_order(file, out);
  rule_banned_random(file, out);
  rule_uninit_pod(file, out);
  rule_float_amount(file, out);
  return out;
}

// ---------------------------------------------------------------------------
// docs-drift
// ---------------------------------------------------------------------------

namespace {

struct DocEntry {
  std::string name;    ///< as written, e.g. "fault.injected.<site>"
  std::string prefix;  ///< text before '<' when a wildcard, else empty
  int line = 0;
};

bool name_char(char c) {
  return std::islower(static_cast<unsigned char>(c)) ||
         std::isdigit(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '<' || c == '>';
}

/// Backticked names inside the fistlint:names markers.
std::vector<DocEntry> parse_doc_registry(std::string_view doc) {
  std::vector<DocEntry> out;
  std::size_t begin = doc.find("fistlint:names:begin");
  std::size_t end = doc.find("fistlint:names:end");
  if (begin == std::string_view::npos || end == std::string_view::npos ||
      end < begin)
    return out;

  int line = 1;
  for (std::size_t j = 0; j < begin; ++j)
    if (doc[j] == '\n') ++line;

  for (std::size_t i = begin; i < end; ++i) {
    if (doc[i] == '\n') {
      ++line;
      continue;
    }
    if (doc[i] != '`') continue;
    std::size_t close = i + 1;
    while (close < end && doc[close] != '`' && doc[close] != '\n') ++close;
    if (close >= end || doc[close] != '`') continue;
    std::string_view body = doc.substr(i + 1, close - i - 1);
    bool ok = !body.empty() && body.find('.') != std::string_view::npos;
    for (char c : body)
      if (!name_char(c)) ok = false;
    if (ok) {
      DocEntry e;
      e.name = std::string(body);
      e.line = line;
      std::size_t lt = e.name.find('<');
      if (lt != std::string::npos) e.prefix = e.name.substr(0, lt);
      out.push_back(std::move(e));
    }
    i = close;
  }
  return out;
}

}  // namespace

std::vector<Finding> docs_drift(const std::vector<NameUse>& code_names,
                                std::string_view doc_text,
                                const std::string& doc_rel) {
  std::vector<Finding> out;
  std::vector<DocEntry> doc = parse_doc_registry(doc_text);
  if (doc.empty()) {
    Finding f;
    f.rule = kRuleDocsDrift;
    f.file = doc_rel;
    f.line = 1;
    f.message =
        "no name registry found (expected backticked metric/span names "
        "between `fistlint:names:begin` and `fistlint:names:end` markers)";
    f.snippet = "<registry-missing>";
    out.push_back(std::move(f));
    return out;
  }

  auto doc_matches = [&](const NameUse& use) {
    for (const DocEntry& e : doc) {
      if (!e.prefix.empty()) {
        // Wildcard entry: matches a dynamic prefix exactly, or a
        // literal name extending the prefix.
        if (use.prefix ? use.name == e.prefix
                       : use.name.rfind(e.prefix, 0) == 0)
          return true;
      } else if (!use.prefix && use.name == e.name) {
        return true;
      }
    }
    return false;
  };

  // Code → docs.
  for (const NameUse& use : code_names) {
    if (doc_matches(use)) continue;
    Finding f;
    f.rule = kRuleDocsDrift;
    f.file = use.file;
    f.line = use.line;
    f.message = "metric/span name `" + use.name +
                (use.prefix ? "<…>`" : "`") +
                " is not in the docs/OBSERVABILITY.md name registry";
    f.snippet = "name:" + use.name;
    out.push_back(std::move(f));
  }

  // Docs → code.
  for (const DocEntry& e : doc) {
    bool used = false;
    for (const NameUse& use : code_names) {
      if (!e.prefix.empty()) {
        if (use.prefix ? use.name == e.prefix
                       : use.name.rfind(e.prefix, 0) == 0) {
          used = true;
          break;
        }
      } else if (!use.prefix && use.name == e.name) {
        used = true;
        break;
      }
    }
    if (used) continue;
    Finding f;
    f.rule = kRuleDocsDrift;
    f.file = doc_rel;
    f.line = e.line;
    f.message = "documented name `" + e.name +
                "` has no use in the scanned sources — stale registry row?";
    f.snippet = "doc:" + e.name;
    out.push_back(std::move(f));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

std::vector<Finding> apply_allows(std::vector<Finding> findings,
                                  const SourceFile& file) {
  std::vector<Finding> out;

  auto covers = [](const Allow& a, const Finding& f) {
    for (const std::string& r : a.rules)
      if (r == f.rule || r == "all") return true;
    return false;
  };

  // An own-line allow covers the next line that carries any tokens —
  // blank lines and further comment lines (a multi-line reason) sit
  // between the allow and the code it annotates without breaking it.
  auto next_code_line = [&file](int after) -> int {
    for (const Token& t : file.tokens)
      if (t.line > after) return t.line;
    return 0;
  };

  for (Finding& f : findings) {
    bool suppressed = false;
    for (const Allow& a : file.allows) {
      if (a.reason.empty()) continue;  // reported below, never honored
      bool in_scope = a.file_scope || a.line == f.line ||
                      (a.own_line && next_code_line(a.line) == f.line);
      if (in_scope && covers(a, f)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  for (const Allow& a : file.allows) {
    if (!a.reason.empty()) continue;
    out.push_back(make_finding(
        file, kRuleBadSuppression, a.line,
        "fistlint:allow without a reason — write why the site is safe"));
  }
  return out;
}

}  // namespace fistlint
