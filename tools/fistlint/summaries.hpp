// summaries.hpp — per-function summaries for the cross-TU engine.
//
// Pass 1 of the call-graph analysis (docs/STATIC_ANALYSIS.md,
// "Cross-TU analysis") extracts one FunctionSummary per function
// *definition* it can recognize in the token stream: the qualified
// name, every call site, every lexical lock region (fist::LockGuard /
// UniqueLock and manual .lock()/.unlock()), and every *effect atom* —
// a token pattern that blocks (syscall-shaped IO, fstream
// construction, sleeps, condition-variable waits), allocates (`new`,
// make_unique/make_shared, growing container calls), or that the
// author declared with `// fistlint:effect(blocking|alloc)`.
//
// Summaries are position-independent per-file facts, exactly like the
// rest of FileFacts: the incremental cache stores them verbatim, and
// the ScanContext links them into a CallGraph (callgraph.hpp) whose
// transitive effects drive the blocking-under-lock / alloc-under-lock
// / callback-under-lock rules (effects.cpp).
//
// Known, deliberate approximations (all toward over-reporting, with
// allow() as the reviewed escape hatch — the house style):
//
//   * Qualified calls (`DeltaLog::append(...)`) match definitions by
//     qualified-name suffix; unqualified free calls resolve through
//     the caller's enclosing scopes; member calls (`log_->append(...)`)
//     link only when the name is unique in the tree, because the
//     receiver's type is unknown and generic names (append, push)
//     would otherwise union unrelated classes' effects. IO-primitive
//     and atomic member calls never link — the IO ones are already
//     precise blocking atoms. Use a qualified call or a
//     `fistlint:effect` note when an ambiguous member call must
//     propagate.
//   * Lambda bodies are opaque: they run on another thread (executor
//     submissions, thread entry points) more often than inline, so
//     their effects are not charged to the enclosing function.
//   * A condition-variable wait that passes the region's own guard
//     variable (`cv.wait(lock)`) releases that lock while blocked, so
//     it is exempt from *that* region — but still marks the function
//     blocking for callers holding other locks.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace fistlint {

struct FileFacts;  // rules.hpp — completed there to avoid a cycle

/// One lexical lock-holding region inside a function body. Every
/// region doubles as an *acquisition atom* for the lock-acquisition
/// graph (lockgraph.hpp): `regions` records which regions were already
/// active when this one opened (the lexical acquired-while-held
/// edges), and `try_lock` marks acquisitions that never block waiting
/// (`m.try_lock()`, `std::try_to_lock` guards) — they open a real hold
/// span but are exempt as lock-order/deadlock *targets*, because a
/// failed try backs off instead of waiting.
struct LockRegion {
  std::string mutex;  ///< mutex name as written (resolved via ctx later)
  std::string guard;  ///< guard variable name; empty for manual .lock()
  int line = 0;
  /// Indices of the regions active when this one was acquired. The
  /// mutexes of one multi-mutex `std::scoped_lock(m1, m2)` are
  /// acquired atomically, so they do NOT appear in each other's list.
  std::vector<int> regions;
  bool try_lock = false;
};

/// One effect-producing token pattern. `regions` indexes the
/// FunctionSummary's lock_regions active at the atom (after the
/// cv-wait guard exemption).
struct EffectAtom {
  enum Kind { kBlocking = 0, kAlloc = 1 };
  int kind = kBlocking;
  int line = 0;
  std::string what;  ///< e.g. "fsync", "push_back", "new", "declared"
  std::vector<int> regions;
};

/// One call site inside a function body. `name` keeps any `::`
/// qualification seen at the site (`fault::fire`, plain `append`).
struct CallSite {
  std::string name;
  int line = 0;
  /// Written as `x.name(…)` / `x->name(…)` — the receiver's type is
  /// unknown, so linking is conservative (callgraph.hpp).
  bool member = false;
  std::vector<int> regions;  ///< lock regions active at the call
};

/// One read/write of a member-shaped name (`count_`, `this->count_`)
/// inside a function body, for the unguarded-field rule. Only bare or
/// `this->`-qualified names with the trailing-underscore member
/// convention are recorded: receiver-qualified accesses (`obj.count_`)
/// belong to some *other* object whose lock state is unknowable here.
struct FieldAccess {
  std::string name;
  int line = 0;
  std::vector<int> regions;  ///< lock regions active at the access
};

/// Everything pass 1 knows about one function definition.
struct FunctionSummary {
  std::string qname;  ///< e.g. "fist::LiveIndex::append"
  std::string file;   ///< root-relative path (re-stamped on cache reuse)
  int line = 0;       ///< line of the definition head
  std::vector<LockRegion> lock_regions;
  std::vector<CallSite> calls;
  std::vector<EffectAtom> atoms;
  std::vector<FieldAccess> fields;
};

/// One grow/shrink method call on a member-shaped receiver
/// (`name.push_back(…)`, `name->clear()`), for the unbounded-growth
/// rule. Aggregated globally by member name: a member with any shrink
/// op anywhere in the tree is considered capped.
struct MemberOp {
  std::string member;
  std::string method;
  std::string file;  ///< re-stamped on cache reuse, like NameUse
  int line = 0;
  bool grow = false;
};

/// Pass-1 collection for the cross-TU engine: function summaries,
/// container/mutex class facts, std::function-typed symbols, and
/// member grow/shrink ops. collect_facts already includes it.
void collect_summaries(const SourceFile& file, FileFacts& out);

}  // namespace fistlint
