// lexer.hpp — a C++ token stream for fistlint.
//
// fistlint is a token-level ("AST-lite") analyzer: it never builds a
// real parse tree, it pattern-matches over a faithful token stream.
// The lexer therefore has exactly the fidelity the rules need: correct
// line numbers, comments and string/char literals separated out (so a
// `rand` inside a string can never trip the banned-random rule), raw
// strings and digit separators handled, and every punctuator emitted
// as a single character (which makes template-argument matching a
// trivial depth count — `>>` closes two levels as two tokens).
//
// Suppression comments are parsed here too:
//
//   // fistlint:allow(rule-a,rule-b) reason text
//   // fistlint:allow-file(rule-a) reason text
//
// An `allow` on its own line covers the next code line (blank lines
// and further comment lines — a multi-line reason — are skipped);
// trailing an expression it covers that line. `allow-file` covers the
// whole file.
// The reason is mandatory — rules.cpp turns a reasonless allow into a
// `bad-suppression` finding rather than honoring it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fistlint {

enum class TokKind {
  Ident,    ///< identifier or keyword
  Number,   ///< numeric literal (digit separators stripped from text)
  Str,      ///< string literal; text holds the uninterpreted contents
  CharLit,  ///< character literal
  Punct,    ///< single punctuation character
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  int line = 1;

  bool is(std::string_view s) const noexcept { return text == s; }
  bool ident(std::string_view s) const noexcept {
    return kind == TokKind::Ident && text == s;
  }
  bool punct(char c) const noexcept {
    return kind == TokKind::Punct && text.size() == 1 && text[0] == c;
  }
};

/// One parsed `fistlint:allow` / `fistlint:allow-file` comment.
struct Allow {
  int line = 1;                    ///< line the comment starts on
  std::vector<std::string> rules;  ///< rule ids listed in the parens
  std::string reason;              ///< trimmed text after the parens
  bool own_line = false;           ///< no code precedes it on its line
  bool file_scope = false;         ///< allow-file variant
};

/// One parsed `// fistlint:effect(blocking|alloc)` annotation — a
/// user-declared effect for the cross-TU engine (summaries.hpp), for
/// functions whose effects the token heuristics cannot see (inline
/// assembly, vendored wrappers, platform ifdefs).
struct EffectNote {
  int line = 1;          ///< line the comment starts on
  bool blocking = false; ///< `blocking` listed in the parens
  bool alloc = false;    ///< `alloc` listed in the parens
};

/// A lexed source file plus everything the rules need around the
/// token stream: suppression comments and the raw lines (baseline
/// snippets are normalized source lines, so they survive reformatting
/// of *other* lines).
struct SourceFile {
  std::string rel;  ///< root-relative path, '/' separators
  std::vector<Token> tokens;
  std::vector<Allow> allows;
  std::vector<EffectNote> effects;
  std::vector<std::string> lines;  ///< raw text, lines[i] is line i+1

  const std::string& line_text(int line) const;
};

/// Tokenizes `content`. Never fails: malformed trailing constructs
/// lex as best-effort tokens (fistlint inspects real, compiling code;
/// fixtures exercise the edge cases).
SourceFile lex(std::string_view content, std::string rel);

}  // namespace fistlint
