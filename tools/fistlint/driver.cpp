#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "baseline.hpp"

namespace fistlint {

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string to_rel(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  fs::path chosen = (ec || rel.empty()) ? p : rel;
  return chosen.generic_string();
}

bool has_any_prefix(const std::string& rel,
                    const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes)
    if (rel.rfind(p, 0) == 0) return true;
  return false;
}

bool is_source_ext(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

/// Minimal extraction of `"file"` / `"directory"` values from
/// compile_commands.json. The format is machine-written (CMake), so a
/// targeted scan beats dragging in a JSON parser: find each key, take
/// the next string literal, honor escapes.
std::vector<fs::path> compile_db_files(const std::string& json) {
  std::vector<fs::path> out;
  std::string dir;
  std::size_t i = 0;
  auto next_string = [&](std::size_t from, std::string& value) {
    std::size_t q = json.find('"', from);
    if (q == std::string::npos) return std::string::npos;
    std::string v;
    std::size_t j = q + 1;
    while (j < json.size() && json[j] != '"') {
      if (json[j] == '\\' && j + 1 < json.size()) {
        v.push_back(json[j + 1]);
        j += 2;
      } else {
        v.push_back(json[j]);
        ++j;
      }
    }
    value = std::move(v);
    return j;
  };
  while (true) {
    std::size_t dkey = json.find("\"directory\"", i);
    std::size_t fkey = json.find("\"file\"", i);
    if (fkey == std::string::npos) break;
    if (dkey != std::string::npos && dkey < fkey) {
      std::size_t colon = json.find(':', dkey + 11);
      i = next_string(colon, dir);
      if (i == std::string::npos) break;
      continue;
    }
    std::size_t colon = json.find(':', fkey + 6);
    std::string file;
    i = next_string(colon, file);
    if (i == std::string::npos) break;
    fs::path p(file);
    if (p.is_relative() && !dir.empty()) p = fs::path(dir) / p;
    out.push_back(std::move(p));
  }
  return out;
}

struct Scan {
  std::vector<SourceFile> files;
  ScanContext ctx;
  std::vector<NameUse> names;
};

bool load_and_lex(const fs::path& root, const std::string& rel,
                  const fs::path& abs, Scan& scan, std::ostream& err) {
  (void)root;
  std::string content;
  if (!read_file(abs, content)) {
    err << "fistlint: cannot read " << abs.string() << "\n";
    return false;
  }
  scan.files.push_back(lex(content, rel));
  return true;
}

}  // namespace

std::vector<std::string> discover_files(const Options& opts,
                                        std::ostream& err) {
  fs::path root(opts.root);
  std::set<std::string> rels;

  fs::path db_path = opts.compile_commands.empty()
                         ? root / "build" / "compile_commands.json"
                         : fs::path(opts.compile_commands);
  std::string db;
  if (read_file(db_path, db)) {
    for (const fs::path& p : compile_db_files(db)) {
      std::string rel = to_rel(root, p);
      if (has_any_prefix(rel, opts.scan_prefixes) && is_source_ext(p))
        rels.insert(rel);
    }
  } else {
    err << "fistlint: note: no compile database at " << db_path.string()
        << "; scanning the source tree directly\n";
    for (const std::string& prefix : opts.scan_prefixes) {
      fs::path dir = root / prefix;
      std::error_code ec;
      for (fs::recursive_directory_iterator it(dir, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && is_source_ext(it->path()))
          rels.insert(to_rel(root, it->path()));
      }
    }
    return {rels.begin(), rels.end()};
  }

  // Headers never appear in the compile database — union in every
  // header under the scanned prefixes.
  for (const std::string& prefix : opts.scan_prefixes) {
    fs::path dir = root / prefix;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".h" || ext == ".hh")
        rels.insert(to_rel(root, it->path()));
    }
  }
  return {rels.begin(), rels.end()};
}

int run(const Options& opts, std::ostream& out, std::ostream& err) {
  fs::path root(opts.root);

  // ---- gather + lex -----------------------------------------------------
  Scan scan;
  if (!opts.files.empty()) {
    for (const std::string& f : opts.files)
      if (!load_and_lex(root, to_rel(root, fs::path(f)), fs::path(f), scan,
                        err))
        return kExitUsage;
  } else {
    std::vector<std::string> rels = discover_files(opts, err);
    if (rels.empty()) {
      err << "fistlint: nothing to scan under " << root.string() << "\n";
      return kExitUsage;
    }
    for (const std::string& rel : rels)
      if (!load_and_lex(root, rel, root / rel, scan, err)) return kExitUsage;
  }

  // ---- pass 1: cross-file facts ----------------------------------------
  for (const SourceFile& f : scan.files) {
    collect_unordered_symbols(f, scan.ctx.unordered_symbols);
    collect_metric_names(f, scan.names);
  }

  // ---- pass 2: rules + suppressions ------------------------------------
  std::vector<Finding> findings;
  for (const SourceFile& f : scan.files) {
    std::vector<Finding> raw = run_file_rules(f, scan.ctx);
    std::vector<Finding> kept = apply_allows(std::move(raw), f);
    findings.insert(findings.end(), std::make_move_iterator(kept.begin()),
                    std::make_move_iterator(kept.end()));
  }

  // ---- docs-drift -------------------------------------------------------
  if (opts.check_docs) {
    fs::path doc_path = root / opts.docs;
    std::string doc_text;
    if (!read_file(doc_path, doc_text)) {
      err << "fistlint: cannot read docs file " << doc_path.string() << "\n";
      return kExitUsage;
    }
    std::vector<Finding> drift =
        docs_drift(scan.names, doc_text, opts.docs);
    findings.insert(findings.end(), std::make_move_iterator(drift.begin()),
                    std::make_move_iterator(drift.end()));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  // ---- baseline ratchet -------------------------------------------------
  fs::path baseline_path = root / opts.baseline;
  if (opts.update_baseline) {
    std::ofstream bf(baseline_path, std::ios::binary | std::ios::trunc);
    if (!bf) {
      err << "fistlint: cannot write baseline " << baseline_path.string()
          << "\n";
      return kExitUsage;
    }
    bf << Baseline::render(findings);
    err << "fistlint: baseline updated with " << findings.size()
        << " finding(s)\n";
    return kExitClean;
  }

  std::string baseline_text;
  read_file(baseline_path, baseline_text);  // missing file → empty baseline
  Baseline baseline = Baseline::parse(baseline_text);

  std::vector<Finding> fresh;
  std::size_t tolerated = 0;
  for (Finding& f : findings) {
    if (baseline.consume(baseline_key(f)))
      ++tolerated;
    else
      fresh.push_back(std::move(f));
  }
  std::vector<std::string> stale = baseline.stale();

  // ---- report -----------------------------------------------------------
  std::ostringstream report;
  for (const Finding& f : fresh)
    report << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
           << "\n";
  out << report.str();

  if (!opts.report.empty()) {
    std::ofstream rf(opts.report, std::ios::binary | std::ios::trunc);
    rf << report.str();
    rf << "# summary: " << fresh.size() << " new, " << tolerated
       << " baselined, " << stale.size() << " stale baseline entrie(s)\n";
  }

  for (const std::string& s : stale)
    err << "fistlint: stale baseline entry (fixed? run --update-baseline): "
        << s << "\n";
  err << "fistlint: " << scan.files.size() << " file(s), " << fresh.size()
      << " new finding(s), " << tolerated << " baselined, " << stale.size()
      << " stale\n";

  return fresh.empty() ? kExitClean : kExitFindings;
}

}  // namespace fistlint
