#include "driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "baseline.hpp"
#include "cache.hpp"
#include "sarif.hpp"

namespace fistlint {

namespace fs = std::filesystem;

namespace {

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string to_rel(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  fs::path chosen = (ec || rel.empty()) ? p : rel;
  return chosen.generic_string();
}

bool has_any_prefix(const std::string& rel,
                    const std::vector<std::string>& prefixes) {
  for (const std::string& p : prefixes)
    if (rel.rfind(p, 0) == 0) return true;
  return false;
}

bool is_source_ext(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh";
}

/// Minimal extraction of `"file"` / `"directory"` values from
/// compile_commands.json. The format is machine-written (CMake), so a
/// targeted scan beats dragging in a JSON parser: find each key, take
/// the next string literal, honor escapes.
std::vector<fs::path> compile_db_files(const std::string& json) {
  std::vector<fs::path> out;
  std::string dir;
  std::size_t i = 0;
  auto next_string = [&](std::size_t from, std::string& value) {
    std::size_t q = json.find('"', from);
    if (q == std::string::npos) return std::string::npos;
    std::string v;
    std::size_t j = q + 1;
    while (j < json.size() && json[j] != '"') {
      if (json[j] == '\\' && j + 1 < json.size()) {
        v.push_back(json[j + 1]);
        j += 2;
      } else {
        v.push_back(json[j]);
        ++j;
      }
    }
    value = std::move(v);
    return j;
  };
  while (true) {
    std::size_t dkey = json.find("\"directory\"", i);
    std::size_t fkey = json.find("\"file\"", i);
    if (fkey == std::string::npos) break;
    if (dkey != std::string::npos && dkey < fkey) {
      std::size_t colon = json.find(':', dkey + 11);
      i = next_string(colon, dir);
      if (i == std::string::npos) break;
      continue;
    }
    std::size_t colon = json.find(':', fkey + 6);
    std::string file;
    i = next_string(colon, file);
    if (i == std::string::npos) break;
    fs::path p(file);
    if (p.is_relative() && !dir.empty()) p = fs::path(dir) / p;
    out.push_back(std::move(p));
  }
  return out;
}

/// One file's state through the two-pass scan. `lexed` / `analyzed`
/// track how much work the cache let us skip.
struct Unit {
  std::string rel;
  std::string content;
  std::uint64_t hash = 0;
  bool lexed = false;
  SourceFile file;     ///< valid iff lexed
  FileFacts facts;     ///< from cache or collect_facts
  std::vector<Finding> findings;  ///< per-file rules, post-allows
  bool findings_cached = false;
};

void ensure_lexed(Unit& u) {
  if (!u.lexed) {
    u.file = lex(u.content, u.rel);
    u.lexed = true;
  }
}

}  // namespace

std::vector<std::string> discover_files(const Options& opts,
                                        std::ostream& err) {
  fs::path root(opts.root);
  std::set<std::string> rels;

  fs::path db_path = opts.compile_commands.empty()
                         ? root / "build" / "compile_commands.json"
                         : fs::path(opts.compile_commands);
  std::string db;
  if (read_file(db_path, db)) {
    for (const fs::path& p : compile_db_files(db)) {
      std::string rel = to_rel(root, p);
      if (has_any_prefix(rel, opts.scan_prefixes) && is_source_ext(p))
        rels.insert(rel);
    }
  } else {
    err << "fistlint: note: no compile database at " << db_path.string()
        << "; scanning the source tree directly\n";
    for (const std::string& prefix : opts.scan_prefixes) {
      fs::path dir = root / prefix;
      std::error_code ec;
      for (fs::recursive_directory_iterator it(dir, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && is_source_ext(it->path()))
          rels.insert(to_rel(root, it->path()));
      }
    }
    return {rels.begin(), rels.end()};
  }

  // Headers never appear in the compile database — union in every
  // header under the scanned prefixes.
  for (const std::string& prefix : opts.scan_prefixes) {
    fs::path dir = root / prefix;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      std::string ext = it->path().extension().string();
      if (ext == ".hpp" || ext == ".h" || ext == ".hh")
        rels.insert(to_rel(root, it->path()));
    }
  }
  return {rels.begin(), rels.end()};
}

int run(const Options& opts, std::ostream& out, std::ostream& err) {
  fs::path root(opts.root);

  // Explicit file lists are partial scans: cached findings would have
  // been computed against a different ScanContext, so never mix them.
  const bool use_cache = opts.use_cache && opts.files.empty();
  fs::path cache_path = opts.cache.empty()
                            ? root / "build" / "fistlint.cache"
                            : fs::path(opts.cache);

  // ---- gather -----------------------------------------------------------
  std::vector<Unit> units;
  auto gather = [&](const std::string& rel, const fs::path& abs) {
    Unit u;
    u.rel = rel;
    if (!read_file(abs, u.content)) {
      err << "fistlint: cannot read " << abs.string() << "\n";
      return false;
    }
    u.hash = fnv1a64(u.content);
    units.push_back(std::move(u));
    return true;
  };
  if (!opts.files.empty()) {
    for (const std::string& f : opts.files)
      if (!gather(to_rel(root, fs::path(f)), fs::path(f))) return kExitUsage;
  } else {
    std::vector<std::string> rels = discover_files(opts, err);
    if (rels.empty()) {
      err << "fistlint: nothing to scan under " << root.string() << "\n";
      return kExitUsage;
    }
    for (const std::string& rel : rels)
      if (!gather(rel, root / rel)) return kExitUsage;
  }

  Cache cache;
  if (use_cache) {
    std::string cache_text;
    if (read_file(cache_path, cache_text)) cache = Cache::parse(cache_text);
  }

  // ---- pass 1: cross-file facts (cached on a content-hash hit) ---------
  ScanContext ctx;
  ctx.hot_rank_threshold = opts.hot_rank_threshold;
  std::vector<NameUse> names;
  for (Unit& u : units) {
    auto hit = cache.entries.find(u.rel);
    if (hit != cache.entries.end() && hit->second.file_hash == u.hash) {
      u.facts = hit->second.facts;
    } else {
      ensure_lexed(u);
      collect_facts(u.file, u.facts);
    }
    // Stamp the file back onto position-carrying facts (the cache
    // stores them file-free; the entry key is the file).
    for (FunctionSummary& fn : u.facts.summaries) fn.file = u.rel;
    for (MemberOp& op : u.facts.member_ops) op.file = u.rel;
    ctx.merge(u.facts);
    for (NameUse use : u.facts.names) {
      use.file = u.rel;
      names.push_back(std::move(use));
    }
  }
  ctx.resolve();
  const std::uint64_t ctx_hash = context_hash(ctx);

  // ---- --dump-callgraph / --dump-lockgraph: print DOT and stop ---------
  if (!opts.dump_callgraph.empty()) {
    out << callgraph_dot(ctx.graph, ctx.functions, opts.dump_callgraph);
    return kExitClean;
  }
  if (opts.dump_lockgraph) {
    out << lockgraph_dot(ctx.lockgraph, ctx.mutex_ranks);
    return kExitClean;
  }

  // ---- pass 2: rules + suppressions (cached iff file AND context
  // are unchanged — a new declaration anywhere re-runs every file) ------
  std::size_t analyzed = 0;
  for (Unit& u : units) {
    auto hit = cache.entries.find(u.rel);
    if (hit != cache.entries.end() && hit->second.file_hash == u.hash &&
        cache.ctx_hash == ctx_hash) {
      u.findings = hit->second.findings;
      for (Finding& f : u.findings) f.file = u.rel;
      u.findings_cached = true;
      continue;
    }
    ensure_lexed(u);
    u.findings = apply_allows(run_file_rules(u.file, ctx), u.file);
    ++analyzed;
  }

  if (use_cache) {
    Cache fresh_cache;
    fresh_cache.ctx_hash = ctx_hash;
    for (const Unit& u : units) {
      CacheEntry& e = fresh_cache.entries[u.rel];
      e.file_hash = u.hash;
      e.facts = u.facts;
      e.findings = u.findings;
    }
    std::error_code ec;
    fs::create_directories(cache_path.parent_path(), ec);
    std::ofstream cf(cache_path, std::ios::binary | std::ios::trunc);
    if (cf) cf << fresh_cache.render();
    // An unwritable cache is a lost optimization, not an error.
  }

  std::vector<Finding> findings;
  for (Unit& u : units)
    findings.insert(findings.end(),
                    std::make_move_iterator(u.findings.begin()),
                    std::make_move_iterator(u.findings.end()));

  // ---- docs-drift (always recomputed: cross-file and cheap) ------------
  if (opts.check_docs) {
    fs::path doc_path = root / opts.docs;
    std::string doc_text;
    if (!read_file(doc_path, doc_text)) {
      err << "fistlint: cannot read docs file " << doc_path.string() << "\n";
      return kExitUsage;
    }
    std::vector<Finding> drift = docs_drift(names, doc_text, opts.docs);
    findings.insert(findings.end(), std::make_move_iterator(drift.begin()),
                    std::make_move_iterator(drift.end()));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  // ---- baseline ratchet -------------------------------------------------
  fs::path baseline_path = root / opts.baseline;
  if (opts.update_baseline) {
    std::ofstream bf(baseline_path, std::ios::binary | std::ios::trunc);
    if (!bf) {
      err << "fistlint: cannot write baseline " << baseline_path.string()
          << "\n";
      return kExitUsage;
    }
    bf << Baseline::render(findings);
    err << "fistlint: baseline updated with " << findings.size()
        << " finding(s)\n";
    return kExitClean;
  }

  std::string baseline_text;
  read_file(baseline_path, baseline_text);  // missing file → empty baseline
  Baseline baseline = Baseline::parse(baseline_text);

  std::vector<Finding> fresh;
  std::size_t tolerated = 0;
  for (Finding& f : findings) {
    if (baseline.consume(baseline_key(f)))
      ++tolerated;
    else
      fresh.push_back(std::move(f));
  }
  std::vector<std::string> stale = baseline.stale();

  // ---- SARIF export (fresh findings; written even when empty) ----------
  if (!opts.sarif_out.empty()) {
    std::ofstream sf(opts.sarif_out, std::ios::binary | std::ios::trunc);
    if (!sf) {
      err << "fistlint: cannot write SARIF file " << opts.sarif_out << "\n";
      return kExitUsage;
    }
    sf << sarif_report(fresh);
  }

  // ---- report -----------------------------------------------------------
  std::ostringstream report;
  for (const Finding& f : fresh)
    report << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
           << "\n";
  out << report.str();

  if (!opts.report.empty()) {
    std::ofstream rf(opts.report, std::ios::binary | std::ios::trunc);
    rf << report.str();
    rf << "# summary: " << fresh.size() << " new, " << tolerated
       << " baselined, " << stale.size() << " stale baseline entrie(s)\n";
  }

  for (const std::string& s : stale)
    err << "fistlint: stale baseline entry (fixed? run --update-baseline): "
        << s << "\n";
  err << "fistlint: " << units.size() << " file(s) (" << analyzed
      << " analyzed, " << (units.size() - analyzed) << " cached), "
      << fresh.size() << " new finding(s), " << tolerated << " baselined, "
      << stale.size() << " stale\n";

  return fresh.empty() ? kExitClean : kExitFindings;
}

}  // namespace fistlint
