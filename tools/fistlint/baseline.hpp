// baseline.hpp — the findings ratchet.
//
// The baseline is a committed inventory of the findings the tree is
// allowed to carry, one `rule|file|normalized-snippet` line each.
// Matching is content-based (the snippet is the finding's source line
// with whitespace collapsed), so entries survive unrelated edits and
// line drift but die with the code they describe. The contract:
//
//   * a finding matching a baseline entry is tolerated (exit 0);
//   * a finding with no entry is NEW and fails the run — the count
//     never goes up;
//   * an entry matching no finding is STALE — the run still passes,
//     but fistlint nags until `--update-baseline` shrinks the file,
//     so the count ratchets down.
//
// Duplicate lines mean "this many occurrences": two identical loops in
// one file need two entries, and fixing one strands one stale entry.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fistlint {

/// The `rule|file|snippet` identity a finding is matched on.
std::string baseline_key(const Finding& f);

class Baseline {
 public:
  /// Parses baseline text: one key per line; '#' comments and blank
  /// lines ignored.
  static Baseline parse(std::string_view text);

  /// True when `key` has a remaining unconsumed entry (and consumes
  /// it — call once per finding).
  bool consume(const std::string& key);

  /// Keys never consumed, with multiplicity — the stale entries.
  std::vector<std::string> stale() const;

  /// Renders `findings` as fresh baseline text (sorted, deduplicated
  /// into counted duplicates).
  static std::string render(const std::vector<Finding>& findings);

 private:
  std::map<std::string, int> entries_;  ///< key → remaining count
};

}  // namespace fistlint
