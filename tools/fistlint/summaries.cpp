// summaries.cpp — pass-1 extraction for the cross-TU engine.
//
// The extractor is a single forward walk over the token stream with a
// scope stack (namespace / class / other braces). At namespace or
// class scope it tries to match a function-definition head —
//
//   [qualifiers] [A::B::]name ( params ) [const noexcept override …]
//   [-> type] [: ctor-init-list] {
//
// — and on a match walks the body collecting lock regions, call sites
// and effect atoms. Everything else (enum bodies, failed matches,
// operator overloads) is skipped without a summary; the engine only
// reasons about functions it positively recognized.
#include "summaries.hpp"

#include <set>

#include "rules.hpp"

namespace fistlint {

namespace {

std::size_t find_close_paren(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('(')) ++depth;
    if (t[j].punct(')') && --depth == 0) return j;
  }
  return t.size();
}

std::size_t find_close_brace(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('{')) ++depth;
    if (t[j].punct('}') && --depth == 0) return j;
  }
  return t.size();
}

std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('<')) {
      ++depth;
    } else if (t[j].punct('>')) {
      if (--depth == 0) return j + 1;
    } else if (t[j].punct(';') || t[j].punct('{') || t[j].punct('}')) {
      break;
    }
  }
  return i + 1;
}

/// Control-flow and expression keywords that precede a '(' without
/// being a call, or precede a call name without making it a
/// declaration (`return foo(…)`).
const std::set<std::string>& statement_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "static_assert", "throw",
      "new",    "delete", "else",   "do",       "case",   "co_return",
      "co_await", "co_yield", "goto", "and", "or", "not",
  };
  return kw;
}

/// Names that look like calls but are control flow — never recorded.
bool control_name(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "assert";
}

/// Blocking effect atoms: syscall-shaped IO, filesystem mutation,
/// sleeps, condition-variable waits. Matched on the last component of
/// a call name, member or free.
const std::set<std::string>& blocking_calls() {
  static const std::set<std::string> s = {
      "read",       "write",      "pread",      "pwrite",    "fsync",
      "fdatasync",  "open",       "fopen",      "fclose",    "fread",
      "fwrite",     "fflush",     "fseek",      "flush",     "seekg",
      "seekp",      "poll",       "select",     "accept",    "recv",
      "send",       "connect",    "bind",       "listen",    "close",
      "socketpair", "sleep",      "usleep",     "nanosleep", "sleep_for",
      "sleep_until", "wait",      "wait_for",   "wait_until",
      "resize_file", "file_size", "remove",     "rename",    "copy_file",
      "create_directories",
  };
  return s;
}

/// Member calls that allocate (grow or reallocate the receiver).
const std::set<std::string>& alloc_methods() {
  static const std::set<std::string> s = {
      "push_back", "emplace_back", "emplace",       "try_emplace",
      "insert",    "insert_or_assign", "push_front", "emplace_front",
      "reserve",   "resize",       "assign",        "append",
      "push",
  };
  return s;
}

/// Grow/shrink classification for the unbounded-growth rule.
const std::set<std::string>& grow_methods() {
  static const std::set<std::string> s = {
      "push_back", "emplace_back", "emplace",       "try_emplace",
      "insert",    "insert_or_assign", "push_front", "emplace_front",
      "push",
  };
  return s;
}

const std::set<std::string>& shrink_methods() {
  static const std::set<std::string> s = {
      "clear",  "erase", "pop_back", "pop_front", "resize",
      "assign", "reset", "shrink_to_fit", "swap",  "pop",
  };
  return s;
}

/// std::atomic member operations — never recorded as call sites, so an
/// atomic `stopping.load()` cannot link to a repo function named
/// `load`.
const std::set<std::string>& atomic_methods() {
  static const std::set<std::string> s = {
      "load",       "store",      "exchange",   "fetch_add", "fetch_sub",
      "fetch_and",  "fetch_or",   "fetch_xor",  "test_and_set",
      "compare_exchange_weak",    "compare_exchange_strong",
      "notify_one", "notify_all",
  };
  return s;
}

bool is_container_type(const Token& tok) {
  static const std::set<std::string> s = {
      "vector",        "deque",         "list",
      "forward_list",  "map",           "set",
      "multimap",      "multiset",      "unordered_map",
      "unordered_set", "unordered_multimap", "unordered_multiset",
  };
  return tok.kind == TokKind::Ident && s.count(tok.text) != 0;
}

bool is_scoped_lock_type(const Token& tok) {
  return tok.ident("LockGuard") || tok.ident("UniqueLock") ||
         tok.ident("lock_guard") || tok.ident("unique_lock") ||
         tok.ident("scoped_lock") || tok.ident("shared_lock");
}

// ---------------------------------------------------------------------------
// Lambda opacity
// ---------------------------------------------------------------------------

/// Heuristic: '[' opens a lambda capture list (vs. a subscript or an
/// attribute we fail to recognize) when what precedes it cannot end an
/// expression.
bool is_lambda_intro(const std::vector<Token>& t, std::size_t j,
                     std::size_t begin) {
  if (j == begin) return true;
  const Token& p = t[j - 1];
  if (p.kind == TokKind::Ident)
    return p.ident("return") || p.ident("case") || p.ident("co_return");
  if (p.kind != TokKind::Punct) return false;  // literal[i]
  char c = p.text[0];
  return c == '(' || c == ',' || c == '=' || c == '{' || c == ';' ||
         c == '<' || c == '&' || c == '|' || c == '!' || c == '?' ||
         c == ':' || c == '+' || c == '-' || c == '*' || c == '/';
}

/// `j` indexes the '[' of a (suspected) lambda. Returns the index just
/// past its body — or just past the ']' when no body materializes
/// (attribute, mis-detection), so scanning resumes unharmed.
std::size_t skip_lambda(const std::vector<Token>& t, std::size_t j,
                        std::size_t end) {
  std::size_t depth = 0;
  std::size_t k = j;
  for (; k < end; ++k) {
    if (t[k].punct('[')) ++depth;
    if (t[k].punct(']') && --depth == 0) break;
  }
  if (k >= end) return end;
  std::size_t resume = k + 1;  // fallback: just past ']'
  std::size_t m = k + 1;
  if (m < end && t[m].punct('(')) m = find_close_paren(t, m) + 1;
  while (m < end) {
    const Token& q = t[m];
    if (q.punct('{')) return find_close_brace(t, m) + 1;
    if (q.ident("mutable") || q.ident("constexpr") || q.ident("noexcept")) {
      ++m;
      if (m < end && t[m].punct('(')) m = find_close_paren(t, m) + 1;
      continue;
    }
    if (q.punct('-') && m + 1 < end && t[m + 1].punct('>')) {
      m += 2;
      continue;
    }
    if (q.kind == TokKind::Ident || q.punct(':') || q.punct('&') ||
        q.punct('*')) {
      ++m;
      continue;
    }
    if (q.punct('<')) {
      m = skip_angles(t, m);
      continue;
    }
    break;  // ';', ')', ',', … — not a lambda after all
  }
  return resume;
}

// ---------------------------------------------------------------------------
// Function body walk
// ---------------------------------------------------------------------------

/// Walks one function body ([begin, end), braces excluded), filling
/// the summary's lock regions, call sites and effect atoms, and the
/// file's member grow/shrink ops.
void walk_body(const SourceFile& file, std::size_t begin, std::size_t end,
               FunctionSummary& fn, FileFacts& out);

/// When t[k-1], t[k-2] are the two ':' of a `::`, parses the qualifier
/// segment ending at t[k-3] — a plain identifier or a template-id like
/// `Box<T>` — into `text` and returns the segment's first token index.
/// Returns `k` unchanged when no well-formed segment precedes the `::`.
std::size_t prev_qual_segment(const std::vector<Token>& t, std::size_t k,
                              std::string& text) {
  if (k < 3 || !t[k - 1].punct(':') || !t[k - 2].punct(':')) return k;
  std::size_t last = k - 3;
  if (t[last].kind == TokKind::Ident) {
    text = t[last].text;
    return last;
  }
  if (!t[last].punct('>')) return k;
  // Template-id: scan back over the argument list to its '<'.
  std::size_t depth = 0;
  std::size_t m = last + 1;
  while (m > 0) {
    --m;
    if (t[m].punct('>')) {
      ++depth;
    } else if (t[m].punct('<')) {
      if (--depth == 0) break;
    } else if (t[m].punct(';') || t[m].punct('{') || t[m].punct('}')) {
      return k;
    }
    if (m == 0) return k;
  }
  if (depth != 0 || m == 0 || t[m - 1].kind != TokKind::Ident) return k;
  std::string s;
  for (std::size_t q = m - 1; q <= last; ++q) s += t[q].text;
  text = s;
  return m - 1;
}

/// Builds the (possibly `A::B::`-qualified) call name ending at token
/// `i`, and reports where the qualified chain starts. Template-id
/// segments are kept textually (`Box<T>::absorb`).
std::string qualified_name(const std::vector<Token>& t, std::size_t i,
                           std::size_t& chain_start) {
  std::string name = t[i].text;
  std::size_t k = i;
  while (k >= 3) {
    std::string seg;
    std::size_t start = prev_qual_segment(t, k, seg);
    if (start == k) break;
    name = seg + "::" + name;
    k = start;
  }
  // A leading global qualifier (`::close`) adds no name segment.
  if (k >= 2 && t[k - 1].punct(':') && t[k - 2].punct(':')) k -= 2;
  chain_start = k;
  return name;
}

void walk_body(const SourceFile& file, std::size_t begin, std::size_t end,
               FunctionSummary& fn, FileFacts& out) {
  const auto& t = file.tokens;
  struct Active {
    int index;  ///< into fn.lock_regions
    int depth;
  };
  int depth = 0;
  std::vector<Active> active;

  auto active_indices = [&] {
    std::vector<int> v;
    v.reserve(active.size());
    for (const Active& a : active) v.push_back(a.index);
    return v;
  };
  auto add_atom = [&](int kind, int line, std::string what,
                      std::vector<int> regions) {
    fn.atoms.push_back(
        EffectAtom{kind, line, std::move(what), std::move(regions)});
  };

  for (std::size_t j = begin; j < end; ++j) {
    const Token& tok = t[j];
    if (tok.punct('{')) {
      ++depth;
      continue;
    }
    if (tok.punct('}')) {
      --depth;
      while (!active.empty() && active.back().depth > depth)
        active.pop_back();
      continue;
    }
    if (tok.punct('[') && is_lambda_intro(t, j, begin)) {
      std::size_t next = skip_lambda(t, j, end);
      j = (next > j ? next : j + 1) - 1;  // loop ++
      continue;
    }

    // Scoped guard declaration: `LockGuard g(mu);`, or multi-mutex
    // `std::scoped_lock g(m1, m2);` — one region per mutex argument.
    // The mutexes of one declaration are acquired atomically
    // (std::scoped_lock deadlock-avoids), so the regions do not list
    // each other as held-at-open. std tag arguments select behaviour
    // instead of naming a mutex: `std::defer_lock` (and `adopt_lock`,
    // whose mutex was opened by the preceding manual lock()) opens
    // nothing; `std::try_to_lock` marks the regions as
    // try-acquisitions.
    if (is_scoped_lock_type(tok)) {
      std::size_t k = j + 1;
      if (k < end && t[k].punct('<')) k = skip_angles(t, k);
      if (k + 1 < end && t[k].kind == TokKind::Ident && t[k + 1].punct('(')) {
        std::size_t close = find_close_paren(t, k + 1);
        std::vector<std::string> mutexes;
        bool no_acquire = false;
        bool tryf = false;
        std::string arg_last;  // last identifier of the current argument
        auto flush_arg = [&] {
          if (arg_last.empty()) return;
          if (arg_last == "defer_lock" || arg_last == "defer_lock_t" ||
              arg_last == "adopt_lock" || arg_last == "adopt_lock_t")
            no_acquire = true;
          else if (arg_last == "try_to_lock" || arg_last == "try_to_lock_t")
            tryf = true;
          else
            mutexes.push_back(arg_last);
          arg_last.clear();
        };
        std::size_t pd = 0;
        for (std::size_t m = k + 2; m < close && m < end; ++m) {
          if (t[m].punct('(') || t[m].punct('[') || t[m].punct('{')) {
            ++pd;
          } else if (t[m].punct(')') || t[m].punct(']') || t[m].punct('}')) {
            if (pd > 0) --pd;
          } else if (t[m].punct(',') && pd == 0) {
            flush_arg();
          } else if (t[m].kind == TokKind::Ident && pd == 0) {
            arg_last = t[m].text;
          }
        }
        flush_arg();
        if (!no_acquire) {
          const std::vector<int> held = active_indices();
          for (const std::string& mtx : mutexes) {
            fn.lock_regions.push_back(
                LockRegion{mtx, t[k].text, tok.line, held, tryf});
            active.push_back(
                Active{static_cast<int>(fn.lock_regions.size()) - 1, depth});
          }
        }
        j = close < end ? close : end - 1;
      }
      continue;
    }

    if (tok.kind != TokKind::Ident) continue;

    // Effect atoms that do not need a following '('.
    if (tok.is("new")) {
      add_atom(EffectAtom::kAlloc, tok.line, "new", active_indices());
      continue;
    }
    if ((tok.is("make_unique") || tok.is("make_shared")) && j + 1 < end &&
        (t[j + 1].punct('<') || t[j + 1].punct('('))) {
      add_atom(EffectAtom::kAlloc, tok.line, tok.text, active_indices());
      continue;
    }
    // fstream construction opens a file: `std::ofstream out(path, …)`.
    if ((tok.is("ifstream") || tok.is("ofstream") || tok.is("fstream")) &&
        j + 2 < end && t[j + 1].kind == TokKind::Ident &&
        (t[j + 2].punct('(') || t[j + 2].punct('{'))) {
      add_atom(EffectAtom::kBlocking, tok.line, tok.text, active_indices());
      continue;
    }

    // Deref-invocation of a stored callable: `(*body)(…)`.
    if (j >= 2 && j + 2 < end && t[j - 1].punct('*') && t[j - 2].punct('(') &&
        t[j + 1].punct(')') && t[j + 2].punct('(')) {
      fn.calls.push_back(
          CallSite{tok.text, tok.line, false, active_indices()});
      continue;
    }

    // Member-field access (`count_`, `this->count_`) for the
    // unguarded-field rule. Recorded whether or not a '(' follows —
    // `callback_(x)` reads the field too. Receiver-qualified accesses
    // (`obj.count_`) are another object's state and stay unrecorded;
    // `Ns::name_` is a qualified name, not a field.
    if (!tok.text.empty() && tok.text.back() == '_' &&
        !(j + 2 < end && t[j + 1].punct(':') && t[j + 2].punct(':'))) {
      bool dotted =
          j >= 1 && (t[j - 1].punct('.') ||
                     (j >= 2 && t[j - 1].punct('>') && t[j - 2].punct('-')));
      bool via_this = j >= 3 && t[j - 1].punct('>') && t[j - 2].punct('-') &&
                      t[j - 3].ident("this");
      if (!dotted || via_this)
        fn.fields.push_back(FieldAccess{tok.text, tok.line, active_indices()});
    }

    if (j + 1 >= end || !t[j + 1].punct('(')) continue;
    if (control_name(tok.text)) continue;

    // Manual `m.lock()` / `m.unlock()` on a (possibly ranked) mutex.
    bool member = j >= 1 && (t[j - 1].punct('.') ||
                             (j >= 2 && t[j - 1].punct('>') &&
                              t[j - 2].punct('-')));
    if (member && (tok.is("lock") || tok.is("try_lock")) && j >= 2 &&
        t[j - 2].kind == TokKind::Ident) {
      fn.lock_regions.push_back(LockRegion{t[j - 2].text, std::string(),
                                           tok.line, active_indices(),
                                           tok.is("try_lock")});
      active.push_back(
          Active{static_cast<int>(fn.lock_regions.size()) - 1, depth});
      continue;
    }
    if (member && tok.is("unlock") && j >= 2 &&
        t[j - 2].kind == TokKind::Ident) {
      for (auto it = active.rbegin(); it != active.rend(); ++it) {
        if (fn.lock_regions[static_cast<std::size_t>(it->index)].mutex ==
            t[j - 2].text) {
          active.erase(std::next(it).base());
          break;
        }
      }
      continue;
    }

    std::size_t chain_start = j;
    std::string name =
        member ? tok.text : qualified_name(t, j, chain_start);
    // A non-keyword identifier right before the (chain of the) name
    // means this is a declaration (`LockGuard lock(…)`, `Reader r(…)`),
    // not a call.
    if (chain_start > 0) {
      const Token& prev = t[chain_start - 1];
      if (prev.kind == TokKind::Ident &&
          statement_keywords().count(prev.text) == 0)
        continue;
      if (prev.punct('~')) continue;  // destructor call/decl
    }

    std::vector<int> regions = active_indices();
    std::vector<int> atom_regions = regions;
    const std::string& last = tok.text;
    if (last == "wait" || last == "wait_for" || last == "wait_until") {
      // `cv.wait(lock)` drops the region's own guard while blocked.
      if (j + 2 < end && t[j + 2].kind == TokKind::Ident) {
        const std::string& arg = t[j + 2].text;
        std::vector<int> kept;
        for (int r : atom_regions)
          if (fn.lock_regions[static_cast<std::size_t>(r)].guard != arg)
            kept.push_back(r);
        atom_regions = std::move(kept);
      }
    }

    // Member IO primitives are precise blocking atoms already, atomic
    // ops are pure, and container mutators (`records_.clear()`) are
    // captured as grow/shrink/alloc atoms; recording any of them as a
    // call would only link it to an unrelated same-named repo function
    // and fabricate lock edges through it.
    bool linkable =
        !member || (blocking_calls().count(last) == 0 &&
                    atomic_methods().count(last) == 0 &&
                    grow_methods().count(last) == 0 &&
                    shrink_methods().count(last) == 0);
    if (linkable)
      fn.calls.push_back(CallSite{name, tok.line, member, regions});
    if (blocking_calls().count(last) != 0)
      add_atom(EffectAtom::kBlocking, tok.line, last,
               std::move(atom_regions));
    if (member && alloc_methods().count(last) != 0)
      add_atom(EffectAtom::kAlloc, tok.line, last, active_indices());
    if (member && j >= 2) {
      std::size_t recv = t[j - 1].punct('.') ? j - 2 : (j >= 3 ? j - 3 : 0);
      if (t[recv].kind == TokKind::Ident) {
        bool grow = grow_methods().count(last) != 0;
        bool shrink = shrink_methods().count(last) != 0;
        if (grow || shrink)
          out.member_ops.push_back(
              MemberOp{t[recv].text, last, file.rel, tok.line, grow});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Function-definition head matching
// ---------------------------------------------------------------------------

struct HeadMatch {
  bool matched = false;
  std::size_t body_open = 0;
  std::size_t skip_to = 0;  ///< where to resume on failure
  std::string prefix;       ///< explicit `A::B::` qualification
};

HeadMatch try_match_head(const std::vector<Token>& t, std::size_t i) {
  HeadMatch m;
  std::size_t close = find_close_paren(t, i + 1);
  if (close >= t.size()) {
    m.skip_to = i + 1;
    return m;
  }
  m.skip_to = close + 1;

  std::size_t k = i;
  while (k >= 3) {
    std::string seg;
    std::size_t start = prev_qual_segment(t, k, seg);
    if (start == k) break;
    m.prefix = m.prefix.empty() ? seg : seg + "::" + m.prefix;
    k = start;
  }

  std::size_t j = close + 1;
  while (j < t.size()) {
    const Token& q = t[j];
    if (q.ident("const") || q.ident("noexcept") || q.ident("override") ||
        q.ident("final") || q.ident("mutable") || q.ident("try") ||
        q.ident("volatile") || q.punct('&')) {
      ++j;
      continue;
    }
    if (q.punct('(')) {  // noexcept(…)
      j = find_close_paren(t, j) + 1;
      continue;
    }
    if (q.punct('-') && j + 1 < t.size() && t[j + 1].punct('>')) {
      j += 2;  // trailing return type
      while (j < t.size() && !t[j].punct('{') && !t[j].punct(';') &&
             !t[j].punct('=')) {
        if (t[j].punct('<')) {
          j = skip_angles(t, j);
          continue;
        }
        ++j;
      }
      continue;
    }
    if (q.punct(':') && !(j + 1 < t.size() && t[j + 1].punct(':'))) {
      // Constructor initializer list: name (…)|{…} [, …] then the body.
      ++j;
      while (j < t.size()) {
        while (j < t.size() &&
               (t[j].kind == TokKind::Ident || t[j].punct(':'))) {
          if (t[j].kind == TokKind::Ident && j + 1 < t.size() &&
              t[j + 1].punct('<')) {
            j = skip_angles(t, j + 1);
            continue;
          }
          ++j;
        }
        if (j < t.size() && t[j].punct('('))
          j = find_close_paren(t, j) + 1;
        else if (j < t.size() && t[j].punct('{'))
          j = find_close_brace(t, j) + 1;
        else
          return m;  // malformed — not a recognizable definition
        if (j < t.size() && t[j].punct(',')) {
          ++j;
          continue;
        }
        break;
      }
      continue;
    }
    if (q.punct('{')) {
      m.matched = true;
      m.body_open = j;
      return m;
    }
    return m;  // ';', '=', '…' — declaration, = default, etc.
  }
  return m;
}

// ---------------------------------------------------------------------------
// std::function-typed symbols (callback-under-lock receivers)
// ---------------------------------------------------------------------------

void collect_callables(const SourceFile& file, FileFacts& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident("function") || !t[i + 1].punct('<')) continue;
    std::size_t j = skip_angles(t, i + 1);
    while (j < t.size() &&
           (t[j].punct('&') || t[j].punct('*') || t[j].ident("const")))
      ++j;
    if (j < t.size() && t[j].kind == TokKind::Ident &&
        statement_keywords().count(t[j].text) == 0)
      out.callable_symbols.insert(t[j].text);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// The scope walk
// ---------------------------------------------------------------------------

void collect_summaries(const SourceFile& file, FileFacts& out) {
  const auto& t = file.tokens;

  enum class ScopeKind { Ns, Cls, Other };
  struct Scope {
    ScopeKind kind;
    std::string name;
  };
  std::vector<Scope> stack;

  auto scope_qname = [&](const std::string& prefix, const std::string& name) {
    std::string q;
    for (const Scope& s : stack) {
      if (s.kind == ScopeKind::Other || s.name.empty()) continue;
      if (!q.empty()) q += "::";
      q += s.name;
    }
    if (!prefix.empty()) {
      if (!q.empty()) q += "::";
      q += prefix;
    }
    if (!name.empty()) {
      if (!q.empty()) q += "::";
      q += name;
    }
    return q;
  };

  const std::size_t first_summary = out.summaries.size();
  std::vector<int> end_lines;  // parallel to summaries added here

  std::size_t i = 0;
  while (i < t.size()) {
    const Token& tok = t[i];
    if (tok.punct('{')) {
      stack.push_back(Scope{ScopeKind::Other, std::string()});
      ++i;
      continue;
    }
    if (tok.punct('}')) {
      if (!stack.empty()) stack.pop_back();
      ++i;
      continue;
    }
    ScopeKind inner = stack.empty() ? ScopeKind::Ns : stack.back().kind;
    if (inner == ScopeKind::Other || tok.kind != TokKind::Ident) {
      ++i;
      continue;
    }

    if (tok.is("template") && i + 1 < t.size() && t[i + 1].punct('<')) {
      i = skip_angles(t, i + 1);
      continue;
    }
    if (tok.is("namespace")) {
      std::string name;
      std::size_t j = i + 1;
      while (j < t.size() &&
             (t[j].kind == TokKind::Ident || t[j].punct(':'))) {
        if (t[j].kind == TokKind::Ident) {
          if (!name.empty()) name += "::";
          name += t[j].text;
        }
        ++j;
      }
      if (j < t.size() && t[j].punct('{')) {
        stack.push_back(Scope{ScopeKind::Ns, name});
        i = j + 1;
        continue;
      }
      while (j < t.size() && !t[j].punct(';')) ++j;  // alias / using
      i = j + 1;
      continue;
    }
    if (tok.is("enum") || tok.is("union")) {
      std::size_t j = i + 1;
      while (j < t.size() && !t[j].punct('{') && !t[j].punct(';')) ++j;
      if (j < t.size() && t[j].punct('{')) {
        stack.push_back(Scope{ScopeKind::Other, std::string()});
        i = j + 1;
      } else {
        i = j + 1;
      }
      continue;
    }
    if (tok.is("class") || tok.is("struct")) {
      std::size_t j = i + 1;
      std::string name;
      if (j < t.size() && t[j].kind == TokKind::Ident) {
        name = t[j].text;
        ++j;
      }
      std::size_t angle = 0;
      while (j < t.size() && !(t[j].punct('{') && angle == 0) &&
             !t[j].punct(';')) {
        if (t[j].punct('<')) ++angle;
        if (t[j].punct('>') && angle > 0) --angle;
        ++j;
      }
      if (j < t.size() && t[j].punct('{')) {
        stack.push_back(Scope{name.empty() ? ScopeKind::Other : ScopeKind::Cls,
                              name});
        i = j + 1;
        continue;
      }
      i = j + 1;  // forward declaration
      continue;
    }

    if (inner == ScopeKind::Cls) {
      // Container member: `container<…> [&*const] name [FIST_…] ;|{|=`.
      if (is_container_type(tok) && i + 1 < t.size() && t[i + 1].punct('<')) {
        std::size_t j = skip_angles(t, i + 1);
        while (j < t.size() &&
               (t[j].punct('&') || t[j].punct('*') || t[j].ident("const")))
          ++j;
        if (j + 1 < t.size() && t[j].kind == TokKind::Ident) {
          const Token& after = t[j + 1];
          bool member_shaped =
              after.punct(';') || after.punct('{') || after.punct('=') ||
              (after.kind == TokKind::Ident &&
               after.text.rfind("FIST_", 0) == 0);
          if (member_shaped)
            out.container_members[scope_qname("", "")].insert(t[j].text);
        }
      }
      // Ranked-mutex member marks the class for the hold-time rules
      // and names the mutex for the lock-acquisition graph.
      if ((tok.is("Mutex") || tok.is("SharedMutex")) && i + 2 < t.size() &&
          t[i + 1].kind == TokKind::Ident && t[i + 2].punct('{')) {
        out.mutexed_classes.insert(scope_qname("", ""));
        out.class_mutexes[scope_qname("", "")].insert(t[i + 1].text);
      }
      // Trailing-underscore data member: `type name_ [FIST_…] ;|=|{`.
      // Sync primitives and handles are not data the unguarded-field
      // rule can reason about, so the declaration's type tokens are
      // scanned (back to the previous statement) to exclude them.
      if (!tok.text.empty() && tok.text.back() == '_' && i + 1 < t.size()) {
        const Token& after = t[i + 1];
        bool decl_shaped =
            after.punct(';') || after.punct('{') || after.punct('=') ||
            (after.kind == TokKind::Ident &&
             after.text.rfind("FIST_", 0) == 0);
        if (decl_shaped) {
          static const std::set<std::string> kNotData = {
              "atomic",       "atomic_flag",
              "mutex",        "shared_mutex",
              "Mutex",        "SharedMutex",
              "condition_variable", "condition_variable_any",
              "thread",       "jthread",
              "once_flag",
          };
          bool sync = false;
          std::size_t b = i;
          int steps = 0;
          while (b > 0 && !t[b - 1].punct(';') && !t[b - 1].punct('{') &&
                 !t[b - 1].punct('}') && steps < 40) {
            --b;
            ++steps;
            if (t[b].kind == TokKind::Ident && kNotData.count(t[b].text) != 0)
              sync = true;
          }
          if (!sync) {
            const std::string cls = scope_qname("", "");
            out.class_fields[cls].insert(tok.text);
            if (after.kind == TokKind::Ident &&
                after.text == "FIST_GUARDED_BY")
              out.class_guarded[cls].insert(tok.text);
          }
        }
      }
    }

    // Function-definition head?
    if (i + 1 < t.size() && t[i + 1].punct('(') && !control_name(tok.text) &&
        tok.text != "operator") {
      HeadMatch m = try_match_head(t, i);
      if (m.matched) {
        std::size_t body_close = find_close_brace(t, m.body_open);
        FunctionSummary fn;
        fn.qname = scope_qname(m.prefix, tok.text);
        fn.file = file.rel;
        fn.line = tok.line;
        walk_body(file, m.body_open + 1, body_close, fn, out);
        out.summaries.push_back(std::move(fn));
        end_lines.push_back(body_close < t.size() ? t[body_close].line
                                                  : tok.line);
        i = body_close + 1;
        continue;
      }
      i = m.skip_to;
      continue;
    }
    ++i;
  }

  // Attach `fistlint:effect(…)` notes: to the summary whose body spans
  // the note's line, else to the next definition after it.
  for (const EffectNote& note : file.effects) {
    std::size_t target = out.summaries.size();
    for (std::size_t s = first_summary; s < out.summaries.size(); ++s) {
      int start = out.summaries[s].line;
      int stop = end_lines[s - first_summary];
      if (note.line >= start && note.line <= stop) {
        target = s;
        break;
      }
      if (note.line < start) {
        target = s;
        break;
      }
    }
    if (target >= out.summaries.size()) continue;
    FunctionSummary& fn = out.summaries[target];
    if (note.blocking)
      fn.atoms.push_back(EffectAtom{EffectAtom::kBlocking, note.line,
                                    "declared", {}});
    if (note.alloc)
      fn.atoms.push_back(
          EffectAtom{EffectAtom::kAlloc, note.line, "declared", {}});
  }

  collect_callables(file, out);
}

}  // namespace fistlint
