// sarif.hpp — SARIF 2.1.0 export of the findings report.
//
// The static-analysis CI job uploads the SARIF file as a workflow
// artifact (`--sarif-out`), so findings are consumable by any SARIF
// viewer without re-running the scan. The output is deliberately
// minimal — one run, one tool, physical locations only — and
// deterministic: findings arrive pre-sorted from the driver and the
// rule index is the fixed all_rules() order.
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"

namespace fistlint {

/// Renders `findings` (the fresh, post-baseline set, already sorted)
/// as a SARIF 2.1.0 document. Paths are root-relative URIs.
std::string sarif_report(const std::vector<Finding>& findings);

}  // namespace fistlint
