#include "baseline.hpp"

#include <algorithm>

namespace fistlint {

std::string baseline_key(const Finding& f) {
  return f.rule + "|" + f.file + "|" + f.snippet;
}

Baseline Baseline::parse(std::string_view text) {
  Baseline b;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.remove_suffix(1);
    if (!line.empty() && line.front() != '#')
      ++b.entries_[std::string(line)];
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return b;
}

bool Baseline::consume(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second == 0) return false;
  --it->second;
  return true;
}

std::vector<std::string> Baseline::stale() const {
  std::vector<std::string> out;
  for (const auto& [key, count] : entries_)
    for (int i = 0; i < count; ++i) out.push_back(key);
  return out;
}

std::string Baseline::render(const std::vector<Finding>& findings) {
  std::vector<std::string> keys;
  keys.reserve(findings.size());
  for (const Finding& f : findings) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());

  std::string out =
      "# fistlint baseline — tolerated findings, one rule|file|snippet "
      "per line.\n"
      "# New findings fail the build; fixing a site strands a stale "
      "entry here\n"
      "# (remove it with `fistlint --update-baseline`). See "
      "docs/STATIC_ANALYSIS.md.\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

}  // namespace fistlint
