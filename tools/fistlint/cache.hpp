// cache.hpp — the incremental-scan cache.
//
// A full fistlint run lexes every file under the scan prefixes twice
// over (pass 1 facts, pass 2 rules). Almost all of that work is
// identical run to run: a file whose bytes did not change produces the
// same FileFacts and — as long as the cross-file ScanContext did not
// change either — the same findings. The cache stores both, keyed by a
// 64-bit FNV-1a hash of the file contents, so an incremental run only
// re-lexes the files that actually changed.
//
// Soundness is the whole point, so staleness is tracked precisely:
//
//   * FileFacts are reused on a content-hash hit alone — they are
//     derived from one file in isolation.
//   * Findings additionally require the *context hash* (a hash of the
//     merged, resolved ScanContext) to match, because the per-file
//     rules read cross-file state: editing view.hpp can change the
//     findings in an untouched view.cpp. One changed declaration
//     invalidates every cached finding list, never silently keeps one.
//   * docs-drift is always recomputed (it is cross-file by nature and
//     cheap — string comparison against one markdown registry).
//
// The cache file is a line-oriented text format (tab-separated fields,
// backslash escapes) under build/, never committed. A missing,
// unreadable, or version-mismatched cache degrades to a full scan.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "rules.hpp"

namespace fistlint {

/// FNV-1a 64-bit — the same content-hash construction the fault layer
/// uses for site ids; stable across platforms and runs.
std::uint64_t fnv1a64(std::string_view data) noexcept;

/// Everything remembered about one scanned file.
struct CacheEntry {
  std::uint64_t file_hash = 0;
  FileFacts facts;
  /// Post-suppression findings from the per-file rules (docs-drift
  /// excluded — it is recomputed every run).
  std::vector<Finding> findings;
};

/// On-disk cache: one context hash plus one entry per file.
struct Cache {
  std::uint64_t ctx_hash = 0;
  std::map<std::string, CacheEntry> entries;  ///< keyed by root-relative path

  /// Parses a cache file's text. Returns an empty cache (no entries)
  /// on any version or format mismatch — never a partial one.
  static Cache parse(std::string_view text);

  /// Serializes for writing. parse(render(c)) round-trips exactly.
  std::string render() const;
};

/// Canonical hash of the cross-file state the per-file rules read.
/// Two runs whose merged ScanContexts resolve identically get the
/// same hash regardless of file order.
std::uint64_t context_hash(const ScanContext& ctx);

}  // namespace fistlint
