#include "sarif.hpp"

namespace fistlint {

namespace {

/// JSON string-body escaping: quotes, backslashes, control chars.
std::string json_escape(const std::string& s) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[(u >> 4) & 0xf];
          out += kHex[u & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string sarif_report(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"fistlint\",\n"
      "          \"rules\": [\n";
  const auto& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(rules[i]) + "\"}";
    out += i + 1 < rules.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(f.rule) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"},\n";
    out +=
        "          \"locations\": [{\"physicalLocation\": "
        "{\"artifactLocation\": {\"uri\": \"" +
        json_escape(f.file) + "\"}, \"region\": {\"startLine\": " +
        std::to_string(f.line) + "}}}]\n";
    out += "        }";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace fistlint
