#include "cache.hpp"

#include <sstream>

namespace fistlint {

namespace {

constexpr std::string_view kMagic = "fistlint-cache v1";

/// Escapes the three characters that would break the line/field
/// structure: backslash, tab, newline.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char n = s[++i];
      out.push_back(n == 't' ? '\t' : n == 'n' ? '\n' : n);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// escape() never leaves a raw tab inside a field, so every tab in
/// the line is a separator.
std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i < line.size() && line[i] != '\t') continue;
    out.push_back(unescape(line.substr(start, i - start)));
    start = i + 1;
  }
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    out = (out << 4) | static_cast<std::uint64_t>(d);
  }
  return true;
}

std::string hex(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(v >> shift) & 0xf]);
  return out;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Cache Cache::parse(std::string_view text) {
  Cache cache;
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return cache;

  CacheEntry* entry = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> f = split_fields(line);
    if (f.empty()) continue;
    const std::string& tag = f[0];
    if (tag == "ctx" && f.size() == 2) {
      if (!parse_u64(f[1], cache.ctx_hash)) return Cache{};
    } else if (tag == "file" && f.size() == 3) {
      std::uint64_t h;
      if (!parse_u64(f[2], h)) return Cache{};
      entry = &cache.entries[f[1]];
      entry->file_hash = h;
    } else if (entry == nullptr) {
      return Cache{};  // fact line before any file line: corrupt
    } else if (tag == "u" && f.size() == 2) {
      entry->facts.unordered_symbols.insert(f[1]);
    } else if (tag == "o" && f.size() == 2) {
      entry->facts.ordered_symbols.insert(f[1]);
    } else if (tag == "m" && f.size() == 3) {
      entry->facts.mutex_ranks[f[1]] = f[2];
    } else if (tag == "r" && f.size() == 3) {
      entry->facts.rank_values[f[1]] = std::stol(f[2]);
    } else if (tag == "n" && f.size() == 4) {
      NameUse use;
      use.prefix = f[1] == "1";
      use.line = std::stoi(f[2]);
      use.name = f[3];
      // NameUse::file is re-stamped from the entry key on reuse.
      entry->facts.names.push_back(std::move(use));
    } else if (tag == "f" && f.size() == 5) {
      Finding finding;
      finding.rule = f[1];
      finding.line = std::stoi(f[2]);
      finding.message = f[3];
      finding.snippet = f[4];
      entry->findings.push_back(std::move(finding));
    }
    // Unknown tags are skipped: forward-compatible with added fact
    // kinds (the version bump in kMagic covers incompatible changes).
  }
  return cache;
}

std::string Cache::render() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "ctx\t" << hex(ctx_hash) << "\n";
  for (const auto& [rel, entry] : entries) {
    out << "file\t" << escape(rel) << "\t" << hex(entry.file_hash) << "\n";
    for (const std::string& s : entry.facts.unordered_symbols)
      out << "u\t" << escape(s) << "\n";
    for (const std::string& s : entry.facts.ordered_symbols)
      out << "o\t" << escape(s) << "\n";
    for (const auto& [name, enumerator] : entry.facts.mutex_ranks)
      out << "m\t" << escape(name) << "\t" << escape(enumerator) << "\n";
    for (const auto& [enumerator, value] : entry.facts.rank_values)
      out << "r\t" << escape(enumerator) << "\t" << value << "\n";
    for (const NameUse& use : entry.facts.names)
      out << "n\t" << (use.prefix ? 1 : 0) << "\t" << use.line << "\t"
          << escape(use.name) << "\n";
    for (const Finding& f : entry.findings)
      out << "f\t" << escape(f.rule) << "\t" << f.line << "\t"
          << escape(f.message) << "\t" << escape(f.snippet) << "\n";
  }
  return out.str();
}

std::uint64_t context_hash(const ScanContext& ctx) {
  // std::set / std::map iterate sorted, so this serialization is
  // canonical: independent of merge order.
  std::ostringstream ss;
  for (const std::string& s : ctx.unordered_symbols) ss << "u " << s << "\n";
  for (const std::string& s : ctx.ordered_symbols) ss << "o " << s << "\n";
  for (const auto& [name, rank] : ctx.mutex_ranks)
    ss << "m " << name << " " << rank << "\n";
  return fnv1a64(ss.str());
}

}  // namespace fistlint
