#include "cache.hpp"

#include <sstream>

namespace fistlint {

namespace {

// v3: lock-acquisition-graph facts — lr gains held-at-open regions
// and a try-lock flag, fa (field accesses) and cmu/fld/gf (class
// mutex/field/guarded members) are new. v2 caches fail the magic
// check and degrade to a full scan.
constexpr std::string_view kMagic = "fistlint-cache v3";

/// Escapes the three characters that would break the line/field
/// structure: backslash, tab, newline.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char n = s[++i];
      out.push_back(n == 't' ? '\t' : n == 'n' ? '\n' : n);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// escape() never leaves a raw tab inside a field, so every tab in
/// the line is a separator.
std::vector<std::string> split_fields(std::string_view line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i < line.size() && line[i] != '\t') continue;
    out.push_back(unescape(line.substr(start, i - start)));
    start = i + 1;
  }
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return false;
    out = (out << 4) | static_cast<std::uint64_t>(d);
  }
  return true;
}

std::string hex(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (int shift = 60; shift >= 0; shift -= 4)
    out.push_back(kDigits[(v >> shift) & 0xf]);
  return out;
}

/// Non-throwing decimal parse — a corrupt cache degrades to a full
/// scan, it never aborts the run.
bool parse_long(const std::string& s, long& out) {
  if (s.empty()) return false;
  std::size_t i = 0;
  bool neg = s[0] == '-';
  if (neg && s.size() == 1) return false;
  if (neg) i = 1;
  long v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  out = neg ? -v : v;
  return true;
}

bool parse_int(const std::string& s, int& out) {
  long v;
  if (!parse_long(s, v)) return false;
  out = static_cast<int>(v);
  return true;
}

/// Comma-joined region indices; empty string means no regions.
bool parse_regions(const std::string& s, std::vector<int>& out) {
  out.clear();
  if (s.empty()) return true;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i < s.size() && s[i] != ',') continue;
    int v;
    if (!parse_int(s.substr(start, i - start), v)) return false;
    out.push_back(v);
    start = i + 1;
  }
  return true;
}

std::string render_regions(const std::vector<int>& regions) {
  std::string out;
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(regions[i]);
  }
  return out;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Cache Cache::parse(std::string_view text) {
  Cache cache;
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return cache;

  CacheEntry* entry = nullptr;
  FunctionSummary* fn = nullptr;  // last `fn` line of the current entry
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> f = split_fields(line);
    if (f.empty()) continue;
    const std::string& tag = f[0];
    if (tag == "ctx" && f.size() == 2) {
      if (!parse_u64(f[1], cache.ctx_hash)) return Cache{};
    } else if (tag == "file" && f.size() == 3) {
      std::uint64_t h;
      if (!parse_u64(f[2], h)) return Cache{};
      entry = &cache.entries[f[1]];
      entry->file_hash = h;
      fn = nullptr;
    } else if (entry == nullptr) {
      return Cache{};  // fact line before any file line: corrupt
    } else if (tag == "u" && f.size() == 2) {
      entry->facts.unordered_symbols.insert(f[1]);
    } else if (tag == "o" && f.size() == 2) {
      entry->facts.ordered_symbols.insert(f[1]);
    } else if (tag == "m" && f.size() == 3) {
      entry->facts.mutex_ranks[f[1]] = f[2];
    } else if (tag == "r" && f.size() == 3) {
      long value;
      if (!parse_long(f[2], value)) return Cache{};
      entry->facts.rank_values[f[1]] = value;
    } else if (tag == "n" && f.size() == 4) {
      NameUse use;
      use.prefix = f[1] == "1";
      if (!parse_int(f[2], use.line)) return Cache{};
      use.name = f[3];
      // NameUse::file is re-stamped from the entry key on reuse.
      entry->facts.names.push_back(std::move(use));
    } else if (tag == "fn" && f.size() == 3) {
      FunctionSummary summary;
      summary.qname = f[1];
      if (!parse_int(f[2], summary.line)) return Cache{};
      // FunctionSummary::file is re-stamped on reuse, like NameUse.
      entry->facts.summaries.push_back(std::move(summary));
      fn = &entry->facts.summaries.back();
    } else if (tag == "lr" && f.size() == 6) {
      if (fn == nullptr) return Cache{};
      LockRegion region;
      region.mutex = f[1];
      region.guard = f[2];
      if (!parse_int(f[3], region.line)) return Cache{};
      region.try_lock = f[4] == "t";
      if (!parse_regions(f[5], region.regions)) return Cache{};
      fn->lock_regions.push_back(std::move(region));
    } else if (tag == "fa" && f.size() == 4) {
      if (fn == nullptr) return Cache{};
      FieldAccess access;
      access.name = f[1];
      if (!parse_int(f[2], access.line)) return Cache{};
      if (!parse_regions(f[3], access.regions)) return Cache{};
      fn->fields.push_back(std::move(access));
    } else if (tag == "cs" && f.size() == 5) {
      if (fn == nullptr) return Cache{};
      CallSite call;
      call.name = f[1];
      if (!parse_int(f[2], call.line)) return Cache{};
      call.member = f[3] == "1";
      if (!parse_regions(f[4], call.regions)) return Cache{};
      fn->calls.push_back(std::move(call));
    } else if (tag == "ea" && f.size() == 5) {
      if (fn == nullptr) return Cache{};
      EffectAtom atom;
      if (!parse_int(f[1], atom.kind)) return Cache{};
      if (!parse_int(f[2], atom.line)) return Cache{};
      atom.what = f[3];
      if (!parse_regions(f[4], atom.regions)) return Cache{};
      fn->atoms.push_back(std::move(atom));
    } else if (tag == "cb" && f.size() == 2) {
      entry->facts.callable_symbols.insert(f[1]);
    } else if (tag == "cm" && f.size() == 3) {
      entry->facts.container_members[f[1]].insert(f[2]);
    } else if (tag == "mx" && f.size() == 2) {
      entry->facts.mutexed_classes.insert(f[1]);
    } else if (tag == "cmu" && f.size() == 3) {
      entry->facts.class_mutexes[f[1]].insert(f[2]);
    } else if (tag == "fld" && f.size() == 3) {
      entry->facts.class_fields[f[1]].insert(f[2]);
    } else if (tag == "gf" && f.size() == 3) {
      entry->facts.class_guarded[f[1]].insert(f[2]);
    } else if (tag == "mo" && f.size() == 5) {
      MemberOp op;
      op.member = f[1];
      op.method = f[2];
      if (!parse_int(f[3], op.line)) return Cache{};
      op.grow = f[4] == "g";
      // MemberOp::file is re-stamped on reuse, like NameUse.
      entry->facts.member_ops.push_back(std::move(op));
    } else if (tag == "f" && f.size() == 5) {
      Finding finding;
      finding.rule = f[1];
      if (!parse_int(f[2], finding.line)) return Cache{};
      finding.message = f[3];
      finding.snippet = f[4];
      entry->findings.push_back(std::move(finding));
    }
    // Unknown tags are skipped: forward-compatible with added fact
    // kinds (the version bump in kMagic covers incompatible changes).
  }
  return cache;
}

std::string Cache::render() const {
  std::ostringstream out;
  out << kMagic << "\n";
  out << "ctx\t" << hex(ctx_hash) << "\n";
  for (const auto& [rel, entry] : entries) {
    out << "file\t" << escape(rel) << "\t" << hex(entry.file_hash) << "\n";
    for (const std::string& s : entry.facts.unordered_symbols)
      out << "u\t" << escape(s) << "\n";
    for (const std::string& s : entry.facts.ordered_symbols)
      out << "o\t" << escape(s) << "\n";
    for (const auto& [name, enumerator] : entry.facts.mutex_ranks)
      out << "m\t" << escape(name) << "\t" << escape(enumerator) << "\n";
    for (const auto& [enumerator, value] : entry.facts.rank_values)
      out << "r\t" << escape(enumerator) << "\t" << value << "\n";
    for (const NameUse& use : entry.facts.names)
      out << "n\t" << (use.prefix ? 1 : 0) << "\t" << use.line << "\t"
          << escape(use.name) << "\n";
    for (const FunctionSummary& fn : entry.facts.summaries) {
      out << "fn\t" << escape(fn.qname) << "\t" << fn.line << "\n";
      for (const LockRegion& r : fn.lock_regions)
        out << "lr\t" << escape(r.mutex) << "\t" << escape(r.guard) << "\t"
            << r.line << "\t" << (r.try_lock ? "t" : "-") << "\t"
            << render_regions(r.regions) << "\n";
      for (const FieldAccess& a : fn.fields)
        out << "fa\t" << escape(a.name) << "\t" << a.line << "\t"
            << render_regions(a.regions) << "\n";
      for (const CallSite& c : fn.calls)
        out << "cs\t" << escape(c.name) << "\t" << c.line << "\t"
            << (c.member ? 1 : 0) << "\t" << render_regions(c.regions)
            << "\n";
      for (const EffectAtom& a : fn.atoms)
        out << "ea\t" << a.kind << "\t" << a.line << "\t" << escape(a.what)
            << "\t" << render_regions(a.regions) << "\n";
    }
    for (const std::string& s : entry.facts.callable_symbols)
      out << "cb\t" << escape(s) << "\n";
    for (const auto& [cls, members] : entry.facts.container_members)
      for (const std::string& m : members)
        out << "cm\t" << escape(cls) << "\t" << escape(m) << "\n";
    for (const std::string& cls : entry.facts.mutexed_classes)
      out << "mx\t" << escape(cls) << "\n";
    for (const auto& [cls, members] : entry.facts.class_mutexes)
      for (const std::string& m : members)
        out << "cmu\t" << escape(cls) << "\t" << escape(m) << "\n";
    for (const auto& [cls, members] : entry.facts.class_fields)
      for (const std::string& m : members)
        out << "fld\t" << escape(cls) << "\t" << escape(m) << "\n";
    for (const auto& [cls, members] : entry.facts.class_guarded)
      for (const std::string& m : members)
        out << "gf\t" << escape(cls) << "\t" << escape(m) << "\n";
    for (const MemberOp& op : entry.facts.member_ops)
      out << "mo\t" << escape(op.member) << "\t" << escape(op.method) << "\t"
          << op.line << "\t" << (op.grow ? "g" : "s") << "\n";
    for (const Finding& f : entry.findings)
      out << "f\t" << escape(f.rule) << "\t" << f.line << "\t"
          << escape(f.message) << "\t" << escape(f.snippet) << "\n";
  }
  return out.str();
}

std::uint64_t context_hash(const ScanContext& ctx) {
  // canonical_facts() covers *everything* cross-file the rules read —
  // symbols, the raw mutex/rank declarations (so renumbering
  // lock_order.hpp invalidates lock-order findings in untouched
  // files), the call-graph summaries, and the hot-rank threshold.
  return fnv1a64(ctx.canonical_facts());
}

}  // namespace fistlint
