// fistlint — determinism-safety static analysis for this tree.
//
//   fistlint [--root DIR] [--compile-commands FILE] [--baseline FILE]
//            [--docs FILE] [--scan-prefix DIR/]... [--no-docs]
//            [--report FILE] [--update-baseline] [--list-rules]
//            [--cache FILE] [--no-cache] [--dump-callgraph REL]
//            [--dump-lockgraph] [--sarif-out FILE]
//            [--hot-rank-threshold N] [file...]
//
// Exit codes: 0 clean (nothing outside the committed baseline),
// 1 new findings, 2 usage / unreadable input.
// See docs/STATIC_ANALYSIS.md for the rule catalogue.
#include <iostream>
#include <string>
#include <vector>

#include "driver.hpp"

namespace {

constexpr const char* kUsage =
    "usage: fistlint [options] [file...]\n"
    "  --root DIR              repo root (default .)\n"
    "  --compile-commands FILE compile database (default\n"
    "                          ROOT/build/compile_commands.json)\n"
    "  --baseline FILE         baseline, relative to root (default\n"
    "                          tools/fistlint/baseline.txt)\n"
    "  --docs FILE             observability doc for the docs-drift rule\n"
    "                          (default docs/OBSERVABILITY.md)\n"
    "  --scan-prefix DIR/      root-relative tree to scan (repeatable;\n"
    "                          default src/)\n"
    "  --no-docs               skip the docs-drift rule\n"
    "  --report FILE           also write the findings report to FILE\n"
    "  --update-baseline       rewrite the baseline from current findings\n"
    "  --cache FILE            incremental-scan cache (default\n"
    "                          ROOT/build/fistlint.cache)\n"
    "  --no-cache              full scan; neither read nor write the cache\n"
    "  --dump-callgraph REL    print the DOT call graph of the functions\n"
    "                          defined in this root-relative file and exit\n"
    "  --dump-lockgraph        print the DOT lock-acquisition graph (ranked\n"
    "                          mutexes, acquired-while-held edges) and exit\n"
    "  --sarif-out FILE        also write new findings as SARIF 2.1.0\n"
    "  --hot-rank-threshold N  alloc-under-lock fires only for mutexes\n"
    "                          ranked >= N (default 60)\n"
    "  --list-rules            print the rule ids and exit\n"
    "  file...                 scan exactly these files (skips discovery)\n";

}  // namespace

int main(int argc, char** argv) {
  fistlint::Options opts;
  std::vector<std::string> prefixes;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "fistlint: " << flag << " needs a value\n" << kUsage;
        std::exit(fistlint::kExitUsage);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      opts.root = value("--root");
    } else if (arg == "--compile-commands") {
      opts.compile_commands = value("--compile-commands");
    } else if (arg == "--baseline") {
      opts.baseline = value("--baseline");
    } else if (arg == "--docs") {
      opts.docs = value("--docs");
    } else if (arg == "--scan-prefix") {
      prefixes.push_back(value("--scan-prefix"));
    } else if (arg == "--no-docs") {
      opts.check_docs = false;
    } else if (arg == "--report") {
      opts.report = value("--report");
    } else if (arg == "--update-baseline") {
      opts.update_baseline = true;
    } else if (arg == "--cache") {
      opts.cache = value("--cache");
    } else if (arg == "--no-cache") {
      opts.use_cache = false;
    } else if (arg == "--dump-callgraph") {
      opts.dump_callgraph = value("--dump-callgraph");
    } else if (arg == "--dump-lockgraph") {
      opts.dump_lockgraph = true;
    } else if (arg == "--sarif-out") {
      opts.sarif_out = value("--sarif-out");
    } else if (arg == "--hot-rank-threshold") {
      try {
        opts.hot_rank_threshold = std::stol(value("--hot-rank-threshold"));
      } catch (...) {
        std::cerr << "fistlint: --hot-rank-threshold needs a number\n"
                  << kUsage;
        return fistlint::kExitUsage;
      }
    } else if (arg == "--list-rules") {
      for (const std::string& r : fistlint::all_rules())
        std::cout << r << "\n";
      return fistlint::kExitClean;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return fistlint::kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fistlint: unknown option " << arg << "\n" << kUsage;
      return fistlint::kExitUsage;
    } else {
      opts.files.push_back(arg);
    }
  }
  if (!prefixes.empty()) opts.scan_prefixes = std::move(prefixes);

  return fistlint::run(opts, std::cout, std::cerr);
}
