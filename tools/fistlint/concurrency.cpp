// concurrency.cpp — the lock-discipline rules.
//
// These rules are the lint-time leg of the three-layer defense around
// src/core/lock_order.hpp (compile-time Clang Thread Safety Analysis,
// this file, and the debug-build runtime held-lock stack):
//
//   naked-mutex      a raw std::mutex / std::shared_mutex member is
//                    invisible to all three layers — it carries no
//                    hierarchy rank and no FIST_GUARDED_BY users, so
//                    nothing checks what it guards or in what order it
//                    is taken. Every long-lived mutex must be a
//                    fist::Mutex (or at least anchor FIST_* macros).
//   lock-order       (subsumed) the old purely lexical nesting check.
//                    transitive-lock-order (lockgraph.cpp) covers its
//                    cases as the zero-hop instance of the
//                    acquisition-graph rule and also follows call
//                    chains; pass 1 here still reads the `enum class
//                    Rank` values and every `Mutex name{…Rank::kX…}`
//                    declaration out of the tree for it.
//   detached-thread  a detached thread outlives every join point the
//                    determinism tests control, so its writes can land
//                    after the run is "done". std::thread::detach is
//                    banned outright; raw std::thread construction is
//                    confined to src/core/executor (the one place that
//                    owns thread lifetime).
#include <algorithm>

#include "rules.hpp"

namespace fistlint {

namespace {

std::size_t find_close_paren(const std::vector<Token>& t, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].punct('(')) ++depth;
    if (t[j].punct(')') && --depth == 0) return j;
  }
  return t.size();
}

bool path_has_prefix(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

Finding make_finding(const SourceFile& file, const char* rule, int line,
                     std::string message) {
  return Finding{rule, file.rel, line, std::move(message),
                 normalize_snippet(file.line_text(line))};
}

/// `t[i]` qualified as `std::` (the lexer emits `::` as two ':').
bool std_qualified(const std::vector<Token>& t, std::size_t i) {
  return i >= 3 && t[i - 1].punct(':') && t[i - 2].punct(':') &&
         t[i - 3].ident("std");
}

// ---------------------------------------------------------------------------
// Pass 1 — Rank enumerators and ranked Mutex declarations
// ---------------------------------------------------------------------------

void collect_rank_values(const SourceFile& file, FileFacts& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].ident("enum") && t[i + 1].ident("class") &&
          t[i + 2].ident("Rank")))
      continue;
    std::size_t open = i + 3;
    while (open < t.size() && !t[open].punct('{') && !t[open].punct(';'))
      ++open;
    if (open >= t.size() || t[open].punct(';')) continue;
    long next_value = 0;
    for (std::size_t j = open + 1; j < t.size() && !t[j].punct('}'); ++j) {
      if (t[j].kind != TokKind::Ident) continue;
      const std::string& name = t[j].text;
      long value = next_value;
      if (j + 2 < t.size() && t[j + 1].punct('=') &&
          t[j + 2].kind == TokKind::Number)
        value = std::stol(t[j + 2].text);
      out.rank_values[name] = value;
      next_value = value + 1;
      // Skip to the ',' ending this enumerator.
      while (j < t.size() && !t[j].punct(',') && !t[j].punct('}')) ++j;
      if (j < t.size() && t[j].punct('}')) break;
    }
  }
}

void collect_mutex_decls(const SourceFile& file, FileFacts& out) {
  const auto& t = file.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    // `Mutex name{… Rank::kSomething …};` — the enumerator is the last
    // identifier inside the braces.
    if (!(t[i].ident("Mutex") || t[i].ident("SharedMutex")) ||
        t[i + 1].kind != TokKind::Ident || !t[i + 2].punct('{'))
      continue;
    std::size_t depth = 0;
    std::string enumerator;
    for (std::size_t j = i + 2; j < t.size(); ++j) {
      if (t[j].punct('{')) ++depth;
      if (t[j].punct('}') && --depth == 0) break;
      if (t[j].kind == TokKind::Ident) enumerator = t[j].text;
    }
    if (!enumerator.empty()) out.mutex_ranks[t[i + 1].text] = enumerator;
  }
}

}  // namespace

void collect_concurrency_facts(const SourceFile& file, FileFacts& out) {
  collect_rank_values(file, out);
  collect_mutex_decls(file, out);
}

// ---------------------------------------------------------------------------
// Rule: naked-mutex
// ---------------------------------------------------------------------------

namespace {

void rule_naked_mutex(const SourceFile& file, std::vector<Finding>& out) {
  // The annotated wrapper itself legitimately owns a raw std::mutex.
  if (path_has_prefix(file.rel, "src/core/lock_order")) return;
  const auto& t = file.tokens;

  // Names anchored by any FIST_* annotation in this file: a raw mutex
  // that guards annotated members is visible to the analysis already.
  std::set<std::string> annotated;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || t[i].text.rfind("FIST_", 0) != 0 ||
        !t[i + 1].punct('('))
      continue;
    std::size_t close = find_close_paren(t, i + 1);
    for (std::size_t j = i + 2; j < close && j < t.size(); ++j)
      if (t[j].kind == TokKind::Ident) annotated.insert(t[j].text);
  }

  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].ident("mutex") || t[i].ident("shared_mutex"))) continue;
    if (!std_qualified(t, i)) continue;
    // `std::mutex name ;|{|=` — a declaration, not a template argument
    // (those are followed by '>' or ',') or a lock type's parameter.
    if (t[i + 1].kind != TokKind::Ident) continue;
    if (!(t[i + 2].punct(';') || t[i + 2].punct('{') || t[i + 2].punct('=')))
      continue;
    const std::string& name = t[i + 1].text;
    if (annotated.count(name) != 0) continue;
    out.push_back(make_finding(
        file, kRuleNakedMutex, t[i].line,
        "raw std::" + t[i].text + " `" + name +
            "` with no FIST_GUARDED_BY user and no hierarchy rank — "
            "use fist::Mutex (src/core/lock_order.hpp) or annotate "
            "what it guards"));
  }
}

// ---------------------------------------------------------------------------
// Rule: detached-thread
// ---------------------------------------------------------------------------

void rule_detached_thread(const SourceFile& file, std::vector<Finding>& out) {
  const auto& t = file.tokens;
  bool executor = path_has_prefix(file.rel, "src/core/executor");
  for (std::size_t i = 0; i < t.size(); ++i) {
    // `.detach()` / `->detach()` — banned everywhere, including the
    // executor (it joins; a detached thread has no join point).
    bool member = i > 0 && (t[i - 1].punct('.') ||
                            (i > 1 && t[i - 1].punct('>') &&
                             t[i - 2].punct('-')));
    if (t[i].ident("detach") && member && i + 1 < t.size() &&
        t[i + 1].punct('(')) {
      out.push_back(make_finding(
          file, kRuleDetachedThread, t[i].line,
          "thread detach() — a detached thread outlives every join "
          "point the determinism tests control; keep the handle and "
          "join it"));
      continue;
    }
    // Raw `std::thread` / `std::jthread` outside the executor. Type
    // access like `std::thread::id` or
    // `std::thread::hardware_concurrency` is fine anywhere.
    if ((t[i].ident("thread") || t[i].ident("jthread")) &&
        std_qualified(t, i) &&
        !(i + 2 < t.size() && t[i + 1].punct(':') && t[i + 2].punct(':')) &&
        !executor) {
      out.push_back(make_finding(
          file, kRuleDetachedThread, t[i].line,
          "raw std::" + t[i].text +
              " outside src/core/executor — thread lifetime belongs to "
              "the executor; use Executor::parallel_for (or submit)"));
    }
  }
}

}  // namespace

void run_concurrency_rules(const SourceFile& file, const ScanContext& ctx,
                           std::vector<Finding>& out) {
  (void)ctx;
  rule_naked_mutex(file, out);
  // The lexical lock-order rule is subsumed by transitive-lock-order
  // (lockgraph.cpp): its nested-region case is the graph rule's
  // zero-hop instance, and the graph rule also sees violations any
  // number of calls deep. The `lock-order` id stays registered so old
  // allow()/baseline entries still parse.
  rule_detached_thread(file, out);
}

}  // namespace fistlint
