// rules.hpp — the determinism-safety rule set.
//
// Every heuristic result in the pipeline must be bit-identical at any
// thread count (DESIGN.md "Execution model"); PR 1–3 enforce that
// dynamically (differential tests, TSan). These rules catch the
// classic ways the property dies *statically*, at review time:
//
//   unordered-iter          iteration over std::unordered_map/set —
//                           bucket order is load-factor- and
//                           libstdc++-version-dependent, so anything
//                           it feeds (output, merges, metrics) must
//                           sort first or justify why order is
//                           irrelevant (commutative fold).
//   pointer-order           pointer-keyed std::map/set or pointer
//                           hashing — allocator addresses differ run
//                           to run, so the order/placement is noise.
//   banned-random           std::rand / srand / std::random_device /
//                           time(nullptr|NULL|0) outside the seeded
//                           registries (src/sim, src/core/fault,
//                           src/util/rng).
//   uninit-serialized-pod   scalar member with no initializer in a
//                           struct that serializes — uninitialized
//                           padding/fields make byte-identical output
//                           a coin flip.
//   float-amount            float/double arithmetic touching satoshi
//                           amounts — FP rounding is
//                           association-order-sensitive; Amount math
//                           must stay integral (util/amount.hpp is
//                           the sanctioned conversion boundary).
//   docs-drift              metric/span names in code and the marked
//                           registry in docs/OBSERVABILITY.md must
//                           agree in both directions.
//   bad-suppression         a fistlint:allow without a reason (the
//                           reason is the point: suppressions are
//                           reviewed, not waved through).
//
// The concurrency rules extend the same model to lock discipline
// (docs/STATIC_ANALYSIS.md "The rules", lock-discipline rows):
//
//   naked-mutex             a std::mutex / std::shared_mutex member
//                           with no FIST_GUARDED_BY user and no
//                           hierarchy rank — use fist::Mutex
//                           (src/core/lock_order.hpp) or annotate.
//   lock-order              lexically nested acquisitions of ranked
//                           mutexes that contradict the declared
//                           hierarchy (ranks must strictly increase
//                           inward).
//   detached-thread         std::thread::detach anywhere, and raw
//                           std::thread construction outside the
//                           executor — detached threads outlive every
//                           join point the determinism tests control.
//
// The lock-hold-time rules ride the cross-TU call graph
// (summaries.hpp / callgraph.hpp; evaluated in effects.cpp):
//
//   blocking-under-lock     any path from a ranked-lock region to a
//                           blocking effect atom (IO, sleep, wait).
//   alloc-under-lock        heap allocation under a mutex ranked ≥ the
//                           hot-path threshold (--hot-rank-threshold).
//   callback-under-lock     invoking a stored std::function/observer
//                           while holding a ranked mutex.
//   unbounded-growth        a container member of a mutex-owning class
//                           grows with no cap/evict/clear in the tree.
//
// The lock-acquisition-graph rules (lockgraph.hpp/.cpp) run on the
// same call graph, annotated with "acquires rank R" atoms:
//
//   transitive-lock-order   a path from a region holding rank R —
//                           through any number of call hops — to an
//                           acquisition of rank ≤ R. Subsumes the old
//                           lexical lock-order rule (kept as an id for
//                           baseline/allow compatibility, no longer
//                           run).
//   static-deadlock-cycle   a cycle in the acquired-while-held
//                           multigraph over ranked mutexes — two
//                           orders that can interleave into deadlock.
//   unguarded-field         a trailing-underscore field of a mutexed
//                           class accessed in a member function that
//                           is reachable without the class mutex held.
//
// All rules are token-level heuristics: they over-approximate and rely
// on `// fistlint:allow(<rule>) reason` plus the committed baseline
// (baseline.hpp) for the sites a human has vetted.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "lexer.hpp"
#include "lockgraph.hpp"
#include "summaries.hpp"

namespace fistlint {

// Rule identifiers (the strings used in allow() and the baseline).
inline constexpr const char* kRuleUnorderedIter = "unordered-iter";
inline constexpr const char* kRulePointerOrder = "pointer-order";
inline constexpr const char* kRuleBannedRandom = "banned-random";
inline constexpr const char* kRuleUninitPod = "uninit-serialized-pod";
inline constexpr const char* kRuleFloatAmount = "float-amount";
inline constexpr const char* kRuleDocsDrift = "docs-drift";
inline constexpr const char* kRuleBadSuppression = "bad-suppression";
inline constexpr const char* kRuleNakedMutex = "naked-mutex";
inline constexpr const char* kRuleLockOrder = "lock-order";
inline constexpr const char* kRuleDetachedThread = "detached-thread";
inline constexpr const char* kRuleBlockingUnderLock = "blocking-under-lock";
inline constexpr const char* kRuleAllocUnderLock = "alloc-under-lock";
inline constexpr const char* kRuleCallbackUnderLock = "callback-under-lock";
inline constexpr const char* kRuleUnboundedGrowth = "unbounded-growth";
inline constexpr const char* kRuleTransitiveLockOrder =
    "transitive-lock-order";
inline constexpr const char* kRuleDeadlockCycle = "static-deadlock-cycle";
inline constexpr const char* kRuleUnguardedField = "unguarded-field";

/// Every rule id, in report order.
const std::vector<std::string>& all_rules();

/// One reported violation. `snippet` is the normalized source line —
/// the line-number-free identity the baseline matches on.
struct Finding {
  std::string rule;
  std::string file;  ///< root-relative path
  int line = 0;
  std::string message;
  std::string snippet;
};

/// A metric or span name string found in code. `prefix` marks a
/// dynamic name built as `"literal." + expr` — matched against
/// `<placeholder>` wildcard entries in the docs registry.
struct NameUse {
  std::string name;
  bool prefix = false;
  std::string file;
  int line = 0;
};

/// Everything pass 1 learns from one file, in isolation. FileFacts are
/// position-independent and self-contained, which is what lets the
/// incremental cache (cache.hpp) reuse them for unchanged files.
struct FileFacts {
  /// Identifiers declared with an unordered container type.
  std::set<std::string> unordered_symbols;
  /// Identifiers declared with an ordered container type
  /// (std::map/set family) — the sorted-copy idiom's sinks.
  std::set<std::string> ordered_symbols;
  /// fist::Mutex declarations: member name → Rank enumerator.
  std::map<std::string, std::string> mutex_ranks;
  /// Rank enumerator → numeric value (from `enum class Rank`).
  std::map<std::string, long> rank_values;
  /// Metric/span name literals — arguments of `.counter("…")` /
  /// `.gauge("…")` / `.histogram("…", …)` and `obs::Span ident("…")`.
  std::vector<NameUse> names;

  // Cross-TU engine facts (summaries.hpp; collected by
  // collect_summaries, consumed by callgraph.cpp / effects.cpp).
  /// One summary per recognized function definition.
  std::vector<FunctionSummary> summaries;
  /// Identifiers declared with a std::function<…> type.
  std::set<std::string> callable_symbols;
  /// Class qname → container-typed member names declared in it.
  std::map<std::string, std::set<std::string>> container_members;
  /// Classes declaring a ranked fist::Mutex/SharedMutex member.
  std::set<std::string> mutexed_classes;
  /// Grow/shrink method calls on member-shaped receivers.
  std::vector<MemberOp> member_ops;

  // Lock-acquisition-graph facts (lockgraph.hpp; collected by
  // collect_summaries).
  /// Class qname → fist::Mutex/SharedMutex member names declared in it.
  std::map<std::string, std::set<std::string>> class_mutexes;
  /// Class qname → trailing-underscore data-member names (sync
  /// primitives excluded) — the unguarded-field rule's universe.
  std::map<std::string, std::set<std::string>> class_fields;
  /// Class qname → members carrying an explicit FIST_GUARDED_BY.
  std::map<std::string, std::set<std::string>> class_guarded;
};

/// Pass 1: collect every cross-file fact from `file`.
void collect_facts(const SourceFile& file, FileFacts& out);

/// Cross-file state shared by the per-file rules, merged from every
/// file's FileFacts first so a member declared in view.hpp is
/// recognized when view.cpp iterates (or locks) it.
struct ScanContext {
  std::set<std::string> unordered_symbols;
  std::set<std::string> ordered_symbols;
  /// Resolved mutex name → hierarchy rank value (filled by resolve()).
  std::map<std::string, long> mutex_ranks;

  // Cross-TU engine state (merged from FileFacts; the graph is built
  // by resolve()).
  std::vector<FunctionSummary> functions;
  std::set<std::string> callable_symbols;
  std::map<std::string, std::set<std::string>> container_members;
  std::set<std::string> mutexed_classes;
  std::vector<MemberOp> member_ops;
  /// alloc-under-lock fires only for mutexes ranked at or above this
  /// (CLI --hot-rank-threshold; default: the blockstore read slots).
  long hot_rank_threshold = 60;
  CallGraph graph;

  // Lock-acquisition-graph state (built by resolve(), after graph).
  std::map<std::string, std::set<std::string>> class_mutexes;
  std::map<std::string, std::set<std::string>> class_fields;
  std::map<std::string, std::set<std::string>> class_guarded;
  /// "Cls::field" keys that are lock-relevant: annotated
  /// FIST_GUARDED_BY, or observed accessed somewhere under a class
  /// mutex. Fields never touched under a lock are presumed
  /// confined/immutable and the unguarded-field rule stays silent.
  std::set<std::string> locked_fields;
  LockGraph lockgraph;

  void merge(const FileFacts& facts);
  /// Resolves mutex enumerators to numeric ranks (a name declared with
  /// two different ranks in the tree is ambiguous and dropped — the
  /// lock rules stay silent on it rather than guessing) and links the
  /// function summaries into the call graph.
  void resolve();

  /// Deterministic serialization of every cross-file fact findings can
  /// depend on — the incremental cache's context key (cache.hpp). Any
  /// change to a rank, a mutex declaration, a summary, or the
  /// threshold changes this string, so cached findings in *other*
  /// files are invalidated too.
  std::string canonical_facts() const;

 private:
  std::map<std::string, std::string> mutex_enums_;
  std::set<std::string> ambiguous_;
  std::map<std::string, long> rank_values_;
};

/// Pass 2: runs every per-file rule (determinism + concurrency) and
/// returns raw findings (before suppression and baseline filtering).
std::vector<Finding> run_file_rules(const SourceFile& file,
                                    const ScanContext& ctx);

/// The three concurrency rules alone (naked-mutex, lock-order,
/// detached-thread; implemented in concurrency.cpp). run_file_rules
/// already includes them.
void run_concurrency_rules(const SourceFile& file, const ScanContext& ctx,
                           std::vector<Finding>& out);

/// Pass-1 collection for the concurrency rules (Mutex declarations and
/// Rank enumerator values). collect_facts already includes it.
void collect_concurrency_facts(const SourceFile& file, FileFacts& out);

/// The four call-graph rules (blocking-under-lock, alloc-under-lock,
/// callback-under-lock, unbounded-growth; implemented in effects.cpp).
/// run_file_rules already includes them; requires ctx.resolve() to
/// have built the graph.
void run_effect_rules(const SourceFile& file, const ScanContext& ctx,
                      std::vector<Finding>& out);

/// The three lock-acquisition-graph rules (transitive-lock-order,
/// static-deadlock-cycle, unguarded-field; implemented in
/// lockgraph.cpp). run_file_rules already includes them; requires
/// ctx.resolve() to have built the lock graph.
void run_lockgraph_rules(const SourceFile& file, const ScanContext& ctx,
                         std::vector<Finding>& out);

/// The docs-drift check: `doc_text` is docs/OBSERVABILITY.md; the
/// registry is the backticked names between the
/// `<!-- fistlint:names:begin -->` / `:end` markers. Entries may embed
/// a `<placeholder>` segment to match dynamically-built names.
/// Returns findings on the code side (undocumented name, at its use
/// site) and the doc side (documented name with no code use).
std::vector<Finding> docs_drift(const std::vector<NameUse>& code_names,
                                std::string_view doc_text,
                                const std::string& doc_rel);

/// Drops findings covered by a well-formed allow in `file` and appends
/// a bad-suppression finding for every reasonless allow.
std::vector<Finding> apply_allows(std::vector<Finding> findings,
                                  const SourceFile& file);

/// Collapses runs of whitespace so baseline snippets survive pure
/// reformatting.
std::string normalize_snippet(std::string_view line);

}  // namespace fistlint
