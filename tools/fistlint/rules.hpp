// rules.hpp — the determinism-safety rule set.
//
// Every heuristic result in the pipeline must be bit-identical at any
// thread count (DESIGN.md "Execution model"); PR 1–3 enforce that
// dynamically (differential tests, TSan). These rules catch the
// classic ways the property dies *statically*, at review time:
//
//   unordered-iter          iteration over std::unordered_map/set —
//                           bucket order is load-factor- and
//                           libstdc++-version-dependent, so anything
//                           it feeds (output, merges, metrics) must
//                           sort first or justify why order is
//                           irrelevant (commutative fold).
//   pointer-order           pointer-keyed std::map/set or pointer
//                           hashing — allocator addresses differ run
//                           to run, so the order/placement is noise.
//   banned-random           std::rand / srand / std::random_device /
//                           time(nullptr|NULL|0) outside the seeded
//                           registries (src/sim, src/core/fault,
//                           src/util/rng).
//   uninit-serialized-pod   scalar member with no initializer in a
//                           struct that serializes — uninitialized
//                           padding/fields make byte-identical output
//                           a coin flip.
//   float-amount            float/double arithmetic touching satoshi
//                           amounts — FP rounding is
//                           association-order-sensitive; Amount math
//                           must stay integral (util/amount.hpp is
//                           the sanctioned conversion boundary).
//   docs-drift              metric/span names in code and the marked
//                           registry in docs/OBSERVABILITY.md must
//                           agree in both directions.
//   bad-suppression         a fistlint:allow without a reason (the
//                           reason is the point: suppressions are
//                           reviewed, not waved through).
//
// All rules are token-level heuristics: they over-approximate and rely
// on `// fistlint:allow(<rule>) reason` plus the committed baseline
// (baseline.hpp) for the sites a human has vetted.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace fistlint {

// Rule identifiers (the strings used in allow() and the baseline).
inline constexpr const char* kRuleUnorderedIter = "unordered-iter";
inline constexpr const char* kRulePointerOrder = "pointer-order";
inline constexpr const char* kRuleBannedRandom = "banned-random";
inline constexpr const char* kRuleUninitPod = "uninit-serialized-pod";
inline constexpr const char* kRuleFloatAmount = "float-amount";
inline constexpr const char* kRuleDocsDrift = "docs-drift";
inline constexpr const char* kRuleBadSuppression = "bad-suppression";

/// Every rule id, in report order.
const std::vector<std::string>& all_rules();

/// One reported violation. `snippet` is the normalized source line —
/// the line-number-free identity the baseline matches on.
struct Finding {
  std::string rule;
  std::string file;  ///< root-relative path
  int line = 0;
  std::string message;
  std::string snippet;
};

/// A metric or span name string found in code. `prefix` marks a
/// dynamic name built as `"literal." + expr` — matched against
/// `<placeholder>` wildcard entries in the docs registry.
struct NameUse {
  std::string name;
  bool prefix = false;
  std::string file;
  int line = 0;
};

/// Cross-file state shared by the per-file rules: every identifier the
/// tree declares with an unordered container type. Collected over all
/// files first so a member declared in view.hpp is recognized when
/// view.cpp iterates it.
struct ScanContext {
  std::set<std::string> unordered_symbols;
};

/// Pass 1a: record identifiers declared as (or returning)
/// std::unordered_map / std::unordered_set.
void collect_unordered_symbols(const SourceFile& file,
                               std::set<std::string>& out);

/// Pass 1b: record metric/span name literals — arguments of
/// `.counter("…")` / `.gauge("…")` / `.histogram("…", …)` and
/// `obs::Span ident("…")`.
void collect_metric_names(const SourceFile& file, std::vector<NameUse>& out);

/// Pass 2: runs the five per-file rules and returns raw findings
/// (before suppression and baseline filtering).
std::vector<Finding> run_file_rules(const SourceFile& file,
                                    const ScanContext& ctx);

/// The docs-drift check: `doc_text` is docs/OBSERVABILITY.md; the
/// registry is the backticked names between the
/// `<!-- fistlint:names:begin -->` / `:end` markers. Entries may embed
/// a `<placeholder>` segment to match dynamically-built names.
/// Returns findings on the code side (undocumented name, at its use
/// site) and the doc side (documented name with no code use).
std::vector<Finding> docs_drift(const std::vector<NameUse>& code_names,
                                std::string_view doc_text,
                                const std::string& doc_rel);

/// Drops findings covered by a well-formed allow in `file` and appends
/// a bad-suppression finding for every reasonless allow.
std::vector<Finding> apply_allows(std::vector<Finding> findings,
                                  const SourceFile& file);

/// Collapses runs of whitespace so baseline snippets survive pure
/// reformatting.
std::string normalize_snippet(std::string_view line);

}  // namespace fistlint
