#include "callgraph.hpp"

#include <algorithm>

namespace fistlint {

namespace {

std::string last_component(const std::string& name) {
  std::size_t pos = name.rfind("::");
  return pos == std::string::npos ? name : name.substr(pos + 2);
}

bool suffix_match(const std::string& qname, const std::string& name) {
  if (qname == name) return true;
  std::string suffix = "::" + name;
  return qname.size() > suffix.size() &&
         qname.compare(qname.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

/// Witness chains stay readable: deep propagation paths are truncated
/// rather than quoted in full.
std::string clip(std::string s) {
  constexpr std::size_t kMax = 200;
  if (s.size() > kMax) {
    s.resize(kMax - 1);
    s += "…";
  }
  return s;
}

std::string site(const FunctionSummary& fn, int line) {
  return fn.file + ":" + std::to_string(line);
}

}  // namespace

void CallGraph::build(const std::vector<FunctionSummary>& functions,
                      const std::set<std::string>& callables) {
  nodes_.clear();
  by_last_.clear();
  by_qname_.clear();

  std::map<std::string, std::vector<int>> bodies;
  for (std::size_t i = 0; i < functions.size(); ++i)
    bodies[functions[i].qname].push_back(static_cast<int>(i));

  nodes_.reserve(bodies.size());
  for (auto& [qname, idx] : bodies) {
    Node n;
    n.qname = qname;
    n.bodies = std::move(idx);
    by_last_[last_component(qname)].push_back(
        static_cast<int>(nodes_.size()));
    by_qname_[qname] = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(n));
  }

  // Direct effects from each body's atoms and callable invocations.
  for (Node& n : nodes_) {
    for (int b : n.bodies) {
      const FunctionSummary& fn = functions[static_cast<std::size_t>(b)];
      for (const EffectAtom& a : fn.atoms) {
        if (a.kind == EffectAtom::kBlocking && !n.blocking) {
          n.blocking = true;
          n.why_blocking = "`" + a.what + "` (" + site(fn, a.line) + ")";
        }
        if (a.kind == EffectAtom::kAlloc && !n.alloc) {
          n.alloc = true;
          n.why_alloc = "`" + a.what + "` (" + site(fn, a.line) + ")";
        }
      }
      for (const CallSite& c : fn.calls) {
        if (!n.callback && callables.count(last_component(c.name)) != 0) {
          n.callback = true;
          n.why_callback =
              "invokes callable `" + c.name + "` (" + site(fn, c.line) + ")";
        }
      }
    }
  }

  // Cycle-tolerant fixpoint over the call edges. Each bit is set at
  // most once and nodes are visited in sorted-qname order, so the
  // witness chains are deterministic.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Node& n : nodes_) {
      for (int b : n.bodies) {
        const FunctionSummary& fn = functions[static_cast<std::size_t>(b)];
        for (const CallSite& c : fn.calls) {
          for (int ti : resolve(n.qname, c)) {
            const Node& t = nodes_[static_cast<std::size_t>(ti)];
            if (t.blocking && !n.blocking) {
              n.blocking = true;
              n.why_blocking = clip("calls `" + c.name + "` (" +
                                    site(fn, c.line) + ") → " +
                                    t.why_blocking);
              changed = true;
            }
            if (t.alloc && !n.alloc) {
              n.alloc = true;
              n.why_alloc = clip("calls `" + c.name + "` (" +
                                 site(fn, c.line) + ") → " + t.why_alloc);
              changed = true;
            }
            if (t.callback && !n.callback) {
              n.callback = true;
              n.why_callback = clip("calls `" + c.name + "` (" +
                                    site(fn, c.line) + ") → " +
                                    t.why_callback);
              changed = true;
            }
          }
        }
      }
    }
  }
}

std::vector<int> CallGraph::resolve(const std::string& caller_qname,
                                    const CallSite& call) const {
  std::vector<int> out;
  const std::string& name = call.name;

  // Qualified: suffix match over everything sharing the last component.
  if (name.find("::") != std::string::npos) {
    auto it = by_last_.find(last_component(name));
    if (it == by_last_.end()) return out;
    for (int i : it->second)
      if (suffix_match(nodes_[static_cast<std::size_t>(i)].qname, name))
        out.push_back(i);
    return out;
  }

  // Unqualified free call: the caller's enclosing scopes, innermost
  // first, then the global scope.
  if (!call.member) {
    std::string scope = caller_qname;
    std::size_t cut = scope.rfind("::");
    scope = cut == std::string::npos ? std::string() : scope.substr(0, cut);
    while (true) {
      std::string candidate = scope.empty() ? name : scope + "::" + name;
      auto it = by_qname_.find(candidate);
      if (it != by_qname_.end()) {
        out.push_back(it->second);
        return out;
      }
      if (scope.empty()) break;
      cut = scope.rfind("::");
      scope = cut == std::string::npos ? std::string() : scope.substr(0, cut);
    }
  }

  // Member call (or free call the scope walk missed): link only a
  // tree-unique name — the receiver's type is unknown.
  auto it = by_last_.find(name);
  if (it != by_last_.end() && it->second.size() == 1)
    out.push_back(it->second.front());
  return out;
}

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

std::string callgraph_dot(const CallGraph& graph,
                          const std::vector<FunctionSummary>& functions,
                          const std::string& rel) {
  const auto& nodes = graph.nodes();

  auto label = [&](const CallGraph::Node& n) {
    std::string flags;
    if (n.blocking) flags += "[B]";
    if (n.alloc) flags += "[A]";
    if (n.callback) flags += "[C]";
    return flags.empty() ? n.qname : n.qname + " " + flags;
  };

  // Nodes defined in `rel`, plus everything they call directly.
  std::set<int> keep;
  std::set<std::pair<int, int>> edges;
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    bool local = false;
    for (int b : nodes[ni].bodies)
      if (functions[static_cast<std::size_t>(b)].file == rel) local = true;
    if (!local) continue;
    keep.insert(static_cast<int>(ni));
    for (int b : nodes[ni].bodies) {
      const FunctionSummary& fn = functions[static_cast<std::size_t>(b)];
      if (fn.file != rel) continue;
      for (const CallSite& c : fn.calls) {
        for (int ti : graph.resolve(nodes[ni].qname, c)) {
          keep.insert(ti);
          edges.emplace(static_cast<int>(ni), ti);
        }
      }
    }
  }

  std::string out = "digraph fistlint_callgraph {\n  rankdir=LR;\n";
  for (int i : keep) {
    const CallGraph::Node& n = nodes[static_cast<std::size_t>(i)];
    out += "  \"" + dot_escape(n.qname) + "\" [label=\"" +
           dot_escape(label(n)) + "\"];\n";
  }
  for (const auto& [from, to] : edges) {
    out += "  \"" + dot_escape(nodes[static_cast<std::size_t>(from)].qname) +
           "\" -> \"" +
           dot_escape(nodes[static_cast<std::size_t>(to)].qname) + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace fistlint
