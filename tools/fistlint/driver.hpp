// driver.hpp — file discovery, orchestration, reporting.
//
// The driver owns everything around the rules: deriving the file set
// from compile_commands.json (the build is the source of truth for
// what is "in the tree"), the two-pass scan (cross-file symbol and
// name collection, then per-file rules), suppression and baseline
// filtering, the docs-drift comparison, and the findings report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fistlint {

struct Options {
  std::string root = ".";  ///< repo root; all defaults are relative to it
  std::string compile_commands;  ///< empty → root/build/compile_commands.json,
                                 ///< falling back to a src/ glob
  std::string baseline = "tools/fistlint/baseline.txt";
  std::string docs = "docs/OBSERVABILITY.md";
  std::vector<std::string> scan_prefixes = {"src/"};
  bool check_docs = true;
  bool update_baseline = false;
  std::string report;  ///< when set, write the findings report here
  std::vector<std::string> files;  ///< explicit file list (overrides
                                   ///< discovery; paths relative to cwd)
  /// Incremental cache (cache.hpp). Enabled by default for discovery
  /// runs; explicit file lists never use it (their findings would be
  /// computed against a partial ScanContext and must not be reused).
  bool use_cache = true;
  std::string cache;  ///< empty → root/build/fistlint.cache
  /// When set, skip the rules entirely: print the DOT call graph of
  /// the functions defined in this root-relative file (plus their
  /// direct callees) and exit clean.
  std::string dump_callgraph;
  /// When set, skip the rules entirely: print the DOT lock-acquisition
  /// graph (ranked mutexes, acquired-while-held edges) and exit clean.
  bool dump_lockgraph = false;
  /// When set, also write the fresh findings as SARIF 2.1.0 to this
  /// path (written even when there are none — CI uploads it
  /// unconditionally).
  std::string sarif_out;
  /// alloc-under-lock threshold (--hot-rank-threshold); mutexes ranked
  /// below it may allocate under the lock without a finding.
  long hot_rank_threshold = 60;
};

/// Exit codes, also the public contract of the binary.
inline constexpr int kExitClean = 0;    ///< no findings outside baseline
inline constexpr int kExitFindings = 1; ///< new findings
inline constexpr int kExitUsage = 2;    ///< bad invocation / unreadable input

/// Runs the full scan. Findings go to `out`, diagnostics to `err`.
int run(const Options& opts, std::ostream& out, std::ostream& err);

/// The file set a default run scans: `compile_commands.json` entries
/// under a scan prefix, plus every header beneath those prefixes.
/// Sorted, root-relative. Falls back to a filesystem glob (with a
/// note to `err`) when no compile database is readable.
std::vector<std::string> discover_files(const Options& opts,
                                        std::ostream& err);

}  // namespace fistlint
