// fistctl — the fistful command-line tool.
//
// A downstream user's entry point: simulate an economy to disk, run
// the clustering over a chain file, export Figure-2 balance series,
// condensed flow graphs, and follow peeling chains — without writing
// any C++.
//
//   fistctl simulate --days 240 --users 400 --out chain.dat --tags tags.csv
//   fistctl info     --chain chain.dat
//   fistctl cluster  --chain chain.dat --tags tags.csv --out clusters.csv
//   fistctl balances --chain chain.dat --tags tags.csv --out balances.csv
//   fistctl flows    --chain chain.dat --tags tags.csv --dot flows.dot
//   fistctl follow   --chain chain.dat --tags tags.csv
//                    --tx <txid-hex> --vout 0 --hops 100 --out peels.csv
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "analysis/explorer.hpp"
#include "analysis/export.hpp"
#include "core/checkpoint.hpp"
#include "core/fault.hpp"
#include "core/live_index.hpp"
#include "core/obs/export.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/span.hpp"
#include "core/obs/telemetry.hpp"
#include "core/pipeline.hpp"
#include "sim/world.hpp"
#include "tag/feedio.hpp"

namespace {

using namespace fist;

// Exit codes: 2 for bad arguments (everything routed through usage()),
// 1 for runtime failures (fist::Error caught in main), 3 when a
// lenient-recovery run quarantined anything, 0 on success.
[[noreturn]] void usage(const char* why = nullptr) {
  if (why != nullptr) std::fprintf(stderr, "error: %s\n\n", why);
  std::fprintf(stderr, R"(usage: fistctl <command> [options]

commands:
  simulate   generate a synthetic economy
             --days N --users N --seed N --out chain.dat --tags tags.csv
  info       chain statistics
             --chain chain.dat
  cluster    run H1 + refined H2, export address->cluster table
             --chain chain.dat --tags tags.csv [--out clusters.csv] [--naive]
  balances   Figure-2 per-category balance series
             --chain chain.dat --tags tags.csv [--out balances.csv]
  flows      condensed user graph
             --chain chain.dat --tags tags.csv [--dot flows.dot] [--csv flows.csv] [--top N]
  follow     walk a peeling chain from an output
             --chain chain.dat --tags tags.csv --tx TXID --vout N [--hops N] [--out peels.csv]
  entity     profile a named service or cluster
             --chain chain.dat --tags tags.csv (--name "Mt. Gox" | --cluster N)
  live       incremental clustering over a growing chain through a
             crash-safe delta log; reopening the same --delta-log DIR
             resumes from the last durable epoch and replays only the
             log tail
             --chain chain.dat --tags tags.csv --delta-log DIR
             [--naive] [--out clusters.csv] [--snapshot-every N]
             [--follow] [--poll-ms N] [--idle-exit-ms N]
             [--crash-after-epoch N]

pipeline commands (cluster/balances/flows/follow/entity) also take:
  --threads N             concurrency lanes (0 = hardware, 1 = sequential)
  --window N              out-of-core view build: decode at most N
                          blocks at a time (0 = whole chain in memory;
                          results are identical either way)
  --recovery MODE         strict (default: abort on the first bad record)
                          or lenient (quarantine it and continue; the
                          chain file is also opened in recovery mode,
                          resyncing past corrupt record framing)
  --resume PATH           checkpoint manifest: save each finished stage
                          there and resume from whatever is still valid
  --crash-after STAGE     raise SIGKILL after the named stage completes
                          (kill-and-resume testing; use with --resume)

fault injection (accepted by every command; see docs/ROBUSTNESS.md):
  --faults SPEC           arm sites, e.g. "blockstore.read=0.01" or
                          "decode.block=nth:3,net.deliver=0.5"
  --fault-seed N          seed for probabilistic sites (default 0)

observability (accepted by every command):
  --metrics-out PATH      write the metrics registry after the command
                          (PATH of - means stdout)
  --metrics-format FMT    json (default; includes the span tree),
                          prom (Prometheus text), or table (ASCII)
  --trace-out PATH        write the span tree as JSON (- means stdout)
  --serve-metrics PORT    scrape endpoint on 127.0.0.1 for the run's
                          duration: /metrics /progress /events /healthz
                          (0 = ephemeral port, printed on stderr)
  --serve-linger-ms N     keep the scrape endpoint up N ms after the
                          command finishes (scripted scrapers)
  --progress              throttled live progress ticker on stderr
  --events-out PATH       write the flight recorder as JSON Lines after
                          the command (quarantine exits dump
                          fistctl-events.jsonl even without this flag)

exit codes: 0 success, 1 runtime failure, 2 bad arguments,
            3 lenient run completed but quarantined records (details
            on stderr),
            4 live run completed but whole delta-log records were
            quarantined (poisoned checksum / undecodable payload) —
            the surviving index matches a batch run over the
            surviving blocks
)");
  std::exit(2);
}

/// Tiny flag parser: --key value pairs after the command.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage(("unexpected '" + key + "'").c_str());
      if (key == "--naive" || key == "--progress" || key == "--follow") {
        values_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) usage((key + " needs a value").c_str());
      values_[key] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) usage((key + " is required").c_str());
    return it->second;
  }
  long get_long(const std::string& key, long fallback) const {
    std::string v = get(key, "");
    return v.empty() ? fallback : std::stol(v);
  }
  bool has(const std::string& key) const { return values_.contains(key); }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<TagEntry> load_tags(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open tag feed " + path);
  return read_tag_feed(in);
}

/// Writes `content` to `path`, with "-" meaning stdout.
void write_text(const std::string& path, const std::string& content,
                const char* what) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return;
  }
  std::ofstream out(path);
  if (!out) throw Error(std::string("cannot open ") + what + " " + path);
  out << content;
  std::fprintf(stderr, "wrote %s %s\n", what, path.c_str());
}

RecoveryPolicy recovery_of(const Args& args) {
  std::string mode = args.get("--recovery", "strict");
  if (mode == "strict") return RecoveryPolicy::Strict;
  if (mode == "lenient") return RecoveryPolicy::Lenient;
  usage("--recovery must be strict or lenient");
}

/// Opens the chain file for a pipeline command. Lenient recovery also
/// opens the store in recovery mode, so corrupt record *framing* (not
/// just corrupt payloads) is scanned past instead of failing the open.
FileBlockStore open_store(const Args& args) {
  FileBlockStore::OpenOptions open;
  open.recover = recovery_of(args) == RecoveryPolicy::Lenient;
  return FileBlockStore(args.require("--chain"), kMainnetMagic, open);
}

ForensicPipeline make_pipeline(const FileBlockStore& store, const Args& args,
                               bool naive = false) {
  std::vector<TagEntry> feed = load_tags(args.require("--tags"));
  PipelineOptions options;
  options.h2 = naive ? H2Options{} : refined_h2_options();
  options.threads = static_cast<unsigned>(args.get_long("--threads", 0));
  options.window_blocks =
      static_cast<std::uint32_t>(args.get_long("--window", 0));
  options.recovery = recovery_of(args);
  options.crash_after_stage = args.get("--crash-after", "");
  options.checkpoint = args.get("--resume", "");
  if (!options.checkpoint.empty()) {
    // Catch the classic typo before the pipeline turns it into a bare
    // IoError three stages in: the manifest's directory must exist.
    std::filesystem::path parent =
        std::filesystem::path(options.checkpoint).parent_path();
    if (!parent.empty() && !std::filesystem::is_directory(parent))
      usage(("--resume " + options.checkpoint + ": directory '" +
             parent.string() +
             "' does not exist — create it first (mkdir -p " +
             parent.string() + ") or point --resume at an existing one")
                .c_str());
    // Fingerprint the inputs so a manifest written against different
    // data is ignored rather than resumed from.
    options.chain_digest = file_digest_hex(args.require("--chain"));
    options.tags_digest = file_digest_hex(args.require("--tags"));
  }
  return ForensicPipeline(store, std::move(feed), options);
}

/// Emits the per-record quarantine summary (stderr) after a lenient
/// run that set anything aside; the command then exits 3 so scripts
/// can tell "clean" from "completed with casualties".
int finish_pipeline(const ForensicPipeline& pipeline) {
  const IngestReport& report = pipeline.ingest_report();
  if (!report.quarantined()) return 0;
  std::string summary = report.summary();
  std::fwrite(summary.data(), 1, summary.size(), stderr);
  std::fprintf(stderr, "quarantined %zu block(s), %zu transaction(s)\n",
               report.blocks.size(), report.txs.size());
  obs::flight_event("flight.quarantine_exit", "exit code 3",
                    report.blocks.size(), report.txs.size());
  return 3;
}

int cmd_simulate(const Args& args) {
  sim::WorldConfig config;
  config.days = static_cast<int>(args.get_long("--days", 240));
  config.users = static_cast<int>(args.get_long("--users", 400));
  config.seed = static_cast<std::uint64_t>(args.get_long("--seed", 42));
  std::string chain_path = args.require("--out");
  std::string tags_path = args.require("--tags");

  std::fprintf(stderr, "simulating %d days, %d users (seed %llu)...\n",
               config.days, config.users,
               static_cast<unsigned long long>(config.seed));
  sim::World world(config);
  world.run();

  std::remove(chain_path.c_str());
  FileBlockStore store(chain_path);
  for (std::size_t i = 0; i < world.store().count(); ++i)
    store.append(world.store().read(i));

  std::ofstream tags_out(tags_path);
  write_tag_feed(tags_out, world.tag_feed());
  std::fprintf(stderr,
               "wrote %zu blocks (%llu txs) to %s and %zu tags to %s\n",
               store.count(),
               static_cast<unsigned long long>(world.tx_count()),
               chain_path.c_str(), world.tag_feed().size(),
               tags_path.c_str());
  return 0;
}

int cmd_info(const Args& args) {
  FileBlockStore store(args.require("--chain"));
  ChainView view = ChainView::build(store);
  Amount minted = 0;
  Timestamp first = 0, last = 0;
  for (const TxView& tx : view.txs()) {
    if (tx.coinbase) minted += tx.value_out();
    if (first == 0) first = tx.time;
    last = tx.time;
  }
  std::printf("blocks:        %zu\n", store.count());
  std::printf("transactions:  %zu\n", view.tx_count());
  std::printf("addresses:     %zu\n", view.address_count());
  std::printf("minted:        %s BTC\n", format_btc_whole(minted).c_str());
  std::printf("span:          %s .. %s\n", format_date(first).c_str(),
              format_date(last).c_str());
  return 0;
}

int cmd_cluster(const Args& args) {
  FileBlockStore store = open_store(args);
  ForensicPipeline pipeline =
      make_pipeline(store, args, args.has("--naive"));
  pipeline.run();
  std::fprintf(stderr, "%zu addresses -> %zu clusters (%zu named)\n",
               pipeline.view().address_count(),
               pipeline.clustering().cluster_count(),
               pipeline.naming().names().size());
  std::string out_path = args.get("--out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    export_clusters_csv(out, pipeline.view(), pipeline.clustering(),
                        pipeline.naming());
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return finish_pipeline(pipeline);
}

int cmd_balances(const Args& args) {
  FileBlockStore store = open_store(args);
  ForensicPipeline pipeline = make_pipeline(store, args);
  pipeline.run();
  BalanceSeries series = category_balances(
      pipeline.view(), pipeline.clustering(), pipeline.naming(), kWeek);
  std::string out_path = args.get("--out", "");
  if (out_path.empty()) {
    export_balances_csv(std::cout, series);
  } else {
    std::ofstream out(out_path);
    export_balances_csv(out, series);
    std::fprintf(stderr, "wrote %s (%zu snapshots)\n", out_path.c_str(),
                 series.times.size());
  }
  return finish_pipeline(pipeline);
}

int cmd_flows(const Args& args) {
  FileBlockStore store = open_store(args);
  ForensicPipeline pipeline = make_pipeline(store, args);
  pipeline.run();
  UserGraph graph =
      UserGraph::build(pipeline.view(), pipeline.clustering());
  std::fprintf(stderr, "condensed graph: %zu nodes, %zu edges\n",
               graph.node_count(), graph.edge_count());
  std::size_t top = static_cast<std::size_t>(args.get_long("--top", 40));
  std::string dot_path = args.get("--dot", "");
  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    export_flows_dot(out, graph, pipeline.naming(), top);
    std::fprintf(stderr, "wrote %s\n", dot_path.c_str());
  }
  std::string csv_path = args.get("--csv", "");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    export_flows_csv(out, graph, pipeline.naming());
    std::fprintf(stderr, "wrote %s\n", csv_path.c_str());
  }
  if (dot_path.empty() && csv_path.empty())
    export_flows_csv(std::cout, graph, pipeline.naming());
  return finish_pipeline(pipeline);
}

int cmd_follow(const Args& args) {
  FileBlockStore store = open_store(args);
  ForensicPipeline pipeline = make_pipeline(store, args);
  pipeline.run();

  Hash256 txid = Hash256::from_hex_reversed(args.require("--tx"));
  TxIndex start = pipeline.view().find_tx(txid);
  if (start == kNoTx) throw Error("--tx not found in the chain");
  std::uint32_t vout =
      static_cast<std::uint32_t>(args.get_long("--vout", 0));
  int hops = static_cast<int>(args.get_long("--hops", 100));

  PeelFollower follower(pipeline.view(), pipeline.h2(),
                        pipeline.clustering(), pipeline.naming());
  PeelChainResult chain = follower.follow(start, vout, FollowOptions{hops});
  std::fprintf(stderr,
               "followed %d hops (%d by shape), %zu peels, end=%s, "
               "%s BTC remaining\n",
               chain.hops, chain.shape_hops, chain.peels.size(),
               chain.end == ChainEnd::Unspent       ? "unspent"
               : chain.end == ChainEnd::NoChangeLink ? "no-change-link"
                                                     : "max-hops",
               format_btc_whole(chain.final_amount).c_str());
  std::string out_path = args.get("--out", "");
  if (out_path.empty()) {
    export_peels_csv(std::cout, pipeline.view(), chain);
  } else {
    std::ofstream out(out_path);
    export_peels_csv(out, pipeline.view(), chain);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return finish_pipeline(pipeline);
}

int cmd_entity(const Args& args) {
  FileBlockStore store = open_store(args);
  ForensicPipeline pipeline = make_pipeline(store, args);
  pipeline.run();
  Explorer explorer(pipeline.view(), pipeline.clustering(),
                    pipeline.naming());

  ClusterId cluster;
  if (args.has("--name")) {
    auto found = explorer.find_service(args.require("--name"));
    if (!found) throw Error("service name not found in any named cluster");
    cluster = *found;
  } else {
    cluster = static_cast<ClusterId>(args.get_long("--cluster", -1));
  }

  EntityProfile p = explorer.profile(cluster, 8);
  std::printf("entity:        %s (cluster %u)\n",
              explorer.label(cluster).c_str(), cluster);
  if (p.named)
    std::printf("category:      %s\n",
                std::string(category_name(p.category)).c_str());
  std::printf("addresses:     %zu\n", p.addresses);
  std::printf("transactions:  %u\n", p.tx_count);
  std::printf("active:        %s .. %s\n", format_date(p.first_seen).c_str(),
              format_date(p.last_seen).c_str());
  std::printf("received:      %s BTC\n", format_btc_whole(p.received).c_str());
  std::printf("sent:          %s BTC\n", format_btc_whole(p.sent).c_str());
  std::printf("balance:       %s BTC\n", format_btc_whole(p.balance).c_str());
  std::printf("top sources:\n");
  for (auto& [c, v] : p.top_sources)
    std::printf("  %-24s %12s BTC\n", explorer.label(c).c_str(),
                format_btc_whole(v).c_str());
  std::printf("top destinations:\n");
  for (auto& [c, v] : p.top_destinations)
    std::printf("  %-24s %12s BTC\n", explorer.label(c).c_str(),
                format_btc_whole(v).c_str());
  return finish_pipeline(pipeline);
}

/// `fistctl live`: drive a LiveIndex from a (possibly still growing)
/// chain file. Each block is WAL-logged then applied incrementally;
/// reopening the same --delta-log directory resumes from the last
/// durable epoch. Results are bit-identical to `fistctl cluster` over
/// the same blocks (the differential suite enforces it).
int cmd_live(const Args& args) {
  std::vector<TagEntry> feed = load_tags(args.require("--tags"));

  LiveIndex::Options options;
  options.h2 = args.has("--naive") ? H2Options{} : refined_h2_options();
  options.recovery = recovery_of(args);
  options.snapshot_every =
      static_cast<std::uint32_t>(args.get_long("--snapshot-every", 0));
  // Dice-rebound exemption input: the tagged gambling addresses from
  // the feed. (The batch pipeline widens gambling tags through their
  // whole H1 clusters; the live path uses the feed addresses directly
  // — a documented approximation, moot under --naive where the
  // exemption is off and live/batch parity is exact.)
  for (const TagEntry& entry : feed)
    if (entry.tag.category == Category::Gambling)
      options.dice_addresses.push_back(entry.address);

  LiveIndex index(args.require("--delta-log"), options);
  const LiveIndex::OpenInfo& info = index.open_info();
  std::fprintf(stderr,
               "live index open: epoch %llu (snapshot %llu, replayed %llu"
               "%s%s)\n",
               static_cast<unsigned long long>(index.epoch()),
               static_cast<unsigned long long>(info.snapshot_epoch),
               static_cast<unsigned long long>(info.replayed),
               info.snapshot_stale ? ", stale snapshot ignored" : "",
               info.torn_tail_bytes != 0 ? ", torn tail truncated" : "");

  const std::string chain_path = args.require("--chain");
  FileBlockStore::OpenOptions open;
  open.recover = options.recovery == RecoveryPolicy::Lenient;
  const long crash_after = args.get_long("--crash-after-epoch", -1);
  const long poll_ms = args.get_long("--poll-ms", 200);
  const long idle_exit_ms = args.get_long("--idle-exit-ms", 2000);
  const bool follow = args.has("--follow");

  // Record i of the delta log always corresponds to block i of the
  // chain file (quarantined records still hold their index), so the
  // feed position is simply the epoch.
  long idle_ms = 0;
  for (;;) {
    // Reopen per poll: FileBlockStore scans the file on open, so this
    // sees blocks a concurrent `simulate`-style writer appended.
    FileBlockStore store(chain_path, kMainnetMagic, open);
    bool advanced = false;
    while (index.epoch() < store.count()) {
      index.append(store.read(static_cast<std::size_t>(index.epoch())));
      advanced = true;
      if (crash_after >= 0 &&
          index.epoch() == static_cast<std::uint64_t>(crash_after))
        std::raise(SIGKILL);
    }
    if (!follow) break;
    idle_ms = advanced ? 0 : idle_ms + poll_ms;
    if (idle_ms >= idle_exit_ms) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
  index.snapshot();

  Clustering clustering = index.clusterer().clustering();
  TagStore tags;
  for (const TagEntry& entry : feed)
    if (auto id = index.view().addresses().find(entry.address))
      tags.add(*id, entry.tag);
  ClusterNaming naming(clustering.assignment(), clustering.sizes(), tags);
  std::fprintf(stderr, "epoch %llu: %zu addresses -> %zu clusters (%zu named)\n",
               static_cast<unsigned long long>(index.epoch()),
               index.view().address_count(), clustering.cluster_count(),
               naming.names().size());

  std::string out_path = args.get("--out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    export_clusters_csv(out, index.view(), clustering, naming);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }

  if (!index.quarantined_deltas().empty()) {
    std::fprintf(stderr, "quarantined %zu whole delta record(s):",
                 index.quarantined_deltas().size());
    for (std::uint32_t q : index.quarantined_deltas())
      std::fprintf(stderr, " %u", q);
    std::fprintf(stderr, "\n");
    obs::flight_event("flight.quarantine_exit", "exit code 4",
                      index.quarantined_deltas().size());
    return 4;
  }
  const IngestReport& report = index.ingest_report();
  if (report.quarantined()) {
    std::string summary = report.summary();
    std::fwrite(summary.data(), 1, summary.size(), stderr);
    obs::flight_event("flight.quarantine_exit", "exit code 3",
                      report.blocks.size(), report.txs.size());
    return 3;
  }
  return 0;
}

int dispatch(const std::string& command, const Args& args) {
  if (command == "simulate") return cmd_simulate(args);
  if (command == "info") return cmd_info(args);
  if (command == "cluster") return cmd_cluster(args);
  if (command == "balances") return cmd_balances(args);
  if (command == "flows") return cmd_flows(args);
  if (command == "follow") return cmd_follow(args);
  if (command == "entity") return cmd_entity(args);
  if (command == "live") return cmd_live(args);
  usage(("unknown command '" + command + "'").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  std::string command = argv[1];
  Args args(argc, argv, 2);

  std::string metrics_out = args.get("--metrics-out", "");
  std::string trace_out = args.get("--trace-out", "");
  std::string metrics_format = args.get("--metrics-format", "json");
  if (metrics_format != "json" && metrics_format != "prom" &&
      metrics_format != "table")
    usage("--metrics-format must be json, prom, or table");

  if (args.has("--faults")) {
    try {
      fault::Registry::global().arm_from_spec(
          args.get("--faults", ""),
          static_cast<std::uint64_t>(args.get_long("--fault-seed", 0)));
    } catch (const UsageError& e) {
      usage(e.what());
    }
  }

  if (args.has("--progress")) obs::set_progress_console(true);

  // The scrape endpoint runs for the command's duration (plus an
  // optional linger so scripted scrapers can read a finished run);
  // the destructor stops it on every exit path, including throws.
  obs::TelemetryServer server;
  std::string events_out = args.get("--events-out", "");
  if (args.has("--serve-metrics")) {
    long port = args.get_long("--serve-metrics", 0);
    if (port < 0 || port > 65535)
      usage("--serve-metrics PORT must be 0..65535");
    if (!server.start(static_cast<std::uint16_t>(port))) return 1;
    std::fprintf(stderr, "serving metrics on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));
  }

  obs::Trace trace;
  try {
    int code;
    {
      // The command runs under a root span inside fistctl's ambient
      // trace; the pipeline's stage spans nest below it (its internal
      // TraceScope is IfNoneActive).
      obs::TraceScope scope(trace);
      obs::Span root(command.c_str());
      code = dispatch(command, args);
    }
    if (server.running()) {
      long linger = args.get_long("--serve-linger-ms", 0);
      if (linger > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(linger));
      server.stop();
    }
    // The flight recorder outlives the run on disk: always when asked,
    // and unconditionally on a quarantine exit so a code-3 run can be
    // reconstructed after the fact.
    if (!events_out.empty())
      obs::dump_flight_events(events_out);
    else if (code == 3 || code == 4)
      obs::dump_flight_events("fistctl-events.jsonl");
    if (!metrics_out.empty()) {
      obs::Snapshot snapshot = obs::MetricsRegistry::global().snapshot();
      std::string doc = metrics_format == "prom"
                            ? obs::render_prometheus(snapshot)
                        : metrics_format == "table"
                            ? obs::render_table(snapshot)
                            : obs::render_json(snapshot, &trace);
      write_text(metrics_out, doc, "metrics");
    }
    if (!trace_out.empty())
      write_text(trace_out, obs::render_spans_json_array(trace) + "\n",
                 "trace");
    return code;
  } catch (const fist::Error& e) {
    std::fprintf(stderr, "fistctl: %s\n", e.what());
    server.stop();
    if (!events_out.empty()) obs::dump_flight_events(events_out);
    return 1;
  }
}
