#include "core/executor.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/lock_order.hpp"
#include "core/obs/metrics.hpp"
#include "util/error.hpp"

namespace fist {

namespace {

/// Identifies the pool (if any) the current thread is a worker of, so
/// tasks spawned from inside a task land on the owner's deque.
struct ThreadAffinity {
  void* pool = nullptr;
  std::size_t worker_index = 0;
};

thread_local ThreadAffinity tls_affinity;

}  // namespace

struct Executor::Impl {
  struct Worker {
    Mutex deque_mutex{lockorder::Rank::kExecutorWorkerDeque};
    std::deque<std::function<void()>> tasks FIST_GUARDED_BY(deque_mutex);
  };

  /// Shared claim state of one parallel_for call.
  struct ForState {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::size_t grain;
    const std::function<void(std::size_t, std::size_t)>* body;
    const std::atomic<bool>* cancel = nullptr;

    Mutex error_mutex{lockorder::Rank::kExecutorForError};
    std::exception_ptr error FIST_GUARDED_BY(error_mutex);

    Mutex join_mutex{lockorder::Rank::kExecutorForJoin};
    std::condition_variable_any join_cv;
    std::size_t helpers_live FIST_GUARDED_BY(join_mutex) = 0;

    void run_chunks() FIST_EXCLUDES(error_mutex) {
      for (;;) {
        if (cancel->load(std::memory_order_relaxed)) {
          next.store(end);  // stop claiming; running chunks finish
          break;
        }
        std::size_t lo = next.fetch_add(grain);
        if (lo >= end) break;
        std::size_t hi = lo + grain < end ? lo + grain : end;
        try {
          if (fault::fire("executor.task", lo))
            throw Error("fault injected: executor.task");
          (*body)(lo, hi);
        } catch (...) {
          {
            LockGuard lock(error_mutex);
            if (!error) error = std::current_exception();
          }
          next.store(end);  // abandon unclaimed chunks
        }
      }
    }
  };

  unsigned lanes;
  std::vector<std::unique_ptr<Worker>> workers;
  Mutex injection_mutex{lockorder::Rank::kExecutorInjection};
  std::deque<std::function<void()>> injection FIST_GUARDED_BY(injection_mutex);

  // Scheduling metrics (the `exec.` namespace is explicitly
  // thread-count-dependent — see docs/OBSERVABILITY.md). Handles are
  // bound once here; mutation is lock-free.
  obs::Counter tasks_metric =
      obs::MetricsRegistry::global().counter("exec.tasks");
  obs::Counter steals_metric =
      obs::MetricsRegistry::global().counter("exec.steals");
  obs::Counter parallel_fors_metric =
      obs::MetricsRegistry::global().counter("exec.parallel_fors");
  obs::Gauge queue_hwm_metric =
      obs::MetricsRegistry::global().gauge("exec.queue_depth_hwm");

  Mutex sleep_mutex{lockorder::Rank::kExecutorSleep};
  std::condition_variable_any sleep_cv;
  std::atomic<std::size_t> queued{0};
  std::atomic<bool> stopping{false};
  std::atomic<bool> cancelled{false};

  std::vector<std::thread> threads;

  explicit Impl(unsigned lane_count) : lanes(lane_count) {
    unsigned spawned = lanes - 1;
    workers.reserve(spawned);
    for (unsigned i = 0; i < spawned; ++i)
      // fistlint:allow(unbounded-growth) filled once at construction,
      // bounded by the lane count; never grows afterwards.
      workers.push_back(std::make_unique<Worker>());
    threads.reserve(spawned);
    for (unsigned i = 0; i < spawned; ++i)
      // fistlint:allow(unbounded-growth) filled once at construction,
      // bounded by the lane count; never grows afterwards.
      threads.emplace_back([this, i] { worker_main(i); });
  }

  ~Impl() {
    stopping.store(true);
    {
      LockGuard lock(sleep_mutex);  // order sleepers' stopping check
    }
    sleep_cv.notify_all();
    for (std::thread& t : threads) t.join();
  }

  void submit(std::function<void()> task) {
    if (tls_affinity.pool == this) {
      Worker& own = *workers[tls_affinity.worker_index];
      LockGuard lock(own.deque_mutex);
      own.tasks.push_back(std::move(task));  // owner's LIFO end
    } else {
      LockGuard lock(injection_mutex);
      injection.push_back(std::move(task));
    }
    queue_hwm_metric.update_max(
        static_cast<std::int64_t>(queued.fetch_add(1) + 1));
    sleep_cv.notify_one();
  }

  /// Pops one task: own deque LIFO, then injection queue, then steals
  /// FIFO from peers. Returns false when every queue is empty.
  bool try_acquire(std::function<void()>& out) {
    if (tls_affinity.pool == this) {
      Worker& own = *workers[tls_affinity.worker_index];
      LockGuard lock(own.deque_mutex);
      if (!own.tasks.empty()) {
        out = std::move(own.tasks.back());
        own.tasks.pop_back();
        queued.fetch_sub(1);
        return true;
      }
    }
    {
      LockGuard lock(injection_mutex);
      if (!injection.empty()) {
        out = std::move(injection.front());
        injection.pop_front();
        queued.fetch_sub(1);
        return true;
      }
    }
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (tls_affinity.pool == this && tls_affinity.worker_index == i) continue;
      Worker& victim = *workers[i];
      LockGuard lock(victim.deque_mutex);
      if (!victim.tasks.empty()) {
        out = std::move(victim.tasks.front());  // thief's FIFO end
        victim.tasks.pop_front();
        queued.fetch_sub(1);
        steals_metric.inc();
        return true;
      }
    }
    return false;
  }

  void worker_main(std::size_t index) {
    tls_affinity.pool = this;
    tls_affinity.worker_index = index;
    std::function<void()> task;
    for (;;) {
      if (try_acquire(task)) {
        task();
        task = nullptr;
        tasks_metric.inc();
        continue;
      }
      UniqueLock lock(sleep_mutex);
      sleep_cv.wait(lock, [this] {
        return stopping.load() || queued.load() > 0;
      });
      if (stopping.load()) break;
    }
    tls_affinity.pool = nullptr;
  }

  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body) {
    if (end <= begin) return;
    if (cancelled.load(std::memory_order_relaxed))
      throw CancelledError("Executor::parallel_for");
    parallel_fors_metric.inc();
    std::size_t n = end - begin;
    if (grain == 0) {
      std::size_t target = static_cast<std::size_t>(lanes) * 4;
      grain = (n + target - 1) / target;
      if (grain == 0) grain = 1;
    }

    // Inline fast path: no workers, or nothing worth splitting. Chunks
    // run on the caller, in index order — the reference semantics.
    std::size_t chunk_count = (n + grain - 1) / grain;
    if (lanes == 1 || chunk_count == 1) {
      for (std::size_t lo = begin; lo < end; lo += grain) {
        if (cancelled.load(std::memory_order_relaxed))
          throw CancelledError("Executor::parallel_for");
        std::size_t hi = lo + grain < end ? lo + grain : end;
        if (fault::fire("executor.task", lo))
          throw Error("fault injected: executor.task");
        body(lo, hi);
      }
      return;
    }

    auto state = std::make_shared<ForState>();
    state->next.store(begin);
    state->end = end;
    state->grain = grain;
    state->body = &body;
    state->cancel = &cancelled;

    std::size_t helper_count = lanes - 1 < chunk_count - 1
                                   ? lanes - 1
                                   : chunk_count - 1;
    {
      LockGuard lock(state->join_mutex);  // helpers not yet live, but
      state->helpers_live = helper_count; // keep the access guarded
    }
    for (std::size_t i = 0; i < helper_count; ++i) {
      submit([state] {
        state->run_chunks();
        {
          LockGuard lock(state->join_mutex);
          --state->helpers_live;
        }
        state->join_cv.notify_all();
      });
    }

    state->run_chunks();  // the caller is a lane too

    // Join, executing other queued tasks while helpers drain: a helper
    // still queued can be picked up right here, so nested parallel_for
    // from inside pool tasks cannot starve the pool. The waits are
    // explicit loops (not cv.wait(lock, pred)) so the guarded
    // helpers_live reads stay inside this annotated scope.
    std::function<void()> task;
    for (;;) {
      {
        LockGuard lock(state->join_mutex);
        if (state->helpers_live == 0) break;
      }
      if (try_acquire(task)) {
        task();
        task = nullptr;
        tasks_metric.inc();
        continue;
      }
      UniqueLock lock(state->join_mutex);
      while (state->helpers_live != 0 && queued.load() == 0)
        state->join_cv.wait(lock);
      if (state->helpers_live == 0) break;
    }

    std::exception_ptr error;
    {
      LockGuard lock(state->error_mutex);
      error = state->error;
    }
    if (error) std::rethrow_exception(error);
    if (cancelled.load(std::memory_order_relaxed))
      throw CancelledError("Executor::parallel_for");
  }
};

Executor::Executor(unsigned threads) {
  if (threads == 0) threads = default_threads();
  impl_ = std::make_unique<Impl>(threads);
}

Executor::~Executor() = default;

unsigned Executor::worker_count() const noexcept { return impl_->lanes; }

void Executor::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  impl_->parallel_for(begin, end, grain, body);
}

void Executor::parallel_for_each(std::size_t begin, std::size_t end,
                                 const std::function<void(std::size_t)>& body) {
  parallel_for(begin, end, 0, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void Executor::request_cancel() noexcept {
  impl_->cancelled.store(true, std::memory_order_relaxed);
}

void Executor::reset_cancel() noexcept {
  impl_->cancelled.store(false, std::memory_order_relaxed);
}

bool Executor::cancel_requested() const noexcept {
  return impl_->cancelled.load(std::memory_order_relaxed);
}

unsigned Executor::default_threads() noexcept {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace fist
