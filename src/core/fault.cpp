#include "core/fault.hpp"

#include <atomic>
#include <map>

#include "core/lock_order.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"
#include "util/error.hpp"

namespace fist::fault {

namespace {

/// FNV-1a over the site name: stable site identity across runs.
std::uint64_t site_hash(std::string_view site) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : site) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates (seed, site, key) into uniform
/// bits. Pure, so the decision for a key never depends on probe order.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
double unit(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

struct Registry::Impl {
  struct Site {
    double rate = 0;
    std::uint64_t seed = 0;
    bool exact = false;       ///< fire only on key == nth
    std::uint64_t nth = 0;
    std::uint64_t checked = 0;
    std::uint64_t fired = 0;
    obs::Counter metric;
  };

  mutable Mutex fault_mutex{lockorder::Rank::kFaultRegistry};
  std::map<std::string, Site, std::less<>> sites FIST_GUARDED_BY(fault_mutex);
  std::atomic<std::size_t> armed{0};

  static bool decide(const Site& s, std::string_view name,
                     std::uint64_t key) noexcept {
    if (s.exact) return key == s.nth;
    if (s.rate <= 0) return false;
    if (s.rate >= 1) return true;
    return unit(mix(s.seed ^ site_hash(name) ^ (key * 0x9e3779b97f4a7c15ull))) <
           s.rate;
  }
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::arm(std::string_view site, double rate, std::uint64_t seed) {
  Impl& im = impl();
  LockGuard lock(im.fault_mutex);
  Impl::Site& s = im.sites[std::string(site)];
  s = Impl::Site{};
  s.rate = rate;
  s.seed = seed;
  // fistlint:allow(alloc-under-lock) arming is test-harness setup, not
  // a hot path; it runs once per site before the pipeline starts.
  s.metric = obs::MetricsRegistry::global().counter("fault.injected." +
                                                    std::string(site));
  im.armed.store(im.sites.size(), std::memory_order_release);
}

void Registry::arm_nth(std::string_view site, std::uint64_t nth) {
  arm(site, 0.0, 0);
  Impl& im = impl();
  LockGuard lock(im.fault_mutex);
  Impl::Site& s = im.sites[std::string(site)];
  s.exact = true;
  s.nth = nth;
}

void Registry::disarm(std::string_view site) {
  Impl& im = impl();
  LockGuard lock(im.fault_mutex);
  auto it = im.sites.find(site);
  if (it != im.sites.end()) im.sites.erase(it);
  im.armed.store(im.sites.size(), std::memory_order_release);
}

void Registry::disarm_all() {
  Impl& im = impl();
  LockGuard lock(im.fault_mutex);
  im.sites.clear();
  im.armed.store(0, std::memory_order_release);
}

bool Registry::any_armed() const noexcept {
  return impl().armed.load(std::memory_order_acquire) != 0;
}

bool Registry::fire(std::string_view site, std::uint64_t key) {
  Impl& im = impl();
  if (im.armed.load(std::memory_order_acquire) == 0) return false;
  LockGuard lock(im.fault_mutex);
  auto it = im.sites.find(site);
  if (it == im.sites.end()) return false;
  Impl::Site& s = it->second;
  ++s.checked;
  if (!Impl::decide(s, site, key)) return false;
  ++s.fired;
  s.metric.inc();
  // flight_event is lock-free, so recording under fault_mutex is fine
  // (and keeps site/key/fired consistent in the event).
  // fistlint:allow(alloc-under-lock) the flagged `new` is the recorder's
  // one-time lazy global init; steady-state is a lock-free ring write.
  obs::flight_event("flight.fault_injected", site, key, s.fired);
  return true;
}

bool Registry::peek(std::string_view site, std::uint64_t key) const {
  Impl& im = impl();
  LockGuard lock(im.fault_mutex);
  auto it = im.sites.find(site);
  if (it == im.sites.end()) return false;
  return Impl::decide(it->second, site, key);
}

std::uint64_t Registry::checked(std::string_view site) const {
  Impl& im = impl();
  LockGuard lock(im.fault_mutex);
  auto it = im.sites.find(site);
  return it == im.sites.end() ? 0 : it->second.checked;
}

std::uint64_t Registry::fired(std::string_view site) const {
  Impl& im = impl();
  LockGuard lock(im.fault_mutex);
  auto it = im.sites.find(site);
  return it == im.sites.end() ? 0 : it->second.fired;
}

void Registry::arm_from_spec(const std::string& spec, std::uint64_t seed) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw UsageError("fault spec entry '" + entry +
                       "' is not site=rate or site=nth:N");
    std::string site = entry.substr(0, eq);
    std::string value = entry.substr(eq + 1);
    try {
      if (value.rfind("nth:", 0) == 0) {
        arm_nth(site, std::stoull(value.substr(4)));
      } else {
        double rate = std::stod(value);
        if (rate < 0 || rate > 1)
          throw UsageError("fault rate for '" + site + "' not in [0,1]");
        arm(site, rate, seed);
      }
    } catch (const UsageError&) {
      throw;
    } catch (const std::exception&) {
      throw UsageError("cannot parse fault spec value '" + value + "'");
    }
  }
}

bool fire(std::string_view site, std::uint64_t key) {
  return Registry::global().fire(site, key);
}

}  // namespace fist::fault
