#include "core/delta_log.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "core/fault.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace fist {

namespace {

/// Record framing: magic, payload length, truncated sha256d(payload).
constexpr std::uint32_t kDeltaMagic = 0x464c5444u;  // "DTLF" on disk
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::uint32_t kMaxPayload = 32u * 1024 * 1024;
constexpr int kAppendAttempts = 3;

struct DeltaLogMetrics {
  obs::Counter appends;
  obs::Counter retries;
  obs::Counter poisoned;

  static const DeltaLogMetrics& get() {
    static const DeltaLogMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      DeltaLogMetrics m;
      m.appends = r.counter("delta.log.appends");
      m.retries = r.counter("delta.log.retries");
      m.poisoned = r.counter("delta.log.poisoned");
      return m;
    }();
    return metrics;
  }
};

std::uint32_t read_u32le(const Bytes& data, std::size_t off) {
  return static_cast<std::uint32_t>(data[off]) |
         static_cast<std::uint32_t>(data[off + 1]) << 8 |
         static_cast<std::uint32_t>(data[off + 2]) << 16 |
         static_cast<std::uint32_t>(data[off + 3]) << 24;
}

bool checksum_matches(const Bytes& data, std::size_t payload_off,
                      std::uint32_t len, std::size_t sum_off) {
  Sha256::Digest digest =
      sha256d(ByteView(data.data() + payload_off, len));
  for (std::size_t i = 0; i < 8; ++i)
    if (digest[i] != data[sum_off + i]) return false;
  return true;
}

}  // namespace

DeltaLog::DeltaLog(std::filesystem::path path, const OpenOptions& options)
    : path_(std::move(path)) {
  if (!std::filesystem::exists(path_)) {
    std::ofstream create(path_, std::ios::binary);
    if (!create) throw IoError("delta log: cannot create " + path_.string());
  }
  scan(options);
}

void DeltaLog::scan(const OpenOptions& options) {
  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path_, ec);
  if (ec) throw IoError("delta log: cannot stat " + path_.string());
  Bytes data;
  if (file_size > 0) {
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw IoError("delta log: cannot open " + path_.string());
    data.resize(file_size);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (!in) throw IoError("delta log: short read on " + path_.string());
  }

  std::size_t off = 0;
  while (off < data.size()) {
    if (data.size() - off < kHeaderSize) {
      // Incomplete header: the torn tail of an interrupted append.
      report_.torn_tail_bytes = data.size() - off;
      break;
    }
    const std::uint32_t magic = read_u32le(data, off);
    const std::uint32_t len = read_u32le(data, off + 4);
    if (magic != kDeltaMagic || len > kMaxPayload) {
      if (!options.recover)
        throw ParseError("delta log: bad record framing at offset " +
                         std::to_string(off) + " in " + path_.string());
      // Resync: byte-scan forward for the next plausible record start.
      std::size_t probe = off + 1;
      while (probe + 4 <= data.size() && read_u32le(data, probe) != kDeltaMagic)
        ++probe;
      if (probe + 4 > data.size()) probe = data.size();
      report_.resynced_bytes += probe - off;
      off = probe;
      continue;
    }
    if (data.size() - off < kHeaderSize + len) {
      // Complete header, incomplete payload: torn tail.
      report_.torn_tail_bytes = data.size() - off;
      break;
    }
    const std::size_t payload_off = off + kHeaderSize;
    const bool ok = checksum_matches(data, payload_off, len, off + 8);
    if (!ok && !options.recover)
      throw ParseError("delta log: checksum mismatch at record " +
                       std::to_string(records_.size()) + " in " +
                       path_.string());
    records_.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(payload_off),
                          data.begin() +
                              static_cast<std::ptrdiff_t>(payload_off + len));
    poisoned_.push_back(ok ? std::uint8_t{0} : std::uint8_t{1});
    if (!ok) {
      report_.poisoned.push_back(
          static_cast<std::uint32_t>(records_.size() - 1));
      DeltaLogMetrics::get().poisoned.inc();
    }
    off = payload_off + len;
    tail_ = off;
  }

  // Truncate everything past the last parsed record (the torn tail,
  // or trailing garbage no resync could rescue) so the next append
  // starts on a clean boundary — FileBlockStore's discipline.
  if (file_size > tail_) {
    std::filesystem::resize_file(path_, tail_, ec);
    if (ec) throw IoError("delta log: cannot truncate " + path_.string());
  }
}

std::uint32_t DeltaLog::append(ByteView payload) {
  if (payload.size() > kMaxPayload)
    throw UsageError("delta log: payload exceeds the record size cap");
  const std::uint32_t index = static_cast<std::uint32_t>(records_.size());
  Writer w;
  w.u32le(kDeltaMagic);
  w.u32le(static_cast<std::uint32_t>(payload.size()));
  Sha256::Digest digest = sha256d(payload);
  w.bytes(ByteView(digest.data(), 8));
  w.bytes(payload);
  const Bytes frame = w.take();

  const DeltaLogMetrics& m = DeltaLogMetrics::get();
  for (int attempt = 0;; ++attempt) {
    // Key varies per attempt so nth-armed tests can fail attempt 0 and
    // let the retry succeed.
    const bool injected =
        fault::fire("delta.log.append",
                    (static_cast<std::uint64_t>(index) << 3) |
                        static_cast<std::uint64_t>(attempt));
    bool ok = false;
    if (!injected) {
      // Roll back any partial bytes a failed attempt left, then write
      // the whole frame at the record boundary.
      std::error_code ec;
      std::filesystem::resize_file(path_, tail_, ec);
      if (!ec) {
        std::FILE* f = std::fopen(path_.string().c_str(), "r+b");
        if (f != nullptr) {
          ok = std::fseek(f, static_cast<long>(tail_), SEEK_SET) == 0 &&
               std::fwrite(frame.data(), 1, frame.size(), f) == frame.size() &&
               std::fflush(f) == 0;
          std::fclose(f);
        }
      }
    }
    if (ok) break;
    if (attempt + 1 >= kAppendAttempts)
      throw IoError("delta log: append failed after " +
                    std::to_string(kAppendAttempts) + " attempts: " +
                    path_.string());
    m.retries.inc();
    obs::flight_event("flight.delta.retry", path_.filename().string(), index,
                      attempt);
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
  }

  tail_ += frame.size();
  records_.emplace_back(payload.begin(), payload.end());
  poisoned_.push_back(0);
  m.appends.inc();
  return index;
}

}  // namespace fist
