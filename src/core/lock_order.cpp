#include "core/lock_order.hpp"

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

namespace fist::lockorder {
namespace {

void default_violation_handler(Rank held, Rank acquiring) {
  std::fprintf(stderr,
               "fistful: lock hierarchy violation: acquiring %s (rank %d) "
               "while holding %s (rank %d) — see src/core/lock_order.hpp\n",
               rank_name(acquiring), static_cast<int>(acquiring),
               rank_name(held), static_cast<int>(held));
  std::abort();
}

std::atomic<bool> g_enforcing{
#if FISTFUL_LOCK_ORDER_CHECKS
    true
#else
    false
#endif
};
std::atomic<ViolationHandler> g_handler{&default_violation_handler};
std::atomic<ViolationObserver> g_observer{nullptr};

// The calling thread's held ranks, in acquisition order. Deliberately
// a trivially-destructible POD (fixed array + count), NOT a vector: a
// thread_local with a destructor is torn down in unspecified order
// relative to other thread_locals, and some of those destructors lock
// ranked mutexes on their way out (e.g. per-thread metrics state
// unregistering with MetricsRegistry). A vector here would be mutated
// after its own destructor ran — heap corruption at thread exit. A
// trivial type is never destroyed, so note_acquire/note_release stay
// safe at any point of thread or process teardown.
//
// Capacity comfortably exceeds the hierarchy depth (one slot per rank
// would already suffice since equal ranks are violations); on the
// impossible overflow we stop recording rather than write out of
// bounds, degrading to fewer checks, never to corruption.
struct HeldStack {
  static constexpr std::size_t kCapacity = 32;
  Rank ranks[kCapacity];
  std::size_t count;
};
thread_local constinit HeldStack tls_held{};

}  // namespace

const char* rank_name(Rank rank) noexcept {
  switch (rank) {
    case Rank::kExecutorWorkerDeque: return "kExecutorWorkerDeque";
    case Rank::kExecutorInjection: return "kExecutorInjection";
    case Rank::kExecutorSleep: return "kExecutorSleep";
    case Rank::kExecutorForJoin: return "kExecutorForJoin";
    case Rank::kExecutorForError: return "kExecutorForError";
    case Rank::kBlockstoreReadSlot: return "kBlockstoreReadSlot";
    case Rank::kAddrBookShard: return "kAddrBookShard";
    case Rank::kFaultRegistry: return "kFaultRegistry";
    case Rank::kObsTrace: return "kObsTrace";
    case Rank::kObsProgressBoard: return "kObsProgressBoard";
    case Rank::kTelemetryServer: return "kTelemetryServer";
    case Rank::kObsMetricsRegistry: return "kObsMetricsRegistry";
  }
  return "<unknown rank>";
}

bool enforcing() noexcept { return g_enforcing.load(std::memory_order_relaxed); }

void set_enforcing(bool on) noexcept {
  g_enforcing.store(on, std::memory_order_relaxed);
}

ViolationHandler set_violation_handler(ViolationHandler handler) noexcept {
  if (handler == nullptr) handler = &default_violation_handler;
  return g_handler.exchange(handler);
}

ViolationObserver set_violation_observer(ViolationObserver observer) noexcept {
  return g_observer.exchange(observer);
}

void note_acquire(Rank rank) noexcept {
  // Strictly increasing: re-acquiring an equal rank is also a
  // violation (std::mutex is non-recursive, and two same-rank locks
  // held together can deadlock against a peer thread).
  for (std::size_t i = 0; i < tls_held.count; ++i) {
    if (tls_held.ranks[i] >= rank) {
      // Observer first: it must not lock (the flight recorder's ring
      // is atomics only), and it must run even when the handler
      // aborts — that is the whole point of a post-mortem trail.
      if (ViolationObserver obs = g_observer.load(std::memory_order_relaxed))
        obs(tls_held.ranks[i], rank);
      g_handler.load(std::memory_order_relaxed)(tls_held.ranks[i], rank);
      break;
    }
  }
  if (tls_held.count < HeldStack::kCapacity) {
    tls_held.ranks[tls_held.count++] = rank;
  }
}

void note_release(Rank rank) noexcept {
  // Remove the topmost matching rank; releases may interleave (a
  // UniqueLock unlocked out of scope order), so search from the top.
  for (std::size_t i = tls_held.count; i-- > 0;) {
    if (tls_held.ranks[i] == rank) {
      for (std::size_t j = i + 1; j < tls_held.count; ++j) {
        tls_held.ranks[j - 1] = tls_held.ranks[j];
      }
      --tls_held.count;
      return;
    }
  }
}

std::size_t held_count() noexcept { return tls_held.count; }

}  // namespace fist::lockorder
