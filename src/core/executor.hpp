// executor.hpp — work-stealing thread-pool executor for the forensic
// passes.
//
// Every parallel pass in the pipeline shares one scheduling substrate:
// a fixed set of workers, each owning a LIFO task deque, stealing FIFO
// from its peers (and from a shared injection queue) when idle. The
// caller of parallel_for participates as one lane and, while joining,
// keeps executing queued tasks — so nested parallel_for calls from
// inside worker tasks cannot deadlock the pool.
//
// Determinism contract: parallel_for promises nothing about chunk
// execution order, so passes built on it must shard into
// thread-count-independent units and merge with commutative/associative
// (or explicitly ordered) reductions — see DESIGN.md "Execution model".
// An Executor constructed with threads == 1 spawns no workers at all
// and runs every chunk inline, in index order, on the calling thread:
// that configuration is the reference semantics the parallel passes are
// tested against.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace fist {

/// Work-stealing thread pool. Thread-safe: parallel_for may be invoked
/// concurrently from multiple threads, including from inside tasks
/// running on the pool (nested parallelism).
class Executor {
 public:
  /// `threads` — total concurrency lanes, including the calling thread
  /// (so `threads - 1` workers are spawned). 0 → default_threads().
  explicit Executor(unsigned threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Total lanes (spawned workers + the participating caller). ≥ 1.
  unsigned worker_count() const noexcept;

  /// True when worker_count() == 1: parallel_for runs inline.
  bool inline_mode() const noexcept { return worker_count() == 1; }

  /// Runs `body(lo, hi)` over chunked subranges covering [begin, end).
  /// Chunks are at most `grain` long (grain 0 → an automatic grain
  /// targeting ~4 chunks per lane). Blocks until every chunk finished.
  /// If any chunk throws, remaining chunks are abandoned and the first
  /// exception (in claim order) is rethrown here, on the caller.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Index-wise convenience: body(i) for each i in [begin, end).
  void parallel_for_each(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body);

  /// Cooperative cancellation, for strict-mode teardown: after
  /// request_cancel(), an in-flight parallel_for stops claiming new
  /// chunks (already-running chunks finish) and the call — and every
  /// subsequent parallel_for — throws CancelledError, unless a body
  /// exception is already pending (the body's error wins, so the fault
  /// that triggered the teardown is what propagates). reset_cancel()
  /// re-arms the pool for reuse.
  void request_cancel() noexcept;
  void reset_cancel() noexcept;
  bool cancel_requested() const noexcept;

  /// std::thread::hardware_concurrency, clamped to ≥ 1.
  static unsigned default_threads() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fist
