// delta_log.hpp — the checksummed write-ahead log behind the live
// cluster index.
//
// One record per appended block delta: fixed framing (magic, payload
// length, truncated sha256d of the payload) followed by the payload.
// The log is the *durable source of truth* — LiveIndex appends here
// before applying anything in memory, so a kill -9 at any instant
// loses at most the record being written, and that torn tail is
// detected and physically truncated on the next open (the same
// discipline as FileBlockStore).
//
// Corruption handling mirrors the ingest recovery policies:
//   * torn tail (incomplete final record): dropped and truncated away
//     in both modes — it is the expected crash artifact, not damage;
//   * checksum mismatch with intact framing: strict throws ParseError,
//     recover marks the record *poisoned* (it keeps its index so later
//     records stay addressable) and continues;
//   * mangled framing (bad magic / absurd length): strict throws,
//     recover byte-scans forward for the next record boundary.
//
// Appends probe the `delta.log.append` fault site and retry transient
// failures with backoff (the file is truncated back to the record
// boundary before each attempt, so a failed attempt never leaves
// partial bytes behind a later success).
//
// Single-threaded by contract, like the checkpoint writer: one
// LiveIndex owns one DeltaLog; no internal locking.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "util/bytes.hpp"

namespace fist {

/// Append-only checksummed record log, fully indexed in memory (the
/// payloads are block deltas the owning index applies anyway; the log
/// is the durability layer, not an archive format).
class DeltaLog {
 public:
  struct OpenOptions {
    /// Recover around mid-log corruption (poison / resync) instead of
    /// throwing ParseError. Torn tails are truncated in both modes.
    bool recover = false;
  };

  /// What the opening scan found beyond clean records.
  struct OpenReport {
    std::uint64_t torn_tail_bytes = 0;  ///< truncated crash artifact
    std::uint64_t resynced_bytes = 0;   ///< skipped while resyncing
    std::vector<std::uint32_t> poisoned;  ///< checksum-mismatch records
    bool clean() const noexcept {
      return torn_tail_bytes == 0 && resynced_bytes == 0 && poisoned.empty();
    }
  };

  /// Opens (creating if needed) `path` and scans existing records.
  DeltaLog(std::filesystem::path path, const OpenOptions& options);
  explicit DeltaLog(std::filesystem::path path)
      : DeltaLog(std::move(path), OpenOptions{}) {}

  /// Appends one record durably (fsync-less fflush: the crash model is
  /// process death, not power loss — matching FileBlockStore) and
  /// returns its index. Probes `delta.log.append` with key
  /// (index << 3 | attempt); transient failures retry with 1/2/4 ms
  /// backoff, then throw IoError.
  std::uint32_t append(ByteView payload);

  std::size_t record_count() const noexcept { return records_.size(); }

  /// Payload of record `index` (valid even for poisoned records — the
  /// bytes as read; callers must check poisoned() first).
  const Bytes& payload(std::size_t index) const { return records_[index]; }

  /// True when record `index` failed its checksum at open.
  bool poisoned(std::size_t index) const {
    return poisoned_[index] != 0;
  }

  const OpenReport& open_report() const noexcept { return report_; }
  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  void scan(const OpenOptions& options);

  std::filesystem::path path_;
  std::vector<Bytes> records_;
  std::vector<std::uint8_t> poisoned_;
  std::uint64_t tail_ = 0;  ///< end offset of the last valid record
  OpenReport report_;
};

}  // namespace fist
