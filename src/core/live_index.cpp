#include "core/live_index.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/fault.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/span.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/serialize.hpp"

namespace fist {

namespace {

constexpr std::uint32_t kLiveSnapshotVersion = 1;
constexpr int kSnapshotAttempts = 3;

/// Live-index metrics. `delta.snapshots` is deterministic;
/// `delta.apply_micros` is wall-clock latency and carved out of the
/// determinism contract (see docs/OBSERVABILITY.md).
struct LiveMetrics {
  obs::Counter snapshots;
  obs::Histogram apply_micros;

  static const LiveMetrics& get() {
    static const LiveMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      LiveMetrics m;
      m.snapshots = r.counter("delta.snapshots");
      m.apply_micros =
          r.histogram("delta.apply_micros",
                      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
                       50000, 100000, 250000, 1000000});
      return m;
    }();
    return metrics;
  }
};

}  // namespace

LiveIndex::LiveIndex(std::filesystem::path dir, Options options)
    : dir_(std::move(dir)),
      options_(std::move(options)),
      clusterer_(options_.h2, options_.dice_addresses) {
  open();
}

void LiveIndex::open() {
  std::filesystem::create_directories(dir_);
  DeltaLog::OpenOptions log_options;
  log_options.recover = options_.recovery == RecoveryPolicy::Lenient;
  log_ = std::make_unique<DeltaLog>(log_path(), log_options);
  info_.torn_tail_bytes = log_->open_report().torn_tail_bytes;

  std::uint64_t start = 0;
  if (auto manifest = load_manifest()) {
    // A manifest epoch beyond the log means log-level corruption ate
    // record slots; the only safe recovery is a full replay.
    if (manifest->epoch <= log_->record_count() &&
        restore_snapshot(*manifest)) {
      start = manifest->epoch;
      info_.snapshot_epoch = start;
      quarantined_ = manifest->quarantined;
    } else {
      info_.snapshot_stale = true;
    }
  }
  epoch_ = start;

  for (std::size_t i = start; i < log_->record_count(); ++i) {
    apply_record(static_cast<std::uint32_t>(i), log_->payload(i),
                 log_->poisoned(i));
    ++info_.replayed;
  }
  if (info_.replayed > 0)
    obs::flight_event("flight.delta.replay", dir_.string(), start,
                      info_.replayed);
  std::sort(quarantined_.begin(), quarantined_.end());
  quarantined_.erase(std::unique(quarantined_.begin(), quarantined_.end()),
                     quarantined_.end());
}

std::uint32_t LiveIndex::append(const Block& block) {
  const Bytes payload = block.serialize();
  const std::uint32_t index = log_->append(payload);  // WAL-first
  apply_record(index, payload, /*poisoned_at_open=*/false);
  if (options_.snapshot_every != 0 && epoch_ % options_.snapshot_every == 0)
    snapshot();
  return index;
}

void LiveIndex::apply_record(std::uint32_t index, ByteView payload,
                             bool poisoned_at_open) {
  obs::Span span("delta.apply");
  const auto t0 = std::chrono::steady_clock::now();

  bool quarantine = poisoned_at_open;
  std::string reason = poisoned_at_open ? "poisoned log record" : "";
  if (!quarantine && fault::fire("delta.apply", index)) {
    if (options_.recovery == RecoveryPolicy::Strict)
      throw IoError("live index: injected delta.apply fault at record " +
                    std::to_string(index));
    quarantine = true;
    reason = "injected delta.apply fault";
  }
  if (!quarantine) {
    try {
      Reader r(payload);
      Block block = Block::deserialize(r);
      r.expect_eof();
      std::vector<Block> delta;
      delta.push_back(std::move(block));
      view_.apply_delta(delta, options_.recovery, &ingest_report_);
      clusterer_.apply(view_);
    } catch (const ParseError& e) {
      if (options_.recovery == RecoveryPolicy::Strict) throw;
      quarantine = true;
      reason = e.what();
    }
  }
  ++epoch_;
  if (quarantine) {
    quarantined_.push_back(index);
    obs::flight_event("flight.delta.quarantine", reason, index);
  }

  const auto elapsed = std::chrono::steady_clock::now() - t0;
  LiveMetrics::get().apply_micros.observe(
      std::chrono::duration<double, std::micro>(elapsed).count());
}

void LiveIndex::snapshot() {
  Writer w;
  w.u32le(kLiveSnapshotVersion);
  w.u64le(epoch_);
  {
    Bytes view_image = view_.serialize();
    w.var_bytes(view_image);
  }
  {
    Bytes clusterer_image = clusterer_.serialize();
    w.var_bytes(clusterer_image);
  }
  const Bytes image = w.take();
  const Sha256::Digest d = sha256d(image);
  const std::string sidecar_hex = to_hex(ByteView(d.data(), d.size()));

  for (int attempt = 0;; ++attempt) {
    const bool injected =
        fault::fire("index.snapshot",
                    (epoch_ << 3) | static_cast<std::uint64_t>(attempt));
    if (!injected) {
      try {
        // Snapshot, then sidecar, then the manifest LAST: the manifest
        // rewrite is the commit point (see file comment in the header).
        atomic_write_file(snapshot_path(), image);
        atomic_write_file(sidecar_path(), to_bytes(sidecar_hex + "\n"));
        write_manifest(digest_hex(image));
        LiveMetrics::get().snapshots.inc();
        obs::flight_event("flight.delta.snapshot", "", epoch_, image.size());
        return;
      } catch (const IoError&) {
        // fall through to retry
      }
    }
    if (attempt + 1 >= kSnapshotAttempts) {
      if (options_.recovery == RecoveryPolicy::Strict)
        throw IoError("live index: snapshot failed after " +
                      std::to_string(kSnapshotAttempts) + " attempts in " +
                      dir_.string());
      // Lenient: the log still holds every block; a later open just
      // replays more.
      obs::flight_event("flight.delta.snapshot", "failed; continuing on log",
                        epoch_, 0);
      return;
    }
    obs::flight_event("flight.delta.retry", "index.snapshot", epoch_,
                      static_cast<std::uint64_t>(attempt));
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
  }
}

bool LiveIndex::restore_snapshot(const Manifest& manifest) {
  try {
    const Bytes image = read_file(snapshot_path());
    if (digest_hex(image) != manifest.snapshot_digest) return false;
    const Bytes sidecar = read_file(sidecar_path());
    std::string sidecar_hex(sidecar.begin(), sidecar.end());
    while (!sidecar_hex.empty() &&
           (sidecar_hex.back() == '\n' || sidecar_hex.back() == '\r'))
      sidecar_hex.pop_back();
    const Sha256::Digest d = sha256d(image);
    if (sidecar_hex != to_hex(ByteView(d.data(), d.size()))) return false;

    Reader r(image);
    if (r.u32le() != kLiveSnapshotVersion) return false;
    const std::uint64_t epoch = r.u64le();
    if (epoch != manifest.epoch) return false;
    const Bytes view_image = r.var_bytes(r.remaining());
    const Bytes clusterer_image = r.var_bytes(r.remaining());
    r.expect_eof();

    ChainView view = ChainView::deserialize(view_image);
    IncrementalClusterer clusterer = IncrementalClusterer::deserialize(
        clusterer_image, view, options_.h2, options_.dice_addresses);
    view_ = std::move(view);
    clusterer_ = std::move(clusterer);
    epoch_ = epoch;
    return true;
  } catch (const Error&) {
    return false;
  }
}

void LiveIndex::write_manifest(const std::string& snapshot_digest) {
  std::string text = "fistful-live v1\n";
  text += "epoch " + std::to_string(epoch_) + "\n";
  text += "snapshot " + snapshot_digest + "\n";
  for (std::uint32_t q : quarantined_)
    text += "quarantined " + std::to_string(q) + "\n";
  atomic_write_file(manifest_path(), to_bytes(text));
}

std::optional<LiveIndex::Manifest> LiveIndex::load_manifest() const {
  Bytes raw;
  try {
    raw = read_file(manifest_path());
  } catch (const IoError&) {
    return std::nullopt;
  }
  std::istringstream in(std::string(raw.begin(), raw.end()));
  std::string header;
  if (!std::getline(in, header) || header != "fistful-live v1")
    return std::nullopt;
  Manifest m;
  bool have_epoch = false;
  bool have_digest = false;
  std::string key;
  while (in >> key) {
    if (key == "epoch") {
      if (!(in >> m.epoch)) return std::nullopt;
      have_epoch = true;
    } else if (key == "snapshot") {
      if (!(in >> m.snapshot_digest)) return std::nullopt;
      have_digest = true;
    } else if (key == "quarantined") {
      std::uint32_t idx = 0;
      if (!(in >> idx)) return std::nullopt;
      m.quarantined.push_back(idx);
    } else {
      return std::nullopt;
    }
  }
  if (!have_epoch || !have_digest) return std::nullopt;
  return m;
}

}  // namespace fist
