#include "core/pipeline.hpp"

#include <chrono>

namespace fist {

H2Options refined_h2_options() {
  H2Options o;
  o.exempt_dice_rebounds = true;
  o.wait_window = kWeek;
  o.guard_reused_change = true;
  o.guard_self_change_history = true;
  o.resolve_ambiguous_via_future = true;
  return o;
}

ForensicPipeline::ForensicPipeline(const BlockStore& store,
                                   std::vector<TagEntry> feed,
                                   H2Options h2_options)
    : ForensicPipeline(store, std::move(feed),
                       PipelineOptions{h2_options, 0}) {}

ForensicPipeline::ForensicPipeline(const BlockStore& store,
                                   std::vector<TagEntry> feed,
                                   PipelineOptions options)
    : store_(&store),
      feed_(std::move(feed)),
      options_(options),
      exec_(options.threads) {}

void ForensicPipeline::run() {
  if (ran_) return;
  ran_ = true;

  using Clock = std::chrono::steady_clock;
  Clock::time_point mark = Clock::now();
  auto stage_done = [&](const char* stage) {
    Clock::time_point now = Clock::now();
    timings_.push_back(StageTiming{
        stage, std::chrono::duration<double, std::milli>(now - mark).count()});
    mark = now;
  };

  // 1. Parse the chain into the analysis view.
  view_ = std::make_unique<ChainView>(ChainView::build(*store_, exec_));
  stage_done("view");

  // 2. Intern the tag feed against the observed address space.
  for (const TagEntry& entry : feed_) {
    if (auto id = view_->addresses().find(entry.address))
      tags_.add(*id, entry.tag);
  }
  stage_done("tags");

  // 3. Heuristic 1 and its clustering/naming (the §4.1 baseline).
  UnionFind uf(view_->address_count());
  h1_stats_ = apply_heuristic1(*view_, uf, exec_);
  stage_done("h1");
  {
    UnionFind h1_copy = uf;
    h1_clustering_ = std::make_unique<Clustering>(
        Clustering::from_union_find(h1_copy));
  }
  h1_naming_ = std::make_unique<ClusterNaming>(
      h1_clustering_->assignment(), h1_clustering_->sizes(), tags_);
  stage_done("h1_naming");

  // 4. Derive the dice-service address set: every address in an
  // H1 cluster named as a gambling service. (Satoshi Dice's rebound
  // behavior was public knowledge; this reproduces it from tags.)
  std::unordered_set<ClusterId> dice_clusters;
  for (const auto& [cluster, name] : h1_naming_->names())
    if (name.category == Category::Gambling) dice_clusters.insert(cluster);
  for (AddrId a = 0; a < view_->address_count(); ++a)
    if (dice_clusters.contains(h1_clustering_->cluster_of(a)))
      dice_.insert(a);
  stage_done("dice");

  // 5. Refined Heuristic 2, merged on top of Heuristic 1.
  h2_ = apply_heuristic2(*view_, options_.h2, dice_);
  stage_done("h2");
  unite_h2_labels(*view_, h2_, uf);
  clustering_ = std::make_unique<Clustering>(Clustering::from_union_find(uf));
  naming_ = std::make_unique<ClusterNaming>(clustering_->assignment(),
                                            clustering_->sizes(), tags_);
  stage_done("finalize");
}

}  // namespace fist
