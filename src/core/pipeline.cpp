#include "core/pipeline.hpp"

#include <csignal>
#include <filesystem>
#include <map>

#include "core/checkpoint.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"

namespace fist {

H2Options refined_h2_options() {
  H2Options o;
  o.exempt_dice_rebounds = true;
  o.wait_window = kWeek;
  o.guard_reused_change = true;
  o.guard_self_change_history = true;
  o.resolve_ambiguous_via_future = true;
  return o;
}

ForensicPipeline::ForensicPipeline(const BlockStore& store,
                                   std::vector<TagEntry> feed,
                                   H2Options h2_options)
    : ForensicPipeline(store, std::move(feed), [&] {
        PipelineOptions o;
        o.h2 = h2_options;
        return o;
      }()) {}

ForensicPipeline::ForensicPipeline(const BlockStore& store,
                                   std::vector<TagEntry> feed,
                                   PipelineOptions options)
    : store_(&store),
      feed_(std::move(feed)),
      options_(options),
      exec_(options.threads) {}

void ForensicPipeline::run() {
  if (ran_) return;
  ran_ = true;

  // Spans land in the ambient trace when one is active (fistctl wraps
  // commands in one), else in the pipeline's own trace_.
  obs::TraceScope scope(trace_, obs::TraceScope::Policy::IfNoneActive);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter stages_loaded = registry.counter("checkpoint.stages_loaded");
  obs::Counter stages_saved = registry.counter("checkpoint.stages_saved");

  // Checkpoint state: artifacts from a prior run that are still valid
  // against the current inputs (digest-verified), keyed by stage.
  const bool checkpointing = !options_.checkpoint.empty();
  std::filesystem::path manifest_path(options_.checkpoint);
  CheckpointManifest manifest;
  manifest.recovery = options_.recovery;
  manifest.chain_digest = options_.chain_digest;
  manifest.tags_digest = options_.tags_digest;
  std::map<std::string, Bytes> resumable;
  if (checkpointing) {
    if (auto prior = CheckpointManifest::load(manifest_path)) {
      bool inputs_match =
          prior->recovery == options_.recovery &&
          (prior->chain_digest.empty() || options_.chain_digest.empty() ||
           prior->chain_digest == options_.chain_digest) &&
          (prior->tags_digest.empty() || options_.tags_digest.empty() ||
           prior->tags_digest == options_.tags_digest);
      if (inputs_match) {
        for (const auto& [stage_name, art] : prior->artifacts) {
          std::filesystem::path file = manifest_path.parent_path() / art.file;
          try {
            Bytes raw = read_file(file);
            if (digest_hex(raw) == art.digest)
              resumable.emplace(stage_name, std::move(raw));
          } catch (const IoError&) {
            // missing/unreadable artifact: that stage just recomputes
          }
        }
        manifest.ingest = prior->ingest;  // quarantine record survives
      }
    }
  }
  // Resume progress: how many prior-run artifacts are still loadable,
  // ticked down as stages actually accept them (a digest-valid blob a
  // stage fails to decode recomputes instead — the stage never ticks).
  obs::ProgressStage resume_progress;
  if (!resumable.empty())
    resume_progress = obs::ProgressBoard::global().begin_stage(
        "checkpoint.resume", resumable.size());

  // Keeps a (re)validated artifact listed in the manifest we rewrite.
  auto record_artifact = [&](const std::string& stage_name,
                             const Bytes& bytes) {
    CheckpointArtifact art;
    art.file = CheckpointManifest::artifact_path(manifest_path, stage_name)
                   .filename()
                   .string();
    art.digest = digest_hex(bytes);
    manifest.artifacts[stage_name] = std::move(art);
  };

  // Persists a freshly computed stage: artifact first, then the
  // manifest referencing it — both atomic, so a kill between the two
  // just leaves an unreferenced artifact file.
  auto persist = [&](const std::string& stage_name, const Bytes& bytes) {
    if (!checkpointing) return;
    atomic_write_file(
        CheckpointManifest::artifact_path(manifest_path, stage_name), bytes);
    record_artifact(stage_name, bytes);
    manifest.save(manifest_path);
    stages_saved.inc();
    obs::flight_event("flight.checkpoint_save", stage_name, bytes.size());
  };

  // A stage accepted a prior-run artifact instead of recomputing.
  auto note_resumed = [&](const std::string& stage_name, const Bytes& bytes) {
    obs::flight_event("flight.checkpoint_load", stage_name, bytes.size());
    resume_progress.advance();
  };

  // Each stage is one root span; the flat timings_ vector is derived
  // from the spans' measured durations (the StageTiming back-compat).
  // A throwing stage requests executor cancellation before propagating
  // so strict-mode teardown does not leave queued work running.
  auto stage = [&](const char* name, auto&& body) {
    obs::Span span(name);
    try {
      body();
    } catch (...) {
      exec_.request_cancel();
      throw;
    }
    span.close();
    timings_.push_back(StageTiming{name, span.millis()});
    if (options_.crash_after_stage == name)
      std::raise(SIGKILL);  // deterministic kill point for resume tests
  };

  // 1. Parse the chain into the analysis view (or reload it: a
  // deserialized view records no view.* build metrics).
  stage("view", [&] {
    if (auto it = resumable.find("view"); it != resumable.end()) {
      try {
        view_ =
            std::make_unique<ChainView>(ChainView::deserialize(it->second));
        ingest_report_ = manifest.ingest;
        record_artifact("view", it->second);
        stages_loaded.inc();
        note_resumed("view", it->second);
        return;
      } catch (const ParseError&) {
        // stale artifact: fall through to a full build
      }
    }
    ingest_report_ = IngestReport{};
    ChainView::BuildOptions build_options;
    build_options.window_blocks = options_.window_blocks;
    build_options.recovery = options_.recovery;
    build_options.report = &ingest_report_;
    view_ = std::make_unique<ChainView>(
        ChainView::build_windowed(*store_, exec_, build_options));
    manifest.ingest = ingest_report_;
    persist("view", view_->serialize());
  });

  // 2. Intern the tag feed against the observed address space.
  stage("tags", [&] {
    std::uint64_t matched = 0;
    for (const TagEntry& entry : feed_) {
      if (auto id = view_->addresses().find(entry.address)) {
        tags_.add(*id, entry.tag);
        ++matched;
      }
    }
    registry.counter("tags.feed_entries").add(feed_.size());
    registry.counter("tags.matched").add(matched);
  });

  // 3. Heuristic 1 and its clustering/naming (the §4.1 baseline). The
  // checkpoint artifact is the post-H1 forest: canonical-root encoded,
  // so the restored partition (and every clustering derived from it)
  // is identical even though the forest's internal layout may differ.
  UnionFind uf(view_->address_count());
  stage("h1", [&] {
    if (auto it = resumable.find("h1"); it != resumable.end()) {
      try {
        decode_h1_artifact(it->second, uf, h1_stats_);
        if (uf.size() == view_->address_count()) {
          record_artifact("h1", it->second);
          stages_loaded.inc();
          note_resumed("h1", it->second);
          return;
        }
      } catch (const ParseError&) {
      }
      uf = UnionFind(view_->address_count());  // stale: recompute
      h1_stats_ = H1Stats{};
    }
    h1_stats_ = apply_heuristic1(*view_, uf, exec_);
    persist("h1", encode_h1_artifact(uf, h1_stats_));
  });
  stage("h1_naming", [&] {
    {
      UnionFind h1_copy = uf;
      h1_clustering_ = std::make_unique<Clustering>(
          Clustering::from_union_find(h1_copy));
    }
    h1_naming_ = std::make_unique<ClusterNaming>(
        h1_clustering_->assignment(), h1_clustering_->sizes(), tags_);
  });

  // 4. Derive the dice-service address set: every address in an
  // H1 cluster named as a gambling service. (Satoshi Dice's rebound
  // behavior was public knowledge; this reproduces it from tags.)
  stage("dice", [&] {
    std::unordered_set<ClusterId> dice_clusters;
    // fistlint:allow(unordered-iter) builds a membership set — queried
    // by key below, never iterated
    for (const auto& [cluster, name] : h1_naming_->names())
      if (name.category == Category::Gambling) dice_clusters.insert(cluster);
    for (AddrId a = 0; a < view_->address_count(); ++a)
      if (dice_clusters.contains(h1_clustering_->cluster_of(a)))
        dice_.insert(a);
  });

  // 5. Refined Heuristic 2, merged on top of Heuristic 1.
  stage("h2", [&] {
    if (auto it = resumable.find("h2"); it != resumable.end()) {
      try {
        H2Result loaded = decode_h2_artifact(it->second);
        if (loaded.change_of_tx.size() == view_->tx_count()) {
          h2_ = std::move(loaded);
          record_artifact("h2", it->second);
          stages_loaded.inc();
          note_resumed("h2", it->second);
          return;
        }
      } catch (const ParseError&) {
      }
    }
    h2_ = apply_heuristic2(*view_, options_.h2, dice_);
    persist("h2", encode_h2_artifact(h2_));
  });
  stage("finalize", [&] {
    {
      obs::Span span("finalize.unite");
      unite_h2_labels(*view_, h2_, uf);
    }
    {
      obs::Span span("finalize.clusters");
      clustering_ =
          std::make_unique<Clustering>(Clustering::from_union_find(uf));
    }
    {
      obs::Span span("finalize.naming");
      naming_ = std::make_unique<ClusterNaming>(clustering_->assignment(),
                                                clustering_->sizes(), tags_);
    }
  });

  // Headline result gauges: deterministic, describe the last run.
  registry.gauge("pipeline.clusters_h1")
      .set(static_cast<std::int64_t>(h1_clustering_->cluster_count()));
  registry.gauge("pipeline.clusters_final")
      .set(static_cast<std::int64_t>(clustering_->cluster_count()));
  registry.gauge("pipeline.dice_addresses")
      .set(static_cast<std::int64_t>(dice_.size()));
  registry.gauge("pipeline.tagged_addresses")
      .set(static_cast<std::int64_t>(tags_.size()));
  resume_progress.finish();
}

}  // namespace fist
