#include "core/pipeline.hpp"

#include "core/obs/metrics.hpp"

namespace fist {

H2Options refined_h2_options() {
  H2Options o;
  o.exempt_dice_rebounds = true;
  o.wait_window = kWeek;
  o.guard_reused_change = true;
  o.guard_self_change_history = true;
  o.resolve_ambiguous_via_future = true;
  return o;
}

ForensicPipeline::ForensicPipeline(const BlockStore& store,
                                   std::vector<TagEntry> feed,
                                   H2Options h2_options)
    : ForensicPipeline(store, std::move(feed),
                       PipelineOptions{h2_options, 0}) {}

ForensicPipeline::ForensicPipeline(const BlockStore& store,
                                   std::vector<TagEntry> feed,
                                   PipelineOptions options)
    : store_(&store),
      feed_(std::move(feed)),
      options_(options),
      exec_(options.threads) {}

void ForensicPipeline::run() {
  if (ran_) return;
  ran_ = true;

  // Spans land in the ambient trace when one is active (fistctl wraps
  // commands in one), else in the pipeline's own trace_.
  obs::TraceScope scope(trace_, obs::TraceScope::Policy::IfNoneActive);

  // Each stage is one root span; the flat timings_ vector is derived
  // from the spans' measured durations (the StageTiming back-compat).
  auto stage = [&](const char* name, auto&& body) {
    obs::Span span(name);
    body();
    span.close();
    timings_.push_back(StageTiming{name, span.millis()});
  };

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();

  // 1. Parse the chain into the analysis view.
  stage("view", [&] {
    view_ = std::make_unique<ChainView>(ChainView::build(*store_, exec_));
  });

  // 2. Intern the tag feed against the observed address space.
  stage("tags", [&] {
    std::uint64_t matched = 0;
    for (const TagEntry& entry : feed_) {
      if (auto id = view_->addresses().find(entry.address)) {
        tags_.add(*id, entry.tag);
        ++matched;
      }
    }
    registry.counter("tags.feed_entries").add(feed_.size());
    registry.counter("tags.matched").add(matched);
  });

  // 3. Heuristic 1 and its clustering/naming (the §4.1 baseline).
  UnionFind uf(view_->address_count());
  stage("h1", [&] { h1_stats_ = apply_heuristic1(*view_, uf, exec_); });
  stage("h1_naming", [&] {
    {
      UnionFind h1_copy = uf;
      h1_clustering_ = std::make_unique<Clustering>(
          Clustering::from_union_find(h1_copy));
    }
    h1_naming_ = std::make_unique<ClusterNaming>(
        h1_clustering_->assignment(), h1_clustering_->sizes(), tags_);
  });

  // 4. Derive the dice-service address set: every address in an
  // H1 cluster named as a gambling service. (Satoshi Dice's rebound
  // behavior was public knowledge; this reproduces it from tags.)
  stage("dice", [&] {
    std::unordered_set<ClusterId> dice_clusters;
    for (const auto& [cluster, name] : h1_naming_->names())
      if (name.category == Category::Gambling) dice_clusters.insert(cluster);
    for (AddrId a = 0; a < view_->address_count(); ++a)
      if (dice_clusters.contains(h1_clustering_->cluster_of(a)))
        dice_.insert(a);
  });

  // 5. Refined Heuristic 2, merged on top of Heuristic 1.
  stage("h2", [&] { h2_ = apply_heuristic2(*view_, options_.h2, dice_); });
  stage("finalize", [&] {
    {
      obs::Span span("finalize.unite");
      unite_h2_labels(*view_, h2_, uf);
    }
    {
      obs::Span span("finalize.clusters");
      clustering_ =
          std::make_unique<Clustering>(Clustering::from_union_find(uf));
    }
    {
      obs::Span span("finalize.naming");
      naming_ = std::make_unique<ClusterNaming>(clustering_->assignment(),
                                                clustering_->sizes(), tags_);
    }
  });

  // Headline result gauges: deterministic, describe the last run.
  registry.gauge("pipeline.clusters_h1")
      .set(static_cast<std::int64_t>(h1_clustering_->cluster_count()));
  registry.gauge("pipeline.clusters_final")
      .set(static_cast<std::int64_t>(clustering_->cluster_count()));
  registry.gauge("pipeline.dice_addresses")
      .set(static_cast<std::int64_t>(dice_.size()));
  registry.gauge("pipeline.tagged_addresses")
      .set(static_cast<std::int64_t>(tags_.size()));
}

}  // namespace fist
