#include "core/pipeline.hpp"

namespace fist {

H2Options refined_h2_options() {
  H2Options o;
  o.exempt_dice_rebounds = true;
  o.wait_window = kWeek;
  o.guard_reused_change = true;
  o.guard_self_change_history = true;
  o.resolve_ambiguous_via_future = true;
  return o;
}

ForensicPipeline::ForensicPipeline(const BlockStore& store,
                                   std::vector<TagEntry> feed,
                                   H2Options h2_options)
    : store_(&store), feed_(std::move(feed)), options_(h2_options) {}

void ForensicPipeline::run() {
  if (ran_) return;
  ran_ = true;

  // 1. Parse the chain into the analysis view.
  view_ = std::make_unique<ChainView>(ChainView::build(*store_));

  // 2. Intern the tag feed against the observed address space.
  for (const TagEntry& entry : feed_) {
    if (auto id = view_->addresses().find(entry.address))
      tags_.add(*id, entry.tag);
  }

  // 3. Heuristic 1 and its clustering/naming (the §4.1 baseline).
  UnionFind uf(view_->address_count());
  h1_stats_ = apply_heuristic1(*view_, uf);
  {
    UnionFind h1_copy = uf;
    h1_clustering_ = std::make_unique<Clustering>(
        Clustering::from_union_find(h1_copy));
  }
  h1_naming_ = std::make_unique<ClusterNaming>(
      h1_clustering_->assignment(), h1_clustering_->sizes(), tags_);

  // 4. Derive the dice-service address set: every address in an
  // H1 cluster named as a gambling service. (Satoshi Dice's rebound
  // behavior was public knowledge; this reproduces it from tags.)
  std::unordered_set<ClusterId> dice_clusters;
  for (const auto& [cluster, name] : h1_naming_->names())
    if (name.category == Category::Gambling) dice_clusters.insert(cluster);
  for (AddrId a = 0; a < view_->address_count(); ++a)
    if (dice_clusters.contains(h1_clustering_->cluster_of(a)))
      dice_.insert(a);

  // 5. Refined Heuristic 2, merged on top of Heuristic 1.
  h2_ = apply_heuristic2(*view_, options_, dice_);
  unite_h2_labels(*view_, h2_, uf);
  clustering_ = std::make_unique<Clustering>(Clustering::from_union_find(uf));
  naming_ = std::make_unique<ClusterNaming>(clustering_->assignment(),
                                            clustering_->sizes(), tags_);
}

}  // namespace fist
