#include "core/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/serialize.hpp"

namespace fist {

void atomic_write_file(const std::filesystem::path& path, ByteView data) {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw IoError("checkpoint: cannot open " + tmp.string() +
                    " for writing");
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) throw IoError("checkpoint: write failed on " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw IoError("checkpoint: rename " + tmp.string() + " -> " +
                  path.string() + ": " + ec.message());
}

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw IoError("cannot open " + path.string());
  std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes data(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(data.data()), size))
    throw IoError("read failed on " + path.string());
  return data;
}

std::string digest_hex(ByteView data) {
  Sha256::Digest d = sha256(data);
  return to_hex(ByteView(d.data(), d.size()));
}

std::string file_digest_hex(const std::filesystem::path& path) {
  return digest_hex(read_file(path));
}

std::filesystem::path CheckpointManifest::artifact_path(
    const std::filesystem::path& base, const std::string& stage) {
  std::filesystem::path p = base;
  p += "." + stage;
  return p;
}

namespace {

// Digests are written as "-" when absent so every manifest line keeps
// a fixed field count.
std::string field_or_dash(const std::string& s) { return s.empty() ? "-" : s; }
std::string dash_to_empty(const std::string& s) { return s == "-" ? "" : s; }

bool parse_stage(const std::string& name, Quarantined::Stage& out) {
  if (name == "read") out = Quarantined::Stage::Read;
  else if (name == "decode") out = Quarantined::Stage::Decode;
  else if (name == "resolve") out = Quarantined::Stage::Resolve;
  else return false;
  return true;
}

/// Rest of the stream's current line, without the field separator.
std::string rest_of_line(std::istringstream& in) {
  std::string rest;
  std::getline(in, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  return rest;
}

}  // namespace

std::optional<CheckpointManifest> CheckpointManifest::load(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string header;
  if (!std::getline(in, header) || header != "fistful-checkpoint 1")
    return std::nullopt;

  CheckpointManifest m;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "recovery") {
      std::string policy;
      fields >> policy;
      if (policy == "strict") m.recovery = RecoveryPolicy::Strict;
      else if (policy == "lenient") m.recovery = RecoveryPolicy::Lenient;
      else return std::nullopt;
      m.ingest.policy = m.recovery;
    } else if (key == "chain") {
      std::string digest;
      fields >> digest;
      m.chain_digest = dash_to_empty(digest);
    } else if (key == "tags") {
      std::string digest;
      fields >> digest;
      m.tags_digest = dash_to_empty(digest);
    } else if (key == "artifact") {
      std::string stage;
      CheckpointArtifact art;
      fields >> stage >> art.file >> art.digest;
      if (stage.empty() || art.file.empty() || art.digest.empty())
        return std::nullopt;
      m.artifacts[stage] = std::move(art);
    } else if (key == "quarantine-block") {
      std::string stage_name;
      Quarantined q;
      fields >> stage_name >> q.record;
      if (!fields || !parse_stage(stage_name, q.stage)) return std::nullopt;
      q.reason = rest_of_line(fields);
      m.ingest.blocks.push_back(std::move(q));
    } else if (key == "quarantine-tx") {
      std::string txid_hex;
      Quarantined q;
      q.stage = Quarantined::Stage::Resolve;
      fields >> q.record >> q.tx >> txid_hex;
      if (!fields) return std::nullopt;
      try {
        q.txid = Hash256::from_bytes(from_hex(txid_hex));
      } catch (const Error&) {
        return std::nullopt;
      }
      q.reason = rest_of_line(fields);
      m.ingest.txs.push_back(std::move(q));
    } else {
      return std::nullopt;  // unknown key: treat the manifest as foreign
    }
  }
  return m;
}

void CheckpointManifest::save(const std::filesystem::path& path) const {
  std::ostringstream out;
  out << "fistful-checkpoint 1\n";
  out << "recovery " << recovery_policy_name(recovery) << "\n";
  out << "chain " << field_or_dash(chain_digest) << "\n";
  out << "tags " << field_or_dash(tags_digest) << "\n";
  for (const auto& [stage, art] : artifacts)
    out << "artifact " << stage << " " << art.file << " " << art.digest
        << "\n";
  for (const Quarantined& q : ingest.blocks)
    out << "quarantine-block " << quarantine_stage_name(q.stage) << " "
        << q.record << " " << q.reason << "\n";
  for (const Quarantined& q : ingest.txs)
    out << "quarantine-tx " << q.record << " " << q.tx << " "
        << to_hex(q.txid.view()) << " " << q.reason << "\n";
  std::string text = out.str();
  atomic_write_file(
      path, ByteView(reinterpret_cast<const std::uint8_t*>(text.data()),
                     text.size()));
}

Bytes encode_h1_artifact(const UnionFind& uf, const H1Stats& stats) {
  Writer w;
  w.u32le(1);  // artifact version
  w.u64le(stats.multi_input_txs);
  w.u64le(stats.links);
  w.u64le(uf.size());
  for (std::size_t i = 0; i < uf.size(); ++i)
    w.u32le(uf.find_const(static_cast<std::uint32_t>(i)));
  return w.take();
}

void decode_h1_artifact(ByteView raw, UnionFind& uf, H1Stats& stats) {
  Reader r(raw);
  if (r.u32le() != 1) throw ParseError("h1 artifact: unknown version");
  stats.multi_input_txs = r.u64le();
  stats.links = r.u64le();
  std::uint64_t n = r.u64le();
  uf = UnionFind(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t root = r.u32le();
    if (root >= n) throw ParseError("h1 artifact: root out of range");
    uf.unite(root, static_cast<std::uint32_t>(i));
  }
  r.expect_eof();
}

Bytes encode_h2_artifact(const H2Result& result) {
  Writer w;
  w.u32le(1);  // artifact version
  w.varint(result.labels.size());
  for (const H2Label& label : result.labels) {
    w.u32le(label.tx);
    w.u32le(label.change);
  }
  w.varint(result.change_of_tx.size());
  for (AddrId a : result.change_of_tx) w.u32le(a);
  w.u64le(result.skipped.coinbase);
  w.u64le(result.skipped.self_change);
  w.u64le(result.skipped.no_candidate);
  w.u64le(result.skipped.ambiguous);
  w.u64le(result.skipped.reused_guard);
  w.u64le(result.skipped.self_change_history_guard);
  w.u64le(result.skipped.window_veto);
  w.u64le(result.skipped.too_few_outputs);
  return w.take();
}

H2Result decode_h2_artifact(ByteView raw) {
  Reader r(raw);
  if (r.u32le() != 1) throw ParseError("h2 artifact: unknown version");
  H2Result result;
  std::uint64_t n_labels = r.varint();
  result.labels.reserve(n_labels);
  for (std::uint64_t i = 0; i < n_labels; ++i) {
    H2Label label;
    label.tx = r.u32le();
    label.change = r.u32le();
    result.labels.push_back(label);
  }
  std::uint64_t n_tx = r.varint();
  result.change_of_tx.reserve(n_tx);
  for (std::uint64_t i = 0; i < n_tx; ++i)
    result.change_of_tx.push_back(r.u32le());
  result.skipped.coinbase = r.u64le();
  result.skipped.self_change = r.u64le();
  result.skipped.no_candidate = r.u64le();
  result.skipped.ambiguous = r.u64le();
  result.skipped.reused_guard = r.u64le();
  result.skipped.self_change_history_guard = r.u64le();
  result.skipped.window_veto = r.u64le();
  result.skipped.too_few_outputs = r.u64le();
  r.expect_eof();
  return result;
}

}  // namespace fist
