// pipeline.hpp — the end-to-end forensic pipeline (the paper, as API).
//
// Input: serialized blocks and a tag feed — exactly the information
// position of the paper's authors. Output: the flattened chain view,
// Heuristic-1 + refined-Heuristic-2 clustering, cluster names, and the
// change-address labels that power peeling-chain traversal.
//
//   ForensicPipeline pipeline(store, tag_feed);
//   pipeline.run();
//   const Clustering& users = pipeline.clustering();
//
// The individual stages remain available in cluster/ and tag/ for
// ablation; this façade wires them with the paper's §4.2 refinements.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "chain/blockstore.hpp"
#include "chain/view.hpp"
#include "cluster/clustering.hpp"
#include "cluster/heuristic1.hpp"
#include "cluster/heuristic2.hpp"
#include "cluster/unionfind.hpp"
#include "core/executor.hpp"
#include "core/obs/span.hpp"
#include "tag/naming.hpp"
#include "tag/tagstore.hpp"

namespace fist {

/// The paper's final Heuristic-2 configuration: dice exemption, one-week
/// wait, reuse + self-change-history guards, future-reuse disambiguation.
H2Options refined_h2_options();

/// Pipeline-wide knobs.
struct PipelineOptions {
  /// Heuristic-2 refinement switches.
  H2Options h2 = refined_h2_options();

  /// Concurrency lanes for the parallel stages (0 → hardware
  /// concurrency). threads == 1 runs everything on the calling thread
  /// through the original sequential code paths — the reference
  /// semantics; every other value produces bit-identical results (see
  /// DESIGN.md "Execution model" and tests/test_pipeline_parallel.cpp).
  unsigned threads = 0;

  /// Ingest fault handling (see chain/ingest.hpp). Strict (default)
  /// aborts on the first bad record; Lenient quarantines it into
  /// ingest_report() and continues.
  RecoveryPolicy recovery = RecoveryPolicy::Strict;

  /// Out-of-core view build: blocks decoded and held at once during
  /// the view stage (see ChainView::BuildOptions::window_blocks). 0
  /// builds in memory; any nonzero window yields a bit-identical view
  /// while bounding the stage's peak memory to one window of decoded
  /// blocks plus the view itself (docs/SCALING.md).
  std::uint32_t window_blocks = 0;

  /// Checkpoint manifest path (empty → no checkpointing). When set,
  /// run() saves each expensive stage's result as a sibling artifact
  /// (atomically, so a kill at any instant is safe) and, on a later
  /// run against the same inputs, resumes from whatever artifacts are
  /// valid. A resumed run is bit-identical to an uninterrupted one.
  std::string checkpoint;

  /// Input fingerprints guarding checkpoint staleness (hex SHA-256 of
  /// the block store file / tag feed; empty → not checked). A manifest
  /// whose recorded digests differ is ignored wholesale.
  std::string chain_digest;
  std::string tags_digest;

  /// Test/CI hook: raise SIGKILL immediately after the named stage
  /// completes (and its checkpoint artifact is persisted), making
  /// kill-and-resume tests deterministic instead of timing-based.
  /// Empty → never crash.
  std::string crash_after_stage;
};

/// Wall-clock of one completed pipeline stage — the flat back-compat
/// view of the span tree (see trace()); one entry per stage span, in
/// run() order.
struct StageTiming {
  const char* stage = "";
  double millis = 0;
};

/// End-to-end clustering + naming pipeline.
class ForensicPipeline {
 public:
  /// `store` — the block chain; `feed` — raw address tags (§3).
  /// The store must outlive the pipeline.
  ForensicPipeline(const BlockStore& store, std::vector<TagEntry> feed,
                   H2Options h2_options = refined_h2_options());

  ForensicPipeline(const BlockStore& store, std::vector<TagEntry> feed,
                   PipelineOptions options);

  /// Executes all stages. Idempotent (second call is a no-op).
  void run();

  // ---- results (valid after run()) ------------------------------------
  const ChainView& view() const { return *view_; }
  const TagStore& tags() const { return tags_; }

  /// Heuristic-1-only clustering (the §4.1 baseline).
  const Clustering& h1_clustering() const { return *h1_clustering_; }
  const H1Stats& h1_stats() const { return h1_stats_; }

  /// Final clustering: Heuristic 1 + refined Heuristic 2.
  const Clustering& clustering() const { return *clustering_; }

  /// Cluster names under the final clustering.
  const ClusterNaming& naming() const { return *naming_; }

  /// Cluster names under the H1-only clustering.
  const ClusterNaming& h1_naming() const { return *h1_naming_; }

  /// The Heuristic-2 result (change labels per transaction).
  const H2Result& h2() const { return h2_; }

  /// Gambling-service addresses used for the dice-rebound exemption
  /// (derived from tags amplified over the H1 clustering — public
  /// knowledge, not simulator ground truth).
  const std::unordered_set<AddrId>& dice_addresses() const { return dice_; }

  /// Addresses carrying a hand-collected tag (after interning).
  std::size_t tagged_address_count() const { return tags_.size(); }

  /// Everything lenient ingest quarantined (empty after a strict or
  /// fault-free run). When the view stage is resumed from a
  /// checkpoint, this is the original run's report, restored from the
  /// manifest.
  const IngestReport& ingest_report() const { return ingest_report_; }

  /// Wall-clock per stage, in run() order (valid after run()). Thin
  /// accessor over the stage spans: each entry is a root span's
  /// measured duration. Works in every build, including FISTFUL_NO_OBS.
  const std::vector<StageTiming>& timings() const { return timings_; }

  /// The span tree recorded by run(): stage spans with child spans for
  /// the phases inside them (view.scan, h2.receipts, finalize.* ...).
  /// run() activates this trace only when the calling thread has none
  /// active (TraceScope::Policy::IfNoneActive) — inside an ambient
  /// trace (fistctl) the spans land there instead and this is empty.
  const obs::Trace& trace() const { return trace_; }

  /// The executor the pipeline stages ran on; downstream analyses
  /// (balances, metrics) can reuse it for their own parallel passes.
  Executor& executor() { return exec_; }
  const Executor& executor() const { return exec_; }

 private:
  const BlockStore* store_;
  std::vector<TagEntry> feed_;
  PipelineOptions options_;
  Executor exec_;
  obs::Trace trace_;
  std::vector<StageTiming> timings_;
  bool ran_ = false;

  std::unique_ptr<ChainView> view_;
  IngestReport ingest_report_;
  TagStore tags_;
  H1Stats h1_stats_;
  std::unique_ptr<Clustering> h1_clustering_;
  std::unique_ptr<ClusterNaming> h1_naming_;
  std::unordered_set<AddrId> dice_;
  H2Result h2_;
  std::unique_ptr<Clustering> clustering_;
  std::unique_ptr<ClusterNaming> naming_;
};

}  // namespace fist
