// live_index.hpp — the crash-safe incremental cluster index.
//
// LiveIndex glues the write-ahead DeltaLog to the in-memory
// incremental state (ChainView + IncrementalClusterer) with a durable
// epoch discipline:
//
//   append(block):  1. append the serialized block to the delta log
//                      (durable — the WAL step), then
//                   2. apply it in memory (view.apply_delta +
//                      clusterer.apply), then
//                   3. optionally auto-snapshot.
//
//   snapshot():     writes `live.snapshot` (view + clusterer images)
//                   and its sha256d sidecar atomically, then commits
//                   by atomically rewriting `live.manifest` — the
//                   manifest write is the commit point, so a kill
//                   between any two steps leaves either the old or the
//                   new snapshot fully referenced, never a torn mix
//                   (any inconsistency is detected by digest and
//                   degrades to a full log replay; the log holds every
//                   block, so nothing is ever lost).
//
//   open:           restore the manifest-referenced snapshot if its
//                   digests verify and its epoch fits the log, then
//                   replay only the log tail. kill -9 at ANY instant
//                   therefore resumes from the last durable epoch.
//
// Lenient recovery quarantines poisoned/undecodable/fault-injected
// deltas (flight.delta.quarantine) and keeps going — the surviving
// state matches a batch build over the surviving blocks. Strict mode
// throws on the first bad delta; the instance is then dead (the view
// may be partially extended) and must be reopened from durable state.
//
// Single-threaded by contract, like the checkpoint writer: no
// internal locking; one owner drives append/snapshot.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/block.hpp"
#include "chain/ingest.hpp"
#include "chain/view.hpp"
#include "cluster/heuristic2.hpp"
#include "cluster/incremental.hpp"
#include "core/delta_log.hpp"
#include "encoding/address.hpp"

namespace fist {

/// Durable incremental clustering over an append-only block feed.
class LiveIndex {
 public:
  struct Options {
    H2Options h2;  ///< heuristic configuration (input, not state)
    /// Dice-rebound addresses, resolved lazily as they appear
    /// (see IncrementalClusterer). Must match across resumes, exactly
    /// like the batch pipeline's inputs.
    std::vector<Address> dice_addresses;
    RecoveryPolicy recovery = RecoveryPolicy::Strict;
    /// Auto-snapshot after every N applied records (0 = manual only).
    std::uint32_t snapshot_every = 0;
  };

  /// What open() found and did.
  struct OpenInfo {
    std::uint64_t snapshot_epoch = 0;  ///< epoch restored from snapshot
    std::uint64_t replayed = 0;        ///< log-tail records replayed
    std::uint64_t torn_tail_bytes = 0; ///< crash artifact truncated away
    bool snapshot_stale = false;  ///< snapshot rejected → full replay
  };

  /// Opens (creating if needed) the index directory: `delta.log`,
  /// `live.snapshot` (+ `.sha256d` sidecar), `live.manifest`.
  LiveIndex(std::filesystem::path dir, Options options);

  /// WAL-appends and applies one block; returns its record index.
  std::uint32_t append(const Block& block);

  /// Writes a durable snapshot of the current epoch. Probes the
  /// `index.snapshot` fault site with retry/backoff; after exhausted
  /// retries strict throws IoError, lenient records a flight event and
  /// continues (the log still holds everything).
  void snapshot();

  /// Records applied so far (== delta-log records consumed).
  std::uint64_t epoch() const noexcept { return epoch_; }

  const ChainView& view() const noexcept { return view_; }
  const IncrementalClusterer& clusterer() const noexcept {
    return clusterer_;
  }
  const DeltaLog& log() const noexcept { return *log_; }
  const OpenInfo& open_info() const noexcept { return info_; }

  /// Transaction-level quarantines from lenient apply (same semantics
  /// as the batch build's report).
  const IngestReport& ingest_report() const noexcept {
    return ingest_report_;
  }

  /// Record indices of deltas quarantined wholesale (poisoned log
  /// records, undecodable payloads, injected apply faults). Durable
  /// across snapshot+resume via the manifest — this is what fistctl's
  /// delta-corruption exit code keys off.
  const std::vector<std::uint32_t>& quarantined_deltas() const noexcept {
    return quarantined_;
  }

 private:
  struct Manifest {
    std::uint64_t epoch = 0;
    std::string snapshot_digest;  // SHA-256 hex of live.snapshot
    std::vector<std::uint32_t> quarantined;
  };

  std::filesystem::path log_path() const { return dir_ / "delta.log"; }
  std::filesystem::path snapshot_path() const { return dir_ / "live.snapshot"; }
  std::filesystem::path sidecar_path() const {
    return dir_ / "live.snapshot.sha256d";
  }
  std::filesystem::path manifest_path() const { return dir_ / "live.manifest"; }

  void open();
  /// Loads + digest-verifies the snapshot; returns false (stale) on
  /// any mismatch or decode failure.
  bool restore_snapshot(const Manifest& manifest);
  void apply_record(std::uint32_t index, ByteView payload,
                    bool poisoned_at_open);
  void write_manifest(const std::string& snapshot_digest);
  std::optional<Manifest> load_manifest() const;

  std::filesystem::path dir_;
  Options options_;
  std::unique_ptr<DeltaLog> log_;
  ChainView view_;
  IncrementalClusterer clusterer_;
  IngestReport ingest_report_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> quarantined_;
  OpenInfo info_;
};

}  // namespace fist
