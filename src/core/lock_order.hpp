// lock_order.hpp — the project-wide lock hierarchy, as code.
//
// Every mutex in the tree has a declared rank; a thread may only
// acquire a lock whose rank is STRICTLY GREATER than the highest rank
// it already holds. That single rule makes lock-order deadlocks
// structurally impossible: any cycle would need some thread to acquire
// downward. The ranking mirrors the call graph — outer scheduling
// locks rank low, leaf registries rank high — and is documented as a
// table in docs/STATIC_ANALYSIS.md ("The lock hierarchy"); keep the
// two in sync (the fistlint `lock-order` rule reads the ranks from
// this header).
//
// Three layers enforce the discipline:
//
//   * compile time — Clang Thread Safety Analysis over the
//     FIST_GUARDED_BY / FIST_ACQUIRE annotations (ts_annotations.hpp);
//   * lint time — fistlint's `naked-mutex` and `lock-order` rules
//     (a mutex without a rank or a guarded user, and lexically nested
//     acquisitions contradicting the ranking);
//   * run time — debug builds (or -DFISTFUL_LOCK_ORDER_CHECKS=ON)
//     keep a thread-local stack of held ranks and report the first
//     out-of-order acquisition (default: abort with both lock names).
//
// Single-threaded-by-design components (the net EventLoop's delivery
// queue, the checkpoint manifest writer) hold no locks and therefore
// have no rank — the hierarchy table lists them as lock-free.
#pragma once

#include <mutex>

#include "core/ts_annotations.hpp"

// Runtime enforcement is on in debug builds and whenever the build
// defines FISTFUL_LOCK_ORDER_CHECKS (the CMake option of the same
// name). The checker itself always compiles, so tests can exercise it
// in any configuration via set_enforcing().
#if !defined(FISTFUL_LOCK_ORDER_CHECKS) && !defined(NDEBUG)
#define FISTFUL_LOCK_ORDER_CHECKS 1
#endif

namespace fist::lockorder {

/// Ranked lock levels, lowest acquired first. Gaps of 10 leave room to
/// slot new locks between existing levels without renumbering.
enum class Rank : int {
  // Executor scheduling substrate (src/core/executor.cpp). The worker
  // deques, the injection queue, and the sleep mutex are only ever
  // held alone; the parallel_for join/error pair sits above them
  // because the join loop re-enters try_acquire with nothing held.
  kExecutorWorkerDeque = 10,  ///< per-worker task deque
  kExecutorInjection = 20,    ///< shared injection queue
  kExecutorSleep = 30,        ///< idle-worker sleep condition
  kExecutorForJoin = 40,      ///< per-parallel_for join state
  kExecutorForError = 50,     ///< per-parallel_for first-error slot

  // I/O and interning leaves, acquired from inside task bodies (which
  // run with no executor lock held).
  kBlockstoreReadSlot = 60,  ///< FileBlockStore cached read handle
  kAddrBookShard = 70,       ///< ShardedAddressBook intern shard

  // Registries. The fault registry binds metrics handles while armed,
  // so it must rank below the metrics registry.
  kFaultRegistry = 80,       ///< fault-injection site table
  kObsTrace = 90,            ///< Span/Trace record tree
  kObsProgressBoard = 92,    ///< progress stage find-or-create map
  kTelemetryServer = 95,     ///< telemetry server start/stop state
  kObsMetricsRegistry = 100, ///< name → metric find-or-create map
};

/// The enumerator's name, for diagnostics ("kFaultRegistry").
const char* rank_name(Rank rank) noexcept;

/// Whether acquisitions are being checked on this process. Defaults to
/// true when FISTFUL_LOCK_ORDER_CHECKS is defined, false otherwise.
bool enforcing() noexcept;
void set_enforcing(bool on) noexcept;

/// What a violation calls: (held, acquiring). The default handler
/// prints both lock names to stderr and aborts — a debug run that
/// breaks the hierarchy dies loudly at the exact acquisition. Tests
/// install a recording handler. Returns the previous handler.
using ViolationHandler = void (*)(Rank held, Rank acquiring);
ViolationHandler set_violation_handler(ViolationHandler handler) noexcept;

/// A passive tap invoked BEFORE the violation handler (which may
/// abort). Must be lock-free and async-termination-safe — the flight
/// recorder (core/obs/flightrec.hpp) installs one so a violating run
/// leaves an event in the post-mortem trail. Returns the previous
/// observer (nullptr when none).
using ViolationObserver = void (*)(Rank held, Rank acquiring);
ViolationObserver set_violation_observer(ViolationObserver observer) noexcept;

/// Record an acquisition/release on the calling thread's held-lock
/// stack (called by fist::Mutex when enforcing() — call directly only
/// from tests). note_acquire reports a violation when `rank` is not
/// strictly above every rank currently held.
void note_acquire(Rank rank) noexcept;
void note_release(Rank rank) noexcept;

/// Locks the calling thread currently holds (test introspection).
std::size_t held_count() noexcept;

}  // namespace fist::lockorder

namespace fist {

/// A std::mutex with a declared hierarchy rank, annotated for Clang
/// Thread Safety Analysis. All long-lived mutexes in the tree are
/// fist::Mutex — fistlint's `naked-mutex` rule flags raw std::mutex
/// members that carry neither a rank nor a FIST_GUARDED_BY user.
class FIST_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(lockorder::Rank rank) noexcept : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FIST_ACQUIRE() {
    if (lockorder::enforcing()) lockorder::note_acquire(rank_);
    m_.lock();
  }

  void unlock() FIST_RELEASE() {
    m_.unlock();
    if (lockorder::enforcing()) lockorder::note_release(rank_);
  }

  bool try_lock() FIST_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    if (lockorder::enforcing()) lockorder::note_acquire(rank_);
    return true;
  }

  lockorder::Rank rank() const noexcept { return rank_; }

 private:
  std::mutex m_;
  lockorder::Rank rank_;
};

/// Scoped lock over fist::Mutex — the annotated std::lock_guard.
class FIST_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) FIST_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() FIST_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Relockable scoped lock — the annotated std::unique_lock, for
/// condition-variable waits (std::condition_variable_any accepts any
/// lockable, so waits go through the rank bookkeeping on re-acquire).
class FIST_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) FIST_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
    owned_ = true;
  }
  ~UniqueLock() FIST_RELEASE() {
    if (owned_) mutex_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() FIST_ACQUIRE() {
    mutex_->lock();
    owned_ = true;
  }
  void unlock() FIST_RELEASE() {
    mutex_->unlock();
    owned_ = false;
  }
  bool owns_lock() const noexcept { return owned_; }

 private:
  Mutex* mutex_;
  bool owned_ = false;
};

}  // namespace fist
