// ts_annotations.hpp — portable Clang Thread Safety Analysis macros.
//
// Clang's -Wthread-safety proves lock discipline at compile time from
// `capability` attributes: which mutex guards which member, which
// functions must (or must not) hold which lock. GCC and MSVC don't
// implement the attributes, so every macro below expands to nothing
// there — the annotations are free documentation on non-Clang builds
// and an enforced contract on the CI clang job (-Wthread-safety
// -Werror, see .github/workflows/ci.yml).
//
// Usage idiom (see src/core/lock_order.hpp for the annotated mutex):
//
//   class FIST_CAPABILITY("mutex") Mutex { ... };
//
//   struct Shard {
//     Mutex shard_mutex{lockorder::Rank::kAddrBookShard};
//     std::vector<Address> forward FIST_GUARDED_BY(shard_mutex);
//   };
//
//   void drain() FIST_REQUIRES(queue_mutex);
//   void lock()   FIST_ACQUIRE();
//   void unlock() FIST_RELEASE();
//
// Static analysis only sees acquisitions made through annotated types,
// so guarded members must be locked via fist::LockGuard /
// fist::UniqueLock (annotated scoped capabilities), never a bare
// std::lock_guard — the fistlint `naked-mutex` rule enforces exactly
// that (docs/STATIC_ANALYSIS.md "The rules").
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define FIST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FIST_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (mutex-like).
#define FIST_CAPABILITY(x) FIST_THREAD_ANNOTATION(capability(x))

/// Marks a scoped RAII type that acquires in its constructor and
/// releases in its destructor.
#define FIST_SCOPED_CAPABILITY FIST_THREAD_ANNOTATION(scoped_lockable)

/// A data member that may only be touched while `x` is held.
#define FIST_GUARDED_BY(x) FIST_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* may only be touched while `x` is
/// held (the pointer itself is unguarded).
#define FIST_PT_GUARDED_BY(x) FIST_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed locks.
#define FIST_REQUIRES(...) \
  FIST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the listed locks
/// (it acquires them itself — prevents self-deadlock).
#define FIST_EXCLUDES(...) FIST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the listed locks (or `this` when empty).
#define FIST_ACQUIRE(...) \
  FIST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed locks (or `this` when empty).
#define FIST_RELEASE(...) \
  FIST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the lock when it returns `ret`.
#define FIST_TRY_ACQUIRE(...) \
  FIST_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define FIST_RETURN_CAPABILITY(x) FIST_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis. Every use needs a comment explaining why.
#define FIST_NO_THREAD_SAFETY_ANALYSIS \
  FIST_THREAD_ANNOTATION(no_thread_safety_analysis)
