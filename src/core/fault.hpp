// fault.hpp — seeded, deterministic fault injection.
//
// Every failure mode the robustness layer defends against is also a
// failure mode we must be able to *produce on demand, reproducibly*.
// The registry holds named injection sites (e.g. "blockstore.read",
// "decode.block", "executor.task", "net.deliver") that production code
// probes at the moment the real fault would strike. A site fires as a
// pure function of (site seed, site name, caller-supplied key): the
// same armed configuration injects the same faults no matter the
// thread count or scheduling, so a fault-matrix test can predict the
// exact quarantine set before running the pipeline.
//
// Keys are chosen by the call site to be stable identifiers of the
// unit of work — a block record index, an event ordinal — NOT hit
// counters, which would vary with interleaving. (The executor's
// "executor.task" site keys by chunk start index, which depends on the
// grain and therefore on the lane count; it inherits the same
// "scheduling-dependent" caveat as the exec.* metrics.)
//
// Disarmed cost: one relaxed atomic load per probe. Nothing is armed
// in production unless an operator passes --faults to fistctl or a
// test arms a site explicitly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace fist::fault {

/// Process-wide injection-site registry. Thread-safe.
class Registry {
 public:
  /// The registry all built-in sites probe.
  static Registry& global();

  /// Arms `site` to fire with probability `rate` (0..1) per distinct
  /// key, decided deterministically from `seed`. Re-arming a site
  /// replaces its configuration and zeroes its counters.
  void arm(std::string_view site, double rate, std::uint64_t seed = 0);

  /// Arms `site` to fire exactly when probed with key == `nth`.
  void arm_nth(std::string_view site, std::uint64_t nth);

  void disarm(std::string_view site);

  /// Disarms every site and zeroes all counters.
  void disarm_all();

  /// True when at least one site is armed (the probe fast path).
  bool any_armed() const noexcept;

  /// Probes `site` with `key`. Returns true when the site is armed and
  /// the (seed, site, key) decision says fire; bumps the site's
  /// checked/fired counters and the `fault.injected.<site>` metric.
  bool fire(std::string_view site, std::uint64_t key);

  /// The decision fire() would make, without counting — lets tests
  /// compute the expected fault set up front.
  bool peek(std::string_view site, std::uint64_t key) const;

  /// Probes / injections since the site was armed.
  std::uint64_t checked(std::string_view site) const;
  std::uint64_t fired(std::string_view site) const;

  /// Arms sites from a "site=rate[,site=rate...]" spec (rates parsed
  /// as doubles; `site=nth:N` arms an exact-key trigger). Throws
  /// UsageError on malformed specs.
  void arm_from_spec(const std::string& spec, std::uint64_t seed);

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience probe against the global registry. The disarmed path is
/// a single relaxed load.
bool fire(std::string_view site, std::uint64_t key);

}  // namespace fist::fault
