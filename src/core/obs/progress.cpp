#include "core/obs/progress.hpp"

// fistlint:allow-file(alloc-under-lock) registry pattern like
// MetricsRegistry: begin_stage interns one StageImpl per stage name,
// and snapshot() builds its result at scrape cadence (~1/s). Per-item
// progress ticks go through the lock-free atomics on StageImpl.

#include <atomic>
#include <chrono>
#include <cstdio>

#include "core/obs/export.hpp"

namespace fist::obs {

#ifndef FISTFUL_NO_OBS

ProgressBoard& ProgressBoard::global() {
  // Leaked singleton, same lifetime policy as MetricsRegistry::global:
  // stages may be advanced from thread_local destructors at process
  // exit, so the board must never be destroyed.
  static ProgressBoard* board = new ProgressBoard();
  return *board;
}

ProgressStage ProgressBoard::begin_stage(std::string_view name,
                                         std::uint64_t total) {
  LockGuard lock(board_mutex_);
  for (const auto& stage : stages_) {
    if (stage->name == name) {
      stage->done.store(0, std::memory_order_relaxed);
      stage->total.store(total, std::memory_order_relaxed);
      stage->finished.store(false, std::memory_order_relaxed);
      stage->start = std::chrono::steady_clock::now();
      return ProgressStage(stage.get());
    }
  }
  auto impl = std::make_unique<detail::StageImpl>();
  impl->name = std::string(name);
  impl->total.store(total, std::memory_order_relaxed);
  impl->start = std::chrono::steady_clock::now();
  detail::StageImpl* raw = impl.get();
  stages_.push_back(std::move(impl));
  return ProgressStage(raw);
}

std::vector<ProgressStageValue> ProgressBoard::snapshot() const {
  LockGuard lock(board_mutex_);
  std::vector<ProgressStageValue> out;
  out.reserve(stages_.size());
  const auto now = std::chrono::steady_clock::now();
  for (const auto& stage : stages_) {
    ProgressStageValue v;
    v.name = stage->name;
    v.done = stage->done.load(std::memory_order_relaxed);
    v.total = stage->total.load(std::memory_order_relaxed);
    v.finished = stage->finished.load(std::memory_order_relaxed);
    v.elapsed_ms =
        std::chrono::duration<double, std::milli>(now - stage->start).count();
    out.push_back(std::move(v));
  }
  return out;
}

void ProgressBoard::reset() {
  LockGuard lock(board_mutex_);
  stages_.clear();
}

#else

ProgressBoard& ProgressBoard::global() {
  static ProgressBoard board;
  return board;
}

#endif  // FISTFUL_NO_OBS

namespace {

/// rate in items/s and ETA in s for one stage; eta < 0 = unknown.
struct Derived {
  double rate_per_s = 0;
  double eta_s = -1;
};

Derived derive(const ProgressStageValue& s) {
  Derived d;
  if (s.elapsed_ms > 0)
    d.rate_per_s = static_cast<double>(s.done) / (s.elapsed_ms / 1000.0);
  if (s.total > s.done && d.rate_per_s > 0)
    d.eta_s = static_cast<double>(s.total - s.done) / d.rate_per_s;
  else if (s.total > 0 && s.done >= s.total)
    d.eta_s = 0;
  return d;
}

}  // namespace

std::string render_progress_json(
    const std::vector<ProgressStageValue>& stages) {
  std::string out = "{\"stages\":[";
  bool first = true;
  for (const ProgressStageValue& s : stages) {
    if (!first) out += ',';
    first = false;
    Derived d = derive(s);
    out += "{\"name\":\"" + json_escape(s.name) + "\"";
    out += ",\"done\":" + std::to_string(s.done);
    out += ",\"total\":" + std::to_string(s.total);
    out += s.finished ? ",\"finished\":true" : ",\"finished\":false";
    out += ",\"elapsed_ms\":" + json_number(s.elapsed_ms);
    out += ",\"rate_per_s\":" + json_number(d.rate_per_s);
    if (d.eta_s >= 0) out += ",\"eta_s\":" + json_number(d.eta_s);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string render_progress_line(
    const std::vector<ProgressStageValue>& stages) {
  std::string out;
  for (const ProgressStageValue& s : stages) {
    if (s.finished) continue;  // the ticker shows live stages only
    if (!out.empty()) out += " | ";
    out += s.name + " " + std::to_string(s.done);
    if (s.total > 0) {
      out += "/" + std::to_string(s.total);
      char pct[16];
      std::snprintf(pct, sizeof pct, " %.0f%%",
                    100.0 * static_cast<double>(s.done) /
                        static_cast<double>(s.total));
      out += pct;
    }
    Derived d = derive(s);
    if (d.eta_s >= 0) {
      char eta[32];
      std::snprintf(eta, sizeof eta, " eta %.0fs", d.eta_s);
      out += eta;
    }
  }
  return out;
}

namespace {
std::atomic<bool> g_console_enabled{false};
std::atomic<std::int64_t> g_console_interval_ms{500};
std::atomic<std::int64_t> g_console_last_print_ms{0};
}  // namespace

void set_progress_console(bool enabled, int interval_ms) {
  g_console_enabled.store(enabled, std::memory_order_relaxed);
  g_console_interval_ms.store(interval_ms > 0 ? interval_ms : 500,
                              std::memory_order_relaxed);
  g_console_last_print_ms.store(0, std::memory_order_relaxed);
}

void progress_console_tick() {
  if (!g_console_enabled.load(std::memory_order_relaxed)) return;
  const std::int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  std::int64_t last = g_console_last_print_ms.load(std::memory_order_relaxed);
  const std::int64_t interval =
      g_console_interval_ms.load(std::memory_order_relaxed);
  // One printer per interval: the CAS loser skips, so hot loops can
  // call tick() freely from any thread.
  if (now_ms - last < interval) return;
  if (!g_console_last_print_ms.compare_exchange_strong(
          last, now_ms, std::memory_order_relaxed))
    return;
  std::string line = render_progress_line(ProgressBoard::global().snapshot());
  if (!line.empty()) std::fprintf(stderr, "[progress] %s\n", line.c_str());
}

}  // namespace fist::obs
