#include "core/obs/quantile.hpp"

#include <algorithm>
#include <limits>

namespace fist::obs {

double histogram_quantile(const HistogramValue& h, double q) {
  if (h.count == 0 || h.buckets.empty())
    return std::numeric_limits<double>::quiet_NaN();
  if (q < 0) q = 0;
  if (q > 1) q = 1;

  // The observation index the quantile names, 1-based: the smallest
  // rank r with cumulative(r) >= q * count. Ceil keeps p100 inside the
  // population and p0 at the first observation.
  const double target = q * static_cast<double>(h.count);

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const std::uint64_t before = cumulative;
    cumulative += h.buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (h.buckets[i] == 0) continue;

    // Overflow bucket: no upper bound to interpolate toward. Report
    // the last finite bound — an admitted under-estimate, but the only
    // value the histogram can still attest. (bounds empty means a
    // single overflow bucket; report the sum/count mean instead.)
    if (i >= h.bounds.size()) {
      if (h.bounds.empty())
        return h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      return h.bounds.back();
    }

    const double upper = h.bounds[i];
    const double lower = i == 0 ? std::min(0.0, upper) : h.bounds[i - 1];
    const double inside = target - static_cast<double>(before);
    const double width = upper - lower;
    const double fraction =
        inside / static_cast<double>(h.buckets[i]);  // in (0, 1]
    return lower + width * fraction;
  }
  // Unreachable when count equals the bucket total, but degrade
  // gracefully if a caller hands us an inconsistent snapshot.
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

}  // namespace fist::obs
