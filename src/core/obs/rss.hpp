// rss.hpp — process peak-RSS sampling for memory-gated benches.
//
// ROADMAP item 1 makes memory a first-class gated number alongside
// total_ms: every bench report carries the process's peak resident set
// so scripts/check_bench_trend.py can fail CI on a memory regression
// the same way it fails on a slowdown. The sample lands in the
// `mem.peak_rss` gauge — the one deliberately host-variant metric
// outside `exec.` (see docs/OBSERVABILITY.md): it is sampled only at
// bench-report time, never by the pipeline itself, so the pipeline's
// cross-thread-count metric determinism is untouched.
//
// Hosts without a readable source (non-Linux /proc, a sandbox hiding
// getrusage) degrade to 0, and sample_peak_rss() then leaves the gauge
// unregistered — a report with no `mem.peak_rss` key means "unknown",
// never "zero bytes".
#pragma once

#include <cstdint>
#include <string_view>

namespace fist::obs {

/// Peak resident set size of this process in bytes: VmHWM from
/// /proc/self/status where available (Linux), otherwise getrusage's
/// ru_maxrss. Returns 0 when neither source is readable.
std::uint64_t peak_rss_bytes() noexcept;

/// Samples peak_rss_bytes() into the `mem.peak_rss` gauge — skipped
/// entirely when the sample is 0 (unavailable), so consumers can tell
/// "no data" from "no memory" — and returns the sampled value. Call at
/// report time, not in hot paths.
std::uint64_t sample_peak_rss() noexcept;

/// Parses the "VmHWM: <n> kB" row out of a /proc/self/status-shaped
/// document, returning bytes; 0 when the row is absent or malformed
/// (non-numeric value, number overflow, truncated line). Exposed so
/// tests can cover the malformed-status-file paths without a fake
/// procfs.
std::uint64_t parse_vm_hwm_bytes(std::string_view status_text) noexcept;

}  // namespace fist::obs
