// rss.hpp — process peak-RSS sampling for memory-gated benches.
//
// ROADMAP item 1 makes memory a first-class gated number alongside
// total_ms: every bench report carries the process's peak resident set
// so scripts/check_bench_trend.py can fail CI on a memory regression
// the same way it fails on a slowdown. The sample lands in the
// `mem.peak_rss` gauge — the one deliberately host-variant metric
// outside `exec.` (see docs/OBSERVABILITY.md): it is sampled only at
// bench-report time, never by the pipeline itself, so the pipeline's
// cross-thread-count metric determinism is untouched.
#pragma once

#include <cstdint>

namespace fist::obs {

/// Peak resident set size of this process in bytes: VmHWM from
/// /proc/self/status where available (Linux), otherwise getrusage's
/// ru_maxrss. Returns 0 when neither source is readable.
std::uint64_t peak_rss_bytes() noexcept;

/// Samples peak_rss_bytes() into the `mem.peak_rss` gauge and returns
/// the sampled value. Call at report time, not in hot paths.
std::uint64_t sample_peak_rss() noexcept;

}  // namespace fist::obs
