// flightrec.hpp — a fixed-size lock-free ring of structured events.
//
// The post-mortem trail for long ingests: window boundaries,
// quarantines, checkpoint writes/resumes, fault injections, lock-order
// violations, telemetry server lifecycle. When a run dies — or exits 3
// on a lenient quarantine — the last N events explain what it was
// doing, dumped as JSONL via fistctl --events-out (and automatically
// as fistctl-events.jsonl on quarantine exits).
//
// The ring is wait-free on the write path and allocation-free after
// construction: a slot is a block of plain atomics (a type word, a
// fixed char payload, two u64 operands, a sequence stamp), claimed by
// fetch_add on the head, filled with relaxed stores, and published
// with a release store of the sequence. Readers snapshot the head,
// re-check each slot's sequence after copying, and drop slots a lapped
// writer tore. That makes record() safe from anywhere — executor
// workers, the fault registry under its lock, even the lock-order
// violation observer an instant before abort().
//
// Event types are dotted names under `flight.` and must be registered
// in docs/OBSERVABILITY.md (fistlint's docs-drift rule collects
// flight_event("...") literals like metric names). Timestamps are
// steady-clock microseconds since process start — ordering, not wall
// time — and the trail is scheduling-dependent by nature, so the whole
// `flight.` surface sits outside the deterministic-snapshot contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef FISTFUL_NO_OBS
#include <array>
#include <atomic>
#endif

namespace fist::obs {

/// One event as seen by a reader.
struct FlightEvent {
  std::string type;    ///< dotted name, e.g. "flight.window_start"
  std::string detail;  ///< short free-form context ("window 3", path)
  std::uint64_t a = 0; ///< operands, meaning per type (index, count)
  std::uint64_t b = 0;
  std::uint64_t t_us = 0;  ///< steady-clock µs since process start
  std::uint64_t seq = 0;   ///< global record order (monotonic)
};

#ifndef FISTFUL_NO_OBS

/// The process-wide ring. Capacity is a power of two; the ring keeps
/// the newest kCapacity events and overwrites the oldest.
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;
  static constexpr std::size_t kTypeChars = 32;
  static constexpr std::size_t kDetailChars = 96;

  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static FlightRecorder& global();

  /// Wait-free, noexcept, signal-tolerant. Longer strings truncate to
  /// the fixed slot width.
  void record(std::string_view type, std::string_view detail,
              std::uint64_t a, std::uint64_t b) noexcept;

  /// The surviving events, oldest first. Slots torn by a concurrent
  /// lapping writer are skipped, so a snapshot taken mid-storm may
  /// hold fewer than min(recorded, kCapacity) events.
  std::vector<FlightEvent> events() const;

  /// Total events ever recorded (including overwritten ones).
  std::uint64_t recorded() const noexcept;

  /// Forget everything (tests).
  void reset() noexcept;

 private:
  // A slot is torn down into word-sized atomics so record() never
  // locks: strings are stored one u64 word at a time. `seq` is 0 for
  // an empty slot, else 1 + the global sequence; writers bump it to
  // kTornSeq first so readers never see a half-old half-new slot as
  // valid.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kTypeChars / 8> type_words;
    std::array<std::atomic<std::uint64_t>, kDetailChars / 8> detail_words;
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> t_us{0};
  };

  static constexpr std::uint64_t kTornSeq = ~std::uint64_t{0};

  std::array<Slot, kCapacity> slots_;
  std::atomic<std::uint64_t> head_{0};
};

#else  // FISTFUL_NO_OBS

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;
  static FlightRecorder& global();
  void record(std::string_view, std::string_view, std::uint64_t,
              std::uint64_t) noexcept {}
  std::vector<FlightEvent> events() const { return {}; }
  std::uint64_t recorded() const noexcept { return 0; }
  void reset() noexcept {}
};

#endif  // FISTFUL_NO_OBS

/// The one call sites use. The type literal is what fistlint collects
/// against the docs/OBSERVABILITY.md event registry. Also bumps the
/// `flight.events` counter.
void flight_event(std::string_view type, std::string_view detail = {},
                  std::uint64_t a = 0, std::uint64_t b = 0) noexcept;

/// Events rendered as JSON Lines, oldest first, one object per line:
/// {"seq":..,"t_us":..,"type":"..","detail":"..","a":..,"b":..}
std::string render_events_jsonl(const std::vector<FlightEvent>& events);

/// render_events_jsonl(global().events()) written to `path`;
/// false + stderr note on I/O failure.
bool dump_flight_events(const std::string& path);

}  // namespace fist::obs
