// quantile.hpp — bucket-interpolated quantiles over obs histograms.
//
// The histograms in metrics.hpp store fixed-bound bucket counts, not
// raw observations, so quantiles are estimates: the rank is located in
// the cumulative bucket walk and the value interpolated linearly
// within the bucket's [lower, upper] bound span — the same estimator
// Prometheus's histogram_quantile() applies server-side. We compute it
// in-process so the p50/p90/p99 lines land in every exporter (table,
// JSON, Prometheus, BENCH_*.json) without a query layer.
//
// The estimate is a pure function of the merged bucket counts, which
// are themselves deterministic across thread counts, so quantile lines
// inherit the bit-identical-snapshot guarantee (docs/OBSERVABILITY.md).
#pragma once

#include "core/obs/metrics.hpp"

namespace fist::obs {

/// Estimated value at quantile `q` in [0, 1].
///
///   * count == 0            → NaN (callers render "NaN" or omit);
///   * rank in a bounded     → linear interpolation between the
///     bucket                  bucket's lower and upper bound (the
///                              first bucket's lower bound is 0 when
///                              bounds[0] > 0, else bounds[0] scaled);
///   * rank in the overflow  → bounds.back() — the largest value the
///     bucket                  histogram can still vouch for.
double histogram_quantile(const HistogramValue& h, double q);

/// The fixed quantiles every exporter surfaces, in render order.
inline constexpr double kExportQuantiles[] = {0.50, 0.90, 0.99};
inline constexpr const char* kExportQuantileNames[] = {"p50", "p90", "p99"};

}  // namespace fist::obs
