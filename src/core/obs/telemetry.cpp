#include "core/obs/telemetry.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#include "core/obs/export.hpp"
#include "core/obs/flightrec.hpp"
#include "core/obs/progress.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FISTFUL_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define FISTFUL_HAVE_SOCKETS 0
#endif

namespace fist::obs {

TelemetryServer::TelemetryServer()
    : scrapes_(MetricsRegistry::global().counter("telemetry.scrapes")) {}

TelemetryServer::~TelemetryServer() { stop(); }

#if FISTFUL_HAVE_SOCKETS

namespace {

/// Everything or -1; SIGPIPE is avoided via MSG_NOSIGNAL.
int send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return -1;
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return 0;
}

void send_response(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  std::string head = "HTTP/1.0 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size()) == 0)
    send_all(fd, body.data(), body.size());
}

/// The request path from "GET <path> HTTP/1.x"; empty on anything else.
std::string request_path(const char* request) {
  if (std::strncmp(request, "GET ", 4) != 0) return {};
  const char* begin = request + 4;
  const char* end = std::strchr(begin, ' ');
  if (end == nullptr) return {};
  return std::string(begin, end);
}

}  // namespace

bool TelemetryServer::start(std::uint16_t port) {
  if (running_.load(std::memory_order_acquire)) {
    std::fprintf(stderr, "[telemetry] server already running on port %u\n",
                 static_cast<unsigned>(port_.load(std::memory_order_acquire)));
    return false;
  }

  // Socket setup happens before state_mutex_ is taken: bind/listen can
  // stall in the network stack, and nothing reading server state should
  // wait behind that. The lock below only publishes the result.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("[telemetry] socket");
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // introspection only
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::perror("[telemetry] bind");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 8) != 0) {
    std::perror("[telemetry] listen");
    ::close(fd);
    return false;
  }

  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    std::perror("[telemetry] getsockname");
    ::close(fd);
    return false;
  }
  const std::uint16_t bound = ntohs(addr.sin_port);

  bool lost_race = false;
  {
    LockGuard lock(state_mutex_);
    if (running_.load(std::memory_order_acquire)) {
      lost_race = true;  // a concurrent start() published first
    } else {
      stop_flag_.store(false, std::memory_order_release);
      listen_fd_ = fd;
      port_.store(bound, std::memory_order_release);
      running_.store(true, std::memory_order_release);
      // fistlint:allow(detached-thread) long-lived acceptor thread,
      // joined in stop(); Executor tasks are scoped to a pipeline run.
      thread_ = std::thread([this, fd] { serve_loop(fd); });
    }
  }
  if (lost_race) {
    ::close(fd);
    std::fprintf(stderr, "[telemetry] server already running on port %u\n",
                 static_cast<unsigned>(port_.load(std::memory_order_acquire)));
    return false;
  }
  flight_event("flight.server_start", "telemetry", bound);
  return true;
}

void TelemetryServer::stop() noexcept {
  // Detach the worker and fd from server state under the lock, then do
  // the slow part — join (up to one 50 ms poll tick) and close —
  // without holding it, so concurrent start()/state reads never stall
  // behind shutdown.
  // fistlint:allow(detached-thread) shutdown hand-off: the acceptor
  // thread moves out of thread_ under the lock and is joined below.
  std::thread worker;
  int fd = -1;
  std::uint16_t bound = 0;
  {
    LockGuard lock(state_mutex_);
    if (!running_.load(std::memory_order_acquire)) return;
    bound = port_.load(std::memory_order_acquire);
    stop_flag_.store(true, std::memory_order_release);
    worker = std::move(thread_);
    fd = listen_fd_;
    listen_fd_ = -1;
    port_.store(0, std::memory_order_release);
    running_.store(false, std::memory_order_release);
  }
  if (worker.joinable()) worker.join();
  if (fd >= 0) ::close(fd);
  flight_event("flight.server_stop", "telemetry", bound);
}

void TelemetryServer::serve_loop(int listen_fd) {
  while (!stop_flag_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout tick or EINTR: re-check stop
    int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;

    // One short read is enough for the GET lines we serve; a client
    // that dribbles its request line gets a 404, not a blocked server.
    char request[1024] = {};
    ssize_t n = ::recv(client, request, sizeof request - 1, 0);
    const std::string path = n > 0 ? request_path(request) : std::string();

    scrapes_.inc();
    if (path == "/metrics") {
      send_response(client, "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    render_prometheus(MetricsRegistry::global().snapshot()));
    } else if (path == "/progress") {
      send_response(client, "200 OK", "application/json",
                    render_progress_json(ProgressBoard::global().snapshot()));
    } else if (path == "/events") {
      send_response(client, "200 OK", "application/x-ndjson",
                    render_events_jsonl(FlightRecorder::global().events()));
    } else if (path == "/healthz") {
      send_response(client, "200 OK", "text/plain", "ok\n");
    } else {
      send_response(client, "404 Not Found", "text/plain", "not found\n");
    }
    ::close(client);
  }
}

#else  // !FISTFUL_HAVE_SOCKETS: the scrape plane needs POSIX sockets.

bool TelemetryServer::start(std::uint16_t) {
  std::fprintf(stderr, "[telemetry] not supported on this platform\n");
  return false;
}

void TelemetryServer::stop() noexcept {}

void TelemetryServer::serve_loop(int) {}

#endif  // FISTFUL_HAVE_SOCKETS

}  // namespace fist::obs
