#include "core/obs/span.hpp"

#include <utility>

namespace fist::obs {

namespace {

/// Per-thread trace activation: the active trace plus the stack of
/// open span indices (the top is the parent of the next span).
struct TlsTraceState {
  Trace* trace = nullptr;
  std::vector<std::uint32_t> open_stack;
};

TlsTraceState& tls_state() {
  thread_local TlsTraceState state;
  return state;
}

}  // namespace

std::vector<SpanRecord> Trace::records() const {
  LockGuard lock(trace_mutex_);
  return records_;
}

bool Trace::empty() const {
  LockGuard lock(trace_mutex_);
  return records_.empty();
}

void Trace::clear() {
  LockGuard lock(trace_mutex_);
  records_.clear();
}

std::uint32_t Trace::open(const char* name, std::uint32_t parent) {
  LockGuard lock(trace_mutex_);
  SpanRecord record;
  record.name = name;
  record.parent = parent;
  record.depth =
      parent == kNoParent ? 0 : records_[parent].depth + 1;
  // fistlint:allow(alloc-under-lock) spans are coarse (one per stage or
  // pipeline phase, not per item); the record vector stays small and
  // open/close frequency is far below the ingest loop.
  records_.push_back(std::move(record));
  return static_cast<std::uint32_t>(records_.size() - 1);
}

void Trace::close(std::uint32_t index, double millis) {
  LockGuard lock(trace_mutex_);
  if (index < records_.size()) records_[index].millis = millis;
}

TraceScope::TraceScope(Trace& trace, Policy policy) {
  TlsTraceState& tls = tls_state();
  if (policy == Policy::IfNoneActive && tls.trace != nullptr) return;
  previous_ = tls.trace;
  previous_stack_ = std::move(tls.open_stack);
  tls.trace = &trace;
  tls.open_stack.clear();
  activated_ = true;
}

TraceScope::~TraceScope() {
  if (!activated_) return;
  TlsTraceState& tls = tls_state();
  tls.trace = previous_;
  tls.open_stack = std::move(previous_stack_);
}

Trace* active_trace() noexcept { return tls_state().trace; }

Span::Span(const char* name) : start_(Clock::now()) {
#ifndef FISTFUL_NO_OBS
  TlsTraceState& tls = tls_state();
  if (tls.trace != nullptr) {
    std::uint32_t parent =
        tls.open_stack.empty() ? kNoParent : tls.open_stack.back();
    index_ = tls.trace->open(name, parent);
    trace_ = tls.trace;
    tls.open_stack.push_back(index_);
  }
#else
  (void)name;
#endif
}

void Span::close() noexcept {
  if (closed_) return;
  closed_ = true;
  millis_ =
      std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  if (trace_ != nullptr) {
    trace_->close(index_, millis_);
    TlsTraceState& tls = tls_state();
    // Spans are scoped objects, so on the owning thread the stack top
    // is this span; pop it (tolerating out-of-order closes).
    if (tls.trace == trace_ && !tls.open_stack.empty() &&
        tls.open_stack.back() == index_)
      tls.open_stack.pop_back();
    trace_ = nullptr;
  }
}

double Span::millis() const noexcept {
  if (closed_) return millis_;
  return std::chrono::duration<double, std::milli>(Clock::now() - start_)
      .count();
}

}  // namespace fist::obs
